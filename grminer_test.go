package grminer_test

import (
	"strings"
	"testing"

	"grminer"
)

// The facade must support the full quickstart flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := grminer.ToyDating()
	res, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Fatal("no GRs found on the toy network")
	}
	for _, s := range res.TopK {
		if s.Score < 0.5 || s.Supp < 2 {
			t.Errorf("threshold violated: %+v", s)
		}
		if !strings.Contains(s.GR.Format(g.Schema()), "->") {
			t.Errorf("Format output malformed: %q", s.GR.Format(g.Schema()))
		}
	}
}

func TestFacadeStoreReuse(t *testing.T) {
	g := grminer.ToyDating()
	st := grminer.BuildStore(g)
	a, err := grminer.MineStore(st, grminer.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TopK) != len(b.TopK) {
		t.Errorf("store reuse changed results: %d vs %d", len(a.TopK), len(b.TopK))
	}
}

func TestFacadeParseAndWorkbench(t *testing.T) {
	g := grminer.ToyDating()
	w := grminer.NewWorkbench(g)
	rep, err := w.QueryText("(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nhp != 1.0 {
		t.Errorf("GR4 nhp = %v", rep.Nhp)
	}
	r, err := grminer.ParseGR(g.Schema(), "(SEX:M) -> (SEX:F, RACE:Asian)")
	if err != nil {
		t.Fatal(err)
	}
	if c := grminer.EvalGR(g, r); c.LWR != 7 || c.LW != 14 {
		t.Errorf("GR1 counts = %+v", c)
	}
}

func TestFacadeMetrics(t *testing.T) {
	if len(grminer.AllMetrics()) != 7 {
		t.Errorf("expected 7 builtin metrics, got %d", len(grminer.AllMetrics()))
	}
	m, err := grminer.MetricByName("lift")
	if err != nil || m.Name != "lift" {
		t.Errorf("MetricByName(lift): %v", err)
	}
	if _, err := grminer.MetricByName("bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestFacadeGeneratorsAndBaselines(t *testing.T) {
	cfg := grminer.DefaultDBLPConfig()
	cfg.Authors = 800
	cfg.Pairs = 1200
	g := grminer.DBLP(cfg)

	miner, err := grminer.Mine(g, grminer.Options{MinSupp: 5, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := grminer.BL2(g, grminer.BaselineOptions{MinSupp: 5, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(miner.TopK) != len(bl.TopK) {
		t.Fatalf("miner and baseline disagree: %d vs %d", len(miner.TopK), len(bl.TopK))
	}
	for i := range miner.TopK {
		if miner.TopK[i].GR.Key() != bl.TopK[i].GR.Key() {
			t.Fatalf("rank %d differs: %s vs %s", i, miner.TopK[i].GR.Key(), bl.TopK[i].GR.Key())
		}
	}

	conf, err := grminer.ConfMiner(g, 5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(conf.TopK) == 0 {
		t.Error("ConfMiner found nothing on a homophilous graph")
	}
}

func TestFacadeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := grminer.ToyDating()
	sp, np, ep := dir+"/s.txt", dir+"/n.tsv", dir+"/e.tsv"
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		t.Fatal(err)
	}
	got, err := grminer.LoadFiles(sp, np, ep)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Error("file round trip lost data")
	}
}

// The incremental facade must track a fresh batch mine as edges stream in.
func TestFacadeIncremental(t *testing.T) {
	g := grminer.ToyDating()
	inc, err := grminer.NewIncremental(g, grminer.Options{
		MinSupp: 2, MinScore: 0.5, K: 5, DynamicFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := inc.Result().TopK
	res, bs, err := inc.Apply([]grminer.EdgeInsert{
		{Src: 0, Dst: 1, Vals: []grminer.Value{1}},
		{Src: 2, Dst: 3, Vals: []grminer.Value{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Edges != 2 || res.TotalEdges != 32 {
		t.Fatalf("batch stats: %+v, total %d", bs, res.TotalEdges)
	}
	if grminer.TopKChanged(prev, res.TopK) == 0 && len(res.TopK) == 0 {
		t.Error("no results maintained")
	}
	// The maintained result equals a fresh mine of the grown graph.
	ref, err := grminer.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.TopK) != len(res.TopK) {
		t.Fatalf("incremental %d results vs fresh %d", len(res.TopK), len(ref.TopK))
	}
	for i := range ref.TopK {
		if ref.TopK[i].GR.Key() != res.TopK[i].GR.Key() || ref.TopK[i].Score != res.TopK[i].Score {
			t.Fatalf("rank %d diverges", i)
		}
	}
	// Malformed batches are rejected wholesale.
	if _, _, err := inc.Apply([]grminer.EdgeInsert{{Src: -1, Dst: 0, Vals: []grminer.Value{1}}}); err == nil {
		t.Error("malformed batch accepted")
	}
}
