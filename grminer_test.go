package grminer_test

import (
	"strings"
	"testing"

	"grminer"
)

// The facade must support the full quickstart flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := grminer.ToyDating()
	res, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Fatal("no GRs found on the toy network")
	}
	for _, s := range res.TopK {
		if s.Score < 0.5 || s.Supp < 2 {
			t.Errorf("threshold violated: %+v", s)
		}
		if !strings.Contains(s.GR.Format(g.Schema()), "->") {
			t.Errorf("Format output malformed: %q", s.GR.Format(g.Schema()))
		}
	}
}

func TestFacadeStoreReuse(t *testing.T) {
	g := grminer.ToyDating()
	st := grminer.BuildStore(g)
	a, err := grminer.MineStore(st, grminer.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := grminer.Mine(g, grminer.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TopK) != len(b.TopK) {
		t.Errorf("store reuse changed results: %d vs %d", len(a.TopK), len(b.TopK))
	}
}

func TestFacadeParseAndWorkbench(t *testing.T) {
	g := grminer.ToyDating()
	w := grminer.NewWorkbench(g)
	rep, err := w.QueryText("(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nhp != 1.0 {
		t.Errorf("GR4 nhp = %v", rep.Nhp)
	}
	r, err := grminer.ParseGR(g.Schema(), "(SEX:M) -> (SEX:F, RACE:Asian)")
	if err != nil {
		t.Fatal(err)
	}
	if c := grminer.EvalGR(g, r); c.LWR != 7 || c.LW != 14 {
		t.Errorf("GR1 counts = %+v", c)
	}
}

func TestFacadeMetrics(t *testing.T) {
	if len(grminer.AllMetrics()) != 7 {
		t.Errorf("expected 7 builtin metrics, got %d", len(grminer.AllMetrics()))
	}
	m, err := grminer.MetricByName("lift")
	if err != nil || m.Name != "lift" {
		t.Errorf("MetricByName(lift): %v", err)
	}
	if _, err := grminer.MetricByName("bogus"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestFacadeGeneratorsAndBaselines(t *testing.T) {
	cfg := grminer.DefaultDBLPConfig()
	cfg.Authors = 800
	cfg.Pairs = 1200
	g := grminer.DBLP(cfg)

	miner, err := grminer.Mine(g, grminer.Options{MinSupp: 5, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := grminer.BL2(g, grminer.BaselineOptions{MinSupp: 5, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(miner.TopK) != len(bl.TopK) {
		t.Fatalf("miner and baseline disagree: %d vs %d", len(miner.TopK), len(bl.TopK))
	}
	for i := range miner.TopK {
		if miner.TopK[i].GR.Key() != bl.TopK[i].GR.Key() {
			t.Fatalf("rank %d differs: %s vs %s", i, miner.TopK[i].GR.Key(), bl.TopK[i].GR.Key())
		}
	}

	conf, err := grminer.ConfMiner(g, 5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(conf.TopK) == 0 {
		t.Error("ConfMiner found nothing on a homophilous graph")
	}
}

func TestFacadeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := grminer.ToyDating()
	sp, np, ep := dir+"/s.txt", dir+"/n.tsv", dir+"/e.tsv"
	if err := grminer.SaveFiles(g, sp, np, ep); err != nil {
		t.Fatal(err)
	}
	got, err := grminer.LoadFiles(sp, np, ep)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Error("file round trip lost data")
	}
}
