package grminer

import (
	"fmt"

	"grminer/internal/core"
	"grminer/internal/metrics"
	"grminer/internal/rpc"
	"grminer/internal/store"
)

// EngineMode selects what kind of engine Open constructs: a one-shot static
// miner, or a long-lived incremental engine that maintains the top-k while
// edge batches stream in.
type EngineMode int

const (
	// ModeStatic (the zero value) opens a one-shot engine: Mine runs the
	// batch miner over the input as loaded and the engine holds no mutable
	// state. ApplyBatch is refused.
	ModeStatic EngineMode = iota
	// ModeIncremental opens a fully dynamic engine seeded with one mine:
	// ApplyBatch ingests mixed insert/delete batches and Result always
	// reflects the surviving edge set exactly. The engine owns the graph.
	ModeIncremental
)

// EngineConfig is the single construction surface for every engine this
// package can build — the matrix the historical Mine*/New* entrypoints
// (now deprecated wrappers) used to spell as ten separate functions:
//
//	mode       ×  topology   =  engine
//	---------     ---------     ------
//	static        local         one-shot batch mine (Mine, MineAuto)
//	static        sharded       ShardCoordinator    (MineSharded)
//	static        remote        ShardCoordinator over shardd (MineRemote)
//	incremental   local         Incremental         (NewIncremental)
//	incremental   sharded       IncrementalSharded  (NewIncrementalSharded)
//	incremental   remote        IncrementalSharded over shardd (NewIncrementalRemote)
//
// Topology is selected by the fields, not an enum: a non-empty Workers list
// is remote (Shard.Shards defaults to len(Workers); a larger explicit count
// multiplexes shards onto daemon slots, a smaller one is rejected — see
// ErrShardWorkerMismatch), Shard.Shards > 0 alone is in-process sharded,
// and neither is single-store local.
type EngineConfig struct {
	// Mode selects static one-shot versus incremental (default static).
	Mode EngineMode
	// Options are the mining thresholds and execution knobs, exactly as
	// the historical entrypoints took them.
	Options Options
	// Shard lays out the sharded topologies (Shards > 0 enables them).
	// With Workers set, Shards defaults to len(Workers); an explicit
	// Shards > len(Workers) places shard i on Workers[i mod n], using the
	// slot capacity each daemon advertises (shardd -shards N).
	Shard ShardOptions
	// Workers lists shardd daemon addresses ("host:port"); non-empty
	// selects the remote topology.
	Workers []string
	// Standbys lists spare shardd addresses (remote topology only). They
	// take no shards at construction; when a primary worker is lost
	// mid-run, the replacement is rebuilt onto the lost shard's home
	// daemon if it answers, else a standby, else a live multiplexed peer
	// with a spare slot — and the routed-batch log is replayed so results
	// are unchanged. FleetHealth reports the failover counters.
	Standbys []string
	// Auto applies the AutoTune planner before construction: zero-valued
	// execution knobs in Options (Parallelism, MaxL/MaxW/MaxR) are filled
	// from the input size and Procs (0 = all cores), exactly as MineAuto
	// and the CLIs' -auto flag did.
	Auto bool
	// Procs caps the CPU budget Auto plans for (0 = all cores).
	Procs int
}

// ErrShardWorkerMismatch reports an explicit shard count smaller than the
// remote worker address list: daemons that would never receive a shard are
// almost certainly a mistyped flag, so the contradiction is rejected (leave
// Shard.Shards 0 to default to one shard per worker, or raise it past
// len(Workers) to multiplex). CLIs unwrap it with errors.As to name the
// flags involved.
type ErrShardWorkerMismatch struct {
	// Shards is the explicit shard count requested.
	Shards int
	// Workers is the number of worker addresses given.
	Workers int
}

func (e *ErrShardWorkerMismatch) Error() string {
	return fmt.Sprintf("grminer: %d shards requested but %d worker addresses given (at least one shard per worker; raise the shard count to multiplex)", e.Shards, e.Workers)
}

// Engine is an opened mining engine: one of the six mode × topology
// variants of EngineConfig, behind one method set. Static engines answer
// Mine; incremental engines additionally ingest with ApplyBatch and track
// the maintained top-k in Result. The typed accessors (Incremental,
// IncrementalSharded, Coordinator) expose the underlying variant for
// callers that need its full surface.
type Engine struct {
	mode    EngineMode
	g       *Graph
	opt     Options // options as configured (post-Auto); inner engines normalize
	plan    Plan
	planned bool

	// Exactly one of these is set, by mode × topology.
	st    *Store
	coord *ShardCoordinator
	inc   *Incremental
	shinc *IncrementalSharded

	last *Result // static modes: the last Mine
}

// Open validates cfg, builds the selected engine over g, and returns it.
// Incremental engines own g (batches mutate it); static engines only read
// it during Mine. Callers of remote topologies must Close the engine to
// release the worker connections (Close is a no-op elsewhere, so
// uniformly deferring it is safe).
func Open(g *Graph, cfg EngineConfig) (*Engine, error) {
	cfg, err := resolveTopology(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Mode == ModeStatic && len(cfg.Workers) == 0 && cfg.Shard.Shards == 0 {
		// Static local plans from the built store (MineAuto's behaviour);
		// every other variant plans from the graph's size features.
		return OpenStore(store.Build(g), cfg)
	}
	e := &Engine{mode: cfg.Mode, g: g, opt: cfg.Options}
	if cfg.Auto {
		e.plan = core.PlanForSize(g.NumEdges(), g.Schema(), cfg.Procs, e.opt)
		e.opt = e.plan.Apply(e.opt)
		e.planned = true
	}
	switch {
	case cfg.Mode == ModeIncremental && len(cfg.Workers) > 0:
		e.shinc, err = core.NewIncrementalShardedFrom(g, e.opt, cfg.Shard, cfg.fleet())
	case cfg.Mode == ModeIncremental && cfg.Shard.Shards > 0:
		e.shinc, err = core.NewIncrementalSharded(g, e.opt, cfg.Shard)
	case cfg.Mode == ModeIncremental:
		e.inc, err = core.NewIncremental(g, e.opt)
	case len(cfg.Workers) > 0:
		e.coord, err = core.NewShardCoordinatorFrom(g, e.opt, cfg.Shard, cfg.fleet())
	default:
		e.coord, err = core.NewShardCoordinator(g, e.opt, cfg.Shard)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// OpenStore is Open over a pre-built store; only the static local variant
// supports it (the incremental and sharded engines build their own stores
// from the graph they own).
func OpenStore(st *Store, cfg EngineConfig) (*Engine, error) {
	cfg, err := resolveTopology(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Mode != ModeStatic || len(cfg.Workers) > 0 || cfg.Shard.Shards > 0 {
		return nil, fmt.Errorf("grminer: OpenStore supports only the static local engine; use Open for mode %d with %d shards / %d workers",
			cfg.Mode, cfg.Shard.Shards, len(cfg.Workers))
	}
	e := &Engine{mode: ModeStatic, g: st.Graph(), opt: cfg.Options, st: st}
	if cfg.Auto {
		e.plan = core.PlanFor(st, cfg.Procs, e.opt)
		e.opt = e.plan.Apply(e.opt)
		e.planned = true
	}
	return e, nil
}

// resolveTopology fills the shard count from the worker list and rejects an
// explicit count that would idle listed workers with a typed
// *ErrShardWorkerMismatch. Counts beyond the worker list multiplex; the
// fleet validates them against each daemon's advertised slot capacity at
// build time.
func resolveTopology(cfg EngineConfig) (EngineConfig, error) {
	if len(cfg.Workers) == 0 {
		return cfg, nil
	}
	if cfg.Shard.Shards == 0 {
		cfg.Shard.Shards = len(cfg.Workers)
	}
	if cfg.Shard.Shards < len(cfg.Workers) {
		return cfg, &ErrShardWorkerMismatch{Shards: cfg.Shard.Shards, Workers: len(cfg.Workers)}
	}
	return cfg, nil
}

// fleet builds the remote worker fleet for the configured topology.
func (cfg EngineConfig) fleet() *rpc.Fleet {
	return rpc.NewFleet(cfg.Workers, rpc.FleetOptions{Standbys: cfg.Standbys})
}

// Mode returns the engine's mode.
func (e *Engine) Mode() EngineMode { return e.mode }

// Graph returns the engine's network. Incremental engines own and mutate
// it on ApplyBatch; callers must not read it concurrently with ingestion.
func (e *Engine) Graph() *Graph { return e.g }

// Mine returns the engine's top-k. Static engines run the batch miner
// (repeat calls re-mine); incremental engines return the maintained result,
// which is already exact for the surviving edge set.
func (e *Engine) Mine() (*Result, error) {
	switch {
	case e.inc != nil:
		return e.inc.Result(), nil
	case e.shinc != nil:
		return e.shinc.Result(), nil
	case e.coord != nil:
		res, err := e.coord.Mine()
		if err != nil {
			return nil, err
		}
		e.last = res
		return res, nil
	default:
		res, err := core.MineStore(e.st, e.opt)
		if err != nil {
			return nil, err
		}
		e.last = res
		return res, nil
	}
}

// ApplyBatch ingests one mixed batch of insertions and deletions through an
// incremental engine and returns the updated top-k. Malformed batches are
// rejected atomically — the engine and its graph are untouched. Static
// engines refuse it.
func (e *Engine) ApplyBatch(b Batch) (*Result, IncStats, error) {
	switch {
	case e.inc != nil:
		return e.inc.ApplyBatch(b)
	case e.shinc != nil:
		return e.shinc.ApplyBatch(b)
	default:
		return nil, IncStats{}, fmt.Errorf("grminer: static engine cannot ingest batches; Open with Mode: ModeIncremental")
	}
}

// Apply ingests one batch of edge insertions (ApplyBatch with no deletions).
func (e *Engine) Apply(edges []EdgeInsert) (*Result, IncStats, error) {
	return e.ApplyBatch(Batch{Ins: edges})
}

// Result returns the engine's current top-k: the maintained result for
// incremental engines, the last Mine for static ones (nil before it).
func (e *Engine) Result() *Result {
	switch {
	case e.inc != nil:
		return e.inc.Result()
	case e.shinc != nil:
		return e.shinc.Result()
	default:
		return e.last
	}
}

// Options returns the engine's effective options: the inner engine's
// normalized settings where one exists, the configured (post-Auto) options
// for a static local engine that has not mined yet.
func (e *Engine) Options() Options {
	switch {
	case e.inc != nil:
		return e.inc.Options()
	case e.shinc != nil:
		return e.shinc.Options()
	case e.coord != nil:
		return e.coord.Options()
	case e.last != nil:
		return e.last.Options
	default:
		return e.opt
	}
}

// Cumulative returns lifetime ingest totals (zero for static engines).
func (e *Engine) Cumulative() IncStats {
	switch {
	case e.inc != nil:
		return e.inc.Cumulative()
	case e.shinc != nil:
		return e.shinc.Cumulative()
	default:
		return IncStats{}
	}
}

// Explain returns the exact tracked counts of q when the engine maintains
// them (the single-store incremental engine's pool; every maintained top-k
// entry is pool-backed). Other variants report false and callers fall back
// to a full-scan EvalGR.
func (e *Engine) Explain(q GR) (Counts, bool) {
	if e.inc != nil {
		return e.inc.Explain(q)
	}
	return metrics.Counts{}, false
}

// AutoPlan returns the plan Auto selected and whether planning ran.
func (e *Engine) AutoPlan() (Plan, bool) { return e.plan, e.planned }

// ShardPlan returns the sharded layout and whether the engine is sharded.
func (e *Engine) ShardPlan() (ShardPlan, bool) {
	switch {
	case e.coord != nil:
		return e.coord.Plan(), true
	case e.shinc != nil:
		return e.shinc.Plan(), true
	default:
		return ShardPlan{}, false
	}
}

// FleetHealth reports per-shard worker liveness and failover counters
// (retries, replacements, replayed batches) for sharded engines; nil for
// local single-store engines. grminerd surfaces it in GET /v1/status.
func (e *Engine) FleetHealth() []WorkerHealth {
	switch {
	case e.coord != nil:
		return e.coord.FleetHealth()
	case e.shinc != nil:
		return e.shinc.FleetHealth()
	default:
		return nil
	}
}

// Incremental returns the underlying single-store incremental engine, or
// nil for other variants.
func (e *Engine) Incremental() *Incremental { return e.inc }

// IncrementalSharded returns the underlying sharded incremental engine
// (in-process or remote), or nil for other variants.
func (e *Engine) IncrementalSharded() *IncrementalSharded { return e.shinc }

// Coordinator returns the underlying static shard coordinator (in-process
// or remote), or nil for other variants.
func (e *Engine) Coordinator() *ShardCoordinator { return e.coord }

// Store returns the pre-built store of a static local engine, or nil.
func (e *Engine) Store() *Store { return e.st }

// Close releases remote worker connections; it is a no-op for local
// engines, so callers can defer it unconditionally.
func (e *Engine) Close() error {
	switch {
	case e.coord != nil:
		return e.coord.Close()
	case e.shinc != nil:
		return e.shinc.Close()
	default:
		return nil
	}
}
