// Marketing: the paper's Example 3 — a financial institution leveraging
// social influence. Homophily-based targeting ("lawyers who bought stocks
// influence friends to buy stocks") fails when the friends already own the
// product; a high-nhp GR such as
//
//	(JOB:Lawyer, PRODUCT:Stocks) -> (PRODUCT:Bonds)
//
// identifies what the *non-owners* among those friends actually adopt, so
// promoting Bonds to them converts far better.
//
// The network is synthesised here with the public graph-building API: nodes
// are customers with JOB and PRODUCT, edges are friendships.
//
// Run with: go run ./examples/marketing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"grminer"
)

// Attribute values.
const (
	jobLawyer = 1
	jobDoctor = 2
	jobTrader = 3
	jobOther  = 4

	prodSavings = 1
	prodStocks  = 2
	prodBonds   = 3
	prodFunds   = 4
)

func main() {
	g, err := buildNetwork(4000, 30000, 7)
	if err != nil {
		log.Fatal(err)
	}
	schema := g.Schema()
	fmt.Printf("customer network: %d customers, %d friendships\n\n", g.NumNodes(), g.NumEdges())

	// Mine the strongest non-homophily ties between product communities.
	res, err := grminer.Mine(g, grminer.Options{
		MinSupp: 100, MinScore: 0.5, K: 8, DynamicFloor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top cross-sell GRs by nhp:")
	for i, s := range res.TopK {
		fmt.Printf("  %d. %-55s nhp=%5.1f%% supp=%-6d conf=%5.1f%%\n",
			i+1, s.GR.Format(schema), 100*s.Score, s.Supp, 100*s.Conf)
	}

	// The Example 3 comparison: homophily targeting vs the secondary bond.
	wb := grminer.NewWorkbench(g)
	fmt.Println("\nExample 3, spelled out:")
	stocks, err := wb.QueryText("(JOB:Lawyer, PRODUCT:Stocks) -> (PRODUCT:Stocks)")
	if err != nil {
		log.Fatal(err)
	}
	bonds, err := wb.QueryText("(JOB:Lawyer, PRODUCT:Stocks) -> (PRODUCT:Bonds)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  homophily play: ", stocks.String(schema))
	fmt.Println("  secondary bond: ", bonds.String(schema))
	fmt.Printf("\nreading: of the friends of stock-owning lawyers who do NOT own stocks,\n"+
		"%.0f%% own bonds — promote Bonds to the rest for the adoption rate the\n"+
		"homophily campaign cannot reach (its targets mostly already own stocks).\n", 100*bonds.Nhp)
}

// buildNetwork synthesises the customer graph: PRODUCT is homophilous
// (communities form around products), JOB is not; stock-owning lawyers'
// friends who do not own stocks own bonds disproportionately.
func buildNetwork(customers, friendships int, seed int64) (*grminer.Graph, error) {
	schema, err := grminer.NewSchema(
		[]grminer.Attribute{
			{Name: "JOB", Domain: 4, Labels: []string{"∅", "Lawyer", "Doctor", "Trader", "Other"}},
			{Name: "PRODUCT", Domain: 4, Homophily: true,
				Labels: []string{"∅", "Savings", "Stocks", "Bonds", "Funds"}},
		},
		nil,
	)
	if err != nil {
		return nil, err
	}
	g, err := grminer.NewGraph(schema, customers)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	jobs := []int{jobLawyer, jobDoctor, jobTrader, jobOther}
	jobWeights := []float64{0.15, 0.15, 0.10, 0.60}
	for n := 0; n < customers; n++ {
		job := sample(r, jobs, jobWeights)
		// Lawyers and traders skew toward stocks; everyone else spreads out.
		var product int
		switch {
		case (job == jobLawyer || job == jobTrader) && r.Float64() < 0.5:
			product = prodStocks
		default:
			product = []int{prodSavings, prodStocks, prodBonds, prodFunds}[r.Intn(4)]
		}
		if err := g.SetNodeValues(n, grminer.Value(job), grminer.Value(product)); err != nil {
			return nil, err
		}
	}
	// Product-community buckets for homophilous wiring.
	byProduct := make(map[grminer.Value][]int)
	bonds := []int{}
	for n := 0; n < customers; n++ {
		p := g.NodeValue(n, 1)
		byProduct[p] = append(byProduct[p], n)
		if p == prodBonds {
			bonds = append(bonds, n)
		}
	}
	for e := 0; e < friendships; e++ {
		src := r.Intn(customers)
		var dst int
		roll := r.Float64()
		isStockLawyer := g.NodeValue(src, 0) == jobLawyer && g.NodeValue(src, 1) == prodStocks
		switch {
		case isStockLawyer && roll < 0.45:
			// The planted secondary bond: stock-owning lawyers befriend
			// bond owners (tax-advice circles, say).
			dst = bonds[r.Intn(len(bonds))]
		case roll < 0.60:
			// Product homophily.
			peers := byProduct[g.NodeValue(src, 1)]
			dst = peers[r.Intn(len(peers))]
		default:
			dst = r.Intn(customers)
		}
		if dst == src {
			dst = (dst + 1) % customers
		}
		if _, err := g.AddEdge(src, dst); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func sample(r *rand.Rand, vals []int, weights []float64) int {
	x := r.Float64()
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return vals[i]
		}
	}
	return vals[len(vals)-1]
}
