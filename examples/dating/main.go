// Dating: the Section VI-B interestingness study on the Pokec-like network,
// including the hypothesis-formulation cycle of Remark 3 — starting from a
// mined seed GR, varying it, and comparing the variants' nhp.
//
// Run with: go run ./examples/dating
package main

import (
	"fmt"
	"log"

	"grminer"
)

func main() {
	cfg := grminer.DefaultPokecConfig()
	cfg.Nodes = 8000
	cfg.AvgOutDegree = 12
	g := grminer.Pokec(cfg)
	schema := g.Schema()
	fmt.Printf("Pokec-like network: %d users, %d directed friendships\n\n", g.NumNodes(), g.NumEdges())

	// Step 1 — mine the entry-point GRs (the paper: minNhp = 50%, k = 300;
	// we print the head of the list).
	minSupp := g.NumEdges() / 200
	res, err := grminer.Mine(g, grminer.Options{
		MinSupp: minSupp, MinScore: 0.5, K: 300, DynamicFloor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top GRs by nhp (minSupp=%d):\n", minSupp)
	for i, s := range res.TopK {
		if i == 8 {
			break
		}
		fmt.Printf("  %d. %-55s nhp=%5.1f%% supp=%-6d conf=%5.1f%%\n",
			i+1, s.GR.Format(schema), 100*s.Score, s.Supp, 100*s.Conf)
	}

	wb := grminer.NewWorkbench(g)

	// Step 2 — the P5 study: does gender modulate the "looking for a sexual
	// partner -> female" tie? Vary the seed by pinning each gender.
	fmt.Println("\nhypothesis cycle 1 (the paper's P5):")
	seed, err := grminer.ParseGR(schema, "(L:Sexual Partner) -> (G:Female)")
	if err != nil {
		log.Fatal(err)
	}
	male, err := grminer.ParseGR(schema, "(G:Male, L:Sexual Partner) -> (G:Female)")
	if err != nil {
		log.Fatal(err)
	}
	female, err := grminer.ParseGR(schema, "(G:Female, L:Sexual Partner) -> (G:Male)")
	if err != nil {
		log.Fatal(err)
	}
	reports, err := wb.Compare(seed, male, female)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println("   ", rep.String(schema))
	}
	fmt.Println("    => men looking for sexual partners target women far more than the reverse.")

	// Step 3 — the P207 study: age preferences of 25-34 year olds by gender.
	fmt.Println("\nhypothesis cycle 2 (the paper's P207):")
	for _, q := range []string{
		"(G:Male, A:25-34) -> (A:18-24)",
		"(G:Female, A:25-34) -> (A:18-24)",
		"(G:Male, A:25-34) -> (G:Female, A:18-24)",
		"(G:Female, A:25-34) -> (G:Male, A:18-24)",
	} {
		rep, err := wb.QueryText(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("   ", rep.String(schema))
	}
	fmt.Println("    => men much prefer younger partners; for opposite-sex ties the gap widens.")

	// Step 4 — the P2 explanation: check the education distribution to rule
	// out data skew (the paper inspects value distributions the same way).
	fmt.Println("\ndistribution check (the paper's P2 discussion):")
	dist, err := wb.NodeDistribution(3) // E
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range dist {
		total += c
	}
	eduAttr := schema.Node[3]
	for v := 1; v < len(dist); v++ {
		if dist[v] > 0 {
			fmt.Printf("    E:%-12s %5.1f%%\n", eduAttr.Label(grminer.Value(v)), 100*float64(dist[v])/float64(total))
		}
	}
	basicSec, err := wb.QueryText("(E:Basic) -> (E:Secondary)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    %s\n", basicSec.String(schema))
	fmt.Println("    => Secondary dwarfs Training in the population, explaining the strong secondary bond.")
}
