// Collaboration: the Section VI-C study on the DBLP-like co-authorship
// network — edge attributes (collaboration strength), the D1/D3/D5
// productivity findings, and the D2 cross-area finding, plus the lift
// metric's handling of popularity skew (Section VII).
//
// Run with: go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"grminer"
)

func main() {
	g := grminer.DBLP(grminer.DefaultDBLPConfig())
	schema := g.Schema()
	fmt.Printf("DBLP-like network: %d authors, %d directed co-author edges\n\n", g.NumNodes(), g.NumEdges())

	// Step 1 — the paper's Table IIb run: minSupp = 0.1% |E|, minNhp = 50%,
	// k = 20.
	minSupp := g.NumEdges() / 1000
	res, err := grminer.Mine(g, grminer.Options{
		MinSupp: minSupp, MinScore: 0.5, K: 20, DynamicFloor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top GRs by nhp (minSupp=%d, minNhp=50%%):\n", minSupp)
	for i, s := range res.TopK {
		if i == 6 {
			break
		}
		fmt.Printf("  %d. %-50s nhp=%5.1f%% supp=%-6d conf=%5.1f%%\n",
			i+1, s.GR.Format(schema), 100*s.Score, s.Supp, 100*s.Conf)
	}

	wb := grminer.NewWorkbench(g)

	// Step 2 — the D1/D3 sanity check: the Poor-productivity findings are
	// explained by the population distribution (91%+ of authors are Poor —
	// students co-authoring with supervisors).
	dist, err := wb.NodeDistribution(1) // P
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range dist {
		total += c
	}
	fmt.Printf("\nproductivity distribution: Poor=%.1f%% of authors (the paper reports 91.18%%),\n",
		100*float64(dist[1])/float64(total))
	fmt.Println("so D1-style GRs toward (P:Poor) reflect skew, not preference.")

	// Step 3 — the D2 study with an edge descriptor: database authors who
	// collaborate *often* outside their area go to data mining.
	fmt.Println("\ncross-area collaboration (the paper's D2):")
	for _, q := range []string{
		"(A:DB) -[S:often]-> (A:DM)",
		"(A:DB) -> (A:DM)",
		"(A:AI) -[S:often]-> (A:DM)",
		"(A:IR) -[S:often]-> (A:DM)",
	} {
		rep, err := wb.QueryText(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("   ", rep.String(schema))
	}
	areaDist, err := wb.NodeDistribution(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    area sizes: DB=%d DM=%d AI=%d IR=%d — DM is the smallest,\n",
		areaDist[1], areaDist[2], areaDist[3], areaDist[4])
	fmt.Println("    so the preference toward DM is genuine, not population skew.")

	// Step 4 — Section VII: re-rank under lift, which demotes the
	// popularity-skew GRs that nhp and conf both rank highly.
	lifted, err := grminer.Mine(g, grminer.Options{
		MinSupp: minSupp, MinScore: 1.5, K: 5, Metric: grminer.LiftMetric,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop GRs by lift (skew-corrected, Section VII):")
	for i, s := range lifted.TopK {
		fmt.Printf("  %d. %-50s lift=%5.2f supp=%d\n", i+1, s.GR.Format(schema), s.Score, s.Supp)
	}
}
