// Quickstart: mine top-k group relationships from the paper's toy dating
// network (Figure 1) and verify the motivating examples GR1-GR4.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"grminer"
)

func main() {
	// The Figure 1 network: 14 daters with SEX, RACE, EDU; RACE and EDU are
	// homophily attributes, SEX is not.
	g := grminer.ToyDating()
	fmt.Printf("toy dating network: %d nodes, %d directed edges\n\n", g.NumNodes(), g.NumEdges())

	// Part 1 — query the paper's motivating GRs directly.
	wb := grminer.NewWorkbench(g)
	for _, q := range []string{
		"(SEX:M) -> (SEX:F, RACE:Asian)",             // GR1: men prefer Asian women
		"(SEX:M, RACE:Asian) -> (SEX:F, RACE:Asian)", // GR2: ... except Asian men
		"(SEX:F, EDU:Grad) -> (SEX:M, EDU:Grad)",     // GR3: homophily on education
		"(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)",  // GR4: the secondary bond
	} {
		rep, err := wb.QueryText(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", rep.String(g.Schema()))
	}
	fmt.Println("\nGR4 reads: female grads who do NOT date grads date college men 100% of the time.")

	// Part 2 — let the miner find the interesting ties automatically.
	res, err := grminer.Mine(g, grminer.Options{
		MinSupp:      2,   // absolute support
		MinScore:     0.6, // minNhp
		K:            5,
		DynamicFloor: true, // the paper's GRMiner(k)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-%d non-trivial GRs by nhp (minSupp=2, minNhp=60%%):\n", len(res.TopK))
	for i, s := range res.TopK {
		fmt.Printf("  %d. %-50s nhp=%5.1f%% supp=%d conf=%5.1f%%\n",
			i+1, s.GR.Format(g.Schema()), 100*s.Score, s.Supp, 100*s.Conf)
	}
	fmt.Printf("\nsearch: examined %d GRs, traversed %d trivial partitions, %d partition calls in %v\n",
		res.Stats.Examined, res.Stats.TrivialSeen, res.Stats.PartitionCalls, res.Stats.Duration)
}
