// Influence: using mined GRs as the influence matrix of a class-propagation
// task (the application Section II of the paper highlights: "GRs capture a
// more general type of influences between sub-populations ... [and] can
// serve as the assumed influence matrix").
//
// On the DBLP-like network we hide 30% of the authors' research areas,
// derive the area-compatibility matrix from the network (homophily bonds on
// the diagonal, mined secondary bonds such as DB->DM off-diagonal), and
// recover the hidden areas by linearized belief propagation.
//
// Run with: go run ./examples/influence
package main

import (
	"fmt"
	"log"
	"math/rand"

	"grminer"
)

const areaAttr = 0 // A in the DBLP schema

func main() {
	cfg := grminer.DefaultDBLPConfig()
	cfg.Authors = 6000
	cfg.Pairs = 9000
	g := grminer.DBLP(cfg)
	schema := g.Schema()
	fmt.Printf("DBLP-like network: %d authors, %d directed co-author edges\n\n", g.NumNodes(), g.NumEdges())

	// Step 1 — derive the influence matrix from the data: diagonal entries
	// are the homophily bonds' confidence, off-diagonal the secondary
	// bonds' nhp (exactly the quantities GRMiner ranks by).
	influence, err := grminer.InfluenceMatrix(g, areaAttr)
	if err != nil {
		log.Fatal(err)
	}
	area := schema.Node[areaAttr]
	fmt.Println("GR-derived influence matrix (rows: source area, cols: destination area):")
	fmt.Printf("        ")
	for j := 1; j <= area.Domain; j++ {
		fmt.Printf("%8s", area.Label(grminer.Value(j)))
	}
	fmt.Println()
	for i := 1; i <= area.Domain; i++ {
		fmt.Printf("  %-6s", area.Label(grminer.Value(i)))
		for j := 0; j < area.Domain; j++ {
			fmt.Printf("%8.3f", influence[i-1][j])
		}
		fmt.Println()
	}
	fmt.Println("note the strong diagonal (homophily) and the DB→DM secondary bond.")

	// Step 2 — hide 30% of the areas and rebuild the graph with nulls.
	r := rand.New(rand.NewSource(99))
	truth := make([]grminer.Value, g.NumNodes())
	hidden := make([]bool, g.NumNodes())
	masked, err := grminer.NewGraph(schema, g.NumNodes())
	if err != nil {
		log.Fatal(err)
	}
	nHidden := 0
	for v := 0; v < g.NumNodes(); v++ {
		truth[v] = g.NodeValue(v, areaAttr)
		prod := g.NodeValue(v, 1)
		if r.Float64() < 0.3 {
			hidden[v] = true
			nHidden++
			if err := masked.SetNodeValues(v, grminer.Null, prod); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if err := masked.SetNodeValues(v, truth[v], prod); err != nil {
			log.Fatal(err)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		if _, err := masked.AddEdge(g.Src(e), g.Dst(e), g.EdgeValues(e)...); err != nil {
			log.Fatal(err)
		}
	}

	// Step 3 — propagate and score.
	res, err := grminer.Propagate(masked, influence, grminer.PropagateConfig{Attr: areaAttr})
	if err != nil {
		log.Fatal(err)
	}
	acc := res.Accuracy(truth, hidden)
	fmt.Printf("\nhidden %d of %d areas; propagation converged=%v after %d sweeps\n",
		nHidden, g.NumNodes(), res.Converged, res.Iterations)
	fmt.Printf("recovered hidden areas with accuracy %.1f%% (chance: 25%%)\n", 100*acc)

	// Show a few predictions.
	fmt.Println("\nsample predictions:")
	shown := 0
	for v := 0; v < g.NumNodes() && shown < 5; v++ {
		if !hidden[v] {
			continue
		}
		pred := res.Predict(v)
		mark := "✓"
		if pred != truth[v] {
			mark = "✗"
		}
		fmt.Printf("  author %-5d predicted %-3s truth %-3s %s\n",
			v, area.Label(pred), area.Label(truth[v]), mark)
		shown++
	}
}
