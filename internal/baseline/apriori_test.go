package baseline

import (
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
)

// The Apriori strawman must produce exactly the same top-k GRs as GRMiner
// and the BUC baselines — it only differs in how much work it does.
func TestAprioriMatchesMiner(t *testing.T) {
	configs := []struct {
		minSupp  int
		minScore float64
		k        int
	}{
		{2, 0.4, 0},
		{3, 0.5, 6},
	}
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed)
		for _, cfg := range configs {
			ap, err := Apriori(g, Options{MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			miner, err := core.Mine(g, core.Options{
				MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k,
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "apriori", ap.TopK, miner.TopK)
		}
	}
}

func TestAprioriOnToy(t *testing.T) {
	g := dataset.ToyDating()
	ap, err := Apriori(g, Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := BL1(g, Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "apriori-toy", ap.TopK, bl.TopK)
	if ap.Partitions == 0 || ap.CubeCells == 0 {
		t.Errorf("work counters empty: %+v", ap)
	}
}

// Apriori enumerates every frequent set regardless of minNhp — the paper's
// complaint about it (Section IV: "there are too many frequent sets when
// minNhp is small").
func TestAprioriIgnoresScoreThreshold(t *testing.T) {
	g := randomGraph(5)
	loose, err := Apriori(g, Options{MinSupp: 2, MinScore: 0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Apriori(g, Options{MinSupp: 2, MinScore: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if loose.CubeCells != tight.CubeCells {
		t.Errorf("frequent-set count changed with minScore: %d vs %d",
			loose.CubeCells, tight.CubeCells)
	}
	// And it does strictly more counting work than GRMiner examines at a
	// high threshold.
	miner, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if int64(loose.CubeCells) <= miner.Stats.Examined {
		t.Logf("note: frequent sets %d vs examined %d (small graph, informational)",
			loose.CubeCells, miner.Stats.Examined)
	}
}

func TestAprioriIncludeTrivial(t *testing.T) {
	g := dataset.ToyDating()
	ap, err := Apriori(g, Options{MinSupp: 2, MinScore: 0.5, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := BL2(g, Options{MinSupp: 2, MinScore: 0.5, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "apriori-trivial", ap.TopK, bl.TopK)
}
