package baseline

import (
	"sort"
	"time"

	"grminer/internal/buc"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Apriori is the paper's first strawman (Section IV, first paragraph):
// "apply regular Apriori-like algorithms such as [5] to find frequent sets
// l ∧ w and l ∧ w ∧ r above the minSupp threshold and then construct GRs in
// a post-processing step using the minNhp threshold."
//
// It mines the single-table relation level-wise: candidate k-condition sets
// are joined from frequent (k-1)-sets, pruned by the subset property, and
// counted against the table in one pass per level — the classic algorithm,
// with none of GRMiner's structure. The paper dismisses it because "there
// are too many frequent sets when minNhp is small" and the flat table
// replicates node attributes per edge; this implementation exists to make
// that comparison runnable.
func Apriori(g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Metric.Score == nil {
		opt.Metric = metrics.NhpMetric
	}
	if opt.MinSupp < 1 {
		opt.MinSupp = 1
	}
	schema := g.Schema()
	t := flatTable{t: store.Flatten(g), schema: schema}
	cols := t.Cols()

	// Level 1: count every single (column, value) condition.
	counts := make(map[string]int)
	var frequent [][]buc.Cond // current level's frequent itemsets
	level1 := make(map[buc.Cond]int)
	rows := int32(t.Rows())
	for row := int32(0); row < rows; row++ {
		for col := 0; col < cols; col++ {
			v := t.Value(row, col)
			if v == graph.Null {
				continue
			}
			level1[buc.Cond{Col: col, Val: v}]++
		}
	}
	for cond, n := range level1 {
		if n >= opt.MinSupp {
			set := []buc.Cond{cond}
			frequent = append(frequent, set)
			counts[buc.Key(set)] = n
		}
	}
	sortCondSets(frequent)
	var allFrequent [][]buc.Cond
	allFrequent = append(allFrequent, frequent...)

	// Levels 2..cols: join, prune, count.
	partitions := int64(len(level1))
	for level := 2; level <= cols && len(frequent) > 0; level++ {
		candidates := joinLevel(frequent, counts)
		if len(candidates) == 0 {
			break
		}
		// One pass over the table counts all candidates of this level.
		candCounts := make([]int, len(candidates))
		for row := int32(0); row < rows; row++ {
			for i, cand := range candidates {
				match := true
				for _, c := range cand {
					if t.Value(row, c.Col) != c.Val {
						match = false
						break
					}
				}
				if match {
					candCounts[i]++
				}
			}
		}
		partitions += int64(len(candidates))
		frequent = frequent[:0]
		for i, cand := range candidates {
			if candCounts[i] >= opt.MinSupp {
				frequent = append(frequent, cand)
				counts[buc.Key(cand)] = candCounts[i]
			}
		}
		sortCondSets(frequent)
		allFrequent = append(allFrequent, frequent...)
	}

	// Post-processing: exactly the BL pipeline — build GRs from frequent
	// sets, score, filter, rank.
	res := postProcessFrequent(t, schema, allFrequent, counts, opt)
	res.Partitions = partitions
	res.Duration = time.Since(start)
	return res, nil
}

// joinLevel produces level-(k+1) candidates from sorted frequent k-sets by
// the classic prefix join, with subset pruning against the frequent map.
func joinLevel(frequent [][]buc.Cond, counts map[string]int) [][]buc.Cond {
	var out [][]buc.Cond
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i], frequent[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				break // sorted order: no further joins for i
			}
			if a[k-1].Col >= b[k-1].Col {
				continue // same column twice (different values) never matches
			}
			cand := append(append([]buc.Cond(nil), a...), b[k-1])
			if allSubsetsFrequent(cand, counts) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []buc.Cond, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the Apriori property for the (k-1)-subsets.
func allSubsetsFrequent(cand []buc.Cond, counts map[string]int) bool {
	sub := make([]buc.Cond, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, c := range cand {
			if i != skip {
				sub = append(sub, c)
			}
		}
		if _, ok := counts[buc.Key(sub)]; !ok {
			return false
		}
	}
	return true
}

func sortCondSets(sets [][]buc.Cond) {
	sort.Slice(sets, func(i, j int) bool { return lessCondSet(sets[i], sets[j]) })
}

// lessCondSet orders condition sets element-wise by (column, value) — the
// numeric order the prefix join requires (string keys would sort column 10
// before column 2).
func lessCondSet(a, b []buc.Cond) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k].Col != b[k].Col {
			return a[k].Col < b[k].Col
		}
		if a[k].Val != b[k].Val {
			return a[k].Val < b[k].Val
		}
	}
	return len(a) < len(b)
}

// postProcessFrequent reconstructs GRs from frequent condition sets and
// applies the metric, generality, and top-k stages (shared semantics with
// mineCube, over a map of counts instead of an iceberg cube).
func postProcessFrequent(t buc.Table, schema *graph.Schema, sets [][]buc.Cond, counts map[string]int, opt Options) *Result {
	nv, ne := len(schema.Node), len(schema.Edge)
	totalE := t.Rows()

	cells := make([]buc.Cell, 0, len(sets))
	for _, set := range sets {
		cells = append(cells, buc.Cell{Conds: set, Count: counts[buc.Key(set)]})
	}
	buc.SortCells(cells)

	list := topk.New(opt.K)
	blockers := make(map[string][]lwPair)
	homCache := make(map[string]int)
	for _, cell := range cells {
		g, ok := splitCell(cell.Conds, nv, ne)
		if !ok {
			continue
		}
		if !opt.IncludeTrivial && g.Trivial(schema) {
			continue
		}
		c := metrics.Counts{LWR: cell.Count, E: totalE}
		lwConds := lwOnly(cell.Conds, nv, ne)
		if len(lwConds) == 0 {
			c.LW = totalE // the empty condition set covers every edge
		} else {
			// supp(l ∧ w) ≥ supp(l ∧ w ∧ r) ≥ minSupp, so the set is frequent.
			c.LW = counts[buc.Key(lwConds)]
		}
		if opt.Metric.NeedsHom {
			if eff, hasBeta := g.HomophilyEffect(schema); hasBeta {
				effConds := append(append([]buc.Cond(nil), lwConds...), rhsConds(eff.R, nv, ne)...)
				key := buc.Key(effConds)
				hom, seen := homCache[key]
				if !seen {
					var inSet bool
					hom, inSet = counts[key]
					if !inSet {
						hom = buc.CountMatching(t, effConds)
					}
					homCache[key] = hom
				}
				c.Hom = hom
			}
		}
		if opt.Metric.NeedsR {
			rc := rhsConds(g.R, nv, ne)
			if n, ok := counts[buc.Key(rc)]; ok {
				c.R = n
			} else {
				c.R = buc.CountMatching(t, rc)
			}
		}
		score := opt.Metric.Score(c)
		if score < opt.MinScore {
			continue
		}
		s := gr.Scored{GR: g, Supp: cell.Count, Score: score, Conf: metrics.Conf(c)}
		if opt.NoGeneralityFilter {
			list.Consider(s)
			continue
		}
		key := g.RHSKey()
		blocked := false
		for _, b := range blockers[key] {
			if b.l.SubsetOf(g.L) && b.w.SubsetOf(g.W) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		blockers[key] = append(blockers[key], lwPair{l: g.L, w: g.W})
		list.Consider(s)
	}
	return &Result{TopK: list.Items(), CubeCells: len(cells)}
}
