package baseline

import (
	"time"

	"grminer/internal/buc"
	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Options configures the BUC baselines. The fields mirror core.Options; the
// baselines push only MinSupp into the search (Section VI-D: "Both baselines
// prune the search space using the anti-monotonicity of support, but not
// minNhp, and find the top-k GRs in a post-processing step").
type Options struct {
	MinSupp            int
	MinScore           float64
	K                  int
	Metric             metrics.Metric
	IncludeTrivial     bool
	NoGeneralityFilter bool
}

// Result is a completed baseline run.
type Result struct {
	// TopK lists the retained GRs, best first.
	TopK []gr.Scored
	// CubeCells is the number of iceberg cells the BUC pass produced — the
	// frequent-set explosion the paper blames for baseline slowness.
	CubeCells int
	// Partitions counts counting-sort invocations.
	Partitions int64
	// Duration is the wall-clock time including post-processing.
	Duration time.Duration
}

// flatTable adapts the single-table layout (BL1).
type flatTable struct {
	t      *store.FlatTable
	schema *graph.Schema
}

func (f flatTable) Rows() int { return f.t.Rows }
func (f flatTable) Cols() int { return f.t.Width }
func (f flatTable) Domain(col int) int {
	nv, ne := f.t.NodeAttrs, f.t.EdgeAttrs
	switch {
	case col < nv:
		return f.schema.Node[col].Domain
	case col < nv+ne:
		return f.schema.Edge[col-nv].Domain
	default:
		return f.schema.Node[col-nv-ne].Domain
	}
}
func (f flatTable) Value(row int32, col int) graph.Value { return f.t.Value(row, col) }

// threeArrayTable adapts the compact store (BL2): the same logical relation,
// but node attributes are fetched through the LArray/RArray indirection
// instead of being replicated per edge.
type threeArrayTable struct {
	st     *store.Store
	schema *graph.Schema
}

func (t threeArrayTable) Rows() int { return t.st.NumEdges() }
func (t threeArrayTable) Cols() int {
	return 2*len(t.schema.Node) + len(t.schema.Edge)
}
func (t threeArrayTable) Domain(col int) int {
	nv, ne := len(t.schema.Node), len(t.schema.Edge)
	switch {
	case col < nv:
		return t.schema.Node[col].Domain
	case col < nv+ne:
		return t.schema.Edge[col-nv].Domain
	default:
		return t.schema.Node[col-nv-ne].Domain
	}
}
func (t threeArrayTable) Value(row int32, col int) graph.Value {
	nv, ne := len(t.schema.Node), len(t.schema.Edge)
	switch {
	case col < nv:
		return t.st.LVal(row, col)
	case col < nv+ne:
		return t.st.EVal(row, col-nv)
	default:
		return t.st.RVal(row, col-nv-ne)
	}
}

// BL1 mines top-k GRs by running BUC over the materialised single table and
// reconstructing GRs in post-processing.
func BL1(g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now()
	t := flatTable{t: store.Flatten(g), schema: g.Schema()}
	res, err := mineCube(t, g.Schema(), opt)
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// BL2 is BL1 over the three-array representation: identical enumeration and
// results, without the |E|×2×#AttrV table blow-up.
func BL2(g *graph.Graph, opt Options) (*Result, error) {
	start := time.Now()
	t := threeArrayTable{st: store.Build(g), schema: g.Schema()}
	res, err := mineCube(t, g.Schema(), opt)
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// BL2Store is BL2 over a pre-built store (excludes store construction from
// the measured time, for harness runs that reuse one store).
func BL2Store(st *store.Store, opt Options) (*Result, error) {
	start := time.Now()
	t := threeArrayTable{st: st, schema: st.Graph().Schema()}
	res, err := mineCube(t, st.Graph().Schema(), opt)
	if err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// mineCube is the shared pipeline: iceberg cube, then GR reconstruction,
// scoring, redundancy filtering, and ranking.
func mineCube(t buc.Table, schema *graph.Schema, opt Options) (*Result, error) {
	if opt.Metric.Score == nil {
		opt.Metric = metrics.NhpMetric
	}
	if opt.MinSupp < 1 {
		opt.MinSupp = 1
	}
	cube, err := buc.Compute(t, opt.MinSupp)
	if err != nil {
		return nil, err
	}
	nv, ne := len(schema.Node), len(schema.Edge)
	totalE := t.Rows()

	// Process cells most-general-first so earlier candidates can block
	// later specialisations, exactly as the miner does in-search.
	buc.SortCells(cube.List)

	list := topk.New(opt.K)
	blockers := make(map[string][]lwPair)
	homCache := make(map[string]int)

	for _, cell := range cube.List {
		g, ok := splitCell(cell.Conds, nv, ne)
		if !ok {
			continue // no RHS conditions: not a GR
		}
		if !opt.IncludeTrivial && g.Trivial(schema) {
			continue
		}
		c := metrics.Counts{LWR: cell.Count, E: totalE}
		lwConds := lwOnly(cell.Conds, nv, ne)
		c.LW, _ = cube.Count(lwConds)
		if opt.Metric.NeedsHom && !g.Trivial(schema) {
			if eff, hasBeta := g.HomophilyEffect(schema); hasBeta {
				effConds := append(append([]buc.Cond(nil), lwConds...), rhsConds(eff.R, nv, ne)...)
				key := buc.Key(effConds)
				hom, seen := homCache[key]
				if !seen {
					// The homophily-effect cell may be infrequent and hence
					// absent from the iceberg; fall back to a direct count.
					var inCube bool
					hom, inCube = cube.Count(effConds)
					if !inCube {
						hom = buc.CountMatching(t, effConds)
					}
					homCache[key] = hom
				}
				c.Hom = hom
			}
		}
		if opt.Metric.NeedsR {
			c.R, _ = cube.Count(rhsConds(g.R, nv, ne))
		}
		score := opt.Metric.Score(c)
		if score < opt.MinScore {
			continue
		}
		s := gr.Scored{GR: g, Supp: cell.Count, Score: score, Conf: metrics.Conf(c)}
		if opt.NoGeneralityFilter {
			list.Consider(s)
			continue
		}
		key := g.RHSKey()
		blocked := false
		for _, b := range blockers[key] {
			if b.l.SubsetOf(g.L) && b.w.SubsetOf(g.W) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		blockers[key] = append(blockers[key], lwPair{l: g.L, w: g.W})
		list.Consider(s)
	}
	return &Result{TopK: list.Items(), CubeCells: len(cube.List), Partitions: cube.Partitions}, nil
}

// lwPair mirrors the miner's blocker record.
type lwPair struct {
	l, w gr.Descriptor
}

// splitCell converts a cell's column conditions into a GR; ok is false when
// the cell has no RHS condition.
func splitCell(conds []buc.Cond, nv, ne int) (gr.GR, bool) {
	var g gr.GR
	for _, c := range conds {
		switch {
		case c.Col < nv:
			g.L = g.L.With(c.Col, c.Val)
		case c.Col < nv+ne:
			g.W = g.W.With(c.Col-nv, c.Val)
		default:
			g.R = g.R.With(c.Col-nv-ne, c.Val)
		}
	}
	return g, len(g.R) > 0
}

// lwOnly keeps the L and W columns of a condition list.
func lwOnly(conds []buc.Cond, nv, ne int) []buc.Cond {
	var out []buc.Cond
	for _, c := range conds {
		if c.Col < nv+ne {
			out = append(out, c)
		}
	}
	return out
}

// rhsConds maps a node descriptor to RHS columns.
func rhsConds(d gr.Descriptor, nv, ne int) []buc.Cond {
	out := make([]buc.Cond, len(d))
	for i, c := range d {
		out[i] = buc.Cond{Col: nv + ne + c.Attr, Val: c.Val}
	}
	return out
}

// ConfMiner is the straightforward confidence-threshold approach of Section
// IV: mine with minConf and minSupp, keeping trivial GRs in the ranking (as
// the Table II "ranked by conf" columns do). It reuses the SFDF engine with
// the confidence metric, which is exactly "GRMiner with conf" — the point of
// the comparison is the ranking, not the search strategy.
func ConfMiner(g *graph.Graph, minSupp int, minConf float64, k int) (*core.Result, error) {
	return core.Mine(g, core.Options{
		MinSupp:        minSupp,
		MinScore:       minConf,
		K:              k,
		Metric:         metrics.ConfMetric,
		IncludeTrivial: true,
	})
}

// ConfMinerStore is ConfMiner over a pre-built store.
func ConfMinerStore(st *store.Store, minSupp int, minConf float64, k int) (*core.Result, error) {
	return core.MineStore(st, core.Options{
		MinSupp:        minSupp,
		MinScore:       minConf,
		K:              k,
		Metric:         metrics.ConfMetric,
		IncludeTrivial: true,
	})
}
