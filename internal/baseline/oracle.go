// Package baseline implements the comparison systems of the paper's
// evaluation: the brute-force Definition-5 oracle used by tests, the two
// BUC-style frequent-set baselines BL1 and BL2 of Section VI-D, and the
// confidence-threshold miner used in the Table II interestingness study.
package baseline

import (
	"fmt"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/topk"
)

// OracleOptions configures the exhaustive miner. The option set mirrors
// core.Options where meaningful.
type OracleOptions struct {
	MinSupp  int
	MinScore float64
	K        int
	Metric   metrics.Metric
	MaxL     int
	MaxW     int
	MaxR     int
	// NoGeneralityFilter disables Definition 5 condition (2).
	NoGeneralityFilter bool
	// IncludeTrivial also admits trivial GRs (mirrors core.Options).
	IncludeTrivial bool
}

// Oracle computes the exact top-k GRs by enumerating every possible GR and
// applying Definition 5 literally: condition (1) via full-scan supports,
// condition (2) by pairwise generality comparison over the qualifying set,
// and condition (3) by rank. Its cost is exponential in the schema size; it
// exists to validate the real miners on small inputs.
func Oracle(g *graph.Graph, opt OracleOptions) ([]gr.Scored, error) {
	if opt.Metric.Score == nil {
		opt.Metric = metrics.NhpMetric
	}
	if opt.MinSupp < 1 {
		opt.MinSupp = 1
	}
	schema := g.Schema()
	work := estimateOracleWork(schema, opt)
	if work > 5e7 {
		return nil, fmt.Errorf("baseline: oracle search space ~%g too large; use the real miner", work)
	}

	var qualifying []gr.Scored
	forEachDescriptor(schema.Node, opt.MaxL, nil, func(l gr.Descriptor) {
		forEachDescriptor(schema.Edge, opt.MaxW, nil, func(w gr.Descriptor) {
			forEachDescriptor(schema.Node, opt.MaxR, nil, func(r gr.Descriptor) {
				if len(r) == 0 {
					return
				}
				cand := gr.GR{L: l.Clone(), W: w.Clone(), R: r.Clone()}
				if !opt.IncludeTrivial && cand.Trivial(schema) {
					return
				}
				c := metrics.Eval(g, cand)
				if c.LWR < opt.MinSupp {
					return
				}
				score := opt.Metric.Score(c)
				if score < opt.MinScore {
					return
				}
				qualifying = append(qualifying, gr.Scored{
					GR: cand, Supp: c.LWR, Score: score, Conf: metrics.Conf(c),
				})
			})
		})
	})

	list := topk.New(opt.K)
	for i := range qualifying {
		if !opt.NoGeneralityFilter && blockedBy(qualifying, i) {
			continue
		}
		list.Consider(qualifying[i])
	}
	return list.Items(), nil
}

// blockedBy reports whether qualifying[i] has a strictly more general GR in
// the qualifying set (Definition 5 condition 2).
func blockedBy(qualifying []gr.Scored, i int) bool {
	for j := range qualifying {
		if j == i {
			continue
		}
		if gr.StrictlyMoreGeneral(qualifying[j].GR, qualifying[i].GR) {
			return true
		}
	}
	return false
}

// forEachDescriptor enumerates every descriptor over attrs with at most max
// conditions (max == 0: unlimited), including the empty descriptor.
func forEachDescriptor(attrs []graph.Attribute, max int, prefix gr.Descriptor, emit func(gr.Descriptor)) {
	var rec func(attr int, d gr.Descriptor)
	rec = func(attr int, d gr.Descriptor) {
		if attr == len(attrs) {
			emit(d)
			return
		}
		rec(attr+1, d) // leave attr unconstrained
		if max > 0 && len(d) >= max {
			return
		}
		for v := 1; v <= attrs[attr].Domain; v++ {
			rec(attr+1, d.With(attr, graph.Value(v)))
		}
	}
	rec(0, prefix)
}

// estimateOracleWork bounds the number of GRs the oracle would touch.
func estimateOracleWork(s *graph.Schema, opt OracleOptions) float64 {
	count := func(attrs []graph.Attribute) float64 {
		prod := 1.0
		for i := range attrs {
			prod *= float64(attrs[i].Domain + 1)
		}
		return prod
	}
	n := count(s.Node)
	return n * n * count(s.Edge)
}
