package baseline

import (
	"math/rand"
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

func randomGraph(seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: true},
			{Name: "B", Domain: 2, Homophily: seed%2 == 0},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		panic(err)
	}
	n := 6 + r.Intn(10)
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(3)))
	}
	for e := 0; e < 15+r.Intn(40); e++ {
		g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
	}
	return g
}

func sameResults(t *testing.T, label string, got, want []gr.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d results", label, len(got), len(want))
	}
	for i := range want {
		if got[i].GR.Key() != want[i].GR.Key() || got[i].Supp != want[i].Supp || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d: got (%s, %d, %v) want (%s, %d, %v)", label, i,
				got[i].GR.Key(), got[i].Supp, got[i].Score,
				want[i].GR.Key(), want[i].Supp, want[i].Score)
		}
	}
}

// BL1 and BL2 mine the same relation through different layouts; their
// results must be identical, and both must match GRMiner (the paper's
// Theorem 4 asserts GRMiner is exact; the baselines are exact by
// construction, pruning only on support).
func TestBaselinesMatchMiner(t *testing.T) {
	configs := []struct {
		minSupp  int
		minScore float64
		k        int
	}{
		{1, 0.3, 0},
		{2, 0.5, 0},
		{2, 0.25, 5},
	}
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed)
		for _, cfg := range configs {
			opt := Options{MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k}
			bl1, err := BL1(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			bl2, err := BL2(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "BL1 vs BL2", bl1.TopK, bl2.TopK)

			miner, err := core.Mine(g, core.Options{
				MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k,
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "BL1 vs GRMiner", bl1.TopK, miner.TopK)
		}
	}
}

func TestBaselineOnToy(t *testing.T) {
	g := dataset.ToyDating()
	opt := Options{MinSupp: 2, MinScore: 0.5}
	bl1, err := BL1(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	miner, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "toy", bl1.TopK, miner.TopK)
	if bl1.CubeCells == 0 || bl1.Partitions == 0 {
		t.Errorf("work counters empty: %+v", bl1)
	}
}

// The baselines' defining inefficiency: they enumerate the full iceberg
// regardless of minNhp, so a tighter score threshold must not shrink their
// cube (Fig 4b's flat baseline curves).
func TestBaselineIgnoresScoreThreshold(t *testing.T) {
	g := randomGraph(3)
	loose, err := BL2(g, Options{MinSupp: 2, MinScore: 0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := BL2(g, Options{MinSupp: 2, MinScore: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if loose.CubeCells != tight.CubeCells || loose.Partitions != tight.Partitions {
		t.Errorf("baseline work changed with minScore: %+v vs %+v", loose, tight)
	}
}

// ConfMiner must equal the oracle run with the confidence metric and
// trivial GRs admitted — the configuration of the Table II conf columns.
func TestConfMinerMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed)
		res, err := ConfMiner(g, 2, 0.4, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Oracle(g, OracleOptions{
			MinSupp: 2, MinScore: 0.4, K: 10,
			Metric: metrics.ConfMetric, IncludeTrivial: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "conf", res.TopK, want)
	}
}

// On a homophilous graph the conf ranking surfaces trivial GRs that the nhp
// ranking excludes — the qualitative claim of Table II.
func TestConfRankingSurfacesTrivialGRs(t *testing.T) {
	schema, _ := graph.NewSchema(
		[]graph.Attribute{{Name: "H", Domain: 3, Homophily: true}},
		nil,
	)
	r := rand.New(rand.NewSource(42))
	g := graph.MustNew(schema, 60)
	for v := 0; v < 60; v++ {
		g.SetNodeValues(v, graph.Value(v%3+1))
	}
	for e := 0; e < 400; e++ {
		src := r.Intn(60)
		var dst int
		if r.Float64() < 0.8 { // strong homophily
			dst = (src/3)*3 + src%3 // same class
			dst = (dst + 3*r.Intn(20)) % 60
		} else {
			dst = r.Intn(60)
		}
		g.AddEdge(src, dst)
	}
	conf, err := ConfMiner(g, 5, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	trivialAtTop := 0
	for _, s := range conf.TopK {
		if s.GR.Trivial(schema) {
			trivialAtTop++
		}
	}
	if trivialAtTop == 0 {
		t.Error("conf ranking found no trivial homophily GRs on a homophilous graph")
	}
	nhp, err := core.Mine(g, core.Options{MinSupp: 5, MinScore: 0.5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range nhp.TopK {
		if s.GR.Trivial(schema) {
			t.Error("nhp ranking returned a trivial GR")
		}
	}
}

func TestOracleGuards(t *testing.T) {
	// A schema too wide for exhaustive search must be refused.
	attrs := make([]graph.Attribute, 10)
	for i := range attrs {
		attrs[i] = graph.Attribute{Name: string(rune('A' + i)), Domain: 9}
	}
	schema, _ := graph.NewSchema(attrs, nil)
	g := graph.MustNew(schema, 2)
	if _, err := Oracle(g, OracleOptions{MinSupp: 1}); err == nil {
		t.Error("oracle accepted an exponential search space")
	}
}

func TestBaselineIncludeTrivial(t *testing.T) {
	g := dataset.ToyDating()
	with, err := BL2(g, Options{MinSupp: 2, MinScore: 0.5, IncludeTrivial: true, Metric: metrics.ConfMetric})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(g, OracleOptions{
		MinSupp: 2, MinScore: 0.5, Metric: metrics.ConfMetric, IncludeTrivial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "include-trivial", with.TopK, want)
}
