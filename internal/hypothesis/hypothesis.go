// Package hypothesis implements the analyst workflow of the paper's Remark
// 3: "the human analyst starts with top-k GRs found, forms new hypothesis
// through varying the GRs found, and compares such hypothesis as well as
// data distribution". A Workbench answers exact supp/conf/nhp queries for
// arbitrary GRs (the paper's P5 and P207 case studies) and offers the
// variation operators used there: substituting a value, swapping a
// condition between sides, and dropping or adding conditions.
package hypothesis

import (
	"fmt"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// Report carries every measurement of one GR.
type Report struct {
	GR      gr.GR
	Counts  metrics.Counts
	Supp    int     // absolute support
	RelSupp float64 // supp / |E|
	Conf    float64
	Nhp     float64
	Trivial bool
}

// Workbench evaluates hypotheses against one network.
type Workbench struct {
	g *graph.Graph
}

// New returns a workbench over g.
func New(g *graph.Graph) *Workbench {
	return &Workbench{g: g}
}

// Graph returns the underlying network.
func (w *Workbench) Graph() *graph.Graph { return w.g }

// Query measures a GR exactly (single scan).
func (w *Workbench) Query(g gr.GR) (Report, error) {
	if err := g.Valid(w.g.Schema()); err != nil {
		return Report{}, err
	}
	c := metrics.Eval(w.g, g)
	return Report{
		GR:      g,
		Counts:  c,
		Supp:    c.LWR,
		RelSupp: metrics.Supp(c),
		Conf:    metrics.Conf(c),
		Nhp:     metrics.Nhp(c),
		Trivial: g.Trivial(w.g.Schema()),
	}, nil
}

// QueryText parses the textual GR form and measures it.
func (w *Workbench) QueryText(text string) (Report, error) {
	g, err := gr.ParseGR(w.g.Schema(), text)
	if err != nil {
		return Report{}, err
	}
	return w.Query(g)
}

// ReplaceL returns the GR with the LHS condition on attr substituted (the
// paper's P207 study replaces Male with Female on the LHS).
func ReplaceL(g gr.GR, attr int, val graph.Value) gr.GR {
	out := g.Clone()
	out.L = out.L.With(attr, val)
	return out
}

// ReplaceR substitutes an RHS condition.
func ReplaceR(g gr.GR, attr int, val graph.Value) gr.GR {
	out := g.Clone()
	out.R = out.R.With(attr, val)
	return out
}

// AddL adds (or overwrites) an LHS condition (the paper's P5 study adds
// G:Male to the LHS of (L:Sexual Partner) -> (G:Female)).
func AddL(g gr.GR, attr int, val graph.Value) gr.GR { return ReplaceL(g, attr, val) }

// AddR adds (or overwrites) an RHS condition.
func AddR(g gr.GR, attr int, val graph.Value) gr.GR { return ReplaceR(g, attr, val) }

// DropL removes an LHS condition, generalising the hypothesis.
func DropL(g gr.GR, attr int) gr.GR {
	out := g.Clone()
	out.L = out.L.Without(attr)
	return out
}

// DropR removes an RHS condition.
func DropR(g gr.GR, attr int) gr.GR {
	out := g.Clone()
	out.R = out.R.Without(attr)
	return out
}

// Compare evaluates a set of variations side by side, preserving order.
func (w *Workbench) Compare(grs ...gr.GR) ([]Report, error) {
	out := make([]Report, 0, len(grs))
	for _, g := range grs {
		r, err := w.Query(g)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Distribution returns the edge-destination distribution of one node
// attribute: how many edges point at nodes holding each value. The paper's
// analysts use value distributions to tell genuine preferences from data
// skew (the P2 and D1 discussions).
func (w *Workbench) Distribution(attr int) ([]int, error) {
	if attr < 0 || attr >= len(w.g.Schema().Node) {
		return nil, fmt.Errorf("hypothesis: node attribute %d out of range", attr)
	}
	counts := make([]int, w.g.Schema().Node[attr].Domain+1)
	for e := 0; e < w.g.NumEdges(); e++ {
		if !w.g.EdgeAlive(e) {
			continue
		}
		counts[w.g.NodeValue(w.g.Dst(e), attr)]++
	}
	return counts, nil
}

// NodeDistribution returns the population distribution of one node
// attribute over nodes (not edge-weighted).
func (w *Workbench) NodeDistribution(attr int) ([]int, error) {
	if attr < 0 || attr >= len(w.g.Schema().Node) {
		return nil, fmt.Errorf("hypothesis: node attribute %d out of range", attr)
	}
	counts := make([]int, w.g.Schema().Node[attr].Domain+1)
	for n := 0; n < w.g.NumNodes(); n++ {
		counts[w.g.NodeValue(n, attr)]++
	}
	return counts, nil
}

// MatchingEdges returns up to limit edge ids satisfying l ∧ w ∧ r — the
// drill-down from a pattern to the concrete ties behind it (limit ≤ 0 means
// all).
func (w *Workbench) MatchingEdges(g gr.GR, limit int) ([]int, error) {
	if err := g.Valid(w.g.Schema()); err != nil {
		return nil, err
	}
	var out []int
	for e := 0; e < w.g.NumEdges(); e++ {
		if !w.g.EdgeAlive(e) {
			continue
		}
		if metrics.MatchEdge(w.g, e, g) {
			out = append(out, e)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// String renders a report the way the paper prints its case studies, e.g.
// "(G:Male, L:Sexual Partner) -> (G:Female)  nhp = 68.1%; supp = 392652".
func (r Report) String(s *graph.Schema) string {
	return fmt.Sprintf("%s  nhp = %.1f%%; supp = %d (conf = %.1f%%)",
		r.GR.Format(s), 100*r.Nhp, r.Supp, 100*r.Conf)
}
