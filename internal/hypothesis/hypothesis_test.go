package hypothesis

import (
	"strings"
	"testing"

	"grminer/internal/dataset"
	"grminer/internal/gr"
)

func TestQueryToyGR4(t *testing.T) {
	w := New(dataset.ToyDating())
	rep, err := w.QueryText("(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supp != 2 || rep.Counts.LW != 6 {
		t.Errorf("GR4 supp=%d LW=%d, want 2, 6", rep.Supp, rep.Counts.LW)
	}
	if rep.Nhp != 1.0 {
		t.Errorf("GR4 nhp = %v, want 1.0", rep.Nhp)
	}
	if rep.Conf < 0.33 || rep.Conf > 0.34 {
		t.Errorf("GR4 conf = %v, want 1/3", rep.Conf)
	}
	if rep.Trivial {
		t.Error("GR4 flagged trivial")
	}
}

func TestQueryInvalid(t *testing.T) {
	w := New(dataset.ToyDating())
	if _, err := w.QueryText("(SEX:F) -> ()"); err == nil {
		t.Error("empty RHS accepted")
	}
	if _, err := w.Query(gr.GR{L: gr.D(0, 1)}); err == nil {
		t.Error("invalid GR accepted")
	}
}

// The paper's hypothesis cycle: vary a seed GR and compare. Here the toy
// stands in; the dating example runs the real P5/P207 studies.
func TestVariationOperators(t *testing.T) {
	w := New(dataset.ToyDating())
	seed, err := gr.ParseGR(w.Graph().Schema(), "(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		t.Fatal(err)
	}

	swapped := ReplaceL(seed, dataset.ToySex, dataset.SexM)
	if v, _ := swapped.L.Get(dataset.ToySex); v != dataset.SexM {
		t.Error("ReplaceL failed")
	}
	if v, _ := seed.L.Get(dataset.ToySex); v != dataset.SexF {
		t.Error("ReplaceL mutated the seed")
	}

	dropped := DropR(seed, dataset.ToySex)
	if dropped.R.Has(dataset.ToySex) || !dropped.R.Has(dataset.ToyEdu) {
		t.Error("DropR failed")
	}

	added := AddR(seed, dataset.ToyRace, dataset.RaceAsian)
	if !added.R.Has(dataset.ToyRace) {
		t.Error("AddR failed")
	}
	if !DropL(seed, dataset.ToyEdu).L.Equal(gr.D(dataset.ToySex, dataset.SexF)) {
		t.Error("DropL failed")
	}

	reports, err := w.Compare(seed, swapped, dropped)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("Compare returned %d reports", len(reports))
	}
	// Dropping the SEX:M condition can only gain support.
	if reports[2].Supp < reports[0].Supp {
		t.Error("generalisation lost support")
	}
}

func TestDistributions(t *testing.T) {
	w := New(dataset.ToyDating())
	nodeDist, err := w.NodeDistribution(dataset.ToyEdu)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1b: 4 HighSchool, 4 College, 6 Grad.
	if nodeDist[dataset.EduHighSchool] != 4 || nodeDist[dataset.EduCollege] != 4 || nodeDist[dataset.EduGrad] != 6 {
		t.Errorf("node EDU distribution = %v", nodeDist)
	}
	edgeDist, err := w.Distribution(dataset.ToySex)
	if err != nil {
		t.Fatal(err)
	}
	// 30 directed edges: 14 point at males, 16 at females (the F–F dyad).
	if edgeDist[dataset.SexM] != 14 || edgeDist[dataset.SexF] != 16 {
		t.Errorf("edge SEX distribution = %v", edgeDist)
	}
	if _, err := w.Distribution(99); err == nil {
		t.Error("Distribution accepted bad attribute")
	}
	if _, err := w.NodeDistribution(-1); err == nil {
		t.Error("NodeDistribution accepted bad attribute")
	}
}

func TestMatchingEdges(t *testing.T) {
	w := New(dataset.ToyDating())
	g, err := gr.ParseGR(w.Graph().Schema(), "(SEX:M) -> (SEX:F, RACE:Asian)")
	if err != nil {
		t.Fatal(err)
	}
	edges, err := w.MatchingEdges(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 7 { // GR1's support
		t.Fatalf("matched %d edges, want 7", len(edges))
	}
	graph := w.Graph()
	for _, e := range edges {
		if graph.NodeValue(graph.Src(e), dataset.ToySex) != dataset.SexM {
			t.Errorf("edge %d source is not male", e)
		}
		if graph.NodeValue(graph.Dst(e), dataset.ToyRace) != dataset.RaceAsian {
			t.Errorf("edge %d destination is not Asian", e)
		}
	}
	limited, err := w.MatchingEdges(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 3 {
		t.Errorf("limit ignored: %d edges", len(limited))
	}
	if _, err := w.MatchingEdges(gr.GR{}, 0); err == nil {
		t.Error("invalid GR accepted")
	}
}

func TestReportString(t *testing.T) {
	w := New(dataset.ToyDating())
	rep, err := w.QueryText("(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)")
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String(w.Graph().Schema())
	if !strings.Contains(s, "nhp = 100.0%") || !strings.Contains(s, "supp = 2") {
		t.Errorf("report string = %q", s)
	}
}
