package topk

import (
	"math/rand"
	"testing"

	"grminer/internal/gr"
)

func scored(score float64, supp int, attr int) gr.Scored {
	return gr.Scored{GR: gr.GR{R: gr.D(attr, 1)}, Score: score, Supp: supp}
}

func TestBoundedInsertEvict(t *testing.T) {
	l := New(2)
	if _, ok := l.Floor(); ok {
		t.Error("empty list reported a floor")
	}
	if !l.Consider(scored(0.5, 10, 0)) || !l.Consider(scored(0.7, 10, 1)) {
		t.Fatal("inserts into non-full list rejected")
	}
	if !l.Full() {
		t.Error("list should be full")
	}
	if f, ok := l.Floor(); !ok || f != 0.5 {
		t.Errorf("floor = %v, %v; want 0.5", f, ok)
	}
	// Better candidate evicts the worst.
	if !l.Consider(scored(0.6, 10, 2)) {
		t.Error("better candidate rejected")
	}
	if f, _ := l.Floor(); f != 0.6 {
		t.Errorf("floor after evict = %v, want 0.6", f)
	}
	// Worse candidate bounces.
	if l.Consider(scored(0.1, 10, 3)) {
		t.Error("worse candidate accepted")
	}
	items := l.Items()
	if len(items) != 2 || items[0].Score != 0.7 || items[1].Score != 0.6 {
		t.Errorf("items = %v", items)
	}
}

func TestTieBreaks(t *testing.T) {
	l := New(1)
	l.Consider(scored(0.5, 10, 0))
	// Same score, higher support wins.
	if !l.Consider(scored(0.5, 20, 1)) {
		t.Error("higher-support tie rejected")
	}
	if l.Items()[0].Supp != 20 {
		t.Error("support tie-break not applied")
	}
	// Same score and support: smaller key wins. attr 0 < attr 1.
	if !l.Consider(scored(0.5, 20, 0)) {
		t.Error("smaller-key tie rejected")
	}
	if l.Consider(scored(0.5, 20, 5)) {
		t.Error("larger-key tie accepted")
	}
}

func TestUnbounded(t *testing.T) {
	l := New(0)
	for i := 0; i < 100; i++ {
		l.Consider(scored(float64(i%10)/10, i, i%7))
	}
	if l.Full() {
		t.Error("unbounded list reported full")
	}
	if l.Len() != 100 {
		t.Errorf("unbounded lost items: %d", l.Len())
	}
	items := l.Items()
	for i := 1; i < len(items); i++ {
		if gr.Less(items[i], items[i-1]) {
			t.Fatal("items not in rank order")
		}
	}
}

func TestNegativeK(t *testing.T) {
	l := New(-5)
	if l.K() != 0 {
		t.Errorf("negative k should clamp to 0, got %d", l.K())
	}
}

func TestItemsIsCopy(t *testing.T) {
	l := New(3)
	l.Consider(scored(0.5, 1, 0))
	items := l.Items()
	items[0].Score = 99
	if l.Items()[0].Score != 0.5 {
		t.Error("Items aliases internal storage")
	}
}

// Merging sharded bound-k lists must equal one list that saw every
// candidate — the exactness property the parallel miner's final merge
// relies on.
func TestMergeEqualsSingleList(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		shards := make([]*List, 1+r.Intn(5))
		for i := range shards {
			shards[i] = New(k)
		}
		single := New(k)
		for i := 0; i < 80; i++ {
			s := scored(float64(r.Intn(6))/6, r.Intn(5), r.Intn(7))
			single.Consider(s)
			shards[r.Intn(len(shards))].Consider(s)
		}
		merged := Merge(k, shards...)
		got, want := merged.Items(), single.Items()
		if len(got) != len(want) {
			t.Fatalf("seed %d: merged %d items, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score || got[i].Supp != want[i].Supp || got[i].GR.Key() != want[i].GR.Key() {
				t.Fatalf("seed %d: rank %d: got %+v want %+v", seed, i, got[i], want[i])
			}
		}
	}
	if Merge(3, nil, New(3)).Len() != 0 {
		t.Error("merge of empty lists not empty")
	}
}

// The bounded list must agree with sort-then-truncate on random inputs.
func TestMatchesSortTruncate(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		l := New(k)
		var all []gr.Scored
		for i := 0; i < 60; i++ {
			s := scored(float64(r.Intn(5))/5, r.Intn(4), r.Intn(6))
			all = append(all, s)
			l.Consider(s)
		}
		gr.Sort(all)
		want := all[:k]
		got := l.Items()
		if len(got) != k {
			t.Fatalf("seed %d: got %d items, want %d", seed, len(got), k)
		}
		for i := range want {
			// Scores must agree exactly; duplicate candidates make deeper
			// comparison ambiguous, so compare the full rank triple.
			if got[i].Score != want[i].Score || got[i].Supp != want[i].Supp || got[i].GR.Key() != want[i].GR.Key() {
				t.Fatalf("seed %d: rank %d: got %+v want %+v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestChangedFrom(t *testing.T) {
	mk := func(attr int, score float64, supp int) gr.Scored {
		return gr.Scored{GR: gr.GR{R: gr.D(attr, 1)}, Score: score, Supp: supp}
	}
	prev := []gr.Scored{mk(0, 0.9, 10), mk(1, 0.8, 9), mk(2, 0.7, 8)}
	same := []gr.Scored{mk(0, 0.9, 10), mk(1, 0.8, 9), mk(2, 0.7, 8)}
	if n := ChangedFrom(prev, same); n != 0 {
		t.Errorf("identical lists: %d changed", n)
	}
	// One rescored, one evicted for a newcomer.
	cur := []gr.Scored{mk(0, 0.95, 11), mk(1, 0.8, 9), mk(3, 0.75, 7)}
	if n := ChangedFrom(prev, cur); n != 2 {
		t.Errorf("rescore+newcomer: %d changed, want 2", n)
	}
	if n := ChangedFrom(nil, cur); n != 3 {
		t.Errorf("from empty: %d changed, want 3", n)
	}
	if n := ChangedFrom(prev, nil); n != 0 {
		t.Errorf("to empty: %d changed, want 0", n)
	}
}
