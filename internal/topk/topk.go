// Package topk maintains the bounded, ranked result list of Definition 5:
// GRs ordered by score (non-homophily preference) descending, then support
// descending, then canonical GR order ascending. The list exposes the score
// of its current k-th entry so GRMiner(k) can dynamically upgrade its
// pruning threshold (Algorithm 1, line 28).
package topk

import (
	"sort"

	"grminer/internal/gr"
)

// List is a bounded rank list. K == 0 means unbounded (used by the plain
// GRMiner variant and by post-processing baselines). The zero value is not
// usable; call New.
type List struct {
	k     int
	items []gr.Scored // sorted best-first
}

// New returns a list keeping the top k entries (k == 0: keep everything).
func New(k int) *List {
	if k < 0 {
		k = 0
	}
	return &List{k: k}
}

// Len returns the number of entries currently held.
func (l *List) Len() int { return len(l.items) }

// K returns the configured bound (0 = unbounded).
func (l *List) K() int { return l.k }

// Full reports whether the list holds k entries (always false if unbounded).
func (l *List) Full() bool { return l.k > 0 && len(l.items) >= l.k }

// Floor returns the score of the worst retained entry and true when the
// list is full; a candidate scoring strictly below the floor can never
// enter, and (by RHS anti-monotonicity) neither can its specialisations.
func (l *List) Floor() (float64, bool) {
	if !l.Full() {
		return 0, false
	}
	return l.items[len(l.items)-1].Score, true
}

// Consider offers a candidate; it returns true when the candidate was
// retained (possibly evicting the previous worst entry).
func (l *List) Consider(s gr.Scored) bool {
	pos := sort.Search(len(l.items), func(i int) bool { return gr.Less(s, l.items[i]) })
	if l.Full() && pos >= l.k {
		return false
	}
	l.items = append(l.items, gr.Scored{})
	copy(l.items[pos+1:], l.items[pos:])
	l.items[pos] = s
	if l.k > 0 && len(l.items) > l.k {
		l.items = l.items[:l.k]
	}
	return true
}

// Items returns the retained entries, best first. The slice is a copy.
func (l *List) Items() []gr.Scored {
	return append([]gr.Scored(nil), l.items...)
}

// ChangedFrom reports how many entries of cur are new or re-scored relative
// to prev (matched by GR identity; a retained GR whose score or support
// moved counts as changed). Streaming consumers use it to summarise the
// churn one ingested batch caused in a maintained top-k.
func ChangedFrom(prev, cur []gr.Scored) int {
	seen := make(map[string]gr.Scored, len(prev))
	for _, s := range prev {
		seen[s.GR.Key()] = s
	}
	changed := 0
	for _, s := range cur {
		old, ok := seen[s.GR.Key()]
		if !ok || old.Score != s.Score || old.Supp != s.Supp {
			changed++
		}
	}
	return changed
}

// MergeItems folds loose scored slices into a bound-k list. Like Merge it is
// exact when the groups together cover the full candidate set; the parallel
// coordinator's post-filter ranking and the shard coordinator's survivor
// merge both reduce to it.
func MergeItems(k int, groups ...[]gr.Scored) *List {
	out := New(k)
	for _, g := range groups {
		for _, s := range g {
			out.Consider(s)
		}
	}
	return out
}

// Merge returns a new list of bound k holding the best entries across ls.
// Merging bound-k lists that each saw a disjoint share of a candidate
// stream is exact: any entry of the global top-k outranks the global k-th
// entry, so it can never have been evicted from its own bound-k list. The
// parallel miner relies on this to combine per-worker lists once at the
// end of a run.
func Merge(k int, ls ...*List) *List {
	out := New(k)
	for _, l := range ls {
		if l == nil {
			continue
		}
		for _, s := range l.items {
			out.Consider(s)
		}
	}
	return out
}
