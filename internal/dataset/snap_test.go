package dataset

import (
	"fmt"
	"strings"
	"testing"

	"grminer/internal/graph"
)

// fixtureOptions uses a compact 8-column layout for test fixtures.
func fixtureOptions() SNAPPokecOptions {
	return SNAPPokecOptions{
		IDCol: 0, GenderCol: 1, RegionCol: 2, AgeCol: 3,
		EduCol: 4, LookingCol: 5, MaritalCol: 6,
		MinWordFreq: 2,
		MaxRegions:  3,
		EduLevels:   []string{"basic", "secondary", "college", "master"},
	}
}

// profile builds one fixture line: id, gender, region, age, edu, look, mar,
// plus one trailing junk column to prove extra columns are ignored.
func profile(id int, gender, region string, age int, edu, look, mar string) string {
	return fmt.Sprintf("%d\t%s\t%s\t%d\t%s\t%s\t%s\tjunk", id, gender, region, age, edu, look, mar)
}

func fixtureProfiles() string {
	lines := []string{
		profile(10, "1", "ba", 23, "college", "chat", "single"),
		profile(20, "0", "ba", 31, "Basic College!", "chat", "single"),
		profile(30, "1", "ke", 16, "basic", "chat chat", "single"),
		profile(40, "0", "ke", 45, "college", "chat", "single"),
		// Dropped: contains the rare word "hogwarts" (below MinWordFreq).
		profile(50, "1", "ba", 23, "hogwarts", "chat", "single"),
		// Dropped: empty education field.
		profile(60, "0", "ba", 23, "", "chat", "single"),
		// Dropped: no age.
		profile(70, "1", "ba", 0, "college", "chat", "single"),
	}
	return strings.Join(lines, "\n") + "\n"
}

func fixtureRelationships() string {
	return "10\t20\n20\t10\n30\t40\n10\t50\n50\t10\n# comment\n\n70\t10\n"
}

func TestLoadSNAPPokec(t *testing.T) {
	g, err := LoadSNAPPokec(
		strings.NewReader(fixtureProfiles()),
		strings.NewReader(fixtureRelationships()),
		fixtureOptions(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Users 10, 20, 30, 40 survive; 50, 60, 70 are dropped.
	if g.NumNodes() != 4 {
		t.Fatalf("kept %d users, want 4", g.NumNodes())
	}
	// Edges 10->20, 20->10, 30->40 survive; edges touching 50/70 are gone.
	if g.NumEdges() != 3 {
		t.Fatalf("kept %d edges, want 3", g.NumEdges())
	}

	s := g.Schema()
	// Education vocabulary: "college" (3 profiles) and "basic" (2) survive.
	eduAttr, _ := s.NodeAttr("E")
	if s.Node[eduAttr].Domain != 2 {
		t.Fatalf("education domain = %d, want 2", s.Node[eduAttr].Domain)
	}
	collegeVal, ok := s.Node[eduAttr].ValueOf("college")
	if !ok {
		t.Fatal("college missing from education vocabulary")
	}
	basicVal, ok := s.Node[eduAttr].ValueOf("basic")
	if !ok {
		t.Fatal("basic missing from education vocabulary")
	}

	// User 20 (node 1) filled "Basic College!": normalisation lowercases,
	// and the highest level (college) wins per paper step 3.
	if g.NodeValue(1, PokecSNAPEdu) != collegeVal {
		t.Errorf("user 20 edu = %d, want college=%d", g.NodeValue(1, PokecSNAPEdu), collegeVal)
	}
	_ = basicVal

	// Node order follows input order of kept profiles: 10, 20, 30, 40.
	if g.NodeValue(0, PokecSNAPGender) != GenderSNAPMale {
		t.Error("user 10 gender wrong")
	}
	if g.NodeValue(1, PokecSNAPGender) != GenderSNAPFemale {
		t.Error("user 20 gender wrong")
	}
	// Age buckets: 23 -> 18-24 (4), 31 -> 25-34 (5), 16 -> 14-17 (3).
	if g.NodeValue(0, PokecSNAPAge) != 4 || g.NodeValue(1, PokecSNAPAge) != 5 || g.NodeValue(2, PokecSNAPAge) != 3 {
		t.Errorf("age buckets: %d %d %d", g.NodeValue(0, PokecSNAPAge), g.NodeValue(1, PokecSNAPAge), g.NodeValue(2, PokecSNAPAge))
	}
	// Regions: "ba" (kept by 10, 20; also 50-70 counted) outranks "ke".
	if g.NodeValue(0, PokecSNAPRegion) != g.NodeValue(1, PokecSNAPRegion) {
		t.Error("users 10 and 20 should share a region value")
	}
	if g.NodeValue(0, PokecSNAPRegion) == g.NodeValue(2, PokecSNAPRegion) {
		t.Error("regions ba and ke must differ")
	}
	// Education: user 10 college, user 30 basic.
	if g.NodeValue(0, PokecSNAPEdu) != collegeVal {
		t.Errorf("user 10 edu = %d, want college=%d", g.NodeValue(0, PokecSNAPEdu), collegeVal)
	}
	if g.NodeValue(2, PokecSNAPEdu) != basicVal {
		t.Errorf("user 30 edu = %d, want basic=%d", g.NodeValue(2, PokecSNAPEdu), basicVal)
	}
}

// The highest education level wins when several are filled (paper step 3).
func TestSNAPEduHighestLevel(t *testing.T) {
	profiles := strings.Join([]string{
		profile(1, "1", "ba", 23, "basic college", "chat", "single"),
		profile(2, "0", "ba", 23, "basic college", "chat", "single"),
		profile(3, "1", "ba", 23, "basic", "chat", "single"),
	}, "\n")
	g, err := LoadSNAPPokec(strings.NewReader(profiles), strings.NewReader(""), fixtureOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("kept %d users", g.NumNodes())
	}
	s := g.Schema()
	eduAttr, _ := s.NodeAttr("E")
	collegeVal, _ := s.Node[eduAttr].ValueOf("college")
	if g.NodeValue(0, PokecSNAPEdu) != collegeVal {
		t.Errorf("user with basic+college resolved to %d, want college", g.NodeValue(0, PokecSNAPEdu))
	}
}

func TestSNAPMostFrequentWordWins(t *testing.T) {
	// "chat" appears in 3 profiles, "friend" in 2; a profile listing both
	// resolves to chat.
	profiles := strings.Join([]string{
		profile(1, "1", "ba", 23, "basic", "chat friend", "single"),
		profile(2, "0", "ba", 23, "basic", "chat", "single"),
		profile(3, "1", "ba", 23, "basic", "chat friend", "single"),
	}, "\n")
	g, err := LoadSNAPPokec(strings.NewReader(profiles), strings.NewReader(""), fixtureOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	lookAttr, _ := s.NodeAttr("L")
	chatVal, ok := s.Node[lookAttr].ValueOf("chat")
	if !ok {
		t.Fatal("chat missing from vocabulary")
	}
	if g.NodeValue(0, PokecSNAPLooking) != chatVal {
		t.Errorf("looking = %d, want chat=%d", g.NodeValue(0, PokecSNAPLooking), chatVal)
	}
}

func TestSNAPRegionCap(t *testing.T) {
	opt := fixtureOptions()
	opt.MaxRegions = 1
	// Two regions: "ba" x2, "ke" x1 -> only "ba" survives, "ke" users drop.
	profiles := strings.Join([]string{
		profile(1, "1", "ba", 23, "basic", "chat", "single"),
		profile(2, "0", "ba", 23, "basic", "chat", "single"),
		profile(3, "1", "ke", 23, "basic", "chat", "single"),
	}, "\n")
	g, err := LoadSNAPPokec(strings.NewReader(profiles), strings.NewReader(""), opt)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("kept %d users, want 2 (region cap)", g.NumNodes())
	}
}

func TestSNAPErrors(t *testing.T) {
	opt := fixtureOptions()
	cases := []struct {
		name               string
		profiles, relation string
	}{
		{"short profile line", "1\t1\tba", ""},
		{"bad user id", "x\t1\tba\t23\tbasic\tchat\tsingle\tz", ""},
		{"bad relationship", profile(1, "1", "ba", 23, "basic", "chat", "single"), "1"},
		{"bad relationship ids", profile(1, "1", "ba", 23, "basic", "chat", "single"), "a\tb"},
	}
	for _, c := range cases {
		_, err := LoadSNAPPokec(strings.NewReader(c.profiles), strings.NewReader(c.relation), opt)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAgeBuckets(t *testing.T) {
	cases := map[int]graph.Value{
		-1: graph.Null, 0: graph.Null,
		1: 1, 6: 1, 7: 2, 13: 2, 14: 3, 17: 3, 18: 4, 24: 4,
		25: 5, 34: 5, 35: 6, 44: 6, 45: 7, 54: 7, 55: 8, 64: 8,
		65: 9, 79: 9, 80: 10, 99: 10,
	}
	for age, want := range cases {
		if got := ageBucket(age); got != want {
			t.Errorf("ageBucket(%d) = %d, want %d", age, got, want)
		}
	}
}

func TestNormalizeWords(t *testing.T) {
	got := normalizeWords("Vysoká ŠKOLA 2. stupňa!")
	// Non-ASCII letters are dropped by the simple normaliser; ASCII words
	// survive lowercased.
	joined := strings.Join(got, " ")
	if strings.ContainsAny(joined, "0123456789!.") {
		t.Errorf("normalizeWords kept punctuation/digits: %q", got)
	}
	if normalizeWords("") != nil && len(normalizeWords("")) != 0 {
		t.Error("empty text must produce no words")
	}
	if w := normalizeWords("ABC def"); len(w) != 2 || w[0] != "abc" || w[1] != "def" {
		t.Errorf("normalizeWords = %q", w)
	}
}
