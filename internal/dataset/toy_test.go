package dataset

import (
	"testing"

	"grminer/internal/graph"
)

func TestToySchema(t *testing.T) {
	s := ToySchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Node) != 3 || len(s.Edge) != 1 {
		t.Fatalf("schema shape: %d node, %d edge attrs", len(s.Node), len(s.Edge))
	}
	if s.Node[ToySex].Homophily {
		t.Error("SEX must not be a homophily attribute (dating crosses sexes)")
	}
	if !s.Node[ToyRace].Homophily || !s.Node[ToyEdu].Homophily {
		t.Error("RACE and EDU must be homophily attributes")
	}
	if s.Node[ToyEdu].Label(EduGrad) != "Grad" {
		t.Errorf("EDU label = %q", s.Node[ToyEdu].Label(EduGrad))
	}
}

func TestToyDatingStructure(t *testing.T) {
	g := ToyDating()
	if g.NumNodes() != 14 {
		t.Fatalf("nodes = %d, want 14 (Figure 1b)", g.NumNodes())
	}
	// 15 dyads -> 30 directed edges.
	if g.NumEdges() != 30 {
		t.Fatalf("edges = %d, want 30", g.NumEdges())
	}
	// Figure 1b row checks (paper ids 1, 8, 14 -> nodes 0, 7, 13).
	checks := []struct {
		node           int
		sex, race, edu graph.Value
	}{
		{0, SexF, RaceAsian, EduGrad},
		{7, SexM, RaceAsian, EduGrad},
		{13, SexM, RaceWhite, EduHighSchool},
	}
	for _, c := range checks {
		if g.NodeValue(c.node, ToySex) != c.sex ||
			g.NodeValue(c.node, ToyRace) != c.race ||
			g.NodeValue(c.node, ToyEdu) != c.edu {
			t.Errorf("node %d attributes = %v", c.node, g.NodeValues(c.node))
		}
	}
	// Every edge has its reverse twin and the dates type.
	for e := 0; e < g.NumEdges(); e += 2 {
		if !g.EdgeAlive(e) || !g.EdgeAlive(e+1) {
			t.Fatalf("toy dataset has dead edge pair %d", e)
		}
		if g.Src(e) != g.Dst(e+1) || g.Dst(e) != g.Src(e+1) {
			t.Fatalf("edge %d lacks reverse twin", e)
		}
		if g.EdgeValue(e, 0) != TypeDates {
			t.Fatalf("edge %d type = %d", e, g.EdgeValue(e, 0))
		}
	}
	// Exactly 7 females and 7 males.
	var f, m int
	for n := 0; n < g.NumNodes(); n++ {
		switch g.NodeValue(n, ToySex) {
		case SexF:
			f++
		case SexM:
			m++
		}
	}
	if f != 7 || m != 7 {
		t.Errorf("gender counts: %dF %dM", f, m)
	}
	// 14 edges originate from males (GR1's conf denominator).
	maleSrc := 0
	for e := 0; e < g.NumEdges(); e++ {
		if g.EdgeAlive(e) && g.NodeValue(g.Src(e), ToySex) == SexM {
			maleSrc++
		}
	}
	if maleSrc != 14 {
		t.Errorf("male-source edges = %d, want 14", maleSrc)
	}
}
