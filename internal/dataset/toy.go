// Package dataset provides ready-made networks: the paper's Figure 1 toy
// dating network and helpers for loading real datasets from disk.
package dataset

import "grminer/internal/graph"

// Toy dating network value constants (Figure 1b).
const (
	SexF = 1
	SexM = 2

	RaceAsian  = 1
	RaceLatino = 2
	RaceWhite  = 3

	EduHighSchool = 1
	EduCollege    = 2
	EduGrad       = 3

	TypeDates = 1
)

// Toy node attribute indices.
const (
	ToySex = iota
	ToyRace
	ToyEdu
)

// ToySchema returns the schema of the toy dating network: SEX (non-
// homophily, as dating can be between same or opposite sex), RACE and EDU
// (homophily, Section III-B).
func ToySchema() *graph.Schema {
	s, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "SEX", Domain: 2, Labels: []string{"∅", "F", "M"}},
			{Name: "RACE", Domain: 3, Homophily: true, Labels: []string{"∅", "Asian", "Latino", "White"}},
			{Name: "EDU", Domain: 3, Homophily: true, Labels: []string{"∅", "HighSchool", "College", "Grad"}},
		},
		[]graph.Attribute{
			{Name: "TYPE", Domain: 1, Labels: []string{"∅", "dates"}},
		},
	)
	if err != nil {
		panic(err) // static definition; cannot fail
	}
	return s
}

// ToyDating builds the Figure 1 toy online-dating network. The paper prints
// the node table (Figure 1b) but the topology figure does not survive as
// text, so the 15 dyadic ties below are reconstructed to satisfy every
// measurement the paper reports about this network:
//
//	GR1 (SEX:M) -> (SEX:F, RACE:Asian):          supp 7/15, conf 7/14
//	GR2 (SEX:M, RACE:Asian) -> (SEX:F, RACE:Asian): supp 0,  conf 0
//	GR3 (SEX:F, EDU:Grad) -> (SEX:M, EDU:Grad):  supp 4/15, conf 4/6
//	GR4 (SEX:F, EDU:Grad) -> (SEX:M, EDU:College): supp 2/15, conf 2/6, nhp 100%
//
// Each undirected dyad is stored as two directed edges (Section III), so the
// graph has 30 directed edges; the paper's x/15 supports count dyads. In the
// directed representation supp(GR1) = 7 because exactly one direction of an
// M–F dyad has a male source.
func ToyDating() *graph.Graph {
	g := graph.MustNew(ToySchema(), 14)
	// Node ids are paper ids minus one. (SEX, RACE, EDU) per Figure 1b.
	rows := [][3]graph.Value{
		{SexF, RaceAsian, EduGrad},        // 1
		{SexF, RaceLatino, EduGrad},       // 2
		{SexF, RaceWhite, EduGrad},        // 3
		{SexF, RaceAsian, EduCollege},     // 4
		{SexF, RaceWhite, EduCollege},     // 5
		{SexF, RaceAsian, EduHighSchool},  // 6
		{SexF, RaceLatino, EduHighSchool}, // 7
		{SexM, RaceAsian, EduGrad},        // 8
		{SexM, RaceLatino, EduGrad},       // 9
		{SexM, RaceWhite, EduGrad},        // 10
		{SexM, RaceLatino, EduCollege},    // 11
		{SexM, RaceWhite, EduCollege},     // 12
		{SexM, RaceAsian, EduHighSchool},  // 13
		{SexM, RaceWhite, EduHighSchool},  // 14
	}
	for n, r := range rows {
		if err := g.SetNodeValues(n, r[0], r[1], r[2]); err != nil {
			panic(err)
		}
	}
	// 15 dyads (paper ids): 14 male–female ties plus one female–female tie.
	dyads := [][2]int{
		{1, 9}, {1, 10}, {1, 11}, // Asian F grad with non-Asian grads/college
		{2, 8}, {2, 12},
		{3, 9},
		{4, 12}, {4, 14},
		{6, 10}, {6, 14},
		{5, 8}, {5, 13},
		{7, 13}, {7, 12},
		{5, 7}, // the single same-sex tie
	}
	for _, d := range dyads {
		if err := g.AddUndirected(d[0]-1, d[1]-1, TypeDates); err != nil {
			panic(err)
		}
	}
	return g
}
