package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"grminer/internal/graph"
)

// This file implements the Section VI-A preprocessing pipeline for the real
// SNAP soc-pokec dump (https://snap.stanford.edu/data/soc-pokec.html), so
// the paper's actual evaluation data can be mined when available. The dump
// has two files:
//
//   - soc-pokec-profiles.txt: one user per line, tab-separated columns;
//     the columns used here are user_id, gender, region, AGE, and the three
//     free-text fields education, marital_status and what-looking-for
//     (columns configurable via SNAPPokecOptions).
//   - soc-pokec-relationships.txt: "src\tdst" directed friendship pairs.
//
// The paper's preprocessing, reproduced here:
//
//  1. strip non-letter characters from free text and lowercase it
//     (standard IR normalisation);
//  2. keep only words occurring in at least MinWordFreq profiles (the
//     paper uses 200), mapping everything else to "invalid";
//  3. for education take the highest level filled in; for looking-for and
//     marital status take the most frequent word;
//  4. drop profiles containing an invalid value, and induce the subgraph
//     on the remaining users (the paper keeps 87.98% of users and 68.83%
//     of edges);
//  5. discretise AGE into the ten buckets of Section VI-A.
//
// Region values are interned into a dense id space ordered by frequency,
// capped at the schema's domain (188 in the paper); rarer regions become
// invalid.

// SNAPPokecOptions configures the loader. Zero-valued fields take the
// defaults of DefaultSNAPPokecOptions.
type SNAPPokecOptions struct {
	// Column indices into soc-pokec-profiles.txt.
	IDCol, GenderCol, RegionCol, AgeCol int
	EduCol, LookingCol, MaritalCol      int
	// MinWordFreq is the minimum number of profiles a free-text word must
	// appear in to become a value (the paper uses 200).
	MinWordFreq int
	// MaxRegions caps the region domain (the paper's dump has 188).
	MaxRegions int
	// EduLevels orders education words from lowest to highest level; when
	// several appear in one profile the highest is kept (paper step 3).
	// Words not listed rank below all listed ones.
	EduLevels []string
}

// DefaultSNAPPokecOptions matches the column layout of the 2012 SNAP dump
// (0-based: user_id=0, gender=3, region=4, AGE=7, and the free-text fields
// at their documented positions) and the paper's thresholds.
func DefaultSNAPPokecOptions() SNAPPokecOptions {
	return SNAPPokecOptions{
		IDCol: 0, GenderCol: 3, RegionCol: 4, AgeCol: 7,
		EduCol: 9, LookingCol: 27, MaritalCol: 13,
		MinWordFreq: 200,
		MaxRegions:  188,
		EduLevels: []string{
			"preschool", "basic", "training", "secondary",
			"apprentice", "college", "bachelor", "master", "phd",
		},
	}
}

// ageBucket maps an age in years to the paper's ten buckets (1..10);
// 0 (unknown/invalid) stays null.
func ageBucket(age int) graph.Value {
	switch {
	case age <= 0:
		return graph.Null
	case age <= 6:
		return 1
	case age <= 13:
		return 2
	case age <= 17:
		return 3
	case age <= 24:
		return 4
	case age <= 34:
		return 5
	case age <= 44:
		return 6
	case age <= 54:
		return 7
	case age <= 64:
		return 8
	case age <= 79:
		return 9
	default:
		return 10
	}
}

// normalizeWords applies preprocessing step 1: keep letters, lowercase,
// split into words.
func normalizeWords(text string) []string {
	var b strings.Builder
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte(' ')
		}
	}
	return strings.Fields(b.String())
}

// snapProfile is one parsed profile line.
type snapProfile struct {
	id      int
	gender  graph.Value
	region  string
	age     graph.Value
	edu     []string
	looking []string
	marital []string
}

// LoadSNAPPokec parses the two SNAP files and returns the induced,
// preprocessed graph. Node ids are re-numbered densely over kept users.
func LoadSNAPPokec(profiles, relationships io.Reader, opt SNAPPokecOptions) (*graph.Graph, error) {
	if opt.MinWordFreq <= 0 {
		opt = DefaultSNAPPokecOptions()
	}

	parsed, err := parseProfiles(profiles, opt)
	if err != nil {
		return nil, err
	}

	// Vocabulary pass (step 2): word -> number of profiles containing it.
	freq := make(map[string]int)
	countWords := func(words []string) {
		seen := map[string]bool{}
		for _, w := range words {
			if !seen[w] {
				freq[w]++
				seen[w] = true
			}
		}
	}
	regionFreq := make(map[string]int)
	for _, p := range parsed {
		countWords(p.edu)
		countWords(p.looking)
		countWords(p.marital)
		if p.region != "" {
			regionFreq[p.region]++
		}
	}

	// Region interning: most frequent regions get ids 1..MaxRegions.
	regions := make([]string, 0, len(regionFreq))
	for r := range regionFreq {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool {
		if regionFreq[regions[i]] != regionFreq[regions[j]] {
			return regionFreq[regions[i]] > regionFreq[regions[j]]
		}
		return regions[i] < regions[j]
	})
	if len(regions) > opt.MaxRegions {
		regions = regions[:opt.MaxRegions]
	}
	regionID := make(map[string]graph.Value, len(regions))
	for i, r := range regions {
		regionID[r] = graph.Value(i + 1)
	}

	// Value vocabularies for the three text attributes (step 2-3).
	eduRank := make(map[string]int, len(opt.EduLevels))
	for i, w := range opt.EduLevels {
		eduRank[w] = i + 1
	}
	eduID, eduLabels := buildVocab(parsed, freq, opt.MinWordFreq, func(p *snapProfile) []string { return p.edu })
	lookID, lookLabels := buildVocab(parsed, freq, opt.MinWordFreq, func(p *snapProfile) []string { return p.looking })
	marID, marLabels := buildVocab(parsed, freq, opt.MinWordFreq, func(p *snapProfile) []string { return p.marital })

	// Resolve each profile to values; drop profiles with any invalid value
	// (step 4). A field left completely empty is also invalid — the paper
	// keeps only complete profiles.
	type resolved struct {
		id   int
		vals [6]graph.Value
	}
	var kept []resolved
	for i := range parsed {
		p := &parsed[i]
		var v resolved
		v.id = p.id
		v.vals[PokecSNAPGender] = p.gender
		v.vals[PokecSNAPAge] = p.age
		v.vals[PokecSNAPRegion] = regionID[p.region]
		v.vals[PokecSNAPEdu] = resolveEdu(p.edu, freq, opt.MinWordFreq, eduRank, eduID)
		v.vals[PokecSNAPLooking] = resolveFrequent(p.looking, freq, opt.MinWordFreq, lookID)
		v.vals[PokecSNAPMarital] = resolveFrequent(p.marital, freq, opt.MinWordFreq, marID)
		ok := true
		for _, val := range v.vals {
			if val == graph.Null {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, v)
		}
	}

	schema, err := snapSchema(len(regions), eduLabels, lookLabels, marLabels)
	if err != nil {
		return nil, err
	}
	g, err := graph.New(schema, len(kept))
	if err != nil {
		return nil, err
	}
	dense := make(map[int]int, len(kept))
	for n, v := range kept {
		dense[v.id] = n
		if err := g.SetNodeValues(n, v.vals[:]...); err != nil {
			return nil, err
		}
	}

	// Induced edges (step 4).
	sc := bufio.NewScanner(relationships)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: relationships line %d: %q", lineNo, line)
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dataset: relationships line %d: bad ids %q", lineNo, line)
		}
		s, okS := dense[src]
		d, okD := dense[dst]
		if !okS || !okD {
			continue // endpoint dropped during preprocessing
		}
		if _, err := g.AddEdge(s, d); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading relationships: %w", err)
	}
	return g, nil
}

// SNAP Pokec attribute indices (same order as the synthetic generator).
const (
	PokecSNAPGender = iota
	PokecSNAPAge
	PokecSNAPRegion
	PokecSNAPEdu
	PokecSNAPLooking
	PokecSNAPMarital
)

func parseProfiles(r io.Reader, opt SNAPPokecOptions) ([]snapProfile, error) {
	maxCol := opt.IDCol
	for _, c := range []int{opt.GenderCol, opt.RegionCol, opt.AgeCol, opt.EduCol, opt.LookingCol, opt.MaritalCol} {
		if c > maxCol {
			maxCol = c
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []snapProfile
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) <= maxCol {
			return nil, fmt.Errorf("dataset: profiles line %d: %d columns, need > %d", lineNo, len(fields), maxCol)
		}
		id, err := strconv.Atoi(strings.TrimSpace(fields[opt.IDCol]))
		if err != nil {
			return nil, fmt.Errorf("dataset: profiles line %d: bad user id %q", lineNo, fields[opt.IDCol])
		}
		var p snapProfile
		p.id = id
		switch strings.TrimSpace(fields[opt.GenderCol]) {
		case "1":
			p.gender = GenderSNAPMale
		case "0":
			p.gender = GenderSNAPFemale
		}
		p.region = strings.TrimSpace(strings.ToLower(fields[opt.RegionCol]))
		if age, err := strconv.Atoi(strings.TrimSpace(fields[opt.AgeCol])); err == nil {
			p.age = ageBucket(age)
		}
		p.edu = normalizeWords(fields[opt.EduCol])
		p.looking = normalizeWords(fields[opt.LookingCol])
		p.marital = normalizeWords(fields[opt.MaritalCol])
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading profiles: %w", err)
	}
	return out, nil
}

// Gender values in the SNAP loader.
const (
	GenderSNAPMale   graph.Value = 1
	GenderSNAPFemale graph.Value = 2
)

// buildVocab assigns dense value ids to frequent words of one text field,
// in descending frequency order.
func buildVocab(profiles []snapProfile, freq map[string]int, minFreq int,
	get func(*snapProfile) []string) (map[string]graph.Value, []string) {

	fieldFreq := map[string]int{}
	for i := range profiles {
		seen := map[string]bool{}
		for _, w := range get(&profiles[i]) {
			if freq[w] >= minFreq && !seen[w] {
				fieldFreq[w]++
				seen[w] = true
			}
		}
	}
	words := make([]string, 0, len(fieldFreq))
	for w := range fieldFreq {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if fieldFreq[words[i]] != fieldFreq[words[j]] {
			return fieldFreq[words[i]] > fieldFreq[words[j]]
		}
		return words[i] < words[j]
	})
	ids := make(map[string]graph.Value, len(words))
	labels := []string{"∅"}
	for i, w := range words {
		ids[w] = graph.Value(i + 1)
		labels = append(labels, w)
	}
	return ids, labels
}

// resolveEdu keeps the highest-ranked valid education word (paper step 3).
func resolveEdu(words []string, freq map[string]int, minFreq int,
	rank map[string]int, ids map[string]graph.Value) graph.Value {

	best := ""
	bestRank := -1
	for _, w := range words {
		if freq[w] < minFreq {
			return graph.Null // invalid word invalidates the profile
		}
		if r := rank[w]; r > bestRank {
			best, bestRank = w, r
		}
	}
	if best == "" {
		return graph.Null
	}
	return ids[best]
}

// resolveFrequent keeps the globally most frequent valid word.
func resolveFrequent(words []string, freq map[string]int, minFreq int,
	ids map[string]graph.Value) graph.Value {

	best := ""
	for _, w := range words {
		if freq[w] < minFreq {
			return graph.Null
		}
		if best == "" || freq[w] > freq[best] {
			best = w
		}
	}
	if best == "" {
		return graph.Null
	}
	return ids[best]
}

// snapSchema builds the schema with data-driven domains and labels.
func snapSchema(numRegions int, edu, look, mar []string) (*graph.Schema, error) {
	dom := func(labels []string) int {
		if len(labels) <= 1 {
			return 1 // keep the schema valid even for degenerate vocabularies
		}
		return len(labels) - 1
	}
	pad := func(labels []string, domain int) []string {
		for len(labels) < domain+1 {
			labels = append(labels, "")
		}
		return labels
	}
	if numRegions < 1 {
		numRegions = 1
	}
	return graph.NewSchema(
		[]graph.Attribute{
			{Name: "G", Domain: 2, Labels: []string{"∅", "Male", "Female"}},
			{Name: "A", Domain: 10, Homophily: true, Labels: []string{
				"∅", "0-6", "7-13", "14-17", "18-24", "25-34", "35-44", "45-54", "55-64", "65-79", "80+"}},
			{Name: "R", Domain: numRegions, Homophily: true},
			{Name: "E", Domain: dom(edu), Homophily: true, Labels: pad(edu, dom(edu))},
			{Name: "L", Domain: dom(look), Homophily: true, Labels: pad(look, dom(look))},
			{Name: "S", Domain: dom(mar), Labels: pad(mar, dom(mar))},
		},
		nil,
	)
}
