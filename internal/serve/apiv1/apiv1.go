// Package apiv1 declares the versioned JSON wire types of grminerd's /v1
// HTTP API, shared by the daemon's handlers and the grminer CLI's -json
// output so both speak the same schema.
//
// Every response/request struct carries a "grlint:api vN" marker, mirroring
// the gob wire structs' "grlint:wire vN": the golden api_schema.json
// snapshot next to this package pins each struct's exported fields AND json
// tags, and TestAPISchemaGolden fails when the response shape drifts
// without a version bump. Bump the struct's marker (and the daemon's
// /v<N>/ route prefix when the change is breaking), then regenerate with
//
//	go test ./internal/serve/apiv1 -run TestAPISchemaGolden -update-api
package apiv1

import (
	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// Version is the API generation every route in this package's schema
// belongs to; it is the "/v1" in the daemon's URL space.
const Version = 1

// Error is the uniform non-2xx response body.
//
// grlint:api v1
type Error struct {
	// Error is a human-readable description of what was wrong.
	Error string `json:"error"`
	// Code echoes the HTTP status code.
	Code int `json:"code"`
}

// Rule is one ranked mined rule.
//
// grlint:api v1
type Rule struct {
	// Rank is the 1-based position in the current top-k; GET
	// /v1/rules/{rank} addresses the rule by it.
	Rank int `json:"rank"`
	// GR is the rule in the textual form ParseGR accepts, e.g.
	// "(SEX:F, EDU:Grad) -> (SEX:M)".
	GR string `json:"gr"`
	// Score is the rule's value under the engine's ranking metric.
	Score float64 `json:"score"`
	// Supp is the absolute support |L -w-> R|.
	Supp int `json:"supp"`
	// Conf is the rule's plain confidence.
	Conf float64 `json:"conf"`
}

// TopKResponse is GET /v1/topk: the engine's current ranked rules plus the
// snapshot they came from.
//
// grlint:api v1
type TopKResponse struct {
	// Epoch identifies the published snapshot; it increases by one per
	// applied ingest batch.
	Epoch uint64 `json:"epoch"`
	// TotalEdges is the live edge count the snapshot was mined over.
	TotalEdges int `json:"total_edges"`
	// Metric names the ranking metric ("nhp", "conf", ...).
	Metric string `json:"metric"`
	// K is the configured top-k bound.
	K int `json:"k"`
	// Rules is the ranked list, best first, at most K entries.
	Rules []Rule `json:"rules"`
}

// RuleCounts carries the absolute supports a rule's metrics derive from
// (metrics.Counts over the wire).
//
// grlint:api v1
type RuleCounts struct {
	// LWR is |matches of L -w-> R|.
	LWR int `json:"lwr"`
	// LW is |matches of L -w-> *|.
	LW int `json:"lw"`
	// Hom is the homophily-effect count the nhp denominator excludes.
	Hom int `json:"hom"`
	// R is |nodes matching R| (0 unless the metric needs it).
	R int `json:"r"`
	// E is the live edge total at evaluation time.
	E int `json:"e"`
}

// RuleResponse is GET /v1/rules/{rank}: one rule plus its explain counts.
//
// grlint:api v1
type RuleResponse struct {
	Rule
	// Epoch identifies the snapshot the rule was read from.
	Epoch uint64 `json:"epoch"`
	// Counts are the supports behind the scores.
	Counts RuleCounts `json:"counts"`
	// CountsSource is "pool" when the counts came from the incremental
	// engine's exactly-maintained candidate pool, "scan" when they were
	// recomputed by a full graph scan.
	CountsSource string `json:"counts_source"`
	// Nhp is the rule's non-homophily preference (0 when undefined).
	Nhp float64 `json:"nhp"`
	// Trivial reports whether the rule is a pure homophily bond.
	Trivial bool `json:"trivial"`
}

// RecommendRequest is POST /v1/recommend. Exactly one of Node/RHS selects
// the query: Node asks "what should we suggest to this node?" (per-node
// suggestions), RHS asks "who should we target with this profile?" (a
// campaign over all nodes).
//
// grlint:api v1
type RecommendRequest struct {
	// Node is the 0-based node id to suggest for.
	Node *int `json:"node,omitempty"`
	// RHS is a campaign target descriptor, e.g. "(PRODUCT:Bonds)".
	RHS string `json:"rhs,omitempty"`
	// TopN bounds the returned list (0 = all).
	TopN int `json:"top_n,omitempty"`
}

// Suggestion is one recommended target profile for a node.
//
// grlint:api v1
type Suggestion struct {
	// RHS is the recommended descriptor.
	RHS string `json:"rhs"`
	// Score aggregates rule-score-weighted evidence.
	Score float64 `json:"score"`
	// Evidence counts the supporting in-edges.
	Evidence int `json:"evidence"`
	// Rules lists the mined rules that contributed, in textual form.
	Rules []string `json:"rules"`
}

// Prospect is one (node, score) campaign target.
//
// grlint:api v1
type Prospect struct {
	// Node is the prospect's 0-based node id.
	Node int `json:"node"`
	// Score aggregates rule-score-weighted evidence.
	Score float64 `json:"score"`
	// Evidence counts the supporting in-edges.
	Evidence int `json:"evidence"`
}

// RecommendResponse is POST /v1/recommend's result: Suggestions for a Node
// query, Prospects for an RHS campaign.
//
// grlint:api v1
type RecommendResponse struct {
	// Epoch identifies the snapshot whose rules drove the scoring.
	Epoch uint64 `json:"epoch"`
	// Rules is how many non-trivial mined rules were applied.
	Rules int `json:"rules"`
	// Suggestions answers a Node query (nil otherwise).
	Suggestions []Suggestion `json:"suggestions,omitempty"`
	// Prospects answers an RHS campaign (nil otherwise).
	Prospects []Prospect `json:"prospects,omitempty"`
}

// PropagateRequest is POST /v1/propagate: run GR-influence class
// propagation over the current graph for one node attribute.
//
// grlint:api v1
type PropagateRequest struct {
	// Attr is the class node attribute index.
	Attr int `json:"attr"`
	// FromRules derives the influence matrix from the currently mined
	// rules instead of fresh whole-graph queries.
	FromRules bool `json:"from_rules,omitempty"`
	// Epsilon is the LinBP damping factor (default 0.05).
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxIter bounds the sweeps (default 100).
	MaxIter int `json:"max_iter,omitempty"`
	// Tol is the per-node L1 convergence threshold (default 1e-6).
	Tol float64 `json:"tol,omitempty"`
	// Nodes restricts the returned beliefs to these node ids (the run
	// always covers the whole graph); nil returns every node.
	Nodes []int `json:"nodes,omitempty"`
}

// NodeBeliefs is one node's propagated class beliefs.
//
// grlint:api v1
type NodeBeliefs struct {
	// Node is the 0-based node id.
	Node int `json:"node"`
	// Beliefs is the residual belief vector over the attribute's classes.
	Beliefs []float64 `json:"beliefs"`
}

// PropagateResponse is POST /v1/propagate's result.
//
// grlint:api v1
type PropagateResponse struct {
	// Epoch identifies the snapshot the run was consistent with.
	Epoch uint64 `json:"epoch"`
	// Iterations is the number of sweeps performed.
	Iterations int `json:"iterations"`
	// Converged reports whether Tol was met before MaxIter.
	Converged bool `json:"converged"`
	// Classes is the attribute's domain size (the belief vector length).
	Classes int `json:"classes"`
	// Nodes carries the requested nodes' beliefs.
	Nodes []NodeBeliefs `json:"nodes"`
}

// IngestEdge is one edge in an ingest batch: an insertion carries the new
// edge's attributes; a deletion retracts one live edge matching src, dst
// and vals exactly.
//
// grlint:api v1
type IngestEdge struct {
	// Src is the source node id.
	Src int `json:"src"`
	// Dst is the destination node id.
	Dst int `json:"dst"`
	// Vals are the edge attribute values, schema order (0 = null).
	Vals []int `json:"vals,omitempty"`
}

// IngestRequest is POST /v1/ingest: one atomic batch of insertions and
// retractions. Malformed input anywhere in the batch — a schema-rejected
// insert or a retraction matching no live edge — rejects the whole batch
// and the engine state is untouched.
//
// grlint:api v1
type IngestRequest struct {
	// Ins are the edge insertions.
	Ins []IngestEdge `json:"ins,omitempty"`
	// Del are the edge retractions.
	Del []IngestEdge `json:"del,omitempty"`
}

// IngestResponse is POST /v1/ingest's result after the batch applied.
//
// grlint:api v1
type IngestResponse struct {
	// Epoch is the snapshot the batch published.
	Epoch uint64 `json:"epoch"`
	// Edges / Deletes echo the applied batch size.
	Edges   int `json:"edges"`
	Deletes int `json:"deletes"`
	// Changed counts top-k entries that are new or re-scored vs the
	// previous snapshot.
	Changed int `json:"changed"`
	// TotalEdges is the live edge count after the batch.
	TotalEdges int `json:"total_edges"`
}

// Event is one rule-drift event on the GET /v1/events SSE stream, emitted
// after every applied ingest batch.
//
// grlint:api v1
type Event struct {
	// Epoch is the snapshot the batch published.
	Epoch uint64 `json:"epoch"`
	// Changed counts top-k entries new or re-scored by the batch.
	Changed int `json:"changed"`
	// TotalEdges is the live edge count after the batch.
	TotalEdges int `json:"total_edges"`
	// Edges / Deletes echo the applied batch size.
	Edges   int `json:"edges"`
	Deletes int `json:"deletes"`
}

// WorkerStatus is one shard worker's failover record in GET /v1/status
// (core.WorkerHealth over the wire).
//
// grlint:api v2
type WorkerStatus struct {
	// Shard is the shard index; Addr names the shardd daemon hosting it
	// (absent for an in-process worker).
	Shard int    `json:"shard"`
	Addr  string `json:"addr,omitempty"`
	// Live is false only when the shard is down with no replacement — the
	// engine is broken and ingests will fail. Recovering is true while a
	// replacement is being rebuilt (the shard is briefly neither).
	Live       bool `json:"live"`
	Recovering bool `json:"recovering,omitempty"`
	// Retries counts operations re-issued after a worker loss,
	// Replacements successful worker rebuilds, and ReplayedBatches the
	// routed batches replayed into replacements.
	Retries         int64 `json:"retries"`
	Replacements    int64 `json:"replacements"`
	ReplayedBatches int64 `json:"replayed_batches"`
	// CheckpointEpoch counts the checkpoints taken of this shard;
	// LogSuffixLen is the replay-log suffix retained past the newest
	// checkpoint — a healthy checkpointing shard keeps it hovering below
	// the checkpoint interval, bounding recovery replay.
	CheckpointEpoch int64 `json:"checkpoint_epoch"`
	LogSuffixLen    int   `json:"log_suffix_len"`
	// LastError is the most recent worker-loss cause (absent if none).
	LastError string `json:"last_error,omitempty"`
}

// StatusResponse is GET /v1/status: the daemon's identity, lifetime ingest
// totals, and the worker fleet's health.
//
// grlint:api v2
type StatusResponse struct {
	// APIVersion is the schema generation (this package's Version).
	APIVersion int `json:"api_version"`
	// Epoch is the current snapshot.
	Epoch uint64 `json:"epoch"`
	// TotalEdges is the current live edge count.
	TotalEdges int `json:"total_edges"`
	// Metric / MinSupp / MinScore / K / DynamicFloor echo the engine's
	// effective mining options.
	Metric       string  `json:"metric"`
	MinSupp      int     `json:"min_supp"`
	MinScore     float64 `json:"min_score"`
	K            int     `json:"k"`
	DynamicFloor bool    `json:"dynamic_floor"`
	// Batches / Edges / Deletes are lifetime ingest totals.
	Batches int `json:"batches"`
	Edges   int `json:"edges"`
	Deletes int `json:"deletes"`
	// Fleet is the per-shard worker health of a sharded engine, as of the
	// current snapshot (absent for single-store engines).
	Fleet []WorkerStatus `json:"fleet,omitempty"`
	// DroppedEvents counts SSE drift events dropped (lifetime) because a
	// subscriber's buffer was full — a rising value means a slow /v1/events
	// consumer is losing drift notifications.
	DroppedEvents int64 `json:"dropped_events"`
}

// WorkerStatusFrom renders one core.WorkerHealth record over the wire.
func WorkerStatusFrom(h core.WorkerHealth) WorkerStatus {
	return WorkerStatus{
		Shard:           h.Shard,
		Addr:            h.Addr,
		Live:            h.Live,
		Recovering:      h.Recovering,
		Retries:         h.Retries,
		Replacements:    h.Replacements,
		ReplayedBatches: h.ReplayedBatches,
		CheckpointEpoch: h.CheckpointEpoch,
		LogSuffixLen:    h.LogSuffixLen,
		LastError:       h.LastError,
	}
}

// MetricName names opt's ranking metric as the API reports it.
func MetricName(opt core.Options) string {
	if opt.Metric.Name == "" {
		return metrics.NhpMetric.Name
	}
	return opt.Metric.Name
}

// RuleFromScored renders one ranked rule (rank is 1-based).
func RuleFromScored(rank int, s gr.Scored, schema *graph.Schema) Rule {
	return Rule{
		Rank:  rank,
		GR:    s.GR.Format(schema),
		Score: s.Score,
		Supp:  s.Supp,
		Conf:  s.Conf,
	}
}

// TopKFromResult renders a mining result as the versioned top-k response;
// epoch 0 means "no snapshot" (one-shot CLI output).
func TopKFromResult(res *core.Result, schema *graph.Schema, epoch uint64) TopKResponse {
	out := TopKResponse{
		Epoch:      epoch,
		TotalEdges: res.TotalEdges,
		Metric:     MetricName(res.Options),
		K:          res.Options.K,
		Rules:      make([]Rule, 0, len(res.TopK)),
	}
	for i, s := range res.TopK {
		out.Rules = append(out.Rules, RuleFromScored(i+1, s, schema))
	}
	return out
}

// CountsFrom renders metrics.Counts over the wire.
func CountsFrom(c metrics.Counts) RuleCounts {
	return RuleCounts{LWR: c.LWR, LW: c.LW, Hom: c.Hom, R: c.R, E: c.E}
}
