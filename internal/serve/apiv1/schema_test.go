package apiv1

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"grminer/internal/lint/wire"
)

var updateAPI = flag.Bool("update-api", false, "rewrite api_schema.json from source")

const (
	pkgPath    = "grminer/internal/serve/apiv1"
	goldenFile = "api_schema.json"
)

// TestAPISchemaGolden pins the /v1 JSON schema: every grlint:api-annotated
// struct's exported fields and json tags must match the checked-in
// api_schema.json exactly. A shape change without a version bump — or a
// version bump without a shape change — fails here before it fails a
// client. Regenerate deliberately with -update-api.
func TestAPISchemaGolden(t *testing.T) {
	decls, err := wire.FromDirDirective(".", pkgPath, "api", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) == 0 {
		t.Fatal("no grlint:api-annotated structs found")
	}
	for _, d := range decls {
		if d.BadMark != "" {
			t.Errorf("%s: malformed grlint:api marker %q (want vN)", d.Key, d.BadMark)
		}
	}

	// Every exported struct in the package is part of the wire surface and
	// must carry the marker — an unannotated DTO would drift unpinned.
	annotated := make(map[string]bool, len(decls))
	for _, d := range decls {
		annotated[d.Name] = true
	}
	for _, name := range exportedStructs(t, ".") {
		if !annotated[name] {
			t.Errorf("exported struct %s has no grlint:api marker; annotate it so the schema test pins it", name)
		}
	}

	current := wire.ToSchema(decls)
	if *updateAPI {
		if err := wire.Save(goldenFile, current); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d structs", goldenFile, len(current))
		return
	}

	golden, err := wire.Load(goldenFile)
	if err != nil {
		if os.IsNotExist(err) {
			t.Fatalf("%s missing; generate it with: go test ./internal/serve/apiv1 -run TestAPISchemaGolden -update-api", goldenFile)
		}
		t.Fatal(err)
	}
	if diff := wire.Diff(golden, current); diff != "" {
		t.Errorf("JSON API schema drifted from %s:\n%s\n\nIf the change is intentional, bump the struct's grlint:api version (and the route prefix for breaking changes), then regenerate with -update-api.", goldenFile, diff)
	}

	// The endpoints' load-bearing response shapes must stay pinned even if
	// someone regenerates the golden wholesale.
	for _, key := range []string{
		pkgPath + ".Error",
		pkgPath + ".TopKResponse",
		pkgPath + ".RuleResponse",
		pkgPath + ".RecommendResponse",
		pkgPath + ".PropagateResponse",
		pkgPath + ".IngestRequest",
		pkgPath + ".IngestResponse",
		pkgPath + ".Event",
		pkgPath + ".StatusResponse",
	} {
		if _, ok := golden[key]; !ok {
			t.Errorf("golden schema lost %s", key)
		}
	}
}

// exportedStructs lists the package's exported struct type names.
func exportedStructs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gen, ok := d.(*ast.GenDecl)
				if !ok || gen.Tok != token.TYPE {
					continue
				}
				for _, spec := range gen.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); ok {
						names = append(names, ts.Name.Name)
					}
				}
			}
		}
	}
	return names
}
