// Package serve is grminerd's HTTP layer: the versioned /v1 JSON API over a
// live incremental mining engine, built for heavy read traffic under a
// continuous ingest stream.
//
// Read/write isolation is RCU-style: after every applied batch the writer
// builds an immutable Snapshot (epoch, cloned top-k, explain counts) and
// publishes it with one atomic pointer store. Snapshot readers (GET
// /v1/topk, /v1/rules, /v1/status, the SSE event stream) are wait-free —
// they load the pointer and never take a lock, so they can never block the
// miner or observe a half-applied batch. Only queries that must scan the
// graph itself (recommend, propagate, explain-by-rescan) share an RWMutex
// with the ingest path.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/propagate"
	"grminer/internal/recommend"
	"grminer/internal/serve/apiv1"
	"grminer/internal/topk"
)

// Engine is the mining surface the server drives: any incremental engine
// variant (grminer.Engine, core.Incremental, core.IncrementalSharded)
// satisfies it.
type Engine interface {
	ApplyBatch(core.Batch) (*core.Result, core.IncStats, error)
	Result() *core.Result
	Options() core.Options
	Cumulative() core.IncStats
}

// Explainer is optionally satisfied by engines that maintain exact per-rule
// counts (the single-store incremental pool); the server then serves
// explain counts straight from the snapshot instead of rescanning.
type Explainer interface {
	Explain(gr.GR) (metrics.Counts, bool)
}

// FleetReporter is optionally satisfied by sharded engines that track
// per-worker failover health (grminer.Engine, core.IncrementalSharded); the
// server then exposes the fleet in GET /v1/status. Health is captured into
// each snapshot under the write lock, so status reads stay wait-free.
type FleetReporter interface {
	FleetHealth() []core.WorkerHealth
}

// Snapshot is one published, immutable view of the mining state. Everything
// reachable from it is owned by the snapshot alone (cloned at publish
// time); readers may hold it indefinitely.
type Snapshot struct {
	// Epoch increases by exactly one per applied batch, starting at 1 for
	// the seed mine.
	Epoch uint64
	// TopK is the ranked rule list, cloned from the engine.
	TopK []gr.Scored
	// Counts[i] holds TopK[i]'s maintained counts when HasCounts[i].
	Counts    []metrics.Counts
	HasCounts []bool
	// TotalEdges is the live edge count the snapshot was mined over.
	TotalEdges int
	// Options are the engine's effective mining options.
	Options core.Options
	// Cumulative are lifetime ingest totals at publish time.
	Cumulative core.IncStats
	// Changed counts top-k entries new or re-scored vs the previous epoch.
	Changed int
	// Digest fingerprints (Epoch, TopK); the race stress test recomputes
	// it reader-side to prove snapshots are never observed torn.
	Digest uint64
	// Fleet is the sharded engine's per-worker failover health at publish
	// time (nil for single-store engines).
	Fleet []core.WorkerHealth

	schema *graph.Schema
}

// digest folds the snapshot's identity into one comparable word.
func (s *Snapshot) digest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(s.Epoch)
	mix(uint64(s.TotalEdges))
	for i := range s.TopK {
		for _, b := range []byte(s.TopK[i].GR.Key()) {
			mix(uint64(b))
		}
		mix(uint64(s.TopK[i].Supp))
		mix(uint64(int64(s.TopK[i].Score * 1e12)))
	}
	return h
}

// VerifyDigest recomputes the published digest; false means the reader
// observed a torn snapshot (must be impossible).
func (s *Snapshot) VerifyDigest() bool { return s.digest() == s.Digest }

// Server wires an Engine to the /v1 handler set.
type Server struct {
	eng   Engine
	g     *graph.Graph
	exp   Explainer     // nil when the engine maintains no per-rule counts
	fleet FleetReporter // nil when the engine tracks no worker fleet

	// mu guards the engine and its graph: ingest takes the write lock,
	// graph-scanning queries the read lock. Snapshot reads take neither.
	mu   sync.RWMutex
	snap atomic.Pointer[Snapshot]

	subMu   sync.Mutex
	subs    map[int]chan apiv1.Event
	nextSub int

	// droppedEvents counts drift events discarded because a subscriber's
	// buffer was full; surfaced in /v1/status so operators can spot slow
	// SSE consumers.
	droppedEvents atomic.Int64
}

// New wraps an incremental engine (which owns g) and publishes epoch 1 from
// its seed mine.
func New(eng Engine, g *graph.Graph) *Server {
	s := &Server{eng: eng, g: g, subs: make(map[int]chan apiv1.Event)}
	if exp, ok := eng.(Explainer); ok {
		s.exp = exp
	}
	if fr, ok := eng.(FleetReporter); ok {
		s.fleet = fr
	}
	s.snap.Store(s.buildSnapshot(eng.Result(), nil))
	return s
}

// Snapshot returns the currently published snapshot (wait-free).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// buildSnapshot clones res into an immutable snapshot following prev.
// Callers must hold the write lock (or be the constructor): Explain interns
// through the engine's dictionary.
func (s *Server) buildSnapshot(res *core.Result, prev *Snapshot) *Snapshot {
	snap := &Snapshot{
		Epoch:      1,
		TopK:       append([]gr.Scored(nil), res.TopK...),
		TotalEdges: res.TotalEdges,
		Options:    res.Options,
		Cumulative: s.eng.Cumulative(),
		schema:     s.g.Schema(),
	}
	if prev != nil {
		snap.Epoch = prev.Epoch + 1
		snap.Changed = topk.ChangedFrom(prev.TopK, snap.TopK)
	}
	snap.Counts = make([]metrics.Counts, len(snap.TopK))
	snap.HasCounts = make([]bool, len(snap.TopK))
	if s.exp != nil {
		for i := range snap.TopK {
			snap.Counts[i], snap.HasCounts[i] = s.exp.Explain(snap.TopK[i].GR)
		}
	}
	if s.fleet != nil {
		snap.Fleet = s.fleet.FleetHealth()
	}
	snap.Digest = snap.digest()
	return snap
}

// Ingest applies one batch atomically and publishes the next epoch. It is
// the single write path; concurrent callers serialize on the write lock.
func (s *Server) Ingest(b core.Batch) (*Snapshot, core.IncStats, error) {
	s.mu.Lock()
	res, stats, err := s.eng.ApplyBatch(b)
	if err != nil {
		s.mu.Unlock()
		return nil, stats, err
	}
	snap := s.buildSnapshot(res, s.snap.Load())
	s.snap.Store(snap)
	s.mu.Unlock()

	s.broadcast(apiv1.Event{
		Epoch:      snap.Epoch,
		Changed:    snap.Changed,
		TotalEdges: snap.TotalEdges,
		Edges:      stats.Edges,
		Deletes:    stats.Deleted,
	})
	return snap, stats, nil
}

// broadcast fans one drift event out to every subscriber, dropping it for
// subscribers whose buffer is full (a slow SSE client must not block
// ingest).
func (s *Server) broadcast(ev apiv1.Event) {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- ev:
		default:
			s.droppedEvents.Add(1)
		}
	}
	s.subMu.Unlock()
}

// subscribe registers an event channel; the returned cancel removes it.
func (s *Server) subscribe() (<-chan apiv1.Event, func()) {
	ch := make(chan apiv1.Event, 16)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	return ch, func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
}

// Handler returns the /v1 route set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/rules/{id}", s.handleRule)
	mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/propagate", s.handlePropagate)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiv1.Error{Error: fmt.Sprintf(format, args...), Code: status})
}

// decodeJSON strictly decodes one JSON body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	rules := snap.TopK
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", q)
			return
		}
		if n < len(rules) {
			rules = rules[:n]
		}
	}
	out := apiv1.TopKResponse{
		Epoch:      snap.Epoch,
		TotalEdges: snap.TotalEdges,
		Metric:     apiv1.MetricName(snap.Options),
		K:          snap.Options.K,
		Rules:      make([]apiv1.Rule, 0, len(rules)),
	}
	for i, sc := range rules {
		out.Rules = append(out.Rules, apiv1.RuleFromScored(i+1, sc, snap.schema))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRule(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	rank, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "rule id must be a 1-based rank, got %q", r.PathValue("id"))
		return
	}
	if rank < 1 || rank > len(snap.TopK) {
		writeErr(w, http.StatusNotFound, "rank %d not in the current top-%d (epoch %d)", rank, len(snap.TopK), snap.Epoch)
		return
	}
	sc := snap.TopK[rank-1]
	counts, source := snap.Counts[rank-1], "pool"
	if !snap.HasCounts[rank-1] {
		// The engine keeps no counts for this rule (sharded variant, or a
		// spilled entry): recompute by a full scan under the read lock so
		// ingest cannot mutate the graph mid-scan.
		s.mu.RLock()
		counts = metrics.Eval(s.g, sc.GR)
		s.mu.RUnlock()
		source = "scan"
	}
	writeJSON(w, http.StatusOK, apiv1.RuleResponse{
		Rule:         apiv1.RuleFromScored(rank, sc, snap.schema),
		Epoch:        snap.Epoch,
		Counts:       apiv1.CountsFrom(counts),
		CountsSource: source,
		Nhp:          metrics.Nhp(counts),
		Trivial:      sc.GR.Trivial(snap.schema),
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req apiv1.RecommendRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad recommend request: %v", err)
		return
	}
	if (req.Node == nil) == (req.RHS == "") {
		writeErr(w, http.StatusBadRequest, "exactly one of node / rhs selects the query")
		return
	}
	snap := s.snap.Load()
	out := apiv1.RecommendResponse{Epoch: snap.Epoch}

	// The recommender scans the live graph, so it shares the read lock
	// with ingest; the rule set comes from the immutable snapshot.
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := recommend.New(s.g, snap.TopK)
	out.Rules = rec.Rules()
	if req.Node != nil {
		suggestions, err := rec.ForNode(*req.Node, req.TopN)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		out.Suggestions = make([]apiv1.Suggestion, 0, len(suggestions))
		for _, sg := range suggestions {
			dto := apiv1.Suggestion{
				RHS:      gr.GR{R: sg.R}.Format(snap.schema),
				Score:    sg.Score,
				Evidence: sg.Evidence,
				Rules:    make([]string, 0, len(sg.Rules)),
			}
			for _, rule := range sg.Rules {
				dto.Rules = append(dto.Rules, rule.Format(snap.schema))
			}
			out.Suggestions = append(out.Suggestions, dto)
		}
	} else {
		rhs, err := gr.ParseDescriptor(snap.schema.Node, req.RHS)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad rhs: %v", err)
			return
		}
		prospects, err := rec.Campaign(rhs, req.TopN)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		out.Prospects = make([]apiv1.Prospect, 0, len(prospects))
		for _, p := range prospects {
			out.Prospects = append(out.Prospects, apiv1.Prospect{Node: p.Node, Score: p.Score, Evidence: p.Evidence})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePropagate(w http.ResponseWriter, r *http.Request) {
	var req apiv1.PropagateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad propagate request: %v", err)
		return
	}
	snap := s.snap.Load()

	s.mu.RLock()
	defer s.mu.RUnlock()
	var influence [][]float64
	var err error
	if req.FromRules {
		influence, err = propagate.InfluenceFromGRs(snap.schema, req.Attr, snap.TopK)
	} else {
		influence, err = propagate.InfluenceMatrix(s.g, req.Attr)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := propagate.Run(s.g, influence, propagate.Config{
		Attr:    req.Attr,
		Epsilon: req.Epsilon,
		MaxIter: req.MaxIter,
		Tol:     req.Tol,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	nodes := req.Nodes
	if nodes == nil {
		nodes = make([]int, len(res.Beliefs))
		for i := range nodes {
			nodes[i] = i
		}
	}
	out := apiv1.PropagateResponse{
		Epoch:      snap.Epoch,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Classes:    snap.schema.Node[req.Attr].Domain,
		Nodes:      make([]apiv1.NodeBeliefs, 0, len(nodes)),
	}
	for _, v := range nodes {
		if v < 0 || v >= len(res.Beliefs) {
			writeErr(w, http.StatusBadRequest, "node %d out of range", v)
			return
		}
		out.Nodes = append(out.Nodes, apiv1.NodeBeliefs{Node: v, Beliefs: res.Beliefs[v]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req apiv1.IngestRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad ingest request: %v", err)
		return
	}
	if len(req.Ins) == 0 && len(req.Del) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	b := core.Batch{}
	if len(req.Ins) > 0 {
		b.Ins = make([]core.EdgeInsert, len(req.Ins))
		for i, e := range req.Ins {
			vals, err := toValues(e.Vals)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "ins[%d]: %v", i, err)
				return
			}
			b.Ins[i] = core.EdgeInsert{Src: e.Src, Dst: e.Dst, Vals: vals}
		}
	}
	if len(req.Del) > 0 {
		b.Del = make([]core.EdgeDelete, len(req.Del))
		for i, e := range req.Del {
			vals, err := toValues(e.Vals)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "del[%d]: %v", i, err)
				return
			}
			b.Del[i] = core.EdgeDelete{Src: e.Src, Dst: e.Dst, Vals: vals}
		}
	}
	snap, stats, err := s.Ingest(b)
	if err != nil {
		// The engine rejected the batch atomically: nothing applied, no
		// epoch published. The client's data was at fault.
		writeErr(w, http.StatusBadRequest, "batch rejected: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, apiv1.IngestResponse{
		Epoch:      snap.Epoch,
		Edges:      stats.Edges,
		Deletes:    stats.Deleted,
		Changed:    snap.Changed,
		TotalEdges: snap.TotalEdges,
	})
}

// toValues converts wire ints to schema values, rejecting out-of-range
// input before it can reach the engine.
func toValues(in []int) ([]graph.Value, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]graph.Value, len(in))
	for i, v := range in {
		if v < 0 || v > int(^graph.Value(0)) {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out[i] = graph.Value(v)
	}
	return out, nil
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := s.subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Open with the current epoch so a subscriber can detect batches it
	// missed between connecting and the first drift event.
	snap := s.snap.Load()
	writeEvent(w, "hello", apiv1.Event{Epoch: snap.Epoch, TotalEdges: snap.TotalEdges})
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			writeEvent(w, "drift", ev)
			fl.Flush()
		}
	}
}

func writeEvent(w http.ResponseWriter, name string, ev apiv1.Event) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	out := apiv1.StatusResponse{
		APIVersion:    apiv1.Version,
		Epoch:         snap.Epoch,
		TotalEdges:    snap.TotalEdges,
		Metric:        apiv1.MetricName(snap.Options),
		MinSupp:       snap.Options.MinSupp,
		MinScore:      snap.Options.MinScore,
		K:             snap.Options.K,
		DynamicFloor:  snap.Options.DynamicFloor,
		Batches:       snap.Cumulative.Batches,
		Edges:         snap.Cumulative.Edges,
		Deletes:       snap.Cumulative.Deleted,
		DroppedEvents: s.droppedEvents.Load(),
	}
	if len(snap.Fleet) > 0 {
		out.Fleet = make([]apiv1.WorkerStatus, 0, len(snap.Fleet))
		for _, h := range snap.Fleet {
			out.Fleet = append(out.Fleet, apiv1.WorkerStatusFrom(h))
		}
	}
	writeJSON(w, http.StatusOK, out)
}
