package serve

import (
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/serve/apiv1"
)

// A subscriber that stops draining must not block ingest: broadcast drops
// the event and counts the drop for /v1/status.
func TestBroadcastDropsForFullSubscriber(t *testing.T) {
	g := dataset.ToyDating()
	inc, err := core.NewIncremental(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := New(inc, g)

	ch, cancel := s.subscribe()
	defer cancel()

	// Fill the subscriber's buffer and then some; the overflow must be
	// dropped, not block.
	cap := cap(ch)
	for i := 0; i < cap+3; i++ {
		s.broadcast(apiv1.Event{Epoch: uint64(i)})
	}
	if got := s.droppedEvents.Load(); got != 3 {
		t.Fatalf("dropped %d events, want 3 (buffer %d, sent %d)", got, cap, cap+3)
	}
	if len(ch) != cap {
		t.Fatalf("subscriber holds %d events, want a full buffer of %d", len(ch), cap)
	}
}
