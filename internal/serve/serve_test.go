package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/serve"
	"grminer/internal/serve/apiv1"
)

// newServer spins up a serve.Server over the toy dating network's
// single-store incremental engine (which maintains exact per-rule counts,
// so explain answers come from the pool).
func newServer(t *testing.T) (*serve.Server, *graph.Graph) {
	t.Helper()
	g := dataset.ToyDating()
	inc, err := core.NewIncremental(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(inc, g), g
}

// noExplainEngine hides the incremental pool's Explain so the server must
// fall back to full-scan explain counts.
type noExplainEngine struct{ inc *core.Incremental }

func (e noExplainEngine) ApplyBatch(b core.Batch) (*core.Result, core.IncStats, error) {
	return e.inc.ApplyBatch(b)
}
func (e noExplainEngine) Result() *core.Result      { return e.inc.Result() }
func (e noExplainEngine) Options() core.Options     { return e.inc.Options() }
func (e noExplainEngine) Cumulative() core.IncStats { return e.inc.Cumulative() }

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(w, r)
	return w
}

// decode fails the test unless the recorder holds status plus a JSON body of
// v's shape.
func decode(t *testing.T, w *httptest.ResponseRecorder, status int, v any) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decode %s: %v", w.Body.String(), err)
	}
}

// wantErr asserts a non-2xx apiv1.Error body whose code echoes the status.
func wantErr(t *testing.T, w *httptest.ResponseRecorder, status int) apiv1.Error {
	t.Helper()
	var e apiv1.Error
	decode(t, w, status, &e)
	if e.Code != status || e.Error == "" {
		t.Fatalf("error body %+v does not echo status %d", e, status)
	}
	return e
}

func TestTopKHandler(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()

	var res apiv1.TopKResponse
	decode(t, get(t, h, "/v1/topk"), http.StatusOK, &res)
	if res.Epoch != 1 {
		t.Errorf("seed epoch %d, want 1", res.Epoch)
	}
	if res.Metric != "nhp" || res.K != 10 {
		t.Errorf("metric %q k %d, want nhp/10", res.Metric, res.K)
	}
	if res.TotalEdges != 30 {
		t.Errorf("total_edges %d, want 30", res.TotalEdges)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from the toy network")
	}
	if len(res.Rules) != len(s.Snapshot().TopK) {
		t.Errorf("%d rules, snapshot holds %d", len(res.Rules), len(s.Snapshot().TopK))
	}
	for i, r := range res.Rules {
		if r.Rank != i+1 {
			t.Errorf("rules[%d].rank = %d", i, r.Rank)
		}
		if r.GR == "" || r.Supp <= 0 {
			t.Errorf("rules[%d] = %+v not rendered", i, r)
		}
	}

	var lim apiv1.TopKResponse
	decode(t, get(t, h, "/v1/topk?limit=1"), http.StatusOK, &lim)
	if len(lim.Rules) != 1 || lim.Rules[0] != res.Rules[0] {
		t.Errorf("limit=1 returned %+v, want the top rule only", lim.Rules)
	}

	wantErr(t, get(t, h, "/v1/topk?limit=abc"), http.StatusBadRequest)
	wantErr(t, get(t, h, "/v1/topk?limit=-1"), http.StatusBadRequest)
}

// The Go 1.22 mux enforces methods: a wrong verb is a 405, not a handler
// panic or a silent 200.
func TestMethodMapping(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()
	for _, c := range []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/topk"},
		{http.MethodGet, "/v1/ingest"},
		{http.MethodGet, "/v1/recommend"},
		{http.MethodDelete, "/v1/rules/1"},
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(c.method, c.path, strings.NewReader("{}")))
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, w.Code)
		}
	}
	w := get(t, h, "/v1/nope")
	if w.Code != http.StatusNotFound {
		t.Errorf("GET /v1/nope: status %d, want 404", w.Code)
	}
}

func TestRuleHandler(t *testing.T) {
	s, g := newServer(t)
	h := s.Handler()

	var res apiv1.RuleResponse
	decode(t, get(t, h, "/v1/rules/1"), http.StatusOK, &res)
	if res.Rank != 1 || res.Epoch != 1 {
		t.Errorf("rank %d epoch %d, want 1/1", res.Rank, res.Epoch)
	}
	if res.CountsSource != "pool" {
		t.Errorf("counts_source %q, want pool (incremental engine maintains counts)", res.CountsSource)
	}
	if res.Counts.LWR != res.Supp {
		t.Errorf("counts.lwr %d != supp %d", res.Counts.LWR, res.Supp)
	}
	// The maintained counts must agree with a fresh evaluation. The pool
	// leaves Counts.R at 0 when the metric does not need it (nhp doesn't).
	sc := s.Snapshot().TopK[0]
	want := apiv1.CountsFrom(metrics.Eval(g, sc.GR))
	want.R = res.Counts.R
	if res.Counts != want {
		t.Errorf("pool counts %+v, scan says %+v", res.Counts, want)
	}
	if res.Nhp != metrics.Nhp(metrics.Eval(g, sc.GR)) {
		t.Errorf("nhp %v mismatches a fresh evaluation", res.Nhp)
	}

	wantErr(t, get(t, h, "/v1/rules/abc"), http.StatusBadRequest)
	wantErr(t, get(t, h, "/v1/rules/0"), http.StatusNotFound)
	wantErr(t, get(t, h, fmt.Sprintf("/v1/rules/%d", len(s.Snapshot().TopK)+1)), http.StatusNotFound)
}

// Without an Explainer the handler recomputes counts by a locked scan and
// says so.
func TestRuleHandlerScanFallback(t *testing.T) {
	g := dataset.ToyDating()
	inc, err := core.NewIncremental(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(noExplainEngine{inc}, g)

	var res apiv1.RuleResponse
	decode(t, get(t, s.Handler(), "/v1/rules/1"), http.StatusOK, &res)
	if res.CountsSource != "scan" {
		t.Errorf("counts_source %q, want scan", res.CountsSource)
	}
	if want := apiv1.CountsFrom(metrics.Eval(g, s.Snapshot().TopK[0].GR)); res.Counts != want {
		t.Errorf("scan counts %+v, want %+v", res.Counts, want)
	}
}

func TestRecommendHandler(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()

	var byNode apiv1.RecommendResponse
	decode(t, post(t, h, "/v1/recommend", `{"node":0,"top_n":3}`), http.StatusOK, &byNode)
	if byNode.Epoch != 1 || byNode.Rules == 0 {
		t.Errorf("epoch %d rules %d, want epoch 1 and some applied rules", byNode.Epoch, byNode.Rules)
	}
	if byNode.Prospects != nil {
		t.Error("node query answered with a campaign")
	}
	for _, sg := range byNode.Suggestions {
		if sg.RHS == "" || len(sg.Rules) == 0 {
			t.Errorf("suggestion %+v not rendered", sg)
		}
	}

	var campaign apiv1.RecommendResponse
	decode(t, post(t, h, "/v1/recommend", `{"rhs":"(SEX:F)","top_n":5}`), http.StatusOK, &campaign)
	if campaign.Suggestions != nil {
		t.Error("campaign answered with per-node suggestions")
	}
	if len(campaign.Prospects) > 5 {
		t.Errorf("top_n=5 returned %d prospects", len(campaign.Prospects))
	}

	wantErr(t, post(t, h, "/v1/recommend", `{}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `{"node":0,"rhs":"(SEX:F)"}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `{"rhs":"(NOPE:X)"}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `{"node":9999}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `{"bogus":1}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `{"node":0}trailing`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/recommend", `not json`), http.StatusBadRequest)
}

func TestPropagateHandler(t *testing.T) {
	s, g := newServer(t)
	h := s.Handler()

	var res apiv1.PropagateResponse
	decode(t, post(t, h, "/v1/propagate", `{"attr":1}`), http.StatusOK, &res)
	if res.Classes != 3 {
		t.Errorf("classes %d, want RACE's domain 3", res.Classes)
	}
	if len(res.Nodes) != g.NumNodes() {
		t.Errorf("%d nodes returned, want all %d", len(res.Nodes), g.NumNodes())
	}
	for _, nb := range res.Nodes {
		if len(nb.Beliefs) != res.Classes {
			t.Fatalf("node %d has %d beliefs, want %d", nb.Node, len(nb.Beliefs), res.Classes)
		}
	}
	if res.Iterations <= 0 {
		t.Errorf("iterations %d", res.Iterations)
	}

	var sel apiv1.PropagateResponse
	decode(t, post(t, h, "/v1/propagate", `{"attr":1,"nodes":[0,5]}`), http.StatusOK, &sel)
	if len(sel.Nodes) != 2 || sel.Nodes[0].Node != 0 || sel.Nodes[1].Node != 5 {
		t.Errorf("nodes filter returned %+v", sel.Nodes)
	}

	var fromRules apiv1.PropagateResponse
	decode(t, post(t, h, "/v1/propagate", `{"attr":1,"from_rules":true,"nodes":[]}`), http.StatusOK, &fromRules)

	wantErr(t, post(t, h, "/v1/propagate", `{"attr":99}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/propagate", `{"attr":1,"nodes":[99]}`), http.StatusBadRequest)
	wantErr(t, post(t, h, "/v1/propagate", `{"attr":"RACE"}`), http.StatusBadRequest)
}

func TestIngestHandler(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()

	var ins apiv1.IngestResponse
	decode(t, post(t, h, "/v1/ingest", `{"ins":[{"src":0,"dst":7,"vals":[1]}]}`), http.StatusOK, &ins)
	if ins.Epoch != 2 || ins.Edges != 1 || ins.Deletes != 0 {
		t.Errorf("insert response %+v, want epoch 2, 1 edge", ins)
	}
	if ins.TotalEdges != 31 {
		t.Errorf("total_edges %d, want 31", ins.TotalEdges)
	}

	var del apiv1.IngestResponse
	decode(t, post(t, h, "/v1/ingest", `{"del":[{"src":0,"dst":7,"vals":[1]}]}`), http.StatusOK, &del)
	if del.Epoch != 3 || del.Deletes != 1 || del.TotalEdges != 30 {
		t.Errorf("delete response %+v, want epoch 3, 1 delete, 30 edges", del)
	}
}

// A batch the engine rejects must leave no trace: same epoch, same top-k,
// same edge count — atomic rejection all the way through the HTTP layer.
func TestIngestAtomicRejection(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()
	before := s.Snapshot()

	for _, body := range []string{
		`{}`, // empty batch
		`{"ins":[{"src":-1,"dst":0,"vals":[1]}]}`,                                     // bad node id
		`{"ins":[{"src":0,"dst":9999,"vals":[1]}]}`,                                   // unknown node
		`{"ins":[{"src":0,"dst":1}]}`,                                                 // missing edge value
		`{"ins":[{"src":0,"dst":1,"vals":[99]}]}`,                                     // out of domain
		`{"ins":[{"src":0,"dst":1,"vals":[70000]}]}`,                                  // beyond graph.Value
		`{"del":[{"src":0,"dst":1,"vals":[1]}]}`,                                      // no such live edge
		`{"ins":[{"src":0,"dst":7,"vals":[1]}],"del":[{"src":0,"dst":1,"vals":[1]}]}`, // good half + bad half
		`{"ins":[{"src":0,"dst":7,"vals":[1]}],"bogus":true}`,                         // unknown field
		`{"ins":[{"src":0,"dst":7,"vals":[1]}]}{"again":true}`,                        // trailing data
		`not json`,
	} {
		wantErr(t, post(t, h, "/v1/ingest", body), http.StatusBadRequest)
	}

	after := s.Snapshot()
	if after.Epoch != before.Epoch {
		t.Fatalf("rejected batches advanced the epoch: %d -> %d", before.Epoch, after.Epoch)
	}
	if after.TotalEdges != before.TotalEdges {
		t.Fatalf("rejected batches mutated the graph: %d -> %d edges", before.TotalEdges, after.TotalEdges)
	}
	var res apiv1.TopKResponse
	decode(t, get(t, h, "/v1/topk"), http.StatusOK, &res)
	if len(res.Rules) != len(before.TopK) {
		t.Fatalf("rejected batches changed the top-k: %d rules, want %d", len(res.Rules), len(before.TopK))
	}

	// And the server still ingests a good batch afterwards.
	var ok apiv1.IngestResponse
	decode(t, post(t, h, "/v1/ingest", `{"ins":[{"src":0,"dst":7,"vals":[1]}]}`), http.StatusOK, &ok)
	if ok.Epoch != before.Epoch+1 {
		t.Errorf("good batch after rejects published epoch %d, want %d", ok.Epoch, before.Epoch+1)
	}
}

func TestStatusHandler(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()

	var st apiv1.StatusResponse
	decode(t, get(t, h, "/v1/status"), http.StatusOK, &st)
	if st.APIVersion != apiv1.Version || st.Epoch != 1 {
		t.Errorf("api_version %d epoch %d, want %d/1", st.APIVersion, st.Epoch, apiv1.Version)
	}
	if st.Metric != "nhp" || st.MinSupp != 2 || st.MinScore != 0.5 || st.K != 10 {
		t.Errorf("options not echoed: %+v", st)
	}
	if st.Batches != 0 || st.Edges != 0 || st.Deletes != 0 {
		t.Errorf("fresh server reports lifetime totals %+v", st)
	}

	post(t, h, "/v1/ingest", `{"ins":[{"src":0,"dst":7,"vals":[1]}]}`)
	post(t, h, "/v1/ingest", `{"del":[{"src":0,"dst":7,"vals":[1]}]}`)
	decode(t, get(t, h, "/v1/status"), http.StatusOK, &st)
	if st.Epoch != 3 || st.Batches != 2 || st.Edges != 1 || st.Deletes != 1 {
		t.Errorf("after two batches: %+v, want epoch 3, batches 2, edges 1, deletes 1", st)
	}
}

// A fleet-tracking engine's per-worker health shows up in /v1/status; a
// single-store engine's status omits the fleet entirely.
func TestStatusFleet(t *testing.T) {
	g := dataset.ToyDating()
	shinc, err := core.NewIncrementalSharded(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10},
		core.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := serve.New(shinc, g).Handler()

	var st apiv1.StatusResponse
	decode(t, get(t, h, "/v1/status"), http.StatusOK, &st)
	if len(st.Fleet) != 3 {
		t.Fatalf("fleet has %d workers, want 3: %+v", len(st.Fleet), st.Fleet)
	}
	for i, w := range st.Fleet {
		if w.Shard != i || !w.Live {
			t.Errorf("worker %d: %+v, want live shard %d", i, w, i)
		}
		if w.Retries != 0 || w.Replacements != 0 || w.LastError != "" {
			t.Errorf("worker %d reports failover activity on a healthy fleet: %+v", i, w)
		}
	}
	if st.DroppedEvents != 0 {
		t.Errorf("fresh server dropped %d events", st.DroppedEvents)
	}

	// The fleet tracks across ingests (health is re-captured per snapshot).
	post(t, h, "/v1/ingest", `{"ins":[{"src":0,"dst":7,"vals":[1]}]}`)
	decode(t, get(t, h, "/v1/status"), http.StatusOK, &st)
	if st.Epoch != 2 || len(st.Fleet) != 3 {
		t.Errorf("after ingest: epoch %d fleet %d, want 2/3", st.Epoch, len(st.Fleet))
	}

	// Single-store engines have no fleet.
	single, _ := newServer(t)
	var plain apiv1.StatusResponse
	decode(t, get(t, single.Handler(), "/v1/status"), http.StatusOK, &plain)
	if plain.Fleet != nil {
		t.Errorf("single-store status reports a fleet: %+v", plain.Fleet)
	}
}

// The SSE stream greets with the current epoch and emits one drift event per
// applied batch.
func TestEventsStream(t *testing.T) {
	s, _ := newServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (string, apiv1.Event) {
		t.Helper()
		var name string
		var ev apiv1.Event
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatal(err)
				}
				return name, ev
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return "", ev
	}

	name, hello := readEvent()
	if name != "hello" || hello.Epoch != 1 {
		t.Fatalf("greeting %q %+v, want hello at epoch 1", name, hello)
	}

	body := bytes.NewReader([]byte(`{"ins":[{"src":0,"dst":7,"vals":[1]}]}`))
	ir, err := http.Post(ts.URL+"/v1/ingest", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if ir.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", ir.StatusCode)
	}

	name, drift := readEvent()
	if name != "drift" {
		t.Fatalf("second event %q, want drift", name)
	}
	if drift.Epoch != 2 || drift.Edges != 1 || drift.TotalEdges != 31 {
		t.Fatalf("drift event %+v, want epoch 2, 1 edge, 31 total", drift)
	}
}

// TestSnapshotStress runs continuous reads against a writer applying
// batches. Under -race this proves the RCU publication protocol: readers
// never block, never see a torn snapshot (digest verifies), and epochs only
// move forward.
func TestSnapshotStress(t *testing.T) {
	s, _ := newServer(t)
	h := s.Handler()

	const batches = 150
	const readers = 4

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var last uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				snap := s.Snapshot()
				if !snap.VerifyDigest() {
					t.Errorf("reader %d observed a torn snapshot at epoch %d", seed, snap.Epoch)
					return
				}
				if snap.Epoch < last {
					t.Errorf("reader %d saw the epoch go backwards: %d after %d", seed, snap.Epoch, last)
					return
				}
				last = snap.Epoch
				if len(snap.Counts) != len(snap.TopK) || len(snap.HasCounts) != len(snap.TopK) {
					t.Errorf("reader %d: snapshot arrays disagree: %d rules, %d counts", seed, len(snap.TopK), len(snap.Counts))
					return
				}
				// Every few spins, read through the full HTTP path too.
				if i%8 == seed%8 {
					var res apiv1.TopKResponse
					decode(t, get(t, h, "/v1/topk"), http.StatusOK, &res)
					if res.Epoch < last-1 {
						t.Errorf("reader %d: handler served epoch %d long after %d", seed, res.Epoch, last)
						return
					}
				}
			}
		}(r)
	}

	// The writer alternates inserts with deletes of its own earlier edges so
	// the top-k keeps churning in both directions.
	var live []core.EdgeInsert
	for i := 0; i < batches; i++ {
		b := core.Batch{}
		e := core.EdgeInsert{Src: i % 14, Dst: (i*5 + 3) % 14, Vals: []graph.Value{dataset.TypeDates}}
		b.Ins = append(b.Ins, e)
		live = append(live, e)
		if i%3 == 2 {
			d := live[0]
			live = live[1:]
			b.Del = append(b.Del, core.EdgeDelete{Src: d.Src, Dst: d.Dst, Vals: d.Vals})
		}
		snap, _, err := s.Ingest(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if snap.Epoch != uint64(i)+2 {
			t.Fatalf("batch %d published epoch %d, want %d", i, snap.Epoch, i+2)
		}
	}
	close(done)
	wg.Wait()

	final := s.Snapshot()
	if final.Epoch != batches+1 {
		t.Errorf("final epoch %d, want %d", final.Epoch, batches+1)
	}
	if !final.VerifyDigest() {
		t.Error("final snapshot fails its own digest")
	}

}

// After a churned ingest run the served top-k must be byte-identical to an
// offline re-mine of the live graph — the exactness claim the CI serving
// gate also checks end-to-end.
func TestServedMatchesOfflineMine(t *testing.T) {
	s, g := newServer(t)
	h := s.Handler()

	var live []core.EdgeInsert
	for i := 0; i < 60; i++ {
		b := core.Batch{}
		e := core.EdgeInsert{Src: (i * 3) % 14, Dst: (i*7 + 1) % 14, Vals: []graph.Value{dataset.TypeDates}}
		b.Ins = append(b.Ins, e)
		live = append(live, e)
		if i%4 == 3 {
			d := live[0]
			live = live[1:]
			b.Del = append(b.Del, core.EdgeDelete{Src: d.Src, Dst: d.Dst, Vals: d.Vals})
		}
		if _, _, err := s.Ingest(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	ref, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var served apiv1.TopKResponse
	decode(t, get(t, h, "/v1/topk"), http.StatusOK, &served)
	if served.TotalEdges != ref.TotalEdges {
		t.Errorf("served %d edges, offline mine sees %d", served.TotalEdges, ref.TotalEdges)
	}
	if len(served.Rules) != len(ref.TopK) {
		t.Fatalf("served %d rules, offline mine found %d", len(served.Rules), len(ref.TopK))
	}
	for i, want := range ref.TopK {
		got := served.Rules[i]
		if got.GR != want.GR.Format(g.Schema()) || got.Supp != want.Supp || got.Score != want.Score {
			t.Errorf("rank %d: served %+v, offline mine %s supp=%d score=%v",
				i+1, got, want.GR.Format(g.Schema()), want.Supp, want.Score)
		}
	}
}
