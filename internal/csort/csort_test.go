package csort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPartitionBasic(t *testing.T) {
	keys := []uint16{2, 0, 1, 2, 1, 1}
	ids := []int32{0, 1, 2, 3, 4, 5}
	out := make([]int32, len(ids))
	p := New(3)
	groups := p.Partition(ids, func(id int32) uint16 { return keys[id] }, out)
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 groups", groups)
	}
	want := []struct {
		val    uint16
		member []int32
	}{
		{0, []int32{1}},
		{1, []int32{2, 4, 5}},
		{2, []int32{0, 3}},
	}
	for i, w := range want {
		g := groups[i]
		if g.Val != w.val || int(g.Hi-g.Lo) != len(w.member) {
			t.Fatalf("group %d = %+v, want val %d size %d", i, g, w.val, len(w.member))
		}
		for j, m := range w.member {
			if out[g.Lo+int32(j)] != m {
				t.Errorf("group %d slot %d = %d, want %d (stability)", i, j, out[g.Lo+int32(j)], m)
			}
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	p := New(5)
	groups := p.Partition(nil, func(int32) uint16 { return 0 }, nil)
	if len(groups) != 0 {
		t.Errorf("empty input produced groups: %v", groups)
	}
}

func TestPartitionSingleValue(t *testing.T) {
	ids := []int32{5, 3, 9}
	out := make([]int32, 3)
	p := New(10)
	groups := p.Partition(ids, func(int32) uint16 { return 7 }, out)
	if len(groups) != 1 || groups[0].Val != 7 || groups[0].Lo != 0 || groups[0].Hi != 3 {
		t.Fatalf("groups = %v", groups)
	}
	for i, id := range ids {
		if out[i] != id {
			t.Errorf("order not preserved: %v", out)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	p := New(2)
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanic("length mismatch", func() {
		p.Partition([]int32{1, 2}, func(int32) uint16 { return 0 }, make([]int32, 1))
	})
	assertPanic("key out of domain", func() {
		p.Partition([]int32{1}, func(int32) uint16 { return 9 }, make([]int32, 1))
	})
}

func TestPartitionerReuse(t *testing.T) {
	p := New(100)
	out := make([]int32, 8)
	for round := 0; round < 50; round++ {
		r := rand.New(rand.NewSource(int64(round)))
		keys := make([]uint16, 8)
		ids := make([]int32, 8)
		for i := range ids {
			ids[i] = int32(i)
			keys[i] = uint16(r.Intn(101))
		}
		groups := p.Partition(ids, func(id int32) uint16 { return keys[id] }, out)
		total := 0
		for _, g := range groups {
			total += int(g.Hi - g.Lo)
			for _, id := range out[g.Lo:g.Hi] {
				if keys[id] != g.Val {
					t.Fatalf("round %d: id %d in group %d has key %d", round, id, g.Val, keys[id])
				}
			}
		}
		if total != len(ids) {
			t.Fatalf("round %d: groups cover %d of %d ids", round, total, len(ids))
		}
	}
}

// Property: Partition is equivalent to a stable sort by key, and groups are
// ascending, disjoint, and exhaustive.
func TestPartitionMatchesStableSortProperty(t *testing.T) {
	p := New(16)
	f := func(raw []uint16) bool {
		keys := make([]uint16, len(raw))
		ids := make([]int32, len(raw))
		for i, k := range raw {
			keys[i] = k % 17
			ids[i] = int32(i)
		}
		out := make([]int32, len(ids))
		groups := p.Partition(ids, func(id int32) uint16 { return keys[id] }, out)

		ref := append([]int32(nil), ids...)
		sort.SliceStable(ref, func(i, j int) bool { return keys[ref[i]] < keys[ref[j]] })
		for i := range ref {
			if out[i] != ref[i] {
				return false
			}
		}
		prev := -1
		covered := int32(0)
		for _, g := range groups {
			if int(g.Val) <= prev || g.Lo != covered || g.Hi <= g.Lo {
				return false
			}
			prev = int(g.Val)
			covered = g.Hi
		}
		return int(covered) == len(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartition(b *testing.B) {
	const n = 1 << 16
	keys := make([]uint16, n)
	ids := make([]int32, n)
	r := rand.New(rand.NewSource(1))
	for i := range ids {
		ids[i] = int32(i)
		keys[i] = uint16(r.Intn(188))
	}
	out := make([]int32, n)
	p := New(188)
	key := func(id int32) uint16 { return keys[id] }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Partition(ids, key, out)
	}
	b.SetBytes(int64(n * 4))
}
