// Package csort implements the linear counting-sort partitioner GRMiner uses
// to split edge partitions by one attribute (Section V: "A linear sorting
// method, Counting Sort, is adopted to sort and get the aggregate of each
// partition. It sorts in O(N) time without any key comparisons").
//
// A Partitioner owns the counting buckets and resets only the buckets it
// touched, so partitioning a small slice by a large-domain attribute (for
// example Pokec's Region with |A| = 188) stays proportional to the slice.
package csort

import "fmt"

// Group is one partition of the input: the ids whose key equals Val occupy
// out[Lo:Hi] after Partition returns. Groups are emitted in ascending Val
// order; empty values produce no group.
type Group struct {
	Val uint16
	Lo  int32
	Hi  int32
}

// Partitioner is a reusable counting-sort work area. It is not safe for
// concurrent use; create one per goroutine.
type Partitioner struct {
	counts []int32
	starts []int32
	groups []Group
}

// New returns a Partitioner able to handle keys in 0..maxDomain.
func New(maxDomain int) *Partitioner {
	return &Partitioner{
		counts: make([]int32, maxDomain+1),
		starts: make([]int32, maxDomain+1),
	}
}

// Partition stably sorts ids by key(id) into out and returns the non-empty
// groups. out must have the same length as ids and not alias it. The key
// function must return values within the Partitioner's domain; Partition
// panics otherwise (an out-of-domain key indicates data corruption upstream,
// since the graph layer validates every stored value).
//
// The returned group slice is owned by the Partitioner and is invalidated by
// the next Partition call.
func (p *Partitioner) Partition(ids []int32, key func(int32) uint16, out []int32) []Group {
	if len(out) != len(ids) {
		panic(fmt.Sprintf("csort: out length %d != ids length %d", len(out), len(ids)))
	}
	p.groups = p.groups[:0]
	if len(ids) == 0 {
		return p.groups
	}
	// Count occurrences; track touched values through the groups list so the
	// reset below is O(distinct values), not O(domain).
	for _, id := range ids {
		k := key(id)
		if int(k) >= len(p.counts) {
			panic(fmt.Sprintf("csort: key %d out of domain %d", k, len(p.counts)-1))
		}
		if p.counts[k] == 0 {
			p.groups = append(p.groups, Group{Val: k})
		}
		p.counts[k]++
	}
	// Groups were appended in first-seen order; order them by value with an
	// insertion sort (the group count is the number of *distinct* values,
	// which is small; this does not touch the O(N) id pass).
	for i := 1; i < len(p.groups); i++ {
		g := p.groups[i]
		j := i - 1
		for j >= 0 && p.groups[j].Val > g.Val {
			p.groups[j+1] = p.groups[j]
			j--
		}
		p.groups[j+1] = g
	}
	// Prefix sums over the ordered groups give each group's slot range.
	var off int32
	for i := range p.groups {
		g := &p.groups[i]
		n := p.counts[g.Val]
		g.Lo = off
		g.Hi = off + n
		p.starts[g.Val] = off
		off += n
	}
	// Stable scatter.
	for _, id := range ids {
		k := key(id)
		out[p.starts[k]] = id
		p.starts[k]++
	}
	// Reset touched buckets.
	for _, g := range p.groups {
		p.counts[g.Val] = 0
	}
	return p.groups
}
