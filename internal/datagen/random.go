package datagen

import (
	"math/rand"

	"grminer/internal/graph"
)

// RandomConfig controls the uniform random generator used by property tests
// and as an unstructured control in ablations.
type RandomConfig struct {
	Nodes     int
	Edges     int
	NodeAttrs []graph.Attribute
	EdgeAttrs []graph.Attribute
	// NullProb is the probability an attribute cell is null.
	NullProb float64
	Seed     int64
}

// Random generates a graph with independently uniform attribute values and
// uniform random endpoints — the "no structure" baseline in which neither
// homophily nor non-homophily preferences exist.
func Random(cfg RandomConfig) *graph.Graph {
	schema, err := graph.NewSchema(cfg.NodeAttrs, cfg.EdgeAttrs)
	if err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := graph.MustNew(schema, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		vals := make([]graph.Value, len(schema.Node))
		for a := range vals {
			if r.Float64() < cfg.NullProb {
				continue
			}
			vals[a] = graph.Value(1 + r.Intn(schema.Node[a].Domain))
		}
		if err := g.SetNodeValues(n, vals...); err != nil {
			panic(err)
		}
	}
	evals := make([]graph.Value, len(schema.Edge))
	for e := 0; e < cfg.Edges; e++ {
		for a := range evals {
			if r.Float64() < cfg.NullProb {
				evals[a] = graph.Null
				continue
			}
			evals[a] = graph.Value(1 + r.Intn(schema.Edge[a].Domain))
		}
		if _, err := g.AddEdge(r.Intn(cfg.Nodes), r.Intn(cfg.Nodes), evals...); err != nil {
			panic(err)
		}
	}
	return g
}
