package datagen

import (
	"math/rand"

	"grminer/internal/graph"
)

// DBLP attribute indices.
const (
	DBLPArea = iota
	DBLPProd
)

// Area values.
const (
	AreaDB = 1
	AreaDM = 2
	AreaAI = 3
	AreaIR = 4
)

// Productivity values.
const (
	ProdPoor      = 1
	ProdFair      = 2
	ProdGood      = 3
	ProdExcellent = 4
)

// Edge attribute: collaboration strength (Section VI-A: occasional f = 1,
// moderate 2 ≤ f < 5, often f ≥ 5).
const (
	DBLPStrength = 0

	StrengthOccasional = 1
	StrengthModerate   = 2
	StrengthOften      = 3
)

// DBLPSchema returns the co-authorship schema: Area is homophilous (authors
// in the same area collaborate), Productivity is not (students co-author
// with professors), and edges carry Collaboration Strength.
func DBLPSchema() *graph.Schema {
	s, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 4, Homophily: true, Labels: []string{"∅", "DB", "DM", "AI", "IR"}},
			{Name: "P", Domain: 4, Labels: []string{"∅", "Poor", "Fair", "Good", "Excellent"}},
		},
		[]graph.Attribute{
			{Name: "S", Domain: 3, Labels: []string{"∅", "occasional", "moderate", "often"}},
		},
	)
	if err != nil {
		panic(err) // static definition
	}
	return s
}

// DBLPConfig controls the generator.
type DBLPConfig struct {
	// Authors is the node count; the paper's dataset has 28,702.
	Authors int
	// Pairs is the undirected collaboration count; the paper's dataset has
	// 33,416 (66,832 directed edges).
	Pairs int
	// PSameArea is the homophily strength on Area.
	PSameArea float64
	// PCrossDM biases cross-area collaborations toward DM (the paper's D2 /
	// D16 finding: DB and AI authors who go outside their area go to DM).
	PCrossDM float64
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultDBLPConfig reproduces the paper's dataset scale exactly.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Authors:   28702,
		Pairs:     33416,
		PSameArea: 0.82,
		PCrossDM:  0.70,
		Seed:      1,
	}
}

// DBLP generates the synthetic co-authorship network. Structure planted to
// match Section VI-C:
//
//   - Area marginals make DM the smallest area (so D2's preference toward
//     DM is genuine, "not due to data skewness");
//   - Productivity is 91.18% Poor (the paper's figure), so D1/D3/D5-style
//     GRs about Poor co-authors emerge from supervisor-student mixing;
//   - cross-area collaborations go to DM with probability PCrossDM and are
//     biased toward the "often" strength, yielding D2 and D16.
func DBLP(cfg DBLPConfig) *graph.Graph {
	if cfg.Authors <= 0 || cfg.Pairs < 0 {
		panic("datagen: DBLP config requires Authors > 0 and Pairs >= 0")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := DBLPSchema()
	g := graph.MustNew(schema, cfg.Authors)

	area := newWeighted([]float64{34, 16, 30, 20})        // DB, DM, AI, IR — DM least
	prod := newWeighted([]float64{91.18, 6.0, 2.0, 0.82}) // the paper's Poor share
	for n := 0; n < cfg.Authors; n++ {
		if err := g.SetNodeValues(n,
			graph.Value(area.sample(r)+1),
			graph.Value(prod.sample(r)+1),
		); err != nil {
			panic(err)
		}
	}

	byArea := indexByValue(g, DBLPArea, schema.Node[DBLPArea].Domain)
	byProd := indexByValue(g, DBLPProd, schema.Node[DBLPProd].Domain)
	strength := newWeighted([]float64{70, 22, 8}) // occasional, moderate, often

	for p := 0; p < cfg.Pairs; p++ {
		a := r.Intn(cfg.Authors)
		var b int32
		s := graph.Value(strength.sample(r) + 1)
		if r.Float64() < cfg.PSameArea {
			// Same-area collaboration; bias toward supervisor-student pairs:
			// a productive author collaborating with a Poor one.
			if g.NodeValue(a, DBLPProd) >= ProdGood && r.Float64() < 0.8 {
				cand, ok := byProd.sample(r, ProdPoor)
				if ok && g.NodeValue(int(cand), DBLPArea) == g.NodeValue(a, DBLPArea) {
					b = cand
				} else if c2, ok2 := byArea.sample(r, g.NodeValue(a, DBLPArea)); ok2 {
					b = c2
				}
			} else if cand, ok := byArea.sample(r, g.NodeValue(a, DBLPArea)); ok {
				b = cand
			}
		} else {
			// Cross-area: mostly toward DM, and such interdisciplinary pairs
			// tend to collaborate often.
			target := graph.Value(AreaDM)
			if g.NodeValue(a, DBLPArea) == AreaDM || r.Float64() >= cfg.PCrossDM {
				target = graph.Value(1 + r.Intn(4))
			}
			if cand, ok := byArea.sample(r, target); ok {
				b = cand
			}
			if g.NodeValue(a, DBLPArea) != g.NodeValue(int(b), DBLPArea) && r.Float64() < 0.5 {
				s = StrengthOften
			}
		}
		if int(b) == a {
			b = int32((a + 1 + r.Intn(cfg.Authors-1)) % cfg.Authors)
		}
		if err := g.AddUndirected(a, int(b), s); err != nil {
			panic(err)
		}
	}
	return g
}
