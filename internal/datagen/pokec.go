package datagen

import (
	"math/rand"

	"grminer/internal/graph"
)

// Pokec attribute indices, matching the order of the paper's Section VI-A
// listing: Gender, Age, Region, Education, What-Looking-For, Marital Status.
const (
	PokecGender = iota
	PokecAge
	PokecRegion
	PokecEdu
	PokecLooking
	PokecMarital
)

// Gender values.
const (
	GenderMale   = 1
	GenderFemale = 2
)

// Age bucket values 1..10 = "0-6","7-13","14-17","18-24","25-34","35-44",
// "45-54","55-64","65-79","80+".
const (
	Age18_24 = 4
	Age25_34 = 5
)

// Education values 1..10.
const (
	EduPreschool  = 1
	EduHardlyAny  = 2
	EduBasic      = 3
	EduTraining   = 4
	EduSecondary  = 5
	EduApprentice = 6
	EduCollege    = 7
	EduBachelor   = 8
	EduMaster     = 9
	EduPhD        = 10
)

// What-Looking-For values 1..11.
const (
	LookChat          = 1
	LookGoodFriend    = 2
	LookSexualPartner = 3
	LookSerious       = 4
	LookMarriage      = 5
	LookFriendship    = 6
	LookSport         = 7
	LookMusic         = 8
	LookTravel        = 9
	LookDancing       = 10
	LookGames         = 11
)

// PokecSchema returns the six-attribute Pokec schema with the paper's
// homophily designation: Age, Region, Education, and What-Looking-For are
// homophilous; Gender and Marital Status are not.
func PokecSchema() *graph.Schema {
	s, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "G", Domain: 2, Labels: []string{"∅", "Male", "Female"}},
			{Name: "A", Domain: 10, Homophily: true, Labels: []string{
				"∅", "0-6", "7-13", "14-17", "18-24", "25-34", "35-44", "45-54", "55-64", "65-79", "80+"}},
			{Name: "R", Domain: 188, Homophily: true},
			{Name: "E", Domain: 10, Homophily: true, Labels: []string{
				"∅", "Preschool", "Hardly Any", "Basic", "Training", "Secondary",
				"Apprentice", "College", "Bachelor", "Master", "PhD"}},
			{Name: "L", Domain: 11, Homophily: true, Labels: []string{
				"∅", "Chat", "Good Friend", "Sexual Partner", "Serious Relationship", "Marriage",
				"Friendship", "Sport", "Music", "Travel", "Dancing", "Games"}},
			{Name: "S", Domain: 7, Labels: []string{
				"∅", "Single", "In Relationship", "Married", "Divorced", "Widowed", "Engaged", "Separated"}},
		},
		nil,
	)
	if err != nil {
		panic(err) // static definition
	}
	return s
}

// Preference plants a directed non-homophily tendency — the "secondary
// bonds" the nhp metric is designed to surface. A source matching
// (SrcAttr : SrcVal) — and (Src2Attr : Src2Val) when Src2Attr ≥ 0 — links
// to a destination with (DstAttr : DstVal).
type Preference struct {
	SrcAttr int
	SrcVal  graph.Value
	// Src2Attr < 0 disables the second condition. Two-condition sources
	// create the gender-asymmetric tendencies of the paper's P5/P207
	// follow-up studies.
	Src2Attr int
	Src2Val  graph.Value
	DstAttr  int
	DstVal   graph.Value
	// Weight is the relative selection weight among applicable preferences.
	Weight float64
	// Strength is the probability the selected preference is actually
	// applied; otherwise the edge falls back to a population draw.
	Strength float64
}

// applies reports whether p's source side matches node n.
func (p Preference) applies(g *graph.Graph, n int) bool {
	if g.NodeValue(n, p.SrcAttr) != p.SrcVal {
		return false
	}
	return p.Src2Attr < 0 || g.NodeValue(n, p.Src2Attr) == p.Src2Val
}

// DefaultPokecPreferences plants the tendencies behind the paper's Table
// IIa findings P1-P5 and P207.
func DefaultPokecPreferences() []Preference {
	no := -1
	return []Preference{
		// P1: chatters link to good-friend seekers.
		{PokecLooking, LookChat, no, 0, PokecLooking, LookGoodFriend, 1.0, 0.95},
		// P2-P4: education secondary bonds.
		{PokecEdu, EduBasic, no, 0, PokecEdu, EduSecondary, 1.0, 0.95},
		{PokecEdu, EduPreschool, no, 0, PokecEdu, EduBasic, 1.0, 0.95},
		{PokecEdu, EduHardlyAny, no, 0, PokecEdu, EduBasic, 1.0, 0.95},
		// P5 and its gender split: males looking for sexual partners link
		// to women strongly; females show no such tendency (the paper
		// measures 68.1% vs 48.8%, the latter at the 50% gender baseline).
		{PokecLooking, LookSexualPartner, PokecGender, GenderMale, PokecGender, GenderFemale, 1.2, 0.9},
		// P207 and its split: 25-34 males prefer 18-24 partners; same-age
		// females far less so (50.8% vs 32.8% in the paper).
		{PokecAge, Age25_34, PokecGender, GenderMale, PokecAge, Age18_24, 1.0, 0.75},
		{PokecAge, Age25_34, PokecGender, GenderFemale, PokecAge, Age18_24, 1.0, 0.10},
	}
}

// PokecConfig controls the generator. The zero value is not valid; use
// DefaultPokecConfig.
type PokecConfig struct {
	// Nodes is the user count; the real dataset has 1,436,515.
	Nodes int
	// AvgOutDegree controls edge volume; the real dataset averages ~14.7.
	AvgOutDegree float64
	// PHom is the probability an edge stays within the source's region —
	// the dominant homophily dimension of a regional social network (the
	// paper's conf-ranked Table IIa is full of (R:x) -> (R:x) patterns).
	PHom float64
	// PHomOther is the probability the destination instead matches the
	// source on one of the other homophily attributes (A, E, L).
	PHomOther float64
	// PPref is the probability an edge follows a planted preference.
	PPref float64
	// PPrefSameRegion is the probability a preference edge additionally
	// stays in-region (secondary bonds coexist with homophily, which is
	// what lets region confidence reach the paper's ~72% level).
	PPrefSameRegion float64
	// Preferences is the planted preference table.
	Preferences []Preference
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultPokecConfig returns a laptop-scale configuration (about
// cfg.Nodes × cfg.AvgOutDegree edges) with the Table IIa preferences.
func DefaultPokecConfig() PokecConfig {
	return PokecConfig{
		Nodes:           20000,
		AvgOutDegree:    15,
		PHom:            0.62,
		PHomOther:       0.10,
		PPref:           0.50,
		PPrefSameRegion: 0.85,
		Preferences:     DefaultPokecPreferences(),
		Seed:            1,
	}
}

// pokecMarginals returns per-attribute value weights (index 0 unused).
// Education deliberately reproduces the skew the paper reports when
// explaining P2: Secondary ≈ 19.5% of profiles versus Training ≈ 1.9%.
func pokecMarginals() map[int][]float64 {
	return map[int][]float64{
		PokecGender: {0, 50, 50},
		// Pokec skews young: the 18-24 and 25-34 buckets dominate.
		PokecAge: {0, 1, 4, 10, 30, 26, 14, 8, 4, 2, 1},
		PokecEdu: {0,
			3.0,  // Preschool
			2.5,  // Hardly Any
			17.0, // Basic
			1.9,  // Training
			19.5, // Secondary
			14.0, // Apprentice
			10.0, // College
			8.0,  // Bachelor
			5.0,  // Master
			2.0,  // PhD
		},
		PokecLooking: {0, 24, 18, 12, 9, 5, 14, 6, 5, 4, 2, 1},
		PokecMarital: {0, 30, 25, 18, 10, 5, 8, 4},
	}
}

// pokecIndexes holds the conditional-sampling structures.
type pokecIndexes struct {
	byRegion valueIndex
	byAttr   map[int]valueIndex
	// byRegionAttr buckets nodes by (region, attr, value) so preference and
	// homophily draws can stay in-region.
	byRegionAttr map[uint32][]int32
}

func regionAttrKey(region graph.Value, attr int, val graph.Value) uint32 {
	return uint32(region)<<16 | uint32(attr)<<8 | uint32(val)
}

func buildPokecIndexes(g *graph.Graph, cfg PokecConfig) *pokecIndexes {
	schema := g.Schema()
	idx := &pokecIndexes{
		byRegion:     indexByValue(g, PokecRegion, schema.Node[PokecRegion].Domain),
		byAttr:       make(map[int]valueIndex),
		byRegionAttr: make(map[uint32][]int32),
	}
	need := map[int]bool{}
	for _, a := range schema.HomophilyNodeAttrs() {
		if a != PokecRegion {
			need[a] = true
		}
	}
	for _, p := range cfg.Preferences {
		need[p.DstAttr] = true
	}
	for a := range need {
		idx.byAttr[a] = indexByValue(g, a, schema.Node[a].Domain)
	}
	for n := 0; n < g.NumNodes(); n++ {
		region := g.NodeValue(n, PokecRegion)
		for a := range need {
			key := regionAttrKey(region, a, g.NodeValue(n, a))
			idx.byRegionAttr[key] = append(idx.byRegionAttr[key], int32(n))
		}
	}
	return idx
}

// sampleRegionAttr picks a node in the given region holding (attr : val).
func (idx *pokecIndexes) sampleRegionAttr(r *rand.Rand, region graph.Value, attr int, val graph.Value) (int32, bool) {
	b := idx.byRegionAttr[regionAttrKey(region, attr, val)]
	if len(b) == 0 {
		return 0, false
	}
	return b[r.Intn(len(b))], true
}

// Pokec generates the synthetic Pokec-like network.
func Pokec(cfg PokecConfig) *graph.Graph {
	if cfg.Nodes <= 0 {
		panic("datagen: Pokec config requires Nodes > 0")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := PokecSchema()
	g := graph.MustNew(schema, cfg.Nodes)

	marginals := pokecMarginals()
	samplers := make(map[int]weighted, len(marginals))
	for attr, w := range marginals {
		samplers[attr] = newWeighted(w[1:]) // skip the null slot
	}
	regionSampler := newWeighted(zipfWeights(schema.Node[PokecRegion].Domain, 0.9))

	for n := 0; n < cfg.Nodes; n++ {
		vals := make([]graph.Value, len(schema.Node))
		for attr := range schema.Node {
			if attr == PokecRegion {
				vals[attr] = graph.Value(regionSampler.sample(r) + 1)
				continue
			}
			vals[attr] = graph.Value(samplers[attr].sample(r) + 1)
		}
		if err := g.SetNodeValues(n, vals...); err != nil {
			panic(err)
		}
	}

	idx := buildPokecIndexes(g, cfg)
	homOther := []int{PokecAge, PokecEdu, PokecLooking}

	targetEdges := int(float64(cfg.Nodes) * cfg.AvgOutDegree)
	for e := 0; e < targetEdges; e++ {
		src := r.Intn(cfg.Nodes)
		dst := pokecDestination(r, g, cfg, idx, homOther, src)
		if dst == src {
			dst = (dst + 1 + r.Intn(cfg.Nodes-1)) % cfg.Nodes
		}
		if _, err := g.AddEdge(src, dst); err != nil {
			panic(err)
		}
	}
	return g
}

// pokecDestination draws one destination for src. The stages are
// independent so that every source — with or without applicable planted
// preferences — experiences the same regional homophily:
//
//  1. with probability PPref, attempt a planted preference (succeeds with
//     the preference's Strength; a preference edge additionally stays
//     in-region with probability PPrefSameRegion);
//  2. otherwise, with probability PHom, draw from the source's region;
//  3. otherwise, with probability PHomOther, match one other homophily
//     attribute;
//  4. otherwise draw from the population.
func pokecDestination(r *rand.Rand, g *graph.Graph, cfg PokecConfig,
	idx *pokecIndexes, homOther []int, src int) int {

	region := g.NodeValue(src, PokecRegion)
	if r.Float64() < cfg.PPref {
		if p, ok := pickPreference(r, g, cfg.Preferences, src); ok && r.Float64() < p.Strength {
			if r.Float64() < cfg.PPrefSameRegion {
				if dst, ok := idx.sampleRegionAttr(r, region, p.DstAttr, p.DstVal); ok {
					return int(dst)
				}
			}
			if dst, ok := idx.byAttr[p.DstAttr].sample(r, p.DstVal); ok {
				return int(dst)
			}
		}
	}
	if r.Float64() < cfg.PHom {
		if dst, ok := idx.byRegion.sample(r, region); ok {
			return int(dst)
		}
	}
	if r.Float64() < cfg.PHomOther {
		attr := homOther[r.Intn(len(homOther))]
		if dst, ok := idx.byAttr[attr].sample(r, g.NodeValue(src, attr)); ok {
			return int(dst)
		}
	}
	return r.Intn(g.NumNodes())
}

// pickPreference selects among the preferences applicable to src,
// proportionally to their weights.
func pickPreference(r *rand.Rand, g *graph.Graph, prefs []Preference, src int) (Preference, bool) {
	total := 0.0
	for _, p := range prefs {
		if p.applies(g, src) {
			total += p.Weight
		}
	}
	if total == 0 {
		return Preference{}, false
	}
	x := r.Float64() * total
	for _, p := range prefs {
		if !p.applies(g, src) {
			continue
		}
		x -= p.Weight
		if x <= 0 {
			return p, true
		}
	}
	return Preference{}, false
}
