package datagen

import (
	"math"
	"math/rand"
	"testing"

	"grminer/internal/graph"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestWeightedSampler(t *testing.T) {
	w := newWeighted([]float64{1, 0, 3})
	r := newRand(1)
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[w.sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight value sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("3:1 weights sampled at ratio %.2f", ratio)
	}
	assertPanics(t, "negative weight", func() { newWeighted([]float64{1, -1}) })
	assertPanics(t, "zero weights", func() { newWeighted([]float64{0, 0}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestValueIndex(t *testing.T) {
	schema, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 3}}, nil)
	g := graph.MustNew(schema, 6)
	for n := 0; n < 6; n++ {
		g.SetNodeValues(n, graph.Value(n%3))
	}
	vi := indexByValue(g, 0, 3)
	r := newRand(1)
	for i := 0; i < 50; i++ {
		n, ok := vi.sample(r, 2)
		if !ok || g.NodeValue(int(n), 0) != 2 {
			t.Fatalf("sample returned node %d with wrong value", n)
		}
	}
	if _, ok := vi.sample(r, 3); ok {
		t.Error("sample found nodes for an unused value")
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(5, 1.0)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("zipf weights not decreasing: %v", w)
		}
	}
	if math.Abs(w[0]-1.0) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Errorf("zipf(1) weights wrong: %v", w)
	}
}

func TestPokecDeterminismAndShape(t *testing.T) {
	cfg := DefaultPokecConfig()
	cfg.Nodes = 2000
	cfg.AvgOutDegree = 8
	g1 := Pokec(cfg)
	g2 := Pokec(cfg)
	if g1.NumNodes() != 2000 || g1.NumEdges() != 16000 {
		t.Fatalf("size = %d nodes, %d edges", g1.NumNodes(), g1.NumEdges())
	}
	for n := 0; n < g1.NumNodes(); n++ {
		for a := 0; a < 6; a++ {
			if g1.NodeValue(n, a) != g2.NodeValue(n, a) {
				t.Fatal("generator not deterministic (node values)")
			}
			if g1.NodeValue(n, a) == graph.Null {
				t.Fatal("Pokec profile has null value; the paper keeps complete profiles only")
			}
		}
	}
	for e := 0; e < g1.NumEdges(); e++ {
		if !g1.EdgeAlive(e) {
			t.Fatalf("generator produced dead edge %d", e)
		}
		if g1.Src(e) != g2.Src(e) || g1.Dst(e) != g2.Dst(e) {
			t.Fatal("generator not deterministic (edges)")
		}
		if g1.Src(e) == g1.Dst(e) {
			t.Fatal("self-loop generated")
		}
	}
	// Different seed must change the output.
	cfg.Seed = 99
	g3 := Pokec(cfg)
	same := true
	for e := 0; e < g1.NumEdges() && same; e++ {
		if !g1.EdgeAlive(e) {
			t.Fatalf("generator produced dead edge %d", e)
		}
		if g1.Src(e) != g3.Src(e) || g1.Dst(e) != g3.Dst(e) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical edges")
	}
}

func TestPokecMarginals(t *testing.T) {
	cfg := DefaultPokecConfig()
	cfg.Nodes = 20000
	cfg.AvgOutDegree = 1
	g := Pokec(cfg)
	counts := make([]int, 11)
	for n := 0; n < g.NumNodes(); n++ {
		counts[g.NodeValue(n, PokecEdu)]++
	}
	secondary := float64(counts[EduSecondary]) / float64(g.NumNodes())
	training := float64(counts[EduTraining]) / float64(g.NumNodes())
	// The paper reports 19.54% Secondary vs 1.9% Training; allow slack.
	if secondary < 0.15 || secondary > 0.25 {
		t.Errorf("Secondary share = %.3f, want ≈ 0.195", secondary)
	}
	if training > 0.04 {
		t.Errorf("Training share = %.3f, want ≈ 0.019", training)
	}
	if secondary < 5*training {
		t.Errorf("Secondary (%0.3f) should dwarf Training (%0.3f)", secondary, training)
	}
}

// The planted structure must be measurable: homophily edges inflate
// same-value rates, and the Basic->Secondary secondary bond must hold among
// non-Basic destinations.
func TestPokecPlantedStructure(t *testing.T) {
	cfg := DefaultPokecConfig()
	cfg.Nodes = 5000
	cfg.AvgOutDegree = 12
	g := Pokec(cfg)

	var basicSrc, basicToBasic, basicToSecondary int
	var sameRegion int
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			t.Fatalf("generator produced dead edge %d", e)
		}
		src, dst := g.Src(e), g.Dst(e)
		if g.NodeValue(src, PokecRegion) == g.NodeValue(dst, PokecRegion) {
			sameRegion++
		}
		if g.NodeValue(src, PokecEdu) == EduBasic {
			basicSrc++
			switch g.NodeValue(dst, PokecEdu) {
			case EduBasic:
				basicToBasic++
			case EduSecondary:
				basicToSecondary++
			}
		}
	}
	// Region homophily: with 188 Zipf regions, random mixing gives a few
	// percent same-region; the homophily branch pushes it well above.
	frac := float64(sameRegion) / float64(g.NumEdges())
	if frac < 0.10 {
		t.Errorf("same-region rate %.3f shows no homophily", frac)
	}
	// The P2 shape: nhp(Basic -> Secondary) = P(Secondary | not Basic) must
	// clearly exceed the Secondary population share (~0.195).
	nhp := float64(basicToSecondary) / float64(basicSrc-basicToBasic)
	if nhp < 0.35 {
		t.Errorf("planted Basic->Secondary nhp = %.3f, want > 0.35", nhp)
	}
}

func TestDBLPShape(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.Authors = 4000
	cfg.Pairs = 5000
	g := DBLP(cfg)
	if g.NumEdges() != 2*cfg.Pairs {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 2*cfg.Pairs)
	}
	// Productivity: overwhelmingly Poor, as the paper reports (91.18%).
	poor := 0
	areaCounts := make([]int, 5)
	for n := 0; n < g.NumNodes(); n++ {
		if g.NodeValue(n, DBLPProd) == ProdPoor {
			poor++
		}
		areaCounts[g.NodeValue(n, DBLPArea)]++
	}
	share := float64(poor) / float64(g.NumNodes())
	if share < 0.88 || share > 0.94 {
		t.Errorf("Poor share = %.3f, want ≈ 0.9118", share)
	}
	// DM must be the least populated area.
	for _, a := range []int{AreaDB, AreaAI, AreaIR} {
		if areaCounts[AreaDM] >= areaCounts[a] {
			t.Errorf("DM (%d) not the smallest area (area %d has %d)", areaCounts[AreaDM], a, areaCounts[a])
		}
	}

	// D2 shape: among DB-sourced "often" edges leaving DB, DM dominates.
	var dbOftenOut, dbOftenToDM int
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			t.Fatalf("generator produced dead edge %d", e)
		}
		if g.NodeValue(g.Src(e), DBLPArea) != AreaDB {
			continue
		}
		if g.EdgeValue(e, DBLPStrength) != StrengthOften {
			continue
		}
		if dstArea := g.NodeValue(g.Dst(e), DBLPArea); dstArea != AreaDB {
			dbOftenOut++
			if dstArea == AreaDM {
				dbOftenToDM++
			}
		}
	}
	if dbOftenOut == 0 {
		t.Fatal("no cross-area often edges from DB")
	}
	if nhp := float64(dbOftenToDM) / float64(dbOftenOut); nhp < 0.5 {
		t.Errorf("planted DB -often-> DM rate = %.3f, want > 0.5", nhp)
	}
}

func TestDBLPUndirected(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.Authors = 500
	cfg.Pairs = 600
	g := DBLP(cfg)
	// Every even edge must have an odd reverse twin with equal strength.
	for e := 0; e < g.NumEdges(); e += 2 {
		if !g.EdgeAlive(e) || !g.EdgeAlive(e+1) {
			t.Fatalf("generator produced dead edge pair %d", e)
		}
		if g.Src(e) != g.Dst(e+1) || g.Dst(e) != g.Src(e+1) {
			t.Fatalf("edge %d has no reverse twin", e)
		}
		if g.EdgeValue(e, 0) != g.EdgeValue(e+1, 0) {
			t.Fatalf("edge %d twin strength differs", e)
		}
	}
}

func TestRandomGenerator(t *testing.T) {
	cfg := RandomConfig{
		Nodes:     50,
		Edges:     200,
		NodeAttrs: []graph.Attribute{{Name: "A", Domain: 4, Homophily: true}},
		EdgeAttrs: []graph.Attribute{{Name: "W", Domain: 2}},
		NullProb:  0.2,
		Seed:      3,
	}
	g := Random(cfg)
	if g.NumNodes() != 50 || g.NumEdges() != 200 {
		t.Fatalf("random graph size wrong")
	}
	nulls := 0
	for n := 0; n < 50; n++ {
		if g.NodeValue(n, 0) == graph.Null {
			nulls++
		}
	}
	if nulls == 0 || nulls == 50 {
		t.Errorf("NullProb=0.2 produced %d/50 nulls", nulls)
	}
	g2 := Random(cfg)
	for e := 0; e < 200; e++ {
		if g.Src(e) != g2.Src(e) || g.EdgeValue(e, 0) != g2.EdgeValue(e, 0) {
			t.Fatal("random generator not deterministic")
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	assertPanics(t, "pokec zero nodes", func() { Pokec(PokecConfig{}) })
	assertPanics(t, "dblp zero authors", func() { DBLP(DBLPConfig{}) })
}
