// Package datagen synthesises attributed social networks standing in for
// the paper's two real datasets (see DESIGN.md §3 for the substitution
// argument): a Pokec-like dating/friendship network and a DBLP-like
// co-authorship network, both with controllable homophily strength and
// planted non-homophily preferences, plus uniform random graphs for
// property tests. All generators are deterministic given their seed.
package datagen

import (
	"math"
	"math/rand"

	"grminer/internal/graph"
)

// weighted samples indices proportionally to non-negative weights.
type weighted struct {
	cum []float64
}

func newWeighted(weights []float64) weighted {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("datagen: negative weight")
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		panic("datagen: all-zero weights")
	}
	return weighted{cum: cum}
}

// sample returns an index in [0, len(weights)).
func (w weighted) sample(r *rand.Rand) int {
	x := r.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// valueIndex buckets node ids by attribute value for fast conditional
// sampling ("pick a node whose Region equals v").
type valueIndex struct {
	buckets [][]int32
}

func indexByValue(g *graph.Graph, attr, domain int) valueIndex {
	vi := valueIndex{buckets: make([][]int32, domain+1)}
	for n := 0; n < g.NumNodes(); n++ {
		v := g.NodeValue(n, attr)
		vi.buckets[v] = append(vi.buckets[v], int32(n))
	}
	return vi
}

// sample picks a uniform node with the given value; ok is false when no
// node has it.
func (vi valueIndex) sample(r *rand.Rand, v graph.Value) (int32, bool) {
	b := vi.buckets[v]
	if len(b) == 0 {
		return 0, false
	}
	return b[r.Intn(len(b))], true
}

// zipfWeights returns Zipf(s) weights for n values (rank 1 most popular) —
// used for skewed marginals such as Pokec's Region attribute.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
	}
	return w
}
