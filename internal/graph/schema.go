// Package graph defines the attributed, directed social-network model used
// throughout the repository: nodes and edges carry values over fixed sets of
// discrete attributes, exactly as in Section III of "Mining Social Ties
// Beyond Homophily" (ICDE 2016). Every attribute has a discrete domain
// {0, 1, ..., Domain} where 0 is the null value.
package graph

import (
	"fmt"
	"strconv"
)

// Value is a single attribute value. 0 is the null value (Null); valid
// non-null values for an attribute A range over 1..A.Domain.
type Value uint16

// Null is the null attribute value. Null never appears in a GR descriptor.
const Null Value = 0

// MaxDomain is the largest supported attribute domain size. It bounds the
// counting-sort bucket arrays used by the partitioner.
const MaxDomain = 1<<16 - 1

// Attribute describes one node or edge attribute.
//
// grlint:wire v1
type Attribute struct {
	// Name is the attribute name, unique within its attribute set.
	Name string
	// Domain is the domain size |A|: valid values are 1..Domain, with 0 null.
	Domain int
	// Homophily marks a homophily attribute (Section III-B). Only meaningful
	// for node attributes; individuals sharing a value on a homophily
	// attribute are more likely to connect.
	Homophily bool
	// Labels optionally names the values. When set it must have Domain+1
	// entries; Labels[0] labels the null value.
	Labels []string
}

// Label returns a human-readable label for value v: the configured label if
// present, "∅" for null, and the decimal value otherwise.
func (a *Attribute) Label(v Value) string {
	if int(v) < len(a.Labels) && a.Labels[v] != "" {
		return a.Labels[v]
	}
	if v == Null {
		return "∅"
	}
	return strconv.Itoa(int(v))
}

// ValueOf resolves a label back to its value. Decimal strings are accepted
// for unlabeled attributes. The second result reports whether the label was
// resolved to a valid (possibly null) value.
func (a *Attribute) ValueOf(label string) (Value, bool) {
	for v, l := range a.Labels {
		if l == label {
			return Value(v), true
		}
	}
	n, err := strconv.Atoi(label)
	if err != nil || n < 0 || n > a.Domain {
		return Null, false
	}
	return Value(n), true
}

// Validate checks the attribute definition.
func (a *Attribute) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("graph: attribute with empty name")
	}
	if a.Domain < 1 || a.Domain > MaxDomain {
		return fmt.Errorf("graph: attribute %s: domain %d out of range [1, %d]", a.Name, a.Domain, MaxDomain)
	}
	if a.Labels != nil && len(a.Labels) != a.Domain+1 {
		return fmt.Errorf("graph: attribute %s: %d labels for domain %d (want %d)",
			a.Name, len(a.Labels), a.Domain, a.Domain+1)
	}
	return nil
}

// Schema fixes the node and edge attribute sets of a network.
type Schema struct {
	Node []Attribute
	Edge []Attribute
}

// NewSchema validates and returns a schema.
func NewSchema(node, edge []Attribute) (*Schema, error) {
	s := &Schema{Node: node, Edge: edge}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks all attributes and name uniqueness within each set.
func (s *Schema) Validate() error {
	if len(s.Node) == 0 {
		return fmt.Errorf("graph: schema has no node attributes")
	}
	for _, set := range [][]Attribute{s.Node, s.Edge} {
		seen := make(map[string]bool, len(set))
		for i := range set {
			a := &set[i]
			if err := a.Validate(); err != nil {
				return err
			}
			if seen[a.Name] {
				return fmt.Errorf("graph: duplicate attribute name %q", a.Name)
			}
			seen[a.Name] = true
		}
	}
	return nil
}

// NodeAttr returns the index of the named node attribute.
func (s *Schema) NodeAttr(name string) (int, bool) {
	for i := range s.Node {
		if s.Node[i].Name == name {
			return i, true
		}
	}
	return -1, false
}

// EdgeAttr returns the index of the named edge attribute.
func (s *Schema) EdgeAttr(name string) (int, bool) {
	for i := range s.Edge {
		if s.Edge[i].Name == name {
			return i, true
		}
	}
	return -1, false
}

// HomophilyNodeAttrs returns the indices of homophily node attributes.
func (s *Schema) HomophilyNodeAttrs() []int {
	var out []int
	for i := range s.Node {
		if s.Node[i].Homophily {
			out = append(out, i)
		}
	}
	return out
}

// NonHomophilyNodeAttrs returns the indices of non-homophily node attributes.
func (s *Schema) NonHomophilyNodeAttrs() []int {
	var out []int
	for i := range s.Node {
		if !s.Node[i].Homophily {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the schema. Mutating the copy (for example
// restricting attributes for a dimensionality sweep) leaves the original
// untouched.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Node: make([]Attribute, len(s.Node)),
		Edge: make([]Attribute, len(s.Edge)),
	}
	copy(c.Node, s.Node)
	copy(c.Edge, s.Edge)
	for i := range c.Node {
		if c.Node[i].Labels != nil {
			c.Node[i].Labels = append([]string(nil), c.Node[i].Labels...)
		}
	}
	for i := range c.Edge {
		if c.Edge[i].Labels != nil {
			c.Edge[i].Labels = append([]string(nil), c.Edge[i].Labels...)
		}
	}
	return c
}
