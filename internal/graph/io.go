package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text formats below are deliberately simple, line-oriented and
// stdlib-only so real datasets (for example the SNAP Pokec dump after the
// paper's preprocessing) can be fed to the miner.
//
// Schema file: one attribute per line,
//
//	node <Name> <Domain> [hom] [labels=l0|l1|...|lD]
//	edge <Name> <Domain> [labels=...]
//
// Node file: tab-separated "<id>\t<v1>\t<v2>..." with ids 0..N-1 in any
// order; missing nodes keep all-null values.
//
// Edge file: tab-separated "<src>\t<dst>\t<v1>...".
// Lines starting with '#' and blank lines are ignored in all three files.

// parseValue parses one attribute value, rejecting anything outside the
// Value (uint16) range instead of letting the conversion wrap: "-65535"
// must be a loud error, not a silent value-1 cell. Domain checks happen
// later, in SetNodeValue/AddEdge.
func parseValue(s string) (Value, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return Null, fmt.Errorf("bad value %q: %v", s, err)
	}
	if v < 0 || v > 65535 {
		return Null, fmt.Errorf("value %d outside the attribute value range [0, 65535]", v)
	}
	return Value(v), nil
}

// ParseSchema reads a schema definition.
func ParseSchema(r io.Reader) (*Schema, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var s Schema
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: schema line %d: want at least 3 fields, got %q", lineNo, line)
		}
		kind := fields[0]
		var a Attribute
		a.Name = fields[1]
		domain, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graph: schema line %d: bad domain %q: %v", lineNo, fields[2], err)
		}
		a.Domain = domain
		for _, f := range fields[3:] {
			switch {
			case f == "hom":
				a.Homophily = true
			case strings.HasPrefix(f, "labels="):
				a.Labels = strings.Split(strings.TrimPrefix(f, "labels="), "|")
			default:
				return nil, fmt.Errorf("graph: schema line %d: unknown field %q", lineNo, f)
			}
		}
		switch kind {
		case "node":
			s.Node = append(s.Node, a)
		case "edge":
			if a.Homophily {
				return nil, fmt.Errorf("graph: schema line %d: edge attribute %s cannot be homophilous", lineNo, a.Name)
			}
			s.Edge = append(s.Edge, a)
		default:
			return nil, fmt.Errorf("graph: schema line %d: unknown kind %q (want node or edge)", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteSchema writes the schema in the format accepted by ParseSchema.
func WriteSchema(w io.Writer, s *Schema) error {
	bw := bufio.NewWriter(w)
	emit := func(kind string, a *Attribute) {
		fmt.Fprintf(bw, "%s %s %d", kind, a.Name, a.Domain)
		if a.Homophily {
			fmt.Fprint(bw, " hom")
		}
		if a.Labels != nil {
			fmt.Fprintf(bw, " labels=%s", strings.Join(a.Labels, "|"))
		}
		fmt.Fprintln(bw)
	}
	for i := range s.Node {
		emit("node", &s.Node[i])
	}
	for i := range s.Edge {
		emit("edge", &s.Edge[i])
	}
	return bw.Flush()
}

// ReadGraph reads a graph given its schema and node/edge streams. numNodes
// may be -1, in which case it is inferred as 1 + the largest node id seen in
// either file (requiring two passes is avoided by growing lazily).
func ReadGraph(schema *Schema, numNodes int, nodes, edges io.Reader) (*Graph, error) {
	g := &Graph{schema: schema}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	grow := func(n int) {
		if n < g.numNodes {
			return
		}
		need := (n + 1) * len(schema.Node)
		for len(g.nodeVals) < need {
			g.nodeVals = append(g.nodeVals, Null)
		}
		g.numNodes = n + 1
	}
	if numNodes >= 0 {
		g.numNodes = numNodes
		g.nodeVals = make([]Value, numNodes*len(schema.Node))
	}

	sc := bufio.NewScanner(nodes)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 1+len(schema.Node) {
			return nil, fmt.Errorf("graph: nodes line %d: %d fields, want %d", lineNo, len(fields), 1+len(schema.Node))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("graph: nodes line %d: bad node id %q", lineNo, fields[0])
		}
		if numNodes < 0 {
			grow(id)
		}
		for a := 0; a < len(schema.Node); a++ {
			v, err := parseValue(fields[1+a])
			if err != nil {
				return nil, fmt.Errorf("graph: nodes line %d: %v", lineNo, err)
			}
			if err := g.SetNodeValue(id, a, v); err != nil {
				return nil, fmt.Errorf("graph: nodes line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading nodes: %w", err)
	}

	sc = bufio.NewScanner(edges)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo = 0
	vals := make([]Value, len(schema.Edge))
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 2+len(schema.Edge) {
			return nil, fmt.Errorf("graph: edges line %d: %d fields, want %d", lineNo, len(fields), 2+len(schema.Edge))
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || src < 0 || dst < 0 {
			return nil, fmt.Errorf("graph: edges line %d: bad endpoints %q %q", lineNo, fields[0], fields[1])
		}
		if numNodes < 0 {
			grow(src)
			grow(dst)
		}
		for a := 0; a < len(schema.Edge); a++ {
			v, err := parseValue(fields[2+a])
			if err != nil {
				return nil, fmt.Errorf("graph: edges line %d: %v", lineNo, err)
			}
			vals[a] = v
		}
		if _, err := g.AddEdge(src, dst, vals...); err != nil {
			return nil, fmt.Errorf("graph: edges line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edges: %w", err)
	}
	return g, nil
}

// WriteNodes writes the node file for g.
func WriteNodes(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for n := 0; n < g.NumNodes(); n++ {
		fmt.Fprintf(bw, "%d", n)
		for a := 0; a < len(g.schema.Node); a++ {
			fmt.Fprintf(bw, "\t%d", g.NodeValue(n, a))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteEdges writes the edge file for g.
func WriteEdges(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		fmt.Fprintf(bw, "%d\t%d", g.Src(e), g.Dst(e))
		for a := 0; a < len(g.schema.Edge); a++ {
			fmt.Fprintf(bw, "\t%d", g.EdgeValue(e, a))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// SaveFiles writes schema, nodes, and edges files under the given paths.
func SaveFiles(g *Graph, schemaPath, nodesPath, edgesPath string) error {
	write := func(path string, f func(io.Writer) error) error {
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := f(file); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	if err := write(schemaPath, func(w io.Writer) error { return WriteSchema(w, g.schema) }); err != nil {
		return err
	}
	if err := write(nodesPath, func(w io.Writer) error { return WriteNodes(w, g) }); err != nil {
		return err
	}
	return write(edgesPath, func(w io.Writer) error { return WriteEdges(w, g) })
}

// LoadFiles reads a graph from schema, nodes, and edges files.
func LoadFiles(schemaPath, nodesPath, edgesPath string) (*Graph, error) {
	sf, err := os.Open(schemaPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	schema, err := ParseSchema(sf)
	if err != nil {
		return nil, err
	}
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return ReadGraph(schema, -1, nf, ef)
}
