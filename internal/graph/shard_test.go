package graph

import (
	"math/rand"
	"testing"
)

func shardTestGraph(t *testing.T, seed int64, nodes, edges int) *Graph {
	t.Helper()
	schema, err := NewSchema([]Attribute{
		{Name: "A", Domain: 3, Homophily: true},
		{Name: "B", Domain: 2},
	}, []Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	g := MustNew(schema, nodes)
	for v := 0; v < nodes; v++ {
		if err := g.SetNodeValues(v, Value(r.Intn(4)), Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < edges; e++ {
		if _, err := g.AddEdge(r.Intn(nodes), r.Intn(nodes), Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// Every edge must land in exactly one shard, lists must stay in ascending
// edge order, and repeating the partition must reproduce it.
func TestPartitionEdgesCompleteAndDeterministic(t *testing.T) {
	g := shardTestGraph(t, 1, 12, 60)
	for _, strategy := range []ShardStrategy{ShardBySource, ShardByRHS} {
		for _, n := range []int{1, 2, 3, 8} {
			parts, err := PartitionEdges(g, n, strategy)
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != n {
				t.Fatalf("%s/%d: %d shards", strategy, n, len(parts))
			}
			seen := make(map[int32]bool)
			for _, part := range parts {
				for i, e := range part {
					if seen[e] {
						t.Fatalf("%s/%d: edge %d assigned twice", strategy, n, e)
					}
					seen[e] = true
					if i > 0 && part[i-1] >= e {
						t.Fatalf("%s/%d: shard not in ascending edge order", strategy, n)
					}
				}
			}
			if len(seen) != g.NumEdges() {
				t.Fatalf("%s/%d: %d of %d edges assigned", strategy, n, len(seen), g.NumEdges())
			}
			again, err := PartitionEdges(g, n, strategy)
			if err != nil {
				t.Fatal(err)
			}
			for s := range parts {
				if len(parts[s]) != len(again[s]) {
					t.Fatalf("%s/%d: partition not deterministic", strategy, n)
				}
				for i := range parts[s] {
					if parts[s][i] != again[s][i] {
						t.Fatalf("%s/%d: partition not deterministic", strategy, n)
					}
				}
			}
			// ShardOf must agree with the assignment edge by edge — the
			// property the incremental engine's routing relies on.
			for s, part := range parts {
				for _, e := range part {
					got, err := g.ShardOf(strategy, n, g.Src(int(e)), g.Dst(int(e)))
					if err != nil {
						t.Fatal(err)
					}
					if got != s {
						t.Fatalf("%s/%d: ShardOf(edge %d) = %d, assigned %d", strategy, n, e, got, s)
					}
				}
			}
		}
	}
}

// ShardBySource keeps a node's whole out-neighbourhood on one shard;
// ShardByRHS keeps destinations with identical attribute rows together.
func TestShardStrategyGrouping(t *testing.T) {
	g := shardTestGraph(t, 2, 10, 50)
	parts, err := PartitionEdges(g, 4, ShardBySource)
	if err != nil {
		t.Fatal(err)
	}
	srcShard := make(map[int]int)
	for s, part := range parts {
		for _, e := range part {
			src := g.Src(int(e))
			if prev, ok := srcShard[src]; ok && prev != s {
				t.Fatalf("source %d split across shards %d and %d", src, prev, s)
			}
			srcShard[src] = s
		}
	}

	parts, err = PartitionEdges(g, 4, ShardByRHS)
	if err != nil {
		t.Fatal(err)
	}
	rowShard := make(map[[2]Value]int)
	for s, part := range parts {
		for _, e := range part {
			row := g.NodeValues(g.Dst(int(e)))
			key := [2]Value{row[0], row[1]}
			if prev, ok := rowShard[key]; ok && prev != s {
				t.Fatalf("destination row %v split across shards %d and %d", key, prev, s)
			}
			rowShard[key] = s
		}
	}
}

// n = 1 is the degenerate plan: everything on shard 0.
func TestPartitionEdgesSingleShard(t *testing.T) {
	g := shardTestGraph(t, 3, 8, 30)
	for _, strategy := range []ShardStrategy{ShardBySource, ShardByRHS} {
		parts, err := PartitionEdges(g, 1, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 1 || len(parts[0]) != g.NumEdges() {
			t.Fatalf("%s: single-shard plan did not take every edge", strategy)
		}
	}
}

// A single-source graph under ShardBySource concentrates every edge on one
// shard, leaving the rest empty; an edgeless graph leaves all shards empty.
func TestPartitionEdgesSkewAndEmpty(t *testing.T) {
	schema, err := NewSchema([]Attribute{{Name: "A", Domain: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := MustNew(schema, 6)
	for v := 0; v < 6; v++ {
		if err := g.SetNodeValues(v, Value(v%2+1)); err != nil {
			t.Fatal(err)
		}
	}
	for d := 1; d < 6; d++ {
		if _, err := g.AddEdge(0, d); err != nil {
			t.Fatal(err)
		}
	}
	parts, err := PartitionEdges(g, 4, ShardBySource)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, part := range parts {
		if len(part) > 0 {
			nonEmpty++
			if len(part) != g.NumEdges() {
				t.Fatalf("single-source shard holds %d of %d edges", len(part), g.NumEdges())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("single-source graph occupies %d shards", nonEmpty)
	}

	empty := MustNew(schema, 3)
	parts, err = PartitionEdges(empty, 3, ShardByRHS)
	if err != nil {
		t.Fatal(err)
	}
	for s, part := range parts {
		if len(part) != 0 {
			t.Fatalf("edgeless graph put %d edges on shard %d", len(part), s)
		}
	}
}

// Invalid layouts and strategies are rejected.
func TestPartitionEdgesRejectsBadInput(t *testing.T) {
	g := shardTestGraph(t, 4, 5, 10)
	if _, err := PartitionEdges(g, 0, ShardBySource); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := PartitionEdges(g, -1, ShardBySource); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := PartitionEdges(g, 2, "bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := g.ShardOf("bogus", 2, 0, 1); err == nil {
		t.Error("ShardOf accepted unknown strategy")
	}
	if _, err := g.ShardOf(ShardBySource, 0, 0, 1); err == nil {
		t.Error("ShardOf accepted 0 shards")
	}
	if _, err := ParseShardStrategy("source"); err == nil {
		t.Error("ParseShardStrategy accepted a misspelling")
	}
	for _, s := range []string{"src", "rhs"} {
		if _, err := ParseShardStrategy(s); err != nil {
			t.Errorf("ParseShardStrategy(%q): %v", s, err)
		}
	}
}
