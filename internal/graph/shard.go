package graph

import "fmt"

// Deterministic edge partitioning for the sharded mining engine. A shard
// strategy is a pure function of an edge's endpoints (identity and attribute
// values) — never of edge ids, insertion order, or shard load — so that
//
//   - partitioning the same graph twice yields the same assignment,
//   - an edge inserted later routes to exactly the shard a fresh partition
//     of the grown graph would put it on (what the shard-aware incremental
//     engine relies on), and
//   - the assignment can be recomputed independently on any machine, which
//     is what makes the in-process shard workers a faithful stand-in for a
//     future multi-machine deployment.

// ShardStrategy names a deterministic rule assigning every edge to a shard.
type ShardStrategy string

const (
	// ShardBySource routes an edge by a hash of its source node id: a
	// node's whole out-neighbourhood lives on one shard, which keeps the
	// CSR grouping of the compact store intact per shard and gives the
	// incremental engine a single owner for every streamed edge.
	ShardBySource ShardStrategy = "src"
	// ShardByRHS routes an edge by a hash of its destination node's full
	// attribute row — the values RHS descriptors constrain. Edges that are
	// indistinguishable to any RHS descriptor land on the same shard, so
	// first-level RIGHT partitions are shard-pure and the per-shard RHS
	// value distributions mirror the sharding key.
	ShardByRHS ShardStrategy = "rhs"
)

// ParseShardStrategy maps a CLI spelling to a strategy.
func ParseShardStrategy(s string) (ShardStrategy, error) {
	switch ShardStrategy(s) {
	case ShardBySource, ShardByRHS:
		return ShardStrategy(s), nil
	default:
		return "", fmt.Errorf("graph: unknown shard strategy %q (want %q or %q)",
			s, ShardBySource, ShardByRHS)
	}
}

// fnv1a32 is the 32-bit FNV-1a hash over a value stream.
type fnv1a32 uint32

func newFNV() fnv1a32 { return 2166136261 }

func (h fnv1a32) mix(v uint32) fnv1a32 {
	for shift := 0; shift < 32; shift += 8 {
		h ^= fnv1a32(v>>shift) & 0xff
		h *= 16777619
	}
	return h
}

// ShardOf returns the shard in [0, n) owning the edge src -> dst under the
// given strategy. The result depends only on the endpoints, so it is stable
// under edge insertions.
func (g *Graph) ShardOf(strategy ShardStrategy, n int, src, dst int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("graph: shard count %d < 1", n)
	}
	h := newFNV()
	switch strategy {
	case ShardBySource:
		h = h.mix(uint32(src))
	case ShardByRHS:
		for _, v := range g.NodeValues(dst) {
			h = h.mix(uint32(v))
		}
	default:
		return 0, fmt.Errorf("graph: unknown shard strategy %q", strategy)
	}
	return int(uint32(h) % uint32(n)), nil
}

// PartitionEdges assigns every edge of g to one of n shards and returns the
// per-shard edge id lists. Every edge appears in exactly one list; lists
// preserve ascending edge id order (so per-shard stores see edges in the
// same relative order the graph does). Shards may be empty — a skewed hash,
// a single-source graph under ShardBySource, or n exceeding the number of
// distinct keys all legitimately produce empty shards, and the mining
// coordinator treats an empty shard as an empty store.
func PartitionEdges(g *Graph, n int, strategy ShardStrategy) ([][]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: shard count %d < 1", n)
	}
	if _, err := ParseShardStrategy(string(strategy)); err != nil {
		return nil, err
	}
	parts := make([][]int32, n)
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		s, err := g.ShardOf(strategy, n, g.Src(e), g.Dst(e))
		if err != nil {
			return nil, err
		}
		parts[s] = append(parts[s], int32(e))
	}
	return parts, nil
}
