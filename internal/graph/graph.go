package graph

import "fmt"

// Graph is a directed multigraph with attributed nodes and edges. Node and
// edge attribute values are stored in flat row-major arrays so that large
// networks stay cache- and GC-friendly. An undirected relationship is
// represented, as in the paper, by two directed edges in opposite directions.
type Graph struct {
	schema   *Schema
	numNodes int
	nodeVals []Value // numNodes * len(schema.Node), row-major
	src      []int32
	dst      []int32
	edgeVals []Value // numEdges * len(schema.Edge), row-major

	// dead marks tombstoned edges (RemoveEdge). Edge ids are never reused
	// or renumbered — tombstones keep every previously returned id stable,
	// which is what lets the compact store and the incremental engines refer
	// to graph edges across deletions. nil until the first removal.
	dead      []bool
	deadCount int
}

// New creates a graph with numNodes nodes (all attribute values null) and no
// edges. The schema must be valid.
func New(schema *Schema, numNodes int) (*Graph, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", numNodes)
	}
	return &Graph{
		schema:   schema,
		numNodes: numNodes,
		nodeVals: make([]Value, numNodes*len(schema.Node)),
	}, nil
}

// MustNew is New panicking on error; for tests and static fixtures.
func MustNew(schema *Schema, numNodes int) *Graph {
	g, err := New(schema, numNodes)
	if err != nil {
		panic(err)
	}
	return g
}

// Schema returns the graph's schema. Callers must not mutate it.
func (g *Graph) Schema() *Schema { return g.schema }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the edge id space bound: every edge ever added, including
// tombstoned ones. Iterate 0..NumEdges-1 and skip !EdgeAlive ids to visit the
// live edge set; use NumLiveEdges for |E| in metric denominators. For a graph
// that never saw RemoveEdge the two coincide.
func (g *Graph) NumEdges() int { return len(g.src) }

// NumLiveEdges returns |E|, the number of non-tombstoned edges.
func (g *Graph) NumLiveEdges() int { return len(g.src) - g.deadCount }

// EdgeAlive reports whether edge e has not been removed.
func (g *Graph) EdgeAlive(e int) bool { return g.dead == nil || !g.dead[e] }

// HasDeadEdges reports whether any edge has been removed.
func (g *Graph) HasDeadEdges() bool { return g.deadCount > 0 }

// RemoveEdge tombstones edge e. The id stays valid — Src, Dst, and
// EdgeValue keep answering for it — but it no longer belongs to the edge
// set: EdgeAlive turns false, NumLiveEdges drops, and every dead-aware
// consumer (store builds, Eval, partitioning, degrees, Stats, SaveFiles)
// skips it. Removing an already-dead or out-of-range edge is an error.
func (g *Graph) RemoveEdge(e int) error {
	if e < 0 || e >= len(g.src) {
		return fmt.Errorf("graph: edge %d out of range [0, %d)", e, len(g.src))
	}
	if g.dead == nil {
		g.dead = make([]bool, len(g.src))
	}
	if g.dead[e] {
		return fmt.Errorf("graph: edge %d already removed", e)
	}
	g.dead[e] = true
	g.deadCount++
	return nil
}

// SetNodeValue sets node n's value for node attribute attr.
func (g *Graph) SetNodeValue(n, attr int, v Value) error {
	if n < 0 || n >= g.numNodes {
		return fmt.Errorf("graph: node %d out of range [0, %d)", n, g.numNodes)
	}
	if attr < 0 || attr >= len(g.schema.Node) {
		return fmt.Errorf("graph: node attribute %d out of range", attr)
	}
	if int(v) > g.schema.Node[attr].Domain {
		return fmt.Errorf("graph: value %d out of domain of node attribute %s (|A|=%d)",
			v, g.schema.Node[attr].Name, g.schema.Node[attr].Domain)
	}
	g.nodeVals[n*len(g.schema.Node)+attr] = v
	return nil
}

// SetNodeValues sets all attribute values of node n at once.
func (g *Graph) SetNodeValues(n int, vals ...Value) error {
	if len(vals) != len(g.schema.Node) {
		return fmt.Errorf("graph: node %d: %d values for %d attributes", n, len(vals), len(g.schema.Node))
	}
	for a, v := range vals {
		if err := g.SetNodeValue(n, a, v); err != nil {
			return err
		}
	}
	return nil
}

// NodeValue returns node n's value for node attribute attr.
func (g *Graph) NodeValue(n, attr int) Value {
	return g.nodeVals[n*len(g.schema.Node)+attr]
}

// NodeValues returns the attribute row of node n. The returned slice aliases
// graph storage; callers must not mutate it.
func (g *Graph) NodeValues(n int) []Value {
	w := len(g.schema.Node)
	return g.nodeVals[n*w : n*w+w]
}

// CheckEdge validates a prospective edge src -> dst with the given edge
// attribute values without adding it. It is the exact precondition of
// AddEdge, split out so batch ingestion (the incremental miner, -follow
// streams) can reject a whole batch before mutating any state.
func (g *Graph) CheckEdge(src, dst int, vals ...Value) error {
	if src < 0 || src >= g.numNodes {
		return fmt.Errorf("graph: edge source %d out of range [0, %d)", src, g.numNodes)
	}
	if dst < 0 || dst >= g.numNodes {
		return fmt.Errorf("graph: edge destination %d out of range [0, %d)", dst, g.numNodes)
	}
	if len(vals) != len(g.schema.Edge) {
		return fmt.Errorf("graph: edge %d->%d: %d values for %d edge attributes",
			src, dst, len(vals), len(g.schema.Edge))
	}
	for a, v := range vals {
		if int(v) > g.schema.Edge[a].Domain {
			return fmt.Errorf("graph: value %d out of domain of edge attribute %s (|A|=%d)",
				v, g.schema.Edge[a].Name, g.schema.Edge[a].Domain)
		}
	}
	return nil
}

// AddEdge appends a directed edge src -> dst with the given edge attribute
// values and returns its index.
func (g *Graph) AddEdge(src, dst int, vals ...Value) (int, error) {
	if err := g.CheckEdge(src, dst, vals...); err != nil {
		return -1, err
	}
	e := len(g.src)
	g.src = append(g.src, int32(src))
	g.dst = append(g.dst, int32(dst))
	g.edgeVals = append(g.edgeVals, vals...)
	if g.dead != nil {
		g.dead = append(g.dead, false)
	}
	return e, nil
}

// AddUndirected adds the pair of opposite directed edges between a and b.
func (g *Graph) AddUndirected(a, b int, vals ...Value) error {
	if _, err := g.AddEdge(a, b, vals...); err != nil {
		return err
	}
	_, err := g.AddEdge(b, a, vals...)
	return err
}

// Src returns the source node of edge e.
func (g *Graph) Src(e int) int { return int(g.src[e]) }

// Dst returns the destination node of edge e.
func (g *Graph) Dst(e int) int { return int(g.dst[e]) }

// EdgeValue returns edge e's value for edge attribute attr.
func (g *Graph) EdgeValue(e, attr int) Value {
	return g.edgeVals[e*len(g.schema.Edge)+attr]
}

// EdgeValues returns the attribute row of edge e. The returned slice aliases
// graph storage; callers must not mutate it.
func (g *Graph) EdgeValues(e int) []Value {
	w := len(g.schema.Edge)
	if w == 0 {
		return nil
	}
	return g.edgeVals[e*w : e*w+w]
}

// OutDegrees returns the out-degree of every node (live edges only).
func (g *Graph) OutDegrees() []int32 {
	deg := make([]int32, g.numNodes)
	for e, s := range g.src {
		if g.EdgeAlive(e) {
			deg[s]++
		}
	}
	return deg
}

// InDegrees returns the in-degree of every node (live edges only).
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, g.numNodes)
	for e, d := range g.dst {
		if g.EdgeAlive(e) {
			deg[d]++
		}
	}
	return deg
}

// Stats summarises a graph for reports and logs.
type Stats struct {
	Nodes         int
	Edges         int
	NodeAttrs     int
	EdgeAttrs     int
	SourceNodes   int // nodes with out-degree > 0
	SinkNodes     int // nodes with in-degree > 0
	NullNodeCells int // node attribute cells holding the null value
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	st := Stats{
		Nodes:     g.numNodes,
		Edges:     g.NumLiveEdges(),
		NodeAttrs: len(g.schema.Node),
		EdgeAttrs: len(g.schema.Edge),
	}
	outSeen := make([]bool, g.numNodes)
	inSeen := make([]bool, g.numNodes)
	for i := range g.src {
		if !g.EdgeAlive(i) {
			continue
		}
		outSeen[g.src[i]] = true
		inSeen[g.dst[i]] = true
	}
	for n := 0; n < g.numNodes; n++ {
		if outSeen[n] {
			st.SourceNodes++
		}
		if inSeen[n] {
			st.SinkNodes++
		}
	}
	for _, v := range g.nodeVals {
		if v == Null {
			st.NullNodeCells++
		}
	}
	return st
}

// Restrict returns a copy of g whose node attribute set is limited to the
// given attribute indices (in the given order). Edges and edge attributes are
// preserved. It is used by the dimensionality sweep of Figure 4d.
func (g *Graph) Restrict(nodeAttrs []int) (*Graph, error) {
	node := make([]Attribute, len(nodeAttrs))
	for i, a := range nodeAttrs {
		if a < 0 || a >= len(g.schema.Node) {
			return nil, fmt.Errorf("graph: restrict: node attribute %d out of range", a)
		}
		node[i] = g.schema.Node[a]
	}
	schema, err := NewSchema(node, append([]Attribute(nil), g.schema.Edge...))
	if err != nil {
		return nil, err
	}
	out, err := New(schema, g.numNodes)
	if err != nil {
		return nil, err
	}
	for n := 0; n < g.numNodes; n++ {
		row := g.NodeValues(n)
		for i, a := range nodeAttrs {
			out.nodeVals[n*len(node)+i] = row[a]
		}
	}
	out.src = append([]int32(nil), g.src...)
	out.dst = append([]int32(nil), g.dst...)
	out.edgeVals = append([]Value(nil), g.edgeVals...)
	if g.dead != nil {
		out.dead = append([]bool(nil), g.dead...)
		out.deadCount = g.deadCount
	}
	return out, nil
}
