package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		[]Attribute{
			{Name: "SEX", Domain: 2, Labels: []string{"∅", "F", "M"}},
			{Name: "EDU", Domain: 3, Homophily: true},
		},
		[]Attribute{{Name: "TYPE", Domain: 2}},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Schema
	}{
		{"no node attrs", Schema{}},
		{"empty name", Schema{Node: []Attribute{{Name: "", Domain: 2}}}},
		{"zero domain", Schema{Node: []Attribute{{Name: "A", Domain: 0}}}},
		{"oversize domain", Schema{Node: []Attribute{{Name: "A", Domain: MaxDomain + 1}}}},
		{"label count", Schema{Node: []Attribute{{Name: "A", Domain: 2, Labels: []string{"x"}}}}},
		{"dup node names", Schema{Node: []Attribute{{Name: "A", Domain: 2}, {Name: "A", Domain: 2}}}},
		{"dup edge names", Schema{
			Node: []Attribute{{Name: "A", Domain: 2}},
			Edge: []Attribute{{Name: "W", Domain: 2}, {Name: "W", Domain: 3}},
		}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", c.name)
		}
	}
	if err := testSchema(t).Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestAttributeLabels(t *testing.T) {
	s := testSchema(t)
	sex := &s.Node[0]
	if got := sex.Label(2); got != "M" {
		t.Errorf("Label(2) = %q, want M", got)
	}
	if got := sex.Label(0); got != "∅" {
		t.Errorf("Label(0) = %q, want ∅", got)
	}
	edu := &s.Node[1]
	if got := edu.Label(3); got != "3" {
		t.Errorf("unlabeled Label(3) = %q, want 3", got)
	}
	if v, ok := sex.ValueOf("M"); !ok || v != 2 {
		t.Errorf("ValueOf(M) = %d, %v", v, ok)
	}
	if v, ok := edu.ValueOf("2"); !ok || v != 2 {
		t.Errorf("numeric ValueOf(2) = %d, %v", v, ok)
	}
	if _, ok := edu.ValueOf("nope"); ok {
		t.Error("ValueOf accepted unknown label")
	}
	if _, ok := edu.ValueOf("99"); ok {
		t.Error("ValueOf accepted out-of-domain numeric")
	}
}

func TestGraphBasics(t *testing.T) {
	g := MustNew(testSchema(t), 3)
	if err := g.SetNodeValues(0, 1, 2); err != nil {
		t.Fatalf("SetNodeValues: %v", err)
	}
	if err := g.SetNodeValues(1, 2, 1); err != nil {
		t.Fatalf("SetNodeValues: %v", err)
	}
	if g.NodeValue(0, 1) != 2 || g.NodeValue(1, 0) != 2 {
		t.Errorf("node values wrong: %v %v", g.NodeValues(0), g.NodeValues(1))
	}
	e, err := g.AddEdge(0, 1, 1)
	if err != nil || e != 0 {
		t.Fatalf("AddEdge: %d, %v", e, err)
	}
	if err := g.AddUndirected(1, 2, 2); err != nil {
		t.Fatalf("AddUndirected: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Src(1) != 1 || g.Dst(1) != 2 || g.EdgeValue(1, 0) != 2 {
		t.Errorf("edge 1 = %d->%d val %d", g.Src(1), g.Dst(1), g.EdgeValue(1, 0))
	}
	if g.Src(2) != 2 || g.Dst(2) != 1 {
		t.Errorf("reverse edge = %d->%d", g.Src(2), g.Dst(2))
	}
	out, in := g.OutDegrees(), g.InDegrees()
	if out[0] != 1 || out[1] != 1 || out[2] != 1 {
		t.Errorf("out degrees %v", out)
	}
	if in[0] != 0 || in[1] != 2 || in[2] != 1 {
		t.Errorf("in degrees %v", in)
	}
}

func TestGraphErrors(t *testing.T) {
	g := MustNew(testSchema(t), 2)
	if err := g.SetNodeValue(5, 0, 1); err == nil {
		t.Error("SetNodeValue accepted out-of-range node")
	}
	if err := g.SetNodeValue(0, 9, 1); err == nil {
		t.Error("SetNodeValue accepted out-of-range attribute")
	}
	if err := g.SetNodeValue(0, 0, 3); err == nil {
		t.Error("SetNodeValue accepted out-of-domain value")
	}
	if err := g.SetNodeValues(0, 1); err == nil {
		t.Error("SetNodeValues accepted wrong arity")
	}
	if _, err := g.AddEdge(0, 7, 1); err == nil {
		t.Error("AddEdge accepted dangling destination")
	}
	if _, err := g.AddEdge(7, 0, 1); err == nil {
		t.Error("AddEdge accepted dangling source")
	}
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Error("AddEdge accepted missing edge values")
	}
	if _, err := g.AddEdge(0, 1, 9); err == nil {
		t.Error("AddEdge accepted out-of-domain edge value")
	}
	if _, err := New(testSchema(t), -1); err == nil {
		t.Error("New accepted negative node count")
	}
}

func TestStats(t *testing.T) {
	g := MustNew(testSchema(t), 4)
	g.SetNodeValues(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	st := g.Stats()
	if st.Nodes != 4 || st.Edges != 2 || st.SourceNodes != 1 || st.SinkNodes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.NullNodeCells != 6 { // nodes 1,2,3 all-null
		t.Errorf("NullNodeCells = %d, want 6", st.NullNodeCells)
	}
}

func TestRestrict(t *testing.T) {
	g := MustNew(testSchema(t), 2)
	g.SetNodeValues(0, 1, 3)
	g.SetNodeValues(1, 2, 2)
	g.AddEdge(0, 1, 2)
	r, err := g.Restrict([]int{1})
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if len(r.Schema().Node) != 1 || r.Schema().Node[0].Name != "EDU" {
		t.Fatalf("restricted schema = %+v", r.Schema().Node)
	}
	if r.NodeValue(0, 0) != 3 || r.NodeValue(1, 0) != 2 {
		t.Errorf("restricted values: %d %d", r.NodeValue(0, 0), r.NodeValue(1, 0))
	}
	if r.NumEdges() != 1 || r.EdgeValue(0, 0) != 2 {
		t.Errorf("restricted edges lost: %d", r.NumEdges())
	}
	if _, err := g.Restrict([]int{5}); err == nil {
		t.Error("Restrict accepted bad attribute index")
	}
}

func TestSchemaClone(t *testing.T) {
	s := testSchema(t)
	c := s.Clone()
	c.Node[0].Name = "CHANGED"
	c.Node[0].Labels[1] = "X"
	if s.Node[0].Name != "SEX" || s.Node[0].Labels[1] != "F" {
		t.Error("Clone shares storage with original")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := testSchema(t)
	var buf bytes.Buffer
	if err := WriteSchema(&buf, s); err != nil {
		t.Fatalf("WriteSchema: %v", err)
	}
	got, err := ParseSchema(&buf)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if len(got.Node) != 2 || len(got.Edge) != 1 {
		t.Fatalf("round trip lost attributes: %+v", got)
	}
	if !got.Node[1].Homophily {
		t.Error("homophily flag lost")
	}
	if got.Node[0].Labels[2] != "M" {
		t.Error("labels lost")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"short line":    "node A",
		"bad domain":    "node A x",
		"unknown kind":  "vertex A 2",
		"unknown field": "node A 2 wat",
		"edge hom":      "node A 2\nedge W 2 hom",
		"invalid":       "node A 0",
	}
	for name, text := range cases {
		if _, err := ParseSchema(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseSchema accepted %q", name, text)
		}
	}
	// Comments and blank lines are fine.
	if _, err := ParseSchema(strings.NewReader("# c\n\nnode A 2\n")); err != nil {
		t.Errorf("ParseSchema rejected comments: %v", err)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := MustNew(testSchema(t), 3)
	g.SetNodeValues(0, 1, 2)
	g.SetNodeValues(2, 2, 3)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 0, 2)

	var nodes, edges bytes.Buffer
	if err := WriteNodes(&nodes, g); err != nil {
		t.Fatalf("WriteNodes: %v", err)
	}
	if err := WriteEdges(&edges, g); err != nil {
		t.Fatalf("WriteEdges: %v", err)
	}
	got, err := ReadGraph(g.Schema(), -1, &nodes, &edges)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatalf("round trip: %d nodes %d edges", got.NumNodes(), got.NumEdges())
	}
	for n := 0; n < 3; n++ {
		for a := 0; a < 2; a++ {
			if got.NodeValue(n, a) != g.NodeValue(n, a) {
				t.Errorf("node %d attr %d: %d != %d", n, a, got.NodeValue(n, a), g.NodeValue(n, a))
			}
		}
	}
	if got.EdgeValue(1, 0) != 2 {
		t.Errorf("edge value lost: %d", got.EdgeValue(1, 0))
	}
}

func TestReadGraphErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name         string
		nodes, edges string
	}{
		{"node arity", "0\t1", ""},
		{"node bad id", "x\t1\t1", ""},
		{"node bad value", "0\ty\t1", ""},
		{"node out of domain", "0\t9\t1", ""},
		{"edge arity", "", "0\t1"},
		{"edge bad endpoint", "", "a\t1\t1"},
		{"edge bad value", "", "0\t1\tz"},
		{"edge out of domain", "", "0\t1\t9"},
	}
	for _, c := range cases {
		_, err := ReadGraph(s, -1, strings.NewReader(c.nodes), strings.NewReader(c.edges))
		if err == nil {
			t.Errorf("%s: ReadGraph accepted bad input", c.name)
		}
	}
	// Fixed node count: edge beyond range must fail.
	_, err := ReadGraph(s, 2, strings.NewReader(""), strings.NewReader("0\t5\t1"))
	if err == nil {
		t.Error("ReadGraph accepted edge beyond fixed node count")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	dir := t.TempDir()
	g := MustNew(testSchema(t), 2)
	g.SetNodeValues(0, 1, 1)
	g.SetNodeValues(1, 2, 2)
	g.AddEdge(0, 1, 1)
	sp, np, ep := dir+"/schema.txt", dir+"/nodes.tsv", dir+"/edges.tsv"
	if err := SaveFiles(g, sp, np, ep); err != nil {
		t.Fatalf("SaveFiles: %v", err)
	}
	got, err := LoadFiles(sp, np, ep)
	if err != nil {
		t.Fatalf("LoadFiles: %v", err)
	}
	if got.NumNodes() != 2 || got.NumEdges() != 1 || got.NodeValue(1, 1) != 2 {
		t.Errorf("LoadFiles mismatch: %d nodes, %d edges", got.NumNodes(), got.NumEdges())
	}
	if _, err := LoadFiles(dir+"/missing", np, ep); err == nil {
		t.Error("LoadFiles accepted missing schema file")
	}
}

// Property: every stored value is returned unchanged for arbitrary in-domain
// writes (round-trip through the flat storage indexing).
func TestNodeValueRoundTripProperty(t *testing.T) {
	s := testSchema(t)
	f := func(node uint8, attr uint8, raw uint8) bool {
		g := MustNew(s, 16)
		n := int(node) % 16
		a := int(attr) % len(s.Node)
		v := Value(int(raw) % (s.Node[a].Domain + 1))
		if err := g.SetNodeValue(n, a, v); err != nil {
			return false
		}
		return g.NodeValue(n, a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
