package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// DialTimeout is the default connection + handshake budget per worker; a
// daemon that cannot answer the handshake inside it is reported as an
// error, never waited on.
const DialTimeout = 10 * time.Second

// Client is a connection to one shardd worker. After Build it implements
// core.ShardWorker, so the coordinator drives remote and in-process shards
// through the same interface. Calls are serialized per client (one request
// in flight per connection); the coordinator's concurrency is across
// workers, matching the documented ShardWorker contract.
type Client struct {
	addr string

	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	numEdges int
	// CallTimeout, when non-zero, bounds every request/reply round trip.
	// Zero (the default) leaves mining calls unbounded — offer rounds on
	// large shards legitimately take a while; CI bounds whole jobs instead.
	CallTimeout time.Duration
}

// Dial connects to a shardd daemon and performs the version handshake. A
// mismatched or unresponsive peer yields a descriptive error within
// DialTimeout — the coordinator must never hang on a bad worker.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: worker %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(DialTimeout))
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Hello{Magic: Magic, Version: Version}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: worker %s: handshake send: %w", addr, err)
	}
	var rep HelloReply
	if err := dec.Decode(&rep); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: worker %s: handshake: %w (is a grminer shardd v%d listening there?)", addr, err, Version)
	}
	if !rep.OK {
		conn.Close()
		return nil, fmt.Errorf("rpc: worker %s rejected the handshake: %s", addr, rep.Err)
	}
	conn.SetDeadline(time.Time{})
	return &Client{addr: addr, conn: conn, enc: enc, dec: dec}, nil
}

// Build ships the worker spec and waits for the shard store to be built.
func (c *Client) Build(spec core.WorkerSpec) error {
	_, err := c.call(Request{Op: OpBuild, Spec: &spec})
	return err
}

// NumEdges returns the shard's edge count as of the last reply.
func (c *Client) NumEdges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.numEdges
}

// Offer runs the worker's round-1 offer mine (see core.ShardWorker).
func (c *Client) Offer(bound *core.OfferBound) ([]core.ShardCandidate, core.Stats, error) {
	rep, err := c.call(Request{Op: OpOffer, Bound: bound})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return rep.Offers, rep.Stats, nil
}

// Counts answers the batched round-2 exact-count query.
func (c *Client) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	rep, err := c.call(Request{Op: OpCounts, GRs: grs})
	if err != nil {
		return nil, err
	}
	return rep.Counts, nil
}

// Ingest applies a routed incremental batch slice (insertions and
// retractions) worker-side.
func (c *Client) Ingest(batch core.Batch) (core.IngestReply, error) {
	rep, err := c.call(Request{Op: OpIngest, Edges: batch.Ins, Deletes: batch.Del})
	if err != nil {
		return core.IngestReply{}, err
	}
	return rep.Ingest, nil
}

// Close tears down the connection; the daemon recycles for a new session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call runs one serialized request/reply round trip.
func (c *Client) call(req Request) (Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Reply{}, fmt.Errorf("rpc: worker %s: connection closed", c.addr)
	}
	if c.CallTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.CallTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return Reply{}, fmt.Errorf("rpc: worker %s: %s: %w", c.addr, req.Op, err)
	}
	var rep Reply
	if err := c.dec.Decode(&rep); err != nil {
		return Reply{}, fmt.Errorf("rpc: worker %s: %s reply: %w", c.addr, req.Op, err)
	}
	if rep.Err != "" {
		return Reply{}, fmt.Errorf("rpc: worker %s: %s: %s", c.addr, req.Op, rep.Err)
	}
	c.numEdges = rep.NumEdges
	return rep, nil
}

// Builder returns a core.WorkerBuilder that places shard i of a deployment
// on addrs[i]: dial, handshake, ship the spec. The address list length must
// match the shard count of the layout the coordinator builds.
func Builder(addrs []string) core.WorkerBuilder {
	return func(spec core.WorkerSpec) (core.ShardWorker, error) {
		if spec.Shards != len(addrs) {
			return nil, fmt.Errorf("rpc: layout has %d shards but %d worker addresses were given", spec.Shards, len(addrs))
		}
		if spec.Index < 0 || spec.Index >= len(addrs) {
			return nil, errors.New("rpc: worker spec index out of range")
		}
		c, err := Dial(addrs[spec.Index])
		if err != nil {
			return nil, err
		}
		if err := c.Build(spec); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	}
}
