package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// DialTimeout is the default connection + handshake budget per worker; a
// daemon that cannot answer the handshake inside it is reported as an
// error, never waited on.
const DialTimeout = 10 * time.Second

var errClosed = errors.New("connection closed")

// Client is a handshaked connection to one shardd daemon. The daemon
// multiplexes up to Shards() worker slots behind the connection; Slot
// allocates per-slot workers that share (and serialize on) it. Calls are
// serialized per client — the coordinator's concurrency is across daemons,
// matching the documented ShardWorker contract — so the daemon stays a
// single-goroutine loop with no locking.
//
// The connection closes when the last open slot closes. Any transport
// failure poisons the connection for every slot: the daemon discards all
// session state when its connection ends, so no slot of a torn session is
// recoverable (see TransportError).
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// shards is the slot capacity the daemon advertised at handshake; used
	// tracks occupancy and open counts live slots.
	shards int
	used   []bool
	open   int
	// CallTimeout, when non-zero, bounds every request/reply round trip.
	// Zero (the default) leaves mining calls unbounded — offer rounds on
	// large shards legitimately take a while; CI bounds whole jobs instead.
	CallTimeout time.Duration
}

// Dial connects to a shardd daemon and performs the version handshake. A
// mismatched or unresponsive peer yields a descriptive error within
// DialTimeout — the coordinator must never hang on a bad worker. Transient
// I/O failures come back as *TransportError (retry may help); a handshake
// rejection is a deployment error and comes back plain (retry cannot help).
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, &TransportError{Addr: addr, Op: "dial", Err: err}
	}
	conn.SetDeadline(time.Now().Add(DialTimeout))
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Hello{Magic: Magic, Version: Version}); err != nil {
		conn.Close()
		return nil, &TransportError{Addr: addr, Op: "handshake send", Err: err}
	}
	var rep HelloReply
	if err := dec.Decode(&rep); err != nil {
		conn.Close()
		return nil, &TransportError{Addr: addr, Op: "handshake",
			Err: fmt.Errorf("%w (is a grminer shardd v%d listening there?)", err, Version)}
	}
	if !rep.OK {
		conn.Close()
		return nil, fmt.Errorf("rpc: worker %s rejected the handshake: %s", addr, rep.Err)
	}
	conn.SetDeadline(time.Time{})
	capacity := rep.Shards
	if capacity < 1 {
		capacity = 1
	}
	return &Client{addr: addr, conn: conn, enc: enc, dec: dec,
		shards: capacity, used: make([]bool, capacity)}, nil
}

// Addr returns the daemon address the client dialed.
func (c *Client) Addr() string { return c.addr }

// Shards returns the slot capacity the daemon advertised at handshake.
func (c *Client) Shards() int { return c.shards }

// Slot allocates the lowest free worker slot on the connection.
func (c *Client) Slot() (*Slot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, &TransportError{Addr: c.addr, Op: "slot", Err: errClosed}
	}
	for i, inUse := range c.used {
		if !inUse {
			c.used[i] = true
			c.open++
			return &Slot{c: c, shard: i}, nil
		}
	}
	return nil, fmt.Errorf("rpc: worker %s: all %d worker slots in use", c.addr, c.shards)
}

// alive reports whether the connection is still usable.
func (c *Client) alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil
}

// freeSlots reports how many worker slots are unallocated.
func (c *Client) freeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, inUse := range c.used {
		if !inUse {
			n++
		}
	}
	return n
}

// release frees a slot; the connection closes when the last slot releases
// (the daemon recycles for a new session).
func (c *Client) release(shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.used) || !c.used[shard] {
		return nil
	}
	c.used[shard] = false
	c.open--
	if c.open == 0 {
		return c.teardownLocked()
	}
	return nil
}

// Close tears down the connection outright, abandoning any open slots.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.teardownLocked()
}

func (c *Client) teardownLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call runs one serialized request/reply round trip addressed to a slot.
// Transport failures tear the connection down (for every slot) and come
// back as *TransportError; in-band operation failures (Reply.Err) come back
// as plain errors with the connection intact.
func (c *Client) call(shard int, req Request) (Reply, error) {
	req.Shard = shard
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Reply{}, &TransportError{Addr: c.addr, Op: req.Op, Err: errClosed}
	}
	if c.CallTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.CallTimeout))
	}
	if err := c.enc.Encode(req); err != nil {
		c.teardownLocked()
		return Reply{}, &TransportError{Addr: c.addr, Op: req.Op, Err: err}
	}
	var rep Reply
	if err := c.dec.Decode(&rep); err != nil {
		c.teardownLocked()
		return Reply{}, &TransportError{Addr: c.addr, Op: req.Op + " reply", Err: err}
	}
	if c.CallTimeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	if rep.Err != "" {
		return Reply{}, fmt.Errorf("rpc: worker %s: %s: %s", c.addr, req.Op, rep.Err)
	}
	return rep, nil
}

// Slot is one worker slot of a multiplexed daemon connection. After Build
// it implements core.ShardWorker, so the coordinator drives remote and
// in-process shards through the same interface; it also carries Addr so
// fleet health can name the daemon hosting each shard.
type Slot struct {
	c     *Client
	shard int

	mu       sync.Mutex
	numEdges int
	closed   bool
}

// Addr returns the address of the daemon hosting the slot.
func (s *Slot) Addr() string { return s.c.addr }

// Build ships the worker spec and waits for the shard store to be built.
func (s *Slot) Build(spec core.WorkerSpec) error {
	_, err := s.call(Request{Op: OpBuild, Spec: &spec})
	return err
}

// NumEdges returns the shard's edge count as of the last reply.
func (s *Slot) NumEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numEdges
}

// Offer runs the worker's round-1 offer mine (see core.ShardWorker).
func (s *Slot) Offer(bound *core.OfferBound) ([]core.ShardCandidate, core.Stats, error) {
	rep, err := s.call(Request{Op: OpOffer, Bound: bound})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return rep.Offers, rep.Stats, nil
}

// Counts answers the batched round-2 exact-count query.
func (s *Slot) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	rep, err := s.call(Request{Op: OpCounts, GRs: grs})
	if err != nil {
		return nil, err
	}
	return rep.Counts, nil
}

// Ingest applies a routed incremental batch slice (insertions and
// retractions) worker-side.
func (s *Slot) Ingest(batch core.Batch) (core.IngestReply, error) {
	rep, err := s.call(Request{Op: OpIngest, Edges: batch.Ins, Deletes: batch.Del})
	if err != nil {
		return core.IngestReply{}, err
	}
	return rep.Ingest, nil
}

// Checkpoint asks the daemon to serialize the slot's full shard state into
// an opaque versioned blob (see core.Checkpointer). Supervisors retain the
// blob in place of their replay-log prefix.
func (s *Slot) Checkpoint() ([]byte, error) {
	rep, err := s.call(Request{Op: OpCheckpoint})
	if err != nil {
		return nil, err
	}
	return rep.Checkpoint, nil
}

// Restore installs a checkpointed shard state into the slot, replacing any
// worker built there (see core.Restorer). The spec must describe the same
// shard the blob was taken from; the daemon rejects mismatches in-band.
func (s *Slot) Restore(spec core.WorkerSpec, blob []byte) error {
	_, err := s.call(Request{Op: OpRestore, Spec: &spec, Checkpoint: blob})
	return err
}

// Close releases the slot; the connection closes when its last slot does.
func (s *Slot) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.c.release(s.shard)
}

// call round-trips on the owning connection and mirrors the per-slot edge
// count every reply carries.
func (s *Slot) call(req Request) (Reply, error) {
	rep, err := s.c.call(s.shard, req)
	if err != nil {
		return rep, err
	}
	s.mu.Lock()
	s.numEdges = rep.NumEdges
	s.mu.Unlock()
	return rep, nil
}

// Builder returns a core.WorkerBuilder that places shard i of a deployment
// on addrs[i]: dial, handshake, ship the spec. The address list length must
// match the shard count of the layout the coordinator builds — one shard
// per daemon, no failover. NewFleet is the full-featured path: multiplexed
// placement, standby workers, and rebuild-with-replay on worker loss.
func Builder(addrs []string) core.WorkerBuilder {
	f := NewFleet(addrs, FleetOptions{})
	return func(spec core.WorkerSpec) (core.ShardWorker, error) {
		if spec.Shards != len(addrs) {
			return nil, fmt.Errorf("rpc: layout has %d shards but %d worker addresses were given", spec.Shards, len(addrs))
		}
		return f.Build(spec)
	}
}
