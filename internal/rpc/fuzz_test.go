package rpc_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"grminer/internal/core"
	"grminer/internal/rpc"
)

// gobBytes encodes v with gob, for seeding the decoder fuzzers with
// well-formed frames.
func gobBytes(t testing.TB, v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeHello hardens the handshake decoder: the first bytes a daemon
// reads come from an untrusted peer (rpc_test proves a garbage handshake
// kills the daemon loudly — this proves it never panics or hangs first).
// Valid frames additionally round-trip.
func FuzzDecodeHello(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(gobBytes(f, rpc.Hello{Magic: rpc.Magic, Version: rpc.Version}))
	f.Add(gobBytes(f, rpc.Hello{Magic: "grminer-shard", Version: 1})) // a v1 peer
	f.Add(gobBytes(f, rpc.Hello{Magic: "something-else", Version: 9000}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h rpc.Hello
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&h); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(h); err != nil {
			t.Fatalf("re-encode of decoded Hello %+v failed: %v", h, err)
		}
		var h2 rpc.Hello
		if err := gob.NewDecoder(&buf).Decode(&h2); err != nil || h2 != h {
			t.Fatalf("Hello round-trip changed %+v -> %+v (%v)", h, h2, err)
		}
	})
}

// FuzzDecodeWireOptions hardens the options decoder (WireOptions rides
// inside every WorkerSpec a coordinator ships): arbitrary bytes must decode
// or error, never panic, and decoded values must survive the wire → Options
// → wire round trip for every field the resolution keeps.
func FuzzDecodeWireOptions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0xff, 0x81, 0x00})
	f.Add(gobBytes(f, core.Options{MinSupp: 50, MinScore: 0.5, K: 20, DynamicFloor: true}.Wire()))
	f.Add(gobBytes(f, core.Options{MinSupp: 1, K: 5, PoolCap: 7, NoPostingLists: true}.Wire()))
	f.Add(gobBytes(f, core.Options{MaxL: 3, MaxW: 2, MaxR: 4, ExactGenerality: true, Parallelism: 8}.Wire()))
	f.Fuzz(func(t *testing.T, data []byte) {
		var w core.WireOptions
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return
		}
		opt, err := w.Options()
		if err != nil {
			return // unknown metric name: a legitimate decode-time rejection
		}
		w2 := opt.Wire()
		// The metric travels by name; an empty name resolves to the default
		// metric, which re-wires as its canonical name.
		if w.Metric == "" {
			w.Metric = w2.Metric
		}
		if w2 != w {
			t.Fatalf("WireOptions round-trip changed %+v -> %+v", w, w2)
		}
	})
}
