package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"grminer/internal/core"
)

// FleetOptions tunes how a Fleet dials, places, and replaces workers.
type FleetOptions struct {
	// Standbys are spare daemon addresses never used for initial placement.
	// Rebuild falls through to them when a lost shard's home daemon cannot
	// be redialed (or rejects the handshake, e.g. mid-upgrade version skew).
	Standbys []string
	// DialRetries is how many times a transient dial failure is retried per
	// address before the address is given up on (default 3). Handshake
	// rejections are deployment errors and are never retried.
	DialRetries int
	// DialBackoff is the initial pause before a dial retry; it doubles per
	// attempt, capped at BackoffCap (defaults 100ms and 2s).
	DialBackoff time.Duration
	BackoffCap  time.Duration
	// OpTimeout, when non-zero, bounds every request/reply round trip on
	// every connection the fleet opens. A timed-out call surfaces as worker
	// loss (the torn session's state is unrecoverable), triggering rebuild.
	OpTimeout time.Duration
}

// Fleet places the shards of a deployment across a set of worker daemons,
// multiplexing slots when there are fewer daemons than shards, and rebuilds
// lost shards onto replacement daemons. It implements core.RebuildingBuilder
// and core.RestoringBuilder, so coordinators constructed from a Fleet survive
// worker loss: core wraps each worker in a replay supervisor that rebuilds
// the dead shard here — from its latest checkpoint blob when one exists,
// from the WorkerSpec otherwise — and replays the coordinator-kept
// routed-batch log (or just its post-checkpoint suffix) into the
// replacement (DESIGN.md §9).
//
// Placement is deterministic: shard i of an n-daemon fleet lives on
// addrs[i mod n]. Each daemon advertises its slot capacity at handshake;
// a layout that multiplexes more shards onto a daemon than it has slots
// fails construction loudly.
type Fleet struct {
	addrs []string
	opt   FleetOptions

	// done closes when the fleet closes, aborting any backoff sleep a
	// redial loop is parked in.
	done chan struct{}

	mu     sync.Mutex
	conns  map[string]*Client
	dials  map[string]*dialCall
	closed bool
}

// dialCall is one in-flight dial to an address, shared by every concurrent
// acquirer (the daemon accepts one session at a time, so a second parallel
// dial to the same address would sit unanswered in the listen backlog until
// its handshake times out).
type dialCall struct {
	done chan struct{}
	err  error
}

// NewFleet returns a fleet over the given primary daemon addresses.
// Connections are dialed lazily, shared across the slots placed on each
// daemon, and closed when their last slot closes.
func NewFleet(addrs []string, opt FleetOptions) *Fleet {
	if opt.DialRetries <= 0 {
		opt.DialRetries = 3
	}
	if opt.DialBackoff <= 0 {
		opt.DialBackoff = 100 * time.Millisecond
	}
	if opt.BackoffCap <= 0 {
		opt.BackoffCap = 2 * time.Second
	}
	return &Fleet{
		addrs: append([]string(nil), addrs...),
		opt:   opt,
		done:  make(chan struct{}),
		conns: make(map[string]*Client),
		dials: make(map[string]*dialCall),
	}
}

// Build places one shard on its home daemon (addrs[Index mod n]) and ships
// the spec. It implements core.FleetBuilder.
func (f *Fleet) Build(spec core.WorkerSpec) (core.ShardWorker, error) {
	if len(f.addrs) == 0 {
		return nil, errors.New("rpc: fleet has no worker addresses")
	}
	if spec.Index < 0 || spec.Index >= spec.Shards {
		return nil, errors.New("rpc: worker spec index out of range")
	}
	return f.buildOn(f.addrs[spec.Index%len(f.addrs)], spec)
}

// Rebuild builds a replacement worker for a lost shard. Candidates are
// tried in order: the shard's home address first (the daemon may simply
// have been restarted in place), then each standby, then any live daemon
// with a spare slot. The caller (core's replay supervisor) re-seeds and
// replays the routed-batch log into the returned worker; Rebuild itself
// only reconstructs the shard store from the spec.
func (f *Fleet) Rebuild(spec core.WorkerSpec) (core.ShardWorker, error) {
	if len(f.addrs) == 0 {
		return nil, errors.New("rpc: fleet has no worker addresses")
	}
	home := f.addrs[spec.Index%len(f.addrs)]
	var errs []error
	for _, addr := range f.rebuildCandidates(home) {
		w, err := f.buildOn(addr, spec)
		if err == nil {
			return w, nil
		}
		errs = append(errs, err)
	}
	return nil, fmt.Errorf("rpc: no replacement worker for shard %d/%d: %w",
		spec.Index, spec.Shards, errors.Join(errs...))
}

// RebuildRestore builds a replacement worker for a lost shard from a
// checkpoint blob instead of from scratch: the spec and blob ship together
// and the daemon installs the deserialized state into the slot. Candidate
// ordering matches Rebuild. It implements core.RestoringBuilder, so
// supervisors that hold a checkpoint replay only the post-checkpoint log
// suffix into the worker returned here.
func (f *Fleet) RebuildRestore(spec core.WorkerSpec, blob []byte) (core.ShardWorker, error) {
	if len(f.addrs) == 0 {
		return nil, errors.New("rpc: fleet has no worker addresses")
	}
	home := f.addrs[spec.Index%len(f.addrs)]
	var errs []error
	for _, addr := range f.rebuildCandidates(home) {
		w, err := f.restoreOn(addr, spec, blob)
		if err == nil {
			return w, nil
		}
		errs = append(errs, err)
	}
	return nil, fmt.Errorf("rpc: no restorable replacement worker for shard %d/%d: %w",
		spec.Index, spec.Shards, errors.Join(errs...))
}

// restoreOn acquires a connection to addr, allocates a slot, and installs
// the checkpointed shard state in it.
func (f *Fleet) restoreOn(addr string, spec core.WorkerSpec, blob []byte) (core.ShardWorker, error) {
	c, err := f.acquire(addr)
	if err != nil {
		return nil, err
	}
	s, err := c.Slot()
	if err != nil {
		return nil, fmt.Errorf("rpc: shard %d/%d: %w", spec.Index, spec.Shards, err)
	}
	if err := s.Restore(spec, blob); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// rebuildCandidates orders the addresses a replacement may come from:
// home, standbys, then live multiplexed peers with spare capacity.
func (f *Fleet) rebuildCandidates(home string) []string {
	cands := make([]string, 0, 1+len(f.opt.Standbys))
	seen := map[string]bool{}
	add := func(addr string) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			cands = append(cands, addr)
		}
	}
	add(home)
	for _, a := range f.opt.Standbys {
		add(a)
	}
	f.mu.Lock()
	for _, addr := range f.addrs {
		if c := f.conns[addr]; c != nil && c.alive() && c.freeSlots() > 0 {
			add(addr)
		}
	}
	f.mu.Unlock()
	return cands
}

// buildOn acquires a connection to addr, allocates a slot, and builds the
// shard in it.
func (f *Fleet) buildOn(addr string, spec core.WorkerSpec) (core.ShardWorker, error) {
	c, err := f.acquire(addr)
	if err != nil {
		return nil, err
	}
	s, err := c.Slot()
	if err != nil {
		return nil, fmt.Errorf("rpc: shard %d/%d: %w", spec.Index, spec.Shards, err)
	}
	if err := s.Build(spec); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// acquire returns a live cached connection to addr, joins an in-flight dial
// to it, or dials a fresh one itself, retrying transient failures with
// capped exponential backoff. Dials are single-flighted per address:
// concurrent rebuilds of two shards lost with the same daemon share one
// connection attempt instead of racing the daemon's one-session-at-a-time
// accept loop.
func (f *Fleet) acquire(addr string) (*Client, error) {
	f.mu.Lock()
	for {
		if c := f.conns[addr]; c != nil {
			if c.alive() {
				f.mu.Unlock()
				return c, nil
			}
			delete(f.conns, addr)
		}
		call := f.dials[addr]
		if call == nil {
			break
		}
		f.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		// The winner cached its connection; loop to pick it up (or find it
		// already dead and dial ourselves).
		f.mu.Lock()
	}
	call := &dialCall{done: make(chan struct{})}
	f.dials[addr] = call
	f.mu.Unlock()

	c, err := f.dial(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.dials, addr)
	if err == nil {
		f.conns[addr] = c
	}
	call.err = err
	close(call.done)
	return c, err
}

// dial performs the retry/backoff loop around Dial. Only transport-class
// failures (*TransportError) are retried; a handshake rejection is a
// deployment error retrying cannot fix. Each pause is jittered — uniform in
// [backoff/2, backoff] — so the redial loops of many shards lost with one
// daemon spread out instead of hammering its restarting listener in
// lockstep, and the sleep aborts immediately when the fleet closes.
func (f *Fleet) dial(addr string) (*Client, error) {
	backoff := f.opt.DialBackoff
	var lastErr error
	for attempt := 0; attempt < f.opt.DialRetries; attempt++ {
		if attempt > 0 {
			pause := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			t := time.NewTimer(pause)
			select {
			case <-t.C:
			case <-f.done:
				t.Stop()
				return nil, fmt.Errorf("rpc: fleet closed while redialing %s (last error: %w)", addr, lastErr)
			}
			backoff *= 2
			if backoff > f.opt.BackoffCap {
				backoff = f.opt.BackoffCap
			}
		}
		c, err := Dial(addr)
		if err == nil {
			c.CallTimeout = f.opt.OpTimeout
			return c, nil
		}
		lastErr = err
		var te *TransportError
		if !errors.As(err, &te) {
			break
		}
	}
	return nil, lastErr
}

// Close tears down every connection the fleet holds open and aborts any
// redial backoff in flight. Workers built from the fleet become unusable;
// normally coordinators close their workers individually and Close is only
// needed to reclaim stray connections.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		close(f.done)
	}
	var first error
	for addr, c := range f.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(f.conns, addr)
	}
	return first
}
