package rpc

import (
	"path/filepath"
	"testing"

	"grminer/internal/lint/wire"
)

// wireDirs lists every package directory (relative to this one) declaring
// grlint:wire structs, with its import path for schema keys.
var wireDirs = []struct{ dir, pkg string }{
	{".", "grminer/internal/rpc"},
	{"../core", "grminer/internal/core"},
	{"../gr", "grminer/internal/gr"},
	{"../metrics", "grminer/internal/metrics"},
	{"../graph", "grminer/internal/graph"},
}

// TestWireSchemaGolden pins the gob wire schema: every annotated struct's
// field list and version must match wire_schema.json exactly. It fails with
// a per-struct diff when a wire struct drifts without a version bump (and a
// Version bump in protocol.go); regenerate deliberately with
//
//	go run ./cmd/grlint -update-wire ./...
func TestWireSchemaGolden(t *testing.T) {
	current := make(wire.Schema)
	for _, d := range wireDirs {
		decls, err := wire.FromDir(d.dir, d.pkg)
		if err != nil {
			t.Fatalf("collecting %s: %v", d.dir, err)
		}
		for _, decl := range decls {
			if decl.BadMark != "" {
				t.Fatalf("%s: malformed grlint:wire marker %q", d.dir, decl.BadMark)
			}
		}
		for k, s := range wire.ToSchema(decls) {
			current[k] = s
		}
	}

	golden, err := wire.Load(filepath.Base(wire.SnapshotName))
	if err != nil {
		t.Fatalf("loading golden snapshot: %v", err)
	}
	if diff := wire.Diff(golden, current); diff != "" {
		t.Errorf("wire schema drifted from %s:\n%s\nIf the change is intentional, bump the struct's grlint:wire version (and rpc.Version for handshake-breaking changes), then run `go run ./cmd/grlint -update-wire ./...`.", wire.SnapshotName, diff)
	}

	// The protocol's load-bearing structs must never silently drop out of
	// the snapshot (e.g. by an annotation being deleted).
	for _, key := range []string{
		"grminer/internal/rpc.Hello",
		"grminer/internal/rpc.Request",
		"grminer/internal/rpc.Reply",
		"grminer/internal/core.WireOptions",
		"grminer/internal/core.WorkerSpec",
		"grminer/internal/core.IngestReply",
	} {
		if _, ok := current[key]; !ok {
			t.Errorf("wire struct %s lost its grlint:wire annotation", key)
		}
	}
}
