package rpc_test

import (
	"math/rand"
	"testing"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/rpc"
)

// copyGraph clones g (node table + live edges, preserving edge ids and
// tombstones) so the oracle's twin stays independent of the engine's graph.
func copyGraph(g *graph.Graph) *graph.Graph {
	out := graph.MustNew(g.Schema(), g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		if err := out.SetNodeValues(v, append([]graph.Value(nil), g.NodeValues(v)...)...); err != nil {
			panic(err)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if _, err := out.AddEdge(g.Src(e), g.Dst(e), g.EdgeValues(e)...); err != nil {
			panic(err)
		}
		if !g.EdgeAlive(e) {
			if err := out.RemoveEdge(e); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// TestRemoteDynamicOracle streams randomized mixed insert/delete batches
// through the remote sharded incremental engine: retractions route to the
// owning shardd daemon (protocol v2's Deletes slice), worker pools
// decrement — demotions below the shard threshold included — and after
// every batch the maintained top-k must equal a fresh single-store mine of
// the surviving graph.
func TestRemoteDynamicOracle(t *testing.T) {
	mets := []metrics.Metric{metrics.NhpMetric, metrics.GainMetric, metrics.LiftMetric}
	if testing.Short() {
		mets = mets[:1]
	}
	for mi, m := range mets {
		for _, dyn := range []bool{false, true} {
			seed := int64(300 + mi)
			r := rand.New(rand.NewSource(seed))
			g := randomGraph(seed, true, mi%2 == 0)
			sim := copyGraph(g)
			live := make([]int, 0, sim.NumEdges())
			for e := 0; e < sim.NumEdges(); e++ {
				if sim.EdgeAlive(e) {
					live = append(live, e)
				}
			}
			workers := 2 + (mi+boolInt(dyn))%3
			addrs := startWorkers(t, workers)
			opt := core.Options{
				MinSupp: 2, MinScore: oracleThresholds[m.Name], K: 8,
				DynamicFloor: dyn, Metric: m,
			}
			inc, err := core.NewIncrementalShardedFrom(g, opt,
				core.ShardOptions{Shards: workers}, rpc.Builder(addrs))
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 5; batch++ {
				var b core.Batch
				for i := r.Intn(4); i > 0 && len(live) > 0; i-- {
					j := r.Intn(len(live))
					e := live[j]
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					b.Del = append(b.Del, core.EdgeDelete{
						Src: sim.Src(e), Dst: sim.Dst(e),
						Vals: append([]graph.Value(nil), sim.EdgeValues(e)...),
					})
					if err := sim.RemoveEdge(e); err != nil {
						t.Fatal(err)
					}
				}
				for i := 1 + r.Intn(5); i > 0; i-- {
					ins := core.EdgeInsert{
						Src: r.Intn(sim.NumNodes()), Dst: r.Intn(sim.NumNodes()),
						Vals: []graph.Value{graph.Value(r.Intn(3))},
					}
					b.Ins = append(b.Ins, ins)
					e, err := sim.AddEdge(ins.Src, ins.Dst, ins.Vals...)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, e)
				}
				res, bs, err := inc.ApplyBatch(b)
				if err != nil {
					t.Fatalf("%s: batch %d: %v", m.Name, batch, err)
				}
				if bs.Deleted != len(b.Del) {
					t.Fatalf("%s: reported %d deletions for %d retractions", m.Name, bs.Deleted, len(b.Del))
				}
				ref, err := core.Mine(sim, inc.Options())
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, "remote-dynamic-"+m.Name, res.TopK, ref.TopK)
			}
			inc.Close()
		}
	}
}

// TestRemoteUnmatchedRetractionRejected: a retraction matching no live edge
// must reject the whole batch before any worker or coordinator state
// changes, exactly like the in-process engines.
func TestRemoteUnmatchedRetractionRejected(t *testing.T) {
	g := randomGraph(8, true, true)
	addrs := startWorkers(t, 2)
	inc, err := core.NewIncrementalShardedFrom(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 2}, rpc.Builder(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	before := g.NumLiveEdges()
	prev := inc.Result().TopK
	bad := core.Batch{
		Ins: []core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}},
		Del: []core.EdgeDelete{{Src: 0, Dst: 0, Vals: []graph.Value{3}}},
	}
	if _, _, err := inc.ApplyBatch(bad); err == nil {
		t.Fatal("unmatched retraction accepted")
	}
	if g.NumLiveEdges() != before {
		t.Fatalf("rejected batch changed the graph: %d -> %d live edges", before, g.NumLiveEdges())
	}
	assertSameResults(t, "after-reject", inc.Result().TopK, prev)

	// The engine stays usable: a valid mixed batch afterwards must apply.
	good := core.Batch{
		Ins: []core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}},
		Del: []core.EdgeDelete{{Src: g.Src(0), Dst: g.Dst(0), Vals: append([]graph.Value(nil), g.EdgeValues(0)...)}},
	}
	res, _, err := inc.ApplyBatch(good)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "after-good", res.TopK, ref.TopK)
}
