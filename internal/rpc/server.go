package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"grminer/internal/core"
)

// handshakeTimeout bounds how long the server waits for (and spends
// answering) a client's Hello, so a silent or garbage peer cannot wedge the
// accept loop.
const handshakeTimeout = 10 * time.Second

// Serve accepts coordinator sessions on l, one at a time, until the
// listener closes. Each session handshakes, builds one shard worker from
// the coordinator's spec, and serves offer/counts/ingest requests until the
// coordinator disconnects; the next session starts fresh.
//
// A malformed handshake or a version-mismatched peer is a deployment error,
// not a per-request failure: Serve replies with the reason (best effort),
// closes the listener, and returns a non-nil error so shardd can exit
// non-zero — the same atomic-rejection stance the -follow stream takes on
// malformed edges. Post-handshake operation errors are reported to the
// coordinator in-band and the session continues.
//
// logf, if non-nil, receives one line per session event.
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	defer l.Close()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		if err := serveSession(conn, logf); err != nil {
			return err
		}
	}
}

// serveSession runs one coordinator session. It returns a non-nil error
// only for protocol violations that must terminate the daemon.
func serveSession(conn net.Conn, logf func(string, ...any)) error {
	defer conn.Close()
	peer := conn.RemoteAddr()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("rpc: %v: malformed handshake: %w", peer, err)
	}
	if hello.Magic != Magic || hello.Version != Version {
		reason := fmt.Sprintf("protocol mismatch: peer %q v%d, daemon %q v%d",
			hello.Magic, hello.Version, Magic, Version)
		_ = enc.Encode(HelloReply{Err: reason}) // best effort before dying
		return fmt.Errorf("rpc: %v: %s", peer, reason)
	}
	if err := enc.Encode(HelloReply{OK: true}); err != nil {
		return fmt.Errorf("rpc: %v: handshake reply: %w", peer, err)
	}
	conn.SetDeadline(time.Time{})
	logf("session from %v", peer)

	var worker *core.WorkerState
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				logf("session from %v ended", peer)
				return nil
			}
			// Mid-session garbage after a valid handshake: the peer spoke
			// our protocol and then broke it — treat like a bad handshake.
			return fmt.Errorf("rpc: %v: malformed request: %w", peer, err)
		}
		var rep Reply
		switch req.Op {
		case OpBuild:
			if req.Spec == nil {
				rep.Err = "build request without a worker spec"
				break
			}
			w, err := core.NewWorkerState(*req.Spec)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			worker = w
			rep.NumEdges = worker.NumEdges()
			logf("built shard %d/%d: %d edges", req.Spec.Index+1, req.Spec.Shards, rep.NumEdges)
		case OpOffer:
			if worker == nil {
				rep.Err = "offer before build"
				break
			}
			offers, stats, err := worker.Offer(req.Bound)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Offers, rep.Stats, rep.NumEdges = offers, stats, worker.NumEdges()
		case OpCounts:
			if worker == nil {
				rep.Err = "counts before build"
				break
			}
			counts, err := worker.Counts(req.GRs)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Counts, rep.NumEdges = counts, worker.NumEdges()
		case OpIngest:
			if worker == nil {
				rep.Err = "ingest before build"
				break
			}
			ing, err := worker.Ingest(core.Batch{Ins: req.Edges, Del: req.Deletes})
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Ingest, rep.NumEdges = ing, ing.NumEdges
		default:
			rep.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(rep); err != nil {
			logf("session from %v: reply failed: %v", peer, err)
			return nil // peer gone mid-reply; not a protocol violation
		}
	}
}
