package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"

	"grminer/internal/core"
)

// handshakeTimeout bounds how long the server waits for (and spends
// answering) a client's Hello, so a silent or garbage peer cannot wedge the
// accept loop.
const handshakeTimeout = 10 * time.Second

// Serve accepts coordinator sessions on l with a single worker slot per
// session; it is ServeShards with capacity 1 (one shard per daemon, the
// pre-multiplexing deployment shape).
func Serve(l net.Listener, logf func(format string, args ...any)) error {
	return ServeShards(l, 1, logf)
}

// ServeShards accepts coordinator sessions on l, one at a time, until the
// listener closes. Each session handshakes (advertising capacity worker
// slots), builds up to capacity independent shard workers from the
// coordinator's specs, and serves shard-addressed offer/counts/ingest
// requests until the coordinator disconnects; the next session starts
// fresh with all slots empty.
//
// Closing the listener while a session is in flight drains gracefully: the
// session runs to completion (the accept loop is single-threaded) and
// ServeShards returns nil once the coordinator disconnects — this is how
// shardd implements SIGTERM draining.
//
// A malformed handshake or a version-mismatched peer is a deployment error,
// not a per-request failure: ServeShards replies with the reason (best
// effort), closes the listener, and returns a non-nil error so shardd can
// exit non-zero — the same atomic-rejection stance the -follow stream takes
// on malformed edges. A peer that merely *vanishes* — the connection drops,
// resets, or times out before, during, or after the handshake — is a
// transport event, not a protocol violation: the coordinator may have
// crashed (the exact failure DESIGN.md §9 expects fleets to absorb), and a
// worker daemon that died with it would turn one loss into many. Those
// sessions are logged and the accept loop continues. Post-handshake
// operation errors (including a request addressing a slot beyond capacity)
// are reported to the coordinator in-band and the session continues.
//
// logf, if non-nil, receives one line per session event.
func ServeShards(l net.Listener, capacity int, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if capacity < 1 {
		capacity = 1
	}
	defer l.Close()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		if err := serveSession(conn, capacity, logf); err != nil {
			return err
		}
	}
}

// serveSession runs one coordinator session over capacity worker slots. It
// returns a non-nil error only for protocol violations that must terminate
// the daemon.
func serveSession(conn net.Conn, capacity int, logf func(string, ...any)) error {
	defer conn.Close()
	peer := conn.RemoteAddr()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		if connDropped(err) {
			logf("handshake from %v aborted: %v", peer, err)
			return nil
		}
		return fmt.Errorf("rpc: %v: malformed handshake: %w", peer, err)
	}
	if hello.Magic != Magic || hello.Version != Version {
		reason := fmt.Sprintf("protocol mismatch: peer %q v%d, daemon %q v%d",
			hello.Magic, hello.Version, Magic, Version)
		_ = enc.Encode(HelloReply{Err: reason}) // best effort before dying
		return fmt.Errorf("rpc: %v: %s", peer, reason)
	}
	if err := enc.Encode(HelloReply{OK: true, Shards: capacity}); err != nil {
		// The peer dialed and died before reading the reply — a crashed
		// coordinator, not a protocol violation.
		logf("handshake reply to %v failed: %v", peer, err)
		return nil
	}
	conn.SetDeadline(time.Time{})
	logf("session from %v (%d slots)", peer, capacity)

	workers := make([]*core.WorkerState, capacity)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if connDropped(err) {
				logf("session from %v ended", peer)
				return nil
			}
			// Mid-session garbage after a valid handshake: the peer spoke
			// our protocol and then broke it — treat like a bad handshake.
			return fmt.Errorf("rpc: %v: malformed request: %w", peer, err)
		}
		var rep Reply
		if req.Shard < 0 || req.Shard >= capacity {
			rep.Err = fmt.Sprintf("shard slot %d out of range (daemon capacity %d)", req.Shard, capacity)
			if err := enc.Encode(rep); err != nil {
				logf("session from %v: reply failed: %v", peer, err)
				return nil
			}
			continue
		}
		worker := workers[req.Shard]
		switch req.Op {
		case OpBuild:
			if req.Spec == nil {
				rep.Err = "build request without a worker spec"
				break
			}
			w, err := core.NewWorkerState(*req.Spec)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			workers[req.Shard] = w
			rep.NumEdges = w.NumEdges()
			logf("built shard %d/%d in slot %d: %d edges", req.Spec.Index+1, req.Spec.Shards, req.Shard, rep.NumEdges)
		case OpOffer:
			if worker == nil {
				rep.Err = "offer before build"
				break
			}
			offers, stats, err := worker.Offer(req.Bound)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Offers, rep.Stats, rep.NumEdges = offers, stats, worker.NumEdges()
		case OpCounts:
			if worker == nil {
				rep.Err = "counts before build"
				break
			}
			counts, err := worker.Counts(req.GRs)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Counts, rep.NumEdges = counts, worker.NumEdges()
		case OpIngest:
			if worker == nil {
				rep.Err = "ingest before build"
				break
			}
			ing, err := worker.Ingest(core.Batch{Ins: req.Edges, Del: req.Deletes})
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Ingest, rep.NumEdges = ing, ing.NumEdges
		case OpCheckpoint:
			if worker == nil {
				rep.Err = "checkpoint before build"
				break
			}
			blob, err := worker.Checkpoint()
			if err != nil {
				rep.Err = err.Error()
				break
			}
			rep.Checkpoint, rep.NumEdges = blob, worker.NumEdges()
			logf("checkpointed slot %d: %d bytes", req.Shard, len(blob))
		case OpRestore:
			if req.Spec == nil || req.Checkpoint == nil {
				rep.Err = "restore request without a worker spec and checkpoint blob"
				break
			}
			w, err := core.NewWorkerStateFromCheckpoint(*req.Spec, req.Checkpoint)
			if err != nil {
				rep.Err = err.Error()
				break
			}
			workers[req.Shard] = w
			rep.NumEdges = w.NumEdges()
			logf("restored shard %d/%d into slot %d from a %d-byte checkpoint: %d edges",
				req.Spec.Index+1, req.Spec.Shards, req.Shard, len(req.Checkpoint), rep.NumEdges)
		default:
			rep.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(rep); err != nil {
			logf("session from %v: reply failed: %v", peer, err)
			return nil // peer gone mid-reply; not a protocol violation
		}
	}
}

// connDropped reports whether err is a connection-level failure — the peer
// closed, vanished, was reset, or timed out — as opposed to a protocol
// violation (decodable garbage, a version mismatch). Dropped connections
// end the session; violations terminate the daemon.
func connDropped(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
