package rpc_test

import (
	"encoding/gob"
	"math/rand"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/rpc"
)

// startWorkers returns n worker addresses. When GRMINER_TEST_WORKERS lists
// at least n externally launched shardd daemons (the CI distributed-gate
// does this), those are used; otherwise in-process servers are spun up on
// loopback ports — same protocol, same code path, no subprocesses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	if env := os.Getenv("GRMINER_TEST_WORKERS"); env != "" {
		var addrs []string
		for _, a := range strings.Split(env, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) >= n {
			return addrs[:n]
		}
		t.Fatalf("GRMINER_TEST_WORKERS lists %d addresses, test needs %d", len(addrs), n)
	}
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		go rpc.Serve(l, nil) //nolint:errcheck // closed by cleanup
		t.Cleanup(func() { l.Close() })
	}
	return addrs
}

// randomGraph mirrors the core oracle fixture: small attributed graphs with
// null values and mixed homophily designations.
func randomGraph(seed int64, homA, homB bool) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: homA},
			{Name: "B", Domain: 2, Homophily: homB},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		panic(err)
	}
	n := 6 + r.Intn(10)
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		if err := g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(3))); err != nil {
			panic(err)
		}
	}
	m := 10 + r.Intn(40)
	for e := 0; e < m; e++ {
		if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3))); err != nil {
			panic(err)
		}
	}
	return g
}

var oracleThresholds = map[string]float64{
	"nhp": 0.3, "conf": 0.3, "laplace": 0.3, "gain": 0,
	"piatetsky-shapiro": 0, "conviction": 1.0, "lift": 1.05,
}

func assertSameResults(t *testing.T, label string, got, want []gr.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].GR.Key() != want[i].GR.Key() {
			t.Fatalf("%s: rank %d: got %s want %s", label, i, got[i].GR.Key(), want[i].GR.Key())
		}
		if got[i].Supp != want[i].Supp || got[i].Score != want[i].Score || got[i].Conf != want[i].Conf {
			t.Fatalf("%s: rank %d (%s): got supp=%d score=%v conf=%v, want supp=%d score=%v conf=%v",
				label, i, got[i].GR.Key(),
				got[i].Supp, got[i].Score, got[i].Conf,
				want[i].Supp, want[i].Score, want[i].Conf)
		}
	}
}

// TestRemoteShardedOracle is the distributed half of the equivalence gate:
// mining over 2-4 shardd workers behind the wire protocol must return
// results identical to a single-store mine, for every metric, both floor
// modes, and both routing strategies. Worker counts and strategies cycle
// across the metric/floor grid so the full range is exercised without
// mining every combination.
func TestRemoteShardedOracle(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	strategies := []graph.ShardStrategy{graph.ShardBySource, graph.ShardByRHS}
	for _, seed := range seeds {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		cycle := 0
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				cycle++
				workers := 2 + cycle%3 // 2..4
				strategy := strategies[cycle%2]
				opt := core.Options{
					MinSupp: 2, MinScore: oracleThresholds[m.Name], K: 10,
					DynamicFloor: dyn, Metric: m,
				}
				addrs := startWorkers(t, workers)
				sc, err := core.NewShardCoordinatorFrom(g, opt,
					core.ShardOptions{Shards: workers, Strategy: strategy}, rpc.Builder(addrs))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sc.Mine()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Mine(g, sc.Options())
				sc.Close()
				if err != nil {
					t.Fatal(err)
				}
				label := m.Name
				if dyn {
					label += "-dynamic"
				}
				t.Logf("%s workers=%d by=%s offers=%d round2=%d one-round=%d", label, workers, strategy,
					res.Stats.ShardOffers, res.Stats.ExactCountRequests, res.Stats.OneRoundGapFill)
				assertSameResults(t, label, res.TopK, ref.TopK)
				if res.Stats.ExactCountRequests > res.Stats.OneRoundGapFill {
					t.Errorf("%s: round-2 volume %d exceeds the one-round bound's %d",
						label, res.Stats.ExactCountRequests, res.Stats.OneRoundGapFill)
				}
			}
		}
	}
}

// TestRemoteIncrementalOracle streams random batches through the remote
// sharded incremental engine: after every batch, the maintained top-k must
// equal a fresh single-store mine of the grown graph — worker-side pool
// maintenance notwithstanding.
func TestRemoteIncrementalOracle(t *testing.T) {
	mets := []metrics.Metric{metrics.NhpMetric, metrics.LiftMetric}
	if testing.Short() {
		mets = mets[:1]
	}
	for mi, m := range mets {
		for _, dyn := range []bool{false, true} {
			seed := int64(100 + mi)
			r := rand.New(rand.NewSource(seed))
			g := randomGraph(seed, true, mi%2 == 0)
			workers := 2 + (mi+boolInt(dyn))%3
			addrs := startWorkers(t, workers)
			opt := core.Options{
				MinSupp: 2, MinScore: oracleThresholds[m.Name], K: 8,
				DynamicFloor: dyn, Metric: m,
			}
			inc, err := core.NewIncrementalShardedFrom(g, opt,
				core.ShardOptions{Shards: workers}, rpc.Builder(addrs))
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 4; batch++ {
				edges := make([]core.EdgeInsert, 1+r.Intn(6))
				for i := range edges {
					edges[i] = core.EdgeInsert{
						Src:  r.Intn(g.NumNodes()),
						Dst:  r.Intn(g.NumNodes()),
						Vals: []graph.Value{graph.Value(r.Intn(3))},
					}
				}
				res, _, err := inc.Apply(edges)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Mine(g, inc.Options())
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, m.Name, res.TopK, ref.TopK)
			}
			inc.Close()
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestRemoteBatchRejectedAtomically: a batch with one malformed edge must
// be rejected before any worker state changes, exactly like the in-process
// engines.
func TestRemoteBatchRejectedAtomically(t *testing.T) {
	g := randomGraph(7, true, true)
	addrs := startWorkers(t, 2)
	inc, err := core.NewIncrementalShardedFrom(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 2}, rpc.Builder(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	before := g.NumEdges()
	prev := inc.Result().TopK
	bad := []core.EdgeInsert{
		{Src: 0, Dst: 1, Vals: []graph.Value{1}},
		{Src: 0, Dst: g.NumNodes() + 5, Vals: []graph.Value{1}}, // out of range
	}
	if _, _, err := inc.Apply(bad); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if g.NumEdges() != before {
		t.Fatalf("rejected batch grew the graph: %d -> %d edges", before, g.NumEdges())
	}
	res, err := core.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "after-reject", inc.Result().TopK, res.TopK)
	assertSameResults(t, "after-reject-prev", inc.Result().TopK, prev)
}

// serveOnce runs one Serve loop on a fresh listener and reports its exit
// error — the daemon-fatal path the handshake tests assert.
func serveOnce(t *testing.T) (addr string, errCh chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh = make(chan error, 1)
	go func() { errCh <- rpc.Serve(l, nil) }()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String(), errCh
}

func waitErr(t *testing.T, ch chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit")
		return nil
	}
}

// A version-mismatched peer must get a descriptive rejection AND kill the
// daemon (non-zero exit for shardd) — stale workers must not linger.
func TestHandshakeVersionMismatch(t *testing.T) {
	addr, errCh := serveOnce(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(rpc.Hello{Magic: rpc.Magic, Version: rpc.Version + 7}); err != nil {
		t.Fatal(err)
	}
	var rep rpc.HelloReply
	if err := gob.NewDecoder(conn).Decode(&rep); err != nil {
		t.Fatalf("no handshake reply: %v", err)
	}
	if rep.OK || !strings.Contains(rep.Err, "mismatch") {
		t.Fatalf("mismatched version not rejected: %+v", rep)
	}
	if err := waitErr(t, errCh); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("server survived a version mismatch: %v", err)
	}
}

// A peer that dials and vanishes without completing the handshake — a
// coordinator crashing mid-dial, a port scanner — must NOT kill the daemon:
// the session ends and the next coordinator is served normally. Only
// protocol violations (decodable garbage, version skew) are daemon-fatal.
func TestHandshakeAbortSurvived(t *testing.T) {
	addr, errCh := serveOnce(t)

	// Connect and slam the door without sending a byte (clean EOF), then
	// again with a truncated gob frame (unexpected EOF).
	for _, partial := range [][]byte{nil, {0x01}} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial) > 0 {
			if _, err := conn.Write(partial); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
	}

	// The daemon must still be alive and complete a real handshake.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(rpc.Hello{Magic: rpc.Magic, Version: rpc.Version}); err != nil {
		t.Fatal(err)
	}
	var rep rpc.HelloReply
	if err := gob.NewDecoder(conn).Decode(&rep); err != nil {
		t.Fatalf("daemon died after an aborted handshake: %v", err)
	}
	if !rep.OK {
		t.Fatalf("healthy handshake rejected after aborted peers: %+v", rep)
	}

	select {
	case err := <-errCh:
		t.Fatalf("server exited on a dropped connection: %v", err)
	default:
	}
}

// A present foreign client — one that stays connected and speaks garbage
// instead of a handshake — must kill the daemon. (A peer that *disconnects*
// mid-garbage is indistinguishable from a crashed coordinator and only ends
// the session; TestHandshakeAbortSurvived covers that side of the line.)
func TestHandshakeMalformed(t *testing.T) {
	addr, errCh := serveOnce(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A complete frame of non-gob bytes: the first byte is read as the
	// message length, so pad well past it to let the decoder fail on
	// content rather than block waiting for more.
	if _, err := conn.Write([]byte(strings.Repeat("GET / HTTP/1.1\r\n\r\n", 20))); err != nil {
		t.Fatal(err)
	}
	if err := waitErr(t, errCh); err == nil || !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("server survived a malformed handshake: %v", err)
	}
}

// The coordinator side must fail fast and descriptively on a peer that
// rejects the handshake, instead of hanging.
func TestDialSurfacesMismatch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello rpc.Hello
		gob.NewDecoder(conn).Decode(&hello)                                         //nolint:errcheck
		gob.NewEncoder(conn).Encode(rpc.HelloReply{Err: "protocol mismatch: nope"}) //nolint:errcheck
	}()
	start := time.Now()
	_, err = rpc.Dial(l.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatch not surfaced: %v", err)
	}
	if time.Since(start) > rpc.DialTimeout {
		t.Fatalf("Dial took %v — hung past its budget", time.Since(start))
	}
}

// A silent peer (accepts, never answers) must not hang Dial.
func TestDialDoesNotHangOnSilentPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the full handshake timeout")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(2 * rpc.DialTimeout) // never reply
	}()
	start := time.Now()
	if _, err := rpc.Dial(l.Addr().String()); err == nil {
		t.Fatal("Dial succeeded against a silent peer")
	}
	if d := time.Since(start); d > rpc.DialTimeout+5*time.Second {
		t.Fatalf("Dial hung %v on a silent peer", d)
	}
}

// A mismatched worker-list length must be rejected during construction.
func TestBuilderShardCountMismatch(t *testing.T) {
	g := randomGraph(3, true, true)
	addrs := startWorkers(t, 1)
	_, err := core.NewShardCoordinatorFrom(g, core.Options{MinSupp: 2, K: 5},
		core.ShardOptions{Shards: 3}, rpc.Builder(addrs))
	if err == nil || !strings.Contains(err.Error(), "addresses") {
		t.Fatalf("3 shards over 1 address accepted: %v", err)
	}
}
