package rpc_test

import (
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/rpc"
)

// TestRemoteCheckpointBoundsReplay is the wire-v4 tentpole gate: a daemon
// multiplexing two of four shards dies AFTER the checkpoint interval has
// elapsed, so the supervisor must restore both dead shards from their
// checkpoint blobs (OpRestore on the standby) and replay only the
// post-checkpoint log suffix — at most interval batches — while every
// maintained top-k stays identical to a fresh single-store mine.
func TestRemoteCheckpointBoundsReplay(t *testing.T) {
	seed := int64(33)
	r := rand.New(rand.NewSource(seed))
	g := randomGraph(seed, true, true)
	victim := startKillable(t, 2)
	survivor := startKillable(t, 2)
	standby := startKillable(t, 2)

	fleet := fastFleet([]string{victim.addr, survivor.addr}, []string{standby.addr})
	defer fleet.Close()
	const interval = 2
	opt := core.Options{MinSupp: 2, MinScore: 0.3, K: 8}
	inc, err := core.NewIncrementalShardedFrom(g, opt,
		core.ShardOptions{Shards: 4, CheckpointInterval: interval}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()

	const killAfter = 5 // well past the interval: every shard has checkpointed
	for batch := 0; batch < 8; batch++ {
		if batch == killAfter {
			victim.Kill()
		}
		edges := make([]core.EdgeInsert, 3+r.Intn(5))
		for i := range edges {
			edges[i] = core.EdgeInsert{
				Src:  r.Intn(g.NumNodes()),
				Dst:  r.Intn(g.NumNodes()),
				Vals: []graph.Value{graph.Value(r.Intn(3))},
			}
		}
		res, _, err := inc.Apply(edges)
		if err != nil {
			t.Fatalf("batch %d (kill after %d): %v", batch, killAfter, err)
		}
		ref, err := core.Mine(g, inc.Options())
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "checkpoint-failover", res.TopK, ref.TopK)
	}

	var replaced, checkpointed int
	for _, h := range inc.FleetHealth() {
		if !h.Live {
			t.Errorf("shard %d not live after recovery: %+v", h.Shard, h)
		}
		if h.CheckpointEpoch > 0 {
			checkpointed++
		}
		if h.LogSuffixLen >= 2*interval {
			t.Errorf("shard %d log suffix %d was never truncated below 2×interval (%d)",
				h.Shard, h.LogSuffixLen, interval)
		}
		if h.Replacements > 0 {
			replaced++
			if h.Addr != standby.addr {
				t.Errorf("shard %d replaced onto %s, want the standby %s", h.Shard, h.Addr, standby.addr)
			}
			if h.ReplayedBatches > interval*h.Replacements {
				t.Errorf("shard %d replayed %d batches over %d replacements — the checkpoint did not bound replay by the interval (%d)",
					h.Shard, h.ReplayedBatches, h.Replacements, interval)
			}
		}
	}
	if replaced != 2 {
		t.Errorf("%d shards replaced, want the victim's 2", replaced)
	}
	if checkpointed == 0 {
		t.Error("no shard ever checkpointed; the replay bound above is vacuous")
	}
}

// TestHandshakeRejectsV3Peer pins the version bump itself: a peer speaking
// wire v3 — the pre-checkpoint protocol — must be rejected at handshake
// with both versions named, not served a session that would silently fall
// back to unbounded full replay.
func TestHandshakeRejectsV3Peer(t *testing.T) {
	addr, errCh := serveOnce(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(rpc.Hello{Magic: rpc.Magic, Version: 3}); err != nil {
		t.Fatal(err)
	}
	var rep rpc.HelloReply
	if err := gob.NewDecoder(conn).Decode(&rep); err != nil {
		t.Fatalf("no handshake reply: %v", err)
	}
	if rep.OK || !strings.Contains(rep.Err, "v3") || !strings.Contains(rep.Err, "v4") {
		t.Fatalf("v3 peer not rejected with both versions named: %+v", rep)
	}
	if err := waitErr(t, errCh); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("daemon survived a v3 peer: %v", err)
	}
}

// TestFleetCloseAbortsDial pins the backoff-abort fix: a redial loop parked
// in its (long) backoff sleep must return the moment the fleet closes, not
// hold Close hostage to the full backoff schedule.
func TestFleetCloseAbortsDial(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here: every dial refuses, a retryable transport error

	fleet := rpc.NewFleet([]string{addr}, rpc.FleetOptions{
		DialRetries: 3,
		DialBackoff: 30 * time.Second,
		BackoffCap:  time.Minute,
	})
	done := make(chan error, 1)
	go func() {
		_, err := fleet.Build(core.WorkerSpec{Shards: 1})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	start := time.Now()
	fleet.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "fleet closed") {
			t.Fatalf("aborted dial surfaced the wrong error: %v", err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("Close took %v to abort a 30s backoff", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not abort the dial backoff")
	}
}
