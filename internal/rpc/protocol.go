// Package rpc puts the ShardWorker boundary of internal/core on the wire:
// a compact gob-over-TCP protocol connecting a mining coordinator to shardd
// worker daemons. A daemon multiplexes up to Shards (advertised in its
// HelloReply) worker slots behind one process; every post-handshake request
// is shard-addressed by slot.
//
// A session is one coordinator connection:
//
//	client → Hello{Magic, Version}
//	server → HelloReply{OK, Shards} or HelloReply{Err} (and the daemon
//	          exits non-zero — a version-mismatched peer is a deployment
//	          error, mirroring the atomic rejection -follow batch mode
//	          applies to malformed edges)
//	client → Request{Shard, Op: "build", Spec}   server → Reply{NumEdges}
//	client → Request{Shard, Op: "offer", Bound}  server → Reply{Offers, Stats}
//	client → Request{Shard, Op: "counts", GRs}   server → Reply{Counts}
//	client → Request{Shard, Op: "ingest", Edges, Deletes} server → Reply{Ingest}
//	client → Request{Shard, Op: "checkpoint"}    server → Reply{Checkpoint}
//	client → Request{Shard, Op: "restore", Spec, Checkpoint} server → Reply{NumEdges}
//	... more ops, interleaving slots freely ...
//	client closes the connection; the daemon discards all worker state and
//	accepts the next session.
//
// Every message is one gob value (gob frames are length-prefixed on the
// wire). All payload types are plain value structs from internal/core, so
// the protocol needs no gob type registration. Requests are strictly
// serialized per connection — the coordinator serializes across all slots
// of one daemon and is concurrent only across connections — which keeps
// the daemon a single-goroutine loop with no locking.
package rpc

import (
	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// Magic identifies the protocol; Version its revision. A peer advertising
// anything else is rejected during the handshake.
//
// Version history:
//
//	1: build/offer/counts/ingest with insert-only ingest batches.
//	2: ingest requests grew the Deletes slice (fully dynamic streams). A
//	   v1 daemon would silently drop a v2 coordinator's retractions — the
//	   handshake bump turns that silent divergence into a loud rejection
//	   on both sides.
//	3: multiplexed shards. HelloReply advertises the daemon's slot
//	   capacity and every Request is shard-addressed (Request.Shard picks
//	   the slot). A v2 daemon would route every slot's requests into one
//	   worker — the bump turns that silent state corruption into a loud
//	   handshake rejection.
//	4: checkpoint/restore. Workers serialize their full shard state into
//	   an opaque versioned blob (Reply.Checkpoint) and replacements are
//	   restored from one (Request.Checkpoint), so supervisors can truncate
//	   their replay logs to the post-checkpoint suffix. A v3 daemon would
//	   answer "unknown op" to every checkpoint request — recoverable, but
//	   a fleet silently falling back to unbounded full replay is exactly
//	   the latency cliff checkpointing exists to remove, so version skew
//	   is rejected at handshake like every other revision.
const (
	Magic   = "grminer-shard"
	Version = 4
)

// Hello is the client's first message on a fresh connection.
//
// grlint:wire v1
type Hello struct {
	Magic   string
	Version int
}

// HelloReply acknowledges (or rejects) the handshake. On success Shards
// advertises the daemon's slot capacity: how many worker slots this one
// process multiplexes. A coordinator must not address Request.Shard at or
// beyond it.
//
// grlint:wire v2
type HelloReply struct {
	OK     bool
	Err    string
	Shards int
}

// Op names a request type.
const (
	OpBuild      = "build"
	OpOffer      = "offer"
	OpCounts     = "counts"
	OpIngest     = "ingest"
	OpCheckpoint = "checkpoint"
	OpRestore    = "restore"
)

// Request is one coordinator → worker message after the handshake. Shard
// addresses the daemon-side worker slot (0 ≤ Shard < HelloReply.Shards);
// Op selects which payload field is meaningful.
//
// grlint:wire v4
type Request struct {
	Shard   int
	Op      string
	Spec    *core.WorkerSpec
	Bound   *core.OfferBound
	GRs     []gr.GR
	Edges   []core.EdgeInsert
	Deletes []core.EdgeDelete
	// Checkpoint carries the state blob of a restore request. The blob is
	// opaque at this layer; its own version field is checked by core when
	// the worker installs it.
	Checkpoint []byte
}

// Reply is one worker → coordinator message. A non-empty Err reports an
// operation failure; the session stays open.
//
// grlint:wire v2
type Reply struct {
	Err      string
	NumEdges int
	Offers   []core.ShardCandidate
	Stats    core.Stats
	Counts   []metrics.Counts
	Ingest   core.IngestReply
	// Checkpoint is the opaque state blob answering a checkpoint request.
	Checkpoint []byte
}
