// Package rpc puts the ShardWorker boundary of internal/core on the wire:
// a compact gob-over-TCP protocol connecting a mining coordinator to shardd
// worker daemons, one shard per daemon.
//
// A session is one coordinator connection:
//
//	client → Hello{Magic, Version}
//	server → HelloReply{OK} or HelloReply{Err} (and the daemon exits
//	          non-zero — a version-mismatched peer is a deployment error,
//	          mirroring the atomic rejection -follow batch mode applies to
//	          malformed edges)
//	client → Request{Op: "build", Spec}        server → Reply{NumEdges}
//	client → Request{Op: "offer", Bound}       server → Reply{Offers, Stats}
//	client → Request{Op: "counts", GRs}        server → Reply{Counts}
//	client → Request{Op: "ingest", Edges, Deletes}  server → Reply{Ingest}
//	... more ops ...
//	client closes the connection; the daemon discards the worker state and
//	accepts the next session.
//
// Every message is one gob value (gob frames are length-prefixed on the
// wire). All payload types are plain value structs from internal/core, so
// the protocol needs no gob type registration. Requests are strictly
// serialized per connection — the coordinator drives different workers
// concurrently, never one worker concurrently — which keeps the daemon a
// single-goroutine loop with no locking.
package rpc

import (
	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// Magic identifies the protocol; Version its revision. A peer advertising
// anything else is rejected during the handshake.
//
// Version history:
//
//	1: build/offer/counts/ingest with insert-only ingest batches.
//	2: ingest requests grew the Deletes slice (fully dynamic streams). A
//	   v1 daemon would silently drop a v2 coordinator's retractions — the
//	   handshake bump turns that silent divergence into a loud rejection
//	   on both sides.
const (
	Magic   = "grminer-shard"
	Version = 2
)

// Hello is the client's first message on a fresh connection.
//
// grlint:wire v1
type Hello struct {
	Magic   string
	Version int
}

// HelloReply acknowledges (or rejects) the handshake.
//
// grlint:wire v1
type HelloReply struct {
	OK  bool
	Err string
}

// Op names a request type.
const (
	OpBuild  = "build"
	OpOffer  = "offer"
	OpCounts = "counts"
	OpIngest = "ingest"
)

// Request is one coordinator → worker message after the handshake. Op
// selects which payload field is meaningful.
//
// grlint:wire v2
type Request struct {
	Op      string
	Spec    *core.WorkerSpec
	Bound   *core.OfferBound
	GRs     []gr.GR
	Edges   []core.EdgeInsert
	Deletes []core.EdgeDelete
}

// Reply is one worker → coordinator message. A non-empty Err reports an
// operation failure; the session stays open.
//
// grlint:wire v1
type Reply struct {
	Err      string
	NumEdges int
	Offers   []core.ShardCandidate
	Stats    core.Stats
	Counts   []metrics.Counts
	Ingest   core.IngestReply
}
