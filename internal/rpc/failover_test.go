package rpc_test

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/rpc"
)

// fastFleet keeps failover tests quick: real retry/backoff code path,
// millisecond budgets.
func fastFleet(addrs, standbys []string) *rpc.Fleet {
	return rpc.NewFleet(addrs, rpc.FleetOptions{
		Standbys:    standbys,
		DialRetries: 2,
		DialBackoff: 5 * time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
	})
}

// startMuxWorker returns the address of one daemon multiplexing `capacity`
// worker slots. When GRMINER_TEST_MUX_WORKER names an externally launched
// `shardd -shards N` (the CI distributed-gate does this), that daemon is
// used; otherwise an in-process ServeShards is spun up.
func startMuxWorker(t *testing.T, capacity int) string {
	t.Helper()
	if env := strings.TrimSpace(os.Getenv("GRMINER_TEST_MUX_WORKER")); env != "" {
		return env
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpc.ServeShards(l, capacity, nil) //nolint:errcheck // closed by cleanup
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// TestRemoteMultiplexedOracle proves the v3 shard-addressed protocol exact:
// 1, 2, 4, and 8 shards multiplexed behind ONE daemon of capacity 8 must
// each mine results identical to the single-store reference, and a layout
// one shard beyond the advertised capacity must be refused client-side.
func TestRemoteMultiplexedOracle(t *testing.T) {
	g := randomGraph(11, true, true)
	opt := core.Options{MinSupp: 2, MinScore: 0.3, K: 10, DynamicFloor: true}
	ref, err := core.Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr := startMuxWorker(t, 8)
	for _, shards := range []int{1, 2, 4, 8} {
		fleet := fastFleet([]string{addr}, nil)
		sc, err := core.NewShardCoordinatorFrom(g, opt, core.ShardOptions{Shards: shards}, fleet)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		res, err := sc.Mine()
		sc.Close()
		fleet.Close()
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		assertSameResults(t, "mux", res.TopK, ref.TopK)
	}

	// One slot past the daemon's advertised capacity must fail at build.
	fleet := fastFleet([]string{addr}, nil)
	defer fleet.Close()
	if _, err := core.NewShardCoordinatorFrom(g, opt, core.ShardOptions{Shards: 9}, fleet); err == nil ||
		!strings.Contains(err.Error(), "slots") {
		t.Fatalf("9 shards on a capacity-8 daemon: %v", err)
	}
}

// TestRemoteMixedMultiplexOracle spreads 4 shards over two capacity-2
// daemons — the mixed shape the runbook deploys — and checks the oracle.
func TestRemoteMixedMultiplexOracle(t *testing.T) {
	g := randomGraph(12, false, true)
	opt := core.Options{MinSupp: 2, MinScore: 0.3, K: 10}
	a := startMuxWorker(t, 2)
	b := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rpc.ServeShards(l, 2, nil) //nolint:errcheck
		t.Cleanup(func() { l.Close() })
		return l.Addr().String()
	}()
	fleet := fastFleet([]string{a, b}, nil)
	defer fleet.Close()
	sc, err := core.NewShardCoordinatorFrom(g, opt, core.ShardOptions{Shards: 4}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	res, err := sc.Mine()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Mine(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "mixed-mux", res.TopK, ref.TopK)
}

// killableServer is an in-process daemon whose crash can be forced: Kill
// severs the listener and every accepted session connection.
type killableServer struct {
	addr string
	l    net.Listener
	mu   sync.Mutex
	cs   []net.Conn
}

func (ks *killableServer) Accept() (net.Conn, error) {
	c, err := ks.l.Accept()
	if err != nil {
		return nil, err
	}
	ks.mu.Lock()
	ks.cs = append(ks.cs, c)
	ks.mu.Unlock()
	return c, nil
}

func (ks *killableServer) Close() error   { return ks.l.Close() }
func (ks *killableServer) Addr() net.Addr { return ks.l.Addr() }

func (ks *killableServer) Kill() {
	ks.l.Close()
	ks.mu.Lock()
	for _, c := range ks.cs {
		c.Close()
	}
	ks.cs = nil
	ks.mu.Unlock()
}

func startKillable(t *testing.T, capacity int) *killableServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ks := &killableServer{addr: l.Addr().String(), l: l}
	go rpc.ServeShards(ks, capacity, nil) //nolint:errcheck // killed by cleanup
	t.Cleanup(ks.Kill)
	return ks
}

// TestRemoteFailoverReplay is the seeded permanent-loss test: a daemon
// multiplexing two of four shards dies between ingest batches, the
// coordinator must rebuild both dead shards on the standby and replay their
// logged batches, and every maintained top-k — before and after the kill —
// must equal a fresh single-store mine (pool and top-k equality with an
// unkilled oracle).
func TestRemoteFailoverReplay(t *testing.T) {
	seed := int64(21)
	r := rand.New(rand.NewSource(seed))
	g := randomGraph(seed, true, false)
	victim := startKillable(t, 2)
	survivor := startKillable(t, 2)
	standby := startKillable(t, 2)

	fleet := fastFleet([]string{victim.addr, survivor.addr}, []string{standby.addr})
	defer fleet.Close()
	opt := core.Options{MinSupp: 2, MinScore: 0.3, K: 8, DynamicFloor: true}
	inc, err := core.NewIncrementalShardedFrom(g, opt, core.ShardOptions{Shards: 4}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()

	const killAfter = 2
	for batch := 0; batch < 5; batch++ {
		if batch == killAfter {
			victim.Kill()
		}
		edges := make([]core.EdgeInsert, 3+r.Intn(5))
		for i := range edges {
			edges[i] = core.EdgeInsert{
				Src:  r.Intn(g.NumNodes()),
				Dst:  r.Intn(g.NumNodes()),
				Vals: []graph.Value{graph.Value(r.Intn(3))},
			}
		}
		res, _, err := inc.Apply(edges)
		if err != nil {
			t.Fatalf("batch %d (kill after %d): %v", batch, killAfter, err)
		}
		ref, err := core.Mine(g, inc.Options())
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "failover", res.TopK, ref.TopK)
	}

	// Both of the victim's slots (shards 0 and 2 under i-mod-n placement)
	// must have been replaced onto the standby and replayed.
	var replaced int
	for _, h := range inc.FleetHealth() {
		if !h.Live {
			t.Errorf("shard %d not live after recovery: %+v", h.Shard, h)
		}
		if h.Replacements > 0 {
			replaced++
			if h.Addr != standby.addr {
				t.Errorf("shard %d replaced onto %s, want the standby %s", h.Shard, h.Addr, standby.addr)
			}
			// The log holds only the routed sub-batches this shard actually
			// ingested (empty ones are skipped), so the replay count is
			// bounded by — not equal to — the batches applied pre-kill.
			if h.ReplayedBatches < 1 || h.ReplayedBatches > killAfter {
				t.Errorf("shard %d replayed %d batches, want 1..%d", h.Shard, h.ReplayedBatches, killAfter)
			}
		}
	}
	if replaced != 2 {
		t.Errorf("%d shards replaced, want the victim's 2", replaced)
	}
}

// TestErrorTaxonomy pins the two error classes of DESIGN.md §9 at the wire:
// an in-band application error leaves the worker alive and is NOT a
// TransportError; a connection severed mid-reply (injected partial write,
// then close) IS one, and reports the worker lost.
func TestErrorTaxonomy(t *testing.T) {
	// In-band: offering before building is the daemon's error string, with
	// the session (and worker) intact.
	addr := startWorkers(t, 1)[0]
	c, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	slot, err := c.Slot()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = slot.Offer(nil)
	var te *rpc.TransportError
	if err == nil || errors.As(err, &te) {
		t.Fatalf("offer-before-build: want a plain in-band error, got %v", err)
	}
	if !strings.Contains(err.Error(), "before build") {
		t.Fatalf("in-band error lost its message: %v", err)
	}

	// Severed mid-reply: a peer that handshakes, reads the request, writes a
	// partial (truncated) reply, and drops the connection.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(conn)
		var hello rpc.Hello
		if dec.Decode(&hello) != nil {
			return
		}
		if gob.NewEncoder(conn).Encode(rpc.HelloReply{OK: true, Shards: 1}) != nil {
			return
		}
		var req rpc.Request
		if dec.Decode(&req) != nil {
			return
		}
		conn.Write([]byte{0x07, 0x01}) //nolint:errcheck // deliberate partial frame
	}()
	c2, err := rpc.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	slot2, err := c2.Slot()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = slot2.Offer(nil)
	if !errors.As(err, &te) {
		t.Fatalf("partial reply: want *rpc.TransportError, got %v", err)
	}
	if !te.WorkerLost() || te.Unwrap() == nil {
		t.Fatalf("TransportError not marked worker-lost: %+v", te)
	}
}

// TestRebuildSkipsMismatchedStandby: a standby that rejects the handshake
// (version skew mid-rolling-upgrade) must not absorb the replacement — the
// rebuild falls through to the next candidate.
func TestRebuildSkipsMismatchedStandby(t *testing.T) {
	// A permanently version-mismatched "standby": handshakes with an error
	// for every connection.
	bad, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	go func() {
		for {
			conn, err := bad.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var hello rpc.Hello
				gob.NewDecoder(conn).Decode(&hello)                                               //nolint:errcheck
				gob.NewEncoder(conn).Encode(rpc.HelloReply{Err: "protocol mismatch: stale peer"}) //nolint:errcheck
			}(conn)
		}
	}()

	victim := startKillable(t, 1)
	good := startKillable(t, 1)
	fleet := fastFleet([]string{victim.addr}, []string{bad.Addr().String(), good.addr})
	defer fleet.Close()

	g := randomGraph(31, true, true)
	inc, err := core.NewIncrementalShardedFrom(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 1}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()

	if _, _, err := inc.Apply([]core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}}); err != nil {
		t.Fatal(err)
	}
	victim.Kill()
	res, _, err := inc.Apply([]core.EdgeInsert{{Src: 1, Dst: 2, Vals: []graph.Value{1}}})
	if err != nil {
		t.Fatalf("apply after kill with a mismatched first standby: %v", err)
	}
	ref, err := core.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "skip-bad-standby", res.TopK, ref.TopK)
	h := inc.FleetHealth()
	if len(h) != 1 || h[0].Addr != good.addr || h[0].Replacements != 1 {
		t.Fatalf("replacement did not land on the healthy standby: %+v", h)
	}
}
