package rpc

import "fmt"

// TransportError reports a transport-level failure talking to a worker
// daemon: a failed dial, a timed-out or half-written request, a torn
// connection, or a malformed reply. It is the "worker lost" class of the
// error taxonomy: the daemon discards all session state when its connection
// ends, so any transport failure means the worker's state is unrecoverable
// over this connection and the shard must be rebuilt and replayed elsewhere
// (see core.RebuildingBuilder).
//
// In-band operation failures (Reply.Err) are the other class: the worker is
// alive and its state intact — the operation itself was rejected (e.g. a
// malformed ingest batch, atomically refused). Those surface as plain
// errors and are never retried.
type TransportError struct {
	Addr string // daemon address
	Op   string // operation in flight ("dial", "build", "offer", ...)
	Err  error  // underlying I/O error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: worker %s: %s: %v", e.Addr, e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// WorkerLost marks the error as a permanent loss of the remote worker's
// state. core classifies failover-eligible errors through this method (via
// errors.As on an anonymous interface) so that core never imports rpc.
func (e *TransportError) WorkerLost() bool { return true }
