package store

import (
	"math/rand"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/intern"
)

// TestDictStableUnderChurn is the intern stability property at the store
// level: the dictionary Dict() hands out survives AppendEdges, deletions,
// and rebuild-compaction — the same object, with every previously interned
// descriptor and GR keeping its id and the id space only ever growing (ids
// are never reused for a different (attribute, value) path). This is what
// lets the incremental engine keep slice tables indexed by DescID/GRID
// across arbitrary batch sequences without remapping.
func TestDictStableUnderChurn(t *testing.T) {
	schema := dynSchema(t)
	r := rand.New(rand.NewSource(11))
	n := 10
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		if err := g.SetNodeValues(v, graph.Value(1+r.Intn(3)), graph.Value(1+r.Intn(4))); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 120; e++ {
		if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(1+r.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	s := Build(g)
	s.EnablePostings()
	d := s.Dict()
	if s.Dict() != d {
		t.Fatal("Dict() is not idempotent")
	}

	randDesc := func(attrs []graph.Attribute) gr.Descriptor {
		var desc gr.Descriptor
		for a := range attrs {
			if r.Intn(2) == 0 {
				desc = desc.With(a, graph.Value(1+r.Intn(attrs[a].Domain)))
			}
		}
		return desc
	}
	type interned struct {
		g  gr.GR
		id intern.GRID
	}
	var pinned []interned
	intern1 := func() {
		x := gr.GR{L: randDesc(schema.Node), W: randDesc(schema.Edge), R: randDesc(schema.Node)}
		pinned = append(pinned, interned{x, d.GR(x)})
	}
	for i := 0; i < 20; i++ {
		intern1()
	}

	live := append([]int32(nil), s.AllEdges()...)
	compactions := 0
	for step := 0; step < 40; step++ {
		descsBefore, grsBefore := d.NumDescs(), d.NumGRs()

		del := make([]int32, 0, 4)
		for i := 0; i < 1+r.Intn(6) && len(live) > 0; i++ {
			j := r.Intn(len(live))
			del = append(del, live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		before := s.NumRows()
		for _, row := range del {
			if err := g.RemoveEdge(int(s.EdgeID(row))); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if err := s.RemoveEdges(del); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if s.NumRows() < before {
			compactions++
			live = s.AllEdgesInto(live)
		}
		for i := 0; i < r.Intn(5); i++ {
			if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(1+r.Intn(2))); err != nil {
				t.Fatal(err)
			}
		}
		live = append(live, s.Append()...)

		// Mutations must not touch the dictionary at all...
		if s.Dict() != d {
			t.Fatalf("step %d: store swapped its dictionary", step)
		}
		if d.NumDescs() != descsBefore || d.NumGRs() != grsBefore {
			t.Fatalf("step %d: mutation minted ids (%d->%d descs, %d->%d GRs)",
				step, descsBefore, d.NumDescs(), grsBefore, d.NumGRs())
		}
		// ...every pinned GR keeps its first id...
		for _, p := range pinned {
			if got := d.GR(p.g); got != p.id {
				t.Fatalf("step %d: GR %s re-interned to %d, first id was %d", step, p.g.Key(), got, p.id)
			}
		}
		// ...and fresh interning still works mid-churn.
		intern1()
	}
	if compactions == 0 {
		t.Fatal("churn never triggered a compaction — dict survival untested")
	}
}
