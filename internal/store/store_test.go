package store

import (
	"math/rand"
	"testing"

	"grminer/internal/dataset"
	"grminer/internal/graph"
)

func TestBuildToy(t *testing.T) {
	g := dataset.ToyDating()
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumEdges() != 30 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
	// Every toy node dates someone, so all 14 appear in both arrays.
	if s.NumLRows() != 14 || s.NumRRows() != 14 {
		t.Errorf("rows = %d, %d; want 14, 14", s.NumLRows(), s.NumRRows())
	}
}

func TestZeroDegreeNodesDropped(t *testing.T) {
	sch, err := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(sch, 5)
	for n := 0; n < 5; n++ {
		g.SetNodeValues(n, graph.Value(n%2+1))
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	// Nodes 3, 4 are isolated; node 0 is source-only; 1, 2 sink-only.
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumLRows() != 1 {
		t.Errorf("LArray rows = %d, want 1", s.NumLRows())
	}
	if s.NumRRows() != 2 {
		t.Errorf("RArray rows = %d, want 2", s.NumRRows())
	}
}

func TestCSRGrouping(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 4}}, nil)
	g := graph.MustNew(sch, 4)
	for n := 0; n < 4; n++ {
		g.SetNodeValues(n, graph.Value(n+1))
	}
	// Interleave sources deliberately.
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Edges must be contiguous per source in EArray.
	lastSrc := int32(-1)
	seen := map[int32]bool{}
	for e := int32(0); int(e) < s.NumRows(); e++ {
		if !s.Alive(e) {
			continue
		}
		src := s.SrcNode(e)
		if src != lastSrc {
			if seen[src] {
				t.Fatalf("source %d appears in two runs", src)
			}
			seen[src] = true
			lastSrc = src
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	g := dataset.ToyDating()
	s := Build(g)
	// |V|=14 (all in both arrays), |E|=30, #AttrV=3, #AttrE=1.
	wantCompact := 14*(3+2) + 30*(1+1) + 14*3
	if got := s.CompactSizeCells(); got != wantCompact {
		t.Errorf("CompactSizeCells = %d, want %d", got, wantCompact)
	}
	wantFlat := 30 * (2*3 + 1)
	if got := SingleTableSizeCells(g); got != wantFlat {
		t.Errorf("SingleTableSizeCells = %d, want %d", got, wantFlat)
	}
	if wantCompact >= wantFlat {
		t.Errorf("compact (%d) should beat single table (%d) even on the toy", wantCompact, wantFlat)
	}
}

func TestFlatten(t *testing.T) {
	g := dataset.ToyDating()
	ft := Flatten(g)
	if ft.Rows != 30 || ft.Width != 7 {
		t.Fatalf("flat table %dx%d", ft.Rows, ft.Width)
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		for a := 0; a < 3; a++ {
			if ft.Value(int32(e), ft.LCol(a)) != g.NodeValue(g.Src(e), a) {
				t.Fatalf("edge %d L attr %d mismatch", e, a)
			}
			if ft.Value(int32(e), ft.RCol(a)) != g.NodeValue(g.Dst(e), a) {
				t.Fatalf("edge %d R attr %d mismatch", e, a)
			}
		}
		if ft.Value(int32(e), ft.WCol(0)) != g.EdgeValue(e, 0) {
			t.Fatalf("edge %d W mismatch", e)
		}
	}
}

func TestAllEdges(t *testing.T) {
	s := Build(dataset.ToyDating())
	ids := s.AllEdges()
	if len(ids) != 30 {
		t.Fatalf("AllEdges len = %d", len(ids))
	}
	for i, id := range ids {
		if id != int32(i) {
			t.Fatalf("AllEdges[%d] = %d", i, id)
		}
	}
	ids[0] = 99
	if s.AllEdges()[0] != 0 {
		t.Error("AllEdges must return a fresh slice")
	}
}

func TestBuildRandomGraphs(t *testing.T) {
	sch, _ := graph.NewSchema(
		[]graph.Attribute{{Name: "A", Domain: 3, Homophily: true}, {Name: "B", Domain: 5}},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := graph.MustNew(sch, n)
		for v := 0; v < n; v++ {
			g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(6)))
		}
		m := r.Intn(100)
		for e := 0; e < m; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
		}
		s := Build(g)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	g := graph.MustNew(sch, 0)
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate empty: %v", err)
	}
	if s.NumEdges() != 0 || s.NumLRows() != 0 || len(s.AllEdges()) != 0 {
		t.Error("empty graph produced non-empty store")
	}
}

// Append must leave the store exactly equivalent (per-edge, via the eID
// mapping) to a fresh Build of the grown graph, across random interleavings
// of builds and appends that activate previously row-less nodes.
func TestAppendMatchesRebuild(t *testing.T) {
	sch, _ := graph.NewSchema(
		[]graph.Attribute{{Name: "A", Domain: 3, Homophily: true}, {Name: "B", Domain: 5}},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := graph.MustNew(sch, n)
		for v := 0; v < n; v++ {
			g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(6)))
		}
		for e, m := 0, r.Intn(40); e < m; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
		}
		s := Build(g)
		// Grow in a few rounds, syncing after each.
		for round := 0; round < 3; round++ {
			added := 1 + r.Intn(20)
			before := s.NumEdges()
			for e := 0; e < added; e++ {
				g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
			}
			ids := s.Append()
			if len(ids) != added {
				t.Fatalf("seed %d round %d: Append returned %d ids, want %d", seed, round, len(ids), added)
			}
			for i, id := range ids {
				if int(id) != before+i {
					t.Fatalf("seed %d: appended row ids not a tail segment: %v", seed, ids)
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			// Equivalence with a fresh Build, accessor by accessor, keyed by
			// the original edge id (row layouts legitimately differ).
			fresh := Build(g)
			byID := make(map[int32]int32, fresh.NumEdges())
			for e := int32(0); int(e) < fresh.NumRows(); e++ {
				if !fresh.Alive(e) {
					continue
				}
				byID[fresh.EdgeID(e)] = e
			}
			for e := int32(0); int(e) < s.NumRows(); e++ {
				if !s.Alive(e) {
					continue
				}
				f, ok := byID[s.EdgeID(e)]
				if !ok {
					t.Fatalf("seed %d: edge id %d missing from fresh build", seed, s.EdgeID(e))
				}
				if s.SrcNode(e) != fresh.SrcNode(f) || s.DstNode(e) != fresh.DstNode(f) {
					t.Fatalf("seed %d: endpoints diverge at edge id %d", seed, s.EdgeID(e))
				}
				for a := 0; a < 2; a++ {
					if s.LVal(e, a) != fresh.LVal(f, a) || s.RVal(e, a) != fresh.RVal(f, a) {
						t.Fatalf("seed %d: node values diverge at edge id %d attr %d", seed, s.EdgeID(e), a)
					}
				}
				if s.EVal(e, 0) != fresh.EVal(f, 0) {
					t.Fatalf("seed %d: edge value diverges at edge id %d", seed, s.EdgeID(e))
				}
			}
			if s.NumLRows() != fresh.NumLRows() || s.NumRRows() != fresh.NumRRows() {
				t.Fatalf("seed %d: row counts diverge: L %d/%d R %d/%d",
					seed, s.NumLRows(), fresh.NumLRows(), s.NumRRows(), fresh.NumRRows())
			}
		}
	}
}

// Append with no new graph edges is a no-op, and appending onto an
// initially empty store works.
func TestAppendEdgeCases(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	g := graph.MustNew(sch, 4)
	for v := 0; v < 4; v++ {
		g.SetNodeValues(v, graph.Value(v%2+1))
	}
	s := Build(g)
	if ids := s.Append(); ids != nil {
		t.Errorf("no-op Append returned %v", ids)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if ids := s.Append(); len(ids) != 2 {
		t.Fatalf("Append onto empty store returned %v", ids)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumLRows() != 2 || s.NumRRows() != 2 {
		t.Errorf("rows = %d, %d; want 2, 2", s.NumLRows(), s.NumRRows())
	}
}

// A subset store must expose exactly its edge slice, with accessors and
// EdgeID agreeing with the underlying graph edge by edge.
func TestBuildSubset(t *testing.T) {
	sch, err := graph.NewSchema([]graph.Attribute{
		{Name: "A", Domain: 4},
		{Name: "B", Domain: 3},
	}, []graph.Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	g := graph.MustNew(sch, 10)
	for v := 0; v < 10; v++ {
		if err := g.SetNodeValues(v, graph.Value(r.Intn(5)), graph.Value(r.Intn(4))); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 40; e++ {
		if _, err := g.AddEdge(r.Intn(10), r.Intn(10), graph.Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	// A scattered, non-contiguous subset.
	var subset []int32
	for e := 1; e < 40; e += 3 {
		subset = append(subset, int32(e))
	}
	s := BuildSubset(g, subset)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumEdges() != len(subset) {
		t.Fatalf("NumEdges = %d, want %d", s.NumEdges(), len(subset))
	}
	for row := int32(0); int(row) < s.NumRows(); row++ {
		if !s.Alive(row) {
			continue
		}
		orig := int(s.EdgeID(row))
		if int(s.SrcNode(row)) != g.Src(orig) || int(s.DstNode(row)) != g.Dst(orig) {
			t.Fatalf("row %d endpoints mismatch", row)
		}
		for a := 0; a < 2; a++ {
			if s.LVal(row, a) != g.NodeValue(g.Src(orig), a) {
				t.Fatalf("row %d LVal attr %d mismatch", row, a)
			}
			if s.RVal(row, a) != g.NodeValue(g.Dst(orig), a) {
				t.Fatalf("row %d RVal attr %d mismatch", row, a)
			}
		}
		if s.EVal(row, 0) != g.EdgeValue(orig, 0) {
			t.Fatalf("row %d EVal mismatch", row)
		}
	}
	// Nodes inactive within the subset must not occupy rows.
	inSubset := make(map[int]bool)
	srcs := make(map[int]bool)
	for _, e := range subset {
		inSubset[int(e)] = true
		srcs[g.Src(int(e))] = true
	}
	if s.NumLRows() != len(srcs) {
		t.Fatalf("LArray rows = %d, want %d subset sources", s.NumLRows(), len(srcs))
	}
	// Append on a subset store is a no-op: the owner routes explicitly.
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if rows := s.Append(); rows != nil {
		t.Fatalf("Append on subset store ingested %d edges", len(rows))
	}
	if s.NumEdges() != len(subset) {
		t.Fatalf("Append on subset store changed NumEdges to %d", s.NumEdges())
	}
}

// AppendEdges must ingest exactly the routed edges, activating new nodes,
// and full-store Append must remain equivalent to the catch-up it was.
func TestAppendEdgesRouted(t *testing.T) {
	sch, err := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 3}},
		[]graph.Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(sch, 6)
	for v := 0; v < 6; v++ {
		if err := g.SetNodeValues(v, graph.Value(v%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 8; e++ {
		if _, err := g.AddEdge(e%3, (e+1)%4, graph.Value(e%2+1)); err != nil {
			t.Fatal(err)
		}
	}
	even := BuildSubset(g, []int32{0, 2, 4, 6})
	odd := BuildSubset(g, []int32{1, 3, 5, 7})

	// New edges routed by parity; node 5 becomes active for the first time.
	id1, err := g.AddEdge(5, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.AddEdge(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := even.AppendEdges([]int32{int32(id1)})
	if len(rows) != 1 || even.NumEdges() != 5 {
		t.Fatalf("even shard: rows %v, NumEdges %d", rows, even.NumEdges())
	}
	if int(even.SrcNode(rows[0])) != 5 || even.EVal(rows[0], 0) != 2 {
		t.Fatalf("even shard misingested edge %d", id1)
	}
	rows = odd.AppendEdges([]int32{int32(id2)})
	if len(rows) != 1 || odd.NumEdges() != 5 {
		t.Fatalf("odd shard: rows %v, NumEdges %d", rows, odd.NumEdges())
	}
	if int(odd.DstNode(rows[0])) != 5 {
		t.Fatalf("odd shard misingested edge %d", id2)
	}
	if err := even.Validate(); err != nil {
		t.Fatalf("even shard Validate: %v", err)
	}
	if err := odd.Validate(); err != nil {
		t.Fatalf("odd shard Validate: %v", err)
	}

	// A full store built before the growth catches up through Append and
	// validates end to end.
	full := Build(g)
	if _, err := g.AddEdge(2, 5, 1); err != nil {
		t.Fatal(err)
	}
	if got := full.Append(); len(got) != 1 {
		t.Fatalf("full-store Append ingested %d edges, want 1", len(got))
	}
	if full.Append() != nil {
		t.Fatal("second Append was not a no-op")
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("full store Validate: %v", err)
	}
}
