package store

import (
	"math/rand"
	"testing"

	"grminer/internal/dataset"
	"grminer/internal/graph"
)

func TestBuildToy(t *testing.T) {
	g := dataset.ToyDating()
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumEdges() != 30 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
	// Every toy node dates someone, so all 14 appear in both arrays.
	if s.NumLRows() != 14 || s.NumRRows() != 14 {
		t.Errorf("rows = %d, %d; want 14, 14", s.NumLRows(), s.NumRRows())
	}
}

func TestZeroDegreeNodesDropped(t *testing.T) {
	sch, err := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(sch, 5)
	for n := 0; n < 5; n++ {
		g.SetNodeValues(n, graph.Value(n%2+1))
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	// Nodes 3, 4 are isolated; node 0 is source-only; 1, 2 sink-only.
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumLRows() != 1 {
		t.Errorf("LArray rows = %d, want 1", s.NumLRows())
	}
	if s.NumRRows() != 2 {
		t.Errorf("RArray rows = %d, want 2", s.NumRRows())
	}
}

func TestCSRGrouping(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 4}}, nil)
	g := graph.MustNew(sch, 4)
	for n := 0; n < 4; n++ {
		g.SetNodeValues(n, graph.Value(n+1))
	}
	// Interleave sources deliberately.
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Edges must be contiguous per source in EArray.
	lastSrc := int32(-1)
	seen := map[int32]bool{}
	for e := int32(0); int(e) < s.NumEdges(); e++ {
		src := s.SrcNode(e)
		if src != lastSrc {
			if seen[src] {
				t.Fatalf("source %d appears in two runs", src)
			}
			seen[src] = true
			lastSrc = src
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	g := dataset.ToyDating()
	s := Build(g)
	// |V|=14 (all in both arrays), |E|=30, #AttrV=3, #AttrE=1.
	wantCompact := 14*(3+2) + 30*(1+1) + 14*3
	if got := s.CompactSizeCells(); got != wantCompact {
		t.Errorf("CompactSizeCells = %d, want %d", got, wantCompact)
	}
	wantFlat := 30 * (2*3 + 1)
	if got := SingleTableSizeCells(g); got != wantFlat {
		t.Errorf("SingleTableSizeCells = %d, want %d", got, wantFlat)
	}
	if wantCompact >= wantFlat {
		t.Errorf("compact (%d) should beat single table (%d) even on the toy", wantCompact, wantFlat)
	}
}

func TestFlatten(t *testing.T) {
	g := dataset.ToyDating()
	ft := Flatten(g)
	if ft.Rows != 30 || ft.Width != 7 {
		t.Fatalf("flat table %dx%d", ft.Rows, ft.Width)
	}
	for e := 0; e < g.NumEdges(); e++ {
		for a := 0; a < 3; a++ {
			if ft.Value(int32(e), ft.LCol(a)) != g.NodeValue(g.Src(e), a) {
				t.Fatalf("edge %d L attr %d mismatch", e, a)
			}
			if ft.Value(int32(e), ft.RCol(a)) != g.NodeValue(g.Dst(e), a) {
				t.Fatalf("edge %d R attr %d mismatch", e, a)
			}
		}
		if ft.Value(int32(e), ft.WCol(0)) != g.EdgeValue(e, 0) {
			t.Fatalf("edge %d W mismatch", e)
		}
	}
}

func TestAllEdges(t *testing.T) {
	s := Build(dataset.ToyDating())
	ids := s.AllEdges()
	if len(ids) != 30 {
		t.Fatalf("AllEdges len = %d", len(ids))
	}
	for i, id := range ids {
		if id != int32(i) {
			t.Fatalf("AllEdges[%d] = %d", i, id)
		}
	}
	ids[0] = 99
	if s.AllEdges()[0] != 0 {
		t.Error("AllEdges must return a fresh slice")
	}
}

func TestBuildRandomGraphs(t *testing.T) {
	sch, _ := graph.NewSchema(
		[]graph.Attribute{{Name: "A", Domain: 3, Homophily: true}, {Name: "B", Domain: 5}},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := graph.MustNew(sch, n)
		for v := 0; v < n; v++ {
			g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(6)))
		}
		m := r.Intn(100)
		for e := 0; e < m; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
		}
		s := Build(g)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	g := graph.MustNew(sch, 0)
	s := Build(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate empty: %v", err)
	}
	if s.NumEdges() != 0 || s.NumLRows() != 0 || len(s.AllEdges()) != 0 {
		t.Error("empty graph produced non-empty store")
	}
}

// Append must leave the store exactly equivalent (per-edge, via the eID
// mapping) to a fresh Build of the grown graph, across random interleavings
// of builds and appends that activate previously row-less nodes.
func TestAppendMatchesRebuild(t *testing.T) {
	sch, _ := graph.NewSchema(
		[]graph.Attribute{{Name: "A", Domain: 3, Homophily: true}, {Name: "B", Domain: 5}},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		g := graph.MustNew(sch, n)
		for v := 0; v < n; v++ {
			g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(6)))
		}
		for e, m := 0, r.Intn(40); e < m; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
		}
		s := Build(g)
		// Grow in a few rounds, syncing after each.
		for round := 0; round < 3; round++ {
			added := 1 + r.Intn(20)
			before := s.NumEdges()
			for e := 0; e < added; e++ {
				g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
			}
			ids := s.Append()
			if len(ids) != added {
				t.Fatalf("seed %d round %d: Append returned %d ids, want %d", seed, round, len(ids), added)
			}
			for i, id := range ids {
				if int(id) != before+i {
					t.Fatalf("seed %d: appended row ids not a tail segment: %v", seed, ids)
				}
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			// Equivalence with a fresh Build, accessor by accessor, keyed by
			// the original edge id (row layouts legitimately differ).
			fresh := Build(g)
			byID := make(map[int32]int32, fresh.NumEdges())
			for e := int32(0); int(e) < fresh.NumEdges(); e++ {
				byID[fresh.EdgeID(e)] = e
			}
			for e := int32(0); int(e) < s.NumEdges(); e++ {
				f, ok := byID[s.EdgeID(e)]
				if !ok {
					t.Fatalf("seed %d: edge id %d missing from fresh build", seed, s.EdgeID(e))
				}
				if s.SrcNode(e) != fresh.SrcNode(f) || s.DstNode(e) != fresh.DstNode(f) {
					t.Fatalf("seed %d: endpoints diverge at edge id %d", seed, s.EdgeID(e))
				}
				for a := 0; a < 2; a++ {
					if s.LVal(e, a) != fresh.LVal(f, a) || s.RVal(e, a) != fresh.RVal(f, a) {
						t.Fatalf("seed %d: node values diverge at edge id %d attr %d", seed, s.EdgeID(e), a)
					}
				}
				if s.EVal(e, 0) != fresh.EVal(f, 0) {
					t.Fatalf("seed %d: edge value diverges at edge id %d", seed, s.EdgeID(e))
				}
			}
			if s.NumLRows() != fresh.NumLRows() || s.NumRRows() != fresh.NumRRows() {
				t.Fatalf("seed %d: row counts diverge: L %d/%d R %d/%d",
					seed, s.NumLRows(), fresh.NumLRows(), s.NumRRows(), fresh.NumRRows())
			}
		}
	}
}

// Append with no new graph edges is a no-op, and appending onto an
// initially empty store works.
func TestAppendEdgeCases(t *testing.T) {
	sch, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	g := graph.MustNew(sch, 4)
	for v := 0; v < 4; v++ {
		g.SetNodeValues(v, graph.Value(v%2+1))
	}
	s := Build(g)
	if ids := s.Append(); ids != nil {
		t.Errorf("no-op Append returned %v", ids)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if ids := s.Append(); len(ids) != 2 {
		t.Fatalf("Append onto empty store returned %v", ids)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumLRows() != 2 || s.NumRRows() != 2 {
		t.Errorf("rows = %d, %d; want 2, 2", s.NumLRows(), s.NumRRows())
	}
}
