package store

import (
	"fmt"

	"grminer/internal/graph"
)

// Per-(attribute, value) posting lists: for every non-null value of every
// node attribute (on the source and destination side) and every edge
// attribute, the EArray rows carrying it. They exist for the incremental
// engines, whose per-batch scoped re-mine otherwise has to counting-sort the
// full edge set once per dimension just to recover the handful of first-level
// partitions a batch touched — the O(|E| × dims) floor of every Apply.
// With postings enabled a re-mine fetches each affected partition directly.
//
// Invariants (asserted by the store tests against a from-scratch partition
// pass after arbitrary insert/delete sequences):
//
//   - rows[side][attr][val] contains every live row whose side-value for
//     attr is val, plus possibly tombstoned rows (removals do not splice
//     lists — consumers filter through Alive); compaction rebuilds the lists
//     tombstone-free against the renumbered rows.
//   - live[side][attr][val] is the exact live-row count, maintained
//     incrementally on every AppendEdges/RemoveEdges.
//
// Null values are never indexed: descriptors cannot constrain on null, so no
// subtree is keyed by one.
type postings struct {
	l, w, r    [][][]int32 // [attr][val] -> EArray rows (may include dead rows)
	nl, nw, nr [][]int     // [attr][val] -> live row count
}

// EnablePostings builds (or rebuilds) the posting lists for the store's
// current rows and keeps them maintained by AppendEdges/RemoveEdges from now
// on. Idempotent rebuild; O(rows × dims).
func (s *Store) EnablePostings() {
	schema := s.g.Schema()
	p := &postings{
		l: newPostingRows(schema.Node), w: newPostingRows(schema.Edge), r: newPostingRows(schema.Node),
		nl: newPostingCounts(schema.Node), nw: newPostingCounts(schema.Edge), nr: newPostingCounts(schema.Node),
	}
	s.post = p
	for row := int32(0); int(row) < len(s.ePtr); row++ {
		if !s.Alive(row) {
			continue
		}
		p.addRow(s, row)
	}
}

// PostingsEnabled reports whether the store maintains posting lists.
func (s *Store) PostingsEnabled() bool { return s.post != nil }

func newPostingRows(attrs []graph.Attribute) [][][]int32 {
	out := make([][][]int32, len(attrs))
	for a := range attrs {
		out[a] = make([][]int32, attrs[a].Domain+1)
	}
	return out
}

func newPostingCounts(attrs []graph.Attribute) [][]int {
	out := make([][]int, len(attrs))
	for a := range attrs {
		out[a] = make([]int, attrs[a].Domain+1)
	}
	return out
}

// addRow indexes one live row's values.
func (p *postings) addRow(s *Store, row int32) {
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	for a := 0; a < nv; a++ {
		if v := s.LVal(row, a); v != graph.Null {
			p.l[a][v] = append(p.l[a][v], row)
			p.nl[a][v]++
		}
		if v := s.RVal(row, a); v != graph.Null {
			p.r[a][v] = append(p.r[a][v], row)
			p.nr[a][v]++
		}
	}
	for a := 0; a < ne; a++ {
		if v := s.EVal(row, a); v != graph.Null {
			p.w[a][v] = append(p.w[a][v], row)
			p.nw[a][v]++
		}
	}
}

// removeRow decrements the live counts for a row being tombstoned. The row
// stays inside the lists (filtered by Alive on read) until compaction.
func (p *postings) removeRow(s *Store, row int32) {
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	for a := 0; a < nv; a++ {
		if v := s.LVal(row, a); v != graph.Null {
			p.nl[a][v]--
		}
		if v := s.RVal(row, a); v != graph.Null {
			p.nr[a][v]--
		}
	}
	for a := 0; a < ne; a++ {
		if v := s.EVal(row, a); v != graph.Null {
			p.nw[a][v]--
		}
	}
}

// LiveCountL returns the number of live rows whose source node carries val
// on node attribute attr — the size of the first-level LEFT partition keyed
// by (attr, val). Panics if postings are disabled.
func (s *Store) LiveCountL(attr int, val graph.Value) int { return s.post.nl[attr][val] }

// LiveCountR is LiveCountL for the destination side.
func (s *Store) LiveCountR(attr int, val graph.Value) int { return s.post.nr[attr][val] }

// LiveCountW is LiveCountL for edge attribute attr.
func (s *Store) LiveCountW(attr int, val graph.Value) int { return s.post.nw[attr][val] }

// LRows returns a fresh slice of the live rows whose source node carries val
// on node attribute attr. Panics if postings are disabled.
func (s *Store) LRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.l[attr][val], s.post.nl[attr][val])
}

// RRows is LRows for the destination side.
func (s *Store) RRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.r[attr][val], s.post.nr[attr][val])
}

// WRows is LRows for edge attribute attr.
func (s *Store) WRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.w[attr][val], s.post.nw[attr][val])
}

// filterLive copies the live rows out of a posting list.
func (s *Store) filterLive(rows []int32, live int) []int32 {
	out := make([]int32, 0, live)
	for _, row := range rows {
		if s.Alive(row) {
			out = append(out, row)
		}
	}
	if len(out) != live {
		// The live counters and the lists are maintained together; diverging
		// means a store invariant broke — fail loudly instead of mining over
		// a wrong partition.
		panic(fmt.Sprintf("store: posting list holds %d live rows, counter says %d", len(out), live))
	}
	return out
}
