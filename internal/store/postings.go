package store

import (
	"fmt"
	"math/bits"

	"grminer/internal/graph"
)

// Per-(attribute, value) posting lists: for every non-null value of every
// node attribute (on the source and destination side) and every edge
// attribute, the EArray rows carrying it. They exist for the incremental
// engines, whose per-batch scoped re-mine otherwise has to counting-sort the
// full edge set once per dimension just to recover the handful of first-level
// partitions a batch touched — the O(|E| × dims) floor of every Apply.
// With postings enabled a re-mine fetches each affected partition directly.
//
// Invariants (asserted by the store tests against a from-scratch partition
// pass after arbitrary insert/delete sequences):
//
//   - rows[side][attr][val] contains every live row whose side-value for
//     attr is val, plus possibly tombstoned rows (removals do not splice
//     lists — consumers filter through Alive); compaction rebuilds the lists
//     tombstone-free against the renumbered rows.
//   - live[side][attr][val] is the exact live-row count, maintained
//     incrementally on every AppendEdges/RemoveEdges.
//
// Null values are never indexed: descriptors cannot constrain on null, so no
// subtree is keyed by one.
//
// Alongside each list the store keeps a packed Bitmap over the row id space.
// Bitmaps are live-exact — RemoveEdges clears the bit immediately, where the
// list keeps the tombstone until compaction — so deep re-mine levels can
// intersect (attribute, value) row sets with word-wide ANDs instead of
// materialising a partition and filtering it per row.
type postings struct {
	l, w, r    [][][]int32 // [attr][val] -> EArray rows (may include dead rows)
	nl, nw, nr [][]int     // [attr][val] -> live row count
	bl, bw, br [][]Bitmap  // [attr][val] -> live rows, packed
}

// Bitmap is a packed set of EArray row ids (bit row%64 of word row/64). The
// tail is implicitly zero: a bitmap only grows to the highest row it holds.
type Bitmap []uint64

// Has reports whether row is in the set.
func (b Bitmap) Has(row int32) bool {
	w := int(row >> 6)
	return w < len(b) && b[w]&(1<<uint(row&63)) != 0
}

// Count returns the set size.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// RowsInto appends the set's rows, ascending, into dst[:0].
func (b Bitmap) RowsInto(dst []int32) []int32 {
	dst = dst[:0]
	for i, w := range b {
		base := int32(i << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// AndInto writes the intersection of a and b into dst[:0] and returns it.
func AndInto(dst, a, b Bitmap) Bitmap {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if cap(dst) < n {
		dst = make(Bitmap, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
	return dst
}

// Set returns b with row added, growing the word array as needed. Callers
// owning scratch bitmaps (the miner's partition bitmaps) build them with Set
// and undo with Clear.
func (b Bitmap) Set(row int32) Bitmap { return b.set(row) }

// Clear removes row from the set. The row's word must exist (the bit was
// previously Set).
func (b Bitmap) Clear(row int32) { b.clear(row) }

func (b Bitmap) set(row int32) Bitmap {
	w := int(row >> 6)
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << uint(row&63)
	return b
}

func (b Bitmap) clear(row int32) {
	b[row>>6] &^= 1 << uint(row&63)
}

// EnablePostings builds (or rebuilds) the posting lists for the store's
// current rows and keeps them maintained by AppendEdges/RemoveEdges from now
// on. Idempotent rebuild; O(rows × dims).
func (s *Store) EnablePostings() {
	schema := s.g.Schema()
	p := &postings{
		l: newPostingRows(schema.Node), w: newPostingRows(schema.Edge), r: newPostingRows(schema.Node),
		nl: newPostingCounts(schema.Node), nw: newPostingCounts(schema.Edge), nr: newPostingCounts(schema.Node),
		bl: newPostingBitmaps(schema.Node), bw: newPostingBitmaps(schema.Edge), br: newPostingBitmaps(schema.Node),
	}
	s.post = p
	for row := int32(0); int(row) < len(s.ePtr); row++ {
		if !s.Alive(row) {
			continue
		}
		p.addRow(s, row)
	}
}

// PostingsEnabled reports whether the store maintains posting lists.
func (s *Store) PostingsEnabled() bool { return s.post != nil }

func newPostingRows(attrs []graph.Attribute) [][][]int32 {
	out := make([][][]int32, len(attrs))
	for a := range attrs {
		out[a] = make([][]int32, attrs[a].Domain+1)
	}
	return out
}

func newPostingCounts(attrs []graph.Attribute) [][]int {
	out := make([][]int, len(attrs))
	for a := range attrs {
		out[a] = make([]int, attrs[a].Domain+1)
	}
	return out
}

func newPostingBitmaps(attrs []graph.Attribute) [][]Bitmap {
	out := make([][]Bitmap, len(attrs))
	for a := range attrs {
		out[a] = make([]Bitmap, attrs[a].Domain+1)
	}
	return out
}

// addRow indexes one live row's values.
func (p *postings) addRow(s *Store, row int32) {
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	for a := 0; a < nv; a++ {
		if v := s.LVal(row, a); v != graph.Null {
			p.l[a][v] = append(p.l[a][v], row)
			p.nl[a][v]++
			p.bl[a][v] = p.bl[a][v].set(row)
		}
		if v := s.RVal(row, a); v != graph.Null {
			p.r[a][v] = append(p.r[a][v], row)
			p.nr[a][v]++
			p.br[a][v] = p.br[a][v].set(row)
		}
	}
	for a := 0; a < ne; a++ {
		if v := s.EVal(row, a); v != graph.Null {
			p.w[a][v] = append(p.w[a][v], row)
			p.nw[a][v]++
			p.bw[a][v] = p.bw[a][v].set(row)
		}
	}
}

// removeRow decrements the live counts for a row being tombstoned. The row
// stays inside the lists (filtered by Alive on read) until compaction.
func (p *postings) removeRow(s *Store, row int32) {
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	for a := 0; a < nv; a++ {
		if v := s.LVal(row, a); v != graph.Null {
			p.nl[a][v]--
			p.bl[a][v].clear(row)
		}
		if v := s.RVal(row, a); v != graph.Null {
			p.nr[a][v]--
			p.br[a][v].clear(row)
		}
	}
	for a := 0; a < ne; a++ {
		if v := s.EVal(row, a); v != graph.Null {
			p.nw[a][v]--
			p.bw[a][v].clear(row)
		}
	}
}

// LiveCountL returns the number of live rows whose source node carries val
// on node attribute attr — the size of the first-level LEFT partition keyed
// by (attr, val). Panics if postings are disabled.
func (s *Store) LiveCountL(attr int, val graph.Value) int { return s.post.nl[attr][val] }

// LiveCountR is LiveCountL for the destination side.
func (s *Store) LiveCountR(attr int, val graph.Value) int { return s.post.nr[attr][val] }

// LiveCountW is LiveCountL for edge attribute attr.
func (s *Store) LiveCountW(attr int, val graph.Value) int { return s.post.nw[attr][val] }

// LRows returns a fresh slice of the live rows whose source node carries val
// on node attribute attr. Panics if postings are disabled.
func (s *Store) LRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.l[attr][val], s.post.nl[attr][val])
}

// RRows is LRows for the destination side.
func (s *Store) RRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.r[attr][val], s.post.nr[attr][val])
}

// WRows is LRows for edge attribute attr.
func (s *Store) WRows(attr int, val graph.Value) []int32 {
	return s.filterLive(s.post.w[attr][val], s.post.nw[attr][val])
}

// LRowsInto is LRows appending into dst[:0]; per-batch re-mine loops reuse
// one scratch slice across partitions instead of allocating each.
func (s *Store) LRowsInto(dst []int32, attr int, val graph.Value) []int32 {
	return s.filterLiveInto(dst, s.post.l[attr][val], s.post.nl[attr][val])
}

// RRowsInto is LRowsInto for the destination side.
func (s *Store) RRowsInto(dst []int32, attr int, val graph.Value) []int32 {
	return s.filterLiveInto(dst, s.post.r[attr][val], s.post.nr[attr][val])
}

// WRowsInto is LRowsInto for edge attribute attr.
func (s *Store) WRowsInto(dst []int32, attr int, val graph.Value) []int32 {
	return s.filterLiveInto(dst, s.post.w[attr][val], s.post.nw[attr][val])
}

// LBitmap returns the packed live-row set whose source node carries val on
// node attribute attr. The bitmap is live-exact (no tombstones) and owned by
// the store: callers must not mutate it, and any store mutation invalidates
// it. Panics if postings are disabled.
func (s *Store) LBitmap(attr int, val graph.Value) Bitmap { return s.post.bl[attr][val] }

// RBitmap is LBitmap for the destination side.
func (s *Store) RBitmap(attr int, val graph.Value) Bitmap { return s.post.br[attr][val] }

// WBitmap is LBitmap for edge attribute attr.
func (s *Store) WBitmap(attr int, val graph.Value) Bitmap { return s.post.bw[attr][val] }

// filterLive copies the live rows out of a posting list.
func (s *Store) filterLive(rows []int32, live int) []int32 {
	return s.filterLiveInto(make([]int32, 0, live), rows, live)
}

// filterLiveInto copies the live rows out of a posting list into dst[:0].
func (s *Store) filterLiveInto(dst []int32, rows []int32, live int) []int32 {
	dst = dst[:0]
	for _, row := range rows {
		if s.Alive(row) {
			dst = append(dst, row)
		}
	}
	if len(dst) != live {
		// The live counters and the lists are maintained together; diverging
		// means a store invariant broke — fail loudly instead of mining over
		// a wrong partition.
		panic(fmt.Sprintf("store: posting list holds %d live rows, counter says %d", len(dst), live))
	}
	return dst
}
