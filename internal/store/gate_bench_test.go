// Bench-gate microbenchmark for the posting-list layer (DESIGN.md §7): the
// cost of materialising a first-level partition and of intersecting two
// posting dimensions — the operation deep re-mine descents are built from.
package store

import (
	"sync"
	"testing"

	"grminer/internal/datagen"
	"grminer/internal/graph"
)

var (
	pgateOnce sync.Once
	pgateSt   *Store
	pgateAttr struct {
		rAttr int
		rVal  graph.Value
		lAttr int
		lVal  graph.Value
	}
)

func pgateFixture(b *testing.B) {
	b.Helper()
	pgateOnce.Do(func() {
		cfg := datagen.DefaultPokecConfig()
		cfg.Nodes = 1500
		cfg.AvgOutDegree = 6
		g := datagen.Pokec(cfg)
		pgateSt = Build(g)
		pgateSt.EnablePostings()
		// Pick the most populous (attr, val) on each side so the benchmark
		// intersects real, non-trivial partitions.
		bestR, bestL := 0, 0
		for a := 0; a < len(g.Schema().Node); a++ {
			for v := graph.Value(1); int(v) <= g.Schema().Node[a].Domain; v++ {
				if n := pgateSt.LiveCountR(a, v); n > bestR {
					bestR, pgateAttr.rAttr, pgateAttr.rVal = n, a, v
				}
				if n := pgateSt.LiveCountL(a, v); n > bestL {
					bestL, pgateAttr.lAttr, pgateAttr.lVal = n, a, v
				}
			}
		}
	})
}

// BenchmarkPostingIntersect measures computing the rows that satisfy a
// destination condition AND a source condition — the sub-partition a deeper
// re-mine level needs. The "filter" variant is the posting-list scan
// (materialise the R partition, test each row's L value); it is the
// pre-bitmap technique, kept as the measured reference.
func BenchmarkPostingIntersect(b *testing.B) {
	pgateFixture(b)
	b.Run("filter", func(b *testing.B) {
		b.ReportAllocs()
		count := 0
		for i := 0; i < b.N; i++ {
			rows := pgateSt.RRows(pgateAttr.rAttr, pgateAttr.rVal)
			count = 0
			for _, row := range rows {
				if pgateSt.LVal(row, pgateAttr.lAttr) == pgateAttr.lVal {
					count++
				}
			}
		}
		if count == 0 {
			b.Fatal("empty intersection; fixture degenerate")
		}
	})
	// The bitmap variant computes the same sub-partition by ANDing the two
	// packed live-row sets into a reused scratch buffer — the deep-descent
	// technique remineBitmaps is built from.
	b.Run("bitmap", func(b *testing.B) {
		b.ReportAllocs()
		var words Bitmap
		var rows []int32
		count := 0
		for i := 0; i < b.N; i++ {
			words = AndInto(words,
				pgateSt.RBitmap(pgateAttr.rAttr, pgateAttr.rVal),
				pgateSt.LBitmap(pgateAttr.lAttr, pgateAttr.lVal))
			rows = words.RowsInto(rows)
			count = len(rows)
		}
		if count == 0 {
			b.Fatal("empty intersection; fixture degenerate")
		}
	})
}
