// Package store implements the compact data model of Section IV-A: node and
// edge attribute information is stored separately in LArray (edge sources),
// EArray (edges, grouped by source, with pointers into RArray), and RArray
// (edge destinations), avoiding the |E| × 2 × #AttrV blow-up of the single
// table a frequent-set miner would build. The package also provides that
// single-table layout (used by baseline BL1) and the cell-count accounting
// the paper uses to compare the two.
package store

import (
	"fmt"

	"grminer/internal/graph"
	"grminer/internal/intern"
)

// Store is the three-array compact model over a graph. All per-edge
// accessors take an edge id in 0..NumEdges-1; edges are laid out in EArray
// grouped by source (the CSR layout of Figure 2), and EdgeID maps back to
// the original graph edge.
//
// The store is append-friendly: after more edges are added to the graph,
// Append brings the arrays back in sync. Appended edges form a tail segment
// of EArray (the CSR grouping of lInd covers only the Build-time segment —
// nothing in the miner depends on that grouping, only on per-edge accessors),
// and LArray/RArray grow rows for nodes whose out/in degree becomes non-zero.
//
// A store may also cover only a subset of its graph's edges (BuildSubset) —
// the per-shard layout of the sharded mining engine. Subset stores are kept
// in sync by their owner through AppendEdges with explicitly routed edge
// ids; Append's catch-up-to-the-graph semantics apply to full stores only.
type Store struct {
	g *graph.Graph

	// subset marks a store built over an explicit edge subset; ingested is
	// the high-water mark of graph edge ids synced into a full store (the
	// resume point for Append).
	subset   bool
	ingested int

	// LArray: one row per node with out-degree > 0.
	lNode []int32       // LArray row -> graph node id
	lVals []graph.Value // row-major node attribute values, len = rows * #AttrV
	lOut  []int32       // out-degree of the row's node
	lInd  []int32       // first EArray position of the row's Build-segment edges

	// EArray: one row per edge, grouped by source within the Build segment;
	// edges ingested later by Append sit in a tail segment in insertion order.
	eSrc  []int32       // EArray row -> LArray row of the source
	ePtr  []int32       // EArray row -> RArray row of the destination
	eVals []graph.Value // row-major edge attribute values
	eID   []int32       // EArray row -> original graph edge id

	// RArray: one row per node with in-degree > 0.
	rNode []int32
	rVals []graph.Value

	// lRowOf and rRowOf map a graph node id to its LArray/RArray row
	// (-1 when absent), so Append can route new edges without a rebuild.
	lRowOf []int32
	rRowOf []int32

	// dead marks tombstoned EArray rows (RemoveEdges); deadCount tracks how
	// many. Tombstones keep the remaining row ids stable and the removed
	// row's values readable until the next compaction folds them away.
	dead      []bool
	deadCount int

	// post, when non-nil (EnablePostings), holds the per-(attribute, value)
	// posting lists the incremental engines partition from.
	post *postings

	// dict, once created by Dict(), is the store's intern dictionary: the
	// dense descriptor/GR id space the engine's slice-indexed tables are
	// built over. It survives compaction untouched — interned ids are
	// derived from the schema and condition paths, never from row ids, so
	// renumbering rows cannot invalidate them (the intern property tests
	// pin this).
	dict *intern.Dict
}

// Compaction policy: fold tombstones away once they are both numerous enough
// to matter and a large enough fraction of the row space that a rebuild
// amortises. Until then RemoveEdges is O(batch × dims).
const (
	compactMinDead  = 32
	compactFraction = 4 // compact when deadCount ≥ len(rows)/compactFraction
)

// Build constructs the compact model for g, covering its live edges.
func Build(g *graph.Graph) *Store {
	var edges []int32
	if g.HasDeadEdges() {
		// Tombstoned graphs build over the explicit live id list; the common
		// append-only case keeps the allocation-free full-build fast path.
		edges = make([]int32, 0, g.NumLiveEdges())
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeAlive(e) {
				edges = append(edges, int32(e))
			}
		}
	}
	s := buildFrom(g, edges)
	s.ingested = g.NumEdges()
	return s
}

// BuildSubset constructs the compact model over the given subset of g's
// edges (graph edge ids, ascending). The store's edge rows cover exactly
// that subset — NumEdges is the subset size, and EdgeID maps rows back to
// the original graph edge ids — which is the per-shard layout of the
// sharded mining engine. Nodes inactive within the subset get no LArray or
// RArray row. Keep a subset store in sync with AppendEdges; Append is a
// no-op for it.
func BuildSubset(g *graph.Graph, edges []int32) *Store {
	if edges == nil {
		// An empty shard: nil must mean "no edges" here, never the
		// full-build sentinel buildFrom uses.
		edges = []int32{}
	}
	s := buildFrom(g, edges)
	s.subset = true
	return s
}

// buildFrom builds the arrays over an edge id list; nil means every edge
// of g (the full-build fast path, which avoids materialising an id slice).
func buildFrom(g *graph.Graph, edges []int32) *Store {
	s := &Store{g: g}
	nv := len(g.Schema().Node)
	ne := len(g.Schema().Edge)
	n := g.NumNodes()
	m := len(edges)
	if edges == nil {
		m = g.NumEdges()
	}
	edgeAt := func(i int) int {
		if edges == nil {
			return i
		}
		return int(edges[i])
	}

	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for i := 0; i < m; i++ {
		e := edgeAt(i)
		outDeg[g.Src(e)]++
		inDeg[g.Dst(e)]++
	}

	// Assign LArray and RArray rows; nodes with zero out-degree (in-degree)
	// do not appear in LArray (RArray) — Section IV-A notes this saving. The
	// node -> row maps are retained so Append can extend the arrays later.
	lRow := make([]int32, n)
	rRow := make([]int32, n)
	for i := range lRow {
		lRow[i], rRow[i] = -1, -1
	}
	for v := 0; v < n; v++ {
		if outDeg[v] > 0 {
			lRow[v] = int32(len(s.lNode))
			s.lNode = append(s.lNode, int32(v))
		}
		if inDeg[v] > 0 {
			rRow[v] = int32(len(s.rNode))
			s.rNode = append(s.rNode, int32(v))
		}
	}
	s.lRowOf, s.rRowOf = lRow, rRow
	s.lVals = make([]graph.Value, len(s.lNode)*nv)
	for row, v := range s.lNode {
		copy(s.lVals[row*nv:(row+1)*nv], g.NodeValues(int(v)))
	}
	s.rVals = make([]graph.Value, len(s.rNode)*nv)
	for row, v := range s.rNode {
		copy(s.rVals[row*nv:(row+1)*nv], g.NodeValues(int(v)))
	}

	// CSR over sources: Ind/Out per LArray row, edges scattered into EArray.
	s.lOut = make([]int32, len(s.lNode))
	s.lInd = make([]int32, len(s.lNode))
	for row, v := range s.lNode {
		s.lOut[row] = outDeg[v]
	}
	var off int32
	for row := range s.lInd {
		s.lInd[row] = off
		off += s.lOut[row]
	}
	s.eSrc = make([]int32, m)
	s.ePtr = make([]int32, m)
	s.eID = make([]int32, m)
	if ne > 0 {
		s.eVals = make([]graph.Value, m*ne)
	}
	cursor := make([]int32, len(s.lNode))
	copy(cursor, s.lInd)
	for i := 0; i < m; i++ {
		e := edgeAt(i)
		src := g.Src(e)
		row := lRow[src]
		pos := cursor[row]
		cursor[row]++
		s.eSrc[pos] = row
		s.ePtr[pos] = rRow[g.Dst(e)]
		s.eID[pos] = int32(e)
		if ne > 0 {
			copy(s.eVals[int(pos)*ne:(int(pos)+1)*ne], g.EdgeValues(e))
		}
	}
	return s
}

// Append brings a full store in sync with its graph after edges were
// appended to the graph (node attribute values must not have changed). New
// edges are appended to EArray as a tail segment in graph-edge order; nodes
// appearing as a source (destination) for the first time gain an LArray
// (RArray) row. It returns the EArray row ids of the newly ingested edges.
// On a subset store Append is a no-op (the owner routes edges explicitly
// with AppendEdges). Append is not safe to call concurrently with readers.
func (s *Store) Append() []int32 {
	if s.subset {
		return nil
	}
	total := s.g.NumEdges()
	if s.ingested >= total {
		return nil
	}
	ids := make([]int32, 0, total-s.ingested)
	for e := s.ingested; e < total; e++ {
		if s.g.EdgeAlive(e) {
			ids = append(ids, int32(e))
		}
	}
	rows := s.AppendEdges(ids)
	// Dead ids in the scanned range were skipped, not ingested; advance the
	// high-water mark past them so they are not rescanned forever.
	s.ingested = total
	return rows
}

// AppendEdges ingests the given graph edges (which must already exist in the
// graph and not yet be in the store) as a tail segment of EArray, growing
// LArray/RArray rows for newly active nodes. It is how a subset store — one
// shard of a partitioned edge set — receives the edges routed to it. It
// returns the EArray row ids of the ingested edges, in input order. Not safe
// to call concurrently with readers.
func (s *Store) AppendEdges(edges []int32) []int32 {
	ne := len(s.g.Schema().Edge)
	ids := make([]int32, 0, len(edges))
	for _, e32 := range edges {
		e := int(e32)
		src, dst := s.g.Src(e), s.g.Dst(e)
		lRow := s.lRowOf[src]
		if lRow < 0 {
			lRow = int32(len(s.lNode))
			s.lRowOf[src] = lRow
			s.lNode = append(s.lNode, int32(src))
			s.lVals = append(s.lVals, s.g.NodeValues(src)...)
			s.lOut = append(s.lOut, 0)
			// The new row's edges live in the tail segment, outside the
			// Build-time CSR; its lInd is the segment start as a best effort.
			s.lInd = append(s.lInd, int32(len(s.ePtr)))
		}
		s.lOut[lRow]++
		rRow := s.rRowOf[dst]
		if rRow < 0 {
			rRow = int32(len(s.rNode))
			s.rRowOf[dst] = rRow
			s.rNode = append(s.rNode, int32(dst))
			s.rVals = append(s.rVals, s.g.NodeValues(dst)...)
		}
		row := int32(len(s.ePtr))
		s.eSrc = append(s.eSrc, lRow)
		s.ePtr = append(s.ePtr, rRow)
		s.eID = append(s.eID, e32)
		if ne > 0 {
			s.eVals = append(s.eVals, s.g.EdgeValues(e)...)
		}
		if s.dead != nil {
			s.dead = append(s.dead, false)
		}
		if s.post != nil {
			s.post.addRow(s, row)
		}
		if e >= s.ingested {
			s.ingested = e + 1
		}
		ids = append(ids, row)
	}
	return ids
}

// RemoveEdges tombstones the given EArray rows (which must be distinct and
// alive). The removed rows' values stay readable — callers delta-recounting
// against a deletion read them first — until the dead fraction crosses the
// compaction threshold, at which point the arrays are rebuilt over the
// surviving rows and ALL ROW IDS ARE RENUMBERED: treat previously returned
// row ids as invalid after any RemoveEdges call. Posting lists and live
// counts are maintained either way. Not safe to call concurrently with
// readers.
func (s *Store) RemoveEdges(rows []int32) error {
	for _, row := range rows {
		if row < 0 || int(row) >= len(s.ePtr) {
			return fmt.Errorf("store: remove: row %d out of range [0, %d)", row, len(s.ePtr))
		}
		if s.dead != nil && s.dead[row] {
			return fmt.Errorf("store: remove: row %d already dead", row)
		}
		if s.dead == nil {
			s.dead = make([]bool, len(s.ePtr))
		}
		s.dead[row] = true
		s.deadCount++
		if lRow := s.eSrc[row]; s.lOut[lRow] > 0 {
			s.lOut[lRow]--
		}
		if s.post != nil {
			s.post.removeRow(s, row)
		}
	}
	if s.deadCount >= compactMinDead && s.deadCount*compactFraction >= len(s.ePtr) {
		s.compact()
	}
	return nil
}

// compact rebuilds the arrays over the surviving rows, dropping tombstones
// and renumbering rows; subset/high-water bookkeeping and posting lists are
// preserved (lists are rebuilt against the new row ids).
func (s *Store) compact() {
	live := make([]int32, 0, s.NumEdges())
	for row := range s.ePtr {
		if !s.dead[row] {
			live = append(live, s.eID[row])
		}
	}
	n := buildFrom(s.g, live)
	n.subset = s.subset
	n.ingested = s.ingested
	n.dict = s.dict
	if s.post != nil {
		n.EnablePostings()
	}
	*s = *n
}

// Dict returns the store's intern dictionary, creating it on first use. The
// dictionary is owned by the store's exclusive writer (the incremental
// engine, or a sequential mine) — it is not safe for concurrent use, so
// parallel mine workers must intern through private dictionaries instead
// (pair ids still agree; see intern.Dict).
func (s *Store) Dict() *intern.Dict {
	if s.dict == nil {
		s.dict = intern.NewDict(intern.NewLayout(s.g.Schema()))
	}
	return s.dict
}

// Graph returns the underlying graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// NumEdges returns |E| over the store: the number of live EArray rows.
func (s *Store) NumEdges() int { return len(s.ePtr) - s.deadCount }

// NumRows returns the EArray row id space bound (live + tombstoned rows).
// Iterate 0..NumRows-1 and skip !Alive rows to visit the live edge set.
func (s *Store) NumRows() int { return len(s.ePtr) }

// Alive reports whether EArray row e has not been tombstoned.
func (s *Store) Alive(e int32) bool { return s.dead == nil || !s.dead[e] }

// NumLRows and NumRRows return the LArray and RArray row counts.
func (s *Store) NumLRows() int { return len(s.lNode) }

// NumRRows returns the RArray row count.
func (s *Store) NumRRows() int { return len(s.rNode) }

// LVal returns the source-node value of edge e for node attribute attr.
func (s *Store) LVal(e int32, attr int) graph.Value {
	nv := len(s.g.Schema().Node)
	return s.lVals[int(s.eSrc[e])*nv+attr]
}

// EVal returns edge e's value for edge attribute attr.
func (s *Store) EVal(e int32, attr int) graph.Value {
	ne := len(s.g.Schema().Edge)
	return s.eVals[int(e)*ne+attr]
}

// RVal returns the destination-node value of edge e for node attribute attr.
func (s *Store) RVal(e int32, attr int) graph.Value {
	nv := len(s.g.Schema().Node)
	return s.rVals[int(s.ePtr[e])*nv+attr]
}

// EdgeID maps an EArray row back to the original graph edge id.
func (s *Store) EdgeID(e int32) int32 { return s.eID[e] }

// SrcNode and DstNode return the endpoints (graph node ids) of EArray row e.
func (s *Store) SrcNode(e int32) int32 { return s.lNode[s.eSrc[e]] }

// DstNode returns the destination graph node id of EArray row e.
func (s *Store) DstNode(e int32) int32 { return s.rNode[s.ePtr[e]] }

// AllEdges returns a fresh slice of every live EArray row id, the root
// partition for the miner.
func (s *Store) AllEdges() []int32 {
	ids := make([]int32, 0, s.NumEdges())
	for i := 0; i < len(s.ePtr); i++ {
		if s.Alive(int32(i)) {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// AllEdgesInto is AllEdges appending into dst[:0], letting per-batch callers
// reuse one scratch slice instead of allocating the root partition each time.
func (s *Store) AllEdgesInto(dst []int32) []int32 {
	dst = dst[:0]
	for i := 0; i < len(s.ePtr); i++ {
		if s.Alive(int32(i)) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// Validate cross-checks the store against its graph; used by tests and as a
// guard after Build on huge inputs. A subset store validates only the edges
// it covers.
func (s *Store) Validate() error {
	if !s.subset && s.NumEdges() != s.g.NumLiveEdges() {
		return fmt.Errorf("store: %d live EArray rows for %d live edges", s.NumEdges(), s.g.NumLiveEdges())
	}
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	for e := int32(0); int(e) < s.NumRows(); e++ {
		if !s.Alive(e) {
			continue
		}
		orig := int(s.eID[e])
		if int(s.SrcNode(e)) != s.g.Src(orig) || int(s.DstNode(e)) != s.g.Dst(orig) {
			return fmt.Errorf("store: edge %d endpoints mismatch", e)
		}
		for a := 0; a < nv; a++ {
			if s.LVal(e, a) != s.g.NodeValue(s.g.Src(orig), a) {
				return fmt.Errorf("store: edge %d LVal attr %d mismatch", e, a)
			}
			if s.RVal(e, a) != s.g.NodeValue(s.g.Dst(orig), a) {
				return fmt.Errorf("store: edge %d RVal attr %d mismatch", e, a)
			}
		}
		for a := 0; a < ne; a++ {
			if s.EVal(e, a) != s.g.EdgeValue(orig, a) {
				return fmt.Errorf("store: edge %d EVal attr %d mismatch", e, a)
			}
		}
	}
	return nil
}

// CompactSizeCells returns the cell count of the compact model per Section
// IV-A: |V|×(#AttrV+2) + |E|×(#AttrE+1) + |V|×#AttrV, with |V| counted as
// the actual LArray/RArray row counts (zero-degree nodes are dropped).
func (s *Store) CompactSizeCells() int {
	nv := len(s.g.Schema().Node)
	ne := len(s.g.Schema().Edge)
	return s.NumLRows()*(nv+2) + s.NumEdges()*(ne+1) + s.NumRRows()*nv
}

// SingleTableSizeCells returns the cell count of the single-table layout the
// paper's baseline BL1 materialises: |E| × (2×#AttrV + #AttrE).
func SingleTableSizeCells(g *graph.Graph) int {
	return g.NumLiveEdges() * (2*len(g.Schema().Node) + len(g.Schema().Edge))
}

// FlatTable is the single-table representation: one row per edge holding the
// source node attributes, the edge attributes, and the destination node
// attributes — the layout whose |E|×2×#AttrV term the compact model avoids.
// Baseline BL1 mines over this table.
type FlatTable struct {
	NodeAttrs int
	EdgeAttrs int
	Width     int
	Rows      int
	vals      []graph.Value
}

// Flatten materialises the single table for g (live edges only).
func Flatten(g *graph.Graph) *FlatTable {
	nv := len(g.Schema().Node)
	ne := len(g.Schema().Edge)
	t := &FlatTable{
		NodeAttrs: nv,
		EdgeAttrs: ne,
		Width:     2*nv + ne,
		Rows:      g.NumLiveEdges(),
	}
	t.vals = make([]graph.Value, t.Rows*t.Width)
	i := 0
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		row := t.vals[i*t.Width : (i+1)*t.Width]
		copy(row[:nv], g.NodeValues(g.Src(e)))
		copy(row[nv:nv+ne], g.EdgeValues(e))
		copy(row[nv+ne:], g.NodeValues(g.Dst(e)))
		i++
	}
	return t
}

// LCol, WCol, RCol map attribute indices to flat-table column indices.
func (t *FlatTable) LCol(attr int) int { return attr }

// WCol maps an edge attribute to its flat-table column.
func (t *FlatTable) WCol(attr int) int { return t.NodeAttrs + attr }

// RCol maps a destination node attribute to its flat-table column.
func (t *FlatTable) RCol(attr int) int { return t.NodeAttrs + t.EdgeAttrs + attr }

// Value returns the value at (row, col).
func (t *FlatTable) Value(row int32, col int) graph.Value {
	return t.vals[int(row)*t.Width+col]
}
