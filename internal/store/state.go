package store

import (
	"fmt"

	"grminer/internal/graph"
	"grminer/internal/intern"
)

// State is a Store's serializable snapshot: every array of the compact
// model, the tombstone set, the subset/high-water bookkeeping, whether
// posting lists were enabled, and the intern dictionary's id assignments.
// It is the store half of a worker checkpoint blob (DESIGN.md §9) — the
// graph itself is not included (the checkpoint layer reconstructs it from
// the spec plus the edge log) — and round-trips bit-identically:
// FromState(g, s.State()) yields a store whose arrays, row ids, tombstones,
// and interned ids all equal the original's.
//
// The slices alias the live store; State is a snapshot to serialize (gob
// copies), not a stable deep copy.
type State struct {
	Subset   bool
	Ingested int

	LNode []int32
	LVals []graph.Value
	LOut  []int32
	LInd  []int32

	ESrc  []int32
	EPtr  []int32
	EVals []graph.Value
	EID   []int32

	RNode []int32
	RVals []graph.Value

	LRowOf []int32
	RRowOf []int32

	Dead      []bool
	DeadCount int

	// Postings records that EnablePostings had run; the restoring side
	// rebuilds the lists from the rows (they are a pure function of them)
	// instead of shipping them.
	Postings bool

	// HasDict guards Dict: a store whose Dict() was never called restores
	// without one, so first use still lazily creates it.
	HasDict bool
	Dict    intern.DictState
}

// State snapshots the store for serialization.
func (s *Store) State() State {
	st := State{
		Subset:    s.subset,
		Ingested:  s.ingested,
		LNode:     s.lNode,
		LVals:     s.lVals,
		LOut:      s.lOut,
		LInd:      s.lInd,
		ESrc:      s.eSrc,
		EPtr:      s.ePtr,
		EVals:     s.eVals,
		EID:       s.eID,
		RNode:     s.rNode,
		RVals:     s.rVals,
		LRowOf:    s.lRowOf,
		RRowOf:    s.rRowOf,
		Dead:      s.dead,
		DeadCount: s.deadCount,
		Postings:  s.post != nil,
		HasDict:   s.dict != nil,
	}
	if s.dict != nil {
		st.Dict = s.dict.State()
	}
	return st
}

// FromState reconstructs a store over g from a snapshot. g must be the same
// graph the snapshot was taken against (same schema, nodes, and edge ids);
// only cheap structural consistency is checked here — callers wanting the
// full cross-check run Validate on the result.
func FromState(g *graph.Graph, st State) (*Store, error) {
	rows := len(st.EID)
	if len(st.ESrc) != rows || len(st.EPtr) != rows {
		return nil, fmt.Errorf("store: state: EArray columns disagree (%d ids, %d srcs, %d ptrs)",
			rows, len(st.ESrc), len(st.EPtr))
	}
	if st.Dead != nil && len(st.Dead) != rows {
		return nil, fmt.Errorf("store: state: %d tombstone marks for %d rows", len(st.Dead), rows)
	}
	if st.DeadCount > rows || st.DeadCount < 0 {
		return nil, fmt.Errorf("store: state: dead count %d out of range for %d rows", st.DeadCount, rows)
	}
	n := g.NumNodes()
	if len(st.LRowOf) != n || len(st.RRowOf) != n {
		return nil, fmt.Errorf("store: state: row maps cover %d/%d nodes, graph has %d",
			len(st.LRowOf), len(st.RRowOf), n)
	}
	s := &Store{
		g:         g,
		subset:    st.Subset,
		ingested:  st.Ingested,
		lNode:     st.LNode,
		lVals:     st.LVals,
		lOut:      st.LOut,
		lInd:      st.LInd,
		eSrc:      st.ESrc,
		ePtr:      st.EPtr,
		eVals:     st.EVals,
		eID:       st.EID,
		rNode:     st.RNode,
		rVals:     st.RVals,
		lRowOf:    st.LRowOf,
		rRowOf:    st.RRowOf,
		dead:      st.Dead,
		deadCount: st.DeadCount,
	}
	if st.HasDict {
		s.dict = intern.FromState(intern.NewLayout(g.Schema()), st.Dict)
	}
	if st.Postings {
		s.EnablePostings()
	}
	return s, nil
}
