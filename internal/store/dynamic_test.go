package store

import (
	"math/rand"
	"testing"

	"grminer/internal/graph"
)

// dynSchema builds a small mixed schema for the dynamic store tests.
func dynSchema(t *testing.T) *graph.Schema {
	t.Helper()
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: true},
			{Name: "B", Domain: 4},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// TestAppendHighWaterAfterBuildSubset pins the high-water-mark semantics of
// Append and AppendEdges:
//
//   - Append on a subset store is a no-op — the shard owner routes edges
//     explicitly with AppendEdges, and catching up to the graph would pull
//     in edges belonging to other shards.
//   - AppendEdges advances the full-store high-water mark to max(id)+1 of
//     the ingested edges: it is a MARK, not a set. A caller that skips an
//     intermediate graph edge id has taken ownership of routing, and a
//     later Append will NOT backfill the skipped id.
func TestAppendHighWaterAfterBuildSubset(t *testing.T) {
	schema := dynSchema(t)
	g := graph.MustNew(schema, 6)
	for v := 0; v < 6; v++ {
		if err := g.SetNodeValues(v, graph.Value(1+v%3), graph.Value(1+v%4)); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 8; e++ {
		if _, err := g.AddEdge(e%6, (e+1)%6, graph.Value(1+e%2)); err != nil {
			t.Fatal(err)
		}
	}

	sub := BuildSubset(g, []int32{0, 2, 4})
	if _, err := g.AddEdge(0, 5, 1); err != nil { // edge 8
		t.Fatal(err)
	}
	if rows := sub.Append(); rows != nil {
		t.Fatalf("Append on a subset store ingested %v", rows)
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("subset store grew to %d edges", sub.NumEdges())
	}
	// Explicit routing still works and keeps the subset coherent.
	if rows := sub.AppendEdges([]int32{8}); len(rows) != 1 {
		t.Fatalf("AppendEdges ingested %v", rows)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}

	full := Build(g)                              // 9 edges
	if _, err := g.AddEdge(1, 2, 1); err != nil { // edge 9
		t.Fatal(err)
	}
	if _, err := g.AddEdge(2, 3, 2); err != nil { // edge 10
		t.Fatal(err)
	}
	// Explicitly ingest only edge 10: the mark advances past 9.
	if rows := full.AppendEdges([]int32{10}); len(rows) != 1 {
		t.Fatalf("AppendEdges ingested %v", rows)
	}
	if rows := full.Append(); rows != nil {
		t.Fatalf("Append backfilled past the high-water mark: %v", rows)
	}
	if full.NumEdges() != 10 {
		t.Fatalf("full store holds %d edges, want 10 (edge 9 skipped by contract)", full.NumEdges())
	}
	// New appends beyond the mark flow normally again.
	if _, err := g.AddEdge(3, 4, 1); err != nil { // edge 11
		t.Fatal(err)
	}
	if rows := full.Append(); len(rows) != 1 {
		t.Fatalf("Append after the mark ingested %v", rows)
	}
}

// scanCounts recomputes one (side, attr) histogram of live rows by brute
// force — the from-scratch partition pass the posting lists must match.
func scanCounts(s *Store, side byte, attr, domain int) []int {
	counts := make([]int, domain+1)
	for e := int32(0); int(e) < s.NumRows(); e++ {
		if !s.Alive(e) {
			continue
		}
		var v graph.Value
		switch side {
		case 'L':
			v = s.LVal(e, attr)
		case 'R':
			v = s.RVal(e, attr)
		case 'W':
			v = s.EVal(e, attr)
		}
		counts[v]++
	}
	return counts
}

// assertPostingsMatchScan checks every posting list, live counter, and packed
// bitmap against the brute-force partition pass. The bitmap must be
// live-exact (unlike the lists, which may carry tombstones): its Count, its
// enumerated rows, and per-row Has must all agree with the filtered list.
func assertPostingsMatchScan(t *testing.T, s *Store) {
	t.Helper()
	var scratch []int32
	checkBitmap := func(name string, a int, v graph.Value, bm Bitmap, rows []int32) {
		t.Helper()
		if got := bm.Count(); got != len(rows) {
			t.Fatalf("%s(%d,%d) bitmap Count = %d, list has %d live rows", name, a, v, got, len(rows))
		}
		scratch = bm.RowsInto(scratch)
		if len(scratch) != len(rows) {
			t.Fatalf("%s(%d,%d) bitmap enumerates %d rows, list has %d", name, a, v, len(scratch), len(rows))
		}
		for i, row := range rows {
			if scratch[i] != row {
				t.Fatalf("%s(%d,%d) bitmap row %d = %d, list says %d", name, a, v, i, scratch[i], row)
			}
			if !bm.Has(row) {
				t.Fatalf("%s(%d,%d) bitmap misses live row %d", name, a, v, row)
			}
		}
	}
	schema := s.Graph().Schema()
	for a := range schema.Node {
		wantL := scanCounts(s, 'L', a, schema.Node[a].Domain)
		wantR := scanCounts(s, 'R', a, schema.Node[a].Domain)
		for v := graph.Value(1); int(v) <= schema.Node[a].Domain; v++ {
			if got := s.LiveCountL(a, v); got != wantL[v] {
				t.Fatalf("LiveCountL(%d,%d) = %d, scan says %d", a, v, got, wantL[v])
			}
			lRows := s.LRows(a, v)
			if got := len(lRows); got != wantL[v] {
				t.Fatalf("LRows(%d,%d) holds %d rows, scan says %d", a, v, got, wantL[v])
			}
			checkBitmap("LBitmap", a, v, s.LBitmap(a, v), lRows)
			if got := s.LiveCountR(a, v); got != wantR[v] {
				t.Fatalf("LiveCountR(%d,%d) = %d, scan says %d", a, v, got, wantR[v])
			}
			rRows := s.RRows(a, v)
			if got := len(rRows); got != wantR[v] {
				t.Fatalf("RRows(%d,%d) holds %d rows, scan says %d", a, v, got, wantR[v])
			}
			checkBitmap("RBitmap", a, v, s.RBitmap(a, v), rRows)
		}
	}
	for a := range schema.Edge {
		wantW := scanCounts(s, 'W', a, schema.Edge[a].Domain)
		for v := graph.Value(1); int(v) <= schema.Edge[a].Domain; v++ {
			if got := s.LiveCountW(a, v); got != wantW[v] {
				t.Fatalf("LiveCountW(%d,%d) = %d, scan says %d", a, v, got, wantW[v])
			}
			wRows := s.WRows(a, v)
			if got := len(wRows); got != wantW[v] {
				t.Fatalf("WRows(%d,%d) holds %d rows, scan says %d", a, v, got, wantW[v])
			}
			checkBitmap("WBitmap", a, v, s.WBitmap(a, v), wRows)
			if got := s.WRowsInto(scratch, a, v); len(got) != wantW[v] {
				t.Fatalf("WRowsInto(%d,%d) holds %d rows, scan says %d", a, v, len(got), wantW[v])
			}
		}
	}
}

// TestPostingListsMatchScanUnderChurn drives a randomized insert/delete
// sequence — long enough to cross the compaction threshold several times —
// and asserts after every batch that posting-list counts equal a
// from-scratch partition pass, and that the store still validates.
func TestPostingListsMatchScanUnderChurn(t *testing.T) {
	schema := dynSchema(t)
	r := rand.New(rand.NewSource(7))
	n := 10
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		if err := g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 120; e++ {
		if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	s := Build(g)
	s.EnablePostings()
	assertPostingsMatchScan(t, s)

	live := make([]int32, 0, s.NumEdges())
	live = append(live, s.AllEdges()...)
	compactions := 0
	for step := 0; step < 40; step++ {
		// Delete a random handful of live rows...
		del := make([]int32, 0, 4)
		seen := map[int32]bool{}
		for i := 0; i < 1+r.Intn(6) && len(live) > 0; i++ {
			j := r.Intn(len(live))
			row := live[j]
			if seen[row] {
				continue
			}
			seen[row] = true
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			del = append(del, row)
		}
		before := s.NumRows()
		for _, row := range del {
			if err := g.RemoveEdge(int(s.EdgeID(row))); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if err := s.RemoveEdges(del); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if s.NumRows() < before {
			compactions++
			// Rows renumbered: rebuild the live id list from scratch.
			live = append(live[:0], s.AllEdges()...)
		}
		// ...and insert a few fresh edges through the append path.
		for i := 0; i < r.Intn(5); i++ {
			if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
		live = append(live, s.Append()...)

		if err := s.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if s.NumEdges() != g.NumLiveEdges() {
			t.Fatalf("step %d: store holds %d live rows, graph %d live edges", step, s.NumEdges(), g.NumLiveEdges())
		}
		assertPostingsMatchScan(t, s)
	}
	if compactions == 0 {
		t.Error("churn never triggered a compaction — threshold untested")
	}
}

// TestRemoveEdgesErrors pins the tombstone API's failure modes: out-of-range
// rows and double deletion are loud errors, not silent corruption.
func TestRemoveEdgesErrors(t *testing.T) {
	schema := dynSchema(t)
	g := graph.MustNew(schema, 4)
	for v := 0; v < 4; v++ {
		if err := g.SetNodeValues(v, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 5; e++ {
		if _, err := g.AddEdge(e%4, (e+1)%4, 1); err != nil {
			t.Fatal(err)
		}
	}
	s := Build(g)
	if err := s.RemoveEdges([]int32{99}); err == nil {
		t.Error("out-of-range row removed")
	}
	if err := s.RemoveEdges([]int32{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveEdges([]int32{1}); err == nil {
		t.Error("double removal accepted")
	}
	if s.NumEdges() != 4 || s.NumRows() != 5 || s.Alive(1) {
		t.Errorf("tombstone bookkeeping off: live=%d rows=%d alive(1)=%v", s.NumEdges(), s.NumRows(), s.Alive(1))
	}
}

// TestBuildOverTombstonedGraph: Build on a graph with removed edges must
// cover exactly the live set (the reference mines of the dynamic oracles
// rely on this).
func TestBuildOverTombstonedGraph(t *testing.T) {
	schema := dynSchema(t)
	g := graph.MustNew(schema, 5)
	for v := 0; v < 5; v++ {
		if err := g.SetNodeValues(v, graph.Value(1+v%3), 1); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 10; e++ {
		if _, err := g.AddEdge(e%5, (e+2)%5, graph.Value(1+e%2)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []int{0, 3, 9} {
		if err := g.RemoveEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	s := Build(g)
	if s.NumEdges() != 7 {
		t.Fatalf("store covers %d edges, want 7", s.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := int32(0); int(e) < s.NumRows(); e++ {
		if !g.EdgeAlive(int(s.EdgeID(e))) {
			t.Fatalf("row %d maps to dead graph edge %d", e, s.EdgeID(e))
		}
	}
}
