package store

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/graph"
)

// churnedStore builds a store that has seen the full mutation surface a
// checkpointed shard store can accumulate: subset build, routed appends,
// tombstoning removals (below the compaction threshold so tombstones are
// actually present in the snapshot), posting lists, and an intern
// dictionary with descriptors and GRs interned.
func churnedStore(t *testing.T) (*graph.Graph, *Store) {
	t.Helper()
	schema := dynSchema(t)
	rng := rand.New(rand.NewSource(7))
	g := graph.MustNew(schema, 12)
	for v := 0; v < 12; v++ {
		if err := g.SetNodeValues(v, graph.Value(1+v%3), graph.Value(1+v%4)); err != nil {
			t.Fatal(err)
		}
	}
	var all []int32
	for e := 0; e < 40; e++ {
		id, err := g.AddEdge(rng.Intn(12), rng.Intn(12), graph.Value(1+e%2))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, int32(id))
	}
	// A shard-shaped subset: even edge ids at build time, odd ids routed in
	// later so the store has a tail segment beyond the CSR.
	var seed, tail []int32
	for _, id := range all {
		if id%2 == 0 {
			seed = append(seed, id)
		} else {
			tail = append(tail, id)
		}
	}
	s := BuildSubset(g, seed)
	s.EnablePostings()
	s.AppendEdges(tail)
	if err := s.RemoveEdges([]int32{3, 11, 26}); err != nil {
		t.Fatal(err)
	}
	if s.deadCount != 3 {
		t.Fatalf("compaction fired early (dead=%d); the test wants live tombstones", s.deadCount)
	}
	// Intern through the dictionary so its state is non-trivial.
	d := s.Dict()
	for _, g := range internedGRs() {
		d.GR(g)
	}
	return g, s
}

// internedGRs is the fixture rule set churnedStore interns — and the round
// trip re-interns to prove the restored dictionary hands out known ids.
func internedGRs() []gr.GR {
	return []gr.GR{
		{L: gr.D(0, 1), W: gr.D(0, 2), R: gr.D(1, 3)},
		{L: gr.D(0, 2, 1, 1), W: nil, R: gr.D(0, 1)},
		{L: gr.D(1, 4), W: gr.D(0, 1), R: gr.D(0, 2, 1, 2)},
	}
}

// TestStateRoundTrip pins the checkpoint contract: a store with tombstones,
// a tail segment, posting lists, and a populated intern dictionary survives
// State -> gob -> FromState bit-identically (same arrays, same row ids, same
// interned ids), and the restored posting lists match a from-scratch scan.
func TestStateRoundTrip(t *testing.T) {
	g, s := churnedStore(t)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.State()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var st State
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	r, err := FromState(g, st)
	if err != nil {
		t.Fatalf("FromState: %v", err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}

	// Bit-identical arrays and bookkeeping: compare snapshots field by field
	// (the snapshot covers every persisted field, so this is exhaustive).
	want, got := s.State(), r.State()
	if !reflect.DeepEqual(normalizeState(want), normalizeState(got)) {
		t.Fatalf("restored state differs:\n got %+v\nwant %+v", got, want)
	}
	if !r.PostingsEnabled() {
		t.Fatal("postings flag lost")
	}
	assertPostingsMatchScan(t, r)

	// The restored dictionary hands out the same ids for the same inputs:
	// re-interning the fixture rules must not mint new ids, and each rule
	// must land on the id the original dictionary assigned it.
	if r.Dict().NumDescs() != s.Dict().NumDescs() || r.Dict().NumGRs() != s.Dict().NumGRs() {
		t.Fatalf("dict id spaces differ: descs %d/%d, grs %d/%d",
			r.Dict().NumDescs(), s.Dict().NumDescs(), r.Dict().NumGRs(), s.Dict().NumGRs())
	}
	for _, rule := range internedGRs() {
		if got, want := r.Dict().GR(rule), s.Dict().GR(rule); got != want {
			t.Fatalf("rule %v interned as %d after restore, was %d", rule, got, want)
		}
	}
	if r.Dict().NumGRs() != s.Dict().NumGRs() {
		t.Fatal("re-interning known rules minted fresh ids after restore")
	}

	// The restored store keeps working: routed appends and removals behave,
	// and the high-water mark carried over.
	if r.ingested != s.ingested {
		t.Fatalf("high-water mark %d, want %d", r.ingested, s.ingested)
	}
	id, err := g.AddEdge(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows := r.AppendEdges([]int32{int32(id)}); len(rows) != 1 {
		t.Fatalf("post-restore AppendEdges ingested %v", rows)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("post-restore mutation broke the store: %v", err)
	}
}

// normalizeState maps empty slices/maps to nil so a gob round trip (which
// collapses empty to nil) compares equal to the live snapshot.
func normalizeState(st State) State {
	if len(st.EVals) == 0 {
		st.EVals = nil
	}
	if len(st.Dead) == 0 {
		st.Dead = nil
	}
	if len(st.Dict.Trie) == 0 {
		st.Dict.Trie = nil
	}
	if len(st.Dict.GRs) == 0 {
		st.Dict.GRs = nil
	}
	return st
}

// TestFromStateRejectsCorruptSnapshots pins the structural checks: a blob
// whose arrays disagree must be refused, not installed.
func TestFromStateRejectsCorruptSnapshots(t *testing.T) {
	g, s := churnedStore(t)
	base := s.State()

	bad := base
	bad.ESrc = bad.ESrc[:len(bad.ESrc)-1]
	if _, err := FromState(g, bad); err == nil {
		t.Error("truncated ESrc accepted")
	}
	bad = base
	bad.Dead = bad.Dead[:2]
	if _, err := FromState(g, bad); err == nil {
		t.Error("short tombstone array accepted")
	}
	bad = base
	bad.DeadCount = len(bad.EID) + 1
	if _, err := FromState(g, bad); err == nil {
		t.Error("impossible dead count accepted")
	}
	bad = base
	bad.LRowOf = bad.LRowOf[:1]
	if _, err := FromState(g, bad); err == nil {
		t.Error("short node row map accepted")
	}
}
