// Package wire extracts and compares the gob wire schema of structs
// annotated "grlint:wire vN". It is the single source of truth shared by
// the wirecompat analyzer, the grlint -update-wire regenerator, and
// internal/rpc's golden regression test, so all three agree on what "the
// schema changed" means: the ordered list of exported field declarations
// (name + declared type) per annotated struct, plus the struct's version
// marker.
package wire

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"grminer/internal/lint/analysis"
)

// Struct is one wire struct's schema: the version its marker declares and
// its field declarations in source order ("Name Type").
type Struct struct {
	Version int      `json:"version"`
	Fields  []string `json:"fields"`
}

// Schema maps "pkgpath.StructName" to its wire schema. JSON-marshalling a
// map keeps keys sorted, so the snapshot diffs cleanly in review.
type Schema map[string]Struct

// Decl is one annotated struct found in source, with enough position info
// for diagnostics.
type Decl struct {
	Key     string // pkgpath.Name
	Name    string
	Pos     token.Pos
	Struct  Struct
	BadMark string // non-empty when the version marker is malformed
	Fields  *ast.FieldList
}

var versionRE = regexp.MustCompile(`^v(\d+)$`)

// FromFiles extracts every grlint:wire-annotated struct declared in the
// files, keyed under pkgPath.
func FromFiles(files []*ast.File, pkgPath string) []Decl {
	return FromFilesDirective(files, pkgPath, "wire", false)
}

// FromFilesDirective is FromFiles for any grlint:<directive> vN struct
// marker. withTags additionally records each field's raw struct tag — the
// JSON API snapshot needs it because a renamed json tag changes the
// response shape even when the Go declaration does not (gob, by contrast,
// ignores tags).
func FromFilesDirective(files []*ast.File, pkgPath, directive string, withTags bool) []Decl {
	var decls []Decl
	for _, f := range files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				args, ok := analysis.DirectiveArgs(doc, directive)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				decl := Decl{
					Key:    pkgPath + "." + ts.Name.Name,
					Name:   ts.Name.Name,
					Pos:    ts.Pos(),
					Fields: st.Fields,
				}
				if m := versionRE.FindStringSubmatch(strings.TrimSpace(args)); m != nil {
					fmt.Sscanf(m[1], "%d", &decl.Struct.Version)
				} else {
					decl.BadMark = args
				}
				decl.Struct.Fields = fieldStrings(st.Fields, withTags)
				decls = append(decls, decl)
			}
		}
	}
	return decls
}

// fieldStrings renders the field declarations: one entry per name (gob
// addresses fields by name), embedded fields by their type alone.
func fieldStrings(fl *ast.FieldList, withTags bool) []string {
	var out []string
	for _, f := range fl.List {
		typ := types.ExprString(f.Type)
		if withTags && f.Tag != nil {
			typ += " " + f.Tag.Value
		}
		if len(f.Names) == 0 {
			out = append(out, typ)
			continue
		}
		for _, name := range f.Names {
			out = append(out, name.Name+" "+typ)
		}
	}
	return out
}

// FromDir parses one package directory (tests excluded) and extracts its
// annotated structs keyed under pkgPath. Used by the golden test, which has
// source on disk but no loaded packages.
func FromDir(dir, pkgPath string) ([]Decl, error) {
	return FromDirDirective(dir, pkgPath, "wire", false)
}

// FromDirDirective is FromDir for any grlint:<directive> marker.
func FromDirDirective(dir, pkgPath, directive string, withTags bool) ([]Decl, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var decls []Decl
	var names []string
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var files []*ast.File
		var fnames []string
		for fn := range pkgs[name].Files {
			fnames = append(fnames, fn)
		}
		sort.Strings(fnames)
		for _, fn := range fnames {
			files = append(files, pkgs[name].Files[fn])
		}
		decls = append(decls, FromFilesDirective(files, pkgPath, directive, withTags)...)
	}
	return decls, nil
}

// ToSchema folds decls into a Schema.
func ToSchema(decls []Decl) Schema {
	s := make(Schema, len(decls))
	for _, d := range decls {
		s[d.Key] = d.Struct
	}
	return s
}

// Load reads a snapshot; a missing file returns an empty schema and
// os.ErrNotExist.
func Load(path string) (Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Schema{}, err
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// Save writes the snapshot with a trailing newline, stable for diffs.
func Save(path string, s Schema) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FieldDiff renders a readable one-struct field diff (old → new), used in
// both the analyzer message and the golden test failure.
func FieldDiff(old, new []string) string {
	oldSet := make(map[string]bool, len(old))
	for _, f := range old {
		oldSet[f] = true
	}
	newSet := make(map[string]bool, len(new))
	for _, f := range new {
		newSet[f] = true
	}
	var parts []string
	for _, f := range new {
		if !oldSet[f] {
			parts = append(parts, "+{"+f+"}")
		}
	}
	for _, f := range old {
		if !newSet[f] {
			parts = append(parts, "-{"+f+"}")
		}
	}
	if len(parts) == 0 {
		return "field order changed"
	}
	return strings.Join(parts, " ")
}

// Diff renders a full-schema diff for the golden test: one line per
// changed struct, empty when the schemas agree.
func Diff(golden, current Schema) string {
	var keys []string
	seen := make(map[string]bool)
	for k := range golden {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range current {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var lines []string
	for _, k := range keys {
		g, inG := golden[k]
		c, inC := current[k]
		switch {
		case !inG:
			lines = append(lines, fmt.Sprintf("  %s: new wire struct (v%d)", k, c.Version))
		case !inC:
			lines = append(lines, fmt.Sprintf("  %s: removed from source (was v%d)", k, g.Version))
		case !equal(g.Fields, c.Fields) && g.Version == c.Version:
			lines = append(lines, fmt.Sprintf("  %s: fields changed WITHOUT a version bump (still v%d): %s",
				k, c.Version, FieldDiff(g.Fields, c.Fields)))
		case !equal(g.Fields, c.Fields):
			lines = append(lines, fmt.Sprintf("  %s: fields changed (v%d → v%d): %s",
				k, g.Version, c.Version, FieldDiff(g.Fields, c.Fields)))
		case g.Version != c.Version:
			lines = append(lines, fmt.Sprintf("  %s: version marker v%d → v%d with identical fields", k, g.Version, c.Version))
		}
	}
	return strings.Join(lines, "\n")
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SnapshotName is the checked-in snapshot's path relative to the module
// root; the analyzer, the regenerator, and the golden test all resolve it
// through here.
const SnapshotName = "internal/rpc/wire_schema.json"

// FindSnapshot walks up from dir to the module root (go.mod) and returns
// the snapshot path.
func FindSnapshot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, filepath.FromSlash(SnapshotName)), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
