// Package a is the atomicfloor fixture: mixed good and bad accesses to
// grlint:atomic fields of both shapes (atomic struct types and plain words
// driven through atomic package functions).
package a

import "sync/atomic"

type floor struct {
	// bits holds float64 bits of the shared pruning floor.
	bits atomic.Uint64 // grlint:atomic
	// raw is a plain word accessed via atomic package functions.
	// grlint:atomic
	raw uint64
	// plain is not annotated; anything goes.
	plain uint64
}

func good(f *floor) uint64 {
	f.bits.Store(1)
	if f.bits.CompareAndSwap(1, 2) {
		atomic.AddUint64(&f.raw, 1)
	}
	_ = atomic.LoadUint64(&f.raw)
	store := f.bits.Store // method value, still atomic-mediated
	store(3)
	f.plain = f.bits.Load() // unannotated LHS, annotated RHS via Load
	return f.bits.Load()
}

func construct() *floor {
	return &floor{raw: 7, plain: 9} // keyed init of a plain word is construction, not access
}

func bad(f *floor, other floor) {
	f.raw = 1   // want `annotated grlint:atomic`
	f.raw++     // want `annotated grlint:atomic`
	_ = f.raw   // want `annotated grlint:atomic`
	p := &f.raw // want `annotated grlint:atomic`
	*p = 2
	use(&f.raw)          // want `annotated grlint:atomic`
	copied := other.bits // want `annotated grlint:atomic`
	_ = copied
	if f.raw > 3 { // want `annotated grlint:atomic`
		f.plain = 4
	}
	_ = floor{bits: atomic.Uint64{}} // want `initializing a sync/atomic value by copy`
}

func use(p *uint64) { *p = 0 }
