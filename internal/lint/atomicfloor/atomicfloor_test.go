package atomicfloor_test

import (
	"testing"

	"grminer/internal/lint/analysistest"
	"grminer/internal/lint/atomicfloor"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfloor.Analyzer, "a")
}
