// Package atomicfloor enforces the engine's one-word shared-state contract:
// a struct field annotated "grlint:atomic" may only be touched through
// sync/atomic operations. The parallel miner's correctness argument
// (internal/core/parallel.go) rests on the CAS-raised floor being exactly
// such a word, and the upcoming serving layer's RCU-style published-results
// pointer will make the same promise; this analyzer turns the comment into
// a build-time invariant.
//
// Allowed accesses to an annotated field f of struct value x:
//
//   - method calls on a sync/atomic-typed field: x.f.Load(), x.f.Store(v),
//     x.f.CompareAndSwap(o, n), including method values;
//   - &x.f passed directly as an argument to a sync/atomic function
//     (atomic.AddInt64(&x.f, 1)) for plain integer/pointer fields;
//   - keyed initialization inside a composite literal (construction happens
//     before the value is published to other goroutines).
//
// Everything else — plain loads, stores, copies, comparisons, taking the
// address for any non-atomic callee — is reported.
package atomicfloor

import (
	"go/ast"
	"go/types"

	"grminer/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfloor",
	Doc:  "fields annotated grlint:atomic may only be accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	annotated := collectAnnotated(pass)
	if len(annotated) == 0 {
		return nil, nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal || !annotated[s.Obj()] {
			return true
		}
		if !accessOK(pass, sel, stack) {
			pass.Reportf(sel.Sel.Pos(),
				"field %s is annotated grlint:atomic and may only be accessed through sync/atomic operations",
				s.Obj().Name())
		}
		return true
	})
	reportCompositeKeys(pass, annotated)
	return nil, nil
}

// collectAnnotated gathers the field objects carrying a grlint:atomic
// comment in this package's syntax.
func collectAnnotated(pass *analysis.Pass) map[types.Object]bool {
	annotated := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.HasDirective(field.Doc, "atomic") && !analysis.HasDirective(field.Comment, "atomic") {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						annotated[obj] = true
					}
				}
			}
			return true
		})
	}
	return annotated
}

// accessOK decides whether the selector (an annotated-field access) is one
// of the allowed forms. stack[len-1] is the selector itself.
func accessOK(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	parent := parentOf(stack, 1)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.M — allowed iff M is a method provided by sync/atomic (the
		// field's type is atomic.Uint64 and friends).
		if p.X == sel {
			if s := pass.TypesInfo.Selections[p]; s != nil && s.Kind() == types.MethodVal {
				return analysis.IsPkgFunc(s.Obj(), "sync/atomic")
			}
		}
	case *ast.UnaryExpr:
		// &x.f — allowed only as a direct argument to a sync/atomic call.
		if p.Op.String() == "&" {
			if call, ok := parentOf(stack, 2).(*ast.CallExpr); ok {
				for _, arg := range call.Args {
					if ast.Unparen(arg) == p {
						return analysis.IsPkgFunc(analysis.Callee(pass.TypesInfo, call), "sync/atomic")
					}
				}
			}
		}
	}
	return false
}

// reportCompositeKeys flags non-zero initialization of annotated fields in
// composite literals when the field's type is itself a sync/atomic type
// (copying an atomic.Uint64 by value is a vet-level bug; keyed init of a
// plain integer field is the allowed construction form and is not flagged).
func reportCompositeKeys(pass *analysis.Pass, annotated map[types.Object]bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[key]
			if obj == nil || !annotated[obj] {
				return true
			}
			if named := analysis.NamedOf(obj.Type()); named != nil &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic" {
				pass.Reportf(key.Pos(),
					"field %s is annotated grlint:atomic; initializing a sync/atomic value by copy is not atomic-safe",
					obj.Name())
			}
			return true
		})
	}
}

func parentOf(stack []ast.Node, up int) ast.Node {
	i := len(stack) - 1 - up
	if i < 0 {
		return nil
	}
	return stack[i]
}
