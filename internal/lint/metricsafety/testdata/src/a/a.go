// Package a is the metricsafety fixture: guarded and naked calls to
// grlint:requires helpers, plus metric-shaped literals with and without
// explicit safety flags.
package a

type Metric struct {
	Name       string
	DeltaSafe  bool
	DeleteSafe bool
}

type engine struct {
	metric     Metric
	deltaSafe  bool
	deleteSafe bool
}

// remineScoped is only sound for DeltaSafe metrics.
//
// grlint:requires DeltaSafe
func remineScoped(e *engine) {}

// remineDeletion needs both safety properties.
//
// grlint:requires DeltaSafe DeleteSafe
func remineDeletion(e *engine) {}

func guardedDirect(e *engine) {
	if e.metric.DeltaSafe {
		remineScoped(e)
	}
}

func guardedMirror(e *engine) {
	if e.deltaSafe && e.deleteSafe {
		remineDeletion(e)
	}
}

func guardedIndirect(e *engine, dels int) {
	scoped := e.deltaSafe && (dels == 0 || e.deleteSafe)
	if scoped {
		remineDeletion(e)
	}
}

func guardedEarlyReturn(e *engine) {
	if !e.deltaSafe {
		return
	}
	remineScoped(e)
}

// propagated pushes the obligation to its own callers.
//
// grlint:requires DeltaSafe DeleteSafe
func propagated(e *engine) {
	remineScoped(e)
	remineDeletion(e)
}

func naked(e *engine) {
	remineScoped(e) // want `requires a DeltaSafe guard`
}

func halfGuarded(e *engine) {
	if e.deltaSafe {
		remineDeletion(e) // want `requires a DeleteSafe guard`
	}
}

func wrongFlag(e *engine) {
	if e.deleteSafe {
		remineScoped(e) // want `requires a DeltaSafe guard`
	}
}

func suppressed(e *engine) {
	//grlint:ignore metricsafety support-gated pools need no delta gate here
	remineScoped(e)
}

var (
	good = Metric{Name: "good", DeltaSafe: true, DeleteSafe: false}
	full = Metric{"positional", true, true}

	missingOne  = Metric{Name: "gain", DeltaSafe: true} // want `missing DeleteSafe`
	missingBoth = Metric{Name: "lift"}                  // want `missing DeltaSafe, DeleteSafe`
	zero        Metric                                  // zero value, not a literal: fine
)
