package metricsafety_test

import (
	"testing"

	"grminer/internal/lint/analysistest"
	"grminer/internal/lint/metricsafety"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metricsafety.Analyzer, "a")
}
