// Package metricsafety enforces the incremental engine's metric-gating
// contract. The scoped re-mine helpers are only sound for metrics that
// declare the matching safety property (metrics.Metric.DeltaSafe for
// insertion deltas, DeleteSafe for deletion-scoped re-mines); calling one
// on an ungated path silently produces wrong top-k results — the worst
// failure mode this codebase has, because the equivalence oracles only
// catch it for the metrics they happen to draw.
//
// Two rules:
//
//  1. A function annotated "grlint:requires DeltaSafe [DeleteSafe]" may
//     only be called under a guard that consults the corresponding flag:
//     an if/switch condition (or an earlier if in the same function, the
//     early-return-guard shape) mentioning an identifier matching the flag
//     name, possibly through one local variable of flag conjunctions
//     (scoped := inc.deltaSafe && inc.deleteSafe; if scoped { ... }).
//     Alternatively the caller itself carries the same grlint:requires
//     annotation, propagating the obligation outward.
//
//  2. Every keyed, non-empty composite literal of a metric-shaped struct
//     (one with bool fields DeltaSafe and DeleteSafe) must set both flags
//     explicitly. A new metric that forgets one gets the zero value, and a
//     wrong false silently degrades every batch to a full re-mine while a
//     wrong true corrupts results — both deserve a conscious decision at
//     the registration site.
//
// The guard check is a lexical dominance heuristic, not a CFG analysis;
// genuinely unguardable-but-sound calls document themselves with
// //grlint:ignore metricsafety <reason>.
package metricsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"grminer/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricsafety",
	Doc:  "scoped re-mine helpers must be gated on DeltaSafe/DeleteSafe; metric literals must set both flags",
	Run:  run,
}

// Flags a helper may require.
var knownFlags = []string{"DeltaSafe", "DeleteSafe"}

func run(pass *analysis.Pass) (interface{}, error) {
	required := collectRequired(pass)
	checkCalls(pass, required)
	checkLiterals(pass)
	return nil, nil
}

// collectRequired maps function objects to the safety flags their
// "grlint:requires" annotation names.
func collectRequired(pass *analysis.Pass) map[types.Object][]string {
	required := make(map[types.Object][]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, ok := analysis.DirectiveArgs(fd.Doc, "requires")
			if !ok {
				continue
			}
			var flags []string
			for _, a := range strings.Fields(args) {
				okFlag := false
				for _, k := range knownFlags {
					if a == k {
						okFlag = true
					}
				}
				if !okFlag {
					pass.Reportf(fd.Pos(), "grlint:requires names unknown flag %q (known: %s)", a, strings.Join(knownFlags, ", "))
					continue
				}
				flags = append(flags, a)
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil && len(flags) > 0 {
				required[obj] = flags
			}
		}
	}
	return required
}

// checkCalls verifies every call to an annotated helper is dominated by a
// guard on each required flag (or made from an equally-annotated caller).
func checkCalls(pass *analysis.Pass, required map[types.Object][]string) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callerFlags := map[string]bool{}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				for _, fl := range required[obj] {
					callerFlags[fl] = true
				}
			}
			scope := newGuardScope(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				flags, ok := required[callee]
				if !ok {
					return true
				}
				for _, flag := range flags {
					if callerFlags[flag] || scope.guarded(call.Pos(), flag) {
						continue
					}
					pass.Reportf(call.Pos(),
						"call to %s requires a %s guard: dominate it with a check of the metric's %s flag, annotate the caller // grlint:requires %s, or //grlint:ignore metricsafety <reason>",
						callee.Name(), flag, flag, flag)
				}
				return true
			})
		}
	}
}

// guardScope indexes one function body: which flags each local variable
// carries (one level of assignment indirection) and where flag-consulting
// conditions appear.
type guardScope struct {
	guards []guard
}

type guard struct {
	pos   token.Pos
	flags map[string]bool
}

func newGuardScope(pass *analysis.Pass, body *ast.BlockStmt) *guardScope {
	// Pass 1: local variables assigned from flag expressions, in source
	// order so `scoped := inc.deltaSafe && inc.deleteSafe` feeds `if scoped`.
	varFlags := make(map[string][]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		var rhsFlags []string
		for _, flag := range knownFlags {
			for _, rhs := range as.Rhs {
				if mentions(rhs, flag, varFlags) {
					rhsFlags = append(rhsFlags, flag)
					break
				}
			}
		}
		if len(rhsFlags) == 0 {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				varFlags[id.Name] = append(varFlags[id.Name], rhsFlags...)
			}
		}
		return true
	})
	// Pass 2: conditions that consult a flag.
	gs := &guardScope{}
	ast.Inspect(body, func(n ast.Node) bool {
		var cond ast.Expr
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
		case *ast.SwitchStmt:
			cond = s.Tag
		case *ast.ForStmt:
			cond = s.Cond
		case *ast.CaseClause:
			for _, e := range s.List {
				gs.record(n.Pos(), e, varFlags)
			}
			return true
		}
		if cond != nil {
			gs.record(n.Pos(), cond, varFlags)
		}
		return true
	})
	return gs
}

func (g *guardScope) record(pos token.Pos, cond ast.Expr, varFlags map[string][]string) {
	flags := make(map[string]bool)
	for _, flag := range knownFlags {
		if mentions(cond, flag, varFlags) {
			flags[flag] = true
		}
	}
	if len(flags) > 0 {
		g.guards = append(g.guards, guard{pos: pos, flags: flags})
	}
}

// guarded reports whether some flag-consulting condition starts before the
// call: either the call is inside that statement, or the statement is an
// earlier guard in the same function (the `if !safe { return }` shape).
func (g *guardScope) guarded(call token.Pos, flag string) bool {
	for _, gd := range g.guards {
		if gd.pos <= call && gd.flags[flag] {
			return true
		}
	}
	return false
}

// mentions reports whether the expression references the flag: an
// identifier or selector whose name equals it (any capitalization: the
// engine mirrors Metric.DeltaSafe into unexported deltaSafe fields), or a
// local variable recorded as carrying it.
func mentions(e ast.Expr, flag string, varFlags map[string][]string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch x := n.(type) {
		case *ast.Ident:
			name = x.Name
		default:
			return true
		}
		if strings.EqualFold(name, flag) {
			found = true
			return false
		}
		for _, fl := range varFlags[name] {
			if fl == flag {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkLiterals flags keyed metric-struct literals that leave DeltaSafe or
// DeleteSafe implicit.
func checkLiterals(pass *analysis.Pass) {
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok {
			return true
		}
		st, ok := types.Unalias(tv.Type).Underlying().(*types.Struct)
		if !ok || !metricShaped(st) {
			return true
		}
		have := make(map[string]bool)
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				// Unkeyed literals must be complete, so both flags are set
				// positionally — explicit enough.
				return true
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				have[id.Name] = true
			}
		}
		var missing []string
		for _, flag := range knownFlags {
			if !have[flag] {
				missing = append(missing, flag)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(lit.Pos(),
				"metric literal must set DeltaSafe and DeleteSafe explicitly (missing %s): an implicit false here silently changes the incremental engine's re-mine strategy",
				strings.Join(missing, ", "))
		}
		return true
	})
}

// metricShaped reports whether the struct has bool fields named DeltaSafe
// and DeleteSafe (the metrics.Metric shape, matched structurally so the
// analyzer needs no import of the engine).
func metricShaped(st *types.Struct) bool {
	found := 0
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if (f.Name() == "DeltaSafe" || f.Name() == "DeleteSafe") &&
			types.Identical(f.Type(), types.Typ[types.Bool]) {
			found++
		}
	}
	return found == 2
}
