// Package a is the wirecompat fixture. Its golden snapshot lives next to
// it (wire_schema.json) and the test points the analyzer at it.
package a

// Hello matches the snapshot exactly: clean.
//
// grlint:wire v1
type Hello struct {
	Magic   string
	Version int
}

// Drifted gained field B but still declares v1; the snapshot froze v1
// without it.
//
// grlint:wire v1
type Drifted struct { // want `changed without a version bump`
	A int
	B int
}

// Bumped gained a field AND bumped its marker; only the snapshot refresh
// is owed.
//
// grlint:wire v2
type Bumped struct { // want `snapshot is stale`
	A int
	B string
}

// Fresh is annotated but was never snapshotted.
//
// grlint:wire v1
type Fresh struct { // want `not in the wire schema snapshot`
	X int
}

// Leaky smuggles state through fields gob will not carry.
//
// grlint:wire v1
type Leaky struct {
	Public  int
	private int         // want `unexported field`
	Done    chan int    // want `chan type`
	Hook    func()      // want `func type`
	Any     interface{} // want `interface-typed`
}

// payload is a plain struct no marker covers.
type payload struct {
	N int
}

// Referrer points at payload, whose drift the snapshot cannot see.
//
// grlint:wire v1
type Referrer struct {
	P []payload // want `not grlint:wire-annotated`
}

// marked has a bad version marker.
//
// grlint:wire version-two
type marked struct { // want `malformed grlint:wire marker`
	A int // The struct is also unexported+missing from the snapshot, but the
	// malformed marker short-circuits before those fire.
}
