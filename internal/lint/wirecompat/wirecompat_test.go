package wirecompat_test

import (
	"path/filepath"
	"testing"

	"grminer/internal/lint/analysistest"
	"grminer/internal/lint/wirecompat"
)

func Test(t *testing.T) {
	testdata := analysistest.TestData()
	wirecompat.SnapshotPath = filepath.Join(testdata, "src", "a", "wire_schema.json")
	defer func() { wirecompat.SnapshotPath = "" }()
	analysistest.Run(t, testdata, wirecompat.Analyzer, "a")
}
