package deadedge_test

import (
	"testing"

	"grminer/internal/lint/analysistest"
	"grminer/internal/lint/deadedge"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), deadedge.Analyzer, "a", "b")
}
