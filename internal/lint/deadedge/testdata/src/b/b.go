// Package b is the deadedge allowlist fixture: a file marked as an
// accessor implementation may iterate raw edge-id ranges.
//
// grlint:edge-accessors
package b

type Store struct{ dead []bool }

func (s *Store) NumRows() int { return len(s.dead) }

// compact is the kind of code the allowlist exists for: it must visit
// tombstoned rows to drop them.
func compact(s *Store) int {
	n := 0
	for e := 0; e < s.NumRows(); e++ {
		if !s.dead[e] {
			n++
		}
	}
	return n
}
