// Package a is the deadedge fixture: tombstone-aware and tombstone-blind
// loops over graph/store edge-id spaces.
package a

type Graph struct{ dead []bool }

func (g *Graph) NumEdges() int        { return len(g.dead) }
func (g *Graph) EdgeAlive(e int) bool { return !g.dead[e] }
func (g *Graph) Src(e int) int        { return e }

type Store struct{ dead []bool }

func (s *Store) NumEdges() int      { return len(s.dead) }
func (s *Store) NumRows() int       { return len(s.dead) }
func (s *Store) Alive(e int32) bool { return !s.dead[e] }
func (s *Store) AllEdges() []int32  { return nil }

type Other struct{}

func (Other) NumEdges() int { return 0 }

func good(g *Graph, s *Store) int {
	sum := 0
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		sum += g.Src(e)
	}
	for e := int32(0); int(e) < s.NumRows(); e++ {
		if s.Alive(e) {
			sum++
		}
	}
	for range s.AllEdges() { // live accessor, no bound call
		sum++
	}
	for e := range g.NumEdges() { // int-range form with aliveness check
		if g.EdgeAlive(e) {
			sum++
		}
	}
	for e := 0; e < (Other{}).NumEdges(); e++ { // not a Graph/Store
		sum += e
	}
	return sum
}

func bad(g *Graph, s *Store) int {
	sum := 0
	for e := 0; e < g.NumEdges(); e++ { // want `iterates tombstoned edges`
		sum += g.Src(e)
	}
	for e := range g.NumEdges() { // want `iterates tombstoned edges`
		sum += e
	}
	for e := 0; e < s.NumRows(); e++ { // want `iterates tombstoned edges`
		sum += e
	}
	for e := 0; e < s.NumEdges(); e++ { // want `iterates tombstoned edges`
		sum += e
	}
	return sum
}

func suppressed(g *Graph) int {
	sum := 0
	//grlint:ignore deadedge graph is freshly generated, deletions impossible
	for e := 0; e < g.NumEdges(); e++ {
		sum += g.Src(e)
	}
	return sum
}
