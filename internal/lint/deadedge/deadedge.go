// Package deadedge enforces tombstone-aware edge iteration. Since the
// fully-dynamic engine landed, Graph.NumEdges/Store.NumRows bound the edge
// *id space* — deleted edges stay as tombstoned rows until compaction — so
// a loop over that range that never consults EdgeAlive/Alive silently
// processes retracted edges (and a loop bounded by Store.NumEdges, the
// *live* count, additionally misses tail rows once anything is dead).
// Code written before deletions existed is exactly the code that gets this
// wrong, which is why the check is mechanical.
//
// Flagged: any for/range loop whose bound is a NumEdges/NumRows call on a
// graph.Graph or store.Store (matched by type name, so fixtures and future
// stores participate) whose body contains no EdgeAlive/Alive call.
//
// Not flagged: loops that check liveness; iteration through the live
// accessors (Store.AllEdges, the posting-list [LRW]Rows, LiveCount*);
// files that implement those accessors, marked with a file-level
// "grlint:edge-accessors" comment; and lines carrying
// //grlint:ignore deadedge <reason> (e.g. code that provably runs before
// any deletion).
package deadedge

import (
	"go/ast"
	"go/types"

	"grminer/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "deadedge",
	Doc:  "edge-id loops must skip tombstones via EdgeAlive/Alive or use live accessors",
	Run:  run,
}

// boundMethods are the edge-id-space bounds; aliveMethods satisfy the loop.
var (
	boundMethods = map[string]bool{"NumEdges": true, "NumRows": true}
	aliveMethods = map[string]bool{"EdgeAlive": true, "Alive": true}
	ownerTypes   = map[string]bool{"Graph": true, "Store": true}
)

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if analysis.FileHasDirective(f, "edge-accessors") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var bound *ast.CallExpr
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				bound = boundCallOf(pass, s.Cond)
				body = s.Body
			case *ast.RangeStmt:
				// Go 1.22 integer range: for e := range g.NumEdges().
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					bound = edgeBoundCall(pass, call)
				}
				body = s.Body
			default:
				return true
			}
			if bound == nil {
				return true
			}
			if callsAlive(pass, body) {
				return true
			}
			recv, method := callParts(bound)
			pass.Reportf(n.Pos(),
				"loop over %s.%s() iterates tombstoned edges: check %s inside, use a live accessor (AllEdges, [LRW]Rows, LiveCount*), or mark an accessor file with grlint:edge-accessors",
				recv, method, aliveNameFor(method))
			return true
		})
	}
	return nil, nil
}

// boundCallOf extracts an edge-bound call from a for-condition like
// `i < g.NumEdges()` or `i <= s.NumRows()-1`.
func boundCallOf(pass *analysis.Pass, cond ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	if cond == nil {
		return nil
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && found == nil {
			if c := edgeBoundCall(pass, call); c != nil {
				found = c
				return false
			}
		}
		return true
	})
	return found
}

// edgeBoundCall reports whether the call is NumEdges/NumRows on a
// Graph/Store-named receiver type.
func edgeBoundCall(pass *analysis.Pass, call *ast.CallExpr) *ast.CallExpr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !boundMethods[sel.Sel.Name] {
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
		if named := analysis.NamedOf(tv.Type); named != nil && ownerTypes[named.Obj().Name()] {
			return call
		}
	}
	return nil
}

// callsAlive reports whether the loop body (including nested calls'
// arguments, but not nested function literals' bodies — a deferred check
// does not guard this iteration) invokes an aliveness accessor.
func callsAlive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !aliveMethods[sel.Sel.Name] {
			return true
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func callParts(call *ast.CallExpr) (recv, method string) {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name, sel.Sel.Name
	}
	return "…", sel.Sel.Name
}

func aliveNameFor(method string) string {
	if method == "NumRows" {
		return "Alive"
	}
	return "EdgeAlive/Alive"
}
