// Package analysistest runs a grlint analyzer over fixture packages and
// checks its diagnostics against "// want" expectations embedded in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	s.floor = 1 // want `only be accessed through sync/atomic`
//
// A want comment holds one or more quoted (or backquoted) regular
// expressions; each must match a distinct diagnostic reported on that line,
// and every diagnostic must be claimed by a want. Fixtures live under
// testdata/src/<pkg>/ next to the analyzer's test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"grminer/internal/lint/analysis"
)

// TestData returns the caller's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads testdata/src/<pkg> for each named fixture package, applies the
// analyzer, and reports mismatches between actual diagnostics and // want
// expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		loader := analysis.NewLoader("")
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Errorf("%s: loading fixture: %v", name, err)
			continue
		}
		if pkg.IllTyped {
			t.Errorf("%s: fixture does not type-check: %s", name, pkg.TypeErrors)
			continue
		}
		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, pkg, func(d analysis.Diagnostic) { diags = append(diags, d) })
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer failed: %v", name, err)
			continue
		}
		checkWants(t, pkg.Fset, pkg.Files, diags)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// wantsByLine extracts // want expectations, keyed by filename:line.
func wantsByLine(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := wantsByLine(t, fset, files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}
