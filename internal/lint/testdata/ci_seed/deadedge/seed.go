// Package seed is a deliberately broken fixture: CI runs grlint -dir over
// it and requires a nonzero exit, proving the deadedge gate actually fails
// on a raw edge-id loop.
package seed

// Graph mimics the engine's tombstone-aware graph shape.
type Graph struct{ n int }

func (g *Graph) NumEdges() int        { return g.n }
func (g *Graph) EdgeAlive(e int) bool { return true }
func (g *Graph) Src(e int) int        { return e }

// Broken walks the id space without an aliveness check.
func Broken(g *Graph) int {
	total := 0
	for e := 0; e < g.NumEdges(); e++ {
		total += g.Src(e)
	}
	return total
}
