// Package seed is a deliberately broken fixture: CI runs grlint -dir over
// it and requires a nonzero exit, proving the metricsafety gate actually
// fails on an unguarded re-mine call.
package seed

// remine stands in for the engine's scoped re-mine helpers.
//
// grlint:requires DeltaSafe DeleteSafe
func remine() int { return 0 }

type options struct {
	DeltaSafe  bool
	DeleteSafe bool
}

// Broken calls the annotated helper with no safety guard in sight.
func Broken(o options) int {
	return remine()
}
