// Package seed is a deliberately broken fixture: CI runs grlint -dir over
// it and requires a nonzero exit, proving the wirecompat gate actually
// fails on a wire struct missing from the golden snapshot (the same
// diagnostic an unsnapshotted schema change produces).
package seed

// Rogue is annotated as a wire struct but absent from
// internal/rpc/wire_schema.json.
//
// grlint:wire v1
type Rogue struct {
	Payload []byte
}
