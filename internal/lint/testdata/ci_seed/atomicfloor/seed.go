// Package seed is a deliberately broken fixture: CI runs grlint -dir over
// it and requires a nonzero exit, proving the atomicfloor gate actually
// fails on a violation (not just passes on clean code).
package seed

import "sync/atomic"

type floor struct {
	// grlint:atomic
	bits atomic.Uint64
}

// Broken reads the annotated field through a copy instead of Load.
func Broken(f *floor) uint64 {
	raw := f.bits // copies the atomic value out from under the CAS loop
	return raw.Load()
}
