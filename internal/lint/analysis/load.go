package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path       string
	Dir        string
	Module     string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	IllTyped   bool   // type-checking reported errors
	TypeErrors string // first few errors, for the driver's warning
}

// Loader type-checks packages against compiler export data served by the
// go command's build cache (`go list -export`), so it needs no network, no
// GOPATH layout, and no x/tools: the one external ingredient is the go
// toolchain the container already ships.
type Loader struct {
	Fset *token.FileSet
	// Tests includes in-package _test.go files in each package, and loads
	// external (package foo_test) test packages as separate entries.
	Tests bool
	// Dir is the working directory for go commands (module root or below).
	Dir string
	// BuildTags is a comma-separated build tag list passed to go list.
	BuildTags string

	exports map[string]string // import path → export data file
	modpath string
}

// NewLoader returns a loader rooted at dir (or the process cwd when "").
func NewLoader(dir string) *Loader {
	return &Loader{Fset: token.NewFileSet(), Dir: dir, exports: make(map[string]string)}
}

// listEntry mirrors the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath     string
	Dir            string
	Name           string
	Export         string
	Standard       bool
	GoFiles        []string
	CgoFiles       []string
	TestGoFiles    []string
	XTestGoFiles   []string
	IgnoredGoFiles []string
	Module         *struct{ Path, Dir string }
	Error          *struct{ Err string }
}

func (l *Loader) goList(args ...string) ([]listEntry, error) {
	base := []string{"list", "-e", "-json"}
	if l.BuildTags != "" {
		base = append(base, "-tags", l.BuildTags)
	}
	cmd := exec.Command("go", append(base, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportFor returns the export data file for an import path, consulting the
// cache filled by the initial -deps listing and falling back to a one-off
// `go list -export` (test-only dependencies are not in the -deps closure).
func (l *Loader) exportFor(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		if f == "" {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	entries, err := l.goList("-export", path)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		l.exports[e.ImportPath] = e.Export
	}
	f := l.exports[path]
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// importer returns a types.Importer resolving through export data files.
func (l *Loader) importer() types.Importer {
	return importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := l.exportFor(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves the patterns (e.g. "./...") to module packages and
// type-checks each from source. External test packages that fail to
// type-check (they can depend on test-variant exports the non-test export
// data lacks) are returned with IllTyped set rather than failing the load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	// One -deps -export pass warms the export cache for every dependency.
	deps, err := l.goList(append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, e := range deps {
		if _, ok := l.exports[e.ImportPath]; !ok || e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}

	var pkgs []*Package
	for _, e := range targets {
		if e.Error != nil && len(e.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Module != nil && l.modpath == "" {
			l.modpath = e.Module.Path
		}
		files := append([]string{}, e.GoFiles...)
		if l.Tests {
			files = append(files, e.TestGoFiles...)
		}
		pkg, err := l.check(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
		if l.Tests && len(e.XTestGoFiles) > 0 {
			xpkg, err := l.check(e.ImportPath+"_test", e.Dir, e.XTestGoFiles)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", e.ImportPath+"_test", err)
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return pkgs, nil
}

// LoadDir loads a directory of Go files outside the module graph (analyzer
// fixtures, seeded CI violations). Files may import the standard library
// and module packages; _test.go files are included.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []string
	for _, n := range names {
		files = append(files, filepath.Base(n))
	}
	return l.check(filepath.Base(dir), dir, files)
}

// check parses and type-checks one package's files (paths relative to dir).
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	var errs []string
	conf := types.Config{
		Importer: l.importer(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(errs) < 5 {
				errs = append(errs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Module: l.modpath,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	if len(errs) > 0 {
		pkg.IllTyped = true
		pkg.TypeErrors = strings.Join(errs, "; ")
	}
	return pkg, nil
}

// NewPass binds an analyzer to a loaded package; report receives the
// analyzer's diagnostics (after suppression filtering).
func NewPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ModulePath: pkg.Module,
		Dir:        pkg.Dir,
		Report:     report,
	}
}
