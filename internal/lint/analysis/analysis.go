// Package analysis is a stdlib-only skeleton of the golang.org/x/tools
// go/analysis API: an Analyzer inspects one type-checked package through a
// Pass and reports position-tagged Diagnostics. The repo's container builds
// hermetically (no module downloads), so grlint carries this ~300-line
// subset instead of depending on x/tools; the Analyzer/Pass surface is kept
// shape-compatible so the analyzers could be ported to the real framework
// by swapping the import.
//
// Two conventions are framework-level and shared by every analyzer:
//
//   - Annotations: a comment line of the form "grlint:<directive> [args]"
//     (with or without a space after //) attached to a declaration opts it
//     into an analyzer's contract, e.g. "grlint:atomic" on a struct field
//     or "grlint:wire v2" on a wire struct.
//
//   - Suppressions: "//grlint:ignore <analyzer> <reason>" on the flagged
//     line or the line above silences that analyzer there. The reason is
//     mandatory — a suppression without one is itself reported (by the
//     grlint driver), so every escape hatch documents why it is sound.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check. Run inspects the Pass's package and reports
// findings through pass.Report; the return value is unused (kept for shape
// compatibility with x/tools).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the module being analyzed ("" when unknown); analyzers
	// use it to tell module-local types from dependencies.
	ModulePath string
	// Dir is the package directory on disk ("" for synthetic packages).
	Dir string

	// Report delivers one diagnostic. The driver installs it; Reportf and
	// suppression filtering funnel through it.
	Report func(Diagnostic)

	ignores ignoreIndex
}

// Reportf reports a formatted diagnostic unless an //grlint:ignore for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.Suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether pos is covered by an //grlint:ignore comment
// for this analyzer (same line or the line immediately above).
func (p *Pass) Suppressed(pos token.Pos) bool {
	if p.ignores == nil {
		p.ignores = buildIgnoreIndex(p.Fset, p.Files)
	}
	posn := p.Fset.Position(pos)
	names := p.ignores[posn.Filename]
	return names[posn.Line] == p.Analyzer.Name || names[posn.Line-1] == p.Analyzer.Name
}

// ignoreIndex maps filename → line → analyzer name silenced on that line.
type ignoreIndex map[string]map[int]string

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, _, ok := ParseIgnore(c.Text)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				m := idx[posn.Filename]
				if m == nil {
					m = make(map[int]string)
					idx[posn.Filename] = m
				}
				m[posn.Line] = name
			}
		}
	}
	return idx
}

// ParseIgnore decodes an "//grlint:ignore <analyzer> <reason>" comment. It
// returns ok=false for non-ignore comments; an ignore with a missing reason
// returns the name with reason "" (the driver rejects those).
func ParseIgnore(comment string) (analyzer, reason string, ok bool) {
	body, found := Directive(comment)
	if !found || !strings.HasPrefix(body, "ignore") {
		return "", "", false
	}
	fields := strings.Fields(strings.TrimPrefix(body, "ignore"))
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// Directive extracts the body of a "grlint:" comment line: Directive("//
// grlint:atomic") = ("atomic", true). Both "//grlint:x" and "// grlint:x"
// spellings are accepted.
func Directive(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "grlint:") {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, "grlint:")), true
}

// HasDirective reports whether any comment in the group carries the given
// grlint directive (exact match on the first word, e.g. "atomic").
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArgs(cg, directive)
	return ok
}

// DirectiveArgs returns the arguments of the first "grlint:<directive>"
// comment in the group: DirectiveArgs("// grlint:wire v2", "wire") = "v2".
func DirectiveArgs(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		body, ok := Directive(c.Text)
		if !ok {
			continue
		}
		fields := strings.Fields(body)
		if len(fields) > 0 && fields[0] == directive {
			return strings.Join(fields[1:], " "), true
		}
	}
	return "", false
}

// FileHasDirective reports whether the file carries a standalone
// "grlint:<directive>" comment anywhere (used for file-level allowlists
// such as deadedge's "grlint:edge-accessors"; convention places it next to
// the package clause).
func FileHasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		if HasDirective(cg, directive) {
			return true
		}
	}
	return false
}

// WithStack walks every file, invoking fn with the node and the stack of
// ancestors (stack[0] is the *ast.File, stack[len-1] the node itself).
// Returning false prunes the subtree.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal in
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// Callee resolves the called object of a call expression via the package's
// Uses map (nil for indirect calls, conversions, and builtins).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether obj is a function (or method) belonging to the
// package with the given import path.
func IsPkgFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// NamedOf unwraps pointers and aliases and returns the *types.Named behind
// t, or nil.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}
