package metrics

import (
	"grminer/internal/gr"
	"grminer/internal/graph"
)

// The scan evaluator computes exact Counts for arbitrary GRs by a single
// pass over the edge list. It is the reference implementation used by the
// brute-force oracle, the hypothesis workbench (Remark 3), and the on-demand
// homophily-effect computation. The miner itself uses the partitioned data
// model instead; tests assert the two agree.

// MatchNode reports whether node n of g satisfies descriptor d.
func MatchNode(g *graph.Graph, n int, d gr.Descriptor) bool {
	row := g.NodeValues(n)
	for _, c := range d {
		if row[c.Attr] != c.Val {
			return false
		}
	}
	return true
}

// MatchEdgeAttrs reports whether edge e of g satisfies edge descriptor d.
func MatchEdgeAttrs(g *graph.Graph, e int, d gr.Descriptor) bool {
	for _, c := range d {
		if g.EdgeValue(e, c.Attr) != c.Val {
			return false
		}
	}
	return true
}

// MatchEdge reports whether edge e satisfies l ∧ w ∧ r.
func MatchEdge(g *graph.Graph, e int, r gr.GR) bool {
	return MatchNode(g, g.Src(e), r.L) &&
		MatchEdgeAttrs(g, e, r.W) &&
		MatchNode(g, g.Dst(e), r.R)
}

// Eval scans the whole (live) edge list and returns the Counts of r,
// including the homophily-effect support (β handling per Equation 4-5) and
// Counts.R. Tombstoned edges are skipped, so Eval agrees with the compact
// store on fully dynamic graphs.
func Eval(g *graph.Graph, r gr.GR) Counts {
	eff, hasBeta := r.HomophilyEffect(g.Schema())
	c := Counts{E: g.NumLiveEdges()}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		srcOK := MatchNode(g, g.Src(e), r.L) && MatchEdgeAttrs(g, e, r.W)
		if srcOK {
			c.LW++
			if MatchNode(g, g.Dst(e), r.R) {
				c.LWR++
			}
			if hasBeta && MatchNode(g, g.Dst(e), eff.R) {
				c.Hom++
			}
		}
		if MatchNode(g, g.Dst(e), r.R) {
			c.R++
		}
	}
	return c
}

// EvalSubset is Eval restricted to the given edge ids; Counts.E is still the
// full edge count so relative supports stay comparable.
func EvalSubset(g *graph.Graph, edges []int32, r gr.GR) Counts {
	eff, hasBeta := r.HomophilyEffect(g.Schema())
	c := Counts{E: g.NumLiveEdges()}
	for _, e32 := range edges {
		e := int(e32)
		srcOK := MatchNode(g, g.Src(e), r.L) && MatchEdgeAttrs(g, e, r.W)
		if srcOK {
			c.LW++
			if MatchNode(g, g.Dst(e), r.R) {
				c.LWR++
			}
			if hasBeta && MatchNode(g, g.Dst(e), eff.R) {
				c.Hom++
			}
		}
		if MatchNode(g, g.Dst(e), r.R) {
			c.R++
		}
	}
	return c
}

// Score evaluates r under metric m by a full scan.
func Score(g *graph.Graph, r gr.GR, m Metric) (gr.Scored, Counts) {
	c := Eval(g, r)
	return gr.Scored{GR: r, Supp: c.LWR, Score: m.Score(c), Conf: Conf(c)}, c
}
