// Package metrics implements the interestingness measures of "Mining Social
// Ties Beyond Homophily": support and confidence (Definitions 2-3), the
// paper's non-homophily preference (Definition 4), and the alternative
// metrics of Section VII (laplace, gain, Piatetsky-Shapiro, conviction,
// lift). All metrics are pure functions of a small set of absolute supports,
// which is what makes them pluggable into the same mining framework.
package metrics

import (
	"fmt"
	"math"
)

// Counts carries the absolute supports a metric may need for one GR
// l -w-> r. All counts are edge counts.
//
// grlint:wire v1
type Counts struct {
	LWR int // |E(l ∧ w ∧ r)|, the support of the GR
	LW  int // |E(l ∧ w)|
	Hom int // |E(l -w-> l[β])|, the homophily effect; 0 when β = ∅
	R   int // |E(r)|, edges whose destination matches r (lift family only)
	E   int // |E|
}

// Supp returns relative support supp(l -w-> r) = LWR / E (Definition 2).
func Supp(c Counts) float64 {
	if c.E == 0 {
		return 0
	}
	return float64(c.LWR) / float64(c.E)
}

// Conf returns confidence P(r | l ∧ w) (Definition 3); 0 when LW = 0.
func Conf(c Counts) float64 {
	if c.LW == 0 {
		return 0
	}
	return float64(c.LWR) / float64(c.LW)
}

// Nhp returns the non-homophily preference (Definition 4):
//
//	nhp = supp(l -w-> r) / (supp(l ∧ w) − supp(l -w-> l[β]))
//
// When β = ∅, Hom must be 0 and nhp degenerates to confidence (Remark 1).
// Theorem 1 guarantees the denominator is positive whenever LWR > 0; a zero
// denominator with LWR = 0 yields 0.
func Nhp(c Counts) float64 {
	den := c.LW - c.Hom
	if den <= 0 {
		return 0
	}
	return float64(c.LWR) / float64(den)
}

// Laplace returns the laplace accuracy (Equation 10) with smoothing constant
// k (k > 1 per the paper; callers typically use the domain size of the RHS).
func Laplace(c Counts, k int) float64 {
	return float64(c.LWR+1) / float64(c.LW+k)
}

// Gain returns the gain metric (Equation 11) with fractional θ ∈ (0, 1),
// normalised by |E| so values are comparable across datasets.
func Gain(c Counts, theta float64) float64 {
	if c.E == 0 {
		return 0
	}
	return (float64(c.LWR) - theta*float64(c.LW)) / float64(c.E)
}

// PiatetskyShapiro returns supp(l -w-> r) − supp(l ∧ w)·supp(r)
// (Equation 12, stated over relative supports).
func PiatetskyShapiro(c Counts) float64 {
	if c.E == 0 {
		return 0
	}
	e := float64(c.E)
	return float64(c.LWR)/e - (float64(c.LW)/e)*(float64(c.R)/e)
}

// Conviction returns (|E| − supp(r)) / (|E|·(1 − conf)) (Equation 13).
// It is +Inf when conf = 1 and the rule never fails.
func Conviction(c Counts) float64 {
	if c.E == 0 {
		return 0
	}
	conf := Conf(c)
	if conf >= 1 {
		return math.Inf(1)
	}
	return (float64(c.E) - float64(c.R)) / (float64(c.E) * (1 - conf))
}

// Lift returns |E|·conf / supp(r) (Equation 14); 0 when supp(r) = 0.
func Lift(c Counts) float64 {
	if c.R == 0 {
		return 0
	}
	return float64(c.E) * Conf(c) / float64(c.R)
}

// Metric is a pluggable interestingness measure for the mining framework
// (Section VII). Score must be a pure function of Counts.
type Metric struct {
	// Name identifies the metric in CLIs and reports.
	Name string
	// Score computes the metric value.
	Score func(Counts) float64
	// RHSAntiMonotone reports whether the metric never increases when a
	// value is added to the RHS under the SFDF dynamic ordering. Only such
	// metrics support threshold pruning during RHS expansion; the others
	// fall back to support-only pruning plus post-ranking (Section VII).
	RHSAntiMonotone bool
	// NeedsR reports whether Score reads Counts.R (support of the RHS over
	// all edges), which costs an extra counting pass.
	NeedsR bool
	// NeedsHom reports whether Score reads Counts.Hom (the homophily-effect
	// support); only nhp does, and only then does the miner pay for the
	// β-restricted counting scan.
	NeedsHom bool
	// DeleteSafe reports that Score is a pure function of LWR, LW, and Hom —
	// it never reads E or R — so deleting an edge outside E(l ∧ w) cannot
	// change a GR's score. Together with DeltaSafe this is what lets the
	// incremental engine keep the scoped re-mine for deletion batches: a
	// deletion can only raise the score of a GR whose l ∧ w the deleted edge
	// matched (it shrinks the denominator), and such a GR's first-level LEFT
	// or EDGE subtree is keyed by a value the deleted edge carries (root
	// RIGHT subtrees, whose GRs have empty l ∧ w that every edge matches,
	// are always rescanned on a deletion). Metrics that read E (gain) or R
	// (the lift family) can rise on *any* deletion — |E| shrinks — and force
	// a full pool rebuild for batches containing deletions.
	DeleteSafe bool
	// DeltaSafe reports that, under pure edge insertions and a non-negative
	// score threshold, a GR's score can only increase when an inserted edge
	// matches the GR's full descriptor l ∧ w ∧ r. This holds for metrics
	// whose score is non-increasing in LW and E with LWR fixed: an edge
	// matching only l ∧ w grows the denominator, an edge matching l ∧ w and
	// l[β] grows Hom and LW together (nhp's denominator LW − Hom is
	// unchanged), an unrelated edge at most grows E. The incremental engine
	// (internal/core) relies on this to scope re-mining to the subtrees the
	// inserted edges touch; metrics without it (the lift family, whose
	// scores can rise when |E| grows or supp(r) shifts) force a full
	// re-mine per batch.
	DeltaSafe bool
}

// Builtin metrics, keyed by name.
var (
	// NhpMetric is the paper's default ranking metric.
	NhpMetric = Metric{Name: "nhp", Score: Nhp, RHSAntiMonotone: true, NeedsHom: true, DeltaSafe: true, DeleteSafe: true}
	// ConfMetric is standard confidence; used by the Table II comparison.
	ConfMetric = Metric{Name: "conf", Score: Conf, RHSAntiMonotone: true, DeltaSafe: true, DeleteSafe: true}
	// LaplaceMetric uses k = 2, the smallest integer the paper allows.
	LaplaceMetric = Metric{
		Name:            "laplace",
		Score:           func(c Counts) float64 { return Laplace(c, 2) },
		RHSAntiMonotone: true,
		DeltaSafe:       true,
		DeleteSafe:      true,
	}
	// GainMetric uses θ = 0.5. Gain is DeltaSafe because its numerator
	// LWR − θ·LW only rises on a full-descriptor match and |E| growth drives
	// positive scores toward 0 (a negative score rising toward 0 never
	// crosses a threshold ≥ 0, which is what DeltaSafe's caveat excludes).
	GainMetric = Metric{
		Name:            "gain",
		Score:           func(c Counts) float64 { return Gain(c, 0.5) },
		RHSAntiMonotone: true,
		DeltaSafe:       true,
		// Not DeleteSafe: removing edges shrinks LW, so LWR − θ·LW can rise
		// on a GR no deletion touched.
		DeleteSafe: false,
	}
	// PSMetric is Piatetsky-Shapiro; not RHS anti-monotone. Neither safety
	// holds: the score depends on |E| and |E(r)|, which every change moves.
	PSMetric = Metric{Name: "piatetsky-shapiro", Score: PiatetskyShapiro, NeedsR: true,
		DeltaSafe: false, DeleteSafe: false}
	// ConvictionMetric is not RHS anti-monotone; like the lift family its
	// score can rise anywhere when |E| or supp(r) shifts, so neither safety
	// flag holds.
	ConvictionMetric = Metric{Name: "conviction", Score: Conviction, NeedsR: true,
		DeltaSafe: false, DeleteSafe: false}
	// LiftMetric reduces the influence of RHS popularity skew (the paper's
	// D1 discussion); not RHS anti-monotone, and not delta- or delete-safe
	// (scores rise when |E| grows or supp(r) shifts).
	LiftMetric = Metric{Name: "lift", Score: Lift, NeedsR: true,
		DeltaSafe: false, DeleteSafe: false}
)

// All lists every builtin metric.
func All() []Metric {
	return []Metric{
		NhpMetric, ConfMetric, LaplaceMetric, GainMetric,
		PSMetric, ConvictionMetric, LiftMetric,
	}
}

// ByName looks up a builtin metric.
func ByName(name string) (Metric, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Metric{}, fmt.Errorf("metrics: unknown metric %q", name)
}
