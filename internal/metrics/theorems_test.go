package metrics

import (
	"math/rand"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/graph"
)

// Graph-level property tests for the paper's Theorems 1 and 2, evaluated
// with the exact scan evaluator on randomized attributed graphs.

func theoremGraph(seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: true},
			{Name: "B", Domain: 3, Homophily: true},
			{Name: "C", Domain: 2},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		panic(err)
	}
	n := 8 + r.Intn(12)
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		g.SetNodeValues(v,
			graph.Value(r.Intn(4)), graph.Value(r.Intn(4)), graph.Value(r.Intn(3)))
	}
	for e := 0; e < 30+r.Intn(60); e++ {
		g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3)))
	}
	return g
}

func randomGR(r *rand.Rand, s *graph.Schema) gr.GR {
	var g gr.GR
	for a := range s.Node {
		if r.Intn(3) == 0 {
			g.L = g.L.With(a, graph.Value(1+r.Intn(s.Node[a].Domain)))
		}
		if r.Intn(3) == 0 {
			g.R = g.R.With(a, graph.Value(1+r.Intn(s.Node[a].Domain)))
		}
	}
	for a := range s.Edge {
		if r.Intn(3) == 0 {
			g.W = g.W.With(a, graph.Value(1+r.Intn(s.Edge[a].Domain)))
		}
	}
	return g
}

// Theorem 1: whenever supp > 0, the nhp denominator is positive and
// nhp ∈ [0, 1] — on real graphs, not just synthetic counts.
func TestTheorem1OnGraphs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := theoremGraph(seed)
		r := rand.New(rand.NewSource(seed + 1000))
		for i := 0; i < 50; i++ {
			cand := randomGR(r, g.Schema())
			if len(cand.R) == 0 {
				continue
			}
			c := Eval(g, cand)
			if c.LWR == 0 {
				continue
			}
			if c.LW-c.Hom <= 0 {
				t.Fatalf("seed %d: zero denominator with supp=%d for %v", seed, c.LWR, cand)
			}
			if v := Nhp(c); v < 0 || v > 1 {
				t.Fatalf("seed %d: nhp = %v outside [0,1] for %v", seed, v, cand)
			}
		}
	}
}

// Theorem 2(1): support never increases when any condition is added.
func TestTheorem2SupportAntiMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := theoremGraph(seed)
		r := rand.New(rand.NewSource(seed + 2000))
		for i := 0; i < 30; i++ {
			base := randomGR(r, g.Schema())
			if len(base.R) == 0 {
				base.R = base.R.With(0, 1)
			}
			c0 := Eval(g, base)
			// Extend each part in turn with a fresh condition.
			for a := range g.Schema().Node {
				if !base.L.Has(a) {
					ext := base.Clone()
					ext.L = ext.L.With(a, 1)
					if Eval(g, ext).LWR > c0.LWR {
						t.Fatalf("seed %d: supp rose on LHS extension", seed)
					}
				}
				if !base.R.Has(a) {
					ext := base.Clone()
					ext.R = ext.R.With(a, 1)
					if Eval(g, ext).LWR > c0.LWR {
						t.Fatalf("seed %d: supp rose on RHS extension", seed)
					}
				}
			}
			if !base.W.Has(0) {
				ext := base.Clone()
				ext.W = ext.W.With(0, 1)
				if Eval(g, ext).LWR > c0.LWR {
					t.Fatalf("seed %d: supp rose on W extension", seed)
				}
			}
		}
	}
}

// Theorem 2(2): with β ≠ ∅, nhp never increases when a value is added to
// the RHS.
func TestTheorem2NhpAntiMonotoneBetaNonEmpty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := theoremGraph(seed)
		r := rand.New(rand.NewSource(seed + 3000))
		for i := 0; i < 60; i++ {
			base := randomGR(r, g.Schema())
			if len(base.R) == 0 || len(base.Beta(g.Schema())) == 0 {
				continue
			}
			c0 := Eval(g, base)
			if c0.LWR == 0 {
				continue
			}
			nhp0 := Nhp(c0)
			for a := range g.Schema().Node {
				if base.R.Has(a) {
					continue
				}
				for v := 1; v <= g.Schema().Node[a].Domain; v++ {
					ext := base.Clone()
					ext.R = ext.R.With(a, graph.Value(v))
					if Nhp(Eval(g, ext)) > nhp0+1e-12 {
						t.Fatalf("seed %d: nhp rose from %v on RHS extension of β≠∅ GR %v",
							seed, nhp0, base)
					}
				}
			}
		}
	}
}

// Theorem 2(3): with β = ∅, adding a non-homophily value, or a homophily
// value for an attribute absent from the LHS, never increases nhp.
func TestTheorem2NhpAntiMonotoneBetaEmpty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := theoremGraph(seed)
		s := g.Schema()
		r := rand.New(rand.NewSource(seed + 4000))
		for i := 0; i < 60; i++ {
			base := randomGR(r, s)
			if len(base.R) == 0 || len(base.Beta(s)) != 0 {
				continue
			}
			c0 := Eval(g, base)
			if c0.LWR == 0 {
				continue
			}
			nhp0 := Nhp(c0)
			for a := range s.Node {
				if base.R.Has(a) {
					continue
				}
				// Theorem 2(3)'s precondition: non-homophily attribute, or
				// homophily attribute not occurring in the LHS.
				if s.Node[a].Homophily && base.L.Has(a) {
					continue // Remark 2 territory: no guarantee here
				}
				for v := 1; v <= s.Node[a].Domain; v++ {
					ext := base.Clone()
					ext.R = ext.R.With(a, graph.Value(v))
					if Nhp(Eval(g, ext)) > nhp0+1e-12 {
						t.Fatalf("seed %d: nhp rose on Theorem 2(3) extension of %v", seed, base)
					}
				}
			}
		}
	}
}

// Remark 2, demonstrated: there EXISTS a graph and a GR with β = ∅ whose
// nhp increases when a conflicting homophily value is appended — the
// counterexample motivating the dynamic ordering.
func TestRemark2CounterexampleExists(t *testing.T) {
	schema, err := graph.NewSchema(
		[]graph.Attribute{{Name: "H", Domain: 2, Homophily: true}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: one source with H=1, destinations split 3:1 between H=1
	// (homophily mass) and H=2.
	g := graph.MustNew(schema, 5)
	g.SetNodeValues(0, 1)
	g.SetNodeValues(1, 1)
	g.SetNodeValues(2, 1)
	g.SetNodeValues(3, 1)
	g.SetNodeValues(4, 2)
	for _, dst := range []int{1, 2, 3, 4} {
		g.AddEdge(0, dst)
	}
	// Base: (H:1) -> () is not a GR; instead compare the conditional GRs.
	// g1 = (H:1) -> (H:2): β = {H}, nhp = 1/(4-3) = 1.
	g1 := gr.GR{L: gr.D(0, 1), R: gr.D(0, 2)}
	c1 := Eval(g, g1)
	if Nhp(c1) != 1.0 {
		t.Fatalf("counterexample setup wrong: nhp = %v", Nhp(c1))
	}
	// Its conf (the β=∅-style denominator) is only 1/4: excluding the
	// homophily effect quadrupled the score, which is exactly the jump a
	// static enumeration would have pruned away.
	if Conf(c1) != 0.25 {
		t.Fatalf("conf = %v, want 0.25", Conf(c1))
	}
}
