package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"grminer/internal/dataset"
	"grminer/internal/gr"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// The four motivating GRs of Examples 1-2 on the Figure 1 toy network. The
// assertions pin the exact numbers the paper reports.
func TestToyNetworkExamples(t *testing.T) {
	g := dataset.ToyDating()
	if g.NumEdges() != 30 {
		t.Fatalf("toy network has %d directed edges, want 30", g.NumEdges())
	}

	gr1 := gr.GR{L: gr.D(dataset.ToySex, dataset.SexM), R: gr.D(dataset.ToySex, dataset.SexF, dataset.ToyRace, dataset.RaceAsian)}
	c1 := Eval(g, gr1)
	if c1.LWR != 7 || c1.LW != 14 {
		t.Errorf("GR1 counts = %+v, want LWR=7 LW=14", c1)
	}
	if !almost(Conf(c1), 7.0/14) {
		t.Errorf("GR1 conf = %v, want 1/2", Conf(c1))
	}

	gr2 := gr.GR{
		L: gr.D(dataset.ToySex, dataset.SexM, dataset.ToyRace, dataset.RaceAsian),
		R: gr.D(dataset.ToySex, dataset.SexF, dataset.ToyRace, dataset.RaceAsian),
	}
	c2 := Eval(g, gr2)
	if c2.LWR != 0 || Conf(c2) != 0 {
		t.Errorf("GR2 counts = %+v, want supp 0", c2)
	}

	gr3 := gr.GR{
		L: gr.D(dataset.ToySex, dataset.SexF, dataset.ToyEdu, dataset.EduGrad),
		R: gr.D(dataset.ToySex, dataset.SexM, dataset.ToyEdu, dataset.EduGrad),
	}
	c3 := Eval(g, gr3)
	if c3.LWR != 4 || c3.LW != 6 {
		t.Errorf("GR3 counts = %+v, want LWR=4 LW=6", c3)
	}
	if !almost(Conf(c3), 4.0/6) {
		t.Errorf("GR3 conf = %v, want 2/3", Conf(c3))
	}

	gr4 := gr.GR{
		L: gr.D(dataset.ToySex, dataset.SexF, dataset.ToyEdu, dataset.EduGrad),
		R: gr.D(dataset.ToySex, dataset.SexM, dataset.ToyEdu, dataset.EduCollege),
	}
	c4 := Eval(g, gr4)
	if c4.LWR != 2 || c4.LW != 6 || c4.Hom != 4 {
		t.Errorf("GR4 counts = %+v, want LWR=2 LW=6 Hom=4", c4)
	}
	if !almost(Conf(c4), 2.0/6) {
		t.Errorf("GR4 conf = %v, want 1/3", Conf(c4))
	}
	// The paper's headline: excluding the homophily effect, GR4 holds 100%.
	if !almost(Nhp(c4), 1.0) {
		t.Errorf("GR4 nhp = %v, want 1.0", Nhp(c4))
	}
	// GR3 has β = ∅ so nhp degenerates to conf (Remark 1).
	if !almost(Nhp(c3), Conf(c3)) {
		t.Errorf("GR3 nhp = %v, conf = %v; must be equal when β = ∅", Nhp(c3), Conf(c3))
	}
}

func TestEvalWithEdgeDescriptor(t *testing.T) {
	g := dataset.ToyDating()
	// All toy edges have TYPE:dates, so adding the condition changes nothing.
	base := gr.GR{L: gr.D(dataset.ToySex, dataset.SexM), R: gr.D(dataset.ToySex, dataset.SexF)}
	withW := gr.GR{L: base.L, W: gr.D(0, dataset.TypeDates), R: base.R}
	cb, cw := Eval(g, base), Eval(g, withW)
	if cb != cw {
		t.Errorf("edge descriptor changed counts: %+v vs %+v", cb, cw)
	}
}

func TestEvalSubset(t *testing.T) {
	g := dataset.ToyDating()
	r := gr.GR{L: gr.D(dataset.ToySex, dataset.SexM), R: gr.D(dataset.ToySex, dataset.SexF)}
	all := make([]int32, g.NumEdges())
	for i := range all {
		all[i] = int32(i)
	}
	if Eval(g, r) != EvalSubset(g, all, r) {
		t.Error("EvalSubset over all edges differs from Eval")
	}
	half := all[:15]
	ch := EvalSubset(g, half, r)
	if ch.LW > 15 || ch.LWR > ch.LW {
		t.Errorf("subset counts out of bounds: %+v", ch)
	}
	if ch.E != g.NumEdges() {
		t.Errorf("EvalSubset must keep global E, got %d", ch.E)
	}
}

func TestMetricFormulas(t *testing.T) {
	c := Counts{LWR: 20, LW: 50, Hom: 10, R: 100, E: 400}
	if !almost(Supp(c), 0.05) {
		t.Errorf("Supp = %v", Supp(c))
	}
	if !almost(Conf(c), 0.4) {
		t.Errorf("Conf = %v", Conf(c))
	}
	if !almost(Nhp(c), 0.5) {
		t.Errorf("Nhp = %v", Nhp(c))
	}
	if !almost(Laplace(c, 2), 21.0/52) {
		t.Errorf("Laplace = %v", Laplace(c, 2))
	}
	if !almost(Gain(c, 0.5), (20-0.5*50)/400) {
		t.Errorf("Gain = %v", Gain(c, 0.5))
	}
	if !almost(PiatetskyShapiro(c), 0.05-0.125*0.25) {
		t.Errorf("PS = %v", PiatetskyShapiro(c))
	}
	if !almost(Conviction(c), (400.0-100)/(400*(1-0.4))) {
		t.Errorf("Conviction = %v", Conviction(c))
	}
	if !almost(Lift(c), 400*0.4/100) {
		t.Errorf("Lift = %v", Lift(c))
	}
}

func TestMetricEdgeCases(t *testing.T) {
	zero := Counts{}
	for _, m := range All() {
		v := m.Score(zero)
		if m.Name == "laplace" {
			// Laplace smoothing deliberately scores 1/k on empty evidence.
			if !almost(v, 0.5) {
				t.Errorf("laplace(zero) = %v, want 0.5", v)
			}
			continue
		}
		if v != 0 {
			t.Errorf("%s(zero) = %v, want 0", m.Name, v)
		}
	}
	perfect := Counts{LWR: 10, LW: 10, R: 10, E: 100}
	if !math.IsInf(Conviction(perfect), 1) {
		t.Errorf("Conviction of conf=1 rule = %v, want +Inf", Conviction(perfect))
	}
	if Lift(Counts{LWR: 5, LW: 10, R: 0, E: 100}) != 0 {
		t.Error("Lift with empty RHS population must be 0")
	}
	// Degenerate denominator: LW == Hom can only happen with LWR == 0
	// (Theorem 1); the implementation must not divide by zero.
	if Nhp(Counts{LWR: 0, LW: 5, Hom: 5, E: 10}) != 0 {
		t.Error("Nhp with zero denominator must be 0")
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Errorf("ByName(%s): %v", m.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown metric")
	}
	if !NhpMetric.RHSAntiMonotone || !ConfMetric.RHSAntiMonotone ||
		!LaplaceMetric.RHSAntiMonotone || !GainMetric.RHSAntiMonotone {
		t.Error("laplace/gain/nhp/conf must be flagged RHS anti-monotone")
	}
	if PSMetric.RHSAntiMonotone || ConvictionMetric.RHSAntiMonotone || LiftMetric.RHSAntiMonotone {
		t.Error("PS/conviction/lift must not be flagged anti-monotone")
	}
}

// randomCounts builds internally consistent Counts: LWR ≤ LW ≤ E, Hom ≤ LW,
// LWR + Hom ≤ LW (disjoint link sets, Theorem 1(ii)), R ≤ E.
func randomCounts(lwr, lw, hom, r, e uint8) (Counts, bool) {
	c := Counts{LWR: int(lwr), LW: int(lw), Hom: int(hom), R: int(r), E: int(e)}
	if c.E == 0 {
		return c, false
	}
	if c.LW > c.E || c.R > c.E || c.LWR+c.Hom > c.LW {
		return c, false
	}
	return c, true
}

// Theorem 1: for consistent counts with LWR > 0 and Hom modelling a
// non-empty β, nhp ∈ [0, 1] and the denominator is positive.
func TestNhpBoundsProperty(t *testing.T) {
	f := func(lwr, lw, hom, r, e uint8) bool {
		c, ok := randomCounts(lwr, lw, hom, r, e)
		if !ok || c.LWR == 0 {
			return true
		}
		v := Nhp(c)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Remark 1: with β ≠ ∅ (Hom > 0), nhp ≥ conf; with Hom = 0, nhp = conf.
func TestNhpVsConfProperty(t *testing.T) {
	f := func(lwr, lw, hom, r, e uint8) bool {
		c, ok := randomCounts(lwr, lw, hom, r, e)
		if !ok {
			return true
		}
		if c.Hom == 0 {
			return almost(Nhp(c), Conf(c))
		}
		return Nhp(c) >= Conf(c)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Laplace and gain are monotone in LWR for fixed LW (the property their
// RHS anti-monotonicity relies on: adding RHS values can only shrink LWR).
func TestLaplaceGainMonotoneProperty(t *testing.T) {
	f := func(lwr, lw, e uint8) bool {
		if e == 0 || lw > e || lwr > lw || lwr == 0 {
			return true
		}
		c1 := Counts{LWR: int(lwr), LW: int(lw), E: int(e)}
		c2 := c1
		c2.LWR-- // RHS extension shrank the support
		return Laplace(c2, 2) <= Laplace(c1, 2) && Gain(c2, 0.5) <= Gain(c1, 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
