package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/hypothesis"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

// Toy verifies the paper's Examples 1-2 on the Figure 1 network.
func Toy(w io.Writer) error {
	g := dataset.ToyDating()
	wb := hypothesis.New(g)
	fmt.Fprintln(w, "== Toy network (paper Fig. 1, Examples 1-2) ==")
	for _, q := range []string{
		"(SEX:M) -> (SEX:F, RACE:Asian)",
		"(SEX:M, RACE:Asian) -> (SEX:F, RACE:Asian)",
		"(SEX:F, EDU:Grad) -> (SEX:M, EDU:Grad)",
		"(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)",
	} {
		rep, err := wb.QueryText(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-55s supp=%2d/%d conf=%5.1f%% nhp=%5.1f%%\n",
			q, rep.Supp, g.NumEdges(), 100*rep.Conf, 100*rep.Nhp)
	}
	return nil
}

// TableIIa reproduces the Pokec interestingness study: top-5 by nhp versus
// top-5 by conf with thresholds 50% and k = 300. The paper uses minSupp =
// 0.1% of 21M edges (21,078 absolute); at harness scale the same ratio
// admits small-sample noise from 188 regions, so the threshold is scaled to
// 0.5% — the absolute statistics per surviving GR are then comparable.
func TableIIa(w io.Writer, cfg Config) error {
	g := cfg.pokec()
	minSupp := g.NumEdges() / 200
	if minSupp < 1 {
		minSupp = 1
	}
	return interestingness(w, "Table IIa (Pokec-like)", g, minSupp, 0.5, 300, 5)
}

// TableIIb reproduces the DBLP study with k = 20.
func TableIIb(w io.Writer, cfg Config) error {
	g := cfg.dblp()
	minSupp := g.NumEdges() / 1000
	if minSupp < 1 {
		minSupp = 1
	}
	return interestingness(w, "Table IIb (DBLP-like)", g, minSupp, 0.5, 20, 5)
}

// interestingness runs the nhp miner and the conf miner and prints both
// rankings, annotating trivial GRs the way the paper's discussion does.
func interestingness(w io.Writer, title string, g *graph.Graph, minSupp int, minScore float64, k, show int) error {
	st := store.Build(g)
	nhpRes, err := core.MineStore(st, core.Options{
		MinSupp: minSupp, MinScore: minScore, K: k, DynamicFloor: true,
	})
	if err != nil {
		return err
	}
	confRes, err := baseline.ConfMinerStore(st, minSupp, minScore, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== %s ==  |V|=%d |E|=%d minSupp=%d min=%0.0f%% k=%d\n",
		title, g.NumNodes(), g.NumEdges(), minSupp, 100*minScore, k)

	fmt.Fprintln(w, "  Ranked by nhp:")
	printRanked(w, g, nhpRes.TopK, show, "nhp")
	fmt.Fprintln(w, "  Ranked by conf:")
	printRanked(w, g, confRes.TopK, show, "conf")

	trivialTop := 0
	limit := show
	if len(confRes.TopK) < limit {
		limit = len(confRes.TopK)
	}
	for _, s := range confRes.TopK[:limit] {
		if s.GR.Trivial(g.Schema()) {
			trivialTop++
		}
	}
	fmt.Fprintf(w, "  %d of the top-%d conf GRs are trivial homophily patterns; 0 of the nhp ones are.\n",
		trivialTop, limit)
	fmt.Fprintf(w, "  timings: GRMiner(k) %.3fs (examined %d GRs)\n",
		nhpRes.Stats.Duration.Seconds(), nhpRes.Stats.Examined)
	return nil
}

func printRanked(w io.Writer, g *graph.Graph, rs []gr.Scored, show int, scoreName string) {
	if len(rs) < show {
		show = len(rs)
	}
	for i := 0; i < show; i++ {
		s := rs[i]
		mark := ""
		if s.GR.Trivial(g.Schema()) {
			mark = "   [trivial]"
		}
		fmt.Fprintf(w, "    %d. %-58s %s=%5.1f%% supp=%d (conf=%5.1f%%)%s\n",
			i+1, s.GR.Format(g.Schema()), scoreName, 100*s.Score, s.Supp, 100*s.Conf, mark)
	}
}

// Fig4a sweeps minSupp (the paper's range [2, 10000]).
func Fig4a(w io.Writer, cfg Config) error {
	g, err := cfg.pokec4()
	if err != nil {
		return err
	}
	st := store.Build(g)
	var pts []algoTimes
	for _, minSupp := range []int{2, 10, 100, 1000, 10000} {
		pt, err := measurePoint(fmt.Sprintf("%d", minSupp), g, st, minSupp, cfg.MinNhp, cfg.K, cfg.SkipBaselines)
		if err != nil {
			return err
		}
		pts = append(pts, pt)
	}
	printSeries(w, fmt.Sprintf("== Fig 4a: time vs minSupp ==  |E|=%d minNhp=%0.0f%% k=%d",
		g.NumEdges(), 100*cfg.MinNhp, cfg.K), "minSupp", pts, cfg.SkipBaselines)
	shapeCheck(w, pts, cfg.SkipBaselines)
	return nil
}

// Fig4b sweeps minNhp ∈ [0%, 100%].
func Fig4b(w io.Writer, cfg Config) error {
	g, err := cfg.pokec4()
	if err != nil {
		return err
	}
	st := store.Build(g)
	var pts []algoTimes
	for _, nhp := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		pt, err := measurePoint(fmt.Sprintf("%0.0f%%", 100*nhp), g, st, cfg.MinSupp, nhp, cfg.K, cfg.SkipBaselines)
		if err != nil {
			return err
		}
		pts = append(pts, pt)
	}
	printSeries(w, fmt.Sprintf("== Fig 4b: time vs minNhp ==  |E|=%d minSupp=%d k=%d",
		g.NumEdges(), cfg.MinSupp, cfg.K), "minNhp", pts, cfg.SkipBaselines)
	shapeCheck(w, pts, cfg.SkipBaselines)
	return nil
}

// Fig4c sweeps the joint (k, minNhp) grid for GRMiner(k).
func Fig4c(w io.Writer, cfg Config) error {
	g, err := cfg.pokec4()
	if err != nil {
		return err
	}
	st := store.Build(g)
	fmt.Fprintf(w, "== Fig 4c: GRMiner(k) time vs k and minNhp ==  |E|=%d minSupp=%d\n",
		g.NumEdges(), cfg.MinSupp)
	fmt.Fprintf(w, "  %-8s", "k \\ nhp")
	nhps := []float64{0, 0.25, 0.5, 0.75, 1.0}
	for _, nhp := range nhps {
		fmt.Fprintf(w, " %9.0f%%", 100*nhp)
	}
	fmt.Fprintln(w)
	for _, k := range []int{1, 100, 10000} {
		fmt.Fprintf(w, "  %-8d", k)
		for _, nhp := range nhps {
			res, err := core.MineStore(st, core.Options{
				MinSupp: cfg.MinSupp, MinScore: nhp, K: k, DynamicFloor: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.4fs", res.Stats.Duration.Seconds())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  shape: tight k or large minNhp ⇒ effective pruning (small, flat times);")
	fmt.Fprintln(w, "         loose k with small minNhp is the slowest corner, as in the paper.")
	return nil
}

// Fig4d sweeps dimensionality: the first l node attributes of the Section
// VI-A listing (G, A, R, E, L, S), l = 2..6, dimensionality 2l.
func Fig4d(w io.Writer, cfg Config) error {
	full := cfg.pokec()
	var pts []algoTimes
	for l := 2; l <= 6; l++ {
		attrs := make([]int, l)
		for i := range attrs {
			attrs[i] = i
		}
		g, err := full.Restrict(attrs)
		if err != nil {
			return err
		}
		st := store.Build(g)
		pt, err := measurePoint(fmt.Sprintf("2l=%d", 2*l), g, st, cfg.MinSupp, cfg.MinNhp, cfg.K, cfg.SkipBaselines)
		if err != nil {
			return err
		}
		pts = append(pts, pt)
	}
	printSeries(w, fmt.Sprintf("== Fig 4d: time vs dimensionality ==  |E|=%d minSupp=%d minNhp=%0.0f%% k=%d",
		full.NumEdges(), cfg.MinSupp, 100*cfg.MinNhp, cfg.K), "dims", pts, cfg.SkipBaselines)
	shapeCheck(w, pts, cfg.SkipBaselines)
	return nil
}

// DBLPTime reproduces the Section VI-D sanity point: GRMiner finishes the
// DBLP dataset quickly across a grid of parameter settings (the paper
// reports ≤ 0.483 s for all settings, in C++ on 2009 hardware).
func DBLPTime(w io.Writer, cfg Config) error {
	g := cfg.dblp()
	st := store.Build(g)
	worst := time.Duration(0)
	runs := 0
	for _, minSupp := range []int{2, 67, 500} {
		for _, nhp := range []float64{0, 0.5, 0.9} {
			for _, k := range []int{1, 20, 1000} {
				res, err := core.MineStore(st, core.Options{
					MinSupp: minSupp, MinScore: nhp, K: k, DynamicFloor: true,
				})
				if err != nil {
					return err
				}
				if res.Stats.Duration > worst {
					worst = res.Stats.Duration
				}
				runs++
			}
		}
	}
	fmt.Fprintf(w, "== DBLP wall-clock ==  |V|=%d |E|=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "  worst of %d parameter settings: %.3fs (paper: ≤ 0.483s in C++)\n",
		runs, worst.Seconds())
	return nil
}

// MetricsStudy ranks DBLP GRs under every Section VII metric.
func MetricsStudy(w io.Writer, cfg Config) error {
	g := cfg.dblp()
	st := store.Build(g)
	minSupp := g.NumEdges() / 1000
	fmt.Fprintf(w, "== Section VII: alternative metrics ==  DBLP-like, minSupp=%d, top-3 each\n", minSupp)
	// Each metric gets a threshold just above its "no information" level
	// (conf-family 0.5; gain > 0; PS > 0; conviction and lift > 1, their
	// independence baselines) — otherwise the fully general () -> r GRs,
	// which score exactly at the baseline, qualify and block everything
	// more specific via Definition 5 condition (2).
	thresholds := map[string]float64{
		"nhp": 0.5, "conf": 0.5, "laplace": 0.5,
		"gain": 0.02, "piatetsky-shapiro": 0.005,
		"conviction": 1.1, "lift": 1.5,
	}
	for _, m := range metrics.All() {
		res, err := core.MineStore(st, core.Options{
			MinSupp: minSupp, MinScore: thresholds[m.Name], K: 3, Metric: m, DynamicFloor: m.RHSAntiMonotone,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  [%s]%s\n", m.Name, map[bool]string{true: " (anti-monotone: pruned in-search)", false: " (post-ranked)"}[m.RHSAntiMonotone])
		for i, s := range res.TopK {
			fmt.Fprintf(w, "    %d. %-50s score=%8.4f supp=%d\n", i+1, s.GR.Format(g.Schema()), s.Score, s.Supp)
		}
	}
	fmt.Fprintln(w, "  note: lift demotes popularity-skew GRs such as (A:AI)->(P:Poor), the paper's D1 discussion.")
	return nil
}

// Ablation quantifies two design choices: the dynamic tail ordering of
// Equation 8 (versus a static τ, which forfeits nhp pruning whenever β = ∅,
// Remark 2) and the worker-pool parallel decomposition.
func Ablation(w io.Writer, cfg Config) error {
	g, err := cfg.pokec4()
	if err != nil {
		return err
	}
	st := store.Build(g)
	fmt.Fprintf(w, "== Ablations ==  |E|=%d minSupp=%d minNhp=%0.0f%%\n",
		g.NumEdges(), cfg.MinSupp, 100*cfg.MinNhp)

	dynamic, err := core.MineStore(st, core.Options{MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp})
	if err != nil {
		return err
	}
	static, err := core.MineStore(st, core.Options{
		MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, StaticRHSOrder: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  dynamic RHS order (Eq. 8): %8.4fs, examined %8d GRs\n",
		dynamic.Stats.Duration.Seconds(), dynamic.Stats.Examined)
	fmt.Fprintf(w, "  static RHS order  (abl.) : %8.4fs, examined %8d GRs (%.2fx more)\n",
		static.Stats.Duration.Seconds(), static.Stats.Examined,
		float64(static.Stats.Examined)/float64(dynamic.Stats.Examined))

	for _, workers := range []int{2, 4, 8} {
		par, err := core.MineStore(st, core.Options{
			MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, Parallelism: workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  parallel %d workers      : %8.4fs (%.2fx vs sequential, identical results: %v)\n",
			workers, par.Stats.Duration.Seconds(),
			dynamic.Stats.Duration.Seconds()/par.Stats.Duration.Seconds(),
			sameTop(par.TopK, dynamic.TopK))
	}
	fmt.Fprintf(w, "  (parallel speedup is bounded by GOMAXPROCS = %d on this machine)\n",
		runtime.GOMAXPROCS(0))
	return nil
}

// sameTop compares two ranked lists by GR identity.
func sameTop(a, b []gr.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].GR.Key() != b[i].GR.Key() {
			return false
		}
	}
	return true
}

// StoreSize reproduces the Section IV-A space accounting: compact model vs
// single table.
func StoreSize(w io.Writer, cfg Config) error {
	g := cfg.pokec()
	st := store.Build(g)
	compact := st.CompactSizeCells()
	flat := store.SingleTableSizeCells(g)
	fmt.Fprintf(w, "== Data model size (Section IV-A) ==  |V|=%d |E|=%d #AttrV=%d #AttrE=%d\n",
		g.NumNodes(), g.NumEdges(), len(g.Schema().Node), len(g.Schema().Edge))
	fmt.Fprintf(w, "  compact (LArray+EArray+RArray): %12d cells\n", compact)
	fmt.Fprintf(w, "  single table (|E|×(2#AttrV+#AttrE)): %8d cells\n", flat)
	fmt.Fprintf(w, "  ratio: %.2fx smaller\n", float64(flat)/float64(compact))
	return nil
}
