// Package gate implements the benchmark-regression comparator behind the CI
// bench-gate job (DESIGN.md §7). It parses `go test -bench -benchmem` output,
// reduces the -count repetitions of each benchmark to per-metric medians, and
// compares those medians against a committed baseline file with per-metric
// regression thresholds.
//
// The package is stdlib-only on purpose: the gate must run in CI (and
// locally) without fetching any comparison tool, and its verdict must be
// auditable from a couple of hundred lines of code.
//
// Metrics are gated asymmetrically by design. allocs/op is near-deterministic
// for a fixed -benchtime, so it gets the tightest threshold; B/op wobbles
// with buffer-growth amortisation across iteration counts, so it gets a
// looser one; ns/op on shared CI runners is noise and is not gated unless a
// threshold is explicitly configured.
package gate

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark run's measurements. NsPerOp is always present in
// `go test -bench` output; BytesPerOp/AllocsPerOp require -benchmem (or
// b.ReportAllocs, which every gate benchmark sets).
type Sample struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	HasMem      bool
}

// Suite maps a benchmark name (GOMAXPROCS suffix stripped, e.g.
// "BenchmarkApplyBatch/mixed") to its runs, in input order.
type Suite map[string][]Sample

// Parse reads `go test -bench` output, collecting every benchmark result
// line. Non-result lines (goos/pkg headers, PASS, timings) are ignored, so
// the concatenated output of several packages parses as one suite.
func Parse(r io.Reader) (Suite, error) {
	suite := make(Suite)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("gate: malformed benchmark line %q", line)
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		name := stripProcs(fields[0])
		var s Sample
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("gate: bad value in %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = val
			case "B/op":
				s.BytesPerOp = val
				s.HasMem = true
			case "allocs/op":
				s.AllocsPerOp = val
				s.HasMem = true
			}
		}
		suite[name] = append(suite[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("gate: no benchmark result lines found")
	}
	return suite, nil
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name
// ("BenchmarkFoo/bar-8" -> "BenchmarkFoo/bar"), so baselines transfer
// between machines with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Medians reduces each benchmark's runs to the per-metric median — medians,
// not means, so one descheduled run out of -count cannot move the verdict.
func Medians(s Suite) map[string]Sample {
	out := make(map[string]Sample, len(s))
	for name, runs := range s {
		m := Sample{
			NsPerOp:     median(runs, func(r Sample) float64 { return r.NsPerOp }),
			HasMem:      runs[0].HasMem,
			BytesPerOp:  median(runs, func(r Sample) float64 { return r.BytesPerOp }),
			AllocsPerOp: median(runs, func(r Sample) float64 { return r.AllocsPerOp }),
		}
		out[name] = m
	}
	return out
}

func median(runs []Sample, get func(Sample) float64) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = get(r)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Thresholds are the allowed regression fractions per metric: 0.10 allows a
// 10% increase over baseline before a delta counts as a regression. A
// negative threshold disables gating that metric (it is still reported).
type Thresholds struct {
	NsPct     float64
	BytesPct  float64
	AllocsPct float64
}

// DefaultThresholds gates allocations tightly, bytes loosely, and leaves
// wall time ungated (CI runners share cores; see the package comment).
func DefaultThresholds() Thresholds {
	return Thresholds{NsPct: -1, BytesPct: 0.25, AllocsPct: 0.10}
}

// Delta is one benchmark metric's baseline-to-current movement.
type Delta struct {
	Benchmark string
	Metric    string // "ns/op", "B/op", "allocs/op"
	Base      float64
	Cur       float64
	Pct       float64 // (Cur-Base)/Base; +0.25 = 25% worse
	Gated     bool    // counted toward the verdict
}

// Report is the comparator's verdict over a baseline/current pair.
type Report struct {
	Regressions  []Delta  // gated metrics beyond threshold — the gate fails
	Improvements []Delta  // metrics that moved meaningfully in our favour
	Missing      []string // in baseline, absent from current — the gate fails
	Extra        []string // in current, absent from baseline (informational)
}

// OK reports whether the gate passes.
func (r *Report) OK() bool { return len(r.Regressions) == 0 && len(r.Missing) == 0 }

// Compare gates current against base. Both maps are medians (see Medians). A
// benchmark present in base but missing from current fails the gate —
// deleting a benchmark must be an explicit baseline update, not a silent
// skip.
func Compare(base, cur map[string]Sample, th Thresholds) *Report {
	rep := &Report{}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		rep.judge(name, "ns/op", b.NsPerOp, c.NsPerOp, th.NsPct)
		if b.HasMem && c.HasMem {
			rep.judge(name, "B/op", b.BytesPerOp, c.BytesPerOp, th.BytesPct)
			rep.judge(name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, th.AllocsPct)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			rep.Extra = append(rep.Extra, name)
		}
	}
	sort.Strings(rep.Extra)
	return rep
}

// judge classifies one metric delta. Improvements use a fixed 5% notability
// floor; tiny wobbles in either direction are not worth reporting.
func (rep *Report) judge(bench, metric string, base, cur, threshold float64) {
	d := Delta{Benchmark: bench, Metric: metric, Base: base, Cur: cur, Gated: threshold >= 0}
	switch {
	case base == 0:
		// A zero baseline (allocs/op 0) regresses on any increase at all.
		if cur > 0 && d.Gated {
			d.Pct = 1
			rep.Regressions = append(rep.Regressions, d)
		}
		return
	default:
		d.Pct = (cur - base) / base
	}
	if d.Gated && d.Pct > threshold {
		rep.Regressions = append(rep.Regressions, d)
	} else if d.Pct < -0.05 {
		rep.Improvements = append(rep.Improvements, d)
	}
}

// Format renders the report for humans (and CI logs).
func (r *Report) Format(w io.Writer) {
	for _, d := range r.Regressions {
		fmt.Fprintf(w, "REGRESSION %-45s %-10s %12.1f -> %12.1f  (%+.1f%%)\n",
			d.Benchmark, d.Metric, d.Base, d.Cur, 100*d.Pct)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(w, "MISSING    %-45s (in baseline, not in current run)\n", name)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(w, "improved   %-45s %-10s %12.1f -> %12.1f  (%+.1f%%)\n",
			d.Benchmark, d.Metric, d.Base, d.Cur, 100*d.Pct)
	}
	for _, name := range r.Extra {
		fmt.Fprintf(w, "new        %-45s (not in baseline; update the baseline to gate it)\n", name)
	}
	if r.OK() {
		fmt.Fprintf(w, "bench gate OK\n")
	}
}
