package gate

import (
	"os"
	"strings"
	"testing"
)

func parseFile(t *testing.T, path string) map[string]Sample {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	suite, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return Medians(suite)
}

func TestParseStripsProcsAndCollectsRuns(t *testing.T) {
	in := `goos: linux
pkg: grminer/internal/core
BenchmarkApplyBatch/mixed-8   	      10	  45131569 ns/op	  260677 B/op	    8640 allocs/op
BenchmarkApplyBatch/mixed-8   	      10	  44676790 ns/op	  260679 B/op	    8642 allocs/op
BenchmarkApplyBatch/mixed-8   	      10	  46464560 ns/op	  260678 B/op	    8641 allocs/op
BenchmarkNoMem-8              	 1000000	      1042 ns/op
PASS
`
	suite, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	runs, ok := suite["BenchmarkApplyBatch/mixed"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; names: %v", keys(suite))
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	med := Medians(suite)["BenchmarkApplyBatch/mixed"]
	if med.AllocsPerOp != 8641 {
		t.Errorf("median allocs/op = %v, want 8641", med.AllocsPerOp)
	}
	if med.NsPerOp != 45131569 {
		t.Errorf("median ns/op = %v, want 45131569", med.NsPerOp)
	}
	if nm := Medians(suite)["BenchmarkNoMem"]; nm.HasMem {
		t.Error("benchmark without -benchmem columns marked HasMem")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok pkg 1.0s\n")); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}

func TestEvenRunCountMedian(t *testing.T) {
	in := `BenchmarkX 10 100 ns/op
BenchmarkX 10 300 ns/op
`
	suite, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if med := Medians(suite)["BenchmarkX"].NsPerOp; med != 200 {
		t.Errorf("even-count median = %v, want 200", med)
	}
}

// TestGatePassesOnItself is the positive gate: the committed baseline
// compared against itself (and against an across-the-board improvement)
// passes.
func TestGatePassesOnItself(t *testing.T) {
	base := parseFile(t, "baseline.txt")
	rep := Compare(base, base, DefaultThresholds())
	if !rep.OK() {
		var sb strings.Builder
		rep.Format(&sb)
		t.Fatalf("baseline vs itself failed:\n%s", sb.String())
	}

	imp := parseFile(t, "testdata/improved.txt")
	rep = Compare(base, imp, DefaultThresholds())
	if !rep.OK() {
		var sb strings.Builder
		rep.Format(&sb)
		t.Fatalf("improvement flagged as regression:\n%s", sb.String())
	}
	if len(rep.Improvements) == 0 {
		t.Error("20% across-the-board improvement not reported")
	}
}

// TestGateCatchesSeededRegression is the negative gate: the committed
// ci_seed fixture (ApplyBatch/mixed allocating 50% more) must fail, and must
// fail on that benchmark. CI runs the same comparison through cmd/benchgate
// so a broken comparator cannot silently pass itself.
func TestGateCatchesSeededRegression(t *testing.T) {
	base := parseFile(t, "baseline.txt")
	reg := parseFile(t, "testdata/ci_seed/regressed.txt")
	rep := Compare(base, reg, DefaultThresholds())
	if rep.OK() {
		t.Fatal("seeded 50% allocs/op regression passed the gate")
	}
	found := false
	for _, d := range rep.Regressions {
		if d.Benchmark == "BenchmarkApplyBatch/mixed" && d.Metric == "allocs/op" {
			found = true
		}
		if d.Benchmark != "BenchmarkApplyBatch/mixed" {
			t.Errorf("unexpected regression on %s %s", d.Benchmark, d.Metric)
		}
	}
	if !found {
		t.Error("seeded allocs/op regression on ApplyBatch/mixed not flagged")
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := parseFile(t, "baseline.txt")
	cur := parseFile(t, "baseline.txt")
	delete(cur, "BenchmarkRecount")
	rep := Compare(base, cur, DefaultThresholds())
	if rep.OK() {
		t.Fatal("dropped benchmark passed the gate")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkRecount" {
		t.Fatalf("Missing = %v, want [BenchmarkRecount]", rep.Missing)
	}
}

func TestZeroBaselineRegressesOnAnyAlloc(t *testing.T) {
	base := map[string]Sample{"BenchmarkZ": {HasMem: true}}
	cur := map[string]Sample{"BenchmarkZ": {HasMem: true, AllocsPerOp: 1}}
	if Compare(base, cur, DefaultThresholds()).OK() {
		t.Fatal("0 -> 1 allocs/op passed the gate")
	}
}

// TestOverhaulReduction pins the PR's acceptance bar: the committed baseline
// must show ≥ 30% fewer allocs/op than the pre-overhaul capture
// (testdata/prechange.txt) on the ApplyBatch variants and on Recount. If a
// later change erodes the win below the bar, this fails even when the
// incremental thresholds would each have passed.
func TestOverhaulReduction(t *testing.T) {
	pre := parseFile(t, "testdata/prechange.txt")
	now := parseFile(t, "baseline.txt")
	for _, name := range []string{
		"BenchmarkApplyBatch/mixed",
		"BenchmarkApplyBatch/compaction",
		"BenchmarkRecount",
	} {
		p, ok := pre[name]
		if !ok {
			t.Fatalf("%s missing from prechange capture", name)
		}
		n, ok := now[name]
		if !ok {
			t.Fatalf("%s missing from baseline", name)
		}
		reduction := 1 - n.AllocsPerOp/p.AllocsPerOp
		if reduction < 0.30 {
			t.Errorf("%s: allocs/op %v -> %v, reduction %.1f%% < 30%%",
				name, p.AllocsPerOp, n.AllocsPerOp, 100*reduction)
		}
	}
}

func keys(s Suite) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	return out
}
