package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/rpc"
	"grminer/internal/store"
)

// DistributedPoint is one measured remote layout of the distributed
// experiment.
type DistributedPoint struct {
	// Workers and Strategy name the layout; Floor is the pruning mode
	// ("static" or "dynamic", as in the scaling and sharding reports).
	Workers  int    `json:"workers"`
	Strategy string `json:"strategy"`
	Floor    string `json:"floor"`
	// Seconds is the remote wall clock (offer round + merge, including all
	// wire traffic); Speedup divides the same-floor single-store seconds by
	// it.
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
	// Round1Offers counts candidates offered across workers; PrunedGlobal
	// the subtrees the OfferBound cut worker-side.
	Round1Offers int64 `json:"round1_offers"`
	PrunedGlobal int64 `json:"pruned_global_subtrees"`
	// Round2Requests is the (candidate, shard) exact-count volume the
	// two-round merge fetched over the wire; OneRoundGapFill what the PR 3
	// one-round bound would have fetched from the same pool.
	Round2Requests  int64 `json:"round2_exact_count_requests"`
	OneRoundGapFill int64 `json:"one_round_gap_fill"`
	// Identical records whether the merged top-k matched the same-floor
	// single-store reference exactly.
	Identical bool `json:"identical_results"`
}

// DistributedReport is the machine-readable snapshot written to
// BENCH_distributed.json: mining over real shardd-protocol workers on
// loopback TCP against the single-store miner. The CI distributed-gate
// fails the build if the top-level aggregate reports identical_results
// false or round2_below_one_round false.
type DistributedReport struct {
	Dataset string             `json:"dataset"`
	Nodes   int                `json:"nodes"`
	Edges   int                `json:"edges"`
	MinSupp int                `json:"min_supp"`
	MinNhp  float64            `json:"min_nhp"`
	K       int                `json:"k"`
	Points  []DistributedPoint `json:"points"`
	// IncrementalBatches streamed through the remote sharded incremental
	// engine, each checked against a fresh single-store mine.
	IncrementalBatches int `json:"incremental_batches"`
	// Round2BelowOneRound: at every 4+-worker point, the two-round
	// protocol's exact-count volume was strictly below the one-round
	// gap-fill volume.
	Round2BelowOneRound bool `json:"round2_below_one_round"`
	Identical           bool `json:"identical_results"`
}

// Distributed measures remote sharded mining on the Pokec-like generator:
// shard workers are served by the real internal/rpc protocol over loopback
// TCP (the same code path shardd runs), and every merged top-k is compared
// against the single-store miner with identical effective semantics. With
// cfg.JSONDir set the trajectory is written to BENCH_distributed.json.
func Distributed(w io.Writer, cfg Config) error {
	g := cfg.pokec()
	st := store.Build(g)
	modes := floorModes(cfg)
	strategies := []graph.ShardStrategy{graph.ShardBySource, graph.ShardByRHS}
	if cfg.ShardBy != "" {
		s, err := graph.ParseShardStrategy(cfg.ShardBy)
		if err != nil {
			return err
		}
		strategies = []graph.ShardStrategy{s}
	}
	maxWorkers := cfg.MaxShards
	if maxWorkers <= 0 {
		maxWorkers = 4
	}
	var counts []int
	for _, n := range []int{2, 4, 8} {
		if n <= maxWorkers {
			counts = append(counts, n)
		}
	}
	if len(counts) == 0 {
		counts = []int{1}
	}

	// One loopback worker daemon per shard slot, reused across layouts
	// (each coordinator run is one protocol session).
	most := counts[len(counts)-1]
	addrs := make([]string, most)
	listeners := make([]net.Listener, most)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		go rpc.Serve(l, nil) //nolint:errcheck // closed below
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	rep := DistributedReport{
		Dataset: "pokec-like", Nodes: g.NumNodes(), Edges: g.NumEdges(),
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
		Identical: true, Round2BelowOneRound: true,
	}
	fmt.Fprintf(w, "== Distributed: shardd workers over loopback vs single store ==  |V|=%d |E|=%d minSupp=%d minNhp=%0.0f%% k=%d\n",
		rep.Nodes, rep.Edges, rep.MinSupp, 100*rep.MinNhp, rep.K)
	fmt.Fprintf(w, "  %-8s %-6s %-8s %10s %9s %9s %9s %10s %10s\n",
		"workers", "by", "floor", "seconds", "speedup", "offers", "round2", "one-round", "identical")

	for _, mode := range modes {
		seq, err := core.MineStore(st, mode.base)
		if err != nil {
			return err
		}
		seqSecs := seq.Stats.Duration.Seconds()
		fmt.Fprintf(w, "  %-8s %-6s %-8s %10.4f %9s %9s %9s %10s %10s\n",
			"single", "-", mode.name, seqSecs, "1.00x", "-", "-", "-", "-")
		for _, strategy := range strategies {
			for _, n := range counts {
				sc, err := core.NewShardCoordinatorFrom(g, mode.base,
					core.ShardOptions{Shards: n, Strategy: strategy}, rpc.Builder(addrs[:n]))
				if err != nil {
					return err
				}
				res, err := sc.Mine()
				if cerr := sc.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
				pt := DistributedPoint{
					Workers: n, Strategy: string(strategy), Floor: mode.name,
					Seconds:         res.Stats.Duration.Seconds(),
					Round1Offers:    res.Stats.ShardOffers,
					PrunedGlobal:    res.Stats.PrunedGlobal,
					Round2Requests:  res.Stats.ExactCountRequests,
					OneRoundGapFill: res.Stats.OneRoundGapFill,
					Identical:       sameTop(res.TopK, seq.TopK),
				}
				if pt.Seconds > 0 && seqSecs > 0 {
					pt.Speedup = seqSecs / pt.Seconds
				}
				rep.Points = append(rep.Points, pt)
				rep.Identical = rep.Identical && pt.Identical
				if pt.Workers >= 4 && pt.Round2Requests >= pt.OneRoundGapFill {
					rep.Round2BelowOneRound = false
				}
				fmt.Fprintf(w, "  %-8d %-6s %-8s %10.4f %8.2fx %9d %9d %10d %10v\n",
					n, strategy, mode.name, pt.Seconds, pt.Speedup,
					pt.Round1Offers, pt.Round2Requests, pt.OneRoundGapFill, pt.Identical)
			}
		}
	}

	// Remote incremental: stream batches through shardd workers (worker-side
	// pool maintenance) and check the maintained top-k per batch.
	incWorkers := 2
	if incWorkers > most {
		incWorkers = most
	}
	incIdentical, batches, err := distributedIncremental(g.Schema(), cfg, addrs[:incWorkers])
	if err != nil {
		return err
	}
	rep.IncrementalBatches = batches
	rep.Identical = rep.Identical && incIdentical
	fmt.Fprintf(w, "  incremental over %d remote workers: %d batches, identical per batch: %v\n",
		incWorkers, batches, incIdentical)

	if rep.Identical {
		fmt.Fprintln(w, "  shape: remote ≡ single store at every layout and floor mode ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — a remote run diverged from its single-store reference")
	}
	if rep.Round2BelowOneRound {
		fmt.Fprintln(w, "  shape: round-2 exact-count volume strictly below the one-round gap-fill at 4+ workers ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — the two-round protocol did not beat the one-round gap-fill volume")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_distributed.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// distributedIncremental streams random valid batches through a remote
// sharded incremental engine, asserting the maintained top-k equals a
// fresh single-store mine after every batch.
func distributedIncremental(schema *graph.Schema, cfg Config, addrs []string) (identical bool, batches int, err error) {
	// A fresh, smaller graph: the engine owns it and appends.
	small := cfg
	small.PokecNodes = cfg.PokecNodes / 2
	if small.PokecNodes < 200 {
		small.PokecNodes = cfg.PokecNodes
	}
	g := small.pokec()
	opt := core.Options{
		MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K,
		DynamicFloor: true, ExactGenerality: true,
	}
	inc, err := core.NewIncrementalShardedFrom(g, opt,
		core.ShardOptions{Shards: len(addrs)}, rpc.Builder(addrs))
	if err != nil {
		return false, 0, err
	}
	defer inc.Close()

	r := rand.New(rand.NewSource(cfg.Seed + 41))
	identical = true
	const nBatches, batchSize = 3, 200
	for b := 0; b < nBatches; b++ {
		edges := make([]core.EdgeInsert, batchSize)
		for i := range edges {
			e := core.EdgeInsert{Src: r.Intn(g.NumNodes()), Dst: r.Intn(g.NumNodes())}
			for _, attr := range schema.Edge {
				e.Vals = append(e.Vals, graph.Value(1+r.Intn(attr.Domain)))
			}
			edges[i] = e
		}
		res, _, err := inc.Apply(edges)
		if err != nil {
			return false, b, err
		}
		ref, err := core.Mine(g, inc.Options())
		if err != nil {
			return false, b, err
		}
		identical = identical && sameTop(res.TopK, ref.TopK)
		batches++
	}
	return identical, batches, nil
}
