package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/serve"
	"grminer/internal/serve/apiv1"
)

// ServingLatency summarizes one request class's latency distribution.
type ServingLatency struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// ServingReport is the machine-readable snapshot written to
// BENCH_serving.json: mixed read/ingest traffic against a live /v1 API,
// checked for exactness against a shadow oracle engine and an offline
// re-mine. The CI serving-gate fails the build when identical_results is
// false.
type ServingReport struct {
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`

	MinSupp int     `json:"min_supp"`
	MinNhp  float64 `json:"min_nhp"`
	K       int     `json:"k"`

	// Addr is the server driven; External is true when it was a separately
	// launched grminerd (cfg.ServeAddr) rather than an in-process listener.
	Addr     string `json:"addr"`
	External bool   `json:"external_server"`

	// Batches/BatchEdges/BatchDeletes describe the ingest stream; Readers
	// concurrent read loops ran against it for its whole duration.
	Batches      int `json:"batches"`
	BatchEdges   int `json:"batch_edges"`
	BatchDeletes int `json:"batch_deletes"`
	Readers      int `json:"readers"`

	ReadTopK ServingLatency `json:"read_topk_latency"`
	ReadRule ServingLatency `json:"read_rule_latency"`
	Ingest   ServingLatency `json:"ingest_latency"`

	// FinalEpoch and FinalTotalEdges come from the last served snapshot.
	FinalEpoch      uint64 `json:"final_epoch"`
	FinalTotalEdges int    `json:"final_total_edges"`

	// ServedIdentical: the served top-k equals the shadow oracle engine fed
	// the same batches. OfflineIdentical: that oracle equals a from-scratch
	// re-mine of its final graph. Identical is their conjunction — the
	// serving path returned exactly what offline mining computes.
	ServedIdentical  bool `json:"served_identical"`
	OfflineIdentical bool `json:"offline_identical"`
	Identical        bool `json:"identical_results"`
}

// servingOpts is the one place the experiment's mining options are derived,
// so the shadow oracle and the in-process server can never drift apart.
func servingOpts(cfg Config) core.Options {
	return core.Options{
		MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K,
		DynamicFloor: cfg.K > 0,
	}
}

// Serving drives mixed read/ingest traffic against a live /v1 HTTP API and
// measures read/ingest latency percentiles while checking exactness: every
// batch also feeds a shadow oracle engine over an identical generated graph,
// and at the end the served top-k must match the oracle and the oracle must
// match an offline re-mine.
//
// With cfg.ServeAddr set, the traffic goes to an externally launched
// grminerd (which must have been started on the same dataset flags:
// -data pokec -nodes/-deg/-seed/-minsupp/-minnhp/-k as this run); otherwise
// the experiment hosts the server itself on an in-process loopback listener,
// exercising the very same serve.Server the daemon runs.
func Serving(w io.Writer, cfg Config) error {
	opt := servingOpts(cfg)

	// The shadow oracle: an identical graph (same generator, same seed) fed
	// the same batch stream through a local incremental engine.
	gOracle := cfg.pokec()
	oracle, err := core.NewIncremental(gOracle, opt)
	if err != nil {
		return err
	}

	base := ""
	external := cfg.ServeAddr != ""
	if external {
		base = "http://" + cfg.ServeAddr
	} else {
		gServer := cfg.pokec()
		inc, err := core.NewIncremental(gServer, opt)
		if err != nil {
			return err
		}
		srv := serve.New(inc, gServer)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck // closed below
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// Parity check before any traffic: the server must be mining the same
	// network under the same thresholds, or "identical" would be vacuous.
	var st apiv1.StatusResponse
	if err := getJSON(client, base+"/v1/status", &st); err != nil {
		return fmt.Errorf("serving: %s unreachable: %w", base, err)
	}
	seed := oracle.Result()
	if st.TotalEdges != seed.TotalEdges || st.MinSupp != cfg.MinSupp || st.K != cfg.K {
		return fmt.Errorf("serving: server at %s mines |E|=%d minSupp=%d k=%d; this run expects |E|=%d minSupp=%d k=%d — launch grminerd with matching -data/-nodes/-deg/-seed/-minsupp/-minnhp/-k",
			base, st.TotalEdges, st.MinSupp, st.K, seed.TotalEdges, cfg.MinSupp, cfg.K)
	}

	rep := ServingReport{
		Dataset: "pokec-like", Nodes: gOracle.NumNodes(), Edges: seed.TotalEdges,
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
		Addr: base, External: external,
	}
	fmt.Fprintf(w, "== Serving: mixed read/ingest traffic over the /v1 API ==  |V|=%d |E|=%d minSupp=%d minNhp=%0.0f%% k=%d (%s)\n",
		rep.Nodes, rep.Edges, rep.MinSupp, 100*rep.MinNhp, rep.K, rep.Addr)

	// Readers hammer the wait-free endpoints for the writer's whole run.
	const readers = 4
	rep.Readers = readers
	done := make(chan struct{})
	var wg sync.WaitGroup
	readErr := make(chan error, readers)
	topkLat := make([][]time.Duration, readers)
	ruleLat := make([][]time.Duration, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var (
					url  = base + "/v1/topk?limit=10"
					sink = &topkLat[r]
				)
				if i%2 == 1 {
					url = base + "/v1/rules/1"
					sink = &ruleLat[r]
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case readErr <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode):
					default:
					}
					return
				}
				*sink = append(*sink, time.Since(t0))
			}
		}(r)
	}

	// The writer streams deterministic batches — inserts plus retractions of
	// its own earlier inserts — to the server AND the shadow oracle.
	const nBatches, batchSize, delPerBatch = 6, 200, 20
	rng := rand.New(rand.NewSource(cfg.Seed + 73))
	var live []core.EdgeInsert
	var ingestLat []time.Duration
	var lastIngest apiv1.IngestResponse
	schema := gOracle.Schema()
	for b := 0; b < nBatches; b++ {
		batch := core.Batch{Ins: make([]core.EdgeInsert, batchSize)}
		for i := range batch.Ins {
			e := core.EdgeInsert{Src: rng.Intn(rep.Nodes), Dst: rng.Intn(rep.Nodes)}
			for _, attr := range schema.Edge {
				e.Vals = append(e.Vals, graph.Value(1+rng.Intn(attr.Domain)))
			}
			batch.Ins[i] = e
		}
		live = append(live, batch.Ins...)
		if b > 0 {
			for i := 0; i < delPerBatch; i++ {
				d := live[0]
				live = live[1:]
				batch.Del = append(batch.Del, core.EdgeDelete{Src: d.Src, Dst: d.Dst, Vals: d.Vals})
			}
		}
		rep.BatchEdges += len(batch.Ins)
		rep.BatchDeletes += len(batch.Del)

		t0 := time.Now()
		if err := postJSON(client, base+"/v1/ingest", ingestRequest(batch), &lastIngest); err != nil {
			close(done)
			wg.Wait()
			return fmt.Errorf("serving: batch %d: %w", b, err)
		}
		ingestLat = append(ingestLat, time.Since(t0))
		if _, _, err := oracle.ApplyBatch(batch); err != nil {
			close(done)
			wg.Wait()
			return fmt.Errorf("serving: oracle batch %d: %w", b, err)
		}
		rep.Batches++
	}
	close(done)
	wg.Wait()
	select {
	case err := <-readErr:
		return fmt.Errorf("serving: reader failed mid-run: %w", err)
	default:
	}

	// Exactness: served == shadow oracle == offline re-mine.
	var served apiv1.TopKResponse
	if err := getJSON(client, base+"/v1/topk", &served); err != nil {
		return err
	}
	rep.FinalEpoch = served.Epoch
	rep.FinalTotalEdges = served.TotalEdges
	want := oracle.Result()
	rep.ServedIdentical = served.TotalEdges == want.TotalEdges && len(served.Rules) == len(want.TopK)
	if rep.ServedIdentical {
		for i, r := range served.Rules {
			o := want.TopK[i]
			if r.GR != o.GR.Format(schema) || r.Supp != o.Supp || r.Score != o.Score {
				rep.ServedIdentical = false
				break
			}
		}
	}
	ref, err := core.Mine(gOracle, oracle.Options())
	if err != nil {
		return err
	}
	rep.OfflineIdentical = sameTop(want.TopK, ref.TopK)
	rep.Identical = rep.ServedIdentical && rep.OfflineIdentical

	rep.ReadTopK = summarize(flatten(topkLat))
	rep.ReadRule = summarize(flatten(ruleLat))
	rep.Ingest = summarize(ingestLat)

	fmt.Fprintf(w, "  %-18s %8s %10s %10s %10s\n", "request", "count", "p50", "p99", "max")
	for _, row := range []struct {
		name string
		lat  ServingLatency
	}{
		{"GET /v1/topk", rep.ReadTopK},
		{"GET /v1/rules/1", rep.ReadRule},
		{"POST /v1/ingest", rep.Ingest},
	} {
		fmt.Fprintf(w, "  %-18s %8d %9.2fms %9.2fms %9.2fms\n",
			row.name, row.lat.Count, row.lat.P50Ms, row.lat.P99Ms, row.lat.MaxMs)
	}
	fmt.Fprintf(w, "  ingested %d batches (+%d/-%d edges): epoch %d, |E|=%d\n",
		rep.Batches, rep.BatchEdges, rep.BatchDeletes, rep.FinalEpoch, rep.FinalTotalEdges)
	if rep.ServedIdentical {
		fmt.Fprintln(w, "  shape: served top-k ≡ shadow oracle engine after every batch ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — the served top-k diverged from the shadow oracle")
	}
	if rep.OfflineIdentical {
		fmt.Fprintln(w, "  shape: oracle ≡ offline re-mine of the final graph ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — the incremental oracle diverged from an offline re-mine")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_serving.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// ingestRequest renders a core batch as the wire request the daemon accepts.
func ingestRequest(b core.Batch) apiv1.IngestRequest {
	req := apiv1.IngestRequest{}
	for _, e := range b.Ins {
		req.Ins = append(req.Ins, wireEdge(e.Src, e.Dst, e.Vals))
	}
	for _, e := range b.Del {
		req.Del = append(req.Del, wireEdge(e.Src, e.Dst, e.Vals))
	}
	return req
}

func wireEdge(src, dst int, vals []graph.Value) apiv1.IngestEdge {
	e := apiv1.IngestEdge{Src: src, Dst: dst}
	for _, v := range vals {
		e.Vals = append(e.Vals, int(v))
	}
	return e
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func postJSON(client *http.Client, url string, req, v any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func flatten(per [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, p := range per {
		all = append(all, p...)
	}
	return all
}

// summarize computes the latency percentiles of one request class.
func summarize(lat []time.Duration) ServingLatency {
	if len(lat) == 0 {
		return ServingLatency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return ms(lat[i])
	}
	return ServingLatency{
		Count: len(lat),
		P50Ms: pct(0.50),
		P99Ms: pct(0.99),
		MaxMs: ms(lat[len(lat)-1]),
	}
}
