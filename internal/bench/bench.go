// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) on the synthetic stand-in
// datasets, printing rows/series in the same format the paper reports.
// Absolute numbers differ from the paper (different data scale, Go instead
// of C++, different hardware); the curves' shapes are the reproduction
// target. See DESIGN.md §5 for the per-experiment index; experiments with
// machine-readable output drop BENCH_*.json snapshots (Config.JSONDir).
package bench

import (
	"fmt"
	"io"
	"time"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/graph"
	"grminer/internal/store"
)

// Config scales the harness. Defaults keep a full `grbench -exp all` run in
// the minutes range on a laptop; raise PokecNodes/PokecDeg toward the real
// dataset (1.44M nodes, avg degree ~14.7) for paper-scale runs.
type Config struct {
	// PokecNodes and PokecDeg control the synthetic Pokec size.
	PokecNodes int
	PokecDeg   float64
	// DBLPAuthors and DBLPPairs control the synthetic DBLP size; defaults
	// match the real dataset exactly.
	DBLPAuthors int
	DBLPPairs   int
	// Seed drives both generators.
	Seed int64
	// MinSupp, MinNhp, K are the default parameter settings of Section
	// VI-D (the paper defaults to absolute 50, 50%, 100).
	MinSupp int
	MinNhp  float64
	K       int
	// SkipBaselines drops BL1/BL2 from the figure sweeps (they dominate
	// the runtime, exactly as the paper reports).
	SkipBaselines bool
	// Procs caps the worker counts the scaling experiment sweeps
	// (0 = runtime.NumCPU()).
	Procs int
	// Auto adds an AutoTune-planned point to the scaling experiment.
	Auto bool
	// MaxShards caps the shard counts the sharding experiment sweeps
	// (0 = 8); ShardBy restricts it to one routing strategy ("" = both).
	MaxShards int
	ShardBy   string
	// JSONDir, when non-empty, is where experiments drop machine-readable
	// BENCH_*.json snapshots alongside their text reports.
	JSONDir string
	// ServeAddr points the serving experiment at an externally launched
	// grminerd (host:port); empty hosts the server in-process.
	ServeAddr string
	// FailoverWorkers / FailoverStandby point the failover experiment at
	// externally launched shardd daemons (comma-separated host:port lists);
	// empty hosts killable daemons in-process. FailoverKillPid names the
	// external victim process (the daemon at the first FailoverWorkers
	// address) to SIGKILL mid-run.
	FailoverWorkers string
	FailoverStandby string
	FailoverKillPid int
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		PokecNodes:  10000,
		PokecDeg:    12,
		DBLPAuthors: 28702,
		DBLPPairs:   33416,
		Seed:        1,
		MinSupp:     50,
		MinNhp:      0.5,
		K:           100,
	}
}

// pokec builds the Pokec-like graph for cfg.
func (cfg Config) pokec() *graph.Graph {
	pc := datagen.DefaultPokecConfig()
	pc.Nodes = cfg.PokecNodes
	pc.AvgOutDegree = cfg.PokecDeg
	pc.Seed = cfg.Seed
	return datagen.Pokec(pc)
}

// dblp builds the DBLP-like graph for cfg.
func (cfg Config) dblp() *graph.Graph {
	dc := datagen.DefaultDBLPConfig()
	dc.Authors = cfg.DBLPAuthors
	dc.Pairs = cfg.DBLPPairs
	dc.Seed = cfg.Seed
	return datagen.DBLP(dc)
}

// pokec4 restricts the Pokec graph to the four largest-domain node
// attributes (Age, Region, Education, What-Looking-For), the setting of the
// paper's Figure 4a-4c ("the dimensionality of search space for GRs is 8").
func (cfg Config) pokec4() (*graph.Graph, error) {
	g := cfg.pokec()
	return g.Restrict([]int{datagen.PokecAge, datagen.PokecRegion, datagen.PokecEdu, datagen.PokecLooking})
}

// Experiment names, in run order for "all".
var Names = []string{
	"toy", "tableIIa", "tableIIb",
	"fig4a", "fig4b", "fig4c", "fig4d",
	"dblp-time", "metrics", "storesize", "ablation", "scaling",
	"incremental", "dynamic", "sharding", "distributed", "failover", "serving",
}

// Run executes one named experiment, writing its report to w.
func Run(name string, w io.Writer, cfg Config) error {
	switch name {
	case "toy":
		return Toy(w)
	case "tableIIa":
		return TableIIa(w, cfg)
	case "tableIIb":
		return TableIIb(w, cfg)
	case "fig4a":
		return Fig4a(w, cfg)
	case "fig4b":
		return Fig4b(w, cfg)
	case "fig4c":
		return Fig4c(w, cfg)
	case "fig4d":
		return Fig4d(w, cfg)
	case "dblp-time":
		return DBLPTime(w, cfg)
	case "metrics":
		return MetricsStudy(w, cfg)
	case "storesize":
		return StoreSize(w, cfg)
	case "ablation":
		return Ablation(w, cfg)
	case "scaling":
		return Scaling(w, cfg)
	case "incremental":
		return Incremental(w, cfg)
	case "dynamic":
		return Dynamic(w, cfg)
	case "sharding":
		return Sharding(w, cfg)
	case "distributed":
		return Distributed(w, cfg)
	case "failover":
		return Failover(w, cfg)
	case "serving":
		return Serving(w, cfg)
	case "all":
		for _, n := range Names {
			if err := Run(n, w, cfg); err != nil {
				return fmt.Errorf("bench: %s: %w", n, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, append(Names, "all"))
	}
}

// floorMode pairs a pruning-mode label with the reference options the
// engine-comparison experiments (scaling, sharding) mine under.
type floorMode struct {
	name string
	base core.Options
}

// floorModes returns the two reference modes those experiments sweep:
// "static" (plain Definition 5 top-k) and "dynamic" (GRMiner(k) with
// ExactGenerality — the semantics the parallel, incremental, and sharded
// engines all guarantee under a dynamic floor). Keeping this in one place
// keeps the two BENCH reports measuring the same baselines.
func floorModes(cfg Config) []floorMode {
	return []floorMode{
		{"static", core.Options{MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K}},
		{"dynamic", core.Options{
			MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K,
			DynamicFloor: true, ExactGenerality: true,
		}},
	}
}

// timing runners ------------------------------------------------------------

// algoTimes measures one parameter point for all four algorithms; absent
// algorithms (SkipBaselines) report -1.
type algoTimes struct {
	label                       string
	grminerK, grminer, bl2, bl1 float64
	examinedK, examinedNoK      int64
	results                     int
}

func secs(d time.Duration) float64 { return d.Seconds() }

// measurePoint runs GRMiner(k), GRMiner, and (optionally) BL2/BL1 at the
// given thresholds over a shared store/graph.
func measurePoint(label string, g *graph.Graph, st *store.Store, minSupp int, minNhp float64, k int, skipBL bool) (algoTimes, error) {
	pt := algoTimes{label: label, bl1: -1, bl2: -1}

	resK, err := core.MineStore(st, core.Options{
		MinSupp: minSupp, MinScore: minNhp, K: k, DynamicFloor: true,
	})
	if err != nil {
		return pt, err
	}
	pt.grminerK = secs(resK.Stats.Duration)
	pt.examinedK = resK.Stats.Examined
	pt.results = len(resK.TopK)

	res, err := core.MineStore(st, core.Options{MinSupp: minSupp, MinScore: minNhp})
	if err != nil {
		return pt, err
	}
	pt.grminer = secs(res.Stats.Duration)
	pt.examinedNoK = res.Stats.Examined

	if !skipBL {
		b2, err := baseline.BL2Store(st, baseline.Options{MinSupp: minSupp, MinScore: minNhp, K: k})
		if err != nil {
			return pt, err
		}
		pt.bl2 = secs(b2.Duration)
		b1, err := baseline.BL1(g, baseline.Options{MinSupp: minSupp, MinScore: minNhp, K: k})
		if err != nil {
			return pt, err
		}
		pt.bl1 = secs(b1.Duration)
	}
	return pt, nil
}

// printSeries renders a sweep as an aligned table.
func printSeries(w io.Writer, title, paramName string, pts []algoTimes, skipBL bool) {
	fmt.Fprintf(w, "%s\n", title)
	if skipBL {
		fmt.Fprintf(w, "  %-14s %12s %12s %10s %12s %12s\n",
			paramName, "GRMiner(k)/s", "GRMiner/s", "results", "examined(k)", "examined")
	} else {
		fmt.Fprintf(w, "  %-14s %12s %12s %12s %12s %10s\n",
			paramName, "GRMiner(k)/s", "GRMiner/s", "BL2/s", "BL1/s", "results")
	}
	for _, p := range pts {
		if skipBL {
			fmt.Fprintf(w, "  %-14s %12.4f %12.4f %10d %12d %12d\n",
				p.label, p.grminerK, p.grminer, p.results, p.examinedK, p.examinedNoK)
		} else {
			fmt.Fprintf(w, "  %-14s %12.4f %12.4f %12.4f %12.4f %10d\n",
				p.label, p.grminerK, p.grminer, p.bl2, p.bl1, p.results)
		}
	}
}

// shapeCheck prints whether the expected ordering held across a sweep; the
// harness is honest about deviations instead of hiding them.
func shapeCheck(w io.Writer, pts []algoTimes, skipBL bool) {
	if skipBL {
		return
	}
	ok := true
	for _, p := range pts {
		if p.bl2 >= 0 && (p.grminerK > p.bl2 || p.grminer > p.bl1) {
			ok = false
		}
	}
	if ok {
		fmt.Fprintln(w, "  shape: GRMiner variants ≤ baselines at every point ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — some baseline point beat a GRMiner variant")
	}
}
