package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/store"
)

// DynamicPoint is one measured batch size of the fully dynamic experiment.
type DynamicPoint struct {
	// BatchInserts sizes the insert-only batches; BatchDeletes sizes the
	// retraction half of the interleaved mixed batches (which also carry
	// BatchInserts/4 insertions). Inserted/Deleted report actual volumes.
	BatchInserts int `json:"batch_inserts"`
	BatchDeletes int `json:"batch_deletes"`
	// Batches, Inserted and Deleted describe the measured stream.
	Batches  int `json:"batches"`
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// PostingSeconds is the total ApplyBatch time of the default engine
	// (store posting lists); PartitionSeconds the same stream through the
	// PR 2 per-batch partition-pass path (Options.NoPostingLists) — the
	// pre-posting-list baseline; FullSeconds a fresh batch re-mine of the
	// surviving graph after every batch.
	PostingSeconds   float64 `json:"apply_seconds_postings"`
	PartitionSeconds float64 `json:"apply_seconds_partition"`
	FullSeconds      float64 `json:"full_remine_seconds"`
	// PostingSpeedup is PartitionSeconds / PostingSeconds for this point;
	// the gating boolean lives at the report level, summed across points.
	PostingSpeedup float64 `json:"posting_speedup"`
	// TopKEvictionsByDeletion counts batches containing deletions after
	// which a previous top-k member left the reference list — the demotion
	// case the engines' decrement paths must get right.
	TopKEvictionsByDeletion int `json:"topk_evictions_by_deletion"`
	// Identical records whether BOTH engines matched the batch re-mine
	// after every single batch.
	Identical bool `json:"identical_results"`
}

// DynamicReport is the machine-readable snapshot written to
// BENCH_dynamic.json: per-batch cost of maintaining the top-k under a fully
// dynamic (insert + delete) stream, posting-list path versus the PR 2
// partition-pass path, both checked for exactness against full re-mines.
type DynamicReport struct {
	Dataset   string `json:"dataset"`
	Nodes     int    `json:"nodes"`
	BaseEdges int    `json:"base_edges"`
	// Dims is the GR search-space dimensionality (2 × node attributes, the
	// Figure 4d convention); the posting-list saving scales with it.
	Dims    int            `json:"dims"`
	MinSupp int            `json:"min_supp"`
	MinNhp  float64        `json:"min_nhp"`
	K       int            `json:"k"`
	Points  []DynamicPoint `json:"points"`
	// The aggregate verdicts CI gates on: every batch of every point
	// matched its full re-mine, and the summed posting-list Apply cost
	// stayed strictly below the summed PR 2 partition-pass baseline.
	AllIdentical          bool    `json:"identical_results"`
	TotalPostingSeconds   float64 `json:"apply_seconds_postings_total"`
	TotalPartitionSeconds float64 `json:"apply_seconds_partition_total"`
	PostingBelowPartition bool    `json:"posting_below_partition"`
}

// Dynamic measures fully dynamic top-k maintenance on the Pokec-like
// generator: 90% of the edges seed the engines, then mixed batches stream in
// — fresh insertions from the remaining tail interleaved with retractions of
// random live edges — through the posting-list engine and the partition-pass
// ablation, with every batch checked against a fresh re-mine of the
// surviving graph. With cfg.JSONDir set the trajectory is also written to
// BENCH_dynamic.json.
func Dynamic(w io.Writer, cfg Config) error {
	full := cfg.pokec()
	base := full.NumEdges() * 9 / 10
	stream := full.NumEdges() - base
	dims := 2 * len(full.Schema().Node)

	opt := core.Options{MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K, DynamicFloor: true}
	rep := DynamicReport{
		Dataset: "pokec-like", Nodes: full.NumNodes(), BaseEdges: base, Dims: dims,
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
	}

	fmt.Fprintf(w, "== Dynamic: top-k maintenance under edge insertions AND deletions ==  |V|=%d base|E|=%d stream=%d dims=%d minSupp=%d minNhp=%0.0f%% k=%d\n",
		rep.Nodes, base, stream, dims, cfg.MinSupp, 100*cfg.MinNhp, cfg.K)
	fmt.Fprintf(w, "  %-12s %8s %12s %12s %14s %9s %10s %10s\n",
		"batch(+/-)", "batches", "postings/s", "partition/s", "full-remine/s", "speedup", "evictions", "identical")

	for _, batchSize := range []int{4, 16, 64} {
		maxBatches := 8
		if batchSize*maxBatches > stream {
			maxBatches = stream / batchSize
		}
		if maxBatches == 0 {
			continue
		}
		pt, err := measureDynamic(full, base, batchSize, maxBatches, cfg.Seed, opt)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "  +%-5d-%-5d %8d %12.4f %12.4f %14.4f %8.2fx %10d %10v\n",
			pt.BatchInserts, pt.BatchDeletes, pt.Batches,
			pt.PostingSeconds, pt.PartitionSeconds, pt.FullSeconds,
			pt.PostingSpeedup, pt.TopKEvictionsByDeletion, pt.Identical)
	}

	rep.AllIdentical = true
	for _, pt := range rep.Points {
		rep.AllIdentical = rep.AllIdentical && pt.Identical
		rep.TotalPostingSeconds += pt.PostingSeconds
		rep.TotalPartitionSeconds += pt.PartitionSeconds
	}
	rep.PostingBelowPartition = rep.TotalPostingSeconds < rep.TotalPartitionSeconds
	allIdentical, allBelow := rep.AllIdentical, rep.PostingBelowPartition
	if allIdentical {
		fmt.Fprintln(w, "  shape: dynamic engines ≡ batch re-mine after every mixed batch ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — a maintained top-k diverged from its batch re-mine")
	}
	if allBelow {
		fmt.Fprintf(w, "  shape: posting-list Apply strictly below the partition-pass baseline (%.4fs < %.4fs) ✓\n",
			rep.TotalPostingSeconds, rep.TotalPartitionSeconds)
	} else {
		fmt.Fprintln(w, "  shape: WARNING — the partition-pass baseline beat the posting-list path")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_dynamic.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// dynamicWorkload precomputes a deterministic interleaved stream: insert-only
// batches (batchSize fresh edges from full's tail) alternate with genuinely
// MIXED batches carrying batchSize/2 retractions of random live edges (by
// endpoint+value, the engine-facing identity) alongside batchSize/4 fresh
// insertions — so every other ApplyBatch exercises pre-batch delete
// resolution coexisting with same-batch inserts. Deletions resolve against
// the pre-batch edge set, so a batch never retracts an edge it also inserts
// (retractions are drawn before the batch's inserts register).
func dynamicWorkload(full *graph.Graph, base, batchSize, batches int, seed int64) ([]core.Batch, error) {
	r := rand.New(rand.NewSource(seed + 42))
	sim, err := edgePrefix(full, base)
	if err != nil {
		return nil, err
	}
	live := make([]int, 0, sim.NumEdges())
	for e := 0; e < sim.NumEdges(); e++ {
		if sim.EdgeAlive(e) {
			live = append(live, e)
		}
	}
	out := make([]core.Batch, 0, batches)
	cut := base
	for b := 0; b < batches; b++ {
		var batch core.Batch
		ins := batchSize
		if b%2 == 1 {
			ins = batchSize / 4
			for i := 0; i < batchSize/2 && len(live) > 0; i++ {
				j := r.Intn(len(live))
				e := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				batch.Del = append(batch.Del, core.EdgeDelete{
					Src: sim.Src(e), Dst: sim.Dst(e),
					Vals: append([]graph.Value(nil), sim.EdgeValues(e)...),
				})
				if err := sim.RemoveEdge(e); err != nil {
					return nil, err
				}
			}
		}
		for i := 0; i < ins && cut < full.NumEdges(); i++ {
			if !full.EdgeAlive(cut) {
				// The source graph is a static snapshot; a tombstone here
				// means the workload would replay a retracted edge.
				return nil, fmt.Errorf("bench: source graph edge %d is tombstoned", cut)
			}
			src, dst := full.Src(cut), full.Dst(cut)
			vals := append([]graph.Value(nil), full.EdgeValues(cut)...)
			batch.Ins = append(batch.Ins, core.EdgeInsert{Src: src, Dst: dst, Vals: vals})
			e, err := sim.AddEdge(src, dst, vals...)
			if err != nil {
				return nil, err
			}
			live = append(live, e)
			cut++
		}
		out = append(out, batch)
	}
	return out, nil
}

// runEnginePhase streams the whole workload through one fresh engine,
// returning total ApplyBatch seconds and the per-batch top-k snapshots.
func runEnginePhase(full *graph.Graph, base int, workload []core.Batch, opt core.Options) (float64, [][]gr.Scored, core.Options, error) {
	g, err := edgePrefix(full, base)
	if err != nil {
		return 0, nil, opt, err
	}
	eng, err := core.NewIncremental(g, opt)
	if err != nil {
		return 0, nil, opt, err
	}
	var total float64
	tops := make([][]gr.Scored, 0, len(workload))
	for _, batch := range workload {
		res, bs, err := eng.ApplyBatch(batch)
		if err != nil {
			return 0, nil, opt, err
		}
		total += bs.Duration.Seconds()
		tops = append(tops, res.TopK)
	}
	return total, tops, eng.Options(), nil
}

// measureDynamic streams the same precomputed workload through both engine
// variants and the full-re-mine reference, timing each and checking the
// three-way equality after every batch. Each engine runs the stream as its
// own uninterrupted phase (twice, keeping the faster pass) so the measured
// Apply costs are not distorted by the other engines' cache and GC traffic.
func measureDynamic(full *graph.Graph, base, batchSize, batches int, seed int64, opt core.Options) (DynamicPoint, error) {
	pt := DynamicPoint{
		BatchInserts: batchSize, BatchDeletes: batchSize / 2,
		Batches: batches, Identical: true,
	}
	workload, err := dynamicWorkload(full, base, batchSize, batches, seed)
	if err != nil {
		return pt, err
	}
	for _, batch := range workload {
		pt.Inserted += len(batch.Ins)
		pt.Deleted += len(batch.Del)
	}

	partOpt := opt
	partOpt.NoPostingLists = true
	var postTops, partTops [][]gr.Scored
	var refOpt core.Options
	pt.PostingSeconds = math.Inf(1)
	pt.PartitionSeconds = math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		secs, tops, effOpt, err := runEnginePhase(full, base, workload, opt)
		if err != nil {
			return pt, err
		}
		if secs < pt.PostingSeconds {
			pt.PostingSeconds = secs
		}
		postTops, refOpt = tops, effOpt
		secs, tops, _, err = runEnginePhase(full, base, workload, partOpt)
		if err != nil {
			return pt, err
		}
		if secs < pt.PartitionSeconds {
			pt.PartitionSeconds = secs
		}
		partTops = tops
	}

	// Reference phase: apply the same ops to a twin graph and re-mine from
	// scratch after every batch (fresh store build included — deletions
	// invalidate the append-only store reuse the insert-only experiment
	// leaned on).
	refG, err := edgePrefix(full, base)
	if err != nil {
		return pt, err
	}
	prevRef := []gr.Scored(nil)
	for i, batch := range workload {
		for _, e := range batch.Ins {
			if _, err := refG.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
				return pt, err
			}
		}
		if err := retractAll(refG, batch.Del); err != nil {
			return pt, err
		}
		ref, err := core.MineStore(store.Build(refG), refOpt)
		if err != nil {
			return pt, err
		}
		pt.FullSeconds += ref.Stats.Duration.Seconds()
		pt.Identical = pt.Identical && sameTop(postTops[i], ref.TopK) && sameTop(partTops[i], ref.TopK)
		if len(batch.Del) > 0 && prevRef != nil && evicted(prevRef, ref.TopK) {
			pt.TopKEvictionsByDeletion++
		}
		prevRef = ref.TopK
	}
	if pt.PostingSeconds > 0 {
		pt.PostingSpeedup = pt.PartitionSeconds / pt.PostingSeconds
	}
	return pt, nil
}

// retractAll removes one live edge per EdgeDelete from g (the reference-side
// mirror of the engines' batch semantics).
func retractAll(g *graph.Graph, dels []core.EdgeDelete) error {
	for _, d := range dels {
		found := false
		for e := 0; e < g.NumEdges(); e++ {
			if !g.EdgeAlive(e) || g.Src(e) != d.Src || g.Dst(e) != d.Dst {
				continue
			}
			match := true
			for a, v := range d.Vals {
				if g.EdgeValue(e, a) != v {
					match = false
					break
				}
			}
			if match {
				if err := g.RemoveEdge(e); err != nil {
					return err
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bench: reference retraction %d->%d matched no live edge", d.Src, d.Dst)
		}
	}
	return nil
}

// evicted reports whether some member of prev is absent from cur.
func evicted(prev, cur []gr.Scored) bool {
	have := make(map[string]bool, len(cur))
	for _, s := range cur {
		have[s.GR.Key()] = true
	}
	for _, s := range prev {
		if !have[s.GR.Key()] {
			return true
		}
	}
	return false
}
