package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/store"
)

// ShardingPoint is one measured layout of the sharding experiment.
type ShardingPoint struct {
	// Shards and Strategy name the layout; Floor is the pruning mode
	// ("static" or "dynamic", the same semantics as the scaling report).
	Shards   int    `json:"shards"`
	Strategy string `json:"strategy"`
	Floor    string `json:"floor"`
	// Seconds is the sharded wall clock (offer + merge); Speedup divides
	// the same-floor single-store seconds by it.
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
	// MinShardEdges / MaxShardEdges report the assignment's skew.
	MinShardEdges int `json:"min_shard_edges"`
	MaxShardEdges int `json:"max_shard_edges"`
	// Identical records whether the merged top-k matched the same-floor
	// single-store reference exactly.
	Identical bool `json:"identical_results"`
}

// ShardingReport is the machine-readable snapshot written to
// BENCH_sharding.json: the sharded coordinator against the single-store
// miner across shard counts and routing strategies, in both floor modes.
// The CI equivalence gate fails the build if any point (or the top-level
// aggregate) reports identical_results false.
type ShardingReport struct {
	Dataset           string          `json:"dataset"`
	Nodes             int             `json:"nodes"`
	Edges             int             `json:"edges"`
	MinSupp           int             `json:"min_supp"`
	MinNhp            float64         `json:"min_nhp"`
	K                 int             `json:"k"`
	SequentialStatic  float64         `json:"sequential_static_seconds"`
	SequentialDynamic float64         `json:"sequential_dynamic_seconds"`
	Points            []ShardingPoint `json:"points"`
	Identical         bool            `json:"identical_results"`
}

// Sharding measures the sharded mining engine on the Pokec-like generator:
// for each floor mode, routing strategy, and shard count, the coordinator's
// merged top-k is compared against (and timed against) the single-store
// miner with identical effective semantics. With cfg.JSONDir set the
// trajectory is also written to BENCH_sharding.json.
func Sharding(w io.Writer, cfg Config) error {
	g := cfg.pokec()
	st := store.Build(g)
	modes := floorModes(cfg)
	strategies := []graph.ShardStrategy{graph.ShardBySource, graph.ShardByRHS}
	if cfg.ShardBy != "" {
		s, err := graph.ParseShardStrategy(cfg.ShardBy)
		if err != nil {
			return err
		}
		strategies = []graph.ShardStrategy{s}
	}
	maxShards := cfg.MaxShards
	if maxShards <= 0 {
		maxShards = 8
	}
	var counts []int
	for _, n := range []int{1, 2, 4, 8} {
		if n <= maxShards {
			counts = append(counts, n)
		}
	}

	rep := ShardingReport{
		Dataset: "pokec-like", Nodes: g.NumNodes(), Edges: g.NumEdges(),
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
		Identical: true,
	}
	fmt.Fprintf(w, "== Sharding: shard coordinator vs single store ==  |V|=%d |E|=%d minSupp=%d minNhp=%0.0f%% k=%d\n",
		rep.Nodes, rep.Edges, rep.MinSupp, 100*rep.MinNhp, rep.K)
	fmt.Fprintf(w, "  %-8s %-6s %-8s %10s %9s %18s %10s\n",
		"shards", "by", "floor", "seconds", "speedup", "edges min..max", "identical")

	for _, mode := range modes {
		seq, err := core.MineStore(st, mode.base)
		if err != nil {
			return err
		}
		seqSecs := seq.Stats.Duration.Seconds()
		if mode.name == "static" {
			rep.SequentialStatic = seqSecs
		} else {
			rep.SequentialDynamic = seqSecs
		}
		fmt.Fprintf(w, "  %-8s %-6s %-8s %10.4f %9s %18s %10s\n",
			"single", "-", mode.name, seqSecs, "1.00x", "-", "-")
		for _, strategy := range strategies {
			for _, n := range counts {
				sc, err := core.NewShardCoordinator(g, mode.base, core.ShardOptions{
					Shards: n, Strategy: strategy,
				})
				if err != nil {
					return err
				}
				res, err := sc.Mine()
				if err != nil {
					return err
				}
				plan := sc.Plan()
				pt := ShardingPoint{
					Shards: n, Strategy: string(strategy), Floor: mode.name,
					Seconds:       res.Stats.Duration.Seconds(),
					MinShardEdges: plan.Edges[0],
					MaxShardEdges: plan.Edges[0],
					Identical:     sameTop(res.TopK, seq.TopK),
				}
				for _, e := range plan.Edges {
					if e < pt.MinShardEdges {
						pt.MinShardEdges = e
					}
					if e > pt.MaxShardEdges {
						pt.MaxShardEdges = e
					}
				}
				if pt.Seconds > 0 && seqSecs > 0 {
					pt.Speedup = seqSecs / pt.Seconds
				}
				rep.Points = append(rep.Points, pt)
				rep.Identical = rep.Identical && pt.Identical
				fmt.Fprintf(w, "  %-8d %-6s %-8s %10.4f %8.2fx %10d..%-6d %10v\n",
					n, strategy, mode.name, pt.Seconds, pt.Speedup,
					pt.MinShardEdges, pt.MaxShardEdges, pt.Identical)
			}
		}
	}
	if rep.Identical {
		fmt.Fprintln(w, "  shape: sharded ≡ single store at every layout and floor mode ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — a sharded run diverged from its single-store reference")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_sharding.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}
