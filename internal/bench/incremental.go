package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// IncrementalPoint is one measured batch size of the incremental experiment.
type IncrementalPoint struct {
	// BatchSize is the number of edges per ingested batch.
	BatchSize int `json:"batch_size"`
	// Batches and Edges describe the measured stream.
	Batches int `json:"batches"`
	Edges   int `json:"edges"`
	// IncrementalSeconds is the total Apply time across the stream;
	// FullSeconds is the total cost of the baseline (a full batch re-mine
	// after every batch, the pre-incremental serving strategy).
	IncrementalSeconds float64 `json:"incremental_seconds"`
	FullSeconds        float64 `json:"full_remine_seconds"`
	// PerEdgeMicrosIncremental / PerEdgeMicrosFull are the amortized
	// per-inserted-edge costs.
	PerEdgeMicrosIncremental float64 `json:"per_edge_us_incremental"`
	PerEdgeMicrosFull        float64 `json:"per_edge_us_full"`
	// Speedup is FullSeconds / IncrementalSeconds.
	Speedup float64 `json:"speedup"`
	// SubtreesRemined / SubtreesTotal report the scoped re-mine's
	// selectivity summed over the stream.
	SubtreesRemined int `json:"subtrees_remined"`
	SubtreesTotal   int `json:"subtrees_total"`
	// Identical records whether the maintained top-k matched the batch
	// re-mine after every single batch.
	Identical bool `json:"identical_results"`
}

// IncrementalReport is the machine-readable snapshot written to
// BENCH_incremental.json: amortized per-edge ingestion cost of the
// incremental engine versus a full re-mine per batch, across batch sizes.
type IncrementalReport struct {
	Dataset   string             `json:"dataset"`
	Nodes     int                `json:"nodes"`
	BaseEdges int                `json:"base_edges"`
	MinSupp   int                `json:"min_supp"`
	MinNhp    float64            `json:"min_nhp"`
	K         int                `json:"k"`
	Points    []IncrementalPoint `json:"points"`
}

// Incremental measures maintaining the top-k under edge insertions on the
// Pokec-like generator: 90% of the edges seed the engine, the rest stream
// in at several batch sizes, and every batch is checked against (and timed
// against) a fresh batch mine of the grown graph. With cfg.JSONDir set the
// trajectory is also written to BENCH_incremental.json.
func Incremental(w io.Writer, cfg Config) error {
	full := cfg.pokec()
	// Shuffle edge order so the streamed tail is not biased toward the
	// generator's last-emitted sources.
	perm := rand.New(rand.NewSource(cfg.Seed)).Perm(full.NumEdges())
	shuffled := graph.MustNew(full.Schema(), full.NumNodes())
	for v := 0; v < full.NumNodes(); v++ {
		if err := shuffled.SetNodeValues(v, full.NodeValues(v)...); err != nil {
			return err
		}
	}
	for _, e := range perm {
		if _, err := shuffled.AddEdge(full.Src(e), full.Dst(e), full.EdgeValues(e)...); err != nil {
			return err
		}
	}
	full = shuffled
	base := full.NumEdges() * 9 / 10
	stream := full.NumEdges() - base

	opt := core.Options{MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K, DynamicFloor: true}
	rep := IncrementalReport{
		Dataset: "pokec-like", Nodes: full.NumNodes(), BaseEdges: base,
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
	}

	fmt.Fprintf(w, "== Incremental: top-k maintenance under edge insertions ==  |V|=%d base|E|=%d stream=%d minSupp=%d minNhp=%0.0f%% k=%d\n",
		rep.Nodes, base, stream, cfg.MinSupp, 100*cfg.MinNhp, cfg.K)
	fmt.Fprintf(w, "  %-10s %8s %14s %14s %12s %12s %9s %10s\n",
		"batch", "batches", "incremental/s", "full-remine/s", "us/edge inc", "us/edge full", "speedup", "identical")

	for _, batchSize := range []int{16, 64, 256, 1024} {
		maxBatches := 8
		if batchSize*maxBatches > stream {
			maxBatches = stream / batchSize
		}
		if maxBatches == 0 {
			continue
		}
		pt, err := measureIncremental(full, base, batchSize, maxBatches, opt)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "  %-10d %8d %14.4f %14.4f %12.2f %12.2f %8.2fx %10v\n",
			pt.BatchSize, pt.Batches, pt.IncrementalSeconds, pt.FullSeconds,
			pt.PerEdgeMicrosIncremental, pt.PerEdgeMicrosFull, pt.Speedup, pt.Identical)
	}

	allIdentical := true
	for _, pt := range rep.Points {
		allIdentical = allIdentical && pt.Identical
	}
	if allIdentical {
		fmt.Fprintln(w, "  shape: incremental ≡ batch re-mine after every batch ✓")
	} else {
		fmt.Fprintln(w, "  shape: WARNING — a maintained top-k diverged from its batch re-mine")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_incremental.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// edgePrefix returns an independent copy of full holding its first n edges.
func edgePrefix(full *graph.Graph, n int) (*graph.Graph, error) {
	g := graph.MustNew(full.Schema(), full.NumNodes())
	for v := 0; v < full.NumNodes(); v++ {
		if err := g.SetNodeValues(v, full.NodeValues(v)...); err != nil {
			return nil, err
		}
	}
	for e := 0; e < n; e++ {
		if _, err := g.AddEdge(full.Src(e), full.Dst(e), full.EdgeValues(e)...); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// measureIncremental streams `batches` batches of `batchSize` edges into an
// engine seeded with the first `base` edges of full, timing each Apply
// against a fresh batch mine of the same grown graph.
func measureIncremental(full *graph.Graph, base, batchSize, batches int, opt core.Options) (IncrementalPoint, error) {
	pt := IncrementalPoint{BatchSize: batchSize, Batches: batches, Identical: true}

	// The engine owns its graph; rebuild the base prefix for this point.
	g, err := edgePrefix(full, base)
	if err != nil {
		return pt, err
	}
	inc, err := core.NewIncremental(g, opt)
	if err != nil {
		return pt, err
	}

	// The full-re-mine baseline grows its own store via the append path
	// (graph loading is not what is being compared — mining is).
	refG, err := edgePrefix(full, base)
	if err != nil {
		return pt, err
	}
	refStore := store.Build(refG)

	cut := base
	for b := 0; b < batches; b++ {
		batch := make([]core.EdgeInsert, 0, batchSize)
		for e := cut; e < cut+batchSize; e++ {
			batch = append(batch, core.EdgeInsert{
				Src: full.Src(e), Dst: full.Dst(e),
				Vals: append([]graph.Value(nil), full.EdgeValues(e)...),
			})
		}
		res, bs, err := inc.Apply(batch)
		if err != nil {
			return pt, err
		}
		pt.IncrementalSeconds += bs.Duration.Seconds()
		pt.SubtreesRemined += bs.SubtreesRemined
		pt.SubtreesTotal += bs.SubtreesTotal
		pt.Edges += bs.Edges

		for _, e := range batch {
			if _, err := refG.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
				return pt, err
			}
		}
		refStore.Append()
		ref, err := core.MineStore(refStore, inc.Options())
		if err != nil {
			return pt, err
		}
		pt.FullSeconds += ref.Stats.Duration.Seconds()
		pt.Identical = pt.Identical && sameTop(res.TopK, ref.TopK) &&
			topk.ChangedFrom(ref.TopK, res.TopK) == 0
		cut += batchSize
	}
	if pt.Edges > 0 {
		pt.PerEdgeMicrosIncremental = 1e6 * pt.IncrementalSeconds / float64(pt.Edges)
		pt.PerEdgeMicrosFull = 1e6 * pt.FullSeconds / float64(pt.Edges)
	}
	if pt.IncrementalSeconds > 0 && pt.FullSeconds > 0 {
		pt.Speedup = pt.FullSeconds / pt.IncrementalSeconds
	}
	return pt, nil
}
