package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/rpc"
)

// FailoverWorkerStat is one shard worker's post-run health in the failover
// report.
type FailoverWorkerStat struct {
	Shard           int    `json:"shard"`
	Addr            string `json:"addr"`
	Live            bool   `json:"live"`
	Retries         int64  `json:"retries"`
	Replacements    int64  `json:"replacements"`
	ReplayedBatches int64  `json:"replayed_batches"`
	CheckpointEpoch int64  `json:"checkpoint_epoch"`
	LogSuffixLen    int    `json:"log_suffix_len"`
}

// RecoveryPoint is one stream length on the recovery-latency curve: the same
// kill-and-replace drill run after StreamBatches acknowledged batches. With
// checkpointing the replayed-batch count (and so recovery latency) must stay
// bounded by the checkpoint interval however long the stream ran first —
// the curve is flat where pre-checkpoint recovery scaled linearly.
type RecoveryPoint struct {
	StreamBatches   int     `json:"stream_batches"`
	ReplayedBatches int64   `json:"replayed_batches"`
	RecoverySeconds float64 `json:"recovery_seconds"`
}

// FailoverReport is the machine-readable snapshot written to
// BENCH_failover.json: a remote sharded incremental run that loses a worker
// daemon mid-stream and must finish bit-identical to the unkilled oracle.
// The CI distributed-gate fails the build if identical_results or
// all_live is false, or if no replacement actually happened.
type FailoverReport struct {
	Dataset string  `json:"dataset"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	MinSupp int     `json:"min_supp"`
	MinNhp  float64 `json:"min_nhp"`
	K       int     `json:"k"`
	// Workers is the primary daemon count, Standbys the spare daemon
	// count, Shards the (multiplexed) shard-slot layout.
	Workers  int `json:"workers"`
	Standbys int `json:"standbys"`
	Shards   int `json:"shards"`
	// Batches streamed; the victim daemon dies after KillAfterBatch of
	// them have been acknowledged. CheckpointInterval is the supervisor's
	// checkpoint cadence (acked batches between worker-state snapshots),
	// so recovery replays at most that many batches per replacement.
	Batches            int    `json:"batches"`
	KillAfterBatch     int    `json:"kill_after_batch"`
	CheckpointInterval int    `json:"checkpoint_interval"`
	KilledAddr         string `json:"killed_addr"`
	// BaselineBatchSeconds is the mean pre-kill batch wall clock;
	// RecoverySeconds is the first post-kill batch (detection + capped
	// dial backoff + rebuild + replay + the batch itself).
	BaselineBatchSeconds float64 `json:"baseline_batch_seconds"`
	RecoverySeconds      float64 `json:"recovery_seconds"`
	// Replacements/Retries/ReplayedBatches aggregate the coordinator's
	// per-shard failover counters; Fleet carries them per shard.
	// MaxReplayedBatches is the worst single shard's replay count — the
	// number the checkpoint interval must bound.
	Replacements       int64                `json:"replacements"`
	Retries            int64                `json:"retries"`
	ReplayedBatches    int64                `json:"replayed_batches"`
	MaxReplayedBatches int64                `json:"max_replayed_batches"`
	Fleet              []FailoverWorkerStat `json:"fleet"`
	// RecoveryCurve re-runs the drill at growing stream lengths (in-process
	// fleets only); ReplayBounded is true when every replacement — main run
	// and curve — replayed at most CheckpointInterval batches, i.e. recovery
	// cost is a function of the interval, not of how long the stream ran.
	RecoveryCurve []RecoveryPoint `json:"recovery_curve,omitempty"`
	ReplayBounded bool            `json:"replay_bounded"`
	// AllLive: every shard ended on a live worker. Identical: every
	// post-batch top-k (before AND after the kill) matched a fresh
	// single-store mine of the same graph — the unkilled oracle.
	AllLive   bool `json:"all_live"`
	Identical bool `json:"identical_results"`
}

// killableDaemon is an in-process shardd stand-in whose death can be forced
// mid-session: Kill closes the listener and every accepted connection, so
// the coordinator sees the same transport errors a crashed daemon produces.
type killableDaemon struct {
	addr string
	l    net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

// Accept implements net.Listener, recording each session connection so Kill
// can sever it later.
func (kd *killableDaemon) Accept() (net.Conn, error) {
	c, err := kd.l.Accept()
	if err != nil {
		return nil, err
	}
	kd.mu.Lock()
	kd.conns = append(kd.conns, c)
	kd.mu.Unlock()
	return c, nil
}

func (kd *killableDaemon) Close() error   { return kd.l.Close() }
func (kd *killableDaemon) Addr() net.Addr { return kd.l.Addr() }

// Kill simulates a daemon crash: no new sessions, and the in-flight session
// drops mid-protocol.
func (kd *killableDaemon) Kill() {
	kd.l.Close()
	kd.mu.Lock()
	for _, c := range kd.conns {
		c.Close()
	}
	kd.conns = nil
	kd.mu.Unlock()
}

// startKillableDaemon serves the shard protocol with capacity slots on a
// fresh loopback port.
func startKillableDaemon(capacity int) (*killableDaemon, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	kd := &killableDaemon{addr: l.Addr().String(), l: l}
	go rpc.ServeShards(kd, capacity, nil) //nolint:errcheck // killed below
	return kd, nil
}

// Failover streams ingest batches through a remote sharded incremental
// engine whose worker fleet loses one multiplexed daemon mid-run: the
// coordinator must classify the loss, rebuild the dead shards on the
// standby daemon from their specs, replay their routed-batch logs, and keep
// every maintained top-k identical to a fresh single-store mine — the
// exactness contract of DESIGN.md §9. By default the fleet is three
// in-process loopback daemons (two primaries multiplexing two shard slots
// each, one standby); cfg.FailoverWorkers/FailoverStandby swap in external
// shardd processes, with cfg.FailoverKillPid naming the victim process to
// SIGKILL instead of the in-process crash.
func Failover(w io.Writer, cfg Config) error {
	// A smaller graph than the throughput experiments: the work here is the
	// kill/replay choreography, not mining scale.
	small := cfg
	small.PokecNodes = cfg.PokecNodes / 2
	if small.PokecNodes < 200 {
		small.PokecNodes = cfg.PokecNodes
	}
	g := small.pokec()
	schema := g.Schema()
	opt := core.Options{
		MinSupp: cfg.MinSupp, MinScore: cfg.MinNhp, K: cfg.K,
		DynamicFloor: true, ExactGenerality: true,
	}

	// Resolve the fleet: external shardd processes when configured, else
	// in-process killable daemons (capacity 2 each: shards 0,2 on the
	// victim, 1,3 on the survivor, replacements on the standby).
	var (
		addrs, standbys []string
		kill            func() error
		killedAddr      string
	)
	if cfg.FailoverWorkers != "" {
		addrs = splitAddrs(cfg.FailoverWorkers)
		standbys = splitAddrs(cfg.FailoverStandby)
		if len(addrs) == 0 || len(standbys) == 0 {
			return fmt.Errorf("bench: failover needs -failover-workers and -failover-standby address lists")
		}
		if cfg.FailoverKillPid <= 0 {
			return fmt.Errorf("bench: external failover needs -failover-kill-pid (the victim shardd's pid)")
		}
		killedAddr = addrs[0]
		kill = func() error {
			p, err := os.FindProcess(cfg.FailoverKillPid)
			if err != nil {
				return err
			}
			return p.Kill()
		}
	} else {
		daemons := make([]*killableDaemon, 3)
		for i := range daemons {
			kd, err := startKillableDaemon(2)
			if err != nil {
				return err
			}
			daemons[i] = kd
			defer kd.Kill()
		}
		addrs = []string{daemons[0].addr, daemons[1].addr}
		standbys = []string{daemons[2].addr}
		killedAddr = daemons[0].addr
		kill = func() error { daemons[0].Kill(); return nil }
	}
	shards := 2 * len(addrs)

	rep := FailoverReport{
		Dataset: "pokec-like", Nodes: g.NumNodes(), Edges: g.NumEdges(),
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
		Workers: len(addrs), Standbys: len(standbys), Shards: shards,
		KillAfterBatch: 3, CheckpointInterval: 3, KilledAddr: killedAddr,
		ReplayBounded: true, Identical: true,
	}
	fmt.Fprintf(w, "== Failover: kill a multiplexed worker mid-stream, restore from checkpoint on the standby ==  |V|=%d |E|=%d minSupp=%d minNhp=%0.0f%% k=%d\n",
		rep.Nodes, rep.Edges, rep.MinSupp, 100*rep.MinNhp, rep.K)
	fmt.Fprintf(w, "  fleet: %d shards over %d workers (+%d standby), checkpoint every %d batches, victim %s after batch %d\n",
		shards, len(addrs), len(standbys), rep.CheckpointInterval, killedAddr, rep.KillAfterBatch)

	// The curve below needs the pre-stream graph; Apply mutates g in place.
	curveBase := copyGraph(g)

	fleet := rpc.NewFleet(addrs, rpc.FleetOptions{Standbys: standbys})
	defer fleet.Close()
	inc, err := core.NewIncrementalShardedFrom(g, opt,
		core.ShardOptions{Shards: shards, CheckpointInterval: rep.CheckpointInterval}, fleet)
	if err != nil {
		return err
	}
	defer inc.Close()

	r := rand.New(rand.NewSource(cfg.Seed + 43))
	const nBatches, batchSize = 6, 150
	rep.Batches = nBatches
	var preKill float64
	for b := 0; b < nBatches; b++ {
		if b == rep.KillAfterBatch {
			if err := kill(); err != nil {
				return fmt.Errorf("bench: killing the victim worker: %w", err)
			}
		}
		edges := make([]core.EdgeInsert, batchSize)
		for i := range edges {
			e := core.EdgeInsert{Src: r.Intn(g.NumNodes()), Dst: r.Intn(g.NumNodes())}
			for _, attr := range schema.Edge {
				e.Vals = append(e.Vals, graph.Value(1+r.Intn(attr.Domain)))
			}
			edges[i] = e
		}
		start := time.Now()
		res, _, err := inc.Apply(edges)
		secs := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("bench: batch %d (kill after %d): %w", b, rep.KillAfterBatch, err)
		}
		switch {
		case b < rep.KillAfterBatch:
			preKill += secs
		case b == rep.KillAfterBatch:
			rep.RecoverySeconds = secs
		}
		// The unkilled oracle: a fresh single-store mine of the exact graph
		// the maintained top-k claims to describe.
		ref, err := core.Mine(g, inc.Options())
		if err != nil {
			return err
		}
		same := sameTop(res.TopK, ref.TopK)
		rep.Identical = rep.Identical && same
		fmt.Fprintf(w, "  batch %d%s: %7.4fs, identical to unkilled oracle: %v\n",
			b, map[bool]string{true: " (worker killed)", false: ""}[b == rep.KillAfterBatch], secs, same)
	}
	if rep.KillAfterBatch > 0 {
		rep.BaselineBatchSeconds = preKill / float64(rep.KillAfterBatch)
	}

	rep.AllLive = true
	for _, h := range inc.FleetHealth() {
		rep.Replacements += h.Replacements
		rep.Retries += h.Retries
		rep.ReplayedBatches += h.ReplayedBatches
		if h.ReplayedBatches > rep.MaxReplayedBatches {
			rep.MaxReplayedBatches = h.ReplayedBatches
		}
		if h.ReplayedBatches > h.Replacements*int64(rep.CheckpointInterval) {
			rep.ReplayBounded = false
		}
		rep.AllLive = rep.AllLive && h.Live
		rep.Fleet = append(rep.Fleet, FailoverWorkerStat{
			Shard: h.Shard, Addr: h.Addr, Live: h.Live,
			Retries: h.Retries, Replacements: h.Replacements,
			ReplayedBatches: h.ReplayedBatches,
			CheckpointEpoch: h.CheckpointEpoch, LogSuffixLen: h.LogSuffixLen,
		})
	}

	fmt.Fprintf(w, "  recovery: %.4fs (baseline batch %.4fs); %d replacements, %d re-issued ops, %d batches replayed (worst shard %d, interval %d)\n",
		rep.RecoverySeconds, rep.BaselineBatchSeconds, rep.Replacements, rep.Retries,
		rep.ReplayedBatches, rep.MaxReplayedBatches, rep.CheckpointInterval)
	switch {
	case rep.Identical && rep.AllLive && rep.Replacements > 0:
		fmt.Fprintln(w, "  shape: worker loss absorbed — every post-kill top-k ≡ the unkilled oracle ✓")
	case rep.Replacements == 0:
		fmt.Fprintln(w, "  shape: WARNING — the kill triggered no replacement (victim never consulted?)")
	default:
		fmt.Fprintln(w, "  shape: WARNING — the run diverged from the unkilled oracle after the kill")
	}

	// Recovery-latency-vs-stream-length curve (in-process fleets only): the
	// same drill after ever-longer streams. Pre-checkpoint, replay — and so
	// recovery latency — grew linearly with the acknowledged stream; with a
	// checkpoint every CheckpointInterval batches the replayed-batch count
	// must stay flat however long the stream ran first.
	if cfg.FailoverWorkers == "" {
		fmt.Fprintf(w, "  recovery vs stream length (checkpoint interval %d):\n", rep.CheckpointInterval)
		for _, streamLen := range []int{4, 8, 12} {
			pt, err := recoveryAtLength(copyGraph(curveBase), opt, shards,
				rep.CheckpointInterval, streamLen, cfg.Seed+int64(100*streamLen))
			if err != nil {
				return fmt.Errorf("bench: recovery curve at %d batches: %w", streamLen, err)
			}
			if pt.ReplayedBatches > int64(rep.CheckpointInterval) {
				rep.ReplayBounded = false
			}
			rep.RecoveryCurve = append(rep.RecoveryCurve, pt)
			fmt.Fprintf(w, "    %2d batches streamed: worst shard replayed %d, recovery %.4fs\n",
				pt.StreamBatches, pt.ReplayedBatches, pt.RecoverySeconds)
		}
		if rep.ReplayBounded {
			fmt.Fprintln(w, "  shape: replay bounded by the checkpoint interval at every stream length — recovery cost is flat ✓")
		} else {
			fmt.Fprintln(w, "  shape: WARNING — some replacement replayed more than the checkpoint interval")
		}
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_failover.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// copyGraph returns an independent copy of g's live edges and node values,
// so a curve run's Apply stream cannot mutate another run's graph.
func copyGraph(g *graph.Graph) *graph.Graph {
	out := graph.MustNew(g.Schema(), g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		vals := append([]graph.Value(nil), g.NodeValues(v)...)
		if err := out.SetNodeValues(v, vals...); err != nil {
			panic(err)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		if _, err := out.AddEdge(g.Src(e), g.Dst(e), g.EdgeValues(e)...); err != nil {
			panic(err)
		}
	}
	return out
}

// recoveryAtLength runs one recovery-curve point: a fresh in-process fleet
// (two primaries, one standby) streams streamLen batches with the given
// checkpoint interval, the victim daemon dies right before the final batch,
// and that batch's wall clock — detection + restore-from-checkpoint +
// bounded replay + the batch itself — is the recovery latency. The reported
// replay count is the worst single shard's.
func recoveryAtLength(g *graph.Graph, opt core.Options, shards, interval, streamLen int, seed int64) (RecoveryPoint, error) {
	pt := RecoveryPoint{StreamBatches: streamLen}
	daemons := make([]*killableDaemon, 3)
	for i := range daemons {
		kd, err := startKillableDaemon(2)
		if err != nil {
			return pt, err
		}
		daemons[i] = kd
		defer kd.Kill()
	}
	fleet := rpc.NewFleet([]string{daemons[0].addr, daemons[1].addr},
		rpc.FleetOptions{Standbys: []string{daemons[2].addr}})
	defer fleet.Close()
	inc, err := core.NewIncrementalShardedFrom(g, opt,
		core.ShardOptions{Shards: shards, CheckpointInterval: interval}, fleet)
	if err != nil {
		return pt, err
	}
	defer inc.Close()

	schema := g.Schema()
	r := rand.New(rand.NewSource(seed))
	const batchSize = 150
	for b := 0; b < streamLen; b++ {
		if b == streamLen-1 {
			daemons[0].Kill()
		}
		edges := make([]core.EdgeInsert, batchSize)
		for i := range edges {
			e := core.EdgeInsert{Src: r.Intn(g.NumNodes()), Dst: r.Intn(g.NumNodes())}
			for _, attr := range schema.Edge {
				e.Vals = append(e.Vals, graph.Value(1+r.Intn(attr.Domain)))
			}
			edges[i] = e
		}
		start := time.Now()
		if _, _, err := inc.Apply(edges); err != nil {
			return pt, fmt.Errorf("batch %d of %d: %w", b, streamLen, err)
		}
		if b == streamLen-1 {
			pt.RecoverySeconds = time.Since(start).Seconds()
		}
	}
	for _, h := range inc.FleetHealth() {
		if h.ReplayedBatches > pt.ReplayedBatches {
			pt.ReplayedBatches = h.ReplayedBatches
		}
	}
	return pt, nil
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(v string) []string {
	var out []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
