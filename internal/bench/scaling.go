package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"

	"grminer/internal/core"
	"grminer/internal/store"
)

// ScalingPoint is one measured worker count of the scaling experiment.
type ScalingPoint struct {
	// Workers is the Parallelism setting measured.
	Workers int `json:"workers"`
	// Floor is the pruning mode: "static" (plain Definition 5 top-k) or
	// "dynamic" (GRMiner(k) with ExactGenerality, the semantics the
	// parallel engine guarantees under a dynamic floor).
	Floor string `json:"floor"`
	// Seconds is the mining wall clock.
	Seconds float64 `json:"seconds"`
	// Speedup is the same-floor sequential seconds divided by Seconds.
	Speedup float64 `json:"speedup"`
	// Identical records whether the ranked results matched the same-floor
	// sequential reference exactly.
	Identical bool `json:"identical_results"`
	// Auto marks the point whose worker count AutoTune chose.
	Auto bool `json:"auto,omitempty"`
}

// ScalingReport is the machine-readable snapshot written to
// BENCH_scaling.json: the speedup trajectory of the lock-light parallel
// engine over the sequential miner, in both floor modes.
type ScalingReport struct {
	Dataset           string         `json:"dataset"`
	Nodes             int            `json:"nodes"`
	Edges             int            `json:"edges"`
	MinSupp           int            `json:"min_supp"`
	MinNhp            float64        `json:"min_nhp"`
	K                 int            `json:"k"`
	NumCPU            int            `json:"num_cpu"`
	SequentialStatic  float64        `json:"sequential_static_seconds"`
	SequentialDynamic float64        `json:"sequential_dynamic_seconds"`
	Points            []ScalingPoint `json:"points"`
	Plan              string         `json:"plan,omitempty"`
	// CrossoverStatic / CrossoverDynamic record the smallest measured
	// worker count whose speedup exceeded 1.0 in each floor mode (0 = the
	// parallel engine never beat the sequential miner on this machine) —
	// the number the AutoTune crossover constants are validated against on
	// multi-core CI runners.
	CrossoverStatic  int `json:"crossover_workers_static"`
	CrossoverDynamic int `json:"crossover_workers_dynamic"`
}

// Scaling measures the parallel engine's speedup trajectory on the
// Pokec-like generator at the configured size, in both floor modes. Each
// parallel run is compared against the sequential run with identical
// semantics — static floor both sides, or dynamic floor with
// ExactGenerality both sides — so the result lists must match exactly.
// With cfg.JSONDir set, the trajectory is also written to
// BENCH_scaling.json.
func Scaling(w io.Writer, cfg Config) error {
	g := cfg.pokec()
	st := store.Build(g)
	modes := floorModes(cfg)

	rep := ScalingReport{
		Dataset: "pokec-like", Nodes: g.NumNodes(), Edges: g.NumEdges(),
		MinSupp: cfg.MinSupp, MinNhp: cfg.MinNhp, K: cfg.K,
		NumCPU: runtime.NumCPU(),
	}

	budget := cfg.Procs
	if budget <= 0 {
		budget = runtime.NumCPU()
	}
	var counts []int
	for _, n := range []int{2, 4, 8, 16, 32} {
		if n <= budget {
			counts = append(counts, n)
		}
	}
	if len(counts) == 0 {
		// Even on a single-CPU budget, exercise the engine once so the
		// trajectory always has at least one parallel point.
		counts = []int{2}
	}
	autoWorkers := 0
	if cfg.Auto {
		plan := core.PlanFor(st, cfg.Procs, core.Options{})
		rep.Plan = plan.String()
		if plan.Parallelism > 1 {
			autoWorkers = plan.Parallelism
		}
	}

	fmt.Fprintf(w, "== Scaling: lock-light parallel engine ==  |V|=%d |E|=%d minSupp=%d minNhp=%0.0f%% k=%d NumCPU=%d\n",
		rep.Nodes, rep.Edges, rep.MinSupp, 100*rep.MinNhp, rep.K, rep.NumCPU)
	fmt.Fprintf(w, "  %-10s %-8s %10s %9s %10s\n", "workers", "floor", "seconds", "speedup", "identical")
	allIdentical := true
	for _, mode := range modes {
		seq, err := core.MineStore(st, mode.base)
		if err != nil {
			return err
		}
		seqSecs := seq.Stats.Duration.Seconds()
		if mode.name == "static" {
			rep.SequentialStatic = seqSecs
		} else {
			rep.SequentialDynamic = seqSecs
		}
		fmt.Fprintf(w, "  %-10s %-8s %10.4f %9s %10s\n", "seq", mode.name, seqSecs, "1.00x", "-")

		// When the planned count is already swept, the matching point is
		// marked instead of mining the same configuration twice.
		modeCounts := counts
		if autoWorkers > 0 && !slices.Contains(counts, autoWorkers) {
			modeCounts = append(append([]int(nil), counts...), autoWorkers)
		}
		for _, n := range modeCounts {
			auto := n == autoWorkers
			opt := mode.base
			opt.Parallelism = n
			par, err := core.MineStore(st, opt)
			if err != nil {
				return err
			}
			pt := ScalingPoint{
				Workers: n, Floor: mode.name,
				Seconds:   par.Stats.Duration.Seconds(),
				Identical: sameTop(par.TopK, seq.TopK),
				Auto:      auto,
			}
			// Guard degenerate timings: Inf/NaN would make the JSON
			// marshal fail and discard the whole measured trajectory.
			if pt.Seconds > 0 && seqSecs > 0 {
				pt.Speedup = seqSecs / pt.Seconds
			}
			rep.Points = append(rep.Points, pt)
			allIdentical = allIdentical && pt.Identical
			label := fmt.Sprintf("%d", n)
			if auto {
				label += " (auto)"
			}
			fmt.Fprintf(w, "  %-10s %-8s %10.4f %8.2fx %10v\n", label, mode.name, pt.Seconds, pt.Speedup, pt.Identical)
		}
	}
	for _, pt := range rep.Points {
		if pt.Speedup <= 1 {
			continue
		}
		switch {
		case pt.Floor == "static" && (rep.CrossoverStatic == 0 || pt.Workers < rep.CrossoverStatic):
			rep.CrossoverStatic = pt.Workers
		case pt.Floor == "dynamic" && (rep.CrossoverDynamic == 0 || pt.Workers < rep.CrossoverDynamic):
			rep.CrossoverDynamic = pt.Workers
		}
	}
	fmt.Fprintf(w, "  crossover: static=%s dynamic=%s\n",
		crossoverLabel(rep.CrossoverStatic), crossoverLabel(rep.CrossoverDynamic))
	if rep.Plan != "" {
		fmt.Fprintf(w, "  %s\n", rep.Plan)
	}
	switch {
	case !allIdentical:
		fmt.Fprintln(w, "  shape: WARNING — a parallel run diverged from its sequential reference")
	case rep.NumCPU == 1:
		fmt.Fprintln(w, "  shape: results identical; speedup bounded by a single CPU on this machine")
	default:
		fmt.Fprintln(w, "  shape: results identical at every worker count and floor mode")
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_scaling.json")
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", path)
	}
	return nil
}

// crossoverLabel renders a measured crossover worker count for the report.
func crossoverLabel(workers int) string {
	if workers == 0 {
		return "not reached"
	}
	return fmt.Sprintf("%d workers", workers)
}
