package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.PokecNodes = 1500
	cfg.PokecDeg = 8
	cfg.DBLPAuthors = 2000
	cfg.DBLPPairs = 2500
	cfg.MinSupp = 20
	cfg.K = 20
	// Two shards keep the sharding experiment's relaxed offer threshold
	// (⌈minSupp/shards⌉) from exploding the harness smoke test's runtime.
	cfg.MaxShards = 2
	return cfg
}

func TestToyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Toy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The report must carry the paper's exact toy numbers.
	for _, want := range []string{
		"supp= 7/30", "conf= 50.0%", // GR1
		"supp= 0/30",  // GR2
		"conf= 66.7%", // GR3
		"nhp=100.0%",  // GR4
	} {
		if !strings.Contains(out, want) {
			t.Errorf("toy report missing %q:\n%s", want, out)
		}
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	cfg := tinyConfig()
	for _, name := range Names {
		var buf bytes.Buffer
		if err := Run(name, &buf, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

// The scaling experiment must produce identical parallel results and a
// well-formed BENCH_scaling.json snapshot.
func TestScalingReport(t *testing.T) {
	cfg := tinyConfig()
	cfg.Procs = 4
	cfg.Auto = true
	cfg.JSONDir = t.TempDir()
	var buf bytes.Buffer
	if err := Scaling(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("scaling run diverged from sequential:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_scaling.json"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var rep ScalingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if rep.SequentialStatic <= 0 || rep.SequentialDynamic <= 0 || len(rep.Points) == 0 {
		t.Errorf("snapshot incomplete: %+v", rep)
	}
	seenFloors := map[string]bool{}
	for _, pt := range rep.Points {
		if !pt.Identical {
			t.Errorf("worker count %d (%s floor) diverged from sequential", pt.Workers, pt.Floor)
		}
		if pt.Workers < 2 {
			t.Errorf("parallel point with %d workers", pt.Workers)
		}
		seenFloors[pt.Floor] = true
	}
	if !seenFloors["static"] || !seenFloors["dynamic"] {
		t.Errorf("missing floor mode in %v", seenFloors)
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableIIaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := TableIIa(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Ranked by nhp") || !strings.Contains(out, "Ranked by conf") {
		t.Fatalf("Table IIa output malformed:\n%s", out)
	}
	// The conf ranking must surface trivial homophily GRs on this
	// homophilous network; the nhp ranking must not.
	if !strings.Contains(out, "[trivial]") {
		t.Errorf("conf ranking shows no trivial GRs:\n%s", out)
	}
}

func TestStoreSizeReport(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	if err := StoreSize(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "smaller") {
		t.Errorf("storesize report: %s", buf.String())
	}
}

// The distributed experiment must produce identical merged results over
// real loopback protocol workers at every layout, a round-2 exact-count
// volume never above the one-round gap-fill baseline, and a well-formed
// BENCH_distributed.json snapshot.
func TestDistributedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spins loopback workers and mines repeatedly")
	}
	cfg := tinyConfig()
	cfg.PokecNodes = 600
	cfg.PokecDeg = 6
	cfg.MaxShards = 4
	cfg.JSONDir = t.TempDir()
	var buf bytes.Buffer
	if err := Distributed(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "WARNING") {
		t.Errorf("distributed run diverged or lost the volume race:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_distributed.json"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var rep DistributedReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if !rep.Identical {
		t.Error("top-level identical_results is false")
	}
	if !rep.Round2BelowOneRound {
		t.Error("round2_below_one_round is false")
	}
	if rep.IncrementalBatches == 0 || len(rep.Points) == 0 {
		t.Errorf("snapshot incomplete: %+v", rep)
	}
	for _, pt := range rep.Points {
		if !pt.Identical {
			t.Errorf("%d workers by %s (%s floor) diverged", pt.Workers, pt.Strategy, pt.Floor)
		}
		if pt.Round2Requests > pt.OneRoundGapFill {
			t.Errorf("%d workers by %s (%s floor): round-2 volume %d above the one-round %d",
				pt.Workers, pt.Strategy, pt.Floor, pt.Round2Requests, pt.OneRoundGapFill)
		}
	}
}

// The sharding experiment must produce identical merged results at every
// layout and a well-formed BENCH_sharding.json snapshot.
func TestShardingReport(t *testing.T) {
	cfg := tinyConfig()
	cfg.PokecNodes = 600
	cfg.PokecDeg = 6
	cfg.JSONDir = t.TempDir()
	var buf bytes.Buffer
	if err := Sharding(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "WARNING") {
		t.Errorf("sharded run diverged from single store:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_sharding.json"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var rep ShardingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if !rep.Identical {
		t.Error("top-level identical_results is false")
	}
	if rep.SequentialStatic <= 0 || rep.SequentialDynamic <= 0 || len(rep.Points) == 0 {
		t.Errorf("snapshot incomplete: %+v", rep)
	}
	seen := map[string]bool{}
	for _, pt := range rep.Points {
		if !pt.Identical {
			t.Errorf("%d shards by %s (%s floor) diverged", pt.Shards, pt.Strategy, pt.Floor)
		}
		if pt.Shards > cfg.MaxShards {
			t.Errorf("point with %d shards exceeds the configured cap %d", pt.Shards, cfg.MaxShards)
		}
		seen[pt.Floor+"/"+pt.Strategy] = true
	}
	for _, want := range []string{"static/src", "static/rhs", "dynamic/src", "dynamic/rhs"} {
		if !seen[want] {
			t.Errorf("missing %s points in the sweep", want)
		}
	}
}

// The serving experiment must report a served top-k identical to both its
// shadow oracle and an offline re-mine, plus a well-formed
// BENCH_serving.json with measured latency percentiles.
func TestServingReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a loopback HTTP server and mines repeatedly")
	}
	cfg := tinyConfig()
	cfg.PokecNodes = 600
	cfg.PokecDeg = 6
	cfg.JSONDir = t.TempDir()
	var buf bytes.Buffer
	if err := Serving(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "WARNING") {
		t.Errorf("serving run diverged:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(cfg.JSONDir, "BENCH_serving.json"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var rep ServingReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if !rep.Identical || !rep.ServedIdentical || !rep.OfflineIdentical {
		t.Errorf("equivalence flags not all true: %+v", rep)
	}
	if rep.External {
		t.Error("in-process run marked external")
	}
	if rep.Batches == 0 || rep.Ingest.Count != rep.Batches {
		t.Errorf("ingest accounting off: %+v", rep.Ingest)
	}
	if rep.ReadTopK.Count == 0 || rep.ReadRule.Count == 0 {
		t.Error("readers recorded no requests")
	}
	for _, lat := range []ServingLatency{rep.ReadTopK, rep.ReadRule, rep.Ingest} {
		if lat.P50Ms <= 0 || lat.P99Ms < lat.P50Ms || lat.MaxMs < lat.P99Ms {
			t.Errorf("latency summary not ordered: %+v", lat)
		}
	}
	if rep.FinalEpoch != uint64(rep.Batches)+1 {
		t.Errorf("final epoch %d, want %d", rep.FinalEpoch, rep.Batches+1)
	}
}
