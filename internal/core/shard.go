// Sharded top-k GR mining: partition the edge set, mine every partition as
// an independent store, and merge the per-shard results into the exact
// global top-k.
//
// Soundness rests on the same candidate-union argument the parallel engine
// (parallel.go) and the incremental engine (incremental.go) already make,
// lifted from subtrees to shards. Every count a metric reads — LWR, LW, Hom,
// R, E — is an edge count, and the shards partition the edge set, so a GR's
// global count is exactly the sum of its per-shard counts. Two consequences:
//
//  1. Offer completeness. A GR satisfying Definition 5 condition (1)
//     globally has global support ≥ minSupp, so by pigeonhole at least one
//     of the n shards holds ≥ ⌈minSupp/n⌉ of its matching edges. A shard
//     worker therefore mines its shard with the support threshold lowered
//     to ⌈minSupp/n⌉ and the score threshold removed (−Inf): within a
//     shard, support is anti-monotone along the SFDF walk, so the walk
//     reaches every GR whose shard support meets the lowered bound, and the
//     capture hook offers each one with its exact shard counts. The union
//     of the per-shard offers is then a superset of the global
//     condition-(1) set. Score thresholds must NOT be applied per shard:
//     a shard's local score neither bounds nor is bounded by the global
//     score (the global value of a ratio metric is the count-weighted
//     mediant of the per-shard values), and the shard holding a GR's
//     support mass may well hold its worst-scoring edges. This is also why
//     the coordinator cannot ship its pruning floor to the shard workers —
//     floor updates only become applicable once counts are global, which
//     happens on the coordinator's side of the boundary.
//
//  2. Exact re-scoring. The coordinator re-scores every union candidate
//     from its summed counts (gap-filling, through the worker interface,
//     the counts of shards that never offered the candidate) and applies
//     condition (1) globally. The surviving set is exactly the global
//     condition-(1) set, so the most-general-first blocker merge
//     (mergeCandidates) decides condition (2) exactly — the argument that
//     a complete candidate set makes the blocker filter order-independent
//     is the same one the static-floor parallel coordinator and the
//     incremental engine's pool merge rely on. Condition (3) is rank.
//
// With the generality filter disabled there is nothing to block, and the
// re-scoring merge workers instead keep private bound-k lists guarded by
// the shared CAS-raised floor of parallel.go: a worker's local k-th best
// never exceeds the global k-th best, so skipping candidates below the
// floor is sound and the final topk.Merge of the worker lists is exact.
//
// Like the parallel and incremental engines, a dynamic floor forces
// ExactGenerality so the result is order-independent; Options() returns the
// effective settings a single-store mine must use to reproduce the sharded
// result.
//
// The coordinator/worker boundary is deliberately narrow — offer a
// candidate pool, answer count queries, ingest routed edges — so the
// in-process workers of this file can later be replaced by per-machine
// workers without touching the merge logic. No mining state is shared
// across the boundary; only ShardCandidate values and gr.GR queries cross
// it.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// ShardOptions selects the sharding layout of a sharded mine.
type ShardOptions struct {
	// Shards is the number of edge partitions (≥ 1).
	Shards int
	// Strategy is the deterministic edge-routing rule; the zero value
	// selects graph.ShardBySource.
	Strategy graph.ShardStrategy
}

// normalize fills defaults and validates.
func (so ShardOptions) normalize() (ShardOptions, error) {
	if so.Shards < 1 {
		return so, fmt.Errorf("core: shard count %d < 1", so.Shards)
	}
	if so.Strategy == "" {
		so.Strategy = graph.ShardBySource
	}
	if _, err := graph.ParseShardStrategy(string(so.Strategy)); err != nil {
		return so, err
	}
	return so, nil
}

// ShardPlan describes one sharded run: the layout plus the lowered
// per-shard offer threshold the completeness argument licenses.
type ShardPlan struct {
	// Shards and Strategy echo the (normalized) ShardOptions.
	Shards   int
	Strategy graph.ShardStrategy
	// ShardMinSupp is ⌈MinSupp/Shards⌉, the support threshold each shard
	// worker mines with.
	ShardMinSupp int
	// Edges holds the per-shard edge counts of the current assignment.
	Edges []int
}

// String renders the plan for CLI display.
func (p ShardPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shards: %d by %s, shard minSupp=%d, edges=[", p.Shards, p.Strategy, p.ShardMinSupp)
	for i, e := range p.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte(']')
	return b.String()
}

// ShardCandidate is one offer crossing the coordinator/worker boundary: a
// GR together with its exact counts on the offering shard.
type ShardCandidate struct {
	GR     gr.GR
	Counts metrics.Counts
}

// ShardWorker is the narrow contract one shard presents to the coordinator.
// Implementations must answer Count for arbitrary GRs (including ones the
// shard never offered) and must be safe for concurrent Count calls — the
// merge workers gap-fill concurrently.
type ShardWorker interface {
	// NumEdges returns the shard's current edge count.
	NumEdges() int
	// Offer mines the shard's relaxed candidate pool: every GR whose shard
	// support reaches the plan's ShardMinSupp, with exact shard counts and
	// no score filtering (see the completeness argument above).
	Offer() ([]ShardCandidate, Stats, error)
	// Count measures one GR's exact counts on this shard (the gap-fill
	// query for candidates other shards offered).
	Count(g gr.GR) metrics.Counts
}

// localShard is the in-process ShardWorker: a subset store over the shard's
// edge slice, mined by the existing sequential engine in capture mode.
type localShard struct {
	st      *store.Store
	opt     Options // effective global options (metric, caps, trivial mode)
	minSupp int     // the plan's ShardMinSupp
}

func (s *localShard) NumEdges() int { return s.st.NumEdges() }

func (s *localShard) Offer() ([]ShardCandidate, Stats, error) {
	var out []ShardCandidate
	m := newMiner(s.st, shardOfferOpts(s.opt, s.minSupp))
	m.capture = func(g gr.GR, c metrics.Counts, score float64) {
		out = append(out, ShardCandidate{GR: g, Counts: c})
	}
	m.run()
	return out, m.stats, nil
}

func (s *localShard) Count(g gr.GR) metrics.Counts {
	return countOnStore(s.st, s.opt.Metric, g)
}

// appendEdges routes a batch slice into the shard (incremental ingestion);
// it returns the shard store's new row ids.
func (s *localShard) appendEdges(edges []int32) []int32 {
	return s.st.AppendEdges(edges)
}

// shardOfferOpts derives the options a shard worker mines with: the lowered
// support threshold, no score threshold, unbounded static collection, and
// no generality machinery (the capture hook bypasses it). Metric, descriptor
// caps, triviality and RHS-order settings pass through so the per-shard
// enumeration space matches the single-store walk.
func shardOfferOpts(opt Options, shardMinSupp int) Options {
	o := opt
	o.MinSupp = shardMinSupp
	o.MinScore = math.Inf(-1)
	o.K = 0
	o.DynamicFloor = false
	o.ExactGenerality = false
	o.NoGeneralityFilter = false
	o.Parallelism = 0
	return o
}

// countOnStore measures g's exact counts on one (subset) store by a single
// scan, filling only the fields the metric reads so gap-filled counts sum
// consistently with in-search capture counts.
func countOnStore(st *store.Store, m metrics.Metric, g gr.GR) metrics.Counts {
	c := metrics.Counts{E: st.NumEdges()}
	eff, hasBeta := g.HomophilyEffect(st.Graph().Schema())
	needHom := m.NeedsHom && hasBeta
	for e := int32(0); int(e) < st.NumEdges(); e++ {
		if matchOn(st.LVal, e, g.L) && matchOn(st.EVal, e, g.W) {
			c.LW++
			if matchOn(st.RVal, e, g.R) {
				c.LWR++
			}
			if needHom && matchOn(st.RVal, e, eff.R) {
				c.Hom++
			}
		}
		if m.NeedsR && matchOn(st.RVal, e, g.R) {
			c.R++
		}
	}
	return c
}

// shardCand is one union-pool entry: a GR with its per-shard counts. have
// marks shards whose counts are known (offered or gap-filled); the merge
// fills the rest through the worker interface.
type shardCand struct {
	gr   gr.GR
	per  []metrics.Counts
	have []bool
	// betaMask is maintained only by the incremental engine for its delta
	// recounts; the batch coordinator leaves it zero.
	betaMask uint64
}

// ShardCoordinator owns a sharded mining run: the plan, the per-shard
// workers, and the merge that re-assembles the exact global top-k.
type ShardCoordinator struct {
	plan       ShardPlan
	opt        Options // normalized effective options
	workers    []ShardWorker
	totalEdges int
}

// NewShardCoordinator partitions g's edges under so, builds one subset
// store per shard, and returns a coordinator ready to Mine. Options follow
// MineStore, with the parallel engine's normalization: a dynamic floor
// forces ExactGenerality so the merged result is order-independent.
func NewShardCoordinator(g *graph.Graph, opt Options, so ShardOptions) (*ShardCoordinator, error) {
	opt, plan, shards, err := buildShardLayout(g, opt, so)
	if err != nil {
		return nil, err
	}
	sc := &ShardCoordinator{
		plan:       plan,
		opt:        opt,
		workers:    make([]ShardWorker, len(shards)),
		totalEdges: g.NumEdges(),
	}
	for i, sh := range shards {
		sc.workers[i] = sh
	}
	return sc, nil
}

// buildShardLayout normalizes the options, partitions g, and builds the
// in-process shard workers — the construction shared by the batch
// coordinator and the sharded incremental engine.
func buildShardLayout(g *graph.Graph, opt Options, so ShardOptions) (Options, ShardPlan, []*localShard, error) {
	opt, so, err := normalizeSharded(g, opt, so)
	if err != nil {
		return opt, ShardPlan{}, nil, err
	}
	parts, err := graph.PartitionEdges(g, so.Shards, so.Strategy)
	if err != nil {
		return opt, ShardPlan{}, nil, err
	}
	plan := planFromParts(opt, so, parts)
	shards := make([]*localShard, len(parts))
	for i, part := range parts {
		shards[i] = &localShard{
			st:      store.BuildSubset(g, part),
			opt:     opt,
			minSupp: plan.ShardMinSupp,
		}
	}
	return opt, plan, shards, nil
}

// offerAll runs every worker's offer phase concurrently (offers are
// independent per shard) and returns the per-shard pools, stats, and
// errors, indexed by shard.
func offerAll(workers []ShardWorker) ([][]ShardCandidate, []Stats, []error) {
	pools := make([][]ShardCandidate, len(workers))
	stats := make([]Stats, len(workers))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w ShardWorker) {
			defer wg.Done()
			pools[i], stats[i], errs[i] = w.Offer()
		}(i, w)
	}
	wg.Wait()
	return pools, stats, errs
}

// normalizeSharded applies the shared option/limit validation of a sharded
// engine (batch coordinator and incremental alike).
func normalizeSharded(g *graph.Graph, opt Options, so ShardOptions) (Options, ShardOptions, error) {
	opt, err := opt.normalize()
	if err != nil {
		return opt, so, err
	}
	if n := len(g.Schema().Node); n > 64 {
		return opt, so, fmt.Errorf("core: %d node attributes exceed the supported maximum of 64", n)
	}
	if opt.DynamicFloor && !opt.NoGeneralityFilter {
		// Mirror the parallel and incremental engines: order-independent
		// blocking is what makes "sharded ≡ single store" well-defined
		// under a dynamic floor (see Options.ExactGenerality).
		opt.ExactGenerality = true
	}
	so, err = so.normalize()
	return opt, so, err
}

// planFromParts assembles the plan for a normalized layout.
func planFromParts(opt Options, so ShardOptions, parts [][]int32) ShardPlan {
	p := ShardPlan{
		Shards:       so.Shards,
		Strategy:     so.Strategy,
		ShardMinSupp: (opt.MinSupp + so.Shards - 1) / so.Shards,
		Edges:        make([]int, len(parts)),
	}
	for i, part := range parts {
		p.Edges[i] = len(part)
	}
	return p
}

// Plan returns the layout of this run.
func (sc *ShardCoordinator) Plan() ShardPlan { return sc.plan }

// Options returns the effective (normalized) options — what a single-store
// mine must use to reproduce the sharded result.
func (sc *ShardCoordinator) Options() Options { return sc.opt }

// Mine runs the offer phase on every shard concurrently, merges the offered
// pools, and returns the exact global top-k.
func (sc *ShardCoordinator) Mine() (*Result, error) {
	start := time.Now()
	pools, shardStats, errs := offerAll(sc.workers)
	var stats Stats
	for i := range sc.workers {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, errs[i])
		}
		addStats(&stats, &shardStats[i])
	}

	pool := make(map[string]*shardCand)
	for i, offers := range pools {
		for _, cand := range offers {
			key := cand.GR.Key()
			u := pool[key]
			if u == nil {
				u = &shardCand{
					gr:   cand.GR,
					per:  make([]metrics.Counts, len(sc.workers)),
					have: make([]bool, len(sc.workers)),
				}
				pool[key] = u
			}
			u.per[i] = cand.Counts
			u.have[i] = true
		}
	}

	topList := mergeShardPool(sc.opt, sc.plan.ShardMinSupp, sc.totalEdges, sc.workers, pool, &stats)
	stats.Duration = time.Since(start)
	return &Result{TopK: topList, Stats: stats, Options: sc.opt, TotalEdges: sc.totalEdges}, nil
}

// mergeShardPool re-scores every pool candidate from its summed per-shard
// counts and applies Definition 5 conditions (1)-(3) globally. It is shared
// by the batch coordinator and the sharded incremental engine. Gap-filled
// counts are written back into the entries (each key is processed by
// exactly one merge worker, so the writes never race).
//
// Gap-fill skipping: a shard that did not offer a candidate provably holds
// at most shardMinSupp−1 of its support (the offer phase enumerates every
// GR at or above that threshold), so a candidate whose known supports plus
// that bound over its unknown shards cannot reach MinSupp fails condition
// (1) without a single counting scan. This is what keeps the merge linear
// in the qualifying set rather than in the (much larger) offered union.
func mergeShardPool(opt Options, shardMinSupp, totalEdges int, workers []ShardWorker, pool map[string]*shardCand, stats *Stats) []gr.Scored {
	keys := make([]string, 0, len(pool))
	for k := range pool {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	nw := opt.Parallelism
	if nw < 1 {
		nw = 1
	}
	if nw > len(keys) {
		nw = len(keys)
	}
	if nw < 1 {
		nw = 1
	}
	// With the generality filter off there is nothing to block: merge
	// workers keep private bound-k lists behind the shared CAS-raised floor
	// and the final topk.Merge is exact. With the filter on, every
	// qualifying candidate is a potential blocker, so workers must collect
	// all survivors for the blocker merge and the floor cannot skip any.
	useFloor := opt.NoGeneralityFilter
	floor := newParFloor()
	lists := make([]*topk.List, nw)
	survivors := make([][]gr.Scored, nw)
	var next atomic.Int64
	var qualifying atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		lists[wi] = topk.New(opt.K)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				u := pool[keys[i]]
				suppBound := 0
				for s := range workers {
					if u.have[s] {
						suppBound += u.per[s].LWR
					} else {
						suppBound += shardMinSupp - 1
					}
				}
				if suppBound < opt.MinSupp {
					continue // cannot satisfy condition (1); skip gap-fill
				}
				var c metrics.Counts
				for s, w := range workers {
					if !u.have[s] {
						u.per[s] = w.Count(u.gr)
						u.have[s] = true
					}
					c.LWR += u.per[s].LWR
					c.LW += u.per[s].LW
					c.Hom += u.per[s].Hom
					c.R += u.per[s].R
				}
				c.E = totalEdges
				score := opt.Metric.Score(c)
				if c.LWR < opt.MinSupp || !(score >= opt.MinScore) {
					continue
				}
				qualifying.Add(1)
				s := gr.Scored{GR: u.gr, Supp: c.LWR, Score: score, Conf: metrics.Conf(c)}
				if useFloor {
					if opt.K > 0 && score < floor.load() {
						continue
					}
					if lists[wi].Consider(s) {
						if fl, ok := lists[wi].Floor(); ok {
							floor.raise(fl)
						}
					}
				} else {
					survivors[wi] = append(survivors[wi], s)
				}
			}
		}(wi)
	}
	wg.Wait()

	// Offer-phase counters are work done at the relaxed shard thresholds;
	// Candidates keeps its documented meaning — GRs meeting both *global*
	// thresholds — by overwriting rather than adding (the same convention
	// the single-store incremental assemble uses).
	stats.Candidates = qualifying.Load()
	if useFloor {
		return topk.Merge(opt.K, lists...).Items()
	}
	var collected []gr.Scored
	for _, sv := range survivors {
		collected = append(collected, sv...)
	}
	// The survivor set is the complete global condition-(1) set, so the
	// most-general-first blocker merge is exact (no per-candidate
	// generalisation scans needed — clear ExactGenerality for the merge).
	mergeOpt := opt
	mergeOpt.ExactGenerality = false
	return mergeCandidates(collected, mergeOpt, stats)
}

// MineSharded partitions g's edges into so.Shards shards, mines each shard
// concurrently with the lowered offer threshold, and merges the per-shard
// pools into the exact global top-k — the same ranked list MineStore
// produces over a single store under the coordinator's effective options.
func MineSharded(g *graph.Graph, opt Options, so ShardOptions) (*Result, error) {
	sc, err := NewShardCoordinator(g, opt, so)
	if err != nil {
		return nil, err
	}
	return sc.Mine()
}

// PlanShards previews the sharded layout MineSharded would use for g under
// the given options, without building shard stores or mining.
func PlanShards(g *graph.Graph, opt Options, so ShardOptions) (ShardPlan, error) {
	opt, so, err := normalizeSharded(g, opt, so)
	if err != nil {
		return ShardPlan{}, err
	}
	parts, err := graph.PartitionEdges(g, so.Shards, so.Strategy)
	if err != nil {
		return ShardPlan{}, err
	}
	return planFromParts(opt, so, parts), nil
}
