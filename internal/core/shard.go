// Sharded top-k GR mining: partition the edge set, mine every partition as
// an independent worker, and merge the per-shard results into the exact
// global top-k.
//
// Soundness rests on the same candidate-union argument the parallel engine
// (parallel.go) and the incremental engine (incremental.go) already make,
// lifted from subtrees to shards. Every count a metric reads — LWR, LW, Hom,
// R, E — is an edge count, and the shards partition the edge set, so a GR's
// global count is exactly the sum of its per-shard counts. Consequences:
//
//  1. Offer completeness. A GR satisfying Definition 5 condition (1)
//     globally has global support ≥ minSupp, so by pigeonhole at least one
//     of the n shards holds ≥ t = ⌈minSupp/n⌉ of its matching edges. A
//     shard worker therefore mines its shard with the support threshold
//     lowered to t and the score threshold removed (−Inf): within a shard,
//     support is anti-monotone along the SFDF walk, so the walk reaches
//     every GR whose shard support meets the lowered bound, and the capture
//     hook offers each one with its exact shard counts. The union of the
//     per-shard offers is then a superset of the global condition-(1) set.
//     Score thresholds must NOT be applied per shard: a shard's local score
//     neither bounds nor is bounded by the global score (the global value
//     of a ratio metric is the count-weighted mediant of the per-shard
//     values), and the shard holding a GR's support mass may well hold its
//     worst-scoring edges. This is also why the coordinator cannot ship its
//     pruning floor to the shard workers — floor updates only become
//     applicable once counts are global, which happens on the coordinator's
//     side of the boundary.
//
//  2. Two-round count-then-verify. The lone-shard pigeonhole threshold is
//     tight, and per-shard enumeration at t blows up as shards get thinner
//     (measured in BENCH_sharding.json). The protocol therefore runs in two
//     rounds. Round 1 (count): each worker mines its relaxed pool at t
//     under an OfferBound derived from the coarse count sketches the
//     coordinator collected while partitioning — subtrees whose global
//     singleton bound or own-support-plus-others'-capacity bound falls
//     below minSupp are cut, because every GR below them provably fails
//     condition (1) globally (shard_worker.go carries the math; no
//     qualifying GR is ever pruned). Round 2 (verify): the coordinator
//     re-scores the offered union from summed counts and requests exact
//     counts — batched per worker — only for candidates whose summed bound
//     can still reach minSupp, where a shard that never offered a candidate
//     contributes at most min(t−1, its sketch's singleton bound). The
//     surviving set is exactly the global condition-(1) set, so the
//     most-general-first blocker merge (mergeCandidates) decides condition
//     (2) exactly; condition (3) is rank.
//
// With the generality filter disabled there is nothing to block, and the
// re-scoring merge workers instead keep private bound-k lists guarded by
// the shared CAS-raised floor of parallel.go: a worker's local k-th best
// never exceeds the global k-th best, so skipping candidates below the
// floor is sound and the final topk.Merge of the worker lists is exact.
//
// Like the parallel and incremental engines, a dynamic floor forces
// ExactGenerality so the result is order-independent; Options() returns the
// effective settings a single-store mine must use to reproduce the sharded
// result.
//
// The coordinator/worker boundary is the ShardWorker interface of
// shard_worker.go — offer a candidate pool, answer batched count queries,
// ingest routed edges — and workers are built from self-contained
// WorkerSpec values, so the in-process deployment and the remote shardd
// deployment (internal/rpc) drive identical worker code. No mining state is
// shared across the boundary; only specs, bounds, ShardCandidate values,
// and gr.GR queries cross it.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/topk"
)

// DefaultCheckpointInterval is the acknowledged-batch count between worker
// checkpoints when ShardOptions leaves CheckpointInterval zero. Recovery
// replays at most this many batches, so the value trades checkpoint traffic
// (one full-state blob per interval per shard) against worst-case recovery
// latency; OPERATIONS.md has the sizing guidance.
const DefaultCheckpointInterval = 8

// ShardOptions selects the sharding layout of a sharded mine.
type ShardOptions struct {
	// Shards is the number of edge partitions (≥ 1).
	Shards int
	// Strategy is the deterministic edge-routing rule; the zero value
	// selects graph.ShardBySource.
	Strategy graph.ShardStrategy
	// CheckpointInterval is the number of acknowledged ingest batches
	// between worker checkpoints on failover-supervised deployments: the
	// supervisor pulls a full-state blob from the worker every interval and
	// truncates its replay log to the post-checkpoint suffix, bounding
	// recovery replay by the interval instead of the stream length
	// (DESIGN.md §9). Zero selects DefaultCheckpointInterval; a negative
	// value disables checkpointing (full-log replay, the pre-checkpoint
	// behavior). Irrelevant without a RebuildingBuilder — no supervisor, no
	// log to truncate.
	CheckpointInterval int
}

// normalize fills defaults and validates.
func (so ShardOptions) normalize() (ShardOptions, error) {
	if so.Shards < 1 {
		return so, fmt.Errorf("core: shard count %d < 1", so.Shards)
	}
	if so.Strategy == "" {
		so.Strategy = graph.ShardBySource
	}
	if _, err := graph.ParseShardStrategy(string(so.Strategy)); err != nil {
		return so, err
	}
	if so.CheckpointInterval == 0 {
		so.CheckpointInterval = DefaultCheckpointInterval
	}
	return so, nil
}

// ShardPlan describes one sharded run: the layout plus the lowered
// per-shard offer threshold the completeness argument licenses.
type ShardPlan struct {
	// Shards and Strategy echo the (normalized) ShardOptions.
	Shards   int
	Strategy graph.ShardStrategy
	// ShardMinSupp is ⌈MinSupp/Shards⌉, the support threshold each shard
	// worker mines with.
	ShardMinSupp int
	// Edges holds the per-shard edge counts of the current assignment.
	Edges []int
}

// String renders the plan for CLI display.
func (p ShardPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shards: %d by %s, shard minSupp=%d, edges=[", p.Shards, p.Strategy, p.ShardMinSupp)
	for i, e := range p.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte(']')
	return b.String()
}

// shardCand is one union-pool entry: a GR with its per-shard counts. have
// marks shards whose counts are known (offered, or delta-reported by a
// worker's Ingest); the merge fetches the rest through the worker interface
// without writing them back — a shard that never offered an entry may grow
// its count later, so only worker-reported counts are durable.
type shardCand struct {
	gr   gr.GR
	per  []metrics.Counts
	have []bool
}

// ShardCoordinator owns a sharded mining run: the plan, the per-shard
// workers, the coarse count sketches, and the merge that re-assembles the
// exact global top-k.
type ShardCoordinator struct {
	plan       ShardPlan
	opt        Options // normalized effective options
	schema     *graph.Schema
	workers    []ShardWorker
	sketches   []ShardSketch
	totalEdges int
}

// NewShardCoordinator partitions g's edges under so, builds one in-process
// worker per shard, and returns a coordinator ready to Mine. Options follow
// MineStore, with the parallel engine's normalization: a dynamic floor
// forces ExactGenerality so the merged result is order-independent.
func NewShardCoordinator(g *graph.Graph, opt Options, so ShardOptions) (*ShardCoordinator, error) {
	return NewShardCoordinatorFrom(g, opt, so, WorkerBuilder(InProcessWorkers))
}

// NewShardCoordinatorFrom is NewShardCoordinator with an explicit worker
// builder: InProcessWorkers for the single-machine deployment, or a remote
// builder (internal/rpc.Builder, internal/rpc.Fleet) that hands every
// WorkerSpec to a shardd daemon. When the builder is a RebuildingBuilder,
// workers are wrapped in replay supervisors and the run survives worker
// loss (see FleetHealth). Close releases the workers.
func NewShardCoordinatorFrom(g *graph.Graph, opt Options, so ShardOptions, build FleetBuilder) (*ShardCoordinator, error) {
	opt, plan, sketches, workers, err := buildShardDeployment(g, opt, so, build)
	if err != nil {
		return nil, err
	}
	return &ShardCoordinator{
		plan:       plan,
		opt:        opt,
		schema:     g.Schema(),
		workers:    workers,
		sketches:   sketches,
		totalEdges: g.NumLiveEdges(),
	}, nil
}

// buildShardDeployment normalizes the options, partitions g, computes the
// per-shard coarse count sketches, and builds one worker per shard from its
// spec — the construction shared by the batch coordinator and the sharded
// incremental engine. When the builder can rebuild replacements, every
// worker is wrapped in a replay supervisor (failover.go) before the
// deployment is returned. On a builder error, already-built workers are
// closed.
func buildShardDeployment(g *graph.Graph, opt Options, so ShardOptions, build FleetBuilder) (Options, ShardPlan, []ShardSketch, []ShardWorker, error) {
	opt, so, err := normalizeSharded(g, opt, so)
	if err != nil {
		return opt, ShardPlan{}, nil, nil, err
	}
	parts, err := graph.PartitionEdges(g, so.Shards, so.Strategy)
	if err != nil {
		return opt, ShardPlan{}, nil, nil, err
	}
	plan := planFromParts(opt, so, parts)
	sketches := make([]ShardSketch, len(parts))
	workers := make([]ShardWorker, len(parts))
	specs := make([]WorkerSpec, len(parts))
	for i, part := range parts {
		sketches[i] = newShardSketch(g.Schema())
		for _, e32 := range part {
			e := int(e32)
			sketches[i].addEdge(g.NodeValues(g.Src(e)), g.NodeValues(g.Dst(e)), g.EdgeValues(e))
		}
		specs[i] = buildWorkerSpec(g, opt, plan, part, i)
		w, err := build.Build(specs[i])
		if err != nil {
			closeWorkers(workers[:i])
			return opt, plan, nil, nil, fmt.Errorf("core: shard %d worker: %w", i, err)
		}
		workers[i] = w
	}
	superviseWorkers(build, specs, workers, so.CheckpointInterval)
	return opt, plan, sketches, workers, nil
}

// closeWorkers closes every non-nil worker, returning the first error.
func closeWorkers(workers []ShardWorker) error {
	var first error
	for _, w := range workers {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// offerAll runs every worker's offer round concurrently (offers are
// independent per shard) and returns the per-shard pools, stats, and
// errors, indexed by shard. bounds may be nil (the incremental seed, which
// also seeds the workers' maintained pools) or hold one OfferBound per
// worker (the batch protocol's round 1).
func offerAll(workers []ShardWorker, bounds []*OfferBound) ([][]ShardCandidate, []Stats, []error) {
	pools := make([][]ShardCandidate, len(workers))
	stats := make([]Stats, len(workers))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w ShardWorker) {
			defer wg.Done()
			var b *OfferBound
			if bounds != nil {
				b = bounds[i]
			}
			pools[i], stats[i], errs[i] = w.Offer(b)
		}(i, w)
	}
	wg.Wait()
	return pools, stats, errs
}

// normalizeSharded applies the shared option/limit validation of a sharded
// engine (batch coordinator and incremental alike).
func normalizeSharded(g *graph.Graph, opt Options, so ShardOptions) (Options, ShardOptions, error) {
	opt, err := opt.normalize()
	if err != nil {
		return opt, so, err
	}
	if n := len(g.Schema().Node); n > 64 {
		return opt, so, fmt.Errorf("core: %d node attributes exceed the supported maximum of 64", n)
	}
	if opt.PoolCap > 0 {
		// A per-shard pool is gated purely on the pigeonhole support
		// threshold; spilling any entry of it could lose the one shard
		// offer a globally qualifying GR is guaranteed to have, so the
		// bounded-pool protocol is single-store only (DESIGN.md §4e).
		return opt, so, fmt.Errorf("core: PoolCap is not supported by the sharded engines (it would break offer completeness)")
	}
	if opt.DynamicFloor && !opt.NoGeneralityFilter {
		// Mirror the parallel and incremental engines: order-independent
		// blocking is what makes "sharded ≡ single store" well-defined
		// under a dynamic floor (see Options.ExactGenerality).
		opt.ExactGenerality = true
	}
	so, err = so.normalize()
	return opt, so, err
}

// planFromParts assembles the plan for a normalized layout.
func planFromParts(opt Options, so ShardOptions, parts [][]int32) ShardPlan {
	p := ShardPlan{
		Shards:       so.Shards,
		Strategy:     so.Strategy,
		ShardMinSupp: (opt.MinSupp + so.Shards - 1) / so.Shards,
		Edges:        make([]int, len(parts)),
	}
	for i, part := range parts {
		p.Edges[i] = len(part)
	}
	return p
}

// Plan returns the layout of this run.
func (sc *ShardCoordinator) Plan() ShardPlan { return sc.plan }

// Options returns the effective (normalized) options — what a single-store
// mine must use to reproduce the sharded result.
func (sc *ShardCoordinator) Options() Options { return sc.opt }

// Close releases the workers (remote connections, for a remote deployment).
func (sc *ShardCoordinator) Close() error { return closeWorkers(sc.workers) }

// FleetHealth reports the per-shard failover record: liveness, retries,
// replacements, and replayed batches. Deployments whose builder cannot
// rebuild replacements report every shard live with zero counters.
func (sc *ShardCoordinator) FleetHealth() []WorkerHealth { return fleetHealth(sc.workers) }

// Mine runs the two-round protocol: round 1 offers on every shard
// concurrently under the sketch-derived bounds, then the merge with its
// batched round-2 exact-count queries. The result is the exact global
// top-k.
func (sc *ShardCoordinator) Mine() (*Result, error) {
	start := time.Now()
	bounds := buildOfferBounds(sc.opt.MinSupp, sc.sketches)
	pools, shardStats, errs := offerAll(sc.workers, bounds)
	var stats Stats
	for i := range sc.workers {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, errs[i])
		}
		addStats(&stats, &shardStats[i])
	}

	pool := make(map[string]*shardCand)
	for i, offers := range pools {
		for _, cand := range offers {
			key := cand.GR.Key()
			u := pool[key]
			if u == nil {
				u = &shardCand{
					gr:   cand.GR,
					per:  make([]metrics.Counts, len(sc.workers)),
					have: make([]bool, len(sc.workers)),
				}
				pool[key] = u
			}
			u.per[i] = cand.Counts
			u.have[i] = true
		}
	}

	topList, err := mergeShardPool(sc.opt, sc.plan.ShardMinSupp, sc.totalEdges, sc.workers, sc.sketches, pool, sc.schema, &stats)
	if err != nil {
		return nil, err
	}
	stats.Duration = time.Since(start)
	return &Result{TopK: topList, Stats: stats, Options: sc.opt, TotalEdges: sc.totalEdges}, nil
}

// mergeItem is one merge survivor: the union-pool entry plus, per shard,
// the index of its round-2 fetched counts (-1 where the entry's counts are
// already known). Fetched counts live beside the pool, never in it.
type mergeItem struct {
	u     *shardCand
	fetch []int32
}

// mergeShardPool re-scores every pool candidate from its summed per-shard
// counts and applies Definition 5 conditions (1)-(3) globally. It is shared
// by the batch coordinator and the sharded incremental engine.
//
// Round-2 bounding: a shard that did not offer a candidate holds at most
// t−1 = shardMinSupp−1 of its support (the offer round enumerates every GR
// at or above that threshold; the OfferBound prune only ever removes
// globally non-qualifying GRs, for which any rejection is correct), and at
// most its sketch's smallest singleton count for the candidate's
// conditions. A candidate whose known supports plus those caps cannot reach
// MinSupp fails condition (1) without a counting scan; survivors' missing
// counts are fetched in one batched Counts call per worker. Stats records
// the actual (candidate, shard) fetch volume (ExactCountRequests) alongside
// what the PR 3 one-round bound would have fetched from the same pool
// (OneRoundGapFill) — the protocol's measured saving.
func mergeShardPool(opt Options, shardMinSupp, totalEdges int, workers []ShardWorker, sketches []ShardSketch, pool map[string]*shardCand, schema *graph.Schema, stats *Stats) ([]gr.Scored, error) {
	keys := make([]string, 0, len(pool))
	for k := range pool {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Round-2 bound pass: pure arithmetic over known counts and sketches.
	n := len(workers)
	items := make([]mergeItem, 0, len(keys))
	needs := make([][]gr.GR, n)
	for _, key := range keys {
		u := pool[key]
		known := 0
		unknown := 0
		for s := 0; s < n; s++ {
			if u.have[s] {
				known += u.per[s].LWR
			} else {
				unknown++
			}
		}
		if known+(shardMinSupp-1)*unknown >= opt.MinSupp {
			stats.OneRoundGapFill += int64(unknown)
		}
		bound := known
		for s := 0; s < n; s++ {
			if u.have[s] {
				continue
			}
			slack := shardMinSupp - 1
			if ms := sketches[s].minSingle(u.gr); ms < slack {
				slack = ms
			}
			bound += slack
		}
		if bound < opt.MinSupp {
			continue // cannot satisfy condition (1); skip the verify round
		}
		it := mergeItem{u: u}
		if unknown > 0 {
			it.fetch = make([]int32, n)
			for s := 0; s < n; s++ {
				it.fetch[s] = -1
				// A shard whose sketch proves it cannot contribute to any
				// count the metric reads is taken as zero without a fetch
				// (fetch index stays -1).
				if !u.have[s] && sketches[s].contributes(opt.Metric, u.gr) {
					it.fetch[s] = int32(len(needs[s]))
					needs[s] = append(needs[s], u.gr)
					stats.ExactCountRequests++
				}
			}
		}
		items = append(items, it)
	}

	// Round-2 fetch pass: one batched exact-count query per worker.
	fetched := make([][]metrics.Counts, n)
	fetchErrs := make([]error, n)
	var fwg sync.WaitGroup
	for s := 0; s < n; s++ {
		if len(needs[s]) == 0 {
			continue
		}
		fwg.Add(1)
		go func(s int) {
			defer fwg.Done()
			fetched[s], fetchErrs[s] = workers[s].Counts(needs[s])
		}(s)
	}
	fwg.Wait()
	for s, err := range fetchErrs {
		if err != nil {
			return nil, fmt.Errorf("core: shard %d exact counts: %w", s, err)
		}
		if len(needs[s]) > 0 && len(fetched[s]) != len(needs[s]) {
			return nil, fmt.Errorf("core: shard %d returned %d counts for %d queries", s, len(fetched[s]), len(needs[s]))
		}
	}

	nw := opt.Parallelism
	if nw < 1 {
		nw = 1
	}
	if nw > len(items) {
		nw = len(items)
	}
	if nw < 1 {
		nw = 1
	}
	// With the generality filter off there is nothing to block: merge
	// workers keep private bound-k lists behind the shared CAS-raised floor
	// and the final topk.Merge is exact. With the filter on, every
	// qualifying candidate is a potential blocker, so workers must collect
	// all survivors for the blocker merge and the floor cannot skip any.
	useFloor := opt.NoGeneralityFilter
	floor := newParFloor()
	lists := make([]*topk.List, nw)
	survivors := make([][]gr.Scored, nw)
	var next atomic.Int64
	var qualifying atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		lists[wi] = topk.New(opt.K)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				var c metrics.Counts
				for s := 0; s < n; s++ {
					per := it.u.per[s]
					if !it.u.have[s] {
						if it.fetch[s] < 0 {
							continue // provably zero contribution, never fetched
						}
						per = fetched[s][it.fetch[s]]
					}
					c.LWR += per.LWR
					c.LW += per.LW
					c.Hom += per.Hom
					c.R += per.R
				}
				c.E = totalEdges
				score := opt.Metric.Score(c)
				if c.LWR < opt.MinSupp || !(score >= opt.MinScore) {
					continue
				}
				qualifying.Add(1)
				s := gr.Scored{GR: it.u.gr, Supp: c.LWR, Score: score, Conf: metrics.Conf(c)}
				if useFloor {
					if opt.K > 0 && score < floor.load() {
						continue
					}
					if lists[wi].Consider(s) {
						if fl, ok := lists[wi].Floor(); ok {
							floor.raise(fl)
						}
					}
				} else {
					survivors[wi] = append(survivors[wi], s)
				}
			}
		}(wi)
	}
	wg.Wait()

	// Offer-round counters are work done at the relaxed shard thresholds;
	// Candidates keeps its documented meaning — GRs meeting both *global*
	// thresholds — by overwriting rather than adding (the same convention
	// the single-store incremental assemble uses).
	stats.Candidates = qualifying.Load()
	if useFloor {
		return topk.Merge(opt.K, lists...).Items(), nil
	}
	var collected []gr.Scored
	for _, sv := range survivors {
		collected = append(collected, sv...)
	}
	// The survivor set is the complete global condition-(1) set, so the
	// most-general-first blocker merge is exact (no per-candidate
	// generalisation scans needed — clear ExactGenerality for the merge).
	mergeOpt := opt
	mergeOpt.ExactGenerality = false
	return mergeCandidates(collected, mergeOpt, schema, stats), nil
}

// MineSharded partitions g's edges into so.Shards shards, mines each shard
// concurrently with the two-round protocol, and merges the per-shard pools
// into the exact global top-k — the same ranked list MineStore produces
// over a single store under the coordinator's effective options.
func MineSharded(g *graph.Graph, opt Options, so ShardOptions) (*Result, error) {
	sc, err := NewShardCoordinator(g, opt, so)
	if err != nil {
		return nil, err
	}
	return sc.Mine()
}

// PlanShards previews the sharded layout MineSharded would use for g under
// the given options, without building shard stores or mining.
func PlanShards(g *graph.Graph, opt Options, so ShardOptions) (ShardPlan, error) {
	opt, so, err := normalizeSharded(g, opt, so)
	if err != nil {
		return ShardPlan{}, err
	}
	parts, err := graph.PartitionEdges(g, so.Shards, so.Strategy)
	if err != nil {
		return ShardPlan{}, err
	}
	return planFromParts(opt, so, parts), nil
}
