// Package core implements the paper's primary contribution: the GRMiner
// algorithm (Algorithm 1) over the compact three-array data model, using the
// Subset-First Depth-First (SFDF) enumeration of Section IV-C with the
// dynamic tail ordering of Equation 8, and pushing the minSupp, minNhp, and
// top-k constraints into the search per Theorems 2 and 3.
package core

import "grminer/internal/graph"

// The SFDF tree orders all attributes by the list τ of Equation 7,
//
//	τ : NHr, Hr, W, NHl, Hl
//
// reading left to right with ascending "positions". A tree node labeled with
// the attribute at position p has one child per attribute at a position
// strictly below p (the tail), and children are visited in ascending
// position order. Consequences, proved in Section IV-C of the paper and
// exercised by the tests here:
//
//   - along any root-to-node path, attributes are added LHS first, then
//     edge, then RHS (Property 1), because L attributes hold the highest
//     positions and every extension moves strictly left;
//   - across the whole tree, any attribute set is enumerated before all of
//     its supersets (Property 2), because the descending position sequence
//     of a subset is lexicographically no greater than that of a superset;
//   - within the RHS block the positions are assigned *dynamically* per
//     Equation 8 — NHr, Hr1, Hr2 ascending, where Hr2 holds the homophily
//     attributes already constrained on the LHS — so homophily attributes
//     that could flip β from ∅ to non-∅ are exhausted first and Theorem 3's
//     anti-monotonicity of nhp holds on every RHS extension of a
//     non-trivial GR.
//
// The three position lists below materialise the blocks. The recursion in
// miner.go encodes the cross-block order structurally (RIGHT, then EDGE,
// then LEFT at every node, as in Algorithm 1).

// lhsOrder returns the LHS position list: non-homophily node attributes
// first (lower positions), then homophily ones, matching "..., NHl, Hl".
func lhsOrder(s *graph.Schema) []int {
	order := make([]int, 0, len(s.Node))
	order = append(order, s.NonHomophilyNodeAttrs()...)
	order = append(order, s.HomophilyNodeAttrs()...)
	return order
}

// edgeOrder returns the edge-attribute position list (W block).
func edgeOrder(s *graph.Schema) []int {
	order := make([]int, len(s.Edge))
	for i := range order {
		order[i] = i
	}
	return order
}

// staticRHSOrder returns the RHS position list without the Equation 8
// dynamic split: NHr then Hr in schema order, independent of the LHS. Used
// by the StaticRHSOrder ablation; with this order a homophily attribute
// constrained on the LHS can be appended to the RHS *after* other values,
// flipping β from empty to non-empty and possibly *raising* nhp (Remark 2),
// so nhp pruning must be withheld whenever β is still empty.
func staticRHSOrder(s *graph.Schema) []int {
	order := make([]int, 0, len(s.Node))
	order = append(order, s.NonHomophilyNodeAttrs()...)
	order = append(order, s.HomophilyNodeAttrs()...)
	return order
}

// rhsOrder returns the dynamically ordered RHS position list for a GR whose
// LHS constrains exactly the node attributes in lhsHas: NHr, then Hr1
// (homophily attributes absent from the LHS), then Hr2 (present in the LHS),
// ascending — Equation 8. Because the enumeration picks positions in
// descending order, Hr2 attributes are added to the RHS before Hr1 and NHr.
func rhsOrder(s *graph.Schema, lhsHas func(attr int) bool) []int {
	order := make([]int, 0, len(s.Node))
	order = append(order, s.NonHomophilyNodeAttrs()...)
	for _, a := range s.HomophilyNodeAttrs() {
		if !lhsHas(a) {
			order = append(order, a) // Hr1
		}
	}
	for _, a := range s.HomophilyNodeAttrs() {
		if lhsHas(a) {
			order = append(order, a) // Hr2
		}
	}
	return order
}
