package core_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
)

func TestWriteTSV(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.9, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEdges != 30 {
		t.Errorf("TotalEdges = %d, want 30", res.TotalEdges)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf, g.Schema()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.TopK) {
		t.Fatalf("TSV has %d lines for %d results", len(lines), len(res.TopK))
	}
	if !strings.HasPrefix(lines[0], "rank\tgr\tnhp\tsupp\trel_supp\tconf") {
		t.Errorf("header = %q", lines[0])
	}
	first := strings.Split(lines[1], "\t")
	if len(first) != 6 || first[0] != "1" {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[1], "->") {
		t.Error("GR column not in parseable syntax")
	}
	// rel_supp = supp / 30.
	if !strings.Contains(lines[1], "0.4666") {
		t.Errorf("rel_supp wrong in %q (supp=%d)", lines[1], res.TopK[0].Supp)
	}
}

func TestWriteJSON(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.9, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, g.Schema()); err != nil {
		t.Fatal(err)
	}
	var rep core.JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Metric != "nhp" || rep.MinSupp != 2 || rep.K != 3 {
		t.Errorf("metadata = %+v", rep)
	}
	if len(rep.Results) != len(res.TopK) {
		t.Fatalf("results = %d, want %d", len(rep.Results), len(res.TopK))
	}
	if rep.Results[0].Rank != 1 || rep.Results[0].Supp != res.TopK[0].Supp {
		t.Errorf("first row = %+v", rep.Results[0])
	}
	if rep.Stats.Examined == 0 {
		t.Error("stats missing from JSON")
	}
}
