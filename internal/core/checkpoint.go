package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"grminer/internal/graph"
	"grminer/internal/store"
)

// CheckpointVersion is the checkpoint blob format generation. A blob is
// opaque to everything between the worker that wrote it and the worker that
// restores it — the supervisor and the rpc layer ship it as raw bytes — so
// the version lives inside the blob, not in the wire protocol: bumping it
// does not bump the rpc version, and a restore of a foreign generation fails
// closed (the supervisor then marks the shard down rather than guessing).
const CheckpointVersion = 1

// Checkpointer is a ShardWorker that can serialize its full shard state
// into an opaque versioned blob. Supervisors checkpoint through it every
// CheckpointInterval acknowledged batches and truncate their replay logs to
// the post-checkpoint suffix (DESIGN.md §9): recovery becomes
// install-checkpoint + replay-at-most-interval-batches instead of
// replay-everything. Workers without it (or remote daemons predating wire
// v4) simply keep the full-log behavior.
type Checkpointer interface {
	Checkpoint() ([]byte, error)
}

// Restorer is a ShardWorker that can be (re)initialized from a checkpoint
// blob plus the shard's spec. The spec supplies what the blob deliberately
// omits — schema and the full node table, which checkpointing would
// otherwise re-ship unchanged every interval — and the blob supplies
// everything that moved since build: the shard's edge log, tombstones, the
// compact store's exact arrays, the intern dictionary, and the maintained
// pool.
type Restorer interface {
	Restore(spec WorkerSpec, blob []byte) error
}

// RestoringBuilder is a RebuildingBuilder that can place a replacement
// worker directly from a checkpoint blob, skipping the wasted spec-time
// store build a Rebuild-then-Restore pair would pay. internal/rpc.Fleet
// implements it by shipping the blob to the replacement daemon.
type RestoringBuilder interface {
	RebuildingBuilder
	RebuildRestore(spec WorkerSpec, blob []byte) (ShardWorker, error)
}

// checkpointImage is the serialized form of a WorkerState. The worker's
// private graph is persisted as its append-only edge log (every edge ever
// added, in id order, dead ids listed separately) because edge ids — which
// the store's EID column references — are positional in that log; the node
// table and schema come from the spec at restore time. The store rides
// along as its exact array snapshot, so a restored worker is bit-identical,
// not merely equivalent: same row ids, same tombstones, same interned ids,
// same maintained pool.
type checkpointImage struct {
	Version       int
	Index, Shards int
	NumNodes      int

	EdgeSrc   []int32
	EdgeDst   []int32
	EdgeVals  []graph.Value
	DeadEdges []int32

	Store store.State

	Seeded bool
	Pool   []ShardCandidate
}

// Checkpoint serializes the worker's full shard state — graph edge log with
// tombstones, compact store arrays, intern dictionary, maintained pool and
// its seeded-ness, ingestion high-water mark — into an opaque versioned
// blob. The inverse is Restore / NewWorkerStateFromCheckpoint.
func (w *WorkerState) Checkpoint() ([]byte, error) {
	ne := len(w.g.Schema().Edge)
	m := w.g.NumEdges()
	img := checkpointImage{
		Version:  CheckpointVersion,
		Index:    w.idx,
		Shards:   w.shards,
		NumNodes: w.g.NumNodes(),
		EdgeSrc:  make([]int32, m),
		EdgeDst:  make([]int32, m),
		Store:    w.st.State(),
		Seeded:   w.pool != nil,
	}
	if ne > 0 {
		img.EdgeVals = make([]graph.Value, m*ne)
	}
	for e := 0; e < m; e++ {
		img.EdgeSrc[e] = int32(w.g.Src(e))
		img.EdgeDst[e] = int32(w.g.Dst(e))
		if ne > 0 {
			copy(img.EdgeVals[e*ne:(e+1)*ne], w.g.EdgeValues(e))
		}
		if !w.g.EdgeAlive(e) {
			img.DeadEdges = append(img.DeadEdges, int32(e))
		}
	}
	if w.pool != nil {
		img.Pool = make([]ShardCandidate, 0, len(w.pool))
		for _, t := range w.pool {
			img.Pool = append(img.Pool, ShardCandidate{GR: t.gr, Counts: t.c})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("core: worker %d: checkpoint encode: %w", w.idx, err)
	}
	return buf.Bytes(), nil
}

// NewWorkerStateFromCheckpoint builds a live worker from its spec and a
// checkpoint blob, reproducing the checkpointed worker bit-identically. The
// spec must describe the same shard the blob was taken from (index, shard
// count, node table); mismatches and foreign blob versions fail closed.
func NewWorkerStateFromCheckpoint(spec WorkerSpec, blob []byte) (*WorkerState, error) {
	var img checkpointImage
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: shard %d: checkpoint decode: %w", spec.Index, err)
	}
	if img.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: shard %d: checkpoint version %d, this build speaks %d",
			spec.Index, img.Version, CheckpointVersion)
	}
	if img.Index != spec.Index || img.Shards != spec.Shards {
		return nil, fmt.Errorf("core: checkpoint for shard %d/%d offered to shard %d/%d",
			img.Index, img.Shards, spec.Index, spec.Shards)
	}
	if img.NumNodes != spec.NumNodes {
		return nil, fmt.Errorf("core: shard %d: checkpoint node table (%d nodes) disagrees with spec (%d)",
			spec.Index, img.NumNodes, spec.NumNodes)
	}
	if len(img.EdgeDst) != len(img.EdgeSrc) {
		return nil, fmt.Errorf("core: shard %d: checkpoint edge arrays disagree", spec.Index)
	}

	schema, err := graph.NewSchema(spec.NodeAttrs, spec.EdgeAttrs)
	if err != nil {
		return nil, fmt.Errorf("core: worker spec schema: %w", err)
	}
	nv, ne := len(schema.Node), len(schema.Edge)
	if len(spec.NodeVals) != spec.NumNodes*nv {
		return nil, fmt.Errorf("core: worker spec: %d node values for %d nodes × %d attrs",
			len(spec.NodeVals), spec.NumNodes, nv)
	}
	if ne > 0 && len(img.EdgeVals) != len(img.EdgeSrc)*ne {
		return nil, fmt.Errorf("core: shard %d: checkpoint edge values disagree with schema", spec.Index)
	}
	g, err := graph.New(schema, spec.NumNodes)
	if err != nil {
		return nil, err
	}
	for n := 0; n < spec.NumNodes; n++ {
		if err := g.SetNodeValues(n, spec.NodeVals[n*nv:(n+1)*nv]...); err != nil {
			return nil, fmt.Errorf("core: worker spec node %d: %w", n, err)
		}
	}
	// Replay the edge log in id order — edge ids are positional, and the
	// store snapshot's EID column references them — then re-tombstone.
	for i := range img.EdgeSrc {
		var vals []graph.Value
		if ne > 0 {
			vals = img.EdgeVals[i*ne : (i+1)*ne]
		}
		if _, err := g.AddEdge(int(img.EdgeSrc[i]), int(img.EdgeDst[i]), vals...); err != nil {
			return nil, fmt.Errorf("core: shard %d: checkpoint edge %d: %w", spec.Index, i, err)
		}
	}
	for _, e := range img.DeadEdges {
		if err := g.RemoveEdge(int(e)); err != nil {
			return nil, fmt.Errorf("core: shard %d: checkpoint tombstone %d: %w", spec.Index, e, err)
		}
	}

	opt, err := spec.Opt.Options()
	if err != nil {
		return nil, err
	}
	opt, err = opt.normalize()
	if err != nil {
		return nil, err
	}
	if spec.ShardMinSupp < 1 {
		return nil, fmt.Errorf("core: worker spec: shard minSupp %d < 1", spec.ShardMinSupp)
	}
	st, err := store.FromState(g, img.Store)
	if err != nil {
		return nil, fmt.Errorf("core: shard %d: checkpoint store: %w", spec.Index, err)
	}
	w := &WorkerState{
		g:       g,
		st:      st,
		opt:     opt,
		metric:  opt.Metric,
		minSupp: spec.ShardMinSupp,
		idx:     spec.Index,
		shards:  spec.Shards,
		scr:     newMinerScratch(st.Dict()),
	}
	if img.Seeded {
		w.pool = make(map[string]*workerEntry, len(img.Pool))
		for _, cand := range img.Pool {
			w.upsert(cand.GR, cand.Counts)
		}
	}
	return w, nil
}

// Restore reinitializes the worker in place from a checkpoint blob; the
// shardd daemon uses it to install a shipped checkpoint into an existing
// slot. On error the worker is left unchanged.
func (w *WorkerState) Restore(spec WorkerSpec, blob []byte) error {
	nw, err := NewWorkerStateFromCheckpoint(spec, blob)
	if err != nil {
		return err
	}
	*w = *nw
	return nil
}
