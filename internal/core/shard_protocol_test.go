package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// protocolTrace records what crosses the ShardWorker boundary during one
// mine: which shards offered which GR keys in round 1, and which
// (GR, shard) exact-count pairs round 2 requested.
type protocolTrace struct {
	mu        sync.Mutex
	offered   map[string]map[int]bool
	requested map[string]map[int]bool
}

func newProtocolTrace() *protocolTrace {
	return &protocolTrace{
		offered:   make(map[string]map[int]bool),
		requested: make(map[string]map[int]bool),
	}
}

func (tr *protocolTrace) mark(m map[string]map[int]bool, key string, shard int) {
	if m[key] == nil {
		m[key] = make(map[int]bool)
	}
	m[key][shard] = true
}

// tracingWorker wraps a real worker, recording its protocol traffic.
type tracingWorker struct {
	core.ShardWorker
	idx int
	tr  *protocolTrace
}

func (w tracingWorker) Offer(b *core.OfferBound) ([]core.ShardCandidate, core.Stats, error) {
	offers, stats, err := w.ShardWorker.Offer(b)
	w.tr.mu.Lock()
	for _, o := range offers {
		w.tr.mark(w.tr.offered, o.GR.Key(), w.idx)
	}
	w.tr.mu.Unlock()
	return offers, stats, err
}

func (w tracingWorker) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	w.tr.mu.Lock()
	for _, g := range grs {
		w.tr.mark(w.tr.requested, g.Key(), w.idx)
	}
	w.tr.mu.Unlock()
	return w.ShardWorker.Counts(grs)
}

// tracingBuilder builds in-process workers wrapped with the trace.
func tracingBuilder(tr *protocolTrace) core.WorkerBuilder {
	return func(spec core.WorkerSpec) (core.ShardWorker, error) {
		w, err := core.InProcessWorkers(spec)
		if err != nil {
			return nil, err
		}
		return tracingWorker{ShardWorker: w, idx: spec.Index, tr: tr}, nil
	}
}

// singleSourceGraph routes every edge to one shard under ShardBySource —
// the maximal-skew layout, where the sketch caps should eliminate round-2
// requests entirely (the empty shards provably hold nothing).
func singleSourceGraph(t *testing.T) *graph.Graph {
	t.Helper()
	schema, err := graph.NewSchema([]graph.Attribute{
		{Name: "A", Domain: 3, Homophily: true},
	}, []graph.Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 10)
	for v := 0; v < 10; v++ {
		if err := g.SetNodeValues(v, graph.Value(v%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 10; i++ {
		if _, err := g.AddEdge(0, i, graph.Value(i%2+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestTwoRoundProtocolInvariants is the table-driven bound test of the
// count-then-verify protocol. For every layout it checks, against the
// recorded boundary traffic:
//
//  1. Round-2 exact-count requests are a strict subset of the round-1
//     offers: every requested GR was offered by some shard, the requested
//     (GR, shard) pairs are disjoint from the offering pairs, and some
//     offered GRs are never requested (the bound pays for itself).
//  2. No qualifying GR is pruned between rounds: every GR whose exact
//     global counts satisfy condition (1) — measured independently by a
//     full scan — is offered in round 1, and its counts are either known
//     from offers or requested on every missing shard in round 2.
//  3. The round-2 volume never exceeds what the PR 3 one-round bound would
//     have fetched, and the merged result equals the single-store
//     reference.
func TestTwoRoundProtocolInvariants(t *testing.T) {
	cases := []struct {
		name     string
		graph    func(t *testing.T) *graph.Graph
		minSupp  int
		minScore float64
		k        int
		dyn      bool
		shards   int
		strategy graph.ShardStrategy
		metric   metrics.Metric
	}{
		{"nhp-4shards", func(t *testing.T) *graph.Graph { return randomGraph(21, true, true) }, 4, 0.3, 10, false, 4, graph.ShardBySource, metrics.NhpMetric},
		{"nhp-dynamic-3shards", func(t *testing.T) *graph.Graph { return randomGraph(22, true, false) }, 4, 0.3, 5, true, 3, graph.ShardByRHS, metrics.NhpMetric},
		{"conf-5shards", func(t *testing.T) *graph.Graph { return randomGraph(23, false, true) }, 6, 0.3, 10, false, 5, graph.ShardBySource, metrics.ConfMetric},
		{"lift-4shards", func(t *testing.T) *graph.Graph { return randomGraph(24, true, true) }, 4, 1.05, 10, false, 4, graph.ShardByRHS, metrics.LiftMetric},
		{"skew-all-one-shard", singleSourceGraph, 3, 0.1, 5, false, 4, graph.ShardBySource, metrics.NhpMetric},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.graph(t)
			tr := newProtocolTrace()
			opt := core.Options{
				MinSupp: tc.minSupp, MinScore: tc.minScore, K: tc.k,
				DynamicFloor: tc.dyn, Metric: tc.metric,
			}
			sc, err := core.NewShardCoordinatorFrom(g, opt,
				core.ShardOptions{Shards: tc.shards, Strategy: tc.strategy}, tracingBuilder(tr))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sc.Mine()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.Mine(g, sc.Options())
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, tc.name, res.TopK, ref.TopK)

			// (1) Requests ⊂ offers.
			requestedPairs, offeredPairs := 0, 0
			for key, shards := range tr.requested {
				offeredBy := tr.offered[key]
				if offeredBy == nil {
					t.Errorf("round-2 request for %s, which no shard offered", key)
					continue
				}
				for s := range shards {
					requestedPairs++
					if offeredBy[s] {
						t.Errorf("round-2 request for %s on shard %d, which already offered it", key, s)
					}
				}
			}
			unrequested := 0
			for key, shards := range tr.offered {
				offeredPairs += len(shards)
				if tr.requested[key] == nil {
					unrequested++
				}
			}
			if unrequested == 0 {
				t.Errorf("every offered GR was exact-count-requested — the bound pruned nothing")
			}
			if int64(requestedPairs) != res.Stats.ExactCountRequests {
				t.Errorf("trace saw %d round-2 requests, stats recorded %d", requestedPairs, res.Stats.ExactCountRequests)
			}
			if res.Stats.ExactCountRequests > res.Stats.OneRoundGapFill {
				t.Errorf("round-2 volume %d exceeds the one-round bound's %d",
					res.Stats.ExactCountRequests, res.Stats.OneRoundGapFill)
			}

			// (2) No qualifying GR pruned between rounds: exact global
			// counts decide independently of the protocol. A shard that
			// neither offered a qualifying GR nor was queried must hold
			// exactly nothing the metric reads for it (the sketch-proven
			// zero-contribution skip).
			parts, err := graph.PartitionEdges(g, tc.shards, tc.strategy)
			if err != nil {
				t.Fatal(err)
			}
			for key, offeredBy := range tr.offered {
				sample := findOffered(t, g, sc.Options(), key)
				c := metrics.Eval(g, sample)
				if c.LWR < sc.Options().MinSupp {
					continue // not qualifying; any treatment is fine
				}
				for s := 0; s < tc.shards; s++ {
					if offeredBy[s] || tr.requested[key][s] {
						continue
					}
					lw, r := shardContribution(g, parts[s], sample)
					if lw > 0 || (tc.metric.NeedsR && r > 0) {
						t.Errorf("qualifying GR %s (global supp %d): shard %d holds lw=%d r=%d but was neither offered nor queried",
							key, c.LWR, s, lw, r)
					}
				}
			}
			t.Logf("offered %d GRs (%d pairs), requested %d pairs, one-round bound %d",
				len(tr.offered), offeredPairs, requestedPairs, res.Stats.OneRoundGapFill)
		})
	}
}

// failingIngestWorker fails Ingest on demand — the remote-transport failure
// mode the in-process workers can never produce.
type failingIngestWorker struct {
	core.ShardWorker
	fail *bool
}

func (w failingIngestWorker) Ingest(batch core.Batch) (core.IngestReply, error) {
	if *w.fail {
		return core.IngestReply{}, fmt.Errorf("injected transport failure")
	}
	return w.ShardWorker.Ingest(batch)
}

// A worker failure after the owned graph has grown must poison the engine:
// the coordinator and the failed worker disagree on the edge set, so a
// later Apply silently under-counting would break exactness. The engine
// must refuse all further batches instead.
func TestIncrementalShardedPoisonedAfterIngestFailure(t *testing.T) {
	g := randomGraph(31, true, true)
	fail := false
	inc, err := core.NewIncrementalShardedFrom(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 3},
		core.WorkerBuilder(func(spec core.WorkerSpec) (core.ShardWorker, error) {
			w, err := core.InProcessWorkers(spec)
			if err != nil {
				return nil, err
			}
			return failingIngestWorker{ShardWorker: w, fail: &fail}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	batch := []core.EdgeInsert{
		{Src: 0, Dst: 1, Vals: []graph.Value{1}},
		{Src: 1, Dst: 2, Vals: []graph.Value{2}},
		{Src: 2, Dst: 3, Vals: []graph.Value{1}},
	}
	if _, _, err := inc.Apply(batch); err != nil {
		t.Fatalf("healthy apply failed: %v", err)
	}
	fail = true
	if _, _, err := inc.Apply(batch); err == nil {
		t.Fatal("apply with a failing worker succeeded")
	}
	fail = false
	if _, _, err := inc.Apply(batch); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("poisoned engine accepted a batch: %v", err)
	}
}

// shardContribution exactly counts one shard's LW and R contributions for a
// GR by scanning the shard's edge ids on the coordinator graph.
func shardContribution(g *graph.Graph, part []int32, sample gr.GR) (lw, r int) {
	match := func(d gr.Descriptor, val func(int, int) graph.Value, n int) bool {
		for _, c := range d {
			if val(n, c.Attr) != c.Val {
				return false
			}
		}
		return true
	}
	for _, e32 := range part {
		e := int(e32)
		if match(sample.L, g.NodeValue, g.Src(e)) && match(sample.W, g.EdgeValue, e) {
			lw++
		}
		if match(sample.R, g.NodeValue, g.Dst(e)) {
			r++
		}
	}
	return lw, r
}

// findOffered reparses a traced GR key back into a GR via the schema-free
// key format. Keys are produced by gr.GR.Key; reconstructing through
// ParseGR would need labels, so instead re-enumerate the offered pool from
// a fresh unbounded capture mine and match keys.
func findOffered(t *testing.T, g *graph.Graph, opt core.Options, key string) gr.GR {
	t.Helper()
	pool := offeredPoolCache(t, g, opt)
	sample, ok := pool[key]
	if !ok {
		t.Fatalf("offered key %s not reproducible by an unbounded mine", key)
	}
	return sample
}

var poolCache = map[string]map[string]gr.GR{}

// offeredPoolCache enumerates every GR with support ≥ 1 once per graph by
// mining with the laxest thresholds and no generality filter, giving the
// key → GR mapping the invariant checks need.
func offeredPoolCache(t *testing.T, g *graph.Graph, opt core.Options) map[string]gr.GR {
	t.Helper()
	cacheKey := fmt.Sprintf("%p-%s", g, opt.Metric.Name)
	if m, ok := poolCache[cacheKey]; ok {
		return m
	}
	lax := opt
	lax.MinSupp = 1
	lax.MinScore = -1e18
	lax.K = 0
	lax.DynamicFloor = false
	lax.NoGeneralityFilter = true
	lax.IncludeTrivial = true
	res, err := core.Mine(g, lax)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]gr.GR, len(res.TopK))
	for _, s := range res.TopK {
		m[s.GR.Key()] = s.GR
	}
	poolCache[cacheKey] = m
	return m
}
