package core_test

import (
	"math/rand"
	"testing"

	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

// prefixGraph returns an independent copy of g holding only its first n
// edges — the batch-mine reference states the oracle compares against.
func prefixGraph(g *graph.Graph, n int) *graph.Graph {
	out := graph.MustNew(g.Schema(), g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		vals := append([]graph.Value(nil), g.NodeValues(v)...)
		if err := out.SetNodeValues(v, vals...); err != nil {
			panic(err)
		}
	}
	for e := 0; e < n; e++ {
		if _, err := out.AddEdge(g.Src(e), g.Dst(e), g.EdgeValues(e)...); err != nil {
			panic(err)
		}
	}
	return out
}

// insertsFor converts g's edges [from, to) into a batch.
func insertsFor(g *graph.Graph, from, to int) []core.EdgeInsert {
	batch := make([]core.EdgeInsert, 0, to-from)
	for e := from; e < to; e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		batch = append(batch, core.EdgeInsert{
			Src: g.Src(e), Dst: g.Dst(e),
			Vals: append([]graph.Value(nil), g.EdgeValues(e)...),
		})
	}
	return batch
}

// oracleThresholds picks a sensible minScore per metric (gain/PS scores are
// |E|-normalised and tiny; conviction/lift center on 1).
var oracleThresholds = map[string]float64{
	"nhp": 0.3, "conf": 0.3, "laplace": 0.3, "gain": 0,
	"piatetsky-shapiro": 0, "conviction": 1.0, "lift": 1.05,
}

// TestIncrementalOracle is the equivalence gate: stream random graphs
// through the incremental engine in random batch sizes and assert the
// maintained top-k equals a fresh batch mine after every batch — for every
// metric, both floor modes, with the reference mined at worker counts
// cycling through 1–8 (under -race this also exercises the parallel
// engine's shared floor and generality memo).
func TestIncrementalOracle(t *testing.T) {
	seeds := []int64{0, 1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		full := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		base := full.NumEdges() / 2
		r := rand.New(rand.NewSource(seed + 100))
		workerCycle := 0
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				for _, trivial := range []bool{false, true} {
					if trivial && m.Name != "conf" {
						continue // the Table II study mode; one metric suffices
					}
					opt := core.Options{
						MinSupp: 1, MinScore: oracleThresholds[m.Name], K: 10,
						DynamicFloor: dyn, Metric: m, IncludeTrivial: trivial,
					}
					inc, err := core.NewIncremental(prefixGraph(full, base), opt)
					if err != nil {
						t.Fatal(err)
					}
					label := m.Name
					if dyn {
						label += "-dynamic"
					}
					if trivial {
						label += "-trivial"
					}
					refOpt := inc.Options()
					seedRef, err := core.Mine(prefixGraph(full, base), refOpt)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, label+"-seed", inc.Result().TopK, seedRef.TopK)
					//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
					for cut := base; cut < full.NumEdges(); {
						next := cut + 1 + r.Intn(9)
						if next > full.NumEdges() {
							next = full.NumEdges()
						}
						res, _, err := inc.Apply(insertsFor(full, cut, next))
						if err != nil {
							t.Fatalf("%s: apply [%d,%d): %v", label, cut, next, err)
						}
						cut = next
						workerCycle++
						refOpt.Parallelism = workerCycle%8 + 1
						ref, err := core.Mine(prefixGraph(full, cut), refOpt)
						if err != nil {
							t.Fatal(err)
						}
						assertSameResults(t, label+"-stream", res.TopK, ref.TopK)
					}
				}
			}
		}
	}
}

// A structured network at a larger scale: the maintained result must track
// the batch miner across growing batches, and the scoped re-mine must
// actually skip unaffected subtrees (the point of the delta path).
func TestIncrementalOnSyntheticDBLP(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 1500
	cfg.Pairs = 2200
	full := datagen.DBLP(cfg)
	base := full.NumEdges() * 8 / 10

	opt := core.Options{MinSupp: 5, MinScore: 0.4, K: 20, DynamicFloor: true}
	inc, err := core.NewIncremental(prefixGraph(full, base), opt)
	if err != nil {
		t.Fatal(err)
	}
	skippedOnce := false
	//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
	for cut := base; cut < full.NumEdges(); {
		next := cut + 50
		if next > full.NumEdges() {
			next = full.NumEdges()
		}
		res, bs, err := inc.Apply(insertsFor(full, cut, next))
		if err != nil {
			t.Fatal(err)
		}
		cut = next
		if bs.FullRemines != 0 {
			t.Fatalf("nhp batch fell back to a full re-mine: %+v", bs)
		}
		if bs.SubtreesRemined < bs.SubtreesTotal {
			skippedOnce = true
		}
		ref, err := core.Mine(prefixGraph(full, cut), inc.Options())
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "dblp-incremental", res.TopK, ref.TopK)
	}
	if !skippedOnce {
		t.Error("scoped re-mine never skipped a subtree (delta path not exercised)")
	}
	if c := inc.Cumulative(); c.Batches == 0 || c.Edges != full.NumEdges()-base {
		t.Errorf("cumulative stats off: %+v", c)
	}
}

// A malformed edge anywhere in a batch must reject the whole batch before
// any state changes: same top-k, same edge count, engine still usable.
func TestIncrementalRejectsMalformedBatchAtomically(t *testing.T) {
	full := randomGraph(1, true, true)
	inc, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), core.Options{
		MinSupp: 1, MinScore: 0.3, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result()
	edges := before.TotalEdges
	bad := [][]core.EdgeInsert{
		{{Src: 0, Dst: 1, Vals: []graph.Value{1}}, {Src: -1, Dst: 0, Vals: []graph.Value{1}}},
		{{Src: 0, Dst: full.NumNodes() + 7, Vals: []graph.Value{1}}},
		{{Src: 0, Dst: 1, Vals: nil}},                    // missing edge attribute
		{{Src: 0, Dst: 1, Vals: []graph.Value{99}}},      // out of domain
		{{Src: 0, Dst: 1, Vals: []graph.Value{1, 1, 1}}}, // too many values
	}
	for i, batch := range bad {
		if _, _, err := inc.Apply(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if got := inc.Result(); got.TotalEdges != edges {
		t.Fatalf("rejected batches mutated the graph: %d edges, want %d", got.TotalEdges, edges)
	}
	assertSameResults(t, "post-reject", inc.Result().TopK, before.TopK)

	// And the engine still ingests a good batch afterwards.
	res, _, err := inc.Apply([]core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEdges != edges+1 {
		t.Fatalf("good batch after rejects: %d edges, want %d", res.TotalEdges, edges+1)
	}
}

// An empty batch is a no-op that still returns the current result.
func TestIncrementalEmptyBatch(t *testing.T) {
	g := randomGraph(2, true, false)
	inc, err := core.NewIncremental(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result().TopK
	res, bs, err := inc.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Edges != 0 {
		t.Errorf("empty batch reported %d edges", bs.Edges)
	}
	assertSameResults(t, "empty-batch", res.TopK, before)
}

// Edges from previously inactive nodes (no LArray/RArray row at build time)
// must flow through the store's append segment correctly. Nodes n-2, n-1
// start fully disconnected, then become source and destination.
func TestIncrementalActivatesNewNodes(t *testing.T) {
	schema, err := graph.NewSchema([]graph.Attribute{
		{Name: "A", Domain: 3, Homophily: true},
		{Name: "B", Domain: 2},
	}, []graph.Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	n := 12
	full := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		if err := full.SetNodeValues(v, graph.Value(1+r.Intn(3)), graph.Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	// Base edges avoid the last two nodes entirely.
	for e := 0; e < 25; e++ {
		if _, err := full.AddEdge(r.Intn(n-2), r.Intn(n-2), graph.Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	base := full.NumEdges()
	// Stream edges that activate nodes n-2 (source) and n-1 (destination).
	for e := 0; e < 12; e++ {
		if _, err := full.AddEdge(n-2, r.Intn(n), graph.Value(1+r.Intn(2))); err != nil {
			t.Fatal(err)
		}
		if _, err := full.AddEdge(r.Intn(n), n-1, graph.Value(1+r.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := core.NewIncremental(prefixGraph(full, base), core.Options{
		MinSupp: 1, MinScore: 0.2, K: 12, DynamicFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
	for cut := base; cut < full.NumEdges(); {
		next := cut + 5
		if next > full.NumEdges() {
			next = full.NumEdges()
		}
		res, _, err := inc.Apply(insertsFor(full, cut, next))
		if err != nil {
			t.Fatal(err)
		}
		cut = next
		ref, err := core.Mine(prefixGraph(full, cut), inc.Options())
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "new-nodes", res.TopK, ref.TopK)
	}
}

// The shared sharded-by-RHS generality memo must not change parallel
// dynamic-floor results; hammer it with high worker counts on one store.
func TestSharedGeneralityMemoParallel(t *testing.T) {
	g := randomGraph(5, true, true)
	st := store.Build(g)
	seq, err := core.MineStore(st, core.Options{
		MinSupp: 1, MinScore: 0.25, K: 8, DynamicFloor: true, ExactGenerality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		for _, workers := range []int{4, 8} {
			par, err := core.MineStore(st, core.Options{
				MinSupp: 1, MinScore: 0.25, K: 8, DynamicFloor: true, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "memo-parallel", par.TopK, seq.TopK)
		}
	}
}
