// Shard-aware incremental mining: maintain the exact global top-k while
// edge batches stream in, with every edge routed to the shard that owns it
// under the deterministic partitioning strategy.
//
// The engine composes the two maintenance arguments already in the tree:
//
//   - Per shard, it maintains the relaxed candidate pool the batch
//     coordinator's offer phase would produce (every GR whose shard support
//     reaches ⌈minSupp/shards⌉, with exact per-shard counts). Because the
//     per-shard pool is support-gated only — score thresholds are global-
//     side — maintenance is simpler than the single-store incremental
//     engine's: supports never decrease under insertions, so entries are
//     never dropped, and a GR can enter a shard's pool only when an
//     inserted edge matching its full descriptor pushes its shard support
//     over the threshold. That edge carries the GR's first-level subtree
//     key, so re-mining exactly the affected first-level subtrees of the
//     owning shard (remineAffectedSubtrees, the same scoped walk the
//     single-store engine uses) discovers every entrant. No DeltaSafe gate
//     is needed: the lift family's global-score movement is re-evaluated at
//     merge time from summed counts, so every metric takes the scoped path
//     and no batch ever falls back to a full re-mine.
//
//   - Across shards, every Apply ends with the coordinator merge of
//     shard.go over the maintained global pool: summed counts, global
//     condition (1), and the exact blocker merge for conditions (2)-(3).
//
// Exactness: after every Apply the result equals MineSharded on the grown
// graph, which equals a fresh single-store mine under Options(). The oracle
// tests assert both equalities per batch for every metric and floor mode.
package core

import (
	"fmt"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// IncrementalSharded maintains the top-k GRs of a growing network over a
// sharded edge set. It owns the graph passed to NewIncrementalSharded
// (edges are appended to it) and is not safe for concurrent use.
type IncrementalSharded struct {
	g      *graph.Graph
	opt    Options
	metric metrics.Metric
	plan   ShardPlan
	shards []*localShard
	// workers is the ShardWorker view of shards, for the shared offer and
	// merge machinery.
	workers []ShardWorker
	// pool is the maintained union of the per-shard relaxed pools: exact
	// per-shard counts for every GR some shard's support qualifies.
	pool map[string]*shardCand
	last *Result
	cum  IncStats
}

// NewIncrementalSharded partitions g's edges, builds one subset store per
// shard, seeds the per-shard candidate pools with one offer mine each, and
// merges them into the initial top-k. Options follow MineSharded: a dynamic
// floor forces ExactGenerality, and Options() returns the effective
// settings a batch mine must use to reproduce the maintained result.
func NewIncrementalSharded(g *graph.Graph, opt Options, so ShardOptions) (*IncrementalSharded, error) {
	opt, plan, shards, err := buildShardLayout(g, opt, so)
	if err != nil {
		return nil, err
	}
	inc := &IncrementalSharded{
		g:       g,
		opt:     opt,
		metric:  opt.Metric,
		plan:    plan,
		shards:  shards,
		workers: make([]ShardWorker, len(shards)),
		pool:    make(map[string]*shardCand),
	}
	for i, sh := range shards {
		inc.workers[i] = sh
	}

	start := time.Now()
	var stats Stats
	pools, shardStats, errs := offerAll(inc.workers)
	for i := range inc.shards {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: shard %d seed: %w", i, errs[i])
		}
		addStats(&stats, &shardStats[i])
		for _, cand := range pools[i] {
			inc.upsertShard(i, cand.GR, cand.Counts)
		}
	}
	inc.last = inc.assemble(&stats, time.Since(start))
	inc.cum.Tracked = len(inc.pool)
	return inc, nil
}

// Options returns the engine's effective (normalized) options.
func (inc *IncrementalSharded) Options() Options { return inc.opt }

// Plan returns the sharding layout; its Edges reflect the current per-shard
// edge counts, including every batch applied so far.
func (inc *IncrementalSharded) Plan() ShardPlan { return inc.plan }

// Result returns the current top-k (the result of the last Apply, or the
// seed mine). The returned value is shared; callers must not mutate it.
func (inc *IncrementalSharded) Result() *Result { return inc.last }

// Cumulative returns lifetime totals across all Apply calls.
func (inc *IncrementalSharded) Cumulative() IncStats { return inc.cum }

// Apply validates the whole batch, appends it to the owned graph, routes
// every edge to its owning shard, delta-maintains the per-shard pools, and
// re-merges the global top-k. Like Incremental.Apply, a malformed edge
// rejects the batch before any state changes.
func (inc *IncrementalSharded) Apply(edges []EdgeInsert) (*Result, IncStats, error) {
	start := time.Now()
	for i, e := range edges {
		if err := inc.g.CheckEdge(e.Src, e.Dst, e.Vals...); err != nil {
			return nil, IncStats{}, fmt.Errorf("core: batch edge %d: %w", i, err)
		}
	}
	owned := make([][]int32, len(inc.shards))
	for _, e := range edges {
		id, err := inc.g.AddEdge(e.Src, e.Dst, e.Vals...)
		if err != nil {
			// Unreachable after CheckEdge; kept as an invariant guard.
			return nil, IncStats{}, err
		}
		s, err := inc.g.ShardOf(inc.plan.Strategy, inc.plan.Shards, e.Src, e.Dst)
		if err != nil {
			return nil, IncStats{}, err
		}
		owned[s] = append(owned[s], int32(id))
	}

	bs := IncStats{Batches: 1, Edges: len(edges)}
	var stats Stats
	for s, ids := range owned {
		if len(ids) == 0 {
			continue
		}
		sh := inc.shards[s]
		newRows := sh.appendEdges(ids)
		inc.plan.Edges[s] = sh.NumEdges()
		bs.Recounted += inc.recountShard(s, newRows)
		remined, total := remineAffectedSubtrees(sh.st, shardOfferOpts(inc.opt, inc.plan.ShardMinSupp), newRows,
			func(g gr.GR, c metrics.Counts, score float64) { inc.upsertShard(s, g, c) }, &stats)
		bs.SubtreesRemined += remined
		bs.SubtreesTotal += total
	}
	inc.last = inc.assemble(&stats, time.Since(start))
	bs.Tracked = len(inc.pool)
	bs.Duration = inc.last.Stats.Duration
	inc.cum.add(bs)
	return inc.last, bs, nil
}

// recountShard delta-updates every pool entry's counts for shard s against
// the shard's new store rows. Entries are never dropped: per-shard pool
// membership is support-gated and supports only grow. Entries without
// known counts on shard s are skipped — there is nothing to delta against,
// and the merge gap-fills them exactly if their support bound survives.
// Returns the number of entries whose shard counts changed.
func (inc *IncrementalSharded) recountShard(s int, newRows []int32) (recounted int) {
	sh := inc.shards[s]
	totalE := sh.NumEdges()
	needHom := inc.metric.NeedsHom
	needR := inc.metric.NeedsR
	for _, t := range inc.pool {
		if !t.have[s] {
			continue
		}
		c := &t.per[s]
		changed := false
		for _, e := range newRows {
			if matchOn(sh.st.LVal, e, t.gr.L) && matchOn(sh.st.EVal, e, t.gr.W) {
				c.LW++
				changed = true
				if matchOn(sh.st.RVal, e, t.gr.R) {
					c.LWR++
				} else if needHom && t.betaMask != 0 && matchHomOn(sh.st, e, t.gr.L, t.betaMask) {
					c.Hom++
				}
			}
			if needR && matchOn(sh.st.RVal, e, t.gr.R) {
				c.R++
				changed = true
			}
		}
		c.E = totalE
		if changed {
			recounted++
		}
	}
	return recounted
}

// upsertShard records (or refreshes) one shard's exact counts for a GR.
// Other shards' counts are NOT gap-filled here: the merge fills them lazily
// and only for candidates whose support bound survives (see
// mergeShardPool), which keeps pool maintenance linear in the offers. The
// invariant the bound needs — have[s] false ⟹ shard s's support is below
// ShardMinSupp — holds throughout: the batch that pushes a GR's support
// over the threshold on shard s matches the GR's full descriptor there,
// so that shard's scoped re-mine re-captures it and lands back here.
func (inc *IncrementalSharded) upsertShard(s int, g gr.GR, c metrics.Counts) {
	key := g.Key()
	t := inc.pool[key]
	if t == nil {
		t = &shardCand{
			gr:   g,
			per:  make([]metrics.Counts, len(inc.shards)),
			have: make([]bool, len(inc.shards)),
		}
		if inc.metric.NeedsHom {
			t.betaMask = betaMaskOf(inc.g.Schema(), g.L, g.R)
		}
		inc.pool[key] = t
	}
	t.per[s] = c
	t.have[s] = true
}

// assemble runs the coordinator merge over the maintained pool.
func (inc *IncrementalSharded) assemble(stats *Stats, d time.Duration) *Result {
	top := mergeShardPool(inc.opt, inc.plan.ShardMinSupp, inc.g.NumEdges(), inc.workers, inc.pool, stats)
	stats.Duration = d
	return &Result{TopK: top, Stats: *stats, Options: inc.opt, TotalEdges: inc.g.NumEdges()}
}
