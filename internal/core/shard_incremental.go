// Shard-aware incremental mining: maintain the exact global top-k while
// edge batches stream in, with every edge routed to the shard that owns it
// under the deterministic partitioning strategy — and with all per-shard
// pool maintenance on the worker's side of the ShardWorker boundary, so the
// engine drives remote shardd workers exactly like in-process ones.
//
// The engine composes the two maintenance arguments already in the tree:
//
//   - Per shard, the worker maintains the relaxed candidate pool its seed
//     offer produced (every GR whose shard support reaches ⌈minSupp/shards⌉,
//     with exact per-shard counts). Because the per-shard pool is
//     support-gated only — score thresholds are global-side — maintenance
//     is simpler than the single-store incremental engine's: supports never
//     decrease under insertions, so entries are never dropped, and a GR can
//     enter a shard's pool only when an inserted edge matching its full
//     descriptor pushes its shard support over the threshold. That edge
//     carries the GR's first-level subtree key, so re-mining exactly the
//     affected first-level subtrees of the owning shard (the same scoped
//     walk the single-store engine uses, now run inside WorkerState.Ingest)
//     discovers every entrant. No DeltaSafe gate is needed: the lift
//     family's global-score movement is re-evaluated at merge time from
//     summed counts, so every metric takes the scoped path and no batch
//     ever falls back to a full re-mine. The worker replies with the pool
//     deltas — every entry the batch touched — and the coordinator's union
//     pool mirrors the worker pools without ever reading shard-local state.
//
//   - Across shards, every Apply ends with the coordinator merge of
//     shard.go over the maintained global pool: summed counts, global
//     condition (1) with the sketch-capped round-2 bound, and the exact
//     blocker merge for conditions (2)-(3). The coordinator keeps the
//     per-shard coarse count sketches fresh itself while routing (it sees
//     every edge), so no extra round trip is spent on them.
//
// The maintained per-shard pools deliberately omit the batch protocol's
// OfferBound prune: a bound derived from a past edge set can rise as other
// shards grow, which would demand re-widening pruned subtrees. The
// merge-side sketch caps — always computed from the current sketches, and
// valid as pure upper bounds regardless of how the pools were built —
// recover the round-2 saving for the incremental path too.
//
// Exactness: after every Apply the result equals MineSharded on the grown
// graph, which equals a fresh single-store mine under Options(). The oracle
// tests assert both equalities per batch for every metric and floor mode.
package core

import (
	"fmt"
	"sync"
	"time"

	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// IncrementalSharded maintains the top-k GRs of a growing network over a
// sharded edge set. It owns the graph passed to NewIncrementalSharded
// (edges are appended to it) and is not safe for concurrent use.
type IncrementalSharded struct {
	g        *graph.Graph
	opt      Options
	plan     ShardPlan
	workers  []ShardWorker
	sketches []ShardSketch
	// pool is the maintained union of the per-shard relaxed pools: exact
	// per-shard counts for every GR some shard's support qualifies,
	// assembled purely from worker offers and ingest deltas.
	pool map[string]*shardCand
	last *Result
	cum  IncStats
	// broken poisons the engine after a failure past the point of no
	// return: once the owned graph has grown, a worker that failed to
	// ingest (a dropped remote connection, a restarted daemon) holds less
	// than its slice, and any later merge would silently under-count. All
	// further Applies are refused instead.
	broken error
}

// NewIncrementalSharded partitions g's edges, builds one in-process worker
// per shard, seeds the per-shard candidate pools with one offer round, and
// merges them into the initial top-k. Options follow MineSharded: a dynamic
// floor forces ExactGenerality, and Options() returns the effective
// settings a batch mine must use to reproduce the maintained result.
func NewIncrementalSharded(g *graph.Graph, opt Options, so ShardOptions) (*IncrementalSharded, error) {
	return NewIncrementalShardedFrom(g, opt, so, WorkerBuilder(InProcessWorkers))
}

// NewIncrementalShardedFrom is NewIncrementalSharded with an explicit
// worker builder (internal/rpc.Builder places every shard on a shardd
// daemon; internal/rpc.Fleet adds multiplexed placement and failover —
// when the builder is a RebuildingBuilder, a lost worker is rebuilt and
// its routed-batch log replayed mid-stream instead of poisoning the
// engine). Close releases the workers.
func NewIncrementalShardedFrom(g *graph.Graph, opt Options, so ShardOptions, build FleetBuilder) (*IncrementalSharded, error) {
	opt, plan, sketches, workers, err := buildShardDeployment(g, opt, so, build)
	if err != nil {
		return nil, err
	}
	inc := &IncrementalSharded{
		g:        g,
		opt:      opt,
		plan:     plan,
		workers:  workers,
		sketches: sketches,
		pool:     make(map[string]*shardCand),
	}

	start := time.Now()
	var stats Stats
	// A nil bound asks each worker for its plain pigeonhole pool AND seeds
	// the worker-side maintained pool Ingest delta-updates from now on.
	pools, shardStats, errs := offerAll(inc.workers, nil)
	for i := range inc.workers {
		if errs[i] != nil {
			inc.Close()
			return nil, fmt.Errorf("core: shard %d seed: %w", i, errs[i])
		}
		addStats(&stats, &shardStats[i])
		for _, cand := range pools[i] {
			inc.upsertShard(i, cand)
		}
	}
	inc.last, err = inc.assemble(&stats, time.Since(start))
	if err != nil {
		inc.Close()
		return nil, err
	}
	inc.cum.Tracked = len(inc.pool)
	return inc, nil
}

// Options returns the engine's effective (normalized) options.
func (inc *IncrementalSharded) Options() Options { return inc.opt }

// Plan returns the sharding layout; its Edges reflect the current per-shard
// edge counts, including every batch applied so far.
func (inc *IncrementalSharded) Plan() ShardPlan { return inc.plan }

// Result returns the current top-k (the result of the last Apply, or the
// seed mine). The returned value is shared; callers must not mutate it.
func (inc *IncrementalSharded) Result() *Result { return inc.last }

// Cumulative returns lifetime totals across all Apply calls.
func (inc *IncrementalSharded) Cumulative() IncStats { return inc.cum }

// Close releases the workers (remote connections, for a remote deployment).
func (inc *IncrementalSharded) Close() error { return closeWorkers(inc.workers) }

// FleetHealth reports the per-shard failover record: liveness, retries,
// replacements, and replayed batches. Deployments whose builder cannot
// rebuild replacements report every shard live with zero counters.
func (inc *IncrementalSharded) FleetHealth() []WorkerHealth { return fleetHealth(inc.workers) }

// Apply ingests one batch of edge insertions; it is ApplyBatch with no
// deletions.
func (inc *IncrementalSharded) Apply(edges []EdgeInsert) (*Result, IncStats, error) {
	return inc.ApplyBatch(Batch{Ins: edges})
}

// ApplyBatch validates the whole mixed batch, applies it to the owned graph,
// routes every insertion and retraction to its owning shard (the routing
// strategies are endpoint-pure, so a retraction lands on the shard holding
// the edge), hands each worker its slice to ingest (worker-side pool
// maintenance, including below-threshold demotions), applies the returned
// deltas to the union pool, and re-merges the global top-k. Like
// Incremental.ApplyBatch, a malformed insert or an unmatched retraction
// rejects the batch before any state changes; retractions resolve against
// the pre-batch edge set. A failure *after* the graph has changed — a
// worker that could not ingest its slice, which only a remote transport can
// produce — permanently poisons the engine: the coordinator and that worker
// now disagree on the edge set, so every further Apply returns the original
// error instead of a silently under-counted result.
func (inc *IncrementalSharded) ApplyBatch(b Batch) (*Result, IncStats, error) {
	if inc.broken != nil {
		return nil, IncStats{}, fmt.Errorf("core: sharded incremental engine unusable after earlier failure: %w", inc.broken)
	}
	start := time.Now()
	for i, e := range b.Ins {
		if err := inc.g.CheckEdge(e.Src, e.Dst, e.Vals...); err != nil {
			return nil, IncStats{}, fmt.Errorf("core: batch edge %d: %w", i, err)
		}
	}
	delIDs, err := resolveGraphDeletes(inc.g, b.Del)
	if err != nil {
		return nil, IncStats{}, err
	}
	owned := make([]Batch, len(inc.workers))
	for _, e := range b.Ins {
		if _, err := inc.g.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
			// Unreachable after CheckEdge; kept as an invariant guard.
			return nil, IncStats{}, err
		}
		s, err := inc.g.ShardOf(inc.plan.Strategy, inc.plan.Shards, e.Src, e.Dst)
		if err != nil {
			return nil, IncStats{}, err
		}
		owned[s].Ins = append(owned[s].Ins, e)
		// The coordinator routes every edge, so it keeps the coarse count
		// sketches fresh without a round trip.
		inc.sketches[s].addEdge(inc.g.NodeValues(e.Src), inc.g.NodeValues(e.Dst), e.Vals)
	}
	for i, id := range delIDs {
		src, dst := inc.g.Src(id), inc.g.Dst(id)
		s, err := inc.g.ShardOf(inc.plan.Strategy, inc.plan.Shards, src, dst)
		if err != nil {
			return nil, IncStats{}, err
		}
		if err := inc.g.RemoveEdge(id); err != nil {
			return nil, IncStats{}, err
		}
		owned[s].Del = append(owned[s].Del, b.Del[i])
		// Tombstoned values stay readable; the sketch keeps matching the
		// shard's surviving edges.
		inc.sketches[s].removeEdge(inc.g.NodeValues(src), inc.g.NodeValues(dst), inc.g.EdgeValues(id))
	}

	bs := IncStats{Batches: 1, Edges: len(b.Ins), Deleted: len(b.Del)}
	replies := make([]IngestReply, len(inc.workers))
	ingErrs := make([]error, len(inc.workers))
	var wg sync.WaitGroup
	for s := range inc.workers {
		if len(owned[s].Ins) == 0 && len(owned[s].Del) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			replies[s], ingErrs[s] = inc.workers[s].Ingest(owned[s])
		}(s)
	}
	wg.Wait()
	var stats Stats
	for s := range inc.workers {
		if len(owned[s].Ins) == 0 && len(owned[s].Del) == 0 {
			continue
		}
		if ingErrs[s] != nil {
			inc.broken = fmt.Errorf("core: shard %d ingest: %w", s, ingErrs[s])
			return nil, IncStats{}, inc.broken
		}
		rep := replies[s]
		inc.plan.Edges[s] = rep.NumEdges
		bs.Recounted += rep.Recounted
		bs.SubtreesRemined += rep.SubtreesRemined
		bs.SubtreesTotal += rep.SubtreesTotal
		addStats(&stats, &rep.Stats)
		for _, cand := range rep.Deltas {
			inc.upsertShard(s, cand)
		}
	}
	inc.last, err = inc.assemble(&stats, time.Since(start))
	if err != nil {
		// The batch is already ingested everywhere; only the merge's
		// round-2 fetch can fail here, and retrying it needs worker state
		// this engine can no longer trust.
		inc.broken = err
		return nil, IncStats{}, err
	}
	bs.Tracked = len(inc.pool)
	bs.Duration = inc.last.Stats.Duration
	inc.cum.add(bs)
	return inc.last, bs, nil
}

// resolveGraphDeletes maps each retraction to a distinct live graph edge
// matching its endpoints and edge values exactly (the shared
// resolveRetractions loop over graph edges); results index-align with dels.
// An unmatched retraction is an error (the caller rejects the batch
// unmutated).
func resolveGraphDeletes(g *graph.Graph, dels []EdgeDelete) ([]int, error) {
	return resolveRetractions(dels, len(g.Schema().Edge), g.NumEdges(), func(e int) (int, int, bool) {
		if !g.EdgeAlive(e) {
			return 0, 0, false
		}
		return g.Src(e), g.Dst(e), true
	}, g.EdgeValue)
}

// upsertShard records (or refreshes) one shard's exact counts for a GR.
// Other shards' counts are NOT fetched here: the merge requests them lazily
// and only for candidates whose support bound survives (see
// mergeShardPool), which keeps pool maintenance linear in the deltas. The
// invariant the bound needs — have[s] false ⟹ shard s's support is below
// ShardMinSupp — holds throughout: the batch that pushes a GR's support
// over the threshold on shard s matches the GR's full descriptor there, so
// that shard's scoped re-mine re-captures it and the delta lands back here;
// and a deletion that demotes it below the threshold arrives as a delta
// with final counts under ShardMinSupp, flipping have[s] back to false
// (the worker stopped tracking it, so its future counts are unknown here).
// An entry no worker tracks leaves the pool entirely — n·(t−1) < minSupp,
// so it cannot qualify globally.
func (inc *IncrementalSharded) upsertShard(s int, cand ShardCandidate) {
	key := cand.GR.Key()
	t := inc.pool[key]
	if cand.Counts.LWR < inc.plan.ShardMinSupp {
		if t == nil {
			return
		}
		t.per[s] = metrics.Counts{}
		t.have[s] = false
		for _, h := range t.have {
			if h {
				return
			}
		}
		delete(inc.pool, key)
		return
	}
	if t == nil {
		t = &shardCand{
			gr:   cand.GR,
			per:  make([]metrics.Counts, len(inc.workers)),
			have: make([]bool, len(inc.workers)),
		}
		inc.pool[key] = t
	}
	t.per[s] = cand.Counts
	t.have[s] = true
}

// assemble runs the coordinator merge (with its round-2 exact-count
// fetches) over the maintained pool.
func (inc *IncrementalSharded) assemble(stats *Stats, d time.Duration) (*Result, error) {
	top, err := mergeShardPool(inc.opt, inc.plan.ShardMinSupp, inc.g.NumLiveEdges(), inc.workers, inc.sketches, inc.pool, inc.g.Schema(), stats)
	if err != nil {
		return nil, err
	}
	stats.Duration = d
	return &Result{TopK: top, Stats: *stats, Options: inc.opt, TotalEdges: inc.g.NumLiveEdges()}, nil
}
