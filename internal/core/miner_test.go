package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// assertSameResults compares two ranked result lists exactly (GR identity,
// support, score, confidence).
func assertSameResults(t *testing.T, label string, got, want []gr.Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), keys(got), keys(want))
	}
	for i := range want {
		if got[i].GR.Key() != want[i].GR.Key() {
			t.Fatalf("%s: rank %d: got %s want %s", label, i, got[i].GR.Key(), want[i].GR.Key())
		}
		if got[i].Supp != want[i].Supp || got[i].Score != want[i].Score || got[i].Conf != want[i].Conf {
			t.Fatalf("%s: rank %d (%s): got supp=%d score=%v conf=%v, want supp=%d score=%v conf=%v",
				label, i, got[i].GR.Key(),
				got[i].Supp, got[i].Score, got[i].Conf,
				want[i].Supp, want[i].Score, want[i].Conf)
		}
	}
}

func keys(rs []gr.Scored) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.GR.Key()
	}
	return out
}

func TestMineToyMatchesOracle(t *testing.T) {
	g := dataset.ToyDating()
	for _, minScore := range []float64{0, 0.3, 0.5, 0.8} {
		for _, minSupp := range []int{1, 2, 4} {
			opt := core.Options{MinSupp: minSupp, MinScore: minScore}
			res, err := core.Mine(g, opt)
			if err != nil {
				t.Fatalf("Mine: %v", err)
			}
			want, err := baseline.Oracle(g, baseline.OracleOptions{MinSupp: minSupp, MinScore: minScore})
			if err != nil {
				t.Fatalf("Oracle: %v", err)
			}
			assertSameResults(t, "toy", res.TopK, want)
		}
	}
}

// The paper's flagship example: with EDU homophilous, GR4 = (SEX:F,
// EDU:Grad) -> (EDU:College)-style preferences must surface with nhp 100%.
// (The most general form drops SEX:M from the RHS of the paper's GR4; the
// generality filter keeps that one.)
func TestMineToyFindsGR4Pattern(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.TopK {
		lv, okL := s.GR.L.Get(dataset.ToyEdu)
		rv, okR := s.GR.R.Get(dataset.ToyEdu)
		if okL && okR && lv == dataset.EduGrad && rv == dataset.EduCollege && s.Score == 1.0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no Grad->College nhp=1.0 GR in results: %v", keys(res.TopK))
	}
}

func TestMineNeverReportsTrivial(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.TopK {
		if s.GR.Trivial(g.Schema()) {
			t.Errorf("trivial GR reported: %s", s.GR.Format(g.Schema()))
		}
	}
	if res.Stats.TrivialSeen == 0 {
		t.Error("search never traversed a trivial partition; homophily chains unexplored")
	}
}

// randomGraph builds a reproducible small attributed graph.
func randomGraph(seed int64, homA, homB bool) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: homA},
			{Name: "B", Domain: 2, Homophily: homB},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		panic(err)
	}
	n := 6 + r.Intn(10)
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		// Allow null values to exercise the null-skipping path.
		if err := g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(3))); err != nil {
			panic(err)
		}
	}
	m := 10 + r.Intn(40)
	for e := 0; e < m; e++ {
		if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(r.Intn(3))); err != nil {
			panic(err)
		}
	}
	return g
}

// GRMiner with a static floor must reproduce the brute-force Definition 5
// evaluation exactly, across random graphs, homophily settings, metrics and
// thresholds. This is the central correctness test of the reproduction.
func TestMineMatchesOracleRandomized(t *testing.T) {
	configs := []struct {
		minSupp  int
		minScore float64
		k        int
	}{
		{1, 0, 0},
		{1, 0.4, 0},
		{2, 0.5, 0},
		{3, 0.25, 7},
		{1, 0.6, 3},
	}
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 == 0)
		for _, cfg := range configs {
			opt := core.Options{MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k}
			res, err := core.Mine(g, opt)
			if err != nil {
				t.Fatalf("seed %d: Mine: %v", seed, err)
			}
			want, err := baseline.Oracle(g, baseline.OracleOptions{
				MinSupp: cfg.minSupp, MinScore: cfg.minScore, K: cfg.k,
			})
			if err != nil {
				t.Fatalf("seed %d: Oracle: %v", seed, err)
			}
			assertSameResults(t, "randomized", res.TopK, want)
		}
	}
}

// Same comparison without the generality filter: every threshold-satisfying
// GR competes directly.
func TestMineMatchesOracleNoGenerality(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, true, false)
		res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.3, NoGeneralityFilter: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.Oracle(g, baseline.OracleOptions{
			MinSupp: 2, MinScore: 0.3, NoGeneralityFilter: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "no-generality", res.TopK, want)
	}
}

// Alternative metrics (Section VII): anti-monotone ones prune, the others
// fall back to support-only pruning; both must match the oracle.
func TestMineAlternativeMetricsMatchOracle(t *testing.T) {
	ms := []metrics.Metric{
		metrics.ConfMetric,
		metrics.LaplaceMetric,
		metrics.GainMetric,
		metrics.LiftMetric,
		metrics.ConvictionMetric,
		metrics.PSMetric,
	}
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed, seed%2 == 0, true)
		for _, m := range ms {
			threshold := 0.2
			if m.Name == "piatetsky-shapiro" || m.Name == "gain" {
				threshold = 0.0 // these live near zero
			}
			res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: threshold, Metric: m})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			want, err := baseline.Oracle(g, baseline.OracleOptions{
				MinSupp: 2, MinScore: threshold, Metric: m,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, m.Name, res.TopK, want)
		}
	}
}

// GRMiner(k) with a huge k never upgrades the floor, so it must agree with
// plain GRMiner exactly.
func TestDynamicFloorLargeKEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, true, true)
		static, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		dynamic, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 1 << 20, DynamicFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "large-k", dynamic.TopK, static.TopK)
	}
}

// GRMiner(k) with small k and ExactGenerality restores exact Definition 5
// semantics: it must match the static-floor miner on every seed. (Plain
// dynamic-floor pruning admits the corner case documented in DESIGN.md,
// where a pruned generalisation fails to block a specialisation; seed-level
// randomized runs do hit it, which is why ExactGenerality exists.)
func TestDynamicFloorSmallKExact(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		static, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		dynamic, err := core.Mine(g, core.Options{
			MinSupp: 1, MinScore: 0.3, K: 4,
			DynamicFloor: true, ExactGenerality: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "small-k", dynamic.TopK, static.TopK)
		if dynamic.Stats.Examined > static.Stats.Examined {
			t.Errorf("seed %d: dynamic floor examined more GRs (%d) than static (%d)",
				seed, dynamic.Stats.Examined, static.Stats.Examined)
		}
	}
}

// Plain (paper-faithful) GRMiner(k): even when the generality corner case
// fires, every returned GR must satisfy condition (1) exactly (recomputed by
// full scans), be non-trivial, be correctly ranked, and fit within k.
func TestDynamicFloorSmallKSound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		const k = 4
		res, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: k, DynamicFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TopK) > k {
			t.Fatalf("seed %d: %d results for k=%d", seed, len(res.TopK), k)
		}
		for i, s := range res.TopK {
			if s.GR.Trivial(g.Schema()) {
				t.Errorf("seed %d: trivial GR returned", seed)
			}
			c := metrics.Eval(g, s.GR)
			if c.LWR != s.Supp || metrics.Nhp(c) != s.Score {
				t.Errorf("seed %d: reported supp/score (%d, %v) disagree with rescan (%d, %v)",
					seed, s.Supp, s.Score, c.LWR, metrics.Nhp(c))
			}
			if s.Score < 0.3 || s.Supp < 1 {
				t.Errorf("seed %d: result violates thresholds: %+v", seed, s)
			}
			if i > 0 && gr.Less(s, res.TopK[i-1]) {
				t.Errorf("seed %d: rank order violated at %d", seed, i)
			}
		}
	}
}

// IncludeTrivial with the nhp metric (trivial GRs score by confidence since
// their β is empty) must still match the oracle exactly.
func TestMineIncludeTrivialMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed, true, seed%2 == 0)
		res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.3, IncludeTrivial: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.Oracle(g, baseline.OracleOptions{
			MinSupp: 2, MinScore: 0.3, IncludeTrivial: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "include-trivial-nhp", res.TopK, want)
	}
}

func TestDescriptorCaps(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0, MaxL: 1, MaxW: 0, MaxR: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Fatal("caps eliminated all results")
	}
	for _, s := range res.TopK {
		if len(s.GR.L) > 1 || len(s.GR.R) > 1 {
			t.Errorf("cap violated: %s", s.GR.Key())
		}
	}
	want, err := baseline.Oracle(g, baseline.OracleOptions{MinSupp: 1, MinScore: 0, MaxL: 1, MaxR: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "caps", res.TopK, want)
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	schema, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2, Homophily: true}}, nil)
	empty := graph.MustNew(schema, 0)
	res, err := core.Mine(empty, core.Options{MinSupp: 1})
	if err != nil {
		t.Fatalf("core.Mine(empty): %v", err)
	}
	if len(res.TopK) != 0 {
		t.Errorf("empty graph produced GRs: %v", keys(res.TopK))
	}

	// All-null attributes: partitions exist but no descriptor can form.
	g := graph.MustNew(schema, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	res, err = core.Mine(g, core.Options{MinSupp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 0 {
		t.Errorf("all-null graph produced GRs: %v", keys(res.TopK))
	}
}

func TestOptionValidation(t *testing.T) {
	g := dataset.ToyDating()
	if _, err := core.Mine(g, core.Options{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := core.Mine(g, core.Options{DynamicFloor: true}); err == nil {
		t.Error("DynamicFloor without K accepted")
	}
	// MinSupp below 1 is clamped, not an error.
	res, err := core.Mine(g, core.Options{MinSupp: -5, MinScore: 0.99})
	if err != nil {
		t.Fatalf("clamped MinSupp errored: %v", err)
	}
	if res.Options.MinSupp != 1 {
		t.Errorf("MinSupp normalized to %d, want 1", res.Options.MinSupp)
	}
}

func TestWideSchemaRejected(t *testing.T) {
	attrs := make([]graph.Attribute, 65)
	for i := range attrs {
		attrs[i] = graph.Attribute{Name: fmt.Sprintf("A%d", i), Domain: 2, Homophily: true}
	}
	schema, err := graph.NewSchema(attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 2)
	if _, err := core.Mine(g, core.Options{MinSupp: 1}); err == nil {
		t.Error("65-node-attribute schema accepted; betaMask would overflow")
	}
}

func TestStatsAccounting(t *testing.T) {
	g := dataset.ToyDating()
	res, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Examined == 0 || st.PartitionCalls == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
	if st.Candidates < int64(len(res.TopK)) {
		t.Errorf("candidates %d < results %d", st.Candidates, len(res.TopK))
	}
	if st.Duration <= 0 {
		t.Error("duration not recorded")
	}

	// A higher support threshold must not examine more GRs.
	strict, err := core.Mine(g, core.Options{MinSupp: 10, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Stats.Examined > st.Examined {
		t.Errorf("minSupp=10 examined %d > minSupp=2 examined %d",
			strict.Stats.Examined, st.Examined)
	}
}

// Theorem 4(2): no non-trivial GR below both thresholds is ever examined...
// more precisely, every *recursed* GR meets minSupp, and for anti-monotone
// metrics subtrees below the floor are cut. We verify the observable
// consequence: tightening minNhp strictly reduces examined GRs on a graph
// with homophily structure.
func TestScorePruningReducesWork(t *testing.T) {
	g := dataset.ToyDating()
	loose, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.Examined >= loose.Stats.Examined {
		t.Errorf("minNhp=0.9 examined %d, minNhp=0 examined %d; pruning ineffective",
			tight.Stats.Examined, loose.Stats.Examined)
	}
	if tight.Stats.PrunedScore == 0 {
		t.Error("no score-based pruning happened at minNhp=0.9")
	}
}

// The miner must be deterministic: identical inputs give identical outputs
// and stats (modulo duration).
func TestDeterminism(t *testing.T) {
	g := randomGraph(7, true, false)
	a, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 10, DynamicFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.3, K: 10, DynamicFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "determinism", a.TopK, b.TopK)
	a.Stats.Duration, b.Stats.Duration = 0, 0
	if a.Stats != b.Stats {
		t.Errorf("stats differ across identical runs: %+v vs %+v", a.Stats, b.Stats)
	}
}
