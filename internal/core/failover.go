package core

import (
	"errors"
	"fmt"
	"sync"

	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// workerLost reports whether err marks permanent loss of a worker's state.
// The transport layer (internal/rpc) tags its failures with a
// WorkerLost() bool method; the anonymous interface keeps core free of an
// rpc import (rpc imports core, never the reverse). In-band operation
// errors — a rejected batch, a bad spec — do not carry the tag: the worker
// is alive and its state intact, so failover must not engage.
func workerLost(err error) bool {
	var lost interface{ WorkerLost() bool }
	return errors.As(err, &lost) && lost.WorkerLost()
}

// workerAddr names the daemon hosting a worker, for health reporting.
func workerAddr(w ShardWorker) string {
	if a, ok := w.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return ""
}

// WorkerHealth is one shard's failover record, reported by FleetHealth on
// the sharded engines and surfaced in grminerd's GET /v1/status.
type WorkerHealth struct {
	// Shard is the shard index; Addr the daemon address hosting it ("" for
	// an in-process worker).
	Shard int
	Addr  string
	// Live is false only when the shard is down with no replacement — the
	// engine is broken and every subsequent call will fail.
	Live bool
	// Recovering is true while a replacement is being rebuilt and replayed
	// for this shard; Live still holds the pre-loss value until the
	// recovery resolves.
	Recovering bool
	// Retries counts operations re-issued after a loss, Replacements
	// successful worker rebuilds, and ReplayedBatches the routed batches
	// replayed into replacements.
	Retries         int64
	Replacements    int64
	ReplayedBatches int64
	// CheckpointEpoch counts checkpoints taken (each truncates the replay
	// log); LogSuffixLen is the current log length — the batches a recovery
	// right now would replay, at most the checkpoint interval once the
	// first checkpoint has landed.
	CheckpointEpoch int64
	LogSuffixLen    int
	// LastError is the most recent worker-loss cause ("" if none ever).
	LastError string
}

// supervisor wraps one shard's ShardWorker with the failover state
// machine. It keeps the shard's self-contained WorkerSpec, the latest
// checkpoint blob, and the routed batches acknowledged since that
// checkpoint; when an operation fails with worker loss it places a
// replacement through the RebuildingBuilder, reproduces the lost state
// (install checkpoint + replay the log suffix, or seed + full replay if no
// checkpoint exists), re-issues the failed operation once, and the run
// continues as if nothing happened.
//
// Replay is exact, not approximate:
//
//   - the checkpoint blob is a faithful serialization of the worker's full
//     shard state (graph edge log with tombstones, exact store arrays,
//     intern dictionary, maintained pool), so a restored worker is
//     bit-identical to the one that wrote the blob;
//   - without a blob, the spec rebuilds the shard store bit-for-bit (the
//     partitioner is deterministic and insertion-stable, and the spec
//     carries the shard's own edges) and the maintained pool is a pure
//     function of the store (re-seeded by Offer(nil) exactly as at
//     construction);
//   - batches apply atomically (validated wholesale before any mutation),
//     so a batch in flight at the moment of loss was either applied to
//     state that no longer exists or never applied — both cases reduce to
//     "not applied", and re-issuing it after replay yields the exact
//     pre-loss state plus the batch.
//
// Every interval acknowledged batches the supervisor pulls a fresh blob
// and drops the log prefix it covers, so the log — and with it recovery
// latency and coordinator memory — is bounded by the interval instead of
// the stream length (DESIGN.md §9).
//
// One recovery is attempted per failed operation: Rebuild already retries
// transient dial failures with capped backoff and falls through standbys
// and multiplexed peers, so a second loss on the freshly replayed worker
// means the fleet is genuinely unable to host the shard — that error
// escapes to the caller (and poisons an incremental engine, exactly as a
// loss with no builder support would).
type supervisor struct {
	spec     WorkerSpec
	rb       RebuildingBuilder
	interval int // checkpoint every N acked batches; ≤ 0 disables

	mu     sync.Mutex
	inner  ShardWorker
	seeded bool    // Offer(nil) ran; replacements must re-seed the pool
	chk    []byte  // latest checkpoint blob (nil until one is taken)
	log    []Batch // acked routed batches since the checkpoint, in order
	health WorkerHealth
}

// newSupervisor wraps a freshly built worker. The coordinator serializes
// operations per worker (the ShardWorker contract), so the mutex only
// guards against FleetHealth readers — including during a recovery, which
// deliberately runs rebuild and replay outside the lock so health
// snapshots (and the /v1/status endpoint built on them) never stall behind
// a multi-second rebuild.
func newSupervisor(spec WorkerSpec, rb RebuildingBuilder, w ShardWorker, interval int) *supervisor {
	return &supervisor{
		spec:     spec,
		rb:       rb,
		interval: interval,
		inner:    w,
		health:   WorkerHealth{Shard: spec.Index, Addr: workerAddr(w), Live: true},
	}
}

func (s *supervisor) worker() ShardWorker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

// NumEdges reports the inner worker's view; it is local bookkeeping and
// never triggers failover.
func (s *supervisor) NumEdges() int { return s.worker().NumEdges() }

// Offer runs the round-1 offer mine, recovering once on worker loss. A
// successful nil-bound offer (the incremental seed) is recorded so
// replacements re-seed their maintained pools.
func (s *supervisor) Offer(bound *OfferBound) ([]ShardCandidate, Stats, error) {
	offers, stats, err := s.worker().Offer(bound)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err, bound == nil); rerr != nil {
			return nil, Stats{}, rerr
		}
		offers, stats, err = s.worker().Offer(bound)
	}
	if err == nil && bound == nil {
		s.mu.Lock()
		s.seeded = true
		s.mu.Unlock()
	}
	return offers, stats, err
}

// Counts answers the batched round-2 query, recovering once on worker loss.
func (s *supervisor) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	counts, err := s.worker().Counts(grs)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err, false); rerr != nil {
			return nil, rerr
		}
		counts, err = s.worker().Counts(grs)
	}
	return counts, err
}

// Ingest applies a routed batch, recovering once on worker loss. The batch
// joins the replay log only after the worker acknowledged it; every
// interval acked batches the worker is checkpointed and the log truncated
// to empty.
func (s *supervisor) Ingest(batch Batch) (IngestReply, error) {
	rep, err := s.worker().Ingest(batch)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err, false); rerr != nil {
			return IngestReply{}, rerr
		}
		rep, err = s.worker().Ingest(batch)
	}
	if err == nil {
		s.mu.Lock()
		s.log = append(s.log, batch)
		due := s.interval > 0 && len(s.log) >= s.interval
		w := s.inner
		s.mu.Unlock()
		if due {
			s.checkpoint(w)
		}
	}
	return rep, err
}

// checkpoint pulls a full-state blob from w and truncates the replay log
// it covers. Failure is deliberately non-fatal: the batch was acknowledged
// and the engine's answer is unaffected, so the supervisor keeps the old
// blob + longer log (still exact, just slower to recover) and tries again
// next interval; if the worker actually died, the next operation discovers
// it and engages normal failover with the state we kept.
func (s *supervisor) checkpoint(w ShardWorker) {
	cp, ok := w.(Checkpointer)
	if !ok {
		return
	}
	blob, err := cp.Checkpoint()
	if err != nil {
		return
	}
	s.mu.Lock()
	s.chk = blob
	s.log = nil
	s.health.CheckpointEpoch++
	s.mu.Unlock()
}

// Close releases the current worker.
func (s *supervisor) Close() error { return s.worker().Close() }

// recover places a replacement worker and reproduces the lost shard state
// on it. seedInFlight marks that the failed operation was itself a seeding
// Offer(nil); when additionally nothing needs replaying, the replay-side
// re-seed is skipped — the caller's re-issue IS the seed, and running it
// twice would only recompute the identical pool (the pool is a pure
// function of the store; pinned by TestDoubleSeedIdempotent).
//
// The lock is held only to read and swap state, never across the rebuild
// and replay themselves: FleetHealth keeps answering during a recovery,
// reporting the shard as Recovering. On failure the shard is marked down
// and the original loss is wrapped so the caller sees both what died and
// why no replacement could take over. s.inner is left pointing at the dead
// worker (Close on a lost worker is safe and idempotent) so a later Close
// of the deployment still releases whatever is left.
func (s *supervisor) recover(cause error, seedInFlight bool) error {
	s.mu.Lock()
	s.health.LastError = cause.Error()
	s.health.Recovering = true
	old := s.inner
	chk := s.chk
	seeded := s.seeded
	// The coordinator serializes operations per worker, so no writer can
	// touch s.log while this recovery is in flight; reading the slice
	// header under the lock is enough.
	log := s.log
	s.mu.Unlock()

	if old != nil {
		old.Close() // best effort; the transport is already gone
	}
	w, err := s.rebuildReplacement(chk, seeded, log, seedInFlight)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.Recovering = false
	if err != nil {
		s.health.Live = false
		return fmt.Errorf("core: shard %d %w (lost: %v)", s.spec.Index, err, cause)
	}
	s.inner = w
	s.health.Live = true
	s.health.Addr = workerAddr(w)
	s.health.Replacements++
	s.health.Retries++
	s.health.ReplayedBatches += int64(len(log))
	return nil
}

// rebuildReplacement builds a replacement worker and reproduces the lost
// state on it: install the checkpoint blob (when one exists) and replay
// the post-checkpoint log suffix, or — before any checkpoint — rebuild
// from the spec and replay seed + full log. Runs without s.mu held.
func (s *supervisor) rebuildReplacement(chk []byte, seeded bool, log []Batch, seedInFlight bool) (ShardWorker, error) {
	if chk == nil {
		w, err := s.rb.Rebuild(s.spec)
		if err != nil {
			return nil, fmt.Errorf("worker lost and no replacement available: %w", err)
		}
		if err := replayInto(w, seeded, log, seedInFlight); err != nil {
			w.Close()
			return nil, fmt.Errorf("replay into replacement failed: %w", err)
		}
		return w, nil
	}
	// With a checkpoint the log prefix it covers is gone, so a replacement
	// that cannot restore the blob cannot host the shard — full replay is
	// no longer possible and the recovery fails closed.
	w, err := s.restoreReplacement(chk)
	if err != nil {
		return nil, fmt.Errorf("worker lost and checkpoint restore failed: %w", err)
	}
	for i, b := range log {
		if _, err := w.Ingest(b); err != nil {
			w.Close()
			return nil, fmt.Errorf("replay into replacement failed: batch %d/%d: %w", i+1, len(log), err)
		}
	}
	return w, nil
}

// restoreReplacement places a worker initialized from the checkpoint blob:
// in one round trip when the builder can (rpc.Fleet ships the blob with
// the placement), otherwise by building from the spec and restoring into
// the fresh worker.
func (s *supervisor) restoreReplacement(chk []byte) (ShardWorker, error) {
	if rr, ok := s.rb.(RestoringBuilder); ok {
		return rr.RebuildRestore(s.spec, chk)
	}
	w, err := s.rb.Rebuild(s.spec)
	if err != nil {
		return nil, err
	}
	r, ok := w.(Restorer)
	if !ok {
		w.Close()
		return nil, fmt.Errorf("replacement worker cannot restore a checkpoint")
	}
	if err := r.Restore(s.spec, chk); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// replayInto reproduces a lost pre-checkpoint worker's state on a fresh
// replacement: pool seed first (if the shard was ever seeded), then every
// logged batch in ingest order. When the operation that died was itself
// the seeding Offer and there are no batches to replay, the seed is left
// to the re-issued operation (seedInFlight) — replaying it here too would
// double-seed for nothing. With batches in the log the seed is mandatory
// regardless (workers refuse Ingest before a seeding Offer), and the
// re-issued Offer(nil) then recomputes the identical pool.
func replayInto(w ShardWorker, seeded bool, log []Batch, seedInFlight bool) error {
	if seeded && !(seedInFlight && len(log) == 0) {
		if _, _, err := w.Offer(nil); err != nil {
			return fmt.Errorf("re-seed: %w", err)
		}
	}
	for i, b := range log {
		if _, err := w.Ingest(b); err != nil {
			return fmt.Errorf("batch %d/%d: %w", i+1, len(log), err)
		}
	}
	return nil
}

// healthSnapshot copies the current failover record.
func (s *supervisor) healthSnapshot() WorkerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health
	h.LogSuffixLen = len(s.log)
	return h
}

// superviseWorkers wraps each worker in a replay supervisor when the
// builder can rebuild replacements; other builders (in-process, plain
// WorkerBuilder funcs) are left untouched — no failover, no log memory.
// interval is the checkpoint cadence in acked batches (≤ 0 disables
// checkpointing).
func superviseWorkers(build FleetBuilder, specs []WorkerSpec, workers []ShardWorker, interval int) {
	rb, ok := build.(RebuildingBuilder)
	if !ok {
		return
	}
	for i, w := range workers {
		workers[i] = newSupervisor(specs[i], rb, w, interval)
	}
}

// fleetHealth reports per-shard health for a deployment's workers.
// Unsupervised workers report live with zero counters: they have no
// failover machinery, and their liveness is only ever disproven by the
// next operation failing.
func fleetHealth(workers []ShardWorker) []WorkerHealth {
	hs := make([]WorkerHealth, len(workers))
	for i, w := range workers {
		if sup, ok := w.(*supervisor); ok {
			hs[i] = sup.healthSnapshot()
			continue
		}
		hs[i] = WorkerHealth{Shard: i, Addr: workerAddr(w), Live: w != nil}
	}
	return hs
}
