package core

import (
	"errors"
	"fmt"
	"sync"

	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// workerLost reports whether err marks permanent loss of a worker's state.
// The transport layer (internal/rpc) tags its failures with a
// WorkerLost() bool method; the anonymous interface keeps core free of an
// rpc import (rpc imports core, never the reverse). In-band operation
// errors — a rejected batch, a bad spec — do not carry the tag: the worker
// is alive and its state intact, so failover must not engage.
func workerLost(err error) bool {
	var lost interface{ WorkerLost() bool }
	return errors.As(err, &lost) && lost.WorkerLost()
}

// workerAddr names the daemon hosting a worker, for health reporting.
func workerAddr(w ShardWorker) string {
	if a, ok := w.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return ""
}

// WorkerHealth is one shard's failover record, reported by FleetHealth on
// the sharded engines and surfaced in grminerd's GET /v1/status.
type WorkerHealth struct {
	// Shard is the shard index; Addr the daemon address hosting it ("" for
	// an in-process worker).
	Shard int
	Addr  string
	// Live is false only when the shard is down with no replacement — the
	// engine is broken and every subsequent call will fail.
	Live bool
	// Retries counts operations re-issued after a loss, Replacements
	// successful worker rebuilds, and ReplayedBatches the routed batches
	// replayed into replacements (Replacements × log length at the time).
	Retries         int64
	Replacements    int64
	ReplayedBatches int64
	// LastError is the most recent worker-loss cause ("" if none ever).
	LastError string
}

// supervisor wraps one shard's ShardWorker with the failover state
// machine. It keeps the shard's self-contained WorkerSpec and the routed
// batches the shard has ingested; when an operation fails with worker
// loss it rebuilds a replacement through the RebuildingBuilder, replays
// seed + log, re-issues the failed operation once, and the run continues
// as if nothing happened.
//
// Replay is exact, not approximate:
//
//   - the spec rebuilds the shard store bit-for-bit (the partitioner is
//     deterministic and insertion-stable, and the spec carries the shard's
//     own edges);
//   - the maintained pool is a pure function of the store (re-seeded by
//     Offer(nil) exactly as at construction);
//   - batches apply atomically (validated wholesale before any mutation),
//     so a batch in flight at the moment of loss was either applied to
//     state that no longer exists or never applied — both cases reduce to
//     "not applied", and re-issuing it after replay yields the exact
//     pre-loss state plus the batch.
//
// The log grows with the stream; that is the price of exact replay from a
// stateless coordinator (see DESIGN.md §9 for the truncation follow-up).
//
// One recovery is attempted per failed operation: Rebuild already retries
// transient dial failures with capped backoff and falls through standbys
// and multiplexed peers, so a second loss on the freshly replayed worker
// means the fleet is genuinely unable to host the shard — that error
// escapes to the caller (and poisons an incremental engine, exactly as a
// loss with no builder support would).
type supervisor struct {
	spec WorkerSpec
	rb   RebuildingBuilder

	mu     sync.Mutex
	inner  ShardWorker
	seeded bool    // Offer(nil) ran; replacements must re-seed the pool
	log    []Batch // successfully ingested routed batches, in order
	health WorkerHealth
}

// newSupervisor wraps a freshly built worker. The coordinator serializes
// operations per worker (the ShardWorker contract), so the mutex only
// guards against FleetHealth readers.
func newSupervisor(spec WorkerSpec, rb RebuildingBuilder, w ShardWorker) *supervisor {
	return &supervisor{
		spec:   spec,
		rb:     rb,
		inner:  w,
		health: WorkerHealth{Shard: spec.Index, Addr: workerAddr(w), Live: true},
	}
}

func (s *supervisor) worker() ShardWorker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

// NumEdges reports the inner worker's view; it is local bookkeeping and
// never triggers failover.
func (s *supervisor) NumEdges() int { return s.worker().NumEdges() }

// Offer runs the round-1 offer mine, recovering once on worker loss. A
// successful nil-bound offer (the incremental seed) is recorded so
// replacements re-seed their maintained pools.
func (s *supervisor) Offer(bound *OfferBound) ([]ShardCandidate, Stats, error) {
	offers, stats, err := s.worker().Offer(bound)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err); rerr != nil {
			return nil, Stats{}, rerr
		}
		offers, stats, err = s.worker().Offer(bound)
	}
	if err == nil && bound == nil {
		s.mu.Lock()
		s.seeded = true
		s.mu.Unlock()
	}
	return offers, stats, err
}

// Counts answers the batched round-2 query, recovering once on worker loss.
func (s *supervisor) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	counts, err := s.worker().Counts(grs)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err); rerr != nil {
			return nil, rerr
		}
		counts, err = s.worker().Counts(grs)
	}
	return counts, err
}

// Ingest applies a routed batch, recovering once on worker loss. The batch
// joins the replay log only after the worker acknowledged it.
func (s *supervisor) Ingest(batch Batch) (IngestReply, error) {
	rep, err := s.worker().Ingest(batch)
	if err != nil && workerLost(err) {
		if rerr := s.recover(err); rerr != nil {
			return IngestReply{}, rerr
		}
		rep, err = s.worker().Ingest(batch)
	}
	if err == nil {
		s.mu.Lock()
		s.log = append(s.log, batch)
		s.mu.Unlock()
	}
	return rep, err
}

// Close releases the current worker.
func (s *supervisor) Close() error { return s.worker().Close() }

// recover rebuilds a replacement worker and replays seed + log into it.
// On failure the shard is marked down and the original loss is wrapped so
// the caller sees both what died and why no replacement could take over.
func (s *supervisor) recover(cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.LastError = cause.Error()
	if s.inner != nil {
		s.inner.Close() // best effort; the transport is already gone
	}
	w, err := s.rb.Rebuild(s.spec)
	if err != nil {
		s.health.Live = false
		return fmt.Errorf("core: shard %d worker lost and no replacement available: %w (lost: %v)",
			s.spec.Index, err, cause)
	}
	if err := s.replayInto(w); err != nil {
		w.Close()
		s.health.Live = false
		return fmt.Errorf("core: shard %d replay into replacement failed: %w (lost: %v)",
			s.spec.Index, err, cause)
	}
	s.inner = w
	s.health.Live = true
	s.health.Addr = workerAddr(w)
	s.health.Replacements++
	s.health.Retries++
	s.health.ReplayedBatches += int64(len(s.log))
	return nil
}

// replayInto reproduces the lost worker's state on a fresh replacement:
// pool seed first (if the shard was ever seeded), then every logged batch
// in ingest order. Called with s.mu held.
func (s *supervisor) replayInto(w ShardWorker) error {
	if s.seeded {
		if _, _, err := w.Offer(nil); err != nil {
			return fmt.Errorf("re-seed: %w", err)
		}
	}
	for i, b := range s.log {
		if _, err := w.Ingest(b); err != nil {
			return fmt.Errorf("batch %d/%d: %w", i+1, len(s.log), err)
		}
	}
	return nil
}

// healthSnapshot copies the current failover record.
func (s *supervisor) healthSnapshot() WorkerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// superviseWorkers wraps each worker in a replay supervisor when the
// builder can rebuild replacements; other builders (in-process, plain
// WorkerBuilder funcs) are left untouched — no failover, no log memory.
func superviseWorkers(build FleetBuilder, specs []WorkerSpec, workers []ShardWorker) {
	rb, ok := build.(RebuildingBuilder)
	if !ok {
		return
	}
	for i, w := range workers {
		workers[i] = newSupervisor(specs[i], rb, w)
	}
}

// fleetHealth reports per-shard health for a deployment's workers.
// Unsupervised workers report live with zero counters: they have no
// failover machinery, and their liveness is only ever disproven by the
// next operation failing.
func fleetHealth(workers []ShardWorker) []WorkerHealth {
	hs := make([]WorkerHealth, len(workers))
	for i, w := range workers {
		if sup, ok := w.(*supervisor); ok {
			hs[i] = sup.healthSnapshot()
			continue
		}
		hs[i] = WorkerHealth{Shard: i, Addr: workerAddr(w), Live: w != nil}
	}
	return hs
}
