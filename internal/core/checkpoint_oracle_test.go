package core_test

import (
	"math/rand"
	"testing"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// chaosLostErr is the transport-loss tag, minted test-side so the chaos
// builder below can kill workers without a network.
type chaosLostErr struct{}

func (chaosLostErr) Error() string    { return "chaos: worker killed" }
func (chaosLostErr) WorkerLost() bool { return true }

// chaosWorker wraps a real in-process WorkerState with a kill switch: once
// armed, the next operation fails with worker loss, exactly as a torn
// daemon connection would. Checkpoint/Restore forward to the real worker so
// the supervisor's truncation machinery engages.
type chaosWorker struct {
	w     *core.WorkerState
	armed bool
}

func (c *chaosWorker) fail() bool {
	if c.armed {
		c.armed = false
		return true
	}
	return false
}

func (c *chaosWorker) NumEdges() int { return c.w.NumEdges() }
func (c *chaosWorker) Close() error  { return c.w.Close() }

func (c *chaosWorker) Offer(bound *core.OfferBound) ([]core.ShardCandidate, core.Stats, error) {
	if c.fail() {
		return nil, core.Stats{}, chaosLostErr{}
	}
	return c.w.Offer(bound)
}

func (c *chaosWorker) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	if c.fail() {
		return nil, chaosLostErr{}
	}
	return c.w.Counts(grs)
}

func (c *chaosWorker) Ingest(b core.Batch) (core.IngestReply, error) {
	if c.fail() {
		return core.IngestReply{}, chaosLostErr{}
	}
	return c.w.Ingest(b)
}

func (c *chaosWorker) Checkpoint() ([]byte, error) {
	if c.fail() {
		return nil, chaosLostErr{}
	}
	return c.w.Checkpoint()
}

func (c *chaosWorker) Restore(spec core.WorkerSpec, blob []byte) error {
	return c.w.Restore(spec, blob)
}

// chaosBuilder is an in-process RebuildingBuilder whose live workers the
// test can kill by shard index.
type chaosBuilder struct {
	byShard  map[int]*chaosWorker
	rebuilds int
}

func (b *chaosBuilder) place(spec core.WorkerSpec) (core.ShardWorker, error) {
	w, err := core.NewWorkerState(spec)
	if err != nil {
		return nil, err
	}
	cw := &chaosWorker{w: w}
	b.byShard[spec.Index] = cw
	return cw, nil
}

func (b *chaosBuilder) Build(spec core.WorkerSpec) (core.ShardWorker, error) { return b.place(spec) }

func (b *chaosBuilder) Rebuild(spec core.WorkerSpec) (core.ShardWorker, error) {
	b.rebuilds++
	return b.place(spec)
}

// TestShardedCheckpointFailoverOracle is the randomized kill-after-checkpoint
// oracle: a sharded incremental engine with checkpointing on streams random
// mixed batches while workers are killed at random points — before the first
// checkpoint, right after one, mid-stream — and after EVERY batch the
// maintained top-k must equal a fresh single-store mine of the surviving
// graph. At the end, the health counters must prove the truncation actually
// bounded replay: each shard replayed at most interval batches per
// replacement, and checkpoints were taken.
func TestShardedCheckpointFailoverOracle(t *testing.T) {
	const interval = 2
	for _, seed := range []int64{3, 7} {
		full := randomGraph(seed, true, seed%2 == 0)
		base := full.NumEdges() * 3 / 5
		build := &chaosBuilder{byShard: make(map[int]*chaosWorker)}
		opt := core.Options{MinSupp: 1, MinScore: 0.3, K: 10}
		so := core.ShardOptions{Shards: 3, CheckpointInterval: interval}
		inc, err := core.NewIncrementalShardedFrom(prefixGraph(full, base), opt, so, build)
		if err != nil {
			t.Fatal(err)
		}
		ds := newDynamicStream(t, "checkpoint-chaos", seed, prefixGraph(full, base))
		r := rand.New(rand.NewSource(seed * 101))
		kills := 0
		for i := 0; i < 14; i++ {
			if r.Intn(3) == 0 {
				// Kill a random shard's CURRENT worker (replacements
				// registered themselves in byShard on rebuild).
				shard := r.Intn(so.Shards)
				if cw := build.byShard[shard]; cw != nil && !cw.armed {
					cw.armed = true
					kills++
				}
			}
			res, _, err := inc.ApplyBatch(ds.nextBatch())
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, i, err)
			}
			ds.check(res.TopK, inc.Options())
		}
		if kills == 0 || build.rebuilds == 0 {
			t.Fatalf("seed %d: chaos never engaged (%d kills, %d rebuilds)", seed, kills, build.rebuilds)
		}
		sawCheckpoint := false
		for _, h := range inc.FleetHealth() {
			if !h.Live {
				t.Errorf("seed %d: shard %d down after recovery: %+v", seed, h.Shard, h)
			}
			if h.CheckpointEpoch > 0 {
				sawCheckpoint = true
			}
			if h.Replacements > 0 && h.ReplayedBatches > h.Replacements*interval {
				t.Errorf("seed %d: shard %d replayed %d batches over %d replacements — truncation failed to bound replay by the interval (%d)",
					seed, h.Shard, h.ReplayedBatches, h.Replacements, interval)
			}
			if h.LogSuffixLen >= 2*interval {
				t.Errorf("seed %d: shard %d log suffix %d, should hover below the interval %d",
					seed, h.Shard, h.LogSuffixLen, interval)
			}
		}
		if !sawCheckpoint {
			t.Errorf("seed %d: no shard ever checkpointed", seed)
		}
		if err := inc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
