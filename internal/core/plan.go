package core

import (
	"fmt"
	"runtime"

	"grminer/internal/graph"
	"grminer/internal/store"
)

// Size-aware execution planning. Mining cost scales with the edge count and
// the attribute arity (every extra attribute multiplies the first-level
// fan-out and deepens the SFDF tree), and the parallel engine only pays off
// once each worker gets enough work to amortise goroutine spawn, per-task
// partition copies, and the final merge. AutoTune turns those size features
// into a filled Options value so callers do not have to hand-tune
// Parallelism or descriptor caps per dataset.

const (
	// autoSeqWork is the crossover on edges×dims below which the parallel
	// engine's fixed overhead beats its win and the planner stays
	// sequential. One unit ≈ one edge visited once per search dimension at
	// the first level.
	//
	// Tuned against the measured BENCH_scaling.json crossover fields the CI
	// equivalence gate uploads: at |E|=7200, dims=12 (work ≈ 86k) the
	// static-floor engine never beat sequential (crossover_workers_static =
	// 0, speedup 0.55 at 2 workers), consistent with keeping the static
	// threshold at 2^18 ≈ 262k.
	autoSeqWork = 1 << 18
	// autoSeqWorkDynamic is the same crossover for dynamic-floor
	// (GRMiner(k)) runs. The same CI artifact measured
	// crossover_workers_dynamic = 2 at work ≈ 86k — dynamic-floor mining
	// carries the ExactGenerality verification scans, so each unit of
	// first-level work is heavier and parallelism amortises its overhead
	// sooner. 2^16 ≈ 65k puts the measured crossover point on the parallel
	// side with margin.
	autoSeqWorkDynamic = 1 << 16
	// autoWorkPerWorker is the work each additional worker must bring to be
	// worth scheduling; the planner stops adding workers (before the CPU
	// budget is reached) when tasks get thinner than this.
	autoWorkPerWorker = autoSeqWork / 2
	// autoWideNodeAttrs / autoWideEdgeAttrs mark schemas wide enough that
	// unbounded descriptors explode the search space; beyond them the
	// planner caps descriptor sizes the user left at 0.
	autoWideNodeAttrs = 10
	autoWideEdgeAttrs = 8
	// autoCapLR / autoCapW are those caps (LHS and RHS node descriptors,
	// edge descriptors). Patterns longer than this are rarely
	// interpretable, which is what MaxL/MaxW/MaxR exist for.
	autoCapLR = 6
	autoCapW  = 4
)

// Plan is the execution strategy AutoTune selected for one input, kept as a
// value so CLIs can display the decision before mining.
type Plan struct {
	// Edges, Dims, and Procs are the inputs the decision was made from:
	// |E|, the search dimensionality 2·#AttrV+#AttrE, and the CPU budget.
	Edges int
	Dims  int
	Procs int
	// Tier names the size class: "small", "medium", or "large".
	Tier string
	// Parallelism is the chosen worker count (1 = sequential).
	Parallelism int
	// MaxL, MaxW, MaxR are the chosen descriptor caps (0 = unlimited);
	// user-set caps pass through unchanged.
	MaxL, MaxW, MaxR int
}

// PlanFor sizes a plan for mining st with opt. procs is the CPU budget
// (0 = runtime.NumCPU()). Fields the user already set in opt win: the plan
// never overrides a non-zero Parallelism, MaxL, MaxW, or MaxR.
func PlanFor(st *store.Store, procs int, opt Options) Plan {
	return PlanForSize(st.NumEdges(), st.Graph().Schema(), procs, opt)
}

// PlanForSize is PlanFor on explicit size features, usable without building
// a store (e.g. to preview a strategy for a dataset about to be generated).
func PlanForSize(edges int, schema *graph.Schema, procs int, opt Options) Plan {
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	dims := 2*len(schema.Node) + len(schema.Edge)
	work := int64(edges) * int64(dims)

	p := Plan{
		Edges: edges, Dims: dims, Procs: procs,
		Parallelism: opt.Parallelism,
		MaxL:        opt.MaxL, MaxW: opt.MaxW, MaxR: opt.MaxR,
	}
	seqWork := int64(autoSeqWork)
	if opt.DynamicFloor {
		seqWork = autoSeqWorkDynamic
	}
	switch {
	case work < seqWork:
		p.Tier = "small"
	case work < 64*autoSeqWork:
		p.Tier = "medium"
	default:
		p.Tier = "large"
	}

	// Wide schemas get descriptor caps regardless of tier: arity, not edge
	// count, is what makes the pattern space explode.
	if len(schema.Node) > autoWideNodeAttrs {
		if p.MaxL == 0 {
			p.MaxL = autoCapLR
		}
		if p.MaxR == 0 {
			p.MaxR = autoCapLR
		}
	}
	if len(schema.Edge) > autoWideEdgeAttrs && p.MaxW == 0 {
		p.MaxW = autoCapW
	}

	if p.Parallelism == 0 {
		if p.Tier == "small" || procs == 1 {
			p.Parallelism = 1
		} else {
			workers := int(work / autoWorkPerWorker)
			if workers > procs {
				workers = procs
			}
			if workers < 2 {
				workers = 2
			}
			p.Parallelism = workers
		}
	}
	return p
}

// Apply copies the plan into opt, filling only the fields the user left at
// zero so explicit settings always win.
func (p Plan) Apply(opt Options) Options {
	if opt.Parallelism == 0 {
		opt.Parallelism = p.Parallelism
	}
	if opt.MaxL == 0 {
		opt.MaxL = p.MaxL
	}
	if opt.MaxW == 0 {
		opt.MaxW = p.MaxW
	}
	if opt.MaxR == 0 {
		opt.MaxR = p.MaxR
	}
	return opt
}

// String renders the decision for CLI display.
func (p Plan) String() string {
	mode := "sequential"
	if p.Parallelism > 1 {
		mode = fmt.Sprintf("parallel ×%d", p.Parallelism)
	}
	return fmt.Sprintf("plan: |E|=%d dims=%d procs=%d tier=%s → %s, caps L/W/R=%d/%d/%d",
		p.Edges, p.Dims, p.Procs, p.Tier, mode, p.MaxL, p.MaxW, p.MaxR)
}

// AutoTune fills opt's zero-valued execution knobs from the input size
// using the full machine as CPU budget.
func AutoTune(st *store.Store, opt Options) Options {
	return PlanFor(st, 0, opt).Apply(opt)
}

// MineAuto is Mine with AutoTune applied first.
func MineAuto(g *graph.Graph, opt Options) (*Result, error) {
	return MineAutoStore(store.Build(g), opt)
}

// MineAutoStore is MineStore with AutoTune applied first.
func MineAutoStore(st *store.Store, opt Options) (*Result, error) {
	return MineStore(st, AutoTune(st, opt))
}
