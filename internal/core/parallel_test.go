package core_test

import (
	"math/rand"
	"testing"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/dataset"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

// Parallel mining with a static floor must match the sequential miner (and
// hence the oracle) exactly, for every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		seq, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := core.Mine(g, core.Options{
				MinSupp: 1, MinScore: 0.3, K: 10, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "parallel-static", par.TopK, seq.TopK)
		}
	}
}

// Parallel + DynamicFloor (which auto-enables ExactGenerality) must equal
// the sequential exact run and be deterministic across repetitions.
func TestParallelDynamicFloor(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed, true, seed%2 == 0)
		exact, err := core.Mine(g, core.Options{
			MinSupp: 1, MinScore: 0.3, K: 5, DynamicFloor: true, ExactGenerality: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			par, err := core.Mine(g, core.Options{
				MinSupp: 1, MinScore: 0.3, K: 5, DynamicFloor: true, Parallelism: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "parallel-dynamic", par.TopK, exact.TopK)
			if !par.Options.ExactGenerality {
				t.Fatal("parallel dynamic run did not auto-enable ExactGenerality")
			}
		}
	}
}

// Parallel work accounting must cover the same search space: the examined
// counter (with static floor, where pruning is deterministic) matches the
// sequential run's.
func TestParallelStatsCoverage(t *testing.T) {
	g := randomGraph(3, true, true)
	seq, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Examined != seq.Stats.Examined {
		t.Errorf("examined: parallel %d vs sequential %d", par.Stats.Examined, seq.Stats.Examined)
	}
	if par.Stats.TrivialSeen != seq.Stats.TrivialSeen {
		t.Errorf("trivial: parallel %d vs sequential %d", par.Stats.TrivialSeen, seq.Stats.TrivialSeen)
	}
	if par.Stats.Candidates != seq.Stats.Candidates {
		t.Errorf("candidates: parallel %d vs sequential %d", par.Stats.Candidates, seq.Stats.Candidates)
	}
}

func TestParallelOnToyAndEmpty(t *testing.T) {
	g := dataset.ToyDating()
	seq, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "toy-parallel", par.TopK, seq.TopK)

	schema, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	empty := graph.MustNew(schema, 0)
	res, err := core.Mine(empty, core.Options{MinSupp: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 0 {
		t.Error("parallel empty graph produced results")
	}
}

// Stress matrix for the lock-light engine: sequential and parallel results
// must agree for every combination of metric, K, floor mode, and worker
// count 1–16. Run under -race this also exercises the atomic floor and the
// task-queue draining for data races. The DynamicFloor reference runs with
// ExactGenerality, the semantics the parallel engine guarantees.
func TestParallelStressMatrix(t *testing.T) {
	ms := []metrics.Metric{metrics.NhpMetric, metrics.ConfMetric, metrics.LiftMetric}
	thresholds := map[string]float64{"nhp": 0.3, "conf": 0.3, "lift": 1.1}
	workerCounts := []int{1, 2, 3, 4, 6, 8, 12, 16}
	for seed := int64(0); seed < 4; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		for _, m := range ms {
			for _, k := range []int{0, 5} {
				for _, dyn := range []bool{false, true} {
					if dyn && k == 0 {
						continue // DynamicFloor requires K > 0
					}
					label := m.Name
					// Two sequential references: Parallelism ≤ 1 runs the
					// paper-faithful plain floor, while Parallelism > 1
					// auto-enables ExactGenerality under DynamicFloor (the
					// documented parallel semantics).
					refPlain, err := core.Mine(g, core.Options{
						MinSupp: 1, MinScore: thresholds[m.Name], K: k, Metric: m,
						DynamicFloor: dyn,
					})
					if err != nil {
						t.Fatalf("%s seq: %v", label, err)
					}
					refExact, err := core.Mine(g, core.Options{
						MinSupp: 1, MinScore: thresholds[m.Name], K: k, Metric: m,
						DynamicFloor: dyn, ExactGenerality: dyn,
					})
					if err != nil {
						t.Fatalf("%s seq exact: %v", label, err)
					}
					for _, workers := range workerCounts {
						par, err := core.Mine(g, core.Options{
							MinSupp: 1, MinScore: thresholds[m.Name], K: k, Metric: m,
							DynamicFloor: dyn, Parallelism: workers,
						})
						if err != nil {
							t.Fatalf("%s x%d: %v", label, workers, err)
						}
						want := refExact.TopK
						if workers <= 1 {
							want = refPlain.TopK
						}
						assertSameResults(t, label+"-stress", par.TopK, want)
					}
				}
			}
		}
	}
}

// Regression: under IncludeTrivial, trivial GRs are candidates and hence
// generality blockers, and the exact generalisation check must honour
// that. A trivial specialisation whose only qualifying generalisation is a
// trivial GR enumerated by a *different* worker used to escape blocking in
// parallel dynamic-floor runs (the exact scan skipped trivial candidates
// unconditionally), diverging from the sequential results.
func TestParallelIncludeTrivialDynamicFloor(t *testing.T) {
	schema, err := graph.NewSchema([]graph.Attribute{
		{Name: "A1", Domain: 3, Homophily: true},
		{Name: "A2", Domain: 3, Homophily: true},
		{Name: "A3", Domain: 2, Homophily: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(8)
		g := graph.MustNew(schema, n)
		for v := 0; v < n; v++ {
			if err := g.SetNodeValues(v, graph.Value(r.Intn(3)), graph.Value(r.Intn(3)), graph.Value(r.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
		for e, m := 0, 15+r.Intn(40); e < m; e++ {
			if _, err := g.AddEdge(r.Intn(n), r.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		for _, minScore := range []float64{0.2, 0.4} {
			seq, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: minScore, K: 30,
				DynamicFloor: true, ExactGenerality: true, IncludeTrivial: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				par, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: minScore, K: 30,
					DynamicFloor: true, IncludeTrivial: true, Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, "include-trivial-dynamic", par.TopK, seq.TopK)
			}
		}
	}
}

// A graph whose only first-level partition is one RIGHT group (sources all
// null, targets all one value) must short-circuit to the sequential path:
// results and counters match the sequential run exactly even when many
// workers were requested.
func TestParallelSingleTaskShortCircuit(t *testing.T) {
	schema, err := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 10)
	for v := 5; v < 10; v++ {
		if err := g.SetNodeValues(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 5; e++ {
		if _, err := g.AddEdge(e, 5+e); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "single-task", par.TopK, seq.TopK)
	seqStats, parStats := seq.Stats, par.Stats
	seqStats.Duration, parStats.Duration = 0, 0
	if seqStats != parStats {
		t.Errorf("short-circuit stats differ from sequential: %+v vs %+v", parStats, seqStats)
	}
}

func TestParallelValidation(t *testing.T) {
	g := dataset.ToyDating()
	if _, err := core.Mine(g, core.Options{Parallelism: -2}); err == nil {
		t.Error("negative parallelism accepted")
	}
	// Parallelism 1 is sequential; must behave identically.
	a, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "p1", a.TopK, b.TopK)
}

// A moderately sized structured graph: parallel and sequential must agree
// under both floors and with IncludeTrivial.
func TestParallelOnSyntheticDBLP(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 3000
	cfg.Pairs = 4000
	g := datagen.DBLP(cfg)
	st := store.Build(g)

	seq, err := core.MineStore(st, core.Options{MinSupp: 10, MinScore: 0.4, K: 15, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.MineStore(st, core.Options{
		MinSupp: 10, MinScore: 0.4, K: 15, IncludeTrivial: true, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "dblp-parallel", par.TopK, seq.TopK)

	// And against the baseline BL2 for the non-trivial default setting.
	seqD, err := core.MineStore(st, core.Options{MinSupp: 10, MinScore: 0.4, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := baseline.BL2(g, baseline.Options{MinSupp: 10, MinScore: 0.4, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "dblp-bl2", seqD.TopK, bl.TopK)
}
