package core_test

import (
	"testing"

	"grminer/internal/baseline"
	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/dataset"
	"grminer/internal/graph"
	"grminer/internal/store"
)

// Parallel mining with a static floor must match the sequential miner (and
// hence the oracle) exactly, for every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		seq, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := core.Mine(g, core.Options{
				MinSupp: 1, MinScore: 0.3, K: 10, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "parallel-static", par.TopK, seq.TopK)
		}
	}
}

// Parallel + DynamicFloor (which auto-enables ExactGenerality) must equal
// the sequential exact run and be deterministic across repetitions.
func TestParallelDynamicFloor(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed, true, seed%2 == 0)
		exact, err := core.Mine(g, core.Options{
			MinSupp: 1, MinScore: 0.3, K: 5, DynamicFloor: true, ExactGenerality: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			par, err := core.Mine(g, core.Options{
				MinSupp: 1, MinScore: 0.3, K: 5, DynamicFloor: true, Parallelism: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "parallel-dynamic", par.TopK, exact.TopK)
			if !par.Options.ExactGenerality {
				t.Fatal("parallel dynamic run did not auto-enable ExactGenerality")
			}
		}
	}
}

// Parallel work accounting must cover the same search space: the examined
// counter (with static floor, where pruning is deterministic) matches the
// sequential run's.
func TestParallelStatsCoverage(t *testing.T) {
	g := randomGraph(3, true, true)
	seq, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Examined != seq.Stats.Examined {
		t.Errorf("examined: parallel %d vs sequential %d", par.Stats.Examined, seq.Stats.Examined)
	}
	if par.Stats.TrivialSeen != seq.Stats.TrivialSeen {
		t.Errorf("trivial: parallel %d vs sequential %d", par.Stats.TrivialSeen, seq.Stats.TrivialSeen)
	}
	if par.Stats.Candidates != seq.Stats.Candidates {
		t.Errorf("candidates: parallel %d vs sequential %d", par.Stats.Candidates, seq.Stats.Candidates)
	}
}

func TestParallelOnToyAndEmpty(t *testing.T) {
	g := dataset.ToyDating()
	seq, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "toy-parallel", par.TopK, seq.TopK)

	schema, _ := graph.NewSchema([]graph.Attribute{{Name: "A", Domain: 2}}, nil)
	empty := graph.MustNew(schema, 0)
	res, err := core.Mine(empty, core.Options{MinSupp: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 0 {
		t.Error("parallel empty graph produced results")
	}
}

func TestParallelValidation(t *testing.T) {
	g := dataset.ToyDating()
	if _, err := core.Mine(g, core.Options{Parallelism: -2}); err == nil {
		t.Error("negative parallelism accepted")
	}
	// Parallelism 1 is sequential; must behave identically.
	a, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "p1", a.TopK, b.TopK)
}

// A moderately sized structured graph: parallel and sequential must agree
// under both floors and with IncludeTrivial.
func TestParallelOnSyntheticDBLP(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 3000
	cfg.Pairs = 4000
	g := datagen.DBLP(cfg)
	st := store.Build(g)

	seq, err := core.MineStore(st, core.Options{MinSupp: 10, MinScore: 0.4, K: 15, IncludeTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.MineStore(st, core.Options{
		MinSupp: 10, MinScore: 0.4, K: 15, IncludeTrivial: true, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "dblp-parallel", par.TopK, seq.TopK)

	// And against the baseline BL2 for the non-trivial default setting.
	seqD, err := core.MineStore(st, core.Options{MinSupp: 10, MinScore: 0.4, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := baseline.BL2(g, baseline.Options{MinSupp: 10, MinScore: 0.4, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "dblp-bl2", seqD.TopK, bl.TopK)
}
