package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"grminer/internal/core"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// dynamicStream drives a randomized fully dynamic workload: interleaved
// mixed batches of fresh insertions and retractions of random live edges,
// generated against a private twin graph so the same ops can be replayed
// into the reference. apply runs one batch and returns the engine's top-k;
// the stream asserts it equals a full re-mine of the surviving twin after
// every batch.
type dynamicStream struct {
	t     *testing.T
	label string
	r     *rand.Rand
	// sim mirrors the engine's edge multiset (tombstones included — the
	// reference mine runs over the tombstoned graph, which also exercises
	// the dead-aware store build and Eval paths).
	sim  *graph.Graph
	live []int
}

func newDynamicStream(t *testing.T, label string, seed int64, base *graph.Graph) *dynamicStream {
	sim := prefixGraph(base, base.NumEdges())
	live := make([]int, 0, sim.NumEdges())
	for e := 0; e < sim.NumEdges(); e++ {
		if sim.EdgeAlive(e) {
			live = append(live, e)
		}
	}
	return &dynamicStream{
		t: t, label: label,
		r:   rand.New(rand.NewSource(seed)),
		sim: sim, live: live,
	}
}

// nextBatch builds one random mixed batch: 0-5 inserts and 0-3 deletes of
// live edges (deletes resolve pre-batch, so they never target the batch's
// own inserts).
func (ds *dynamicStream) nextBatch() core.Batch {
	var b core.Batch
	for i := ds.r.Intn(4); i > 0 && len(ds.live) > 0; i-- {
		j := ds.r.Intn(len(ds.live))
		e := ds.live[j]
		ds.live[j] = ds.live[len(ds.live)-1]
		ds.live = ds.live[:len(ds.live)-1]
		b.Del = append(b.Del, core.EdgeDelete{
			Src: ds.sim.Src(e), Dst: ds.sim.Dst(e),
			Vals: append([]graph.Value(nil), ds.sim.EdgeValues(e)...),
		})
		if err := ds.sim.RemoveEdge(e); err != nil {
			ds.t.Fatalf("%s: sim remove: %v", ds.label, err)
		}
	}
	n := ds.sim.NumNodes()
	for i := 1 + ds.r.Intn(5); i > 0; i-- {
		ins := core.EdgeInsert{
			Src: ds.r.Intn(n), Dst: ds.r.Intn(n),
			Vals: []graph.Value{graph.Value(ds.r.Intn(3))},
		}
		b.Ins = append(b.Ins, ins)
		e, err := ds.sim.AddEdge(ins.Src, ins.Dst, ins.Vals...)
		if err != nil {
			ds.t.Fatalf("%s: sim add: %v", ds.label, err)
		}
		ds.live = append(ds.live, e)
	}
	return b
}

// check asserts the engine's maintained top-k equals a fresh mine of the
// surviving twin graph under the engine's effective options.
func (ds *dynamicStream) check(got []gr.Scored, opt core.Options) {
	ref, err := core.Mine(ds.sim, opt)
	if err != nil {
		ds.t.Fatalf("%s: reference mine: %v", ds.label, err)
	}
	assertSameResults(ds.t, ds.label, got, ref.TopK)
}

// TestDynamicOracle is the headline equivalence gate of the fully dynamic
// engine: randomized interleaved insert/delete batches against the
// single-store engine, for every metric, both floor modes; after every
// batch the maintained top-k must equal a full re-mine of the surviving
// graph from scratch.
func TestDynamicOracle(t *testing.T) {
	seeds := []int64{0, 1, 2}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		full := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				opt := core.Options{
					MinSupp: 1, MinScore: oracleThresholds[m.Name], K: 10,
					DynamicFloor: dyn, Metric: m,
				}
				label := "dynamic-" + m.Name
				if dyn {
					label += "-dynfloor"
				}
				inc, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), opt)
				if err != nil {
					t.Fatal(err)
				}
				ds := newDynamicStream(t, label, seed*31+int64(len(m.Name)), full)
				sawDeletes := false
				for batch := 0; batch < 10; batch++ {
					b := ds.nextBatch()
					sawDeletes = sawDeletes || len(b.Del) > 0
					res, _, err := inc.ApplyBatch(b)
					if err != nil {
						t.Fatalf("%s: batch %d: %v", label, batch, err)
					}
					ds.check(res.TopK, inc.Options())
				}
				if !sawDeletes {
					t.Fatalf("%s: stream never deleted an edge", label)
				}
			}
		}
	}
}

// TestDynamicShardedOracle is the sharded half: the same randomized mixed
// stream routed through in-process shard workers, 1-8 shards, both routing
// strategies cycled, every metric — deletions route to the owning shard,
// worker pools decrement, and the merged global top-k must equal a fresh
// single-store mine of the surviving graph after every batch.
func TestDynamicShardedOracle(t *testing.T) {
	strategies := []graph.ShardStrategy{graph.ShardBySource, graph.ShardByRHS}
	seeds := []int64{3, 4}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		full := randomGraph(seed, seed%2 == 1, seed%3 == 0)
		cycle := 0
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				cycle++
				shards := cycle%8 + 1
				strategy := strategies[cycle%2]
				opt := core.Options{
					MinSupp: 2, MinScore: oracleThresholds[m.Name], K: 8,
					DynamicFloor: dyn, Metric: m,
				}
				label := "dynamic-sharded-" + m.Name
				if dyn {
					label += "-dynfloor"
				}
				inc, err := core.NewIncrementalSharded(prefixGraph(full, full.NumEdges()), opt,
					core.ShardOptions{Shards: shards, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				ds := newDynamicStream(t, label, seed*17+int64(cycle), full)
				for batch := 0; batch < 6; batch++ {
					res, _, err := inc.ApplyBatch(ds.nextBatch())
					if err != nil {
						t.Fatalf("%s: batch %d: %v", label, batch, err)
					}
					ds.check(res.TopK, inc.Options())
				}
				inc.Close()
			}
		}
	}
}

// TestDeletionEvictsTopK pins the demotion case with a seeded, deterministic
// fixture: a GR enters the top-k on the strength of edges that a later
// deletion batch retracts, the maintained list must evict it, and the floor
// machinery must not remember the stale higher score (condition (3) is
// re-derived from the surviving pool, never carried forward).
func TestDeletionEvictsTopK(t *testing.T) {
	schema, err := graph.NewSchema(
		[]graph.Attribute{{Name: "A", Domain: 2, Homophily: true}},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 8)
	// Nodes 0-3 carry A=1, nodes 4-7 carry A=2.
	for v := 0; v < 8; v++ {
		val := graph.Value(1)
		if v >= 4 {
			val = 2
		}
		if err := g.SetNodeValues(v, val); err != nil {
			t.Fatal(err)
		}
	}
	// Background edges keep (A:2) -> (A:1) qualifying throughout, and the
	// second group spoils every generalisation of the target — () -> (A:2)
	// and () -[W:2]-> (A:2) both score 4/12 and 4/8 < 0.6, so nothing
	// blocks the target via Definition 5 condition (2).
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(4+i, i, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(4+i, i, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Four (A:1) -> (A:2) edges with W=2: the pattern a deletion will demote.
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, 4+i, 2); err != nil {
			t.Fatal(err)
		}
	}
	opt := core.Options{MinSupp: 3, MinScore: 0.6, K: 5, DynamicFloor: true}
	inc, err := core.NewIncremental(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	target := "L0:1;WR0:2;" // (A:1) -> (A:2), nhp 1.0 on the seed graph
	if !topKHasKey(inc.Result().TopK, target) {
		t.Fatalf("fixture broken: %s not in seed top-k: %+v", target, inc.Result().TopK)
	}
	// Retract two of the four supporting edges: support falls to 2 < 3.
	res, bs, err := inc.ApplyBatch(core.Batch{Del: []core.EdgeDelete{
		{Src: 0, Dst: 4, Vals: []graph.Value{2}},
		{Src: 1, Dst: 5, Vals: []graph.Value{2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Deleted != 2 {
		t.Fatalf("reported %d deletions, want 2", bs.Deleted)
	}
	if topKHasKey(res.TopK, target) {
		t.Fatalf("deletion did not evict %s: %+v", target, res.TopK)
	}
	ref, err := core.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "eviction", res.TopK, ref.TopK)

	// Re-inserting one edge restores support 3: the scoped re-mine must
	// re-discover the evicted pattern (pool re-entry after a drop).
	res, _, err = inc.ApplyBatch(core.Batch{Ins: []core.EdgeInsert{{Src: 0, Dst: 4, Vals: []graph.Value{2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !topKHasKey(res.TopK, target) {
		t.Fatalf("re-insertion did not restore %s: %+v", target, res.TopK)
	}
	ref, err = core.Mine(g, inc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "restore", res.TopK, ref.TopK)
}

func topKHasKey(topK []gr.Scored, key string) bool {
	for _, s := range topK {
		if s.GR.Key() == key {
			return true
		}
	}
	return false
}

// TestDynamicRejectsMalformedBatchAtomically extends the atomic-rejection
// contract to mixed batches: an unmatched retraction — alone or alongside
// valid inserts — must leave the engine untouched; and a mixed batch whose
// delete targets an edge only its own insert would create must also reject
// (deletions resolve strictly pre-batch).
func TestDynamicRejectsMalformedBatchAtomically(t *testing.T) {
	full := randomGraph(9, true, true)
	inc, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), core.Options{
		MinSupp: 1, MinScore: 0.3, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result()
	// A value combination no live edge carries: delete of it must fail.
	noSuch := core.EdgeDelete{Src: 0, Dst: 0, Vals: []graph.Value{3}}
	bad := []core.Batch{
		{Del: []core.EdgeDelete{noSuch}},
		{Ins: []core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}}, Del: []core.EdgeDelete{noSuch}},
		{Del: []core.EdgeDelete{{Src: 0, Dst: 1, Vals: nil}}}, // missing value
		// Pre-batch semantics: the insert cannot satisfy its own delete.
		{
			Ins: []core.EdgeInsert{{Src: 0, Dst: 0, Vals: []graph.Value{3}}},
			Del: []core.EdgeDelete{noSuch},
		},
	}
	for i, b := range bad {
		if _, _, err := inc.ApplyBatch(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if got := inc.Result(); got.TotalEdges != before.TotalEdges {
		t.Fatalf("rejected batches mutated the graph: %d edges, want %d", got.TotalEdges, before.TotalEdges)
	}
	assertSameResults(t, "post-reject", inc.Result().TopK, before.TopK)

	// The sharded engine applies the same contract.
	g2 := prefixGraph(full, full.NumEdges())
	sharded, err := core.NewIncrementalSharded(g2, core.Options{MinSupp: 1, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	prev := sharded.Result()
	if _, _, err := sharded.ApplyBatch(core.Batch{Del: []core.EdgeDelete{noSuch}}); err == nil {
		t.Fatal("sharded engine accepted an unmatched retraction")
	}
	if g2.NumLiveEdges() != prev.TotalEdges {
		t.Fatalf("sharded rejection mutated the graph")
	}
	assertSameResults(t, "sharded-post-reject", sharded.Result().TopK, prev.TopK)
}

// TestBoundedPoolProperty is the bounded-pool exactness property: with
// PoolCap set — including caps far below what the workload needs — the
// maintained top-k must equal the unbounded engine's after every batch of a
// randomized fully dynamic stream, with underflow re-mines (not
// approximation) absorbing the spilled frontier.
func TestBoundedPoolProperty(t *testing.T) {
	caps := []int{2, 8, 64}
	for _, seed := range []int64{11, 12} {
		full := randomGraph(seed, seed%2 == 0, true)
		for _, capN := range caps {
			for _, dyn := range []bool{false, true} {
				opt := core.Options{MinSupp: 1, MinScore: 0.3, K: 5, DynamicFloor: dyn}
				unbounded, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), opt)
				if err != nil {
					t.Fatal(err)
				}
				boundedOpt := opt
				boundedOpt.PoolCap = capN
				bounded, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), boundedOpt)
				if err != nil {
					t.Fatal(err)
				}
				label := "pool-cap"
				ds := newDynamicStream(t, label, seed*7+int64(capN), full)
				for batch := 0; batch < 8; batch++ {
					b := ds.nextBatch()
					ru, _, err := unbounded.ApplyBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					rb, _, err := bounded.ApplyBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, label, rb.TopK, ru.TopK)
					ds.check(rb.TopK, bounded.Options())
				}
				cum := bounded.Cumulative()
				if cum.Tracked > 0 && capN < 8 && cum.Spilled == 0 {
					t.Errorf("cap %d never spilled (tracked %d) — property not exercised", capN, cum.Tracked)
				}
			}
		}
	}
}

// Tight caps must actually take the underflow path at least once across the
// property workloads; a bounded pool that never underflows under cap 2 with
// K 5 would mean the proof obligation is vacuous (or wrong).
func TestBoundedPoolUnderflowExercised(t *testing.T) {
	full := randomGraph(13, true, true)
	opt := core.Options{MinSupp: 1, MinScore: 0.2, K: 6, DynamicFloor: true, PoolCap: 2}
	inc, err := core.NewIncremental(prefixGraph(full, full.NumEdges()), opt)
	if err != nil {
		t.Fatal(err)
	}
	ds := newDynamicStream(t, "underflow", 99, full)
	for batch := 0; batch < 10; batch++ {
		res, _, err := inc.ApplyBatch(ds.nextBatch())
		if err != nil {
			t.Fatal(err)
		}
		ds.check(res.TopK, inc.Options())
	}
	if c := inc.Cumulative(); c.UnderflowRemines == 0 {
		t.Errorf("cap 2 under k=6 never re-mined on underflow: %+v", c)
	}
}

// PoolCap is rejected where it cannot be sound: without K, and anywhere in
// the sharded engines (bounding a support-gated per-shard pool would break
// the pigeonhole offer completeness).
func TestPoolCapRejections(t *testing.T) {
	g := randomGraph(15, true, true)
	if _, err := core.NewIncremental(prefixGraph(g, g.NumEdges()), core.Options{MinSupp: 1, PoolCap: 4}); err == nil || !strings.Contains(err.Error(), "PoolCap") {
		t.Errorf("PoolCap without K accepted: %v", err)
	}
	if _, err := core.NewIncrementalSharded(prefixGraph(g, g.NumEdges()),
		core.Options{MinSupp: 1, K: 5, PoolCap: 4}, core.ShardOptions{Shards: 2}); err == nil || !strings.Contains(err.Error(), "PoolCap") {
		t.Errorf("sharded PoolCap accepted: %v", err)
	}
	if _, err := core.MineSharded(prefixGraph(g, g.NumEdges()),
		core.Options{MinSupp: 1, K: 5, PoolCap: 4}, core.ShardOptions{Shards: 2}); err == nil || !strings.Contains(err.Error(), "PoolCap") {
		t.Errorf("MineSharded PoolCap accepted: %v", err)
	}
}
