package core_test

import (
	"testing"

	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/store"
)

// The StaticRHSOrder ablation must find exactly the same GRs (subset-first
// enumeration is preserved) while examining at least as many — usually
// strictly more — because nhp pruning is withheld whenever β = ∅.
func TestStaticOrderAblationSameResults(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, seed%2 == 0, true)
		dynamic, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		static, err := core.Mine(g, core.Options{MinSupp: 1, MinScore: 0.4, StaticRHSOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "static-order", static.TopK, dynamic.TopK)
		if static.Stats.Examined < dynamic.Stats.Examined {
			t.Errorf("seed %d: static order examined %d < dynamic %d",
				seed, static.Stats.Examined, dynamic.Stats.Examined)
		}
	}
}

// On a homophilous graph the ablation's extra work is substantial — the
// quantitative version of Remark 2 / Theorem 3.
func TestStaticOrderAblationCost(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 4000
	cfg.Pairs = 6000
	g := datagen.DBLP(cfg)
	st := store.Build(g)

	dynamic, err := core.MineStore(st, core.Options{MinSupp: 5, MinScore: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	static, err := core.MineStore(st, core.Options{MinSupp: 5, MinScore: 0.6, StaticRHSOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if static.Stats.Examined <= dynamic.Stats.Examined {
		t.Errorf("ablation showed no cost: static examined %d, dynamic %d",
			static.Stats.Examined, dynamic.Stats.Examined)
	}
	if len(static.TopK) != len(dynamic.TopK) {
		t.Fatalf("ablation changed results: %d vs %d", len(static.TopK), len(dynamic.TopK))
	}
	for i := range static.TopK {
		if static.TopK[i].GR.Key() != dynamic.TopK[i].GR.Key() {
			t.Fatalf("rank %d differs under static order", i)
		}
	}
}
