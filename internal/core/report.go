package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"grminer/internal/graph"
)

// Result serialization: TSV for spreadsheets and JSON for downstream tools.
// Both forms carry the GR in its parseable textual syntax so results can be
// fed back into the hypothesis workbench.

// WriteTSV writes one header line and one row per GR: rank, the textual GR,
// score, absolute support, relative support (against Result.TotalEdges),
// and confidence.
func (r *Result) WriteTSV(w io.Writer, s *graph.Schema) error {
	bw := bufio.NewWriter(w)
	metric := r.Options.Metric.Name
	fmt.Fprintf(bw, "rank\tgr\t%s\tsupp\trel_supp\tconf\n", metric)
	for i, sc := range r.TopK {
		rel := 0.0
		if r.TotalEdges > 0 {
			rel = float64(sc.Supp) / float64(r.TotalEdges)
		}
		fmt.Fprintf(bw, "%d\t%s\t%.6f\t%d\t%.6f\t%.6f\n",
			i+1, sc.GR.Format(s), sc.Score, sc.Supp, rel, sc.Conf)
	}
	return bw.Flush()
}

// JSONResult is the serialized form of one mined GR.
type JSONResult struct {
	Rank  int     `json:"rank"`
	GR    string  `json:"gr"`
	Score float64 `json:"score"`
	Supp  int     `json:"supp"`
	Conf  float64 `json:"conf"`
}

// JSONReport is the serialized form of a full run.
type JSONReport struct {
	Metric   string       `json:"metric"`
	MinSupp  int          `json:"min_supp"`
	MinScore float64      `json:"min_score"`
	K        int          `json:"k"`
	Results  []JSONResult `json:"results"`
	Stats    Stats        `json:"stats"`
}

// WriteJSON writes the run as one indented JSON document.
func (r *Result) WriteJSON(w io.Writer, s *graph.Schema) error {
	rep := JSONReport{
		Metric:   r.Options.Metric.Name,
		MinSupp:  r.Options.MinSupp,
		MinScore: r.Options.MinScore,
		K:        r.Options.K,
		Stats:    r.Stats,
	}
	for i, sc := range r.TopK {
		rep.Results = append(rep.Results, JSONResult{
			Rank: i + 1, GR: sc.GR.Format(s), Score: sc.Score, Supp: sc.Supp, Conf: sc.Conf,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
