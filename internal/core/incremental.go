// Fully dynamic top-k GR mining: edge insertions AND deletions in mixed
// batches, over a bounded tracked pool.
//
// The batch miner re-enumerates the whole SFDF tree on every change; this
// file maintains the same result while ingesting edge batches. The engine
// rests on three pieces:
//
//  1. A fully dynamic store: insertions are appended to the graph and synced
//     into the compact model with store.Append (EArray tail segment, new
//     LArray/RArray rows as nodes activate); deletions tombstone their rows
//     (store.RemoveEdges), which keeps the removed values readable for the
//     delta recount and folds into a compaction once the dead fraction
//     crosses the store's threshold. Per-(attribute, value) posting lists
//     maintained by the store hand the scoped re-mine its first-level
//     partitions directly, replacing the O(|E| × dims) per-batch partition
//     pass that used to floor every Apply (Options.NoPostingLists keeps the
//     old pass as the measured ablation baseline).
//
//  2. A tracked candidate pool — the "guarded frontier": the exact counts
//     (LWR, LW, Hom, R, E) of every GR currently satisfying Definition 5
//     condition (1). The pool is a superset of the top-k (it also holds
//     generality-blocked candidates, which batches can unblock when their
//     blocker decays below the thresholds), so conditions (2) and (3) can
//     be re-applied exactly after every batch with the same
//     most-general-first merge the parallel engine uses. Under
//     Options.PoolCap the pool is bounded; see trimPool for the exactness
//     argument (score-ordered spill + re-mine-on-underflow).
//
//  3. A scoped re-mine covering every possible pool *entrant*:
//
//     Insertions can promote GRs the pool has never seen (support crossing
//     minSupp, or score rising past minScore). For DeltaSafe metrics a
//     score can only rise when an inserted edge matches the GR's full
//     descriptor l ∧ w ∧ r (see metrics.Metric), and such a GR's
//     first-level SFDF subtree is then keyed by an (attribute, value) pair
//     the inserted edge carries. Re-mining exactly the first-level subtrees
//     whose key matches an inserted edge therefore discovers every
//     possible riser; all other subtrees are provably unchanged-or-falling
//     and are skipped.
//
//     Deletions never raise support, so a deletion-entrant must be a score
//     riser, and for DeleteSafe metrics (score a pure function of LWR, LW,
//     Hom) a score rises only when a deleted edge matched the GR's l ∧ w
//     without matching r — shrinking the denominator. Such a GR's
//     first-level LEFT or EDGE subtree is keyed by a value the deleted edge
//     carries, so the insertion argument dualises — except for the root
//     RIGHT block, whose GRs have empty l ∧ w (which every edge matches):
//     ANY deletion can raise their scores, so a batch containing deletions
//     re-mines every root RIGHT subtree. That block only ever extends the
//     RHS, so it is the cheapest of the three.
//
//     This is the same candidate-union soundness argument the parallel
//     engine makes for its task decomposition (parallel.go), applied to the
//     subset of tasks the batch touches. Metrics that are not DeltaSafe
//     (the lift family, whose scores can rise when |E| grows) rebuild the
//     pool every batch; metrics that are DeltaSafe but not DeleteSafe
//     (gain, which reads E) rebuild only for batches containing deletions.
//
// Floors are decrement-safe by construction: nothing about condition (3) is
// persisted across batches. Every Apply re-derives the k-th best score from
// the surviving pool in assemble — a deletion that demotes or evicts a
// current top-k member simply yields a lower merged floor next batch,
// whereas a CAS-raised floor carried across batches (the parallel engine's
// in-run device) would wrongly keep pruning at the stale, higher value.
//
// Exactness: after every Apply, the returned top-k equals a fresh batch
// mine of the surviving graph under the engine's effective options. Like
// the parallel engine, a dynamic floor forces ExactGenerality so condition
// (2) is order-independent; the oracle tests in incremental_test.go and
// dynamic_test.go assert the equivalence after every batch, for every
// metric, in both floor modes.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/intern"
	"grminer/internal/metrics"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// EdgeInsert is one edge to ingest: endpoints plus edge attribute values
// (one per schema edge attribute, in order).
//
// grlint:wire v1
type EdgeInsert struct {
	Src, Dst int
	Vals     []graph.Value
}

// EdgeDelete is one edge retraction: it removes one live edge matching the
// endpoints and edge attribute values exactly (a multigraph can hold several
// such edges; one unspecified instance is removed). Deletions resolve
// against the graph as it stood BEFORE the batch — a batch cannot delete an
// edge it also inserts — and a retraction matching no pre-batch live edge
// rejects the whole batch.
//
// grlint:wire v2
type EdgeDelete struct {
	Src, Dst int
	Vals     []graph.Value
}

// Batch is one mixed change set for ApplyBatch. Because deletions resolve
// against the pre-batch graph, the two slices commute and carry no internal
// order.
type Batch struct {
	Ins []EdgeInsert
	Del []EdgeDelete
}

// IncStats describes the work one Apply batch performed (Cumulative sums
// them over the engine's lifetime).
type IncStats struct {
	// Batches is 1 for a single Apply; cumulative totals sum it.
	Batches int
	// Edges is the number of edges inserted.
	Edges int
	// Deleted is the number of edges retracted.
	Deleted int
	// Tracked is the pool size after the batch.
	Tracked int
	// Recounted is the number of pool entries whose counts were
	// delta-updated against the batch.
	Recounted int
	// Dropped counts pool entries whose score decayed below minScore.
	Dropped int
	// SubtreesRemined / SubtreesTotal report the scoped re-mine's
	// selectivity over first-level SFDF subtrees (equal on a full rebuild).
	SubtreesRemined int
	SubtreesTotal   int
	// FullRemines counts batches that rebuilt the pool from scratch
	// (non-DeltaSafe metric, negative minScore, or a deletion under a
	// metric that is not DeleteSafe).
	FullRemines int
	// Spilled counts pool entries spilled past Options.PoolCap;
	// UnderflowRemines counts batches whose bounded pool could not prove
	// the top-k independent of the spilled frontier and re-mined the
	// complete pool before answering.
	Spilled          int
	UnderflowRemines int
	// Duration is the wall-clock Apply time.
	Duration time.Duration
}

// add accumulates b into s.
func (s *IncStats) add(b IncStats) {
	s.Batches += b.Batches
	s.Edges += b.Edges
	s.Deleted += b.Deleted
	s.Tracked = b.Tracked
	s.Recounted += b.Recounted
	s.Dropped += b.Dropped
	s.SubtreesRemined += b.SubtreesRemined
	s.SubtreesTotal += b.SubtreesTotal
	s.FullRemines += b.FullRemines
	s.Spilled += b.Spilled
	s.UnderflowRemines += b.UnderflowRemines
	s.Duration += b.Duration
}

// tracked is one pool entry: a condition-(1) GR with its exact counts.
type tracked struct {
	gr       gr.GR
	c        metrics.Counts
	score    float64
	betaMask uint64
}

// densePool is the tracked candidate pool, indexed by interned GR id: a
// dense entry array plus an id→slot table (slot+1; 0 means absent). Ids come
// from the store's persistent dictionary, so slots stay valid across batches
// and compactions; upsert/delete are slice probes instead of the hash of a
// formatted GR key, and a delete swap-removes so recount's iteration stays
// dense. The zero value is an empty pool.
type densePool struct {
	slots   []int32
	entries []tracked
	ids     []intern.GRID
}

func (p *densePool) len() int { return len(p.entries) }

// upsert records or refreshes the entry for id.
func (p *densePool) upsert(id intern.GRID, t tracked) {
	if int(id) < len(p.slots) {
		if s := p.slots[id]; s != 0 {
			p.entries[s-1] = t
			return
		}
	} else {
		p.slots = append(p.slots, make([]int32, int(id)+1-len(p.slots))...)
	}
	p.entries = append(p.entries, t)
	p.ids = append(p.ids, id)
	p.slots[id] = int32(len(p.entries))
}

// deleteAt swap-removes the entry at dense index i. Iterating callers must
// re-examine index i (it now holds the former last entry) instead of
// advancing.
func (p *densePool) deleteAt(i int) {
	id := p.ids[i]
	last := len(p.entries) - 1
	p.entries[i] = p.entries[last]
	p.ids[i] = p.ids[last]
	p.slots[p.ids[i]] = int32(i) + 1
	p.entries = p.entries[:last]
	p.ids = p.ids[:last]
	p.slots[id] = 0
}

// delete removes the entry for id if present.
func (p *densePool) delete(id intern.GRID) {
	if int(id) < len(p.slots) {
		if s := p.slots[id]; s != 0 {
			p.deleteAt(int(s) - 1)
		}
	}
}

// get returns id's tracked entry, if present.
func (p *densePool) get(id intern.GRID) (tracked, bool) {
	if int(id) < len(p.slots) {
		if s := p.slots[id]; s != 0 {
			return p.entries[s-1], true
		}
	}
	return tracked{}, false
}

// reset empties the pool in O(occupied), keeping all allocations.
func (p *densePool) reset() {
	for _, id := range p.ids {
		p.slots[id] = 0
	}
	p.entries = p.entries[:0]
	p.ids = p.ids[:0]
}

// Incremental maintains the top-k GRs of a growing network. It owns the
// graph passed to NewIncremental (edges are appended to it) and is not safe
// for concurrent use.
type Incremental struct {
	g      *graph.Graph
	st     *store.Store
	opt    Options
	metric metrics.Metric
	// deltaSafe gates the scoped path for insertions; deleteSafe
	// additionally gates it for batches containing deletions. See
	// metrics.Metric.DeltaSafe / DeleteSafe.
	deltaSafe  bool
	deleteSafe bool
	pool       densePool
	// dict is the store's persistent interning dictionary (ids stable across
	// batches and compactions); scr, aff, and mergeScratch are the engine's
	// steady-state allocation set — every Apply recounts, re-mines, and
	// assembles out of these instead of rebuilding maps (DESIGN.md §7). The
	// engine is the store's exclusive writer, so single-owner use holds.
	dict         *intern.Dict
	scr          *minerScratch
	aff          affectedKeys
	mergeScratch []gr.Scored
	// spillFloor is the highest score ever spilled past Options.PoolCap
	// since the pool was last complete (-Inf when nothing is spilled);
	// spilled records whether the frontier is non-empty. Together they are
	// the bounded pool's proof obligation: a merged top-k whose k-th score
	// beats spillFloor is provably unaffected by every spilled entry.
	spillFloor float64
	spilled    bool
	last       *Result
	cum        IncStats
}

// NewIncremental builds the compact store for g, runs one full mine to seed
// the tracked pool, and returns the engine. Options follow MineStore, with
// the parallel engine's normalization: a dynamic floor forces
// ExactGenerality so the maintained result is order-independent (the
// batch-equivalent reference is a fresh mine under Options()).
func NewIncremental(g *graph.Graph, opt Options) (*Incremental, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if n := len(g.Schema().Node); n > 64 {
		return nil, fmt.Errorf("core: %d node attributes exceed the supported maximum of 64", n)
	}
	if opt.DynamicFloor && !opt.NoGeneralityFilter {
		// Mirror the parallel engine: order-independent blocking is what
		// makes "maintained result ≡ fresh mine" well-defined under a
		// dynamic floor (see Options.ExactGenerality).
		opt.ExactGenerality = true
	}
	inc := &Incremental{
		g:      g,
		st:     store.Build(g),
		opt:    opt,
		metric: opt.Metric,
		deltaSafe: opt.Metric.DeltaSafe && !opt.Metric.NeedsR &&
			opt.MinScore >= 0,
		deleteSafe: opt.Metric.DeleteSafe,
		spillFloor: math.Inf(-1),
	}
	if !opt.NoPostingLists {
		inc.st.EnablePostings()
	}
	inc.dict = inc.st.Dict()
	inc.scr = newMinerScratch(inc.dict)
	var stats Stats
	var seedStats IncStats
	start := time.Now()
	inc.rebuildPool(&stats)
	inc.last = inc.assembleBounded(&stats, &seedStats, start)
	inc.cum.Spilled += seedStats.Spilled
	inc.cum.Tracked = inc.pool.len()
	return inc, nil
}

// Options returns the engine's effective (normalized) options — the options
// a batch mine must use to reproduce the maintained result.
func (inc *Incremental) Options() Options { return inc.opt }

// Result returns the current top-k (the result of the last Apply, or the
// seed mine). The returned value is shared; callers must not mutate it.
func (inc *Incremental) Result() *Result { return inc.last }

// Cumulative returns lifetime totals across all Apply calls.
func (inc *Incremental) Cumulative() IncStats { return inc.cum }

// Explain returns the exact maintained counts of q from the tracked
// candidate pool, or false when q is not tracked (below the support
// threshold, spilled under PoolCap, or never a condition-(1) candidate) —
// callers then fall back to a full-scan metrics.Eval. Note Counts.R is only
// tracked when the engine's metric needs it. Explain interns q through the
// engine's dictionary, so like ApplyBatch it must not run concurrently with
// other engine calls.
func (inc *Incremental) Explain(q gr.GR) (metrics.Counts, bool) {
	t, ok := inc.pool.get(inc.dict.GR(q))
	if !ok {
		return metrics.Counts{}, false
	}
	return t.c, true
}

// Apply ingests one batch of edge insertions and returns the updated top-k.
// It is ApplyBatch with no deletions.
func (inc *Incremental) Apply(edges []EdgeInsert) (*Result, IncStats, error) {
	return inc.ApplyBatch(Batch{Ins: edges})
}

// ApplyBatch ingests one mixed batch of insertions and deletions and returns
// the updated top-k. The whole batch is validated before any state changes:
// a malformed insert, or a retraction matching no pre-batch live edge,
// rejects the batch with an error and leaves the engine (and the owned
// graph) untouched. Deletions resolve against the pre-batch edge set, so the
// two slices commute.
func (inc *Incremental) ApplyBatch(b Batch) (*Result, IncStats, error) {
	start := time.Now()
	for i, e := range b.Ins {
		if err := inc.g.CheckEdge(e.Src, e.Dst, e.Vals...); err != nil {
			return nil, IncStats{}, fmt.Errorf("core: batch edge %d: %w", i, err)
		}
	}
	delRows, err := resolveDeletes(inc.st, b.Del)
	if err != nil {
		return nil, IncStats{}, err
	}
	for _, e := range b.Ins {
		if _, err := inc.g.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
			// Unreachable after CheckEdge; kept as an invariant guard.
			return nil, IncStats{}, err
		}
	}
	newIDs := inc.st.Append()

	bs := IncStats{Batches: 1, Edges: len(b.Ins), Deleted: len(delRows)}
	var stats Stats
	scoped := inc.deltaSafe && (len(delRows) == 0 || inc.deleteSafe)
	if scoped {
		// Order matters: the recount and the affected-key collection read
		// the doomed rows' values, so both run before the rows tombstone;
		// the re-mine then runs over the surviving store (RemoveEdges may
		// compact and renumber rows — newIDs and delRows are dead after it).
		bs.Recounted, bs.Dropped = inc.recount(newIDs, delRows)
		aff := inc.affected(newIDs, delRows)
		if err := inc.applyDeletes(delRows); err != nil {
			return nil, IncStats{}, err
		}
		bs.SubtreesRemined, bs.SubtreesTotal = inc.remineAffected(aff, &stats)
	} else if len(newIDs) > 0 || len(delRows) > 0 {
		// Full rebuild: the whole tree is re-walked, so no subtree
		// selectivity is reported (SubtreesRemined/Total stay 0). The
		// rebuild recovers a complete pool, so the spilled frontier (if
		// any) is subsumed and its floor resets.
		if err := inc.applyDeletes(delRows); err != nil {
			return nil, IncStats{}, err
		}
		inc.rebuildPool(&stats)
		bs.FullRemines = 1
	}
	inc.last = inc.assembleBounded(&stats, &bs, start)
	bs.Tracked = inc.pool.len()
	bs.Duration = inc.last.Stats.Duration
	inc.cum.add(bs)
	return inc.last, bs, nil
}

// resolveDeletes maps each retraction to a distinct live store row matching
// its endpoints and edge values exactly, by one pass over the live rows. An
// unmatched retraction is an error (the caller rejects the batch unmutated).
func resolveDeletes(st *store.Store, dels []EdgeDelete) ([]int32, error) {
	ne := len(st.Graph().Schema().Edge)
	ids, err := resolveRetractions(dels, ne, st.NumRows(), func(e int) (int, int, bool) {
		if !st.Alive(int32(e)) {
			return 0, 0, false
		}
		return int(st.SrcNode(int32(e))), int(st.DstNode(int32(e))), true
	}, func(e, a int) graph.Value {
		return st.EVal(int32(e), a)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]int32, len(ids))
	for i, id := range ids {
		rows[i] = int32(id)
	}
	return rows, nil
}

// resolveRetractions is the shared retraction-resolution loop of the
// single-store engine (over EArray rows), the sharded coordinator, and the
// shard workers (over graph edges): match each EdgeDelete to a distinct
// live edge with identical endpoints and edge values, deterministically
// claiming candidates in id order (a multigraph may hold several; the
// lowest-id unclaimed instance goes). The scan pre-filters by an endpoint
// hash so the common case — a huge edge set, a handful of retractions —
// touches two ints per row, not a per-row formatted key. An unmatched
// retraction is an error; callers reject the whole batch unmutated.
func resolveRetractions(dels []EdgeDelete, ne, numRows int, endpoints func(e int) (src, dst int, alive bool), val func(e, a int) graph.Value) ([]int, error) {
	if len(dels) == 0 {
		return nil, nil
	}
	pack := func(src, dst int) uint64 {
		return uint64(uint32(src))<<32 | uint64(uint32(dst))
	}
	pending := make(map[uint64][]int, len(dels))
	for i, d := range dels {
		if len(d.Vals) != ne {
			return nil, fmt.Errorf("core: batch retraction %d: %d values for %d edge attributes", i, len(d.Vals), ne)
		}
		pending[pack(d.Src, d.Dst)] = append(pending[pack(d.Src, d.Dst)], i)
	}
	ids := make([]int, len(dels))
	matched := 0
	for e := 0; e < numRows && matched < len(dels); e++ {
		src, dst, alive := endpoints(e)
		if !alive {
			continue
		}
		key := pack(src, dst)
		idxs := pending[key]
		if len(idxs) == 0 {
			continue
		}
		for slot, i := range idxs {
			d := dels[i]
			// Re-check the endpoints (the 32-bit pack can collide) and
			// compare the edge values directly.
			if d.Src != src || d.Dst != dst {
				continue
			}
			match := true
			for a := 0; a < ne; a++ {
				if val(e, a) != d.Vals[a] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			ids[i] = e
			pending[key] = append(idxs[:slot], idxs[slot+1:]...)
			matched++
			break
		}
	}
	if matched < len(dels) {
		for _, idxs := range pending {
			if len(idxs) > 0 {
				d := dels[idxs[0]]
				return nil, fmt.Errorf("core: batch retraction %d: no live edge %d->%d with those values",
					idxs[0], d.Src, d.Dst)
			}
		}
	}
	return ids, nil
}

// applyDeletes tombstones the resolved rows in both the owned graph and the
// store (which may compact).
func (inc *Incremental) applyDeletes(delRows []int32) error {
	if len(delRows) == 0 {
		return nil
	}
	for _, row := range delRows {
		if err := inc.g.RemoveEdge(int(inc.st.EdgeID(row))); err != nil {
			return fmt.Errorf("core: retract row %d: %w", row, err)
		}
	}
	return inc.st.RemoveEdges(delRows)
}

// captureOpts derives the options for pool-building mines: unbounded,
// static floor, no generality machinery — the capture hook records every
// condition-(1) candidate with its exact counts.
func (inc *Incremental) captureOpts() Options {
	o := inc.opt
	o.K = 0
	o.DynamicFloor = false
	o.ExactGenerality = false
	o.NoGeneralityFilter = false
	o.Parallelism = 0
	return o
}

// upsert is the capture hook target: record or refresh one pool entry.
func (inc *Incremental) upsert(g gr.GR, c metrics.Counts, score float64) {
	inc.pool.upsert(inc.dict.GR(g), tracked{
		gr: g, c: c, score: score,
		betaMask: betaMaskOf(inc.g.Schema(), g.L, g.R),
	})
}

// rebuildPool re-seeds the pool with a full capture mine over the current
// store (seed mine, the per-batch fallback for non-delta-safe batches, and
// the bounded pool's underflow re-mine). The rebuilt pool is complete, so
// any spilled frontier is subsumed and its floor resets. The pool and the
// mining scratch are reset in place, not reallocated: steady-state rebuilds
// reuse the previous batch's capacity.
func (inc *Incremental) rebuildPool(stats *Stats) {
	inc.pool.reset()
	inc.scr.reset()
	m := newMinerScr(inc.st, inc.captureOpts(), inc.scr)
	m.capture = inc.upsert
	m.run()
	addStats(stats, &m.stats)
	inc.spillFloor = math.Inf(-1)
	inc.spilled = false
}

// recount delta-updates every pool entry against the batch's inserted and
// doomed rows (deletions are still readable — they tombstone only after this
// pass) and drops entries that no longer satisfy condition (1): a score
// decayed below minScore, or — deletions only — a support fallen below
// minSupp. Dropped entries are re-discovered by the scoped re-mine the
// moment a later batch lifts them back over a threshold. Counts stay exact:
// an edge matching l ∧ w moves LW; matching r on top of that moves LWR (and
// by the β-value conflict can never also match l[β]); matching l[β] instead
// moves Hom alongside LW — with inserted rows adding and deleted rows
// subtracting.
func (inc *Incremental) recount(newIDs, delRows []int32) (recounted, dropped int) {
	// NeedsR metrics are never DeltaSafe, so Counts.R needs no maintenance
	// here — only the full-rebuild path serves them.
	totalE := inc.st.NumEdges() - len(delRows)
	for i := 0; i < inc.pool.len(); {
		t := &inc.pool.entries[i]
		changed := false
		for _, e := range newIDs {
			if !matchOn(inc.st.LVal, e, t.gr.L) || !matchOn(inc.st.EVal, e, t.gr.W) {
				continue
			}
			t.c.LW++
			changed = true
			if matchOn(inc.st.RVal, e, t.gr.R) {
				t.c.LWR++
			} else if t.betaMask != 0 && inc.matchHom(e, t) {
				t.c.Hom++
			}
		}
		for _, e := range delRows {
			if !matchOn(inc.st.LVal, e, t.gr.L) || !matchOn(inc.st.EVal, e, t.gr.W) {
				continue
			}
			t.c.LW--
			changed = true
			if matchOn(inc.st.RVal, e, t.gr.R) {
				t.c.LWR--
			} else if t.betaMask != 0 && inc.matchHom(e, t) {
				t.c.Hom--
			}
		}
		t.c.E = totalE
		t.score = inc.metric.Score(t.c)
		if changed {
			recounted++
		}
		if t.score < inc.opt.MinScore || t.c.LWR < inc.opt.MinSupp {
			// Swap-remove: index i now holds a not-yet-visited entry, so the
			// loop re-examines it instead of advancing.
			inc.pool.deleteAt(i)
			dropped++
			continue
		}
		i++
	}
	return recounted, dropped
}

// matchOn reports whether edge e satisfies every condition of d under the
// given per-edge accessor (LVal, EVal, or RVal).
func matchOn(val func(int32, int) graph.Value, e int32, d gr.Descriptor) bool {
	for _, c := range d {
		if val(e, c.Attr) != c.Val {
			return false
		}
	}
	return true
}

// matchHom reports whether edge e (already known to match l ∧ w) counts
// toward the homophily effect l -w-> l[β]: its destination carries the LHS
// value on every β attribute.
func (inc *Incremental) matchHom(e int32, t *tracked) bool {
	return matchHomOn(inc.st, e, t.gr.L, t.betaMask)
}

// matchHomOn is the store-level homophily-effect row test shared by the
// single-store and sharded delta recounts: row e's destination carries the
// LHS value on every attribute of betaMask.
func matchHomOn(st *store.Store, e int32, l gr.Descriptor, betaMask uint64) bool {
	for a := 0; a < len(st.Graph().Schema().Node); a++ {
		if betaMask&(1<<uint(a)) == 0 {
			continue
		}
		lv, _ := l.Get(a)
		if st.RVal(e, a) != lv {
			return false
		}
	}
	return true
}

// affSet is one attribute's affected-value set: a dense membership table
// over the attribute's value domain plus the marked values kept ascending —
// the order counting sort yields its groups in, which lets the bitmap
// descent reproduce the csort walk's candidate sequence exactly. Allocated
// once per attribute and reset in O(marked) between batches.
type affSet struct {
	has  []bool
	vals []graph.Value
}

// mark inserts v (ascending position; no-op when already marked). The
// membership table is sized on first use from the attribute's domain.
func (s *affSet) mark(v graph.Value, domain int) {
	if s.has == nil {
		s.has = make([]bool, domain+1)
	}
	if s.has[v] {
		return
	}
	s.has[v] = true
	i := len(s.vals)
	s.vals = append(s.vals, v)
	for i > 0 && s.vals[i-1] > v {
		s.vals[i] = s.vals[i-1]
		i--
	}
	s.vals[i] = v
}

func (s *affSet) empty() bool { return len(s.vals) == 0 }

func (s *affSet) contains(v graph.Value) bool { return int(v) < len(s.has) && s.has[v] }

func (s *affSet) reset() {
	for _, v := range s.vals {
		s.has[v] = false
	}
	s.vals = s.vals[:0]
}

// affectedKeys is the scoped re-mine's work list: for each block, the
// (attribute, value) first-level subtree keys a batch can have changed, plus
// the AllRight flag deletions raise (every root RIGHT subtree holds GRs with
// empty l ∧ w, which every deleted edge matched — see the package comment).
type affectedKeys struct {
	L, R     []affSet
	W        []affSet
	AllRight bool
}

// reset empties every set (allocations kept) for reuse by the next batch.
func (aff *affectedKeys) reset() {
	for i := range aff.L {
		aff.L[i].reset()
		aff.R[i].reset()
	}
	for i := range aff.W {
		aff.W[i].reset()
	}
	aff.AllRight = false
}

// collectAffected gathers the affected subtree keys from the batch's
// inserted rows and doomed rows (called before the latter tombstone, while
// their values are still readable). Inserted rows mark all three blocks
// (a riser's full descriptor is carried by the inserted edge); deleted rows
// mark only LEFT and EDGE keys — a deletion-riser's l ∧ w is carried by the
// deleted edge, but its RHS need not be, so deletions flip AllRight instead.
func collectAffected(st *store.Store, newIDs, delRows []int32) *affectedKeys {
	aff := &affectedKeys{}
	collectAffectedInto(aff, st, newIDs, delRows)
	return aff
}

// collectAffectedInto is collectAffected into a reusable set: the
// incremental engines keep one affectedKeys per engine and refill it each
// batch instead of allocating per-attribute maps.
func collectAffectedInto(aff *affectedKeys, st *store.Store, newIDs, delRows []int32) {
	schema := st.Graph().Schema()
	nv, ne := len(schema.Node), len(schema.Edge)
	if aff.L == nil {
		aff.L = make([]affSet, nv)
		aff.R = make([]affSet, nv)
		aff.W = make([]affSet, ne)
	}
	aff.reset()
	mark := func(sets []affSet, a int, v graph.Value, domain int) {
		if v == graph.Null {
			return
		}
		sets[a].mark(v, domain)
	}
	for _, e := range newIDs {
		for a := 0; a < nv; a++ {
			mark(aff.L, a, st.LVal(e, a), schema.Node[a].Domain)
			mark(aff.R, a, st.RVal(e, a), schema.Node[a].Domain)
		}
		for a := 0; a < ne; a++ {
			mark(aff.W, a, st.EVal(e, a), schema.Edge[a].Domain)
		}
	}
	for _, e := range delRows {
		aff.AllRight = true
		for a := 0; a < nv; a++ {
			mark(aff.L, a, st.LVal(e, a), schema.Node[a].Domain)
		}
		for a := 0; a < ne; a++ {
			mark(aff.W, a, st.EVal(e, a), schema.Edge[a].Domain)
		}
	}
}

// affected is the engine-side collectAffected, refilling the per-engine set.
func (inc *Incremental) affected(newIDs, delRows []int32) *affectedKeys {
	collectAffectedInto(&inc.aff, inc.st, newIDs, delRows)
	return &inc.aff
}

// rightSubtreeAffected decides whether a root RIGHT subtree with n live
// edges in its partition needs re-mining. Insert-marked subtrees always do.
// In deletion mode (aff.AllRight) every RIGHT subtree is a potential riser —
// its GRs' empty l ∧ w matches every deleted edge — but a sharp score bound
// prunes most of them: every GR in the subtree has LW = |E|, Hom = 0 (empty
// LHS ⇒ empty β, so nhp degenerates to conf throughout), and LWR ≤ n, and
// every DeleteSafe metric is non-decreasing in LWR at fixed LW, so
// Score({LWR: n, LW: E, E: E}) bounds every score below the subtree from
// above. A subtree whose bound misses minScore holds no condition-(1)
// entrant and is skipped — the saving that keeps deletion batches from
// re-walking the whole RIGHT block.
func rightSubtreeAffected(opt Options, aff *affectedKeys, attr int, val graph.Value, n, liveE int) bool {
	if aff.R[attr].contains(val) {
		return true
	}
	if !aff.AllRight {
		return false
	}
	bound := opt.Metric.Score(metrics.Counts{LWR: n, LW: liveE, E: liveE})
	return bound >= opt.MinScore
}

// remineAffected re-mines exactly the first-level SFDF subtrees the batch
// can have changed, upserting every candidate found into the pool.
//
// Scoped re-mining is only sound when the metric cannot raise a score
// outside the affected subtrees.
//
// grlint:requires DeltaSafe DeleteSafe
func (inc *Incremental) remineAffected(aff *affectedKeys, stats *Stats) (remined, total int) {
	inc.scr.reset()
	return remineAffectedSubtrees(inc.st, inc.captureOpts(), aff, inc.upsert, inc.scr, stats)
}

// remineAffectedSubtrees re-mines exactly the first-level SFDF subtrees in
// the affected set, feeding every candidate found to the capture hook. The
// enumeration mirrors the decomposition of parallel.go's buildTasks (root
// RIGHT, EDGE, and LEFT blocks) so every GR of the full walk belongs to
// exactly one subtree. Shared by the single-store incremental engine and
// the per-shard scoped re-mine of the sharded incremental engine.
//
// Two implementations maintain the same pool (the oracle and posting-list
// invariant tests pin their equivalence):
//
//   - reminePostings, the default: first-level partitions come straight from
//     the store's per-(attribute, value) posting lists — no O(|E| × dims)
//     counting-sort pass over the full edge set — and the walk additionally
//     filters every deeper descent by the affected keys (miner.aff), which
//     the entrant argument licenses at every depth, not just the first.
//   - reminePartition, the PR 2 Apply path kept behind NoPostingLists as
//     the measured baseline (`grbench -exp dynamic`): one counting sort
//     over the full edge set per dimension recovers the first-level
//     partitions, and affected subtrees are re-walked in full, exactly as
//     the pre-posting-list engine did.
//
// grlint:requires DeltaSafe DeleteSafe
func remineAffectedSubtrees(st *store.Store, opt Options, aff *affectedKeys, capture func(gr.GR, metrics.Counts, float64), scr *minerScratch, stats *Stats) (remined, total int) {
	if st.PostingsEnabled() {
		return reminePostings(st, opt, aff, capture, scr, stats)
	}
	return reminePartition(st, opt, aff, capture, scr, stats)
}

// reminePostings is the posting-list re-mine: first-level partitions come
// straight from the store's per-(attribute, value) lists, and the deep
// affected-key filter scopes every level below them.
//
// grlint:requires DeltaSafe DeleteSafe
func reminePostings(st *store.Store, opt Options, aff *affectedKeys, capture func(gr.GR, metrics.Counts, float64), scr *minerScratch, stats *Stats) (remined, total int) {
	schema := st.Graph().Schema()
	m := newMinerScr(st, opt, scr)
	m.capture = capture
	m.aff, m.affSkipR = aff, aff.AllRight

	// The full live edge list is only needed as the base partition (the LW
	// denominator) of root RIGHT subtrees; materialise it lazily so
	// insert-only batches that touch no RIGHT subtree skip the O(|E|) walk.
	// First-level partitions land in the depth-1 recursion buffer (the walks
	// below start at depth 2), so per-subtree row slices allocate nothing.
	var all []int32
	sr := rhsOrder(schema, gr.Descriptor(nil).Has)
	if m.opt.StaticRHSOrder {
		sr = staticRHSOrder(schema)
	}
	for pos := 0; pos < len(sr); pos++ {
		attr := sr[pos]
		for val := graph.Value(1); int(val) <= schema.Node[attr].Domain; val++ {
			n := st.LiveCountR(attr, val)
			if n < m.opt.MinSupp {
				continue
			}
			total++
			if !rightSubtreeAffected(opt, aff, attr, val, n, st.NumEdges()) {
				continue
			}
			remined++
			if all == nil {
				all = st.AllEdgesInto(m.scr.allRows)
				m.scr.allRows = all
			}
			rc := &rctx{base: all, sr: sr}
			m.rightGroup(rc, st.RRowsInto(m.buffer(1, n), attr, val), 1, gr.Descriptor(nil).With(attr, val), pos)
		}
	}
	for pos := 0; pos < len(m.swOrder); pos++ {
		attr := m.swOrder[pos]
		for val := graph.Value(1); int(val) <= schema.Edge[attr].Domain; val++ {
			n := st.LiveCountW(attr, val)
			if n < m.opt.MinSupp {
				continue
			}
			total++
			if !aff.W[attr].contains(val) {
				continue
			}
			remined++
			m.edgeGroup(st.WRowsInto(m.buffer(1, n), attr, val), 1, nil, gr.Descriptor(nil).With(attr, val), pos)
		}
	}
	for pos := 0; pos < len(m.slOrder); pos++ {
		attr := m.slOrder[pos]
		for val := graph.Value(1); int(val) <= schema.Node[attr].Domain; val++ {
			n := st.LiveCountL(attr, val)
			if n < m.opt.MinSupp {
				continue
			}
			total++
			if !aff.L[attr].contains(val) {
				continue
			}
			remined++
			m.leftGroup(st.LRowsInto(m.buffer(1, n), attr, val), 1, gr.Descriptor(nil).With(attr, val), pos)
		}
	}
	addStats(stats, &m.stats)
	return remined, total
}

// reminePartition is the PR 2 re-mine, verbatim in behaviour: one counting
// sort over the full edge set per dimension recovers the first-level
// partitions (affected or not), and affected subtrees are re-walked in
// full — no deep affected-key filtering.
//
// grlint:requires DeltaSafe DeleteSafe
func reminePartition(st *store.Store, opt Options, aff *affectedKeys, capture func(gr.GR, metrics.Counts, float64), scr *minerScratch, stats *Stats) (remined, total int) {
	schema := st.Graph().Schema()
	m := newMinerScr(st, opt, scr)
	m.capture = capture
	all := st.AllEdgesInto(m.scr.allRows)
	m.scr.allRows = all
	buf := m.buffer(1, len(all))

	// Root RIGHT block: same dynamic tail order as run()'s empty-LHS rctx.
	sr := rhsOrder(schema, gr.Descriptor(nil).Has)
	if m.opt.StaticRHSOrder {
		sr = staticRHSOrder(schema)
	}
	for pos := 0; pos < len(sr); pos++ {
		attr := sr[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.RVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !rightSubtreeAffected(opt, aff, attr, graph.Value(grp.Val), int(grp.Hi-grp.Lo), st.NumEdges()) {
				continue
			}
			remined++
			rc := &rctx{base: all, sr: sr}
			m.rightGroup(rc, buf[grp.Lo:grp.Hi], 1, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	// Root EDGE block.
	for pos := 0; pos < len(m.swOrder); pos++ {
		attr := m.swOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.EVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !aff.W[attr].contains(graph.Value(grp.Val)) {
				continue
			}
			remined++
			m.edgeGroup(buf[grp.Lo:grp.Hi], 1, nil, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	// Root LEFT block.
	for pos := 0; pos < len(m.slOrder); pos++ {
		attr := m.slOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.LVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !aff.L[attr].contains(graph.Value(grp.Val)) {
				continue
			}
			remined++
			m.leftGroup(buf[grp.Lo:grp.Hi], 1, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	addStats(stats, &m.stats)
	return remined, total
}

// assemble applies Definition 5 conditions (2) and (3) to the pool and
// packages the result. The pool is the complete condition-(1) set, so the
// most-general-first blocker merge is exact — the same argument
// mergeCandidates makes for the static-floor parallel collection. Unlike
// mergeCandidates (a one-shot merge), this runs once per batch over the
// whole pool, so it reuses the engine's candidate scratch and blocker table
// and orders candidates by generality level alone — no per-entry key
// strings. Level order suffices for exactness: a same-level subset relation
// forces equality (equal condition counts), so same-level candidates can
// never block one another, and the top-k list's strict total order (gr.Less)
// makes the retained set independent of same-level insertion order.
func (inc *Incremental) assemble(stats *Stats, d time.Duration) *Result {
	collected := inc.mergeScratch[:0]
	for i := range inc.pool.entries {
		t := &inc.pool.entries[i]
		collected = append(collected, gr.Scored{
			GR: t.gr, Supp: t.c.LWR, Score: t.score, Conf: metrics.Conf(t.c),
		})
	}
	inc.mergeScratch = collected
	var top []gr.Scored
	if inc.opt.NoGeneralityFilter {
		top = topk.MergeItems(inc.opt.K, collected).Items()
	} else {
		sort.Slice(collected, func(i, j int) bool {
			return len(collected[i].GR.L)+len(collected[i].GR.W) <
				len(collected[j].GR.L)+len(collected[j].GR.W)
		})
		bm := inc.scr.blockers
		bm.reset()
		list := topk.New(inc.opt.K)
		for _, s := range collected {
			if bm.blocks(s.GR) {
				stats.Blocked++
				continue
			}
			bm.record(s.GR)
			list.Consider(s)
		}
		top = list.Items()
	}
	stats.Candidates = int64(len(collected))
	stats.Duration = d
	return &Result{TopK: top, Stats: *stats, Options: inc.opt, TotalEdges: inc.st.NumEdges()}
}

// assembleBounded is assemble wrapped in the bounded-pool protocol: when a
// spilled frontier exists and the merged top-k cannot be proven independent
// of it, the complete pool is re-mined from the store (re-mine-on-underflow)
// and the merge repeated — the answer is then exact by the unbounded
// argument. Afterwards the pool is trimmed back under PoolCap. With PoolCap
// unset this is exactly assemble.
func (inc *Incremental) assembleBounded(stats *Stats, bs *IncStats, start time.Time) *Result {
	res := inc.assemble(stats, time.Since(start))
	if inc.opt.PoolCap > 0 {
		if inc.spilled && inc.underflow(res) {
			inc.rebuildPool(stats)
			bs.UnderflowRemines = 1
			res = inc.assemble(stats, time.Since(start))
		}
		bs.Spilled += inc.trimPool()
	}
	return res
}

// underflow reports whether the merged result may depend on a spilled pool
// entry. Every spilled entry's current score is at most spillFloor: its
// score at spill time was, and any rise since would have required a batch
// edge matching its l ∧ w (insertions: full descriptor; deletions: l ∧ w, or
// anything for the empty-l∧w root RIGHT GRs) — exactly the cases whose
// first-level subtrees the scoped re-mine re-walks, re-capturing the entry
// into the pool. So a top-k whose k-th score strictly beats spillFloor, at
// full length, is provably what the unbounded pool would have produced
// (spilled generality blockers are retained by trimPool, so blocking
// decisions cannot depend on the frontier either). Ties are treated as
// underflow: rank order among equal scores could differ.
func (inc *Incremental) underflow(res *Result) bool {
	if len(res.TopK) < inc.opt.K {
		return true
	}
	return res.TopK[len(res.TopK)-1].Score <= inc.spillFloor
}

// trimPool spills the pool down to PoolCap entries, keeping the cap
// best-scoring ones plus — a soft overflow — every would-be-spilled entry
// that generalises a kept one (same RHS, L and W subsets): those are the
// generality blockers condition (2) needs, and dropping one could wrongly
// surface a kept specialisation. Transitivity makes checking against the
// top-cap set sufficient: a blocker's blocker generalises the same kept
// entry. The highest spilled score feeds spillFloor, the underflow bound;
// the floor resets only when rebuildPool recovers the complete pool.
//
// Exactness of the spill itself rests on the re-capture argument in
// underflow's comment: a spilled entry re-enters the pool in the same Apply
// that could raise its score or make it block a new entrant (the batch edge
// driving either change carries the entry's first-level subtree key, or
// deletions re-walk the whole root RIGHT block), so between batches the
// frontier only ever holds entries that are provably irrelevant while the
// k-th score stays above spillFloor.
func (inc *Incremental) trimPool() (spilled int) {
	cap := inc.opt.PoolCap
	if cap <= 0 || inc.pool.len() <= cap {
		return 0
	}
	entries := inc.pool.entries
	order := make([]int32, len(entries))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &entries[order[i]], &entries[order[j]]
		if a.score != b.score {
			return a.score > b.score
		}
		return a.gr.Key() < b.gr.Key()
	})
	kept := order[:cap]
	byRHS := make(map[intern.DescID][]int32, cap)
	if !inc.opt.NoGeneralityFilter {
		for _, i := range kept {
			rid := inc.dict.NodeDesc(entries[i].gr.R)
			byRHS[rid] = append(byRHS[rid], i)
		}
	}
	// Spill ids are collected first: deleting swap-removes dense slots, which
	// would invalidate the index order mid-iteration.
	spillIDs := make([]intern.GRID, 0, len(order)-cap)
	for _, i := range order[cap:] {
		t := &entries[i]
		blocks := false
		for _, k := range byRHS[inc.dict.NodeDesc(t.gr.R)] {
			if t.gr.L.SubsetOf(entries[k].gr.L) && t.gr.W.SubsetOf(entries[k].gr.W) {
				blocks = true
				break
			}
		}
		if blocks {
			continue // retained as a generality blocker (soft overflow)
		}
		spillIDs = append(spillIDs, inc.pool.ids[i])
		if t.score > inc.spillFloor {
			inc.spillFloor = t.score
		}
		inc.spilled = true
		spilled++
	}
	for _, id := range spillIDs {
		inc.pool.delete(id)
	}
	return spilled
}

// betaMaskOf computes β (Equation 4) as a node-attribute bitmask; shared by
// the in-search miner (miner.betaMask) and the pool's delta recount.
func betaMaskOf(schema *graph.Schema, lhs, rhs gr.Descriptor) uint64 {
	var mask uint64
	for _, rc := range rhs {
		if !schema.Node[rc.Attr].Homophily {
			continue
		}
		if lv, ok := lhs.Get(rc.Attr); ok && lv != rc.Val {
			mask |= 1 << uint(rc.Attr)
		}
	}
	return mask
}
