// Incremental top-k GR mining under edge insertions.
//
// The batch miner re-enumerates the whole SFDF tree on every change; this
// file maintains the same result while ingesting edge insertions in batches.
// The engine rests on three pieces:
//
//  1. An append-friendly store: edges are appended to the graph and synced
//     into the compact model with store.Append, which grows LArray/RArray
//     rows as nodes become active and adds EArray rows in a tail segment.
//
//  2. A tracked candidate pool — the "guarded frontier": the exact counts
//     (LWR, LW, Hom, R, E) of every GR currently satisfying Definition 5
//     condition (1). The pool is a superset of the top-k (it also holds
//     generality-blocked candidates, which insertions can unblock when
//     their blocker's score decays below minScore), so conditions (2) and
//     (3) can be re-applied exactly after every batch with the same
//     most-general-first merge the parallel engine uses.
//
//  3. A scoped re-mine: insertions can promote GRs the pool has never seen
//     (support crossing minSupp, or score rising past minScore). For
//     DeltaSafe metrics a score can only *rise* when an inserted edge
//     matches the GR's full descriptor l ∧ w ∧ r (see metrics.Metric), and
//     such a GR's first-level SFDF subtree is then keyed by an
//     (attribute, value) pair the inserted edge carries. Re-mining exactly
//     the first-level subtrees whose key matches an inserted edge therefore
//     discovers every possible riser; all other subtrees are provably
//     unchanged-or-falling and are skipped. This is the same
//     candidate-union soundness argument the parallel engine makes for its
//     task decomposition (parallel.go), applied to the subset of tasks the
//     batch touches. Metrics that are not DeltaSafe (the lift family, whose
//     scores can rise when |E| grows) fall back to a full pool rebuild —
//     still incremental on the store, not on the search.
//
// Exactness: after every Apply, the returned top-k equals a fresh batch
// mine of the grown graph under the engine's effective options. Like the
// parallel engine, a dynamic floor forces ExactGenerality so condition (2)
// is order-independent; the oracle tests in incremental_test.go assert the
// equivalence after every batch, for every metric, in both floor modes.
package core

import (
	"fmt"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

// EdgeInsert is one edge to ingest: endpoints plus edge attribute values
// (one per schema edge attribute, in order).
type EdgeInsert struct {
	Src, Dst int
	Vals     []graph.Value
}

// IncStats describes the work one Apply batch performed (Cumulative sums
// them over the engine's lifetime).
type IncStats struct {
	// Batches is 1 for a single Apply; cumulative totals sum it.
	Batches int
	// Edges is the number of edges ingested.
	Edges int
	// Tracked is the pool size after the batch.
	Tracked int
	// Recounted is the number of pool entries whose counts were
	// delta-updated against the batch.
	Recounted int
	// Dropped counts pool entries whose score decayed below minScore.
	Dropped int
	// SubtreesRemined / SubtreesTotal report the scoped re-mine's
	// selectivity over first-level SFDF subtrees (equal on a full rebuild).
	SubtreesRemined int
	SubtreesTotal   int
	// FullRemines counts batches that rebuilt the pool from scratch
	// (non-DeltaSafe metric or negative minScore).
	FullRemines int
	// Duration is the wall-clock Apply time.
	Duration time.Duration
}

// add accumulates b into s.
func (s *IncStats) add(b IncStats) {
	s.Batches += b.Batches
	s.Edges += b.Edges
	s.Tracked = b.Tracked
	s.Recounted += b.Recounted
	s.Dropped += b.Dropped
	s.SubtreesRemined += b.SubtreesRemined
	s.SubtreesTotal += b.SubtreesTotal
	s.FullRemines += b.FullRemines
	s.Duration += b.Duration
}

// tracked is one pool entry: a condition-(1) GR with its exact counts.
type tracked struct {
	gr       gr.GR
	c        metrics.Counts
	score    float64
	betaMask uint64
}

// Incremental maintains the top-k GRs of a growing network. It owns the
// graph passed to NewIncremental (edges are appended to it) and is not safe
// for concurrent use.
type Incremental struct {
	g      *graph.Graph
	st     *store.Store
	opt    Options
	metric metrics.Metric
	// deltaSafe gates the scoped path; see metrics.Metric.DeltaSafe.
	deltaSafe bool
	pool      map[string]*tracked
	last      *Result
	cum       IncStats
}

// NewIncremental builds the compact store for g, runs one full mine to seed
// the tracked pool, and returns the engine. Options follow MineStore, with
// the parallel engine's normalization: a dynamic floor forces
// ExactGenerality so the maintained result is order-independent (the
// batch-equivalent reference is a fresh mine under Options()).
func NewIncremental(g *graph.Graph, opt Options) (*Incremental, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if n := len(g.Schema().Node); n > 64 {
		return nil, fmt.Errorf("core: %d node attributes exceed the supported maximum of 64", n)
	}
	if opt.DynamicFloor && !opt.NoGeneralityFilter {
		// Mirror the parallel engine: order-independent blocking is what
		// makes "maintained result ≡ fresh mine" well-defined under a
		// dynamic floor (see Options.ExactGenerality).
		opt.ExactGenerality = true
	}
	inc := &Incremental{
		g:      g,
		st:     store.Build(g),
		opt:    opt,
		metric: opt.Metric,
		deltaSafe: opt.Metric.DeltaSafe && !opt.Metric.NeedsR &&
			opt.MinScore >= 0,
		pool: make(map[string]*tracked),
	}
	var stats Stats
	start := time.Now()
	inc.rebuildPool(&stats)
	inc.last = inc.assemble(&stats, time.Since(start))
	inc.cum.Tracked = len(inc.pool)
	return inc, nil
}

// Options returns the engine's effective (normalized) options — the options
// a batch mine must use to reproduce the maintained result.
func (inc *Incremental) Options() Options { return inc.opt }

// Result returns the current top-k (the result of the last Apply, or the
// seed mine). The returned value is shared; callers must not mutate it.
func (inc *Incremental) Result() *Result { return inc.last }

// Cumulative returns lifetime totals across all Apply calls.
func (inc *Incremental) Cumulative() IncStats { return inc.cum }

// Apply ingests one batch of edge insertions and returns the updated top-k.
// The whole batch is validated against the schema before any state changes:
// a malformed edge rejects the batch with an error and leaves the engine
// (and the owned graph) untouched.
func (inc *Incremental) Apply(edges []EdgeInsert) (*Result, IncStats, error) {
	start := time.Now()
	for i, e := range edges {
		if err := inc.g.CheckEdge(e.Src, e.Dst, e.Vals...); err != nil {
			return nil, IncStats{}, fmt.Errorf("core: batch edge %d: %w", i, err)
		}
	}
	for _, e := range edges {
		if _, err := inc.g.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
			// Unreachable after CheckEdge; kept as an invariant guard.
			return nil, IncStats{}, err
		}
	}
	newIDs := inc.st.Append()

	bs := IncStats{Batches: 1, Edges: len(edges)}
	var stats Stats
	if len(newIDs) > 0 {
		if inc.deltaSafe {
			bs.Recounted, bs.Dropped = inc.recount(newIDs)
			bs.SubtreesRemined, bs.SubtreesTotal = inc.remineAffected(newIDs, &stats)
		} else {
			// Full rebuild: the whole tree is re-walked, so no subtree
			// selectivity is reported (SubtreesRemined/Total stay 0).
			inc.rebuildPool(&stats)
			bs.FullRemines = 1
		}
	}
	inc.last = inc.assemble(&stats, time.Since(start))
	bs.Tracked = len(inc.pool)
	bs.Duration = inc.last.Stats.Duration
	inc.cum.add(bs)
	return inc.last, bs, nil
}

// captureOpts derives the options for pool-building mines: unbounded,
// static floor, no generality machinery — the capture hook records every
// condition-(1) candidate with its exact counts.
func (inc *Incremental) captureOpts() Options {
	o := inc.opt
	o.K = 0
	o.DynamicFloor = false
	o.ExactGenerality = false
	o.NoGeneralityFilter = false
	o.Parallelism = 0
	return o
}

// upsert is the capture hook target: record or refresh one pool entry.
func (inc *Incremental) upsert(g gr.GR, c metrics.Counts, score float64) {
	inc.pool[g.Key()] = &tracked{
		gr: g, c: c, score: score,
		betaMask: betaMaskOf(inc.g.Schema(), g.L, g.R),
	}
}

// rebuildPool re-seeds the pool with a full capture mine over the current
// store (seed mine, and the per-batch fallback for non-DeltaSafe metrics).
func (inc *Incremental) rebuildPool(stats *Stats) {
	inc.pool = make(map[string]*tracked, len(inc.pool))
	m := newMiner(inc.st, inc.captureOpts())
	m.capture = inc.upsert
	m.run()
	addStats(stats, &m.stats)
}

// recount delta-updates every pool entry against the inserted edges and
// drops entries whose score decayed below minScore (their support cannot
// have decayed, and a later score rise requires a full-descriptor match,
// which re-discovers them through the scoped re-mine). Counts stay exact:
// an inserted edge matching l ∧ w grows LW; matching r on top of that grows
// LWR (and by the β-value conflict can never also match l[β]); matching
// l[β] instead grows Hom alongside LW.
func (inc *Incremental) recount(newIDs []int32) (recounted, dropped int) {
	// NeedsR metrics are never DeltaSafe, so Counts.R needs no maintenance
	// here — only the full-rebuild path serves them.
	totalE := inc.st.NumEdges()
	for key, t := range inc.pool {
		changed := false
		for _, e := range newIDs {
			if !matchOn(inc.st.LVal, e, t.gr.L) || !matchOn(inc.st.EVal, e, t.gr.W) {
				continue
			}
			t.c.LW++
			changed = true
			if matchOn(inc.st.RVal, e, t.gr.R) {
				t.c.LWR++
			} else if t.betaMask != 0 && inc.matchHom(e, t) {
				t.c.Hom++
			}
		}
		t.c.E = totalE
		t.score = inc.metric.Score(t.c)
		if changed {
			recounted++
		}
		if t.score < inc.opt.MinScore {
			delete(inc.pool, key)
			dropped++
		}
	}
	return recounted, dropped
}

// matchOn reports whether edge e satisfies every condition of d under the
// given per-edge accessor (LVal, EVal, or RVal).
func matchOn(val func(int32, int) graph.Value, e int32, d gr.Descriptor) bool {
	for _, c := range d {
		if val(e, c.Attr) != c.Val {
			return false
		}
	}
	return true
}

// matchHom reports whether edge e (already known to match l ∧ w) counts
// toward the homophily effect l -w-> l[β]: its destination carries the LHS
// value on every β attribute.
func (inc *Incremental) matchHom(e int32, t *tracked) bool {
	return matchHomOn(inc.st, e, t.gr.L, t.betaMask)
}

// matchHomOn is the store-level homophily-effect row test shared by the
// single-store and sharded delta recounts: row e's destination carries the
// LHS value on every attribute of betaMask.
func matchHomOn(st *store.Store, e int32, l gr.Descriptor, betaMask uint64) bool {
	for a := 0; a < len(st.Graph().Schema().Node); a++ {
		if betaMask&(1<<uint(a)) == 0 {
			continue
		}
		lv, _ := l.Get(a)
		if st.RVal(e, a) != lv {
			return false
		}
	}
	return true
}

// remineAffected re-mines exactly the first-level SFDF subtrees an inserted
// edge can change, upserting every candidate found into the pool.
func (inc *Incremental) remineAffected(newIDs []int32, stats *Stats) (remined, total int) {
	return remineAffectedSubtrees(inc.st, inc.captureOpts(), newIDs, inc.upsert, stats)
}

// remineAffectedSubtrees re-mines exactly the first-level SFDF subtrees
// whose (dimension, attribute, value) key appears on one of the store rows
// in newIDs, feeding every candidate found to the capture hook. The
// enumeration mirrors the decomposition of parallel.go's buildTasks (root
// RIGHT, EDGE, and LEFT blocks) so every GR of the full walk belongs to
// exactly one subtree. Shared by the single-store incremental engine and
// the per-shard scoped re-mine of the sharded incremental engine.
func remineAffectedSubtrees(st *store.Store, opt Options, newIDs []int32, capture func(gr.GR, metrics.Counts, float64), stats *Stats) (remined, total int) {
	schema := st.Graph().Schema()
	nv, ne := len(schema.Node), len(schema.Edge)
	affL := make([]map[graph.Value]bool, nv)
	affR := make([]map[graph.Value]bool, nv)
	affW := make([]map[graph.Value]bool, ne)
	mark := func(sets []map[graph.Value]bool, a int, v graph.Value) {
		if v == graph.Null {
			return
		}
		if sets[a] == nil {
			sets[a] = make(map[graph.Value]bool)
		}
		sets[a][v] = true
	}
	for _, e := range newIDs {
		for a := 0; a < nv; a++ {
			mark(affL, a, st.LVal(e, a))
			mark(affR, a, st.RVal(e, a))
		}
		for a := 0; a < ne; a++ {
			mark(affW, a, st.EVal(e, a))
		}
	}

	m := newMiner(st, opt)
	m.capture = capture
	all := st.AllEdges()
	buf := m.buffer(1, len(all))

	// Root RIGHT block: same dynamic tail order as run()'s empty-LHS rctx.
	sr := rhsOrder(schema, gr.Descriptor(nil).Has)
	if m.opt.StaticRHSOrder {
		sr = staticRHSOrder(schema)
	}
	for pos := 0; pos < len(sr); pos++ {
		attr := sr[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.RVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !affR[attr][graph.Value(grp.Val)] {
				continue
			}
			remined++
			rc := &rctx{base: all, sr: sr}
			m.rightGroup(rc, buf[grp.Lo:grp.Hi], 1, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	// Root EDGE block.
	for pos := 0; pos < len(m.swOrder); pos++ {
		attr := m.swOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.EVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !affW[attr][graph.Value(grp.Val)] {
				continue
			}
			remined++
			m.edgeGroup(buf[grp.Lo:grp.Hi], 1, nil, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	// Root LEFT block.
	for pos := 0; pos < len(m.slOrder); pos++ {
		attr := m.slOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.LVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) || int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				continue
			}
			total++
			if !affL[attr][graph.Value(grp.Val)] {
				continue
			}
			remined++
			m.leftGroup(buf[grp.Lo:grp.Hi], 1, gr.Descriptor(nil).With(attr, graph.Value(grp.Val)), pos)
		}
	}
	addStats(stats, &m.stats)
	return remined, total
}

// assemble applies Definition 5 conditions (2) and (3) to the pool and
// packages the result. The pool is the complete condition-(1) set, so the
// most-general-first blocker merge is exact — the same argument
// mergeCandidates makes for the static-floor parallel collection.
func (inc *Incremental) assemble(stats *Stats, d time.Duration) *Result {
	collected := make([]gr.Scored, 0, len(inc.pool))
	for _, t := range inc.pool {
		collected = append(collected, gr.Scored{
			GR: t.gr, Supp: t.c.LWR, Score: t.score, Conf: metrics.Conf(t.c),
		})
	}
	mergeOpt := inc.opt
	mergeOpt.ExactGenerality = false // pool is complete: blocker-map merge is exact
	top := mergeCandidates(collected, mergeOpt, stats)
	stats.Candidates = int64(len(collected))
	stats.Duration = d
	return &Result{TopK: top, Stats: *stats, Options: inc.opt, TotalEdges: inc.st.NumEdges()}
}

// betaMaskOf computes β (Equation 4) as a node-attribute bitmask; shared by
// the in-search miner (miner.betaMask) and the pool's delta recount.
func betaMaskOf(schema *graph.Schema, lhs, rhs gr.Descriptor) uint64 {
	var mask uint64
	for _, rc := range rhs {
		if !schema.Node[rc.Attr].Homophily {
			continue
		}
		if lv, ok := lhs.Get(rc.Attr); ok && lv != rc.Val {
			mask |= 1 << uint(rc.Attr)
		}
	}
	return mask
}
