package core_test

import (
	"math/rand"
	"testing"

	"grminer/internal/core"
	"grminer/internal/datagen"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// TestIncrementalShardedOracle streams random graphs through the sharded
// incremental engine in random batch sizes and asserts the maintained
// top-k equals a fresh single-store mine after every batch — for every
// metric (including the lift family, which the sharded engine serves
// without full re-mines), both floor modes, both strategies, and shard
// counts cycling 2-8.
func TestIncrementalShardedOracle(t *testing.T) {
	seeds := []int64{0, 1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		full := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		base := full.NumEdges() / 2
		r := rand.New(rand.NewSource(seed + 300))
		cycle := 0
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				cycle++
				so := core.ShardOptions{
					Shards:   cycle%7 + 2,
					Strategy: shardStrategies[cycle%2],
				}
				opt := core.Options{
					MinSupp: 1, MinScore: oracleThresholds[m.Name], K: 10,
					DynamicFloor: dyn, Metric: m,
				}
				inc, err := core.NewIncrementalSharded(prefixGraph(full, base), opt, so)
				if err != nil {
					t.Fatal(err)
				}
				label := m.Name + "-sharded"
				if dyn {
					label += "-dynamic"
				}
				ref, err := core.Mine(prefixGraph(full, base), inc.Options())
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, label+"-seed", inc.Result().TopK, ref.TopK)
				//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
				for cut := base; cut < full.NumEdges(); {
					next := cut + 1 + r.Intn(9)
					if next > full.NumEdges() {
						next = full.NumEdges()
					}
					res, bs, err := inc.Apply(insertsFor(full, cut, next))
					if err != nil {
						t.Fatalf("%s: apply [%d,%d): %v", label, cut, next, err)
					}
					if bs.FullRemines != 0 {
						t.Fatalf("%s: sharded engine fell back to a full re-mine", label)
					}
					cut = next
					ref, err := core.Mine(prefixGraph(full, cut), inc.Options())
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, label+"-stream", res.TopK, ref.TopK)
				}
			}
		}
	}
}

// Batches must land on the shard the deterministic strategy owns: after any
// stream, the engine's per-shard edge counts equal a fresh partition of the
// grown graph.
func TestIncrementalShardedRoutesToOwningShard(t *testing.T) {
	full := randomGraph(9, true, true)
	base := full.NumEdges() / 2
	for _, strategy := range shardStrategies {
		inc, err := core.NewIncrementalSharded(prefixGraph(full, base),
			core.Options{MinSupp: 1, MinScore: 0.3, K: 5},
			core.ShardOptions{Shards: 4, Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
		for cut := base; cut < full.NumEdges(); {
			next := min(cut+7, full.NumEdges())
			if _, _, err := inc.Apply(insertsFor(full, cut, next)); err != nil {
				t.Fatal(err)
			}
			cut = next
		}
		fresh, err := graph.PartitionEdges(full, 4, strategy)
		if err != nil {
			t.Fatal(err)
		}
		for s, part := range fresh {
			if inc.Plan().Edges[s] != len(part) {
				t.Errorf("%s: shard %d holds %d edges, fresh partition has %d",
					strategy, s, inc.Plan().Edges[s], len(part))
			}
		}
	}
}

// A malformed edge anywhere in a batch must reject the whole batch before
// the graph or any shard store changes.
func TestIncrementalShardedRejectsMalformedBatchAtomically(t *testing.T) {
	full := randomGraph(1, true, true)
	inc, err := core.NewIncrementalSharded(prefixGraph(full, full.NumEdges()),
		core.Options{MinSupp: 1, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result()
	edges := before.TotalEdges
	planBefore := append([]int(nil), inc.Plan().Edges...)
	bad := [][]core.EdgeInsert{
		{{Src: 0, Dst: 1, Vals: []graph.Value{1}}, {Src: -1, Dst: 0, Vals: []graph.Value{1}}},
		{{Src: 0, Dst: full.NumNodes() + 7, Vals: []graph.Value{1}}},
		{{Src: 0, Dst: 1, Vals: nil}},
		{{Src: 0, Dst: 1, Vals: []graph.Value{99}}},
	}
	for i, batch := range bad {
		if _, _, err := inc.Apply(batch); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if got := inc.Result(); got.TotalEdges != edges {
		t.Fatalf("rejected batches mutated the graph: %d edges, want %d", got.TotalEdges, edges)
	}
	for s, n := range inc.Plan().Edges {
		if n != planBefore[s] {
			t.Fatalf("rejected batches mutated shard %d: %d edges, want %d", s, n, planBefore[s])
		}
	}
	assertSameResults(t, "sharded-post-reject", inc.Result().TopK, before.TopK)

	// And the engine still ingests a good batch afterwards.
	res, _, err := inc.Apply([]core.EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEdges != edges+1 {
		t.Fatalf("good batch after rejects: %d edges, want %d", res.TotalEdges, edges+1)
	}
}

// An empty batch is a no-op that still returns the current result.
func TestIncrementalShardedEmptyBatch(t *testing.T) {
	g := randomGraph(2, true, false)
	inc, err := core.NewIncrementalSharded(g, core.Options{MinSupp: 1, MinScore: 0.3, K: 5},
		core.ShardOptions{Shards: 2, Strategy: graph.ShardByRHS})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result().TopK
	res, bs, err := inc.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Edges != 0 {
		t.Errorf("empty batch reported %d edges", bs.Edges)
	}
	assertSameResults(t, "sharded-empty-batch", res.TopK, before)
}

// With minSupp high enough that ShardMinSupp > 1, pool entries must enter
// a shard's pool *late* — only when streamed edges push their shard support
// over the lowered threshold — which exercises the scoped-re-mine discovery
// path and the gap-fill skip-bound (shardMinSupp−1 per non-offering shard)
// that the MinSupp=1 oracles never reach. A structured DBLP-like graph
// keeps supports high enough for real crossings.
func TestIncrementalShardedThresholdCrossing(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 1200
	cfg.Pairs = 1800
	full := datagen.DBLP(cfg)
	base := full.NumEdges() * 8 / 10

	for _, tc := range []struct {
		shards  int
		minSupp int
		dyn     bool
	}{
		{2, 8, true},
		{3, 12, false},
	} {
		so := core.ShardOptions{Shards: tc.shards, Strategy: graph.ShardBySource}
		inc, err := core.NewIncrementalSharded(prefixGraph(full, base),
			core.Options{MinSupp: tc.minSupp, MinScore: 0.3, K: 15, DynamicFloor: tc.dyn}, so)
		if err != nil {
			t.Fatal(err)
		}
		if got := inc.Plan().ShardMinSupp; got < 2 {
			t.Fatalf("ShardMinSupp = %d; this test requires a lowered threshold > 1", got)
		}
		seedTracked := inc.Cumulative().Tracked
		//grlint:ignore deadedge cut is a stream position over a static snapshot; insertsFor skips tombstoned rows
		for cut := base; cut < full.NumEdges(); {
			next := min(cut+40, full.NumEdges())
			res, _, err := inc.Apply(insertsFor(full, cut, next))
			if err != nil {
				t.Fatal(err)
			}
			cut = next
			ref, err := core.Mine(prefixGraph(full, cut), inc.Options())
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "threshold-crossing", res.TopK, ref.TopK)
		}
		if inc.Cumulative().Tracked <= seedTracked {
			t.Errorf("shards=%d minSupp=%d: pool never grew (%d entries); no threshold crossing exercised",
				tc.shards, tc.minSupp, seedTracked)
		}
	}
}
