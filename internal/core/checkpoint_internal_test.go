package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// realWorkerSpec builds shard idx's spec of a random partitioned graph —
// the same construction buildShardDeployment runs, so the worker under
// test is exactly what a deployment would host.
func realWorkerSpec(t *testing.T, seed int64, shards, idx int) WorkerSpec {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "A", Domain: 3, Homophily: true},
			{Name: "B", Domain: 2},
		},
		[]graph.Attribute{{Name: "W", Domain: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	g := graph.MustNew(schema, n)
	for v := 0; v < n; v++ {
		if err := g.SetNodeValues(v, graph.Value(r.Intn(4)), graph.Value(r.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 60; e++ {
		if _, err := g.AddEdge(r.Intn(n), r.Intn(n), graph.Value(1+r.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	opt, so, err := normalizeSharded(g, Options{MinSupp: 2, MinScore: 0.1, K: 10}, ShardOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := graph.PartitionEdges(g, so.Shards, so.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	return buildWorkerSpec(g, opt, planFromParts(opt, so, parts), parts[idx], idx)
}

// specDelete retracts spec edge i (by its signature, the wire form of a
// deletion).
func specDelete(spec WorkerSpec, i int) EdgeDelete {
	ne := len(spec.EdgeAttrs)
	return EdgeDelete{
		Src:  int(spec.EdgeSrc[i]),
		Dst:  int(spec.EdgeDst[i]),
		Vals: append([]graph.Value(nil), spec.EdgeVals[i*ne:(i+1)*ne]...),
	}
}

// poolEntry and poolSnapshot expose the maintained pool for comparison,
// including the homophily masks upsert derives.
type poolEntry struct {
	C    metrics.Counts
	Mask uint64
}

func poolSnapshot(w *WorkerState) map[string]poolEntry {
	if w.pool == nil {
		return nil
	}
	out := make(map[string]poolEntry, len(w.pool))
	for k, t := range w.pool {
		out[k] = poolEntry{C: t.c, Mask: t.betaMask}
	}
	return out
}

func sortCands(cands []ShardCandidate) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].GR.Key() < cands[j].GR.Key() })
}

// TestWorkerCheckpointRoundTrip pins the tentpole contract: a worker that
// has seeded its pool and ingested mixed batches (inserts + retractions, so
// the store carries tombstones and the graph a dead edge) checkpoints into
// a blob from which NewWorkerStateFromCheckpoint reproduces it
// bit-identically — same store arrays, same tombstones, same interned ids,
// same maintained pool — and the restored worker behaves identically on
// every subsequent operation.
func TestWorkerCheckpointRoundTrip(t *testing.T) {
	spec := realWorkerSpec(t, 11, 2, 0)
	w, err := NewWorkerState(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Offer(nil); err != nil {
		t.Fatal(err)
	}
	batches := []Batch{
		{
			Ins: []EdgeInsert{{Src: 0, Dst: 1, Vals: []graph.Value{1}}, {Src: 2, Dst: 3, Vals: []graph.Value{2}}},
			Del: []EdgeDelete{specDelete(spec, 0)},
		},
		{
			Ins: []EdgeInsert{{Src: 4, Dst: 5, Vals: []graph.Value{2}}},
			Del: []EdgeDelete{specDelete(spec, 2)},
		},
	}
	for _, b := range batches {
		if _, err := w.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	blob, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewWorkerStateFromCheckpoint(spec, blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.st.Validate(); err != nil {
		t.Fatalf("restored store invalid: %v", err)
	}
	if r.NumEdges() != w.NumEdges() {
		t.Fatalf("restored NumEdges %d, want %d", r.NumEdges(), w.NumEdges())
	}
	if !w.g.HasDeadEdges() || r.g.NumEdges() != w.g.NumEdges() || r.g.NumLiveEdges() != w.g.NumLiveEdges() {
		t.Fatalf("graph edge log differs: %d/%d rows, %d/%d live (and the fixture must carry tombstones)",
			r.g.NumEdges(), w.g.NumEdges(), r.g.NumLiveEdges(), w.g.NumLiveEdges())
	}
	if !reflect.DeepEqual(r.st.State(), w.st.State()) {
		t.Error("restored store arrays differ from the original's")
	}
	if !reflect.DeepEqual(poolSnapshot(r), poolSnapshot(w)) {
		t.Error("restored maintained pool differs from the original's")
	}

	// Identical onward behavior: the same mixed batch produces the same
	// reply, and the same re-seed produces the same pool.
	next := Batch{
		Ins: []EdgeInsert{{Src: 6, Dst: 7, Vals: []graph.Value{1}}},
		Del: []EdgeDelete{specDelete(spec, 4)},
	}
	repW, errW := w.Ingest(next)
	repR, errR := r.Ingest(next)
	if (errW == nil) != (errR == nil) {
		t.Fatalf("post-restore ingest diverged: %v vs %v", errW, errR)
	}
	sortCands(repW.Deltas)
	sortCands(repR.Deltas)
	if repW.NumEdges != repR.NumEdges || !reflect.DeepEqual(repW.Deltas, repR.Deltas) {
		t.Errorf("post-restore ingest replies differ:\n got %+v\nwant %+v", repR, repW)
	}
	ow, _, err := w.Offer(nil)
	if err != nil {
		t.Fatal(err)
	}
	or, _, err := r.Offer(nil)
	if err != nil {
		t.Fatal(err)
	}
	sortCands(ow)
	sortCands(or)
	if !reflect.DeepEqual(ow, or) {
		t.Error("post-restore seed offers differ")
	}
}

// TestCheckpointRejectsMismatch pins the fail-closed checks: a blob must
// refuse a foreign shard's spec, undecodable bytes, and a version this
// build does not speak.
func TestCheckpointRejectsMismatch(t *testing.T) {
	spec0 := realWorkerSpec(t, 11, 2, 0)
	spec1 := realWorkerSpec(t, 11, 2, 1)
	w, err := NewWorkerState(spec0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Offer(nil); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewWorkerStateFromCheckpoint(spec1, blob); err == nil ||
		!strings.Contains(err.Error(), "offered to shard") {
		t.Errorf("foreign shard's spec accepted: %v", err)
	}
	if _, err := NewWorkerStateFromCheckpoint(spec0, []byte("not a checkpoint")); err == nil {
		t.Error("garbage blob accepted")
	}

	var img checkpointImage
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&img); err != nil {
		t.Fatal(err)
	}
	img.Version = CheckpointVersion + 1
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkerStateFromCheckpoint(spec0, buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("foreign blob version accepted: %v", err)
	}
}

// TestDoubleSeedIdempotent pins the invariant the recovery path's
// double-seed tolerance rests on (failover.go): the maintained pool is a
// pure function of the store, so re-running the seeding Offer(nil) on a
// worker whose pool was delta-maintained through mixed batches recomputes
// the exact same pool.
func TestDoubleSeedIdempotent(t *testing.T) {
	spec := realWorkerSpec(t, 23, 2, 1)
	w, err := NewWorkerState(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Offer(nil); err != nil {
		t.Fatal(err)
	}
	for i, b := range []Batch{
		{Ins: []EdgeInsert{{Src: 1, Dst: 2, Vals: []graph.Value{1}}, {Src: 1, Dst: 3, Vals: []graph.Value{1}}}},
		{Del: []EdgeDelete{specDelete(spec, 1), specDelete(spec, 3)}},
		{Ins: []EdgeInsert{{Src: 5, Dst: 2, Vals: []graph.Value{2}}}, Del: []EdgeDelete{specDelete(spec, 5)}},
	} {
		if _, err := w.Ingest(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	maintained := poolSnapshot(w)
	if len(maintained) == 0 {
		t.Fatal("fixture produced an empty pool; the idempotence check is vacuous")
	}
	if _, _, err := w.Offer(nil); err != nil {
		t.Fatal(err)
	}
	if reseeded := poolSnapshot(w); !reflect.DeepEqual(maintained, reseeded) {
		t.Errorf("re-seed changed the pool:\n maintained %v\n reseeded %v", maintained, reseeded)
	}
}
