// The ShardWorker boundary: the narrow, wire-able contract one shard of a
// sharded mining deployment presents to its coordinator.
//
// PR 3 proved the offer/count split exact but kept both sides in one
// process, with the coordinator reaching into shard-local stores. This file
// makes the boundary explicit and transportable:
//
//   - WorkerSpec is the complete, self-contained description of one shard —
//     schema, node attribute rows, the shard's edges, and the effective
//     mining options in wire form (metric by name, not by function pointer).
//     A worker built from a spec owns a private graph and store; nothing is
//     shared with the coordinator, so the same WorkerState code serves both
//     the in-process workers and the shardd daemon behind internal/rpc.
//
//   - ShardSketch is the "coarse counts" half of the two-round protocol:
//     per-(attribute, value) first-level edge histograms. The coordinator
//     computes one per shard while partitioning (and keeps them fresh while
//     routing incremental batches), sums them into global singleton
//     supports, and derives each worker's OfferBound.
//
//   - OfferBound raises a shard's effective offer threshold. The pigeonhole
//     threshold t = ⌈minSupp/shards⌉ is tight for a lone shard, but global
//     knowledge prunes further: for a pattern g with condition set C mined
//     on shard i,
//
//     supp_global(g) ≤ min_{c∈C} H(c)                  (global rarity)
//     supp_global(g) ≤ s_i(g) + min_{c∈C} Σ_{j≠i} H_j(c) (others' capacity)
//
//     where H_j(c) is shard j's singleton count for condition c and
//     H = Σ_j H_j. Both right-hand sides only shrink as C grows and as the
//     walk descends (s_i bounded by the current partition size), so either
//     bound dipping below minSupp soundly prunes the whole subtree: every
//     GR below it fails Definition 5 condition (1) globally. A qualifying
//     GR is never pruned — its true global support lower-bounds every
//     bound — so the offer-union completeness argument of shard.go
//     survives: on the shard holding ≥ t of its support, a qualifying GR
//     is offered. The effective local threshold this induces,
//     max(t, minSupp − min_{c∈C} Σ_{j≠i} H_j(c)), rises exactly when
//     shards get thin — the enumeration blow-up BENCH_sharding.json
//     measured for the one-round protocol.
//
//   - Ingest moves incremental pool maintenance worker-side: a worker
//     ingests its routed batch slice into its private graph/store, delta-
//     recounts its own relaxed pool, re-mines the affected first-level
//     subtrees, and replies with the pool deltas. The coordinator never
//     reads shard-local state; only EdgeInsert batches go down and
//     ShardCandidate deltas come back. (The incremental pool is maintained
//     WITHOUT the OfferBound prune: bounds derived from a past edge set can
//     rise as other shards grow, so a seed-time prune could hide an entry a
//     later batch promotes. The bound is a batch-mine optimisation; the
//     merge-side caps below recover most of the saving for the maintained
//     pool too.)
package core

import (
	"fmt"
	"math"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

// WireOptions is Options in a transport-friendly form: the metric travels by
// name, everything else by value. The zero Metric name means nhp.
//
// grlint:wire v2
type WireOptions struct {
	MinSupp            int
	MinScore           float64
	K                  int
	DynamicFloor       bool
	Metric             string
	MaxL, MaxW, MaxR   int
	NoGeneralityFilter bool
	IncludeTrivial     bool
	ExactGenerality    bool
	StaticRHSOrder     bool
	Parallelism        int
	// PoolCap travels for completeness; normalizeSharded rejects a non-zero
	// value before any spec is built (per-shard pools are support-gated and
	// cannot be bounded without losing offer completeness), so workers only
	// ever see zero. NoPostingLists selects the worker-side re-mine path.
	PoolCap        int
	NoPostingLists bool
}

// Wire converts Options to its wire form.
func (o Options) Wire() WireOptions {
	return WireOptions{
		MinSupp: o.MinSupp, MinScore: o.MinScore, K: o.K,
		DynamicFloor: o.DynamicFloor, Metric: o.Metric.Name,
		MaxL: o.MaxL, MaxW: o.MaxW, MaxR: o.MaxR,
		NoGeneralityFilter: o.NoGeneralityFilter,
		IncludeTrivial:     o.IncludeTrivial,
		ExactGenerality:    o.ExactGenerality,
		StaticRHSOrder:     o.StaticRHSOrder,
		Parallelism:        o.Parallelism,
		PoolCap:            o.PoolCap,
		NoPostingLists:     o.NoPostingLists,
	}
}

// Options resolves the wire form back to Options (metric looked up by name).
func (w WireOptions) Options() (Options, error) {
	o := Options{
		MinSupp: w.MinSupp, MinScore: w.MinScore, K: w.K,
		DynamicFloor: w.DynamicFloor,
		MaxL:         w.MaxL, MaxW: w.MaxW, MaxR: w.MaxR,
		NoGeneralityFilter: w.NoGeneralityFilter,
		IncludeTrivial:     w.IncludeTrivial,
		ExactGenerality:    w.ExactGenerality,
		StaticRHSOrder:     w.StaticRHSOrder,
		Parallelism:        w.Parallelism,
		PoolCap:            w.PoolCap,
		NoPostingLists:     w.NoPostingLists,
	}
	if w.Metric != "" {
		m, err := metrics.ByName(w.Metric)
		if err != nil {
			return o, err
		}
		o.Metric = m
	}
	return o, nil
}

// WorkerSpec is the self-contained description of one shard: everything a
// worker — in-process or a shardd daemon across a socket — needs to build
// its private graph and store. All fields are value types so the spec
// gob-encodes without registration.
//
// grlint:wire v1
type WorkerSpec struct {
	// NodeAttrs / EdgeAttrs reconstruct the schema.
	NodeAttrs []graph.Attribute
	EdgeAttrs []graph.Attribute
	// NumNodes and NodeVals (row-major NumNodes × len(NodeAttrs)) carry the
	// full node table: workers share the coordinator's node id space so
	// routed EdgeInsert batches need no translation.
	NumNodes int
	NodeVals []graph.Value
	// EdgeSrc/EdgeDst/EdgeVals (row-major × len(EdgeAttrs)) are the shard's
	// edges, in ascending global edge order.
	EdgeSrc  []int32
	EdgeDst  []int32
	EdgeVals []graph.Value
	// Opt carries the coordinator's effective (normalized) global options.
	Opt WireOptions
	// ShardMinSupp is the pigeonhole offer threshold t = ⌈MinSupp/Shards⌉.
	ShardMinSupp int
	// Index and Shards locate this worker in the layout.
	Index, Shards int
}

// buildWorkerSpec assembles the spec for shard idx of a partitioned graph.
func buildWorkerSpec(g *graph.Graph, opt Options, plan ShardPlan, part []int32, idx int) WorkerSpec {
	schema := g.Schema()
	nv, ne := len(schema.Node), len(schema.Edge)
	spec := WorkerSpec{
		NodeAttrs:    append([]graph.Attribute(nil), schema.Node...),
		EdgeAttrs:    append([]graph.Attribute(nil), schema.Edge...),
		NumNodes:     g.NumNodes(),
		NodeVals:     make([]graph.Value, g.NumNodes()*nv),
		EdgeSrc:      make([]int32, len(part)),
		EdgeDst:      make([]int32, len(part)),
		Opt:          opt.Wire(),
		ShardMinSupp: plan.ShardMinSupp,
		Index:        idx,
		Shards:       plan.Shards,
	}
	for n := 0; n < g.NumNodes(); n++ {
		copy(spec.NodeVals[n*nv:(n+1)*nv], g.NodeValues(n))
	}
	if ne > 0 {
		spec.EdgeVals = make([]graph.Value, len(part)*ne)
	}
	for i, e32 := range part {
		e := int(e32)
		spec.EdgeSrc[i] = int32(g.Src(e))
		spec.EdgeDst[i] = int32(g.Dst(e))
		if ne > 0 {
			copy(spec.EdgeVals[i*ne:(i+1)*ne], g.EdgeValues(e))
		}
	}
	return spec
}

// ShardCandidate is one offer crossing the coordinator/worker boundary: a
// GR together with its exact counts on the offering shard.
//
// grlint:wire v1
type ShardCandidate struct {
	GR     gr.GR
	Counts metrics.Counts
}

// IngestReply reports one worker's side of an incremental batch: its new
// edge count, the pool deltas (every entry whose counts changed, that the
// batch promoted into the pool, or that a deletion demoted below the shard
// threshold — the last with final counts under ShardMinSupp, which tell the
// coordinator the shard no longer tracks it), and the scoped re-mine's
// selectivity.
//
// grlint:wire v2
type IngestReply struct {
	NumEdges        int
	Deltas          []ShardCandidate
	Recounted       int
	SubtreesRemined int
	SubtreesTotal   int
	Stats           Stats
}

// ShardWorker is the narrow contract one shard presents to the coordinator.
// The four methods are the whole offer/count/ingest surface, deliberately
// chatty-free so a remote transport (internal/rpc) pays one round trip per
// protocol round:
//
//   - Offer mines the shard's relaxed candidate pool (round 1). A non-nil
//     bound applies the count-then-verify prune; nil asks for the plain
//     pigeonhole pool and additionally seeds the worker's maintained pool
//     for later Ingest calls.
//   - Counts answers the batched round-2 exact-count query.
//   - Ingest applies a routed incremental batch slice (insertions and
//     retractions) worker-side.
//   - Close releases transport resources (a no-op in-process).
//
// Implementations need not be safe for concurrent calls; the coordinator
// issues at most one call per worker at a time (different workers are
// driven concurrently).
type ShardWorker interface {
	NumEdges() int
	Offer(bound *OfferBound) ([]ShardCandidate, Stats, error)
	Counts(grs []gr.GR) ([]metrics.Counts, error)
	Ingest(batch Batch) (IngestReply, error)
	Close() error
}

// WorkerBuilder turns a WorkerSpec into a live worker: in-process
// construction (InProcessWorkers) or a connection to a shardd daemon
// (internal/rpc.Builder).
type WorkerBuilder func(spec WorkerSpec) (ShardWorker, error)

// Build implements FleetBuilder, so any WorkerBuilder func can stand in
// where a fleet is expected (without failover support).
func (b WorkerBuilder) Build(spec WorkerSpec) (ShardWorker, error) { return b(spec) }

// FleetBuilder places one shard worker per WorkerSpec. WorkerBuilder funcs
// implement it directly; fuller implementations (internal/rpc.Fleet) also
// implement RebuildingBuilder and gain mid-run failover.
type FleetBuilder interface {
	Build(spec WorkerSpec) (ShardWorker, error)
}

// RebuildingBuilder is a FleetBuilder that can also build a replacement
// worker for a shard whose original was lost mid-run (a torn connection, a
// dead daemon). Deployments built from one get their workers wrapped in
// replay supervisors: the coordinator keeps each shard's spec and
// routed-batch log and, on worker loss, rebuilds and replays into the
// replacement, then resumes the in-flight operation. See WorkerHealth and
// DESIGN.md §9 for the failure model.
type RebuildingBuilder interface {
	FleetBuilder
	Rebuild(spec WorkerSpec) (ShardWorker, error)
}

// InProcessWorkers is the WorkerBuilder running every shard in this process.
func InProcessWorkers(spec WorkerSpec) (ShardWorker, error) {
	return NewWorkerState(spec)
}

// ShardSketch is one shard's coarse count summary: for every attribute
// value, how many of the shard's edges carry it on the source side (L), the
// destination side (R), and the edge itself (W). Singleton supports bound
// every descriptor's support from above, which is all the two-round
// protocol needs from round 1.
//
// grlint:wire v1
type ShardSketch struct {
	Edges int
	// L and R are indexed [nodeAttr][value], W is [edgeAttr][value];
	// value ranges over 0..Domain (bucket 0, the null value, is unused by
	// descriptors but kept so values index directly).
	L, R [][]int
	W    [][]int
}

// newShardSketch allocates a zero sketch for the schema.
func newShardSketch(schema *graph.Schema) ShardSketch {
	sk := ShardSketch{
		L: make([][]int, len(schema.Node)),
		R: make([][]int, len(schema.Node)),
		W: make([][]int, len(schema.Edge)),
	}
	for a := range schema.Node {
		sk.L[a] = make([]int, schema.Node[a].Domain+1)
		sk.R[a] = make([]int, schema.Node[a].Domain+1)
	}
	for a := range schema.Edge {
		sk.W[a] = make([]int, schema.Edge[a].Domain+1)
	}
	return sk
}

// addEdge records one edge's attribute values.
func (sk *ShardSketch) addEdge(srcVals, dstVals, edgeVals []graph.Value) {
	sk.Edges++
	for a, v := range srcVals {
		sk.L[a][v]++
	}
	for a, v := range dstVals {
		sk.R[a][v]++
	}
	for a, v := range edgeVals {
		sk.W[a][v]++
	}
}

// removeEdge retracts one edge's attribute values; the sketch stays the
// exact singleton histogram of the shard's surviving edges, so every bound
// derived from it remains a valid upper bound under deletions.
func (sk *ShardSketch) removeEdge(srcVals, dstVals, edgeVals []graph.Value) {
	sk.Edges--
	for a, v := range srcVals {
		sk.L[a][v]--
	}
	for a, v := range dstVals {
		sk.R[a][v]--
	}
	for a, v := range edgeVals {
		sk.W[a][v]--
	}
}

// minSingle returns the smallest singleton count any of the GR's conditions
// has in this sketch — an upper bound on the GR's support on this shard.
func (sk *ShardSketch) minSingle(g gr.GR) int {
	m := sk.Edges
	for _, c := range g.L {
		if n := sk.L[c.Attr][c.Val]; n < m {
			m = n
		}
	}
	for _, c := range g.W {
		if n := sk.W[c.Attr][c.Val]; n < m {
			m = n
		}
	}
	for _, c := range g.R {
		if n := sk.R[c.Attr][c.Val]; n < m {
			m = n
		}
	}
	return m
}

// contributes reports whether this shard can contribute a non-zero count to
// any field the metric reads for g. LWR and Hom are bounded by LW, and LW
// by the smallest L∧W singleton count, so a zero there (an empty shard, or
// one missing a constrained value entirely) makes a round-2 fetch provably
// pointless — unless the metric also reads R, whose singleton bound is
// independent of LW.
func (sk *ShardSketch) contributes(m metrics.Metric, g gr.GR) bool {
	if sk.Edges == 0 {
		return false
	}
	lw := sk.Edges
	for _, c := range g.L {
		if n := sk.L[c.Attr][c.Val]; n < lw {
			lw = n
		}
	}
	for _, c := range g.W {
		if n := sk.W[c.Attr][c.Val]; n < lw {
			lw = n
		}
	}
	if lw > 0 {
		return true
	}
	if m.NeedsR {
		r := sk.Edges
		for _, c := range g.R {
			if n := sk.R[c.Attr][c.Val]; n < r {
				r = n
			}
		}
		if r > 0 {
			return true
		}
	}
	return false
}

// OfferBound carries the global knowledge a shard's round-1 offer mine
// prunes with (see the package comment for the math). HL/HW/HR are the
// summed singleton supports over all shards; OL/OW/OR the sums over the
// *other* shards (H minus the worker's own sketch).
//
// grlint:wire v1
type OfferBound struct {
	MinSupp    int
	HL, HW, HR [][]int
	OL, OW, OR [][]int
}

// buildOfferBounds derives every worker's bound tables from the sketches:
// the global H tables are summed once and each worker's O tables are one
// subtraction, keeping construction O(shards × domain).
func buildOfferBounds(minSupp int, sketches []ShardSketch) []*OfferBound {
	sum := func(pick func(ShardSketch) [][]int) [][]int {
		first := pick(sketches[0])
		out := make([][]int, len(first))
		for a := range first {
			out[a] = make([]int, len(first[a]))
		}
		for _, sk := range sketches {
			t := pick(sk)
			for a := range t {
				for v, n := range t[a] {
					out[a][v] += n
				}
			}
		}
		return out
	}
	sub := func(tot, own [][]int) [][]int {
		out := make([][]int, len(tot))
		for a := range tot {
			row := make([]int, len(tot[a]))
			for v := range row {
				row[v] = tot[a][v] - own[a][v]
			}
			out[a] = row
		}
		return out
	}
	hl := sum(func(s ShardSketch) [][]int { return s.L })
	hw := sum(func(s ShardSketch) [][]int { return s.W })
	hr := sum(func(s ShardSketch) [][]int { return s.R })
	bounds := make([]*OfferBound, len(sketches))
	for i := range sketches {
		bounds[i] = &OfferBound{
			MinSupp: minSupp,
			HL:      hl, HW: hw, HR: hr,
			OL: sub(hl, sketches[i].L),
			OW: sub(hw, sketches[i].W),
			OR: sub(hr, sketches[i].R),
		}
	}
	return bounds
}

// prune reports whether the subtree below a partition of partSize edges,
// whose GRs all carry at least the conditions l ∧ w ∧ r, provably contains
// no globally qualifying GR. Both bounds are monotone under condition
// extension and partition shrinkage, so cutting the subtree is sound.
func (b *OfferBound) prune(partSize int, l, w, r gr.Descriptor) bool {
	global := math.MaxInt
	others := math.MaxInt
	scan := func(d gr.Descriptor, h, o [][]int) {
		for _, c := range d {
			if n := h[c.Attr][c.Val]; n < global {
				global = n
			}
			if n := o[c.Attr][c.Val]; n < others {
				others = n
			}
		}
	}
	scan(l, b.HL, b.OL)
	scan(w, b.HW, b.OW)
	scan(r, b.HR, b.OR)
	if global < b.MinSupp {
		return true
	}
	return others != math.MaxInt && partSize+others < b.MinSupp
}

// workerEntry is one entry of a worker's maintained relaxed pool.
type workerEntry struct {
	gr       gr.GR
	c        metrics.Counts
	betaMask uint64
}

// WorkerState is the reference ShardWorker: a private graph holding the
// full node table and only this shard's edges, the compact store over it,
// and (once seeded by Offer(nil)) the maintained relaxed pool. It backs
// both the in-process deployment and the shardd daemon.
type WorkerState struct {
	g       *graph.Graph
	st      *store.Store
	opt     Options // effective global options (resolved from the spec)
	metric  metrics.Metric
	minSupp int // the plan's ShardMinSupp (t)
	idx     int
	shards  int
	// pool is nil until a seed Offer(nil); Ingest requires it. It stays
	// string-keyed (unlike the single-store engine's dense pool): the keys
	// double as the coordinator-facing wire identity of each candidate.
	pool map[string]*workerEntry
	// scr and aff are the worker's steady-state re-mine allocations, reused
	// across Ingest batches; scr carries the shard store's persistent
	// dictionary (the worker is the store's exclusive writer).
	scr *minerScratch
	aff affectedKeys
}

// NewWorkerState builds a live worker from its spec.
func NewWorkerState(spec WorkerSpec) (*WorkerState, error) {
	schema, err := graph.NewSchema(spec.NodeAttrs, spec.EdgeAttrs)
	if err != nil {
		return nil, fmt.Errorf("core: worker spec schema: %w", err)
	}
	nv, ne := len(schema.Node), len(schema.Edge)
	if len(spec.NodeVals) != spec.NumNodes*nv {
		return nil, fmt.Errorf("core: worker spec: %d node values for %d nodes × %d attrs",
			len(spec.NodeVals), spec.NumNodes, nv)
	}
	if len(spec.EdgeSrc) != len(spec.EdgeDst) || (ne > 0 && len(spec.EdgeVals) != len(spec.EdgeSrc)*ne) {
		return nil, fmt.Errorf("core: worker spec: inconsistent edge arrays")
	}
	if spec.Index < 0 || spec.Index >= spec.Shards {
		return nil, fmt.Errorf("core: worker spec: index %d outside %d shards", spec.Index, spec.Shards)
	}
	g, err := graph.New(schema, spec.NumNodes)
	if err != nil {
		return nil, err
	}
	for n := 0; n < spec.NumNodes; n++ {
		if err := g.SetNodeValues(n, spec.NodeVals[n*nv:(n+1)*nv]...); err != nil {
			return nil, fmt.Errorf("core: worker spec node %d: %w", n, err)
		}
	}
	for i := range spec.EdgeSrc {
		var vals []graph.Value
		if ne > 0 {
			vals = spec.EdgeVals[i*ne : (i+1)*ne]
		}
		if _, err := g.AddEdge(int(spec.EdgeSrc[i]), int(spec.EdgeDst[i]), vals...); err != nil {
			return nil, fmt.Errorf("core: worker spec edge %d: %w", i, err)
		}
	}
	opt, err := spec.Opt.Options()
	if err != nil {
		return nil, err
	}
	opt, err = opt.normalize()
	if err != nil {
		return nil, err
	}
	if spec.ShardMinSupp < 1 {
		return nil, fmt.Errorf("core: worker spec: shard minSupp %d < 1", spec.ShardMinSupp)
	}
	st := store.Build(g)
	if !opt.NoPostingLists {
		st.EnablePostings()
	}
	return &WorkerState{
		g:       g,
		st:      st,
		opt:     opt,
		metric:  opt.Metric,
		minSupp: spec.ShardMinSupp,
		idx:     spec.Index,
		shards:  spec.Shards,
		scr:     newMinerScratch(st.Dict()),
	}, nil
}

// NumEdges returns the shard's current edge count.
func (w *WorkerState) NumEdges() int { return w.st.NumEdges() }

// Close implements ShardWorker; in-process workers hold no transport.
func (w *WorkerState) Close() error { return nil }

// offerOpts derives the options a shard's capture mines run with: the
// lowered support threshold, no score threshold, unbounded static
// collection, and no generality machinery (the capture hook bypasses it).
// Metric, descriptor caps, triviality and RHS-order settings pass through
// so the per-shard enumeration space matches the single-store walk.
func (w *WorkerState) offerOpts() Options {
	o := w.opt
	o.MinSupp = w.minSupp
	o.MinScore = math.Inf(-1)
	o.K = 0
	o.DynamicFloor = false
	o.ExactGenerality = false
	o.NoGeneralityFilter = false
	o.Parallelism = 0
	return o
}

// Offer mines the shard's relaxed candidate pool: every GR whose shard
// support reaches ShardMinSupp, with exact shard counts and no score
// filtering (shard.go's completeness argument). A non-nil bound prunes
// subtrees that provably hold no globally qualifying GR (round 1 of the
// two-round protocol); a nil bound also (re)seeds the maintained pool the
// incremental engine's Ingest path delta-updates.
func (w *WorkerState) Offer(bound *OfferBound) ([]ShardCandidate, Stats, error) {
	var out []ShardCandidate
	w.scr.reset()
	m := newMinerScr(w.st, w.offerOpts(), w.scr)
	m.bound = bound
	seedPool := bound == nil
	if seedPool {
		w.pool = make(map[string]*workerEntry)
	}
	m.capture = func(g gr.GR, c metrics.Counts, score float64) {
		out = append(out, ShardCandidate{GR: g, Counts: c})
		if seedPool {
			w.upsert(g, c)
		}
	}
	m.run()
	m.stats.ShardOffers = int64(len(out))
	return out, m.stats, nil
}

// Counts measures the given GRs' exact counts on this shard — the batched
// round-2 (verify) query for candidates other shards offered.
func (w *WorkerState) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	out := make([]metrics.Counts, len(grs))
	for i, g := range grs {
		out[i] = countOnStore(w.st, w.opt.Metric, g)
	}
	return out, nil
}

// upsert records (or refreshes) one maintained-pool entry.
func (w *WorkerState) upsert(g gr.GR, c metrics.Counts) {
	key := g.Key()
	t := w.pool[key]
	if t == nil {
		t = &workerEntry{gr: g}
		if w.metric.NeedsHom {
			t.betaMask = betaMaskOf(w.g.Schema(), g.L, g.R)
		}
		w.pool[key] = t
	}
	t.c = c
}

// Ingest applies one routed batch slice worker-side: validate, append
// insertions to the private graph and store, resolve retractions against the
// pre-batch shard rows, delta-recount the maintained pool, tombstone the
// retracted rows, re-mine the affected first-level subtrees, and reply with
// every pool entry the batch touched. The per-shard pool is support-gated
// at ShardMinSupp, which keeps deletions simpler than the single-store
// engine's: supports only fall, so a retraction can never promote a new
// entry (no deletion-scoped re-mine and no DeltaSafe/DeleteSafe gate is
// needed — global score movement, including the lift family's under a
// shrinking |E|, is re-evaluated at merge time from summed counts). A
// retraction CAN demote an entry below the shard threshold; the worker then
// stops tracking it but still reports it in the deltas with its final
// below-threshold counts, so the coordinator's union pool stays a faithful
// mirror of the worker pools. Like the single-store engine, the whole slice
// is validated before any state changes.
func (w *WorkerState) Ingest(batch Batch) (IngestReply, error) {
	if w.pool == nil {
		return IngestReply{}, fmt.Errorf("core: worker %d: ingest before a seeding Offer", w.idx)
	}
	for i, e := range batch.Ins {
		if err := w.g.CheckEdge(e.Src, e.Dst, e.Vals...); err != nil {
			return IngestReply{}, fmt.Errorf("core: worker %d: batch edge %d: %w", w.idx, i, err)
		}
	}
	delRows, err := resolveDeletes(w.st, batch.Del)
	if err != nil {
		return IngestReply{}, fmt.Errorf("core: worker %d: %w", w.idx, err)
	}
	for _, e := range batch.Ins {
		if _, err := w.g.AddEdge(e.Src, e.Dst, e.Vals...); err != nil {
			// Unreachable after CheckEdge; kept as an invariant guard.
			return IngestReply{}, err
		}
	}
	newRows := w.st.Append()

	rep := IngestReply{}
	changed := make(map[string]bool)
	dropped := make(map[string]ShardCandidate)
	rep.Recounted = w.recount(newRows, delRows, changed, dropped)
	// Affected keys come from the inserted rows only (support-gated pools
	// have no deletion entrants), read before the doomed rows tombstone.
	collectAffectedInto(&w.aff, w.st, newRows, nil)
	for _, row := range delRows {
		if err := w.g.RemoveEdge(int(w.st.EdgeID(row))); err != nil {
			return IngestReply{}, fmt.Errorf("core: worker %d: retract row %d: %w", w.idx, row, err)
		}
	}
	if err := w.st.RemoveEdges(delRows); err != nil {
		return IngestReply{}, fmt.Errorf("core: worker %d: %w", w.idx, err)
	}
	var stats Stats
	// The re-mine below is deliberately unguarded: deletions were resolved
	// exactly by the recount above (support-gated pools have no deletion
	// entrants), so only the insert side reaches the scoped walk.
	w.scr.reset()
	//grlint:ignore metricsafety deletions are recounted exactly above; only inserts reach the scoped re-mine
	rep.SubtreesRemined, rep.SubtreesTotal = remineAffectedSubtrees(w.st, w.offerOpts(), &w.aff,
		func(g gr.GR, c metrics.Counts, score float64) {
			w.upsert(g, c)
			changed[g.Key()] = true
			delete(dropped, g.Key())
		}, w.scr, &stats)
	rep.Deltas = make([]ShardCandidate, 0, len(changed)+len(dropped))
	for key := range changed {
		if t := w.pool[key]; t != nil {
			rep.Deltas = append(rep.Deltas, ShardCandidate{GR: t.gr, Counts: t.c})
		}
	}
	for _, cand := range dropped {
		rep.Deltas = append(rep.Deltas, cand)
	}
	rep.NumEdges = w.st.NumEdges()
	rep.Stats = stats
	return rep, nil
}

// recount delta-updates every maintained-pool entry against the shard's new
// rows and doomed rows, marking changed keys. Mirrors the single-store
// engine's recount, minus score-based drops (per-shard pools are
// support-gated only; scores are a global-side concern) — but deletions can
// demote an entry below the shard threshold, in which case it leaves the
// pool and lands in dropped with its final counts for the coordinator.
func (w *WorkerState) recount(newRows, delRows []int32, changed map[string]bool, dropped map[string]ShardCandidate) (recounted int) {
	totalE := w.st.NumEdges() - len(delRows)
	needHom := w.metric.NeedsHom
	needR := w.metric.NeedsR
	for key, t := range w.pool {
		touched := false
		for _, e := range newRows {
			if matchOn(w.st.LVal, e, t.gr.L) && matchOn(w.st.EVal, e, t.gr.W) {
				t.c.LW++
				touched = true
				if matchOn(w.st.RVal, e, t.gr.R) {
					t.c.LWR++
				} else if needHom && t.betaMask != 0 && matchHomOn(w.st, e, t.gr.L, t.betaMask) {
					t.c.Hom++
				}
			}
			if needR && matchOn(w.st.RVal, e, t.gr.R) {
				t.c.R++
				touched = true
			}
		}
		for _, e := range delRows {
			if matchOn(w.st.LVal, e, t.gr.L) && matchOn(w.st.EVal, e, t.gr.W) {
				t.c.LW--
				touched = true
				if matchOn(w.st.RVal, e, t.gr.R) {
					t.c.LWR--
				} else if needHom && t.betaMask != 0 && matchHomOn(w.st, e, t.gr.L, t.betaMask) {
					t.c.Hom--
				}
			}
			if needR && matchOn(w.st.RVal, e, t.gr.R) {
				t.c.R--
				touched = true
			}
		}
		t.c.E = totalE
		if touched {
			changed[key] = true
			recounted++
		}
		if t.c.LWR < w.minSupp {
			// Demoted below the shard threshold: stop tracking (a later
			// re-promotion needs a full-descriptor insert, which the scoped
			// re-mine re-captures) and report the final counts.
			delete(w.pool, key)
			delete(changed, key)
			dropped[key] = ShardCandidate{GR: t.gr, Counts: t.c}
		}
	}
	return recounted
}

// countOnStore measures g's exact counts on one shard store by a single
// scan, filling only the fields the metric reads so gap-filled counts sum
// consistently with in-search capture counts.
func countOnStore(st *store.Store, m metrics.Metric, g gr.GR) metrics.Counts {
	c := metrics.Counts{E: st.NumEdges()}
	eff, hasBeta := g.HomophilyEffect(st.Graph().Schema())
	needHom := m.NeedsHom && hasBeta
	for e := int32(0); int(e) < st.NumRows(); e++ {
		if !st.Alive(e) {
			continue
		}
		if matchOn(st.LVal, e, g.L) && matchOn(st.EVal, e, g.W) {
			c.LW++
			if matchOn(st.RVal, e, g.R) {
				c.LWR++
			}
			if needHom && matchOn(st.RVal, e, eff.R) {
				c.Hom++
			}
		}
		if m.NeedsR && matchOn(st.RVal, e, g.R) {
			c.R++
		}
	}
	return c
}
