package core

import (
	"math"
	"sync"
	"testing"
)

// The shared floor must be monotonically non-decreasing under concurrent
// raises and must converge to the maximum value offered. Run with -race.
func TestParFloorMonotonicConcurrent(t *testing.T) {
	f := newParFloor()
	if f.load() != math.Inf(-1) {
		t.Fatalf("initial floor %v, want -Inf", f.load())
	}

	const raisers = 8
	const perRaiser = 2000
	// Deterministic but interleaved values, including negatives (gain and
	// Piatetsky-Shapiro scores can be negative).
	value := func(r, i int) float64 { return float64((i*raisers+r)%1000)/500 - 1 }

	stop := make(chan struct{})
	monotone := true
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		last := math.Inf(-1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := f.load()
			if v < last {
				monotone = false
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < raisers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRaiser; i++ {
				f.raise(value(r, i))
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	observer.Wait()

	if !monotone {
		t.Fatal("observed the floor decreasing")
	}
	maxOffered := math.Inf(-1)
	for r := 0; r < raisers; r++ {
		for i := 0; i < perRaiser; i++ {
			if v := value(r, i); v > maxOffered {
				maxOffered = v
			}
		}
	}
	if final := f.load(); final != maxOffered {
		t.Fatalf("final floor %v, want max offered %v", final, maxOffered)
	}

	// Raising to a lower value must be a no-op.
	final := f.load()
	f.raise(final - 1)
	if f.load() != final {
		t.Error("raise with a lower value moved the floor")
	}
}

// Sequential raise sequence: every intermediate load is the running max.
func TestParFloorRunningMax(t *testing.T) {
	f := newParFloor()
	seq := []float64{-0.5, 0.2, 0.1, 0.2, 0.9, 0.3, 1.5, 1.5, -2}
	running := math.Inf(-1)
	for _, v := range seq {
		f.raise(v)
		if v > running {
			running = v
		}
		if got := f.load(); got != running {
			t.Fatalf("after raise(%v): floor %v, want %v", v, got, running)
		}
	}
}
