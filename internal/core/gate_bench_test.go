// The bench-gate microbenchmark suite: the allocation budget of the hot
// mine/re-mine paths, enforced by CI (DESIGN.md §7). These benchmarks are
// internal (package core) on purpose — BenchmarkRecount drives the pool
// recount directly, without the batch-validation and assembly layers around
// it — and are designed so every iteration leaves the engine in the state it
// started from: a mixed batch inserts and deletes the same edge multiset, so
// b.N iterations measure a steady state instead of a drifting graph.
//
// CI runs them with fixed iteration counts (-benchtime Nx, -count ≥ 5,
// -benchmem) and cmd/benchgate compares the B/op and allocs/op medians
// against the committed baseline (internal/bench/gate/baseline.txt).
package core

import (
	"sync"
	"testing"

	"grminer/internal/datagen"
	"grminer/internal/graph"
	"grminer/internal/metrics"
	"grminer/internal/store"
)

var (
	gateOnce sync.Once
	gateG    *graph.Graph
	gateSt   *store.Store
	gateOpt  Options
)

// gateFixture builds the shared mining input: a Pokec-like graph small
// enough for minutes-long CI gates but wide enough (6 node attributes, one
// edge attribute) to exercise every descriptor block.
func gateFixture(b *testing.B) {
	b.Helper()
	gateOnce.Do(func() {
		cfg := datagen.DefaultPokecConfig()
		cfg.Nodes = 1500
		cfg.AvgOutDegree = 6
		gateG = datagen.Pokec(cfg)
		gateSt = store.Build(gateG)
		gateOpt = Options{
			MinSupp:      gateG.NumEdges() / 200,
			MinScore:     0.5,
			K:            50,
			DynamicFloor: true,
		}
	})
}

// gateEngine builds a fresh incremental engine over a private copy of the
// fixture graph (engines own and mutate their graph).
func gateEngine(b *testing.B, opt Options) *Incremental {
	b.Helper()
	cfg := datagen.DefaultPokecConfig()
	cfg.Nodes = 1500
	cfg.AvgOutDegree = 6
	g := datagen.Pokec(cfg)
	inc, err := NewIncremental(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	return inc
}

// gateBatch converts edges [from, to) of g into a balanced mixed batch: the
// same edges as insertions and retractions, so applying it is a state
// no-op (retractions resolve against the pre-batch edge set, insertions
// re-add identical edges).
func gateBatch(g *graph.Graph, from, to int) Batch {
	b := Batch{
		Ins: make([]EdgeInsert, 0, to-from),
		Del: make([]EdgeDelete, 0, to-from),
	}
	for e := from; e < to; e++ {
		vals := append([]graph.Value(nil), g.EdgeValues(e)...)
		b.Ins = append(b.Ins, EdgeInsert{Src: g.Src(e), Dst: g.Dst(e), Vals: vals})
		b.Del = append(b.Del, EdgeDelete{Src: g.Src(e), Dst: g.Dst(e), Vals: vals})
	}
	return b
}

// BenchmarkApplyBatch is the gate's end-to-end dynamic-path benchmark: one
// mixed batch through Incremental.ApplyBatch, including recount, scoped
// re-mine, and merge. The "compaction" variant deletes (and re-inserts) a
// quarter of the edge set per iteration, so every iteration drives the store
// through a tombstone compaction — the path that used to re-allocate the
// full pool map.
func BenchmarkApplyBatch(b *testing.B) {
	gateFixture(b)
	b.Run("mixed", func(b *testing.B) {
		inc := gateEngine(b, gateOpt)
		batch := gateBatch(gateG, 0, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := inc.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compaction", func(b *testing.B) {
		inc := gateEngine(b, gateOpt)
		// The batch's insertions land before its deletions tombstone, so at
		// deletion time the store holds E+n rows; n = E/3 + 32 tombstones
		// then cross the store's compaction threshold (dead ≥ rows/4, ≥ 32)
		// within the batch, every iteration. The paired insertions restore
		// the edge set for the next iteration.
		n := gateG.NumEdges()/3 + 32
		batch := gateBatch(gateG, 0, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := inc.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecount isolates the per-batch pool maintenance: the tracked-pool
// delta recount (every pool entry matched against the batch rows) plus the
// affected-subtree-key collection that decides the scoped re-mine. Passing
// the same live rows as inserted and doomed leaves every count where it
// started, so iterations are identical work on identical state.
func BenchmarkRecount(b *testing.B) {
	gateFixture(b)
	inc := gateEngine(b, gateOpt)
	rows := make([]int32, 0, 128)
	for e := int32(0); int(e) < inc.st.NumRows() && len(rows) < cap(rows); e++ {
		if inc.st.Alive(e) {
			rows = append(rows, e)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.recount(rows, rows)
		aff := inc.affected(rows, rows)
		_ = aff
	}
}

// BenchmarkMineStatic is the gate's batch-mine benchmark: a full sequential
// GRMiner(k) run. The nhp variant exercises the blocker tables and homophily
// scans; lift additionally drives the |E(r)| memo (rCounts); exactgen drives
// the ExactGenerality verdict cache.
func BenchmarkMineStatic(b *testing.B) {
	gateFixture(b)
	run := func(b *testing.B, opt Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MineStore(gateSt, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nhp", func(b *testing.B) {
		run(b, gateOpt)
	})
	b.Run("lift", func(b *testing.B) {
		opt := gateOpt
		opt.Metric = metrics.LiftMetric
		opt.MinScore = 1
		opt.DynamicFloor = false
		run(b, opt)
	})
	b.Run("exactgen", func(b *testing.B) {
		opt := gateOpt
		opt.ExactGenerality = true
		run(b, opt)
	})
}
