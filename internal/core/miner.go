package core

import (
	"fmt"
	"time"

	"grminer/internal/csort"
	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/intern"
	"grminer/internal/metrics"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Options configures a mining run (Definition 5 plus engineering knobs).
type Options struct {
	// MinSupp is the absolute support threshold (edge count, ≥ 1).
	MinSupp int
	// MinScore is the threshold on the ranking metric (the paper's minNhp).
	MinScore float64
	// K bounds the result list; 0 keeps every qualifying GR.
	K int
	// DynamicFloor enables the GRMiner(k) behaviour: once the top-k list is
	// full, the pruning threshold is upgraded to the k-th best score
	// (Algorithm 1, line 28). Requires K > 0 and an RHS-anti-monotone
	// metric to have any effect.
	DynamicFloor bool
	// Metric is the ranking metric; the zero value selects non-homophily
	// preference. Metrics without RHS anti-monotonicity (lift, conviction,
	// Piatetsky-Shapiro) disable score-based pruning automatically and are
	// ranked in post-processing, as Section VII prescribes.
	Metric metrics.Metric
	// MaxL, MaxW, MaxR cap descriptor sizes (0 = unlimited). Useful to
	// bound pattern length on very wide schemas.
	MaxL, MaxW, MaxR int
	// NoGeneralityFilter disables Definition 5 condition (2); every GR that
	// meets the thresholds then competes for the top-k directly.
	NoGeneralityFilter bool
	// IncludeTrivial also scores and reports trivial GRs. Definition 5
	// excludes them, but the confidence-ranked study of Table II shows them
	// on purpose (4 of Pokec's top-5 by conf are trivial homophily GRs);
	// the ConfMiner baseline sets this. Subtrees under a trivial GR are
	// score-pruned only for metrics that ignore the homophily effect
	// (conf, laplace, gain); for nhp Remark 2 forbids it.
	IncludeTrivial bool
	// ExactGenerality restores exact Definition 5 semantics under
	// DynamicFloor. The paper's dynamic threshold upgrade can prune a
	// subtree containing a *generalisation* that satisfies the user's
	// thresholds but not the upgraded floor; a later specialisation then
	// escapes condition (2) because the blocker was never enumerated. With
	// this option, candidates that pass the in-search blocker check are
	// verified against all their generalisations by direct (memoised)
	// support queries before entering the top-k. Costs extra scans; off by
	// default to match the paper's GRMiner(k).
	ExactGenerality bool
	// StaticRHSOrder disables the dynamic tail ordering of Equation 8 (an
	// ablation of the paper's key pruning enabler). The same GRs are found
	// — subset-first enumeration still holds — but nhp loses its
	// anti-monotonicity whenever β is empty (Remark 2), so the miner must
	// withhold nhp pruning in exactly those states and examines strictly
	// more GRs. `grbench -exp ablation` quantifies the cost.
	StaticRHSOrder bool
	// PoolCap bounds the incremental engine's tracked candidate pool
	// (0 = unbounded; batch mining ignores it). With a cap, the pool keeps
	// its PoolCap best-scoring condition-(1) entries (plus any spilled
	// entry's generality blockers, a soft overflow) and spills the rest to a
	// score-ordered frontier recorded only as the highest spilled score.
	// Results stay exact: whenever the merged top-k cannot be proven
	// independent of the spilled frontier (its k-th score does not beat the
	// spill floor, or fewer than K results survive), the engine re-mines the
	// complete pool from the store before answering — re-mine-on-underflow,
	// never approximation. Requires K > 0: an unbounded result list can
	// never be proven independent of spilled entries. Only the single-store
	// incremental engine supports it; sharded pools are support-gated by the
	// pigeonhole threshold and bounding them would break offer completeness
	// (DESIGN.md §4e).
	PoolCap int
	// NoPostingLists makes the incremental engines maintain their pools with
	// the PR 2 Apply path — a counting-sort partition pass over the full
	// edge set per dimension, and full re-walks of affected subtrees —
	// instead of the store's per-(attribute, value) posting lists with deep
	// affected-key descent filtering. It is the measured baseline of
	// `grbench -exp dynamic`, kept as an ablation knob.
	NoPostingLists bool
	// Parallelism > 1 mines first-level partitions on that many worker
	// goroutines, drained largest-partition-first from a lock-free task
	// queue; workers keep private top-k lists and share only an atomic
	// pruning floor (see parallel.go for the engine and soundness
	// argument). Results are deterministic and equal to the sequential
	// run's: with a static floor the workers collect candidates that a
	// final generality-ordered merge filters exactly; with DynamicFloor,
	// ExactGenerality is enabled automatically so blocking is
	// order-independent and the shared floor stays sound (for patterns up
	// to 20 conditions — see hasQualifyingGeneralization's fallback; cap
	// MaxL/MaxW to stay inside it on extremely wide schemas). 0 and 1 mean
	// sequential. AutoTune (plan.go) fills this from the input size.
	Parallelism int
}

// normalize fills defaults and validates.
func (o Options) normalize() (Options, error) {
	if o.Metric.Score == nil {
		o.Metric = metrics.NhpMetric
	}
	if o.MinSupp < 1 {
		o.MinSupp = 1
	}
	if o.K < 0 {
		return o, fmt.Errorf("core: negative K %d", o.K)
	}
	if o.DynamicFloor && o.K == 0 {
		return o, fmt.Errorf("core: DynamicFloor requires K > 0")
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("core: negative Parallelism %d", o.Parallelism)
	}
	if o.PoolCap < 0 {
		return o, fmt.Errorf("core: negative PoolCap %d", o.PoolCap)
	}
	if o.PoolCap > 0 && o.K == 0 {
		return o, fmt.Errorf("core: PoolCap requires K > 0 (an unbounded result can never be proven independent of spilled pool entries)")
	}
	if o.Parallelism > 1 && o.DynamicFloor && !o.NoGeneralityFilter {
		// Parallel dynamic-floor pruning needs order-independent blocking
		// to stay sound and deterministic; see parallel.go.
		o.ExactGenerality = true
	}
	return o, nil
}

// Stats reports the work a run performed.
//
// grlint:wire v1
type Stats struct {
	// PartitionCalls counts counting-sort invocations.
	PartitionCalls int64
	// Examined counts non-trivial GRs whose score was computed (the paper's
	// "GRs examined"; Theorem 4(2) bounds which GRs ever get here).
	Examined int64
	// TrivialSeen counts trivial GR partitions traversed.
	TrivialSeen int64
	// PrunedSupp counts partitions cut by minSupp (Theorem 2(1)).
	PrunedSupp int64
	// PrunedScore counts subtrees cut by the score floor (Theorem 3).
	PrunedScore int64
	// Candidates counts non-trivial GRs meeting both thresholds.
	Candidates int64
	// Blocked counts candidates removed by the generality filter.
	Blocked int64
	// HomScans counts homophily-effect counting scans (cache misses).
	HomScans int64
	// PrunedGlobal counts subtrees a shard offer mine cut with the
	// two-round protocol's OfferBound (globally unreachable support).
	PrunedGlobal int64
	// ShardOffers counts round-1 candidates offered across shard workers.
	ShardOffers int64
	// ExactCountRequests counts round-2 (candidate, shard) exact-count
	// fetches the sharded merge issued.
	ExactCountRequests int64
	// OneRoundGapFill counts the (candidate, shard) fetches the PR 3
	// one-round bound would have issued from the same pool — the baseline
	// ExactCountRequests is measured against.
	OneRoundGapFill int64
	// Duration is the wall-clock mining time.
	Duration time.Duration
}

// Result is a completed mining run.
type Result struct {
	// TopK lists the retained GRs, best first (Definition 5 rank).
	TopK []gr.Scored
	// Stats summarises the search.
	Stats Stats
	// Options echoes the normalized options used.
	Options Options
	// TotalEdges is |E| of the mined network (relative supports divide by
	// this).
	TotalEdges int
}

// Mine builds the compact store for g and runs GRMiner.
func Mine(g *graph.Graph, opt Options) (*Result, error) {
	return MineStore(store.Build(g), opt)
}

// MineStore runs GRMiner over a pre-built store (Algorithm 1). The store is
// read-only during the run and may be reused across runs.
func MineStore(st *store.Store, opt Options) (*Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	if n := len(st.Graph().Schema().Node); n > 64 {
		// betaMask packs node-attribute indices into a uint64.
		return nil, fmt.Errorf("core: %d node attributes exceed the supported maximum of 64", n)
	}
	if opt.Parallelism > 1 {
		return mineParallel(st, opt)
	}
	m := newMiner(st, opt)
	start := time.Now()
	m.run()
	m.stats.Duration = time.Since(start)
	res := &Result{TopK: m.top.Items(), Stats: m.stats, Options: opt, TotalEdges: st.NumEdges()}
	return res, nil
}

// lwPair is a recorded blocker for the generality filter: the LHS and edge
// descriptor of a GR that satisfied Definition 5 condition (1).
type lwPair struct {
	l, w gr.Descriptor
}

// blockerMap indexes recorded blockers by interned RHS descriptor id — a
// slice lookup instead of the string RHSKey the hot path used to build per
// probe (DESIGN.md §7). It is the single implementation of Definition 5
// condition (2)'s subset test, shared by the sequential walk, the parallel
// workers, and the coordinators' final merges so blocking semantics cannot
// fork between them. Like its dictionary, a blockerMap is single-owner
// state: parallel workers each hold their own.
type blockerMap struct {
	dict *intern.Dict
	byR  [][]lwPair
	// touched lists the ids with recorded blockers so reset() clears in
	// O(recorded), letting one blockerMap serve every batch of an
	// incremental engine without reallocating.
	touched []intern.DescID
}

func newBlockerMap(dict *intern.Dict) *blockerMap {
	return &blockerMap{dict: dict}
}

// reset forgets every recorded blocker, keeping all allocations.
func (bm *blockerMap) reset() {
	for _, rid := range bm.touched {
		bm.byR[rid] = bm.byR[rid][:0]
	}
	bm.touched = bm.touched[:0]
}

// blocks reports whether a recorded blocker generalises g: same RHS, LHS
// and edge conditions subsets of g's.
func (bm *blockerMap) blocks(g gr.GR) bool {
	rid := bm.dict.NodeDesc(g.R)
	if int(rid) >= len(bm.byR) {
		return false
	}
	for _, b := range bm.byR[rid] {
		if b.l.SubsetOf(g.L) && b.w.SubsetOf(g.W) {
			return true
		}
	}
	return false
}

// record registers g as a future generality blocker.
func (bm *blockerMap) record(g gr.GR) {
	rid := bm.dict.NodeDesc(g.R)
	if n := bm.dict.NumDescs(); len(bm.byR) < n {
		bm.byR = append(bm.byR, make([][]lwPair, n-len(bm.byR))...)
	}
	if len(bm.byR[rid]) == 0 {
		bm.touched = append(bm.touched, rid)
	}
	bm.byR[rid] = append(bm.byR[rid], lwPair{l: g.L, w: g.W})
}

// minerScratch is the reusable allocation set behind one miner: the
// recursion buffers, the dense id-indexed tables (all indexed by ids from
// one intern.Dict), and the bitmap-descent scratch. A one-shot mine gets a
// fresh scratch; the incremental engine keeps one per engine — with the
// store's persistent dictionary — so per-batch re-mines run out of
// steady-state buffers instead of re-growing maps (DESIGN.md §7). reset()
// prepares it for the next run in O(entries touched last run); it never
// releases memory. Single-owner, like the dictionary it wraps.
type minerScratch struct {
	dict      *intern.Dict
	buffers   [][]int32
	groupBufs [][]csort.Group
	blockers  *blockerMap
	// rCounts memoises |E(r)| by interned RHS id, stored as count+1 so the
	// zero value means "unknown" and growth needs no sentinel fill.
	rCounts  []int32
	rTouched []intern.DescID
	// qual memoises ExactGenerality verdicts by interned GR id:
	// 0 unknown, 1 non-qualifying, 2 qualifying.
	qual        []uint8
	qualTouched []intern.GRID
	// dataBMs[depth] is the bitmap of the partition a bitmap descent is
	// refining; andBM the intersection output (consumed into a row buffer
	// before any deeper descent, so one suffices for all depths).
	dataBMs []store.Bitmap
	andBM   store.Bitmap
	// allRows is the AllEdgesInto scratch for root base partitions.
	allRows []int32
	// The attribute position lists of Equations 7/8 are schema-static, so
	// they are computed once per scratch and shared by every run.
	ordersInit  bool
	slOrder     []int
	swOrder     []int
	staticSR    []int
	nonHomAttrs []int
	homAttrs    []int
	// srBuf backs the dynamic RHS order of the live RHS subtree and rc is
	// that subtree's context. One of each suffices: RIGHT only ever extends
	// the RHS, so enterRight never nests.
	srBuf      []int
	rc         rctx
	homAttrBuf []int
	homWantBuf []graph.Value
}

func newMinerScratch(dict *intern.Dict) *minerScratch {
	return &minerScratch{dict: dict, blockers: newBlockerMap(dict)}
}

// reset clears per-run state, keeping every allocation (and the dictionary,
// whose ids are stable for its lifetime).
func (s *minerScratch) reset() {
	s.blockers.reset()
	for _, rid := range s.rTouched {
		s.rCounts[rid] = 0
	}
	s.rTouched = s.rTouched[:0]
	for _, id := range s.qualTouched {
		s.qual[id] = 0
	}
	s.qualTouched = s.qualTouched[:0]
}

type miner struct {
	st     *store.Store
	schema *graph.Schema
	opt    Options
	metric metrics.Metric

	part *csort.Partitioner
	top  *topk.List
	// dict is scr's interning dictionary (hoisted for hot-path access). It
	// is private to this miner unless the caller supplied a persistent
	// scratch (the incremental engine, which passes the store's dictionary
	// so ids stay stable across batches).
	dict *intern.Dict
	// scr holds the recursion buffers and dense tables: the generality
	// blockers (recorded subset-first, so every generalisation precedes its
	// specialisations), the |E(r)| memo for metrics that need supp(r), and
	// the sequential-mode ExactGenerality verdict memo. Parallel workers
	// share the sharded-by-RHS qualMemo for verdicts instead.
	scr      *minerScratch
	qualMemo *qualMemo
	// capture, when set, receives every candidate satisfying Definition 5
	// condition (1) together with its exact counts, replacing the top-k and
	// generality machinery; the incremental engine uses it to build its
	// tracked candidate pool.
	capture func(g gr.GR, c metrics.Counts, score float64)
	// bound, when set (shard offer mines under the two-round protocol),
	// additionally prunes subtrees whose GRs provably fail the *global*
	// support threshold — the local MinSupp here is the relaxed per-shard
	// one, so this is the only global pruning a shard walk gets.
	bound *OfferBound
	// aff, when set (scoped incremental re-mines), filters every partition
	// descent by the batch's affected (attribute, value) keys: a pool
	// entrant's promoting edge carries the entrant's full descriptor, so
	// every partition key on the entrant's SFDF path is affected-marked and
	// the walk still reaches it; descents through unmarked keys provably
	// lead to no entrant. affSkipR disables the filter for RHS descents —
	// deletion entrants carry only l ∧ w (see incremental.go), so batches
	// containing deletions must not filter R positions.
	aff      *affectedKeys
	affSkipR bool

	slOrder []int
	swOrder []int
	totalE  int
	stats   Stats

	// Parallel-worker state (nil in sequential mode): candidates live in
	// the worker's private top list (DynamicFloor) or collected slice
	// (static floor) and are merged once after all workers finish; the only
	// shared mutable state is the atomic pruning floor. See parallel.go.
	parF      *parFloor
	collected []gr.Scored
}

func newMiner(st *store.Store, opt Options) *miner {
	return newMinerScr(st, opt, nil)
}

// newMinerScr builds a miner on an existing scratch (nil for a fresh private
// one). Only a single-owner scratch may be passed: the incremental engine
// hands its per-engine scratch — carrying the store's persistent dictionary —
// to the re-mine and rebuild walks it runs one at a time.
func newMinerScr(st *store.Store, opt Options, scr *minerScratch) *miner {
	schema := st.Graph().Schema()
	maxDomain := 1
	for i := range schema.Node {
		if schema.Node[i].Domain > maxDomain {
			maxDomain = schema.Node[i].Domain
		}
	}
	for i := range schema.Edge {
		if schema.Edge[i].Domain > maxDomain {
			maxDomain = schema.Edge[i].Domain
		}
	}
	if scr == nil {
		scr = newMinerScratch(intern.NewDict(intern.NewLayout(schema)))
	}
	if !scr.ordersInit {
		scr.ordersInit = true
		scr.slOrder = lhsOrder(schema)
		scr.swOrder = edgeOrder(schema)
		scr.staticSR = staticRHSOrder(schema)
		scr.nonHomAttrs = schema.NonHomophilyNodeAttrs()
		scr.homAttrs = schema.HomophilyNodeAttrs()
	}
	return &miner{
		st:      st,
		schema:  schema,
		opt:     opt,
		metric:  opt.Metric,
		part:    csort.New(maxDomain),
		top:     topk.New(opt.K),
		dict:    scr.dict,
		scr:     scr,
		slOrder: scr.slOrder,
		swOrder: scr.swOrder,
		totalE:  st.NumEdges(),
	}
}

// buffer returns the scratch slice for the given recursion depth, sized to
// hold n ids. Buffers persist across sibling partitions at the same depth:
// a partition's groups are fully processed (including deeper recursion into
// higher-depth buffers) before the next dimension reuses the slice.
func (m *miner) buffer(depth, n int) []int32 {
	s := m.scr
	for len(s.buffers) <= depth {
		s.buffers = append(s.buffers, nil)
	}
	if cap(s.buffers[depth]) < n {
		s.buffers[depth] = make([]int32, n)
	}
	return s.buffers[depth][:n]
}

// partition runs the counting sort and snapshots the group list into a
// depth-scoped buffer: the Partitioner reuses its internal group slice, so
// recursive Partition calls would otherwise clobber the groups a caller is
// still iterating.
func (m *miner) partition(depth int, data []int32, key func(int32) uint16, out []int32) []csort.Group {
	m.stats.PartitionCalls++
	groups := m.part.Partition(data, key, out)
	s := m.scr
	for len(s.groupBufs) <= depth {
		s.groupBufs = append(s.groupBufs, nil)
	}
	s.groupBufs[depth] = append(s.groupBufs[depth][:0], groups...)
	return s.groupBufs[depth]
}

// run is Algorithm 1's Main: RIGHT, EDGE, LEFT over the full edge set.
func (m *miner) run() {
	if m.totalE == 0 {
		return
	}
	all := m.st.AllEdgesInto(m.scr.allRows)
	m.scr.allRows = all
	m.enterRight(all, 1, nil, nil)
	m.edge(all, 1, nil, nil, len(m.swOrder))
	m.left(all, 1, nil, len(m.slOrder))
}

// left is Algorithm 1's LEFT: extend the LHS descriptor by each node
// attribute at a position below maxPos, then branch into RIGHT, EDGE, and
// deeper LEFT on every surviving partition.
func (m *miner) left(data []int32, depth int, lhs gr.Descriptor, maxPos int) {
	if m.opt.MaxL > 0 && len(lhs) >= m.opt.MaxL {
		return
	}
	if m.useBitmaps() && m.bitmapsPayOff(len(data), m.slOrder[:maxPos], m.aff.L) {
		m.leftBitmaps(data, depth, lhs, maxPos)
		return
	}
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := m.slOrder[pos]
		if m.aff != nil && m.aff.L[attr].empty() {
			continue // no affected value ⇒ no entrant below any group
		}
		groups := m.partition(depth, data, func(e int32) uint16 {
			return uint16(m.st.LVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue // null never forms a descriptor
			}
			part := buf[grp.Lo:grp.Hi]
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			if m.aff != nil && !m.aff.L[attr].contains(graph.Value(grp.Val)) {
				continue
			}
			lhs2 := lhs.With(attr, graph.Value(grp.Val))
			if m.bound != nil && m.bound.prune(len(part), lhs2, nil, nil) {
				m.stats.PrunedGlobal++
				continue
			}
			m.leftGroup(part, depth, lhs2, pos)
		}
	}
}

// leftGroup processes one LHS partition: branch into RIGHT, EDGE, and
// deeper LEFT (Algorithm 1, lines 12-14).
func (m *miner) leftGroup(part []int32, depth int, lhs2 gr.Descriptor, pos int) {
	m.enterRight(part, depth+1, lhs2, nil)
	m.edge(part, depth+1, lhs2, nil, len(m.swOrder))
	m.left(part, depth+1, lhs2, pos)
}

// edge is Algorithm 1's EDGE: extend the edge descriptor, then branch into
// RIGHT and deeper EDGE.
func (m *miner) edge(data []int32, depth int, lhs, w gr.Descriptor, maxPos int) {
	if m.opt.MaxW > 0 && len(w) >= m.opt.MaxW {
		return
	}
	if m.useBitmaps() && m.bitmapsPayOff(len(data), m.swOrder[:maxPos], m.aff.W) {
		m.edgeBitmaps(data, depth, lhs, w, maxPos)
		return
	}
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := m.swOrder[pos]
		if m.aff != nil && m.aff.W[attr].empty() {
			continue // no affected value ⇒ no entrant below any group
		}
		groups := m.partition(depth, data, func(e int32) uint16 {
			return uint16(m.st.EVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			part := buf[grp.Lo:grp.Hi]
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			if m.aff != nil && !m.aff.W[attr].contains(graph.Value(grp.Val)) {
				continue
			}
			w2 := w.With(attr, graph.Value(grp.Val))
			if m.bound != nil && m.bound.prune(len(part), lhs, w2, nil) {
				m.stats.PrunedGlobal++
				continue
			}
			m.edgeGroup(part, depth, lhs, w2, pos)
		}
	}
}

// edgeGroup processes one edge-descriptor partition: branch into RIGHT and
// deeper EDGE (Algorithm 1, lines 20-21).
func (m *miner) edgeGroup(part []int32, depth int, lhs, w2 gr.Descriptor, pos int) {
	m.enterRight(part, depth+1, lhs, w2)
	m.edge(part, depth+1, lhs, w2, pos)
}

// useBitmaps reports whether an affected-key descent may run on packed
// posting bitmaps instead of counting sort at all: scoped re-mine only
// (aff set), postings maintained, and not an offer mine — the offer's
// global-bound prune inspects every group, not just affected ones.
// Eligible nodes still weigh the two techniques with bitmapsPayOff.
func (m *miner) useBitmaps() bool {
	return m.aff != nil && m.bound == nil && m.st.PostingsEnabled()
}

// bitmapsPayOff decides, per descent node, whether serving the affected
// groups by bitmap intersection beats counting sort. A scoped re-mine only
// needs the groups whose (attribute, value) is affected-marked, so ANDing
// the partition's bitmap against each marked value's live-row bitmap costs
// ~words-per-bitmap word ops per marked value (plus packing the partition
// once), where counting sort costs ~|data| per position that has any marked
// value. Small batches mark a handful of values and the bitmap walk wins
// near the root; wide batches (or deep, tiny partitions) are cheaper to
// counting-sort, since every AND sweeps the full row width no matter how
// small the partition is.
func (m *miner) bitmapsPayOff(dataLen int, order []int, sets []affSet) bool {
	words := (m.st.NumRows() + 63) / 64
	active, vals := 0, 0
	for _, attr := range order {
		if n := len(sets[attr].vals); n > 0 {
			active++
			vals += n
		}
	}
	if vals == 0 {
		return false // nothing affected here; the counting path skips every position
	}
	return words*vals < active*dataLen
}

// dataBitmap packs data's rows into the depth's scratch bitmap. The caller
// must clear it with clearDataBitmap(depth, data) before returning; only one
// descent per depth is ever live, so per-depth scratch suffices.
func (m *miner) dataBitmap(depth int, data []int32) store.Bitmap {
	s := m.scr
	for len(s.dataBMs) <= depth {
		s.dataBMs = append(s.dataBMs, nil)
	}
	bm := s.dataBMs[depth]
	for _, row := range data {
		bm = bm.Set(row)
	}
	s.dataBMs[depth] = bm
	return bm
}

func (m *miner) clearDataBitmap(depth int, data []int32) {
	bm := m.scr.dataBMs[depth]
	for _, row := range data {
		bm.Clear(row)
	}
}

// intersect materialises data ∩ live(side bitmap for val) into the depth
// buffer. The and-scratch is consumed into buf before any deeper recursion,
// so a single andBM serves all depths.
func (m *miner) intersect(dataBM, valBM store.Bitmap, buf []int32) []int32 {
	m.scr.andBM = store.AndInto(m.scr.andBM, dataBM, valBM)
	return m.scr.andBM.RowsInto(buf)
}

// leftBitmaps is the bitmap form of left's loop body: iterate only the
// affected (attribute, value) keys, ascending by value — the same group
// order counting sort yields — so the walk emits candidates in the identical
// sequence. A value absent from the partition intersects to the empty set,
// mirroring the group counting sort never forms.
func (m *miner) leftBitmaps(data []int32, depth int, lhs gr.Descriptor, maxPos int) {
	dataBM := m.dataBitmap(depth, data)
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := m.slOrder[pos]
		for _, val := range m.aff.L[attr].vals {
			part := m.intersect(dataBM, m.st.LBitmap(attr, val), buf)
			if len(part) == 0 {
				continue
			}
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			m.leftGroup(part, depth, lhs.With(attr, val), pos)
		}
	}
	m.clearDataBitmap(depth, data)
}

// edgeBitmaps is the bitmap form of edge's loop body; see leftBitmaps.
func (m *miner) edgeBitmaps(data []int32, depth int, lhs, w gr.Descriptor, maxPos int) {
	dataBM := m.dataBitmap(depth, data)
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := m.swOrder[pos]
		for _, val := range m.aff.W[attr].vals {
			part := m.intersect(dataBM, m.st.WBitmap(attr, val), buf)
			if len(part) == 0 {
				continue
			}
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			m.edgeGroup(part, depth, lhs, w.With(attr, val), pos)
		}
	}
	m.clearDataBitmap(depth, data)
}

// rightBitmaps is the bitmap form of right's loop body; see leftBitmaps.
// Never entered with affSkipR — deletion batches must examine every RHS
// group, which is exactly the counting-sort walk.
func (m *miner) rightBitmaps(rc *rctx, data []int32, depth int, rhs gr.Descriptor, maxPos int) {
	dataBM := m.dataBitmap(depth, data)
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := rc.sr[pos]
		for _, val := range m.aff.R[attr].vals {
			part := m.intersect(dataBM, m.st.RBitmap(attr, val), buf)
			if len(part) == 0 {
				continue
			}
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			m.rightGroup(rc, part, depth, rhs.With(attr, val), pos)
		}
	}
	m.clearDataBitmap(depth, data)
}

// rctx is the context of one RHS-expansion subtree: the base partition
// E(l ∧ w) it hangs off, the fixed l and w, the dynamic RHS order for this
// l, and the memoised homophily-effect supports (Section IV-D: every
// supp(l -w-> l[β]) a descendant needs is countable from base). The memo is
// a parallel key/value pair of slices scanned linearly — a subtree sees at
// most 2^|Hom| distinct β masks, and in practice a handful.
type rctx struct {
	base    []int32
	lhs, w  gr.Descriptor
	sr      []int
	homKeys []uint64
	homVals []int
}

// enterRight opens an RHS-expansion subtree below the node for (lhs, w).
// The context and its dynamic order live in the scratch: RIGHT only ever
// extends the RHS, so at most one subtree is live at a time.
func (m *miner) enterRight(base []int32, depth int, lhs, w gr.Descriptor) {
	rc := &m.scr.rc
	rc.base, rc.lhs, rc.w = base, lhs, w
	rc.homKeys = rc.homKeys[:0]
	rc.homVals = rc.homVals[:0]
	if m.opt.StaticRHSOrder {
		rc.sr = m.scr.staticSR
	} else {
		rc.sr = m.rhsOrderInto(lhs)
	}
	m.right(rc, base, depth, nil, len(rc.sr))
}

// rhsOrderInto is rhsOrder (Equation 8) writing into the scratch's order
// buffer, valid until the next enterRight.
func (m *miner) rhsOrderInto(lhs gr.Descriptor) []int {
	s := m.scr
	order := s.srBuf[:0]
	order = append(order, s.nonHomAttrs...)
	for _, a := range s.homAttrs {
		if !lhs.Has(a) {
			order = append(order, a) // Hr1
		}
	}
	for _, a := range s.homAttrs {
		if lhs.Has(a) {
			order = append(order, a) // Hr2
		}
	}
	s.srBuf = order
	return order
}

// right is Algorithm 1's RIGHT: extend the RHS descriptor, score the
// resulting GRs, prune by supp (Theorem 2(1)) and — for anti-monotone
// metrics — by the score floor (Theorem 3), and feed candidates through the
// generality filter into the top-k list.
func (m *miner) right(rc *rctx, data []int32, depth int, rhs gr.Descriptor, maxPos int) {
	if m.opt.MaxR > 0 && len(rhs) >= m.opt.MaxR {
		return
	}
	if !m.affSkipR && m.useBitmaps() && m.bitmapsPayOff(len(data), rc.sr[:maxPos], m.aff.R) {
		m.rightBitmaps(rc, data, depth, rhs, maxPos)
		return
	}
	buf := m.buffer(depth, len(data))
	for pos := 0; pos < maxPos; pos++ {
		attr := rc.sr[pos]
		if m.aff != nil && !m.affSkipR && m.aff.R[attr].empty() {
			continue // no affected value ⇒ no entrant below any group
		}
		groups := m.partition(depth, data, func(e int32) uint16 {
			return uint16(m.st.RVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			part := buf[grp.Lo:grp.Hi]
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			if m.aff != nil && !m.affSkipR && !m.aff.R[attr].contains(graph.Value(grp.Val)) {
				continue
			}
			rhs2 := rhs.With(attr, graph.Value(grp.Val))
			if m.bound != nil && m.bound.prune(len(part), rc.lhs, rc.w, rhs2) {
				m.stats.PrunedGlobal++
				continue
			}
			m.rightGroup(rc, part, depth, rhs2, pos)
		}
	}
}

// rightGroup scores one RHS partition and recurses (the body of Algorithm
// 1, lines 25-29).
func (m *miner) rightGroup(rc *rctx, part []int32, depth int, rhs2 gr.Descriptor, pos int) {
	g := gr.GR{L: rc.lhs, W: rc.w, R: rhs2}

	if g.Trivial(m.schema) {
		// Under Definition 5 trivial GRs are never reported and —
		// crucially — never score-pruned: extending a trivial RHS with a
		// non-matching homophily value can *raise* nhp (Remark 2), so
		// Theorem 3 does not license cutting this subtree. With
		// IncludeTrivial (the Table II conf study) they are scored like
		// any other GR; their β is empty so Hom stays 0, and pruning below
		// them is allowed only for metrics that never read the homophily
		// effect.
		m.stats.TrivialSeen++
		if m.opt.IncludeTrivial {
			c := metrics.Counts{LWR: len(part), LW: len(rc.base), E: m.totalE}
			if m.metric.NeedsR {
				c.R = m.rCount(g)
			}
			score := m.metric.Score(c)
			m.stats.Examined++
			if score >= m.opt.MinScore {
				m.stats.Candidates++
				m.emit(g, c, score)
			}
			if m.metric.RHSAntiMonotone && !m.metric.NeedsHom && score < m.floor() {
				m.stats.PrunedScore++
				return
			}
		}
		m.right(rc, part, depth+1, rhs2, pos)
		return
	}

	c := metrics.Counts{LWR: len(part), LW: len(rc.base), E: m.totalE}
	var mask uint64
	if m.metric.NeedsHom {
		if mask = m.betaMask(rc.lhs, rhs2); mask != 0 {
			c.Hom = m.homEffect(rc, mask)
		}
	}
	if m.metric.NeedsR {
		c.R = m.rCount(g)
	}
	score := m.metric.Score(c)
	m.stats.Examined++

	// Candidates are recorded before any floor pruning so that every
	// *examined* GR satisfying Definition 5 condition (1) becomes a
	// generality blocker, even when the dynamic floor stops it from
	// entering the top-k.
	if score >= m.opt.MinScore {
		m.stats.Candidates++
		m.emit(g, c, score)
	}
	prunable := m.metric.RHSAntiMonotone
	if m.opt.StaticRHSOrder && m.metric.NeedsHom && mask == 0 {
		// Ablation mode: without the dynamic ordering, a homophily value
		// conflicting with the LHS may still be appended below this node,
		// flipping β to non-empty and possibly raising nhp (Remark 2) —
		// the pruning Theorem 3 licenses is unavailable here.
		prunable = false
	}
	if prunable && score < m.floor() {
		// Theorem 3: every RHS extension of this non-trivial GR scores no
		// higher; cut the subtree.
		m.stats.PrunedScore++
		return
	}
	m.right(rc, part, depth+1, rhs2, pos)
}

// floor returns the effective pruning threshold: the user's MinScore,
// upgraded to the k-th best score under GRMiner(k) semantics. Parallel
// workers read the shared atomic floor — a single lock-free load — which
// only ever rises and never exceeds the final k-th best score, so pruning
// with it is sound.
func (m *miner) floor() float64 {
	f := m.opt.MinScore
	if m.opt.DynamicFloor {
		if m.parF != nil {
			if fl := m.parF.load(); fl > f {
				f = fl
			}
		} else if fl, ok := m.top.Floor(); ok && fl > f {
			f = fl
		}
	}
	return f
}

// emit routes a candidate meeting Definition 5 condition (1) either to the
// capture hook (pool-building runs of the incremental engine, which need the
// raw counts and no blocking) or through the regular generality filter and
// top-k machinery.
func (m *miner) emit(g gr.GR, c metrics.Counts, score float64) {
	if m.capture != nil {
		m.capture(g, c, score)
		return
	}
	m.consider(gr.Scored{GR: g, Supp: c.LWR, Score: score, Conf: metrics.Conf(c)})
}

// consider applies Definition 5 condition (2) — drop a GR if a strictly more
// general GR already satisfied condition (1) — then offers the survivor to
// the top-k list and records it as a future blocker.
//
// Parallel workers instead keep candidates private. With a static floor
// they collect into a local slice and the generality filter runs in the
// coordinator's final generality-ordered merge (the collected set is
// complete, so the merge is exact). Under DynamicFloor the normalized
// options force ExactGenerality, making the blocking decision
// order-independent so it happens right here; survivors enter the worker's
// private top-k list, and whenever that list's own floor rises the worker
// tries to CAS-raise the shared atomic floor with it.
func (m *miner) consider(s gr.Scored) {
	if m.parF != nil {
		if !m.opt.NoGeneralityFilter && m.opt.ExactGenerality {
			// The worker-local blocker map is a sound pre-filter before the
			// exact (and expensive) generalisation scan: a recorded blocker
			// is itself a qualifying generalisation, so a hit proves the
			// verdict the scan would reach. Misses fall through to the scan
			// because another worker may have enumerated the blocker.
			if m.scr.blockers.blocks(s.GR) || m.hasQualifyingGeneralization(s.GR) {
				m.stats.Blocked++
				return
			}
			m.scr.blockers.record(s.GR)
		}
		if m.opt.DynamicFloor {
			if m.top.Consider(s) {
				if fl, ok := m.top.Floor(); ok {
					m.parF.raise(fl)
				}
			}
		} else {
			m.collected = append(m.collected, s)
		}
		return
	}
	if m.opt.NoGeneralityFilter {
		m.top.Consider(s)
		return
	}
	if m.scr.blockers.blocks(s.GR) {
		m.stats.Blocked++
		return
	}
	if m.opt.ExactGenerality && m.hasQualifyingGeneralization(s.GR) {
		m.stats.Blocked++
		return
	}
	m.scr.blockers.record(s.GR)
	m.top.Consider(s)
}

// hasQualifyingGeneralization reports whether any strict generalisation of g
// (a GR with the same RHS and a subset of g's LHS and edge conditions)
// satisfies Definition 5 condition (1). Used by ExactGenerality to repair
// the dynamic-floor corner case; results are memoised per generalisation.
func (m *miner) hasQualifyingGeneralization(g gr.GR) bool {
	n := len(g.L) + len(g.W)
	if n == 0 || n > 20 {
		// No strict generalisation exists, or the enumeration would explode;
		// fall back to the in-search blocker set. In parallel mode that set
		// is worker-local, so for GRs beyond 20 conditions the sequential-
		// equality guarantee narrows to runs whose descriptor caps (MaxL +
		// MaxW ≤ 20 — AutoTune's caps are far below this) keep patterns
		// inside the exact check's reach; such runs are otherwise
		// pathological (2^20 subset scans per candidate).
		return false
	}
	// All probed generalisations share g's RHS, so in parallel mode one
	// shard of the shared memo covers the whole enumeration; sequential
	// runs memoise verdicts in the scratch's dense by-GR-id table instead.
	var shard *qualShard
	if m.qualMemo != nil {
		shard = m.qualMemo.shard(g.RHSKey())
	}
	graphG := m.st.Graph()
	for mask := 0; mask < (1<<n)-1; mask++ { // all proper subsets of (L ∪ W)
		var l, w gr.Descriptor
		for i, c := range g.L {
			if mask&(1<<i) != 0 {
				l = l.With(c.Attr, c.Val)
			}
		}
		for i, c := range g.W {
			if mask&(1<<(len(g.L)+i)) != 0 {
				w = w.With(c.Attr, c.Val)
			}
		}
		cand := gr.GR{L: l, W: w, R: g.R}
		var qual, seen bool
		var ck string
		var gid intern.GRID
		if shard != nil {
			ck = cand.Key()
			qual, seen = shard.get(ck)
		} else {
			gid = m.dict.GR(cand)
			if int(gid) < len(m.scr.qual) && m.scr.qual[gid] != 0 {
				qual, seen = m.scr.qual[gid] == 2, true
			}
		}
		if !seen {
			qual = false
			// A trivial generalisation can block only when IncludeTrivial
			// admits trivial GRs as candidates — mirroring the blocker map,
			// which records trivial candidates in exactly that mode. (Its β
			// is empty, so Eval's score matches the in-search one.)
			if !cand.Trivial(m.schema) || m.opt.IncludeTrivial {
				c := metrics.Eval(graphG, cand)
				qual = c.LWR >= m.opt.MinSupp && m.metric.Score(c) >= m.opt.MinScore
			}
			if shard != nil {
				shard.put(ck, qual)
			} else {
				if n := m.dict.NumGRs(); len(m.scr.qual) < n {
					m.scr.qual = append(m.scr.qual, make([]uint8, n-len(m.scr.qual))...)
				}
				if qual {
					m.scr.qual[gid] = 2
				} else {
					m.scr.qual[gid] = 1
				}
				m.scr.qualTouched = append(m.scr.qualTouched, gid)
			}
		}
		if qual {
			return true
		}
	}
	return false
}

// betaMask computes β (Equation 4) as a bitmask over node attribute
// indices: homophily attributes constrained on both sides with different
// values. Schemas are limited to 64 node attributes, far beyond any dataset
// in the paper.
func (m *miner) betaMask(lhs, rhs gr.Descriptor) uint64 {
	return betaMaskOf(m.schema, lhs, rhs)
}

// homEffect returns supp(l -w-> l[β]) for the β encoded by mask, counting
// within the subtree's base partition E(l ∧ w) and memoising per β. This
// realises Section IV-D: case 1 (β ⊂ R) and case 2 (β = R) collapse into a
// single bounded scan because base is exactly the partition whose earlier
// enumeration the paper's Property 2 relies on.
func (m *miner) homEffect(rc *rctx, mask uint64) int {
	for i, k := range rc.homKeys {
		if k == mask {
			return rc.homVals[i]
		}
	}
	m.stats.HomScans++
	// Gather the β attributes and their LHS values into the scratch buffers
	// (used only within this scan, so the single pair suffices).
	attrs := m.scr.homAttrBuf[:0]
	want := m.scr.homWantBuf[:0]
	for a := 0; a < len(m.schema.Node); a++ {
		if mask&(1<<uint(a)) == 0 {
			continue
		}
		lv, _ := rc.lhs.Get(a)
		attrs = append(attrs, a)
		want = append(want, lv)
	}
	m.scr.homAttrBuf, m.scr.homWantBuf = attrs, want
	count := 0
	for _, e := range rc.base {
		match := true
		for i, a := range attrs {
			if m.st.RVal(e, a) != want[i] {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	rc.homKeys = append(rc.homKeys, mask)
	rc.homVals = append(rc.homVals, count)
	return count
}

// rCount returns |E(r)| over the whole live edge set, memoised per interned
// RHS id in a dense table (stored as count+1; 0 means unseen).
func (m *miner) rCount(g gr.GR) int {
	scr := m.scr
	rid := m.dict.NodeDesc(g.R)
	if int(rid) < len(scr.rCounts) {
		if v := scr.rCounts[rid]; v != 0 {
			return int(v) - 1
		}
	}
	count := 0
	for e := int32(0); int(e) < m.st.NumRows(); e++ {
		if !m.st.Alive(e) {
			continue
		}
		match := true
		for _, c := range g.R {
			if m.st.RVal(e, c.Attr) != c.Val {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	if n := m.dict.NumDescs(); len(scr.rCounts) < n {
		scr.rCounts = append(scr.rCounts, make([]int32, n-len(scr.rCounts))...)
	}
	scr.rCounts[rid] = int32(count) + 1
	scr.rTouched = append(scr.rTouched, rid)
	return count
}
