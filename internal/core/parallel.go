package core

import (
	"sort"
	"sync"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Parallel mining decomposes the SFDF tree at its first level: the root's
// children — one per (attribute, value) partition of the full edge set,
// across the RIGHT, EDGE, and LEFT blocks — become independent tasks that
// worker goroutines process with private miner state (partitioner, scratch
// buffers, caches, statistics).
//
// Soundness:
//
//   - the tasks partition the enumeration space exactly as the sequential
//     walk does, so every GR is examined by exactly one worker;
//   - supp pruning is local and unaffected;
//   - with a static floor, workers prune only on MinScore, so the union of
//     collected candidates is the complete set of GRs satisfying
//     Definition 5 condition (1); the coordinator then applies condition
//     (2) in generality order (a complete candidate set makes the
//     blocker-map filter exact) and condition (3) by rank;
//   - with DynamicFloor, normalize() forces ExactGenerality so condition
//     (2) is decided order-independently inside each worker, which makes
//     the shared top-k floor hold only genuinely qualifying, unblocked
//     candidates; the floor therefore never exceeds the final k-th best
//     score and subtree pruning below it is sound. Floor *timing* varies
//     across runs, affecting work done but never the result set: a pruned
//     subtree only contains candidates scoring strictly below some floor
//     value, hence strictly below the final k-th best score.
type parShared struct {
	mu  sync.Mutex
	top *topk.List
}

func (p *parShared) offer(s gr.Scored) {
	p.mu.Lock()
	p.top.Consider(s)
	p.mu.Unlock()
}

func (p *parShared) floor() (float64, bool) {
	p.mu.Lock()
	f, ok := p.top.Floor()
	p.mu.Unlock()
	return f, ok
}

// parTask is one first-level subtree.
type parTask func(w *miner)

// mineParallel runs GRMiner with opt.Parallelism workers.
func mineParallel(st *store.Store, opt Options) (*Result, error) {
	start := time.Now()
	shared := &parShared{top: topk.New(opt.K)}

	// The coordinator miner builds the first-level partitions.
	coord := newMiner(st, opt)
	coord.par = shared
	tasks := buildTasks(coord)

	workers := opt.Parallelism
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	taskCh := make(chan parTask)
	miners := make([]*miner, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := newMiner(st, opt)
		w.par = shared
		miners[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				t(w)
			}
		}()
	}
	for _, t := range tasks {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()

	// Merge: coordinator's own collected candidates (none — it only built
	// tasks) plus every worker's.
	collected := coord.collected
	stats := coord.stats
	for _, w := range miners {
		collected = append(collected, w.collected...)
		stats.PartitionCalls += w.stats.PartitionCalls
		stats.Examined += w.stats.Examined
		stats.TrivialSeen += w.stats.TrivialSeen
		stats.PrunedSupp += w.stats.PrunedSupp
		stats.PrunedScore += w.stats.PrunedScore
		stats.Candidates += w.stats.Candidates
		stats.Blocked += w.stats.Blocked
		stats.HomScans += w.stats.HomScans
	}

	topList := mergeCandidates(collected, opt, &stats)
	stats.Duration = time.Since(start)
	return &Result{TopK: topList, Stats: stats, Options: opt, TotalEdges: st.NumEdges()}, nil
}

// buildTasks materialises the first-level partitions. Each partition's id
// slice is copied out of the coordinator's scratch buffer because the tasks
// outlive the loop.
func buildTasks(m *miner) []parTask {
	if m.totalE == 0 {
		return nil
	}
	all := m.st.AllEdges()
	var tasks []parTask
	buf := m.buffer(1, len(all))

	// Root RIGHT block: GRs with empty LHS and W. Each worker needs its own
	// rctx (the homophily-effect cache is written during search), sharing
	// the read-only full edge list as base.
	sr := rhsOrder(m.schema, gr.Descriptor(nil).Has)
	if m.opt.StaticRHSOrder {
		sr = staticRHSOrder(m.schema)
	}
	for pos := 0; pos < len(sr); pos++ {
		attr := sr[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.RVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			rhs2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, func(w *miner) {
				rc := &rctx{base: all, sr: sr}
				w.rightGroup(rc, part, 1, rhs2, pos)
			})
		}
	}

	// Root EDGE block.
	for pos := 0; pos < len(m.swOrder); pos++ {
		attr := m.swOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.EVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			w2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, func(w *miner) {
				w.edgeGroup(part, 1, nil, w2, pos)
			})
		}
	}

	// Root LEFT block.
	for pos := 0; pos < len(m.slOrder); pos++ {
		attr := m.slOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.LVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			if len(part) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			lhs2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, func(w *miner) {
				w.leftGroup(part, 1, lhs2, pos)
			})
		}
	}
	return tasks
}

// mergeCandidates applies Definition 5 conditions (2) and (3) to the union
// of worker candidates. With ExactGenerality the candidates were already
// blocked exactly inside the workers and only ranking remains; otherwise
// candidates are processed most-general-first against a blocker map, which
// is exact because the static-floor collection is complete.
func mergeCandidates(collected []gr.Scored, opt Options, stats *Stats) []gr.Scored {
	list := topk.New(opt.K)
	if opt.NoGeneralityFilter || opt.ExactGenerality {
		for _, s := range collected {
			list.Consider(s)
		}
		return list.Items()
	}
	sort.Slice(collected, func(i, j int) bool {
		li := len(collected[i].GR.L) + len(collected[i].GR.W)
		lj := len(collected[j].GR.L) + len(collected[j].GR.W)
		if li != lj {
			return li < lj
		}
		return collected[i].GR.Key() < collected[j].GR.Key()
	})
	blockers := make(map[string][]lwPair)
	for _, s := range collected {
		key := s.GR.RHSKey()
		blocked := false
		for _, b := range blockers[key] {
			if b.l.SubsetOf(s.GR.L) && b.w.SubsetOf(s.GR.W) {
				blocked = true
				break
			}
		}
		if blocked {
			stats.Blocked++
			continue
		}
		blockers[key] = append(blockers[key], lwPair{l: s.GR.L, w: s.GR.W})
		list.Consider(s)
	}
	return list.Items()
}
