package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/intern"
	"grminer/internal/store"
	"grminer/internal/topk"
)

// Parallel mining decomposes the SFDF tree at its first level: the root's
// children — one per (attribute, value) partition of the full edge set,
// across the RIGHT, EDGE, and LEFT blocks — become independent tasks that
// worker goroutines process with private miner state (partitioner, scratch
// buffers, caches, statistics).
//
// The execution engine is lock-light. Workers share exactly one word of
// mutable state: the pruning floor, an atomic.Uint64 holding float64 bits
// that is CAS-raised (never lowered) when a worker's local k-th best score
// beats it. Everything else is private: each worker accumulates candidates
// into its own topk.List (DynamicFloor) or candidate slice (static floor),
// and the coordinator merges the per-worker results exactly once after all
// workers finish. Tasks are drained from a slice ordered largest-partition-
// first through an atomic index, so the biggest subtrees start earliest and
// stragglers do not tail the run; claiming a task is a single atomic add.
//
// Soundness (the sequential mergeCandidates argument carries over):
//
//   - the tasks partition the enumeration space exactly as the sequential
//     walk does, so every GR is examined by exactly one worker;
//   - supp pruning is local and unaffected;
//   - with a static floor, workers prune only on MinScore, so the union of
//     the per-worker candidate slices is the complete set of GRs satisfying
//     Definition 5 condition (1); the coordinator then applies condition
//     (2) in generality order (a complete candidate set makes the
//     blocker-map filter exact) and condition (3) by rank — exactly what
//     mergeCandidates did for the old shared-list coordinator, because that
//     merge only ever consumed the union of collected candidates and never
//     depended on *when* (or through which lock) candidates arrived;
//   - with DynamicFloor, normalize() forces ExactGenerality so condition
//     (2) is decided order-independently inside each worker; each local
//     list therefore holds only genuinely qualifying, unblocked candidates.
//     A worker's local k-th best score is a lower bound on the global k-th
//     best (the best k of a superset dominate the best k of any subset), so
//     the shared atomic floor — the maximum of local k-th bests published
//     so far — never exceeds the final k-th best score and subtree pruning
//     below it is sound. Floor *timing* varies across runs, affecting work
//     done but never the result set: a pruned subtree only contains
//     candidates scoring strictly below some floor value, hence strictly
//     below the final k-th best score. Every global top-k entry survives in
//     its worker's bound-k local list (it outranks the global k-th, so it
//     can never be evicted), which makes the final topk.Merge of the local
//     lists exact.

// parFloor is the one piece of shared mutable state: the dynamic pruning
// floor as atomic float64 bits. Reads are a single atomic load; raises are
// a CAS loop comparing as floats (bit-pattern ordering would be wrong for
// negative scores, which gain and Piatetsky-Shapiro can produce).
type parFloor struct {
	// grlint:atomic every worker reads this on every candidate; a plain
	// load/store would race with the CAS raise.
	bits atomic.Uint64
}

func newParFloor() *parFloor {
	f := &parFloor{}
	f.bits.Store(math.Float64bits(math.Inf(-1)))
	return f
}

// load returns the current floor (-Inf until the first raise).
func (p *parFloor) load() float64 { return math.Float64frombits(p.bits.Load()) }

// raise lifts the floor to s if s beats the current value. The floor is
// monotonically non-decreasing: a stale competing CAS can only have
// published a lower value, which the retry loop then overwrites.
func (p *parFloor) raise(s float64) {
	for {
		old := p.bits.Load()
		if s <= math.Float64frombits(old) {
			return
		}
		if p.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// qualMemo is the ExactGenerality verdict cache shared by all workers,
// sharded by RHS key: every generalisation probed for one candidate shares
// the candidate's RHS, so hasQualifyingGeneralization pins a single shard
// for its whole subset enumeration and pays one hash per candidate instead
// of one per probe. Sharing the memo across workers removes the duplicate
// ExactGenerality support scans the old per-worker caches performed whenever
// two workers probed the same generalisation (common: every candidate under
// the same first-level subtree probes the same short prefixes). Verdicts are
// pure functions of the (immutable) store and options, so a racing
// recompute is wasted work, never a wrong answer.
type qualMemo struct {
	shards [qualMemoShards]qualShard
}

const qualMemoShards = 32

type qualShard struct {
	mu sync.Mutex
	m  map[string]bool
}

func newQualMemo() *qualMemo {
	q := &qualMemo{}
	for i := range q.shards {
		q.shards[i].m = make(map[string]bool)
	}
	return q
}

// shard picks the shard for one candidate's RHS key (FNV-1a).
func (q *qualMemo) shard(rhsKey string) *qualShard {
	h := uint32(2166136261)
	for i := 0; i < len(rhsKey); i++ {
		h ^= uint32(rhsKey[i])
		h *= 16777619
	}
	return &q.shards[h%qualMemoShards]
}

// get returns the memoised verdict for a generalisation key, if present.
func (s *qualShard) get(key string) (verdict, ok bool) {
	s.mu.Lock()
	verdict, ok = s.m[key]
	s.mu.Unlock()
	return verdict, ok
}

// put stores a verdict.
func (s *qualShard) put(key string, verdict bool) {
	s.mu.Lock()
	s.m[key] = verdict
	s.mu.Unlock()
}

// parTask is one first-level subtree, tagged with its partition size so the
// scheduler can start the largest subtrees first.
type parTask struct {
	size int
	run  func(w *miner)
}

// mineParallel runs GRMiner with opt.Parallelism workers.
func mineParallel(st *store.Store, opt Options) (*Result, error) {
	start := time.Now()

	// The coordinator miner builds the first-level partitions.
	coord := newMiner(st, opt)
	tasks := buildTasks(coord)

	// With zero or one task there is nothing to run concurrently; spawning
	// idle workers would only pay goroutine and merge overhead. Run the
	// task (if any) on one sequential miner (parF nil, so consider() takes
	// the sequential path; opt is already normalized, so the
	// DynamicFloor/ExactGenerality semantics match the parallel path) and
	// reuse the first-level work the coordinator already did rather than
	// re-partitioning the full edge set.
	if len(tasks) < 2 {
		m := newMiner(st, opt)
		for _, t := range tasks {
			t.run(m)
		}
		stats := coord.stats
		addStats(&stats, &m.stats)
		stats.Duration = time.Since(start)
		return &Result{TopK: m.top.Items(), Stats: stats, Options: opt, TotalEdges: st.NumEdges()}, nil
	}

	// Largest partitions first: first-level subtree cost grows with
	// partition size, so scheduling big tasks early keeps the tail of the
	// run filled with small ones. The stable sort keeps the build order for
	// equal sizes, which keeps scheduling deterministic.
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].size > tasks[j].size })

	workers := opt.Parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	floor := newParFloor()
	var memo *qualMemo
	if opt.ExactGenerality && !opt.NoGeneralityFilter {
		memo = newQualMemo()
	}
	miners := make([]*miner, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := newMiner(st, opt)
		w.parF = floor
		w.qualMemo = memo
		miners[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(tasks) {
					return
				}
				tasks[t].run(w)
			}
		}()
	}
	wg.Wait()

	// Merge once: coordinator stats (supp pruning observed while building
	// tasks) plus every worker's results.
	stats := coord.stats
	var collected []gr.Scored
	lists := make([]*topk.List, 0, workers)
	for _, w := range miners {
		collected = append(collected, w.collected...)
		lists = append(lists, w.top)
		addStats(&stats, &w.stats)
	}

	var topList []gr.Scored
	if opt.DynamicFloor {
		// Workers kept bound-k local lists (generality was already decided
		// in-worker, order-independently); merging them is exact.
		topList = topk.Merge(opt.K, lists...).Items()
	} else {
		topList = mergeCandidates(collected, opt, st.Graph().Schema(), &stats)
	}
	stats.Duration = time.Since(start)
	return &Result{TopK: topList, Stats: stats, Options: opt, TotalEdges: st.NumEdges()}, nil
}

// addStats accumulates one miner's counters (not Duration) into total.
func addStats(total, s *Stats) {
	total.PartitionCalls += s.PartitionCalls
	total.Examined += s.Examined
	total.TrivialSeen += s.TrivialSeen
	total.PrunedSupp += s.PrunedSupp
	total.PrunedScore += s.PrunedScore
	total.Candidates += s.Candidates
	total.Blocked += s.Blocked
	total.HomScans += s.HomScans
	total.PrunedGlobal += s.PrunedGlobal
	total.ShardOffers += s.ShardOffers
	total.ExactCountRequests += s.ExactCountRequests
	total.OneRoundGapFill += s.OneRoundGapFill
}

// buildTasks materialises the first-level partitions. Each partition's id
// slice is copied out of the coordinator's scratch buffer because the tasks
// outlive the loop.
func buildTasks(m *miner) []parTask {
	if m.totalE == 0 {
		return nil
	}
	all := m.st.AllEdges()
	var tasks []parTask
	buf := m.buffer(1, len(all))

	// Root RIGHT block: GRs with empty LHS and W. Each worker needs its own
	// rctx (the homophily-effect cache is written during search), sharing
	// the read-only full edge list as base.
	sr := rhsOrder(m.schema, gr.Descriptor(nil).Has)
	if m.opt.StaticRHSOrder {
		sr = staticRHSOrder(m.schema)
	}
	for pos := 0; pos < len(sr); pos++ {
		attr := sr[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.RVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			if int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			rhs2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, parTask{size: len(part), run: func(w *miner) {
				rc := &rctx{base: all, sr: sr}
				w.rightGroup(rc, part, 1, rhs2, pos)
			}})
		}
	}

	// Root EDGE block.
	for pos := 0; pos < len(m.swOrder); pos++ {
		attr := m.swOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.EVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			if int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			w2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, parTask{size: len(part), run: func(w *miner) {
				w.edgeGroup(part, 1, nil, w2, pos)
			}})
		}
	}

	// Root LEFT block.
	for pos := 0; pos < len(m.slOrder); pos++ {
		attr := m.slOrder[pos]
		groups := m.partition(1, all, func(e int32) uint16 {
			return uint16(m.st.LVal(e, attr))
		}, buf)
		for _, grp := range groups {
			if grp.Val == uint16(graph.Null) {
				continue
			}
			if int(grp.Hi-grp.Lo) < m.opt.MinSupp {
				m.stats.PrunedSupp++
				continue
			}
			part := append([]int32(nil), buf[grp.Lo:grp.Hi]...)
			lhs2 := gr.Descriptor(nil).With(attr, graph.Value(grp.Val))
			tasks = append(tasks, parTask{size: len(part), run: func(w *miner) {
				w.leftGroup(part, 1, lhs2, pos)
			}})
		}
	}
	return tasks
}

// mergeCandidates applies Definition 5 conditions (2) and (3) to the union
// of worker candidates. With ExactGenerality the candidates were already
// blocked exactly inside the workers and only ranking remains; otherwise
// candidates are processed most-general-first against a blocker map, which
// is exact because the static-floor collection is complete. One-shot (a
// fresh interning dictionary per merge); the per-batch incremental assemble
// has its own allocation-reusing twin in incremental.go.
func mergeCandidates(collected []gr.Scored, opt Options, schema *graph.Schema, stats *Stats) []gr.Scored {
	if opt.NoGeneralityFilter || opt.ExactGenerality {
		return topk.MergeItems(opt.K, collected).Items()
	}
	list := topk.New(opt.K)
	// Keys are precomputed once: the comparator runs O(n log n) times per
	// merge, where per-comparison Key() calls used to dominate profiles.
	keys := make([]string, len(collected))
	for i := range collected {
		keys[i] = collected[i].GR.Key()
	}
	sort.Sort(&keyedCandidates{items: collected, keys: keys})
	blockers := newBlockerMap(intern.NewDict(intern.NewLayout(schema)))
	for _, s := range collected {
		if blockers.blocks(s.GR) {
			stats.Blocked++
			continue
		}
		blockers.record(s.GR)
		list.Consider(s)
	}
	return list.Items()
}

// keyedCandidates sorts candidates most-general-first (fewest L∪W
// conditions, then canonical key) with the keys computed once up front.
type keyedCandidates struct {
	items []gr.Scored
	keys  []string
}

func (k *keyedCandidates) Len() int { return len(k.items) }
func (k *keyedCandidates) Less(i, j int) bool {
	li := len(k.items[i].GR.L) + len(k.items[i].GR.W)
	lj := len(k.items[j].GR.L) + len(k.items[j].GR.W)
	if li != lj {
		return li < lj
	}
	return k.keys[i] < k.keys[j]
}
func (k *keyedCandidates) Swap(i, j int) {
	k.items[i], k.items[j] = k.items[j], k.items[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}
