package core_test

import (
	"fmt"
	"strings"
	"testing"

	"grminer/internal/core"
	"grminer/internal/dataset"
	"grminer/internal/graph"
	"grminer/internal/store"
)

func planSchema(t *testing.T, nodeAttrs, edgeAttrs int) *graph.Schema {
	t.Helper()
	na := make([]graph.Attribute, nodeAttrs)
	for i := range na {
		na[i] = graph.Attribute{Name: fmt.Sprintf("N%d", i), Domain: 3}
	}
	ea := make([]graph.Attribute, edgeAttrs)
	for i := range ea {
		ea[i] = graph.Attribute{Name: fmt.Sprintf("E%d", i), Domain: 2}
	}
	s, err := graph.NewSchema(na, ea)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanTiers(t *testing.T) {
	schema := planSchema(t, 4, 1) // dims = 9

	small := core.PlanForSize(1000, schema, 8, core.Options{})
	if small.Tier != "small" || small.Parallelism != 1 {
		t.Errorf("tiny input planned %+v; want sequential small tier", small)
	}

	big := core.PlanForSize(5_000_000, schema, 8, core.Options{})
	if big.Tier != "large" || big.Parallelism != 8 {
		t.Errorf("large input planned %+v; want all 8 workers", big)
	}

	// Medium inputs scale workers with available work instead of grabbing
	// the whole budget.
	mid := core.PlanForSize(60_000, schema, 64, core.Options{})
	if mid.Parallelism < 2 || mid.Parallelism >= 64 {
		t.Errorf("medium input planned %d workers of budget 64", mid.Parallelism)
	}

	// A single-CPU budget is always sequential.
	one := core.PlanForSize(5_000_000, schema, 1, core.Options{})
	if one.Parallelism != 1 {
		t.Errorf("procs=1 planned %d workers", one.Parallelism)
	}
}

// The dynamic-floor crossover is lower than the static one: the CI-measured
// BENCH_scaling.json artifact (|E|=7200, dims=12) crossed at 2 workers
// under a dynamic floor while the static floor never crossed, so the same
// size must plan parallel with DynamicFloor and sequential without.
func TestPlanDynamicFloorCrossover(t *testing.T) {
	schema := planSchema(t, 5, 2) // dims = 12, the measured artifact's shape
	dyn := core.PlanForSize(7200, schema, 4, core.Options{DynamicFloor: true, K: 100})
	if dyn.Parallelism < 2 {
		t.Errorf("measured dynamic crossover point planned %+v; want parallel", dyn)
	}
	static := core.PlanForSize(7200, schema, 4, core.Options{})
	if static.Tier != "small" || static.Parallelism != 1 {
		t.Errorf("static floor at the same size planned %+v; want sequential small tier", static)
	}
}

func TestPlanWideSchemaCaps(t *testing.T) {
	wide := planSchema(t, 12, 9)
	p := core.PlanForSize(100_000, wide, 4, core.Options{})
	if p.MaxL == 0 || p.MaxR == 0 || p.MaxW == 0 {
		t.Errorf("wide schema left descriptors uncapped: %+v", p)
	}

	narrow := planSchema(t, 3, 1)
	q := core.PlanForSize(100_000, narrow, 4, core.Options{})
	if q.MaxL != 0 || q.MaxW != 0 || q.MaxR != 0 {
		t.Errorf("narrow schema got caps: %+v", q)
	}
}

func TestPlanUserSettingsWin(t *testing.T) {
	wide := planSchema(t, 12, 9)
	user := core.Options{Parallelism: 3, MaxL: 9, MaxW: 9, MaxR: 9}
	p := core.PlanForSize(10_000_000, wide, 16, user)
	got := p.Apply(user)
	if got.Parallelism != 3 || got.MaxL != 9 || got.MaxW != 9 || got.MaxR != 9 {
		t.Errorf("plan overrode user settings: %+v", got)
	}

	// Apply fills only zero fields.
	partial := core.Options{MaxL: 2}
	filled := core.PlanForSize(10_000_000, wide, 16, partial).Apply(partial)
	if filled.MaxL != 2 {
		t.Errorf("Apply overrode MaxL: %d", filled.MaxL)
	}
	if filled.MaxR == 0 || filled.Parallelism == 0 {
		t.Errorf("Apply left zero fields unfilled: %+v", filled)
	}
}

func TestPlanString(t *testing.T) {
	p := core.PlanForSize(1000, planSchema(t, 2, 1), 4, core.Options{})
	s := p.String()
	for _, want := range []string{"|E|=1000", "tier=small", "sequential"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

// MineAuto must return the same results as a hand-configured run: on the
// toy network the planner chooses the sequential path, and the descriptor
// caps stay off (narrow schema), so results match plain Mine exactly.
func TestMineAutoMatchesMine(t *testing.T) {
	g := dataset.ToyDating()
	auto, err := core.MineAuto(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Mine(g, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "mineauto", auto.TopK, plain.TopK)
	if auto.Options.Parallelism != 1 {
		t.Errorf("toy network auto-planned %d workers", auto.Options.Parallelism)
	}

	st := store.Build(g)
	fromStore, err := core.MineAutoStore(st, core.Options{MinSupp: 2, MinScore: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "mineauto-store", fromStore.TopK, plain.TopK)
}
