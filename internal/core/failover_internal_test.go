package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// lostErr is the transport-loss marker the rpc layer tags its failures
// with, reproduced here so the supervisor's classification can be tested
// without a network.
type lostErr struct{ msg string }

func (e lostErr) Error() string    { return e.msg }
func (e lostErr) WorkerLost() bool { return true }

// fakeWorker scripts a ShardWorker: it records every operation and can be
// told to fail the next ops with transport loss or an in-band error. It
// also implements Checkpointer/Restorer so the supervisor's truncation
// bookkeeping can be tested without real worker state: a checkpoint blob
// is just the worker's address.
type fakeWorker struct {
	addr       string
	ops        []string
	failLost   int   // fail this many upcoming ops with worker loss
	inBand     error // non-nil: fail every op with this plain error
	chkErr     error // non-nil: Checkpoint fails with this
	restoreErr error // non-nil: Restore fails with this
	closed     bool
}

func (f *fakeWorker) step(op string) error {
	if f.failLost > 0 {
		f.failLost--
		return lostErr{msg: "fake transport down"}
	}
	if f.inBand != nil {
		return f.inBand
	}
	f.ops = append(f.ops, op)
	return nil
}

func (f *fakeWorker) Addr() string  { return f.addr }
func (f *fakeWorker) NumEdges() int { return 0 }
func (f *fakeWorker) Close() error  { f.closed = true; return nil }

func (f *fakeWorker) Offer(bound *OfferBound) ([]ShardCandidate, Stats, error) {
	op := "offer"
	if bound == nil {
		op = "seed"
	}
	return nil, Stats{}, f.step(op)
}

func (f *fakeWorker) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	if err := f.step("counts"); err != nil {
		return nil, err
	}
	return make([]metrics.Counts, len(grs)), nil
}

func (f *fakeWorker) Ingest(b Batch) (IngestReply, error) {
	return IngestReply{}, f.step(fmt.Sprintf("ingest:%d", len(b.Ins)))
}

func (f *fakeWorker) Checkpoint() ([]byte, error) {
	if f.chkErr != nil {
		return nil, f.chkErr
	}
	f.ops = append(f.ops, "checkpoint")
	return []byte(f.addr), nil
}

func (f *fakeWorker) Restore(spec WorkerSpec, blob []byte) error {
	if f.restoreErr != nil {
		return f.restoreErr
	}
	f.ops = append(f.ops, "restore:"+string(blob))
	return nil
}

// fakeBuilder hands out scripted replacement workers.
type fakeBuilder struct {
	rebuilds              int
	replacements          []*fakeWorker
	replacementFailLost   int   // scripted failLost for each new replacement
	replacementRestoreErr error // scripted restoreErr for each new replacement
	err                   error
}

func (fb *fakeBuilder) Build(WorkerSpec) (ShardWorker, error) {
	return nil, errors.New("not used")
}

func (fb *fakeBuilder) Rebuild(WorkerSpec) (ShardWorker, error) {
	fb.rebuilds++
	if fb.err != nil {
		return nil, fb.err
	}
	w := &fakeWorker{
		addr:       fmt.Sprintf("replacement-%d", fb.rebuilds),
		failLost:   fb.replacementFailLost,
		restoreErr: fb.replacementRestoreErr,
	}
	fb.replacements = append(fb.replacements, w)
	return w, nil
}

func batchOf(n int) Batch {
	ins := make([]EdgeInsert, n)
	return Batch{Ins: ins}
}

// A lost worker must be closed, rebuilt, re-seeded, replayed in log order,
// and the failed operation re-issued — with the health record keeping score.
func TestSupervisorReplaysAfterLoss(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 2, Shards: 4}, fb, w0, 0)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Ingest(batchOf(1)); err != nil {
		t.Fatal(err)
	}

	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(2)); err != nil {
		t.Fatalf("ingest across a worker loss: %v", err)
	}
	if !w0.closed {
		t.Error("lost worker not closed")
	}
	if fb.rebuilds != 1 {
		t.Fatalf("%d rebuilds, want 1", fb.rebuilds)
	}
	// Replacement saw: pool re-seed, the logged batch, then the re-issued one.
	want := []string{"seed", "ingest:1", "ingest:2"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("replacement ops %v, want %v", fb.replacements[0].ops, want)
	}

	h := sup.healthSnapshot()
	if !h.Live || h.Shard != 2 || h.Addr != "replacement-1" {
		t.Errorf("health %+v, want live shard 2 on replacement-1", h)
	}
	if h.Replacements != 1 || h.Retries != 1 || h.ReplayedBatches != 1 {
		t.Errorf("counters %+v, want 1 replacement / 1 retry / 1 replayed batch", h)
	}
	if !strings.Contains(h.LastError, "transport down") {
		t.Errorf("LastError %q does not name the cause", h.LastError)
	}

	// The re-issued batch joined the log: a second loss replays both.
	fb.replacements[0].failLost = 1
	if _, _, err := sup.Offer(&OfferBound{}); err != nil {
		t.Fatalf("offer across the second loss: %v", err)
	}
	want = []string{"seed", "ingest:1", "ingest:2", "offer"}
	if got := fmt.Sprint(fb.replacements[1].ops); got != fmt.Sprint(want) {
		t.Errorf("second replacement ops %v, want %v", fb.replacements[1].ops, want)
	}
}

// An in-band application error means the worker is alive: no rebuild, no
// health change, the error escapes untouched.
func TestSupervisorInBandErrorNoFailover(t *testing.T) {
	w0 := &fakeWorker{addr: "home", inBand: errors.New("batch rejected: edge out of range")}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 0)

	_, err := sup.Ingest(batchOf(1))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("in-band error not surfaced: %v", err)
	}
	if fb.rebuilds != 0 {
		t.Errorf("in-band error triggered %d rebuilds", fb.rebuilds)
	}
	if h := sup.healthSnapshot(); !h.Live || h.Retries != 0 || h.LastError != "" {
		t.Errorf("in-band error dented the health record: %+v", h)
	}
}

// When no replacement exists the shard is marked down and the error names
// both the loss and the rebuild failure.
func TestSupervisorRebuildFailureMarksDown(t *testing.T) {
	w0 := &fakeWorker{addr: "home", failLost: 1}
	fb := &fakeBuilder{err: errors.New("every candidate refused")}
	sup := newSupervisor(WorkerSpec{Index: 1, Shards: 2}, fb, w0, 0)

	_, _, err := sup.Offer(nil)
	if err == nil || !strings.Contains(err.Error(), "no replacement available") {
		t.Fatalf("rebuild failure not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "transport down") || !strings.Contains(err.Error(), "refused") {
		t.Errorf("error hides the cause chain: %v", err)
	}
	if h := sup.healthSnapshot(); h.Live {
		t.Errorf("shard still reports live after a failed rebuild: %+v", h)
	}
}

// Exactly one recovery per operation: when the freshly replayed replacement
// dies on the re-issued op too, the loss escapes instead of looping.
func TestSupervisorSingleRecoveryPerOp(t *testing.T) {
	w0 := &fakeWorker{addr: "home", failLost: 1}
	fb := &fakeBuilder{replacementFailLost: 1}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 0)

	_, _, err := sup.Offer(nil)
	var lost interface{ WorkerLost() bool }
	if err == nil || !errors.As(err, &lost) {
		t.Fatalf("double loss should surface the transport error, got %v", err)
	}
	if fb.rebuilds != 1 {
		t.Errorf("%d rebuilds in one op, want exactly 1", fb.rebuilds)
	}
}

// Every interval acked batches the supervisor checkpoints the worker and
// truncates the replay log; recovery then installs the blob and replays at
// most interval batches, regardless of how long the stream ran.
func TestSupervisorCheckpointTruncatesLog(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 2)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := sup.Ingest(batchOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"seed", "ingest:1", "ingest:2", "checkpoint"}
	if got := fmt.Sprint(w0.ops); got != fmt.Sprint(want) {
		t.Fatalf("ops before loss %v, want %v", w0.ops, want)
	}
	h := sup.healthSnapshot()
	if h.CheckpointEpoch != 1 || h.LogSuffixLen != 0 {
		t.Fatalf("after checkpoint: epoch %d suffix %d, want 1 and 0", h.CheckpointEpoch, h.LogSuffixLen)
	}

	// One post-checkpoint batch, then a loss: the replacement restores the
	// blob and replays only the suffix — never the seed, never batches 1-2.
	if _, err := sup.Ingest(batchOf(3)); err != nil {
		t.Fatal(err)
	}
	if h := sup.healthSnapshot(); h.LogSuffixLen != 1 {
		t.Fatalf("log suffix %d after one post-checkpoint batch, want 1", h.LogSuffixLen)
	}
	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(4)); err != nil {
		t.Fatalf("ingest across the loss: %v", err)
	}
	want = []string{"restore:home", "ingest:3", "ingest:4", "checkpoint"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("replacement ops %v, want %v", fb.replacements[0].ops, want)
	}
	h = sup.healthSnapshot()
	if h.ReplayedBatches != 1 || h.ReplayedBatches > int64(sup.interval) {
		t.Errorf("replayed %d batches, want 1 (≤ interval %d)", h.ReplayedBatches, sup.interval)
	}
	// The re-issued batch 4 made the suffix 2 long again — a second
	// checkpoint (now from the replacement) truncated it.
	if h.CheckpointEpoch != 2 || h.LogSuffixLen != 0 {
		t.Errorf("after recovery: epoch %d suffix %d, want 2 and 0", h.CheckpointEpoch, h.LogSuffixLen)
	}
}

// A failed checkpoint must not truncate anything: the supervisor keeps the
// old blob and the longer log — recovery is exact either way, just slower —
// and retries at the next interval.
func TestSupervisorCheckpointFailureKeepsLog(t *testing.T) {
	w0 := &fakeWorker{addr: "home", chkErr: errors.New("blob too rich")}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 2)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := sup.Ingest(batchOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	h := sup.healthSnapshot()
	if h.CheckpointEpoch != 0 || h.LogSuffixLen != 4 {
		t.Fatalf("failed checkpoints truncated: epoch %d suffix %d, want 0 and 4", h.CheckpointEpoch, h.LogSuffixLen)
	}
	// Recovery falls back to the full pre-checkpoint replay: seed + log.
	// The replacement checkpoints fine, so the re-issued batch tips the
	// (full) log over the interval and truncation finally resumes.
	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(5)); err != nil {
		t.Fatal(err)
	}
	want := []string{"seed", "ingest:1", "ingest:2", "ingest:3", "ingest:4", "ingest:5", "checkpoint"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("fallback replay ops %v, want %v", fb.replacements[0].ops, want)
	}
	h = sup.healthSnapshot()
	if h.CheckpointEpoch != 1 || h.LogSuffixLen != 0 {
		t.Errorf("after recovery: epoch %d suffix %d, want 1 and 0", h.CheckpointEpoch, h.LogSuffixLen)
	}
}

// Once a checkpoint truncated the log, a replacement that cannot restore
// the blob cannot host the shard — the log prefix is gone, so full replay
// is impossible and the recovery must fail closed, not silently diverge.
func TestSupervisorRestoreFailureMarksDown(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{replacementRestoreErr: errors.New("foreign blob version")}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 1)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Ingest(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	w0.failLost = 1
	_, err := sup.Ingest(batchOf(2))
	if err == nil || !strings.Contains(err.Error(), "checkpoint restore failed") {
		t.Fatalf("restore failure not surfaced: %v", err)
	}
	if h := sup.healthSnapshot(); h.Live {
		t.Errorf("shard still reports live after a failed restore: %+v", h)
	}
	if len(fb.replacements) != 1 || !fb.replacements[0].closed {
		t.Error("failed replacement not closed")
	}
}

// Regression for the kill-during-seed double-offer: when the op that died
// IS the seeding Offer and nothing else needs replaying, the replay side
// must leave the seed to the re-issued operation — the replacement sees
// exactly one seed, not two.
func TestSupervisorKillDuringSeedSingleSeed(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 0)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	// A mid-run re-seed (the engine re-offers on every sharded mine) dies:
	// seeded is already true, the log is empty.
	w0.failLost = 1
	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatalf("seed offer across the loss: %v", err)
	}
	want := []string{"seed"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("replacement ops %v, want exactly one seed", fb.replacements[0].ops)
	}

	// With batches in the log the replay seed is mandatory (workers refuse
	// Ingest before a seeding Offer): the double-seed is kept there, and
	// TestDoubleSeedIdempotent pins that it is harmless on real state.
	if _, err := sup.Ingest(batchOf(1)); err != nil {
		t.Fatal(err)
	}
	fb.replacements[0].failLost = 1
	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatalf("second seed offer across the loss: %v", err)
	}
	want = []string{"seed", "ingest:1", "seed"}
	if got := fmt.Sprint(fb.replacements[1].ops); got != fmt.Sprint(want) {
		t.Errorf("replacement ops %v, want %v", fb.replacements[1].ops, want)
	}
}

// FleetHealth must keep answering while a recovery is in flight: the
// supervisor reports Recovering instead of blocking the snapshot on the
// rebuild. The fake builder blocks its Rebuild until the health snapshot
// has been observed, which deadlocks if recover still holds the lock.
func TestSupervisorHealthDuringRecovery(t *testing.T) {
	w0 := &fakeWorker{addr: "home", failLost: 1}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 0)

	rebuilding := make(chan struct{})
	observed := make(chan WorkerHealth, 1)
	blocking := &blockingBuilder{fakeBuilder: fb, entered: rebuilding, release: make(chan struct{})}
	sup.rb = blocking

	go func() {
		<-rebuilding
		observed <- sup.healthSnapshot()
		close(blocking.release)
	}()
	if _, _, err := sup.Offer(&OfferBound{}); err != nil {
		t.Fatalf("offer across the loss: %v", err)
	}
	h := <-observed
	if !h.Recovering {
		t.Errorf("mid-recovery snapshot %+v, want Recovering", h)
	}
	if h := sup.healthSnapshot(); h.Recovering || !h.Live {
		t.Errorf("post-recovery snapshot %+v, want live and not recovering", h)
	}
}

// blockingBuilder gates Rebuild on a channel so a test can observe
// mid-recovery state.
type blockingBuilder struct {
	*fakeBuilder
	entered chan struct{}
	release chan struct{}
}

func (bb *blockingBuilder) Rebuild(spec WorkerSpec) (ShardWorker, error) {
	close(bb.entered)
	<-bb.release
	return bb.fakeBuilder.Rebuild(spec)
}

// A worker that was never pool-seeded must not be re-seeded on replay.
func TestSupervisorUnseededReplaySkipsSeed(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0, 0)

	if _, err := sup.Ingest(batchOf(3)); err != nil {
		t.Fatal(err)
	}
	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(4)); err != nil {
		t.Fatal(err)
	}
	want := []string{"ingest:3", "ingest:4"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("unseeded replay ops %v, want %v (no seed offer)", fb.replacements[0].ops, want)
	}
}
