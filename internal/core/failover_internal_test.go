package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/metrics"
)

// lostErr is the transport-loss marker the rpc layer tags its failures
// with, reproduced here so the supervisor's classification can be tested
// without a network.
type lostErr struct{ msg string }

func (e lostErr) Error() string    { return e.msg }
func (e lostErr) WorkerLost() bool { return true }

// fakeWorker scripts a ShardWorker: it records every operation and can be
// told to fail the next ops with transport loss or an in-band error.
type fakeWorker struct {
	addr     string
	ops      []string
	failLost int   // fail this many upcoming ops with worker loss
	inBand   error // non-nil: fail every op with this plain error
	closed   bool
}

func (f *fakeWorker) step(op string) error {
	if f.failLost > 0 {
		f.failLost--
		return lostErr{msg: "fake transport down"}
	}
	if f.inBand != nil {
		return f.inBand
	}
	f.ops = append(f.ops, op)
	return nil
}

func (f *fakeWorker) Addr() string  { return f.addr }
func (f *fakeWorker) NumEdges() int { return 0 }
func (f *fakeWorker) Close() error  { f.closed = true; return nil }

func (f *fakeWorker) Offer(bound *OfferBound) ([]ShardCandidate, Stats, error) {
	op := "offer"
	if bound == nil {
		op = "seed"
	}
	return nil, Stats{}, f.step(op)
}

func (f *fakeWorker) Counts(grs []gr.GR) ([]metrics.Counts, error) {
	if err := f.step("counts"); err != nil {
		return nil, err
	}
	return make([]metrics.Counts, len(grs)), nil
}

func (f *fakeWorker) Ingest(b Batch) (IngestReply, error) {
	return IngestReply{}, f.step(fmt.Sprintf("ingest:%d", len(b.Ins)))
}

// fakeBuilder hands out scripted replacement workers.
type fakeBuilder struct {
	rebuilds            int
	replacements        []*fakeWorker
	replacementFailLost int // scripted failLost for each new replacement
	err                 error
}

func (fb *fakeBuilder) Build(WorkerSpec) (ShardWorker, error) {
	return nil, errors.New("not used")
}

func (fb *fakeBuilder) Rebuild(WorkerSpec) (ShardWorker, error) {
	fb.rebuilds++
	if fb.err != nil {
		return nil, fb.err
	}
	w := &fakeWorker{addr: fmt.Sprintf("replacement-%d", fb.rebuilds), failLost: fb.replacementFailLost}
	fb.replacements = append(fb.replacements, w)
	return w, nil
}

func batchOf(n int) Batch {
	ins := make([]EdgeInsert, n)
	return Batch{Ins: ins}
}

// A lost worker must be closed, rebuilt, re-seeded, replayed in log order,
// and the failed operation re-issued — with the health record keeping score.
func TestSupervisorReplaysAfterLoss(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 2, Shards: 4}, fb, w0)

	if _, _, err := sup.Offer(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Ingest(batchOf(1)); err != nil {
		t.Fatal(err)
	}

	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(2)); err != nil {
		t.Fatalf("ingest across a worker loss: %v", err)
	}
	if !w0.closed {
		t.Error("lost worker not closed")
	}
	if fb.rebuilds != 1 {
		t.Fatalf("%d rebuilds, want 1", fb.rebuilds)
	}
	// Replacement saw: pool re-seed, the logged batch, then the re-issued one.
	want := []string{"seed", "ingest:1", "ingest:2"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("replacement ops %v, want %v", fb.replacements[0].ops, want)
	}

	h := sup.healthSnapshot()
	if !h.Live || h.Shard != 2 || h.Addr != "replacement-1" {
		t.Errorf("health %+v, want live shard 2 on replacement-1", h)
	}
	if h.Replacements != 1 || h.Retries != 1 || h.ReplayedBatches != 1 {
		t.Errorf("counters %+v, want 1 replacement / 1 retry / 1 replayed batch", h)
	}
	if !strings.Contains(h.LastError, "transport down") {
		t.Errorf("LastError %q does not name the cause", h.LastError)
	}

	// The re-issued batch joined the log: a second loss replays both.
	fb.replacements[0].failLost = 1
	if _, _, err := sup.Offer(&OfferBound{}); err != nil {
		t.Fatalf("offer across the second loss: %v", err)
	}
	want = []string{"seed", "ingest:1", "ingest:2", "offer"}
	if got := fmt.Sprint(fb.replacements[1].ops); got != fmt.Sprint(want) {
		t.Errorf("second replacement ops %v, want %v", fb.replacements[1].ops, want)
	}
}

// An in-band application error means the worker is alive: no rebuild, no
// health change, the error escapes untouched.
func TestSupervisorInBandErrorNoFailover(t *testing.T) {
	w0 := &fakeWorker{addr: "home", inBand: errors.New("batch rejected: edge out of range")}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0)

	_, err := sup.Ingest(batchOf(1))
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("in-band error not surfaced: %v", err)
	}
	if fb.rebuilds != 0 {
		t.Errorf("in-band error triggered %d rebuilds", fb.rebuilds)
	}
	if h := sup.healthSnapshot(); !h.Live || h.Retries != 0 || h.LastError != "" {
		t.Errorf("in-band error dented the health record: %+v", h)
	}
}

// When no replacement exists the shard is marked down and the error names
// both the loss and the rebuild failure.
func TestSupervisorRebuildFailureMarksDown(t *testing.T) {
	w0 := &fakeWorker{addr: "home", failLost: 1}
	fb := &fakeBuilder{err: errors.New("every candidate refused")}
	sup := newSupervisor(WorkerSpec{Index: 1, Shards: 2}, fb, w0)

	_, _, err := sup.Offer(nil)
	if err == nil || !strings.Contains(err.Error(), "no replacement available") {
		t.Fatalf("rebuild failure not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "transport down") || !strings.Contains(err.Error(), "refused") {
		t.Errorf("error hides the cause chain: %v", err)
	}
	if h := sup.healthSnapshot(); h.Live {
		t.Errorf("shard still reports live after a failed rebuild: %+v", h)
	}
}

// Exactly one recovery per operation: when the freshly replayed replacement
// dies on the re-issued op too, the loss escapes instead of looping.
func TestSupervisorSingleRecoveryPerOp(t *testing.T) {
	w0 := &fakeWorker{addr: "home", failLost: 1}
	fb := &fakeBuilder{replacementFailLost: 1}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0)

	_, _, err := sup.Offer(nil)
	var lost interface{ WorkerLost() bool }
	if err == nil || !errors.As(err, &lost) {
		t.Fatalf("double loss should surface the transport error, got %v", err)
	}
	if fb.rebuilds != 1 {
		t.Errorf("%d rebuilds in one op, want exactly 1", fb.rebuilds)
	}
}

// A worker that was never pool-seeded must not be re-seeded on replay.
func TestSupervisorUnseededReplaySkipsSeed(t *testing.T) {
	w0 := &fakeWorker{addr: "home"}
	fb := &fakeBuilder{}
	sup := newSupervisor(WorkerSpec{Index: 0, Shards: 1}, fb, w0)

	if _, err := sup.Ingest(batchOf(3)); err != nil {
		t.Fatal(err)
	}
	w0.failLost = 1
	if _, err := sup.Ingest(batchOf(4)); err != nil {
		t.Fatal(err)
	}
	want := []string{"ingest:3", "ingest:4"}
	if got := fmt.Sprint(fb.replacements[0].ops); got != fmt.Sprint(want) {
		t.Errorf("unseeded replay ops %v, want %v (no seed offer)", fb.replacements[0].ops, want)
	}
}
