package core_test

import (
	"testing"

	"grminer/internal/core"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

var shardStrategies = []graph.ShardStrategy{graph.ShardBySource, graph.ShardByRHS}

// TestShardedOracle is the sharded half of the equivalence gate: for random
// graphs, every metric, both floor modes, both strategies, and shard counts
// 1-8, the sharded coordinator's merged top-k must equal a single-store
// mine under the coordinator's effective options. Shard counts and
// strategies cycle across the metric/floor grid so the full 1-8 range is
// exercised without mining every combination.
func TestShardedOracle(t *testing.T) {
	seeds := []int64{0, 1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		g := randomGraph(seed, seed%2 == 0, seed%3 != 0)
		cycle := 0
		for _, m := range metrics.All() {
			for _, dyn := range []bool{false, true} {
				for _, trivial := range []bool{false, true} {
					if trivial && m.Name != "conf" {
						continue // the Table II study mode; one metric suffices
					}
					opt := core.Options{
						MinSupp: 2, MinScore: oracleThresholds[m.Name], K: 10,
						DynamicFloor: dyn, Metric: m, IncludeTrivial: trivial,
					}
					for _, strategy := range shardStrategies {
						cycle++
						so := core.ShardOptions{Shards: cycle%8 + 1, Strategy: strategy}
						sc, err := core.NewShardCoordinator(g, opt, so)
						if err != nil {
							t.Fatal(err)
						}
						res, err := sc.Mine()
						if err != nil {
							t.Fatal(err)
						}
						ref, err := core.Mine(g, sc.Options())
						if err != nil {
							t.Fatal(err)
						}
						label := m.Name
						if dyn {
							label += "-dynamic"
						}
						if trivial {
							label += "-trivial"
						}
						t.Logf("%s shards=%d by=%s", label, so.Shards, strategy)
						assertSameResults(t, label, res.TopK, ref.TopK)
					}
				}
			}
		}
	}
}

// Every shard count 1-8 must hold for the default metric in both floor
// modes and both strategies — the dense sweep the cycling oracle samples.
func TestShardedAllShardCounts(t *testing.T) {
	g := randomGraph(11, true, true)
	for _, dyn := range []bool{false, true} {
		opt := core.Options{MinSupp: 1, MinScore: 0.3, K: 8, DynamicFloor: dyn}
		for _, strategy := range shardStrategies {
			for n := 1; n <= 8; n++ {
				sc, err := core.NewShardCoordinator(g, opt, core.ShardOptions{Shards: n, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				res, err := sc.Mine()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := core.Mine(g, sc.Options())
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, "dense-sweep", res.TopK, ref.TopK)
			}
		}
	}
}

// With the generality filter off, the merge runs the floor-guarded private
// top-k lists; the result must still match single-store mining.
func TestShardedNoGeneralityFilter(t *testing.T) {
	g := randomGraph(7, true, false)
	for _, dyn := range []bool{false, true} {
		for _, k := range []int{0, 5} {
			if dyn && k == 0 {
				continue // DynamicFloor requires K > 0
			}
			opt := core.Options{
				MinSupp: 1, MinScore: 0.3, K: k,
				DynamicFloor: dyn, NoGeneralityFilter: true, Parallelism: 4,
			}
			sc, err := core.NewShardCoordinator(g, opt, core.ShardOptions{Shards: 5})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sc.Mine()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.Mine(g, sc.Options())
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "no-filter", res.TopK, ref.TopK)
		}
	}
}

// More shards than distinct routing keys leaves some shards empty; the
// coordinator must treat them as empty stores and still merge exactly.
func TestShardedEmptyShards(t *testing.T) {
	schema, err := graph.NewSchema([]graph.Attribute{
		{Name: "A", Domain: 3, Homophily: true},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 4)
	for v := 0; v < 4; v++ {
		if err := g.SetNodeValues(v, graph.Value(v%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Two sources only: under ShardBySource at 8 shards, at least six
	// shards are empty.
	for i := 0; i < 6; i++ {
		if _, err := g.AddEdge(i%2, (i+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := core.NewShardCoordinator(g, core.Options{MinSupp: 1, MinScore: 0.1, K: 5},
		core.ShardOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	empty := 0
	for _, e := range sc.Plan().Edges {
		if e == 0 {
			empty++
		}
	}
	if empty < 6 {
		t.Fatalf("expected ≥ 6 empty shards over 2 sources, plan: %v", sc.Plan().Edges)
	}
	res, err := sc.Mine()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Mine(g, sc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "empty-shards", res.TopK, ref.TopK)
}

// A graph whose edges all share one source routes everything to a single
// shard under ShardBySource — the maximal-skew degenerate plan.
func TestShardedAllEdgesOneShard(t *testing.T) {
	schema, err := graph.NewSchema([]graph.Attribute{
		{Name: "A", Domain: 3, Homophily: true},
	}, []graph.Attribute{{Name: "W", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 8)
	for v := 0; v < 8; v++ {
		if err := g.SetNodeValues(v, graph.Value(v%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 8; i++ {
		if _, err := g.AddEdge(0, i, graph.Value(i%2+1)); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := core.NewShardCoordinator(g, core.Options{MinSupp: 1, MinScore: 0.1, K: 5},
		core.ShardOptions{Shards: 4, Strategy: graph.ShardBySource})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, e := range sc.Plan().Edges {
		if e > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("single-source graph spread over %d shards: %v", nonEmpty, sc.Plan().Edges)
	}
	res, err := sc.Mine()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Mine(g, sc.Options())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "one-shard", res.TopK, ref.TopK)
}

// Invalid layouts must be rejected up front.
func TestShardedRejectsBadLayout(t *testing.T) {
	g := randomGraph(3, true, true)
	opt := core.Options{MinSupp: 1, K: 5}
	if _, err := core.NewShardCoordinator(g, opt, core.ShardOptions{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := core.NewShardCoordinator(g, opt, core.ShardOptions{Shards: -2}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := core.NewShardCoordinator(g, opt, core.ShardOptions{Shards: 2, Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := core.PlanShards(g, opt, core.ShardOptions{Shards: 0}); err == nil {
		t.Error("PlanShards accepted 0 shards")
	}
}

// The plan's per-shard offer threshold must follow ⌈minSupp/shards⌉.
func TestShardPlanMinSupp(t *testing.T) {
	g := randomGraph(4, true, true)
	for _, tc := range []struct{ minSupp, shards, want int }{
		{10, 1, 10}, {10, 2, 5}, {10, 3, 4}, {10, 4, 3}, {1, 8, 1}, {7, 8, 1},
	} {
		plan, err := core.PlanShards(g, core.Options{MinSupp: tc.minSupp, K: 5},
			core.ShardOptions{Shards: tc.shards})
		if err != nil {
			t.Fatal(err)
		}
		if plan.ShardMinSupp != tc.want {
			t.Errorf("minSupp %d over %d shards: ShardMinSupp = %d, want %d",
				tc.minSupp, tc.shards, plan.ShardMinSupp, tc.want)
		}
	}
}
