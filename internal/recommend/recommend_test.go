package recommend

import (
	"testing"

	"grminer/internal/gr"
	"grminer/internal/graph"
)

// fixture: the Example 3 world in miniature. JOB (non-homophily) and
// PRODUCT (homophily). Lawyers with Stocks befriend Bonds owners; target
// nodes 8 and 9 own nothing interesting yet.
func fixture(t *testing.T) (*graph.Graph, []gr.Scored) {
	t.Helper()
	schema, err := graph.NewSchema(
		[]graph.Attribute{
			{Name: "JOB", Domain: 2, Labels: []string{"∅", "Lawyer", "Other"}},
			{Name: "PRODUCT", Domain: 3, Homophily: true, Labels: []string{"∅", "Savings", "Stocks", "Bonds"}},
		},
		[]graph.Attribute{{Name: "T", Domain: 2, Labels: []string{"∅", "friend", "colleague"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.MustNew(schema, 10)
	// 0-3: lawyers with stocks; 4-5: others with bonds; 6-7: others with
	// savings; 8-9: targets with savings.
	for n := 0; n <= 3; n++ {
		g.SetNodeValues(n, 1, 2)
	}
	for n := 4; n <= 5; n++ {
		g.SetNodeValues(n, 2, 3)
	}
	for n := 6; n <= 9; n++ {
		g.SetNodeValues(n, 2, 1)
	}
	// Lawyers-with-stocks point at target 8 (three of them) and at 9 (one).
	g.AddEdge(0, 8, 1)
	g.AddEdge(1, 8, 1)
	g.AddEdge(2, 8, 1)
	g.AddEdge(3, 9, 1)
	// A bonds owner also points at 8 via a colleague tie.
	g.AddEdge(4, 8, 2)
	// Node 5 (bonds) points at 4 (already owns bonds: no suggestion).
	g.AddEdge(5, 4, 1)

	rules := []gr.Scored{
		{ // (JOB:Lawyer, PRODUCT:Stocks) -[T:friend]-> (PRODUCT:Bonds), nhp 0.8
			GR: gr.GR{
				L: gr.D(0, 1, 1, 2),
				W: gr.D(0, 1),
				R: gr.D(1, 3),
			},
			Score: 0.8, Supp: 100,
		},
		{ // (PRODUCT:Bonds) -> (PRODUCT:Savings), nhp 0.3
			GR:    gr.GR{L: gr.D(1, 3), R: gr.D(1, 1)},
			Score: 0.3, Supp: 50,
		},
		{ // trivial: must be dropped by New
			GR:    gr.GR{L: gr.D(1, 2), R: gr.D(1, 2)},
			Score: 0.9, Supp: 10,
		},
	}
	return g, rules
}

func TestNewDropsTrivial(t *testing.T) {
	g, rules := fixture(t)
	r := New(g, rules)
	if r.Rules() != 2 {
		t.Errorf("kept %d rules, want 2 (trivial dropped)", r.Rules())
	}
}

func TestForNode(t *testing.T) {
	g, rules := fixture(t)
	r := New(g, rules)

	sugg, err := r.ForNode(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("no suggestions for node 8")
	}
	top := sugg[0]
	if v, ok := top.R.Get(1); !ok || v != 3 {
		t.Fatalf("top suggestion = %v, want PRODUCT:Bonds", top.R)
	}
	// Three lawyer-friends matched the bonds rule: score 3 × 0.8.
	if top.Evidence != 3 || top.Score < 2.39 || top.Score > 2.41 {
		t.Errorf("bonds suggestion = %+v, want evidence 3 score 2.4", top)
	}
	// The colleague edge from the bonds owner must NOT count for the
	// friend-only rule, but the savings rule doesn't apply either (node 8
	// would have to not own savings).
	for _, s := range sugg {
		if v, _ := s.R.Get(1); v == 1 {
			t.Errorf("savings suggested to a savings owner: %+v", s)
		}
	}

	// Node 9 has one lawyer friend.
	sugg9, err := r.ForNode(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg9) != 1 || sugg9[0].Evidence != 1 {
		t.Fatalf("node 9 suggestions = %+v", sugg9)
	}

	// Node 4 already owns bonds: the bonds rule must not fire.
	sugg4, err := r.ForNode(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugg4 {
		if v, _ := s.R.Get(1); v == 3 {
			t.Errorf("bonds suggested to a bonds owner")
		}
	}

	if _, err := r.ForNode(-1, 0); err == nil {
		t.Error("bad node accepted")
	}
}

func TestCampaign(t *testing.T) {
	g, rules := fixture(t)
	r := New(g, rules)
	prospects, err := r.Campaign(gr.D(1, 3), 0) // PRODUCT:Bonds
	if err != nil {
		t.Fatal(err)
	}
	if len(prospects) != 2 {
		t.Fatalf("prospects = %+v, want nodes 8 and 9", prospects)
	}
	if prospects[0].Node != 8 || prospects[0].Evidence != 3 {
		t.Errorf("best prospect = %+v, want node 8 with evidence 3", prospects[0])
	}
	if prospects[1].Node != 9 {
		t.Errorf("second prospect = %+v, want node 9", prospects[1])
	}
	// topN truncation.
	one, err := r.Campaign(gr.D(1, 3), 1)
	if err != nil || len(one) != 1 {
		t.Errorf("topN: %v, %v", one, err)
	}
	// Invalid descriptor.
	if _, err := r.Campaign(gr.Descriptor{{Attr: 9, Val: 1}}, 0); err == nil {
		t.Error("bad RHS accepted")
	}
}
