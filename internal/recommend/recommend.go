// Package recommend operationalises the paper's Example 3: using mined
// group relationships to drive cross-sell / link recommendations through
// social influence. A GR l -w-> r with high non-homophily preference says
// that edges from l-group sources overwhelmingly reach r-group
// destinations *once the homophily effect is excluded* — so a node that is
// the target of such edges but does not yet match r is a high-yield
// prospect for whatever r describes ("promote Bonds to a friend if he/she
// has not bought Bonds, and the high non-homophily preference implies a
// high adoption rate").
package recommend

import (
	"fmt"
	"sort"

	"grminer/internal/gr"
	"grminer/internal/graph"
	"grminer/internal/metrics"
)

// Suggestion is one recommended target profile for a node.
type Suggestion struct {
	// R is the RHS descriptor being recommended (e.g. PRODUCT:Bonds).
	R gr.Descriptor
	// Score aggregates nhp-weighted evidence across matching in-edges.
	Score float64
	// Evidence counts the in-edges whose source matched a rule's LHS.
	Evidence int
	// Rules lists the mined GRs that contributed.
	Rules []gr.GR
}

// Recommender scores suggestions against one network using a mined rule
// set. Build one per (graph, rules) pair and reuse it across nodes.
type Recommender struct {
	g     *graph.Graph
	rules []gr.Scored
}

// New returns a Recommender over g with the given mined GRs (typically the
// top-k by nhp). Trivial GRs are dropped: recommending what the node's
// group already is carries no new information.
func New(g *graph.Graph, mined []gr.Scored) *Recommender {
	rules := make([]gr.Scored, 0, len(mined))
	for _, s := range mined {
		if s.GR.Trivial(g.Schema()) {
			continue
		}
		rules = append(rules, s)
	}
	return &Recommender{g: g, rules: rules}
}

// Rules returns the retained rule count.
func (r *Recommender) Rules() int { return len(r.rules) }

// ForNode scores suggestions for node v: every in-edge (u, v) whose source
// u matches a rule's LHS and whose attributes match the rule's edge
// descriptor contributes the rule's score toward the rule's RHS — unless v
// already matches that RHS (nothing to adopt). Suggestions are returned
// best-first, at most topN (0 = all).
func (r *Recommender) ForNode(v int, topN int) ([]Suggestion, error) {
	if v < 0 || v >= r.g.NumNodes() {
		return nil, fmt.Errorf("recommend: node %d out of range", v)
	}
	acc := make(map[string]*Suggestion)
	for e := 0; e < r.g.NumEdges(); e++ {
		if !r.g.EdgeAlive(e) || r.g.Dst(e) != v {
			continue
		}
		u := r.g.Src(e)
		for i := range r.rules {
			rule := &r.rules[i]
			if !metrics.MatchNode(r.g, u, rule.GR.L) || !metrics.MatchEdgeAttrs(r.g, e, rule.GR.W) {
				continue
			}
			if metrics.MatchNode(r.g, v, rule.GR.R) {
				continue // already adopted
			}
			key := rule.GR.RHSKey()
			s, ok := acc[key]
			if !ok {
				s = &Suggestion{R: rule.GR.R.Clone()}
				acc[key] = s
			}
			s.Score += rule.Score
			s.Evidence++
			if len(s.Rules) == 0 || s.Rules[len(s.Rules)-1].Key() != rule.GR.Key() {
				s.Rules = append(s.Rules, rule.GR)
			}
		}
	}
	out := make([]Suggestion, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return gr.GR{R: out[i].R}.RHSKey() < gr.GR{R: out[j].R}.RHSKey()
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}

// Campaign scores every node and returns the topN highest-scoring
// (node, suggestion) prospects for one specific RHS — the batch form a
// marketer runs ("who should we promote Bonds to?").
type Prospect struct {
	Node  int
	Score float64
	// Evidence counts supporting in-edges.
	Evidence int
}

// Campaign ranks all nodes by their suggestion score for the given RHS.
func (r *Recommender) Campaign(rhs gr.Descriptor, topN int) ([]Prospect, error) {
	if err := rhs.Valid(r.g.Schema().Node); err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	key := gr.GR{R: rhs}.RHSKey()
	scores := make(map[int]*Prospect)
	for e := 0; e < r.g.NumEdges(); e++ {
		if !r.g.EdgeAlive(e) {
			continue
		}
		v := r.g.Dst(e)
		if metrics.MatchNode(r.g, v, rhs) {
			continue // already adopted
		}
		u := r.g.Src(e)
		for i := range r.rules {
			rule := &r.rules[i]
			if rule.GR.RHSKey() != key {
				continue
			}
			if !metrics.MatchNode(r.g, u, rule.GR.L) || !metrics.MatchEdgeAttrs(r.g, e, rule.GR.W) {
				continue
			}
			p, ok := scores[v]
			if !ok {
				p = &Prospect{Node: v}
				scores[v] = p
			}
			p.Score += rule.Score
			p.Evidence++
		}
	}
	out := make([]Prospect, 0, len(scores))
	for _, p := range scores {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}
