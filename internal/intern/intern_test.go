package intern

import (
	"math/rand"
	"testing"

	"grminer/internal/gr"
	"grminer/internal/graph"
)

func testSchema() *graph.Schema {
	return &graph.Schema{
		Node: []graph.Attribute{
			{Name: "age", Domain: 7},
			{Name: "region", Domain: 5, Homophily: true},
			{Name: "lang", Domain: 3, Homophily: true},
		},
		Edge: []graph.Attribute{
			{Name: "kind", Domain: 4},
			{Name: "weight", Domain: 2},
		},
	}
}

// TestLayoutDense checks the pair id space is a dense bijection: every
// non-null (attribute, value) pair of the schema maps to a distinct id in
// [0, NumPairs), node and edge attributes included.
func TestLayoutDense(t *testing.T) {
	s := testSchema()
	l := NewLayout(s)
	want := 0
	for _, a := range s.Node {
		want += a.Domain
	}
	for _, a := range s.Edge {
		want += a.Domain
	}
	if l.NumPairs() != want {
		t.Fatalf("NumPairs = %d, want %d", l.NumPairs(), want)
	}
	seen := make(map[PairID]string, want)
	check := func(id PairID, desc string) {
		t.Helper()
		if id < 0 || int(id) >= want {
			t.Fatalf("%s: id %d out of range [0, %d)", desc, id, want)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("%s: id %d already assigned to %s", desc, id, prev)
		}
		seen[id] = desc
	}
	for a := range s.Node {
		for v := 1; v <= s.Node[a].Domain; v++ {
			check(l.NodePair(a, graph.Value(v)), "node "+s.Node[a].Name)
		}
	}
	for a := range s.Edge {
		for v := 1; v <= s.Edge[a].Domain; v++ {
			check(l.EdgePair(a, graph.Value(v)), "edge "+s.Edge[a].Name)
		}
	}
}

// randNodeDesc draws a random node descriptor over the schema (possibly
// empty, distinct attributes, sorted by construction via With).
func randNodeDesc(rng *rand.Rand, s *graph.Schema) gr.Descriptor {
	var d gr.Descriptor
	for a := range s.Node {
		if rng.Intn(3) == 0 {
			d = d.With(a, graph.Value(1+rng.Intn(s.Node[a].Domain)))
		}
	}
	return d
}

func randEdgeDesc(rng *rand.Rand, s *graph.Schema) gr.Descriptor {
	var d gr.Descriptor
	for a := range s.Edge {
		if rng.Intn(3) == 0 {
			d = d.With(a, graph.Value(1+rng.Intn(s.Edge[a].Domain)))
		}
	}
	return d
}

// TestDictStableIDs is the core interning property: across an arbitrary
// interleaving of first-time and repeat interns, every descriptor (and GR)
// keeps the id it was first assigned, equal inputs share an id, and distinct
// inputs never share one. Together with TestLayoutDense this pins "ids are
// never reused for a different (attribute, value)": pair ids are schema
// arithmetic, and desc/GR ids only ever grow the id space.
func TestDictStableIDs(t *testing.T) {
	s := testSchema()
	d := NewDict(NewLayout(s))
	rng := rand.New(rand.NewSource(7))

	if got := d.NodeDesc(nil); got != 0 {
		t.Fatalf("empty descriptor id = %d, want 0", got)
	}

	// The empty descriptor is the trie root shared by every side, so both
	// empty keys pre-map to id 0.
	descIDs := map[string]DescID{"node": 0, "edge": 0}
	descByID := map[DescID]string{0: "(empty)"}
	grIDs := map[string]GRID{}
	grByID := map[GRID]string{}

	descKey := func(kind string, desc gr.Descriptor) string {
		key := kind
		for _, c := range desc {
			key += "/" + string(rune('a'+c.Attr)) + ":" + string(rune('0'+int(c.Val)))
		}
		return key
	}
	checkDesc := func(desc gr.Descriptor, id DescID, kind string) {
		t.Helper()
		key := descKey(kind, desc)
		if prev, ok := descIDs[key]; ok {
			if id != prev {
				t.Fatalf("%s re-interned to %d, first id was %d", key, id, prev)
			}
			return
		}
		if prev, ok := descByID[id]; ok {
			t.Fatalf("id %d reused: first %s, now %s", id, prev, key)
		}
		if int(id) >= d.NumDescs() {
			t.Fatalf("id %d not below NumDescs %d", id, d.NumDescs())
		}
		descIDs[key] = id
		descByID[id] = key
	}

	for i := 0; i < 4000; i++ {
		l := randNodeDesc(rng, s)
		w := randEdgeDesc(rng, s)
		r := randNodeDesc(rng, s)
		// Node descriptors share one id space regardless of side, so L and R
		// verify against the same "node" key space.
		checkDesc(l, d.NodeDesc(l), "node")
		checkDesc(w, d.EdgeDesc(w), "edge")
		checkDesc(r, d.NodeDesc(r), "node")

		g := gr.GR{L: l, W: w, R: r}
		id := d.GR(g)
		key := g.Key()
		if prev, ok := grIDs[key]; ok {
			if id != prev {
				t.Fatalf("GR %s re-interned to %d, first id was %d", key, id, prev)
			}
			continue
		}
		if prev, ok := grByID[id]; ok {
			t.Fatalf("GR id %d reused: first %s, now %s", id, prev, key)
		}
		if int(id) >= d.NumGRs() {
			t.Fatalf("GR id %d not below NumGRs %d", id, d.NumGRs())
		}
		grIDs[key] = id
		grByID[id] = key
	}
}

// TestDictPrefixSharing checks the trie shape: a descriptor and its
// extension share the prefix path, so interning is O(conditions) map steps
// and the id space stays near the number of distinct paths, not the number
// of intern calls.
func TestDictPrefixSharing(t *testing.T) {
	s := testSchema()
	d := NewDict(NewLayout(s))
	base := gr.D(0, 1)
	ext := base.With(1, 2)
	idBase := d.NodeDesc(base)
	idExt := d.NodeDesc(ext)
	if idBase == idExt {
		t.Fatalf("distinct descriptors share id %d", idBase)
	}
	// Re-interning the extension must not mint ids.
	n := d.NumDescs()
	if got := d.NodeDesc(ext); got != idExt || d.NumDescs() != n {
		t.Fatalf("re-intern minted ids: id %d->%d, NumDescs %d->%d", idExt, got, n, d.NumDescs())
	}
}
